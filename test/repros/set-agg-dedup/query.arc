{Q(h0) | exists v1 in R0, gamma_0[Q.h0 = sum(v1.c0)]}
