{Q(h0) | exists v1 in R0, v2 in R1, full(v1, v2)[Q.h0 = v2.c0 and v1.c0 < v1.c0]}
