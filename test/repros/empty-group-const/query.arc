{Q(h0, h1) | exists v1 in R0, gamma_0[Q.h0 = sum(v1.c0) and Q.h1 = 'x']}
