{Q(h0) | exists v1 in R0[Q.h0 = false and true <> v1.c0]}
