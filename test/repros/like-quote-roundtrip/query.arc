{Q(h0) | exists v1 in R0[Q.h0 = v1.c0 and v1.c0 like '%''%']}
