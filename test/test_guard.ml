(* Resource-governance tests: budgets stop runaway evaluations with typed
   errors, graceful degradation returns partial-but-consistent results,
   cancellation always wins, faults injected into externals are absorbed by
   retry or surface as typed failures, and the typed error constructors
   render exactly the seed engine's message strings. *)

open Arc_core.Ast
open Arc_core.Build
module V = Arc_value.Value
module Relation = Arc_relation.Relation
module Database = Arc_relation.Database
module Eval = Arc_engine.Eval
module Externals = Arc_engine.Externals
module Chaos = Arc_engine.Chaos
module Budget = Arc_guard.Budget
module Gov = Arc_guard.Gov
module Cancel = Arc_guard.Cancel
module Err = Arc_guard.Error

let i = V.int

let db_rs =
  Database.of_list
    [
      ( "R",
        Relation.of_rows [ "A"; "B" ]
          [ [ i 1; i 10 ]; [ i 2; i 20 ]; [ i 3; i 30 ] ] );
      ( "S",
        Relation.of_rows [ "B"; "C" ]
          [ [ i 10; i 0 ]; [ i 20; i 5 ]; [ i 99; i 0 ] ] );
    ]

(* a divergent recursive program: N counts up from 0 through the "Add"
   external, so its least fixpoint is infinite. Classified Safe by the
   analysis, making it exactly the case budgets exist for. *)
let divergent =
  Arc_syntax.Parser.program_of_string
    "def N := {N(x) | exists s in S[N.x = s.v] or exists n in N, f in \
     \"Add\"[f.left = n.x and f.right = 1 and N.x = f.out]} {Q(x) | exists \
     n in N[Q.x = n.x]}"

let db_seed = Database.of_list [ ("S", Relation.of_rows [ "v" ] [ [ i 0 ] ]) ]

(* transitive closure over a random edge set, the monotone workhorse for the
   truncation-subset property *)
let tc_prog =
  Arc_syntax.Parser.program_of_string
    "def T := {T(s,t) | exists e in E[T.s = e.s and T.t = e.t] or exists a \
     in T, b in E[a.t = b.s and T.s = a.s and T.t = b.t]} {Q(s,t) | exists \
     x in T[Q.s = x.s and Q.t = x.t]}"

let edges_db seed n =
  let rng = Random.State.make [| seed |] in
  let rows =
    List.init n (fun _ ->
        [ V.Int (Random.State.int rng 12); V.Int (Random.State.int rng 12) ])
  in
  Database.of_list [ ("E", Relation.of_rows [ "s"; "t" ] rows) ]

let expect_budget_error ~resource name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Budget_exceeded" name
  | exception Eval.Eval_error e -> (
      match e.Err.kind with
      | Err.Budget_exceeded b when b.Err.resource = resource -> ()
      | _ ->
          Alcotest.failf "%s: expected Budget_exceeded (%s), got: %s" name
            (Budget.resource_to_string resource)
            (Err.to_string e))

(* (a) a divergent fixpoint is stopped by the iteration budget under both
   recursion strategies, with a typed error naming the resource *)
let iteration_budget () =
  List.iter
    (fun strategy ->
      expect_budget_error ~resource:Budget.Fixpoint_iterations "divergent"
        (fun () ->
          let guard =
            Gov.make { Budget.unlimited with Budget.max_iterations = Some 20 }
          in
          Eval.run ~strategy ~guard ~db:db_seed divergent))
    [ Eval.Naive; Eval.Seminaive ];
  (* truncate mode instead returns the partial fixpoint: counting up with a
     cap of k iterations yields at least k distinct values of N *)
  let guard =
    Gov.make ~on_limit:`Truncate
      { Budget.unlimited with Budget.max_iterations = Some 10 }
  in
  let r = Eval.run_rows ~guard ~db:db_seed divergent in
  let report = Gov.report guard in
  if not report.Gov.truncated then Alcotest.fail "report not marked truncated";
  if Relation.cardinality r < 10 then
    Alcotest.failf "partial fixpoint too small: %d rows"
      (Relation.cardinality r);
  (match report.Gov.events with
  | [ e ] when e.Gov.resource = Budget.Fixpoint_iterations -> ()
  | _ -> Alcotest.fail "expected a single fixpoint-iterations event");
  (* the default guard still reproduces the seed behavior: 100k rounds then
     failure (exercised with a tighter explicit budget above; here we only
     check the default budget carries the seed cap) *)
  Alcotest.(check (option int))
    "default cap" (Some 100_000)
    Budget.(default.max_iterations)

(* (b) a wall-clock deadline interrupts evaluation mid-scope; with a fake
   clock the trip point is deterministic *)
let deadline () =
  let now = ref 0L in
  let clock () =
    (* every probe advances the fake clock 1ms; deadline 5ms trips on the
       6th probe, long before the (divergent) evaluation could finish *)
    now := Int64.add !now 1_000_000L;
    !now
  in
  (match
     let guard =
       Gov.make ~clock (Budget.with_timeout_ms 5 Budget.unlimited)
     in
     Eval.run ~guard ~db:db_seed divergent
   with
  | _ -> Alcotest.fail "expected deadline trip"
  | exception Eval.Eval_error e -> (
      match e.Err.kind with
      | Err.Budget_exceeded { resource = Budget.Wall_clock; limit = 5; _ } ->
          ()
      | _ -> Alcotest.failf "wrong error: %s" (Err.to_string e)));
  (* truncate mode: evaluation completes with whatever was derived *)
  let now = ref 0L in
  let clock () =
    now := Int64.add !now 100_000L;
    !now
  in
  let guard =
    Gov.make ~clock ~on_limit:`Truncate
      (Budget.with_timeout_ms 2 Budget.unlimited)
  in
  let r = Eval.run_rows ~guard ~db:db_seed divergent in
  let report = Gov.report guard in
  if not report.Gov.truncated then Alcotest.fail "report not marked truncated";
  ignore (Relation.cardinality r)

(* (c) truncation-subset property: for a monotone program (transitive
   closure), every truncated result is a subset of the full result *)
let truncation_subset () =
  List.iter
    (fun seed ->
      let db = edges_db seed 18 in
      let full = Eval.run_rows ~db tc_prog in
      List.iter
        (fun max_rows ->
          let guard =
            Gov.make ~on_limit:`Truncate
              { Budget.unlimited with Budget.max_rows = Some max_rows }
          in
          let truncated = Eval.run_rows ~guard ~db tc_prog in
          let extra = Relation.minus truncated full in
          if not (Relation.is_empty extra) then
            Alcotest.failf
              "seed %d, max_rows %d: truncated result is not a subset;\n%s"
              seed max_rows
              (Relation.to_table extra);
          if Relation.cardinality truncated > Relation.cardinality full then
            Alcotest.fail "truncated result larger than full result")
        [ 1; 5; 20; 100 ])
    [ 1; 2; 3; 4; 5 ]

(* (d) binding and depth budgets trip with typed errors too *)
let other_budgets () =
  let q =
    program
      (coll "Q" [ "A" ]
         (exists [ bind "r" "R"; bind "s" "S" ] (eq (attr "Q" "A") (attr "r" "A"))))
  in
  expect_budget_error ~resource:Budget.Bindings "bindings" (fun () ->
      let guard =
        Gov.make { Budget.unlimited with Budget.max_bindings = Some 2 }
      in
      Eval.run ~guard ~db:db_rs q);
  expect_budget_error ~resource:Budget.Rows "rows" (fun () ->
      let guard = Gov.make { Budget.unlimited with Budget.max_rows = Some 1 } in
      Eval.run ~guard ~db:db_rs q);
  expect_budget_error ~resource:Budget.Depth "depth" (fun () ->
      let guard = Gov.make { Budget.unlimited with Budget.max_depth = Some 0 } in
      Eval.run ~guard ~db:db_rs q)

(* (e) cancellation raises Cancelled regardless of the on_limit policy *)
let cancellation () =
  List.iter
    (fun on_limit ->
      let cancel = Cancel.create () in
      Cancel.cancel cancel;
      let guard = Gov.make ~cancel ~on_limit Budget.unlimited in
      match
        Eval.run ~guard ~db:db_rs
          (program
             (coll "Q" [ "A" ]
                (exists [ bind "r" "R" ] (eq (attr "Q" "A") (attr "r" "A")))))
      with
      | _ -> Alcotest.fail "expected Cancelled"
      | exception Eval.Eval_error e -> (
          match e.Err.kind with
          | Err.Cancelled -> ()
          | _ -> Alcotest.failf "wrong error: %s" (Err.to_string e)))
    [ `Fail; `Truncate ]

(* (f) chaos + retry: a fail-once external is transparent under retry; a
   fail-always external exhausts retries into a typed External_failure *)
let chaos_retry () =
  let prog =
    Arc_syntax.Parser.program_of_string
      "{Q(s) | exists r in R, f in \"Add\"[f.left = r.A and f.right = 1 and \
       Q.s = f.out]}"
  in
  let clean = Eval.run_rows ~db:db_rs prog in
  (* fail once, retry absorbs it *)
  let stats = Chaos.stats () in
  let slept = ref [] in
  let externals =
    List.map
      (fun impl ->
        Externals.with_retry
          ~sleep:(fun ns -> slept := ns :: !slept)
          (Chaos.wrap ~stats Chaos.Fail_once impl))
      Externals.standard
  in
  let r = Eval.run_rows ~externals ~db:db_rs prog in
  if not (Relation.equal_set r clean) then
    Alcotest.fail "fail-once + retry differs from clean run";
  Alcotest.(check int) "one injected failure" 1 stats.Chaos.failures;
  Alcotest.(check (list int)) "one backoff sleep" [ 1_000_000 ] !slept;
  (* fail always, retry exhausts *)
  let slept = ref [] in
  let externals =
    List.map
      (fun impl ->
        Externals.with_retry ~attempts:3 ~backoff_ns:10
          ~sleep:(fun ns -> slept := ns :: !slept)
          (Chaos.wrap (Chaos.Fail_every 1) impl))
      Externals.standard
  in
  (match Eval.run ~externals ~db:db_rs prog with
  | _ -> Alcotest.fail "expected External_failure"
  | exception Eval.Eval_error e -> (
      match e.Err.kind with
      | Err.External_failure { relation = "Add"; attempts = 3; _ } -> ()
      | _ -> Alcotest.failf "wrong error: %s" (Err.to_string e)));
  (* exponential backoff: 10, 20 (no sleep after the last attempt) *)
  Alcotest.(check (list int)) "backoff schedule" [ 20; 10 ] !slept

(* (g) regression: the typed constructors render exactly the strings the
   seed engine produced for the test_engine failure cases *)
let message_compat () =
  let cases =
    [
      ( "unknown relation",
        program
          (coll "Q" [ "A" ]
             (exists [ bind "r" "NoSuch" ] (eq (attr "Q" "A") (attr "r" "A")))),
        "in collection \"Q\": unknown relation \"NoSuch\"",
        Err.make ~context:[ "Q" ] (Err.Unknown_relation "NoSuch") );
      ( "unassigned head attribute",
        program
          (coll "Q" [ "A"; "B" ]
             (exists [ bind "r" "R" ] (eq (attr "Q" "A") (attr "r" "A")))),
        "in collection \"Q\": head attribute Q.B has no assignment predicate",
        Err.make ~context:[ "Q" ]
          (Err.Head_unassigned { head = "Q"; attr = "B" }) );
      ( "unseeded external",
        program
          (coll "Q" [ "A" ]
             (exists [ bind "f" "Minus" ] (eq (attr "Q" "A") (attr "f" "out")))),
        "in collection \"Q\": no access pattern of external relation \
         \"Minus\" accepts bound attributes {}",
        Err.make ~context:[ "Q" ]
          (Err.Unbound_external { relation = "Minus"; bound = [] }) );
      ( "unstratifiable",
        program
          ~defs:
            [
              define "T"
                (collection "T" [ "x" ]
                   (exists [ bind "r" "R" ]
                      (conj
                         [
                           eq (attr "T" "x") (attr "r" "A");
                           not_
                             (exists [ bind "t" "T" ]
                                (eq (attr "t" "x") (attr "r" "A")));
                         ])));
            ]
          (coll "Q" [ "x" ]
             (exists [ bind "t" "T" ] (eq (attr "Q" "x") (attr "t" "x")))),
        "unstratifiable recursion: \"T\" depends on \"T\" through negation \
         or aggregation",
        Err.make (Err.Unstratifiable { name = "T"; dep = "T" }) );
    ]
  in
  List.iter
    (fun (name, prog, expected_msg, expected_err) ->
      match Eval.run ~db:db_rs prog with
      | _ -> Alcotest.failf "%s: expected Eval_error" name
      | exception Eval.Eval_error e ->
          Alcotest.(check string)
            (name ^ " message") expected_msg (Err.to_string e);
          Alcotest.(check string)
            (name ^ " constructor round-trip")
            (Err.to_string expected_err) (Err.to_string e);
          if e.Err.kind <> expected_err.Err.kind then
            Alcotest.failf "%s: kinds differ" name)
    cases;
  (* nested contexts render outermost-first *)
  Alcotest.(check string)
    "context chain"
    "in collection \"A\": in collection \"B\": unknown relation \"X\""
    (Err.to_string (Err.make ~context:[ "A"; "B" ] (Err.Unknown_relation "X")))

(* (h) governed evaluation with no tripped limits is observationally
   transparent, and the unlimited governor stays inactive *)
let join_query_stub =
  coll "Q" [ "A" ]
    (exists
       [ bind "r" "R"; bind "s" "S" ]
       (conj
          [
            eq (attr "Q" "A") (attr "r" "A");
            eq (attr "r" "B") (attr "s" "B");
          ]))

let governed_transparency () =
  let q = program join_query_stub in
  let baseline = Eval.run_rows ~db:db_rs q in
  List.iter
    (fun guard ->
      let r = Eval.run_rows ~guard:(guard ()) ~db:db_rs q in
      if not (Relation.equal_set baseline r) then
        Alcotest.fail "governed result differs")
    [
      (fun () -> Gov.unlimited ());
      (fun () -> Gov.default ());
      (fun () ->
        Gov.make
          (Budget.with_timeout_ms 60_000
             { Budget.default with Budget.max_rows = Some 1_000_000 }));
    ];
  if Gov.active (Gov.unlimited ()) then
    Alcotest.fail "unlimited governor should be inactive";
  if Gov.active (Gov.default ()) then
    Alcotest.fail "default governor should be inactive (iteration cap only)";
  if not (Gov.active (Gov.make (Budget.with_timeout_ms 1 Budget.unlimited)))
  then Alcotest.fail "deadline governor should be active"

let () =
  Alcotest.run "arc_guard"
    [
      ( "budgets",
        [
          Alcotest.test_case "iteration budget stops divergence" `Quick
            iteration_budget;
          Alcotest.test_case "wall-clock deadline" `Quick deadline;
          Alcotest.test_case "rows/bindings/depth budgets" `Quick
            other_budgets;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "truncation-subset property" `Quick
            truncation_subset;
          Alcotest.test_case "cancellation" `Quick cancellation;
          Alcotest.test_case "governed transparency" `Quick
            governed_transparency;
        ] );
      ( "chaos",
        [ Alcotest.test_case "retry vs injected faults" `Quick chaos_retry ] );
      ( "errors",
        [
          Alcotest.test_case "seed message compatibility" `Quick
            message_compat;
        ] );
    ]
