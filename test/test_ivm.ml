(* Incremental view maintenance tests.

   The single invariant everything here enforces: after any sequence of
   batches, every maintained view is bag-equal to evaluating its program
   from scratch on the updated database — across all eight convention
   combos ({Set,Bag} x {2VL,3VL} x {Agg_null,Agg_zero}), for counting
   views (joins/filters/projections and grouped aggregates), DRed
   (recursive transitive closure), and the counted fallback path. *)

open Arc_core.Ast
open Arc_core.Build
module V = Arc_value.Value
module Conventions = Arc_value.Conventions
module Relation = Arc_relation.Relation
module Tuple = Arc_relation.Tuple
module Schema = Arc_relation.Schema
module Database = Arc_relation.Database
module Eval = Arc_engine.Eval
module Ivm = Arc_ivm.Ivm
module Delta = Arc_ivm.Delta

let i = V.int
let s = V.str

let all_convs =
  List.concat_map
    (fun collection ->
      List.concat_map
        (fun null_logic ->
          List.map
            (fun agg_empty ->
              { Conventions.collection; null_logic; agg_empty })
            [ Conventions.Agg_null; Conventions.Agg_zero ])
        [ Conventions.Two_valued; Conventions.Three_valued ])
    [ Conventions.Set; Conventions.Bag ]

(* A batch row against a named relation's schema. *)
let row db rel vs =
  Tuple.make (Relation.schema (Database.find db rel)) (Array.of_list vs)

let check_against_scratch ~conv ivm name prog =
  let fresh =
    match Eval.run ~conv ~db:(Ivm.db ivm) prog with
    | Eval.Rows r -> Relation.sort r
    | Eval.Truth _ -> Alcotest.fail "expected rows"
  in
  let maintained = Ivm.result ivm name in
  if not (Relation.equal_bag maintained fresh) then
    Alcotest.failf "[%s] %s diverged from scratch:@.maintained:@.%s@.fresh:@.%s"
      (Conventions.to_string conv) name
      (Relation.to_table maintained)
      (Relation.to_table fresh);
  match Ivm.check ivm with
  | [] -> ()
  | (v, _, _) :: _ ->
      Alcotest.failf "[%s] Ivm.check flagged %s" (Conventions.to_string conv) v

let for_all_convs f () = List.iter f all_convs

(* ------------------------------------------------------------------ *)
(* Non-recursive: join + filter + projection                           *)
(* ------------------------------------------------------------------ *)

(* Q(a, c) from R(a, b) |><| S(b, c) with a filter on c. *)
let join_prog =
  program
    (coll "Q" [ "a"; "c" ]
       (exists
          [ bind "r" "R"; bind "s" "S" ]
          (conj
             [
               eq (attr "Q" "a") (attr "r" "a");
               eq (attr "r" "b") (attr "s" "b");
               eq (attr "Q" "c") (attr "s" "c");
               lt (attr "s" "c") (cint 100);
             ])))

let join_db () =
  Database.of_list
    [
      ( "R",
        Relation.of_rows [ "a"; "b" ]
          [ [ i 1; i 10 ]; [ i 2; i 20 ]; [ i 2; i 20 ]; [ i 3; i 30 ] ] );
      ( "S",
        Relation.of_rows [ "b"; "c" ]
          [ [ i 10; i 7 ]; [ i 20; i 8 ]; [ i 30; i 999 ] ] );
    ]

let join_incremental conv =
  let db = join_db () in
  let ivm = Ivm.create ~conv ~db () in
  Ivm.register ivm ~name:"Q" join_prog;
  let step batch =
    let reports = Ivm.apply ivm batch in
    List.iter
      (fun r ->
        if r.Ivm.vr_fallbacks > 0 then
          Alcotest.failf "[%s] join view fell back (%s)"
            (Conventions.to_string conv) r.Ivm.vr_mode)
      reports;
    check_against_scratch ~conv ivm "Q" join_prog
  in
  (* insert a matching pair, delete one duplicate, touch both sides *)
  step [ ("R", [ (row db "R" [ i 4; i 20 ], 1) ]) ];
  step [ ("R", [ (row db "R" [ i 2; i 20 ], -1) ]) ];
  step
    [
      ("R", [ (row db "R" [ i 1; i 10 ], -1); (row db "R" [ i 5; i 30 ], 1) ]);
      ("S", [ (row db "S" [ i 30; i 9 ], 1); (row db "S" [ i 10; i 7 ], -1) ]);
    ];
  step [ ("S", [ (row db "S" [ i 20; i 8 ], -1) ]) ]

(* ------------------------------------------------------------------ *)
(* Non-recursive: grouped aggregate                                    *)
(* ------------------------------------------------------------------ *)

(* T(k, total) = sum of v per key k, groups appearing and vanishing. *)
let agg_prog =
  program
    (coll "T" [ "k"; "total" ]
       (exists
          ~grouping:[ ("o", "k") ]
          [ bind "o" "O" ]
          (conj
             [
               eq (attr "T" "k") (attr "o" "k");
               eq (attr "T" "total") (sum (attr "o" "v"));
             ])))

let agg_db () =
  Database.of_list
    [
      ( "O",
        Relation.of_rows [ "k"; "v" ]
          [
            [ i 1; i 10 ];
            [ i 1; i 32 ];
            [ i 2; i 5 ];
            [ V.Null; i 3 ];
          ] );
    ]

let agg_incremental conv =
  let db = agg_db () in
  let ivm = Ivm.create ~conv ~db () in
  Ivm.register ivm ~name:"T" agg_prog;
  let step batch =
    ignore (Ivm.apply ivm batch);
    check_against_scratch ~conv ivm "T" agg_prog
  in
  (* grow an existing group *)
  step [ ("O", [ (row db "O" [ i 1; i 100 ], 1) ]) ];
  (* delete a whole group *)
  step [ ("O", [ (row db "O" [ i 2; i 5 ], -1) ]) ];
  (* new group + NULL-keyed rows (canonical key groups NULL with NULL) *)
  step
    [ ("O", [ (row db "O" [ i 7; i 1 ], 1); (row db "O" [ V.Null; i 4 ], 1) ]) ];
  step [ ("O", [ (row db "O" [ V.Null; i 3 ], -1) ]) ];
  Alcotest.(check int)
    "aggregate stays on the counting path" 0 (Ivm.fallback_total ivm)

(* ------------------------------------------------------------------ *)
(* Recursive: transitive closure under DRed                            *)
(* ------------------------------------------------------------------ *)

let tc_defs =
  [
    define "A"
      (collection "A" [ "s"; "t" ]
         (disj
            [
              exists [ bind "p" "P" ]
                (conj
                   [
                     eq (attr "A" "s") (attr "p" "s");
                     eq (attr "A" "t") (attr "p" "t");
                   ]);
              exists
                [ bind "p" "P"; bind "a" "A" ]
                (conj
                   [
                     eq (attr "A" "s") (attr "p" "s");
                     eq (attr "p" "t") (attr "a" "s");
                     eq (attr "A" "t") (attr "a" "t");
                   ]);
            ]));
  ]

let tc_prog =
  program ~defs:tc_defs
    (coll "Q" [ "s"; "t" ]
       (exists [ bind "a" "A" ]
          (conj
             [
               eq (attr "Q" "s") (attr "a" "s");
               eq (attr "Q" "t") (attr "a" "t");
             ])))

let tc_db () =
  Database.of_list
    [
      ( "P",
        Relation.of_rows [ "s"; "t" ]
          [ [ i 1; i 2 ]; [ i 2; i 3 ]; [ i 3; i 4 ]; [ i 5; i 1 ] ] );
    ]

let tc_incremental conv =
  let db = tc_db () in
  let ivm = Ivm.create ~conv ~db () in
  Ivm.register ivm ~name:"TC" tc_prog;
  let step batch =
    ignore (Ivm.apply ivm batch);
    check_against_scratch ~conv ivm "TC" tc_prog
  in
  (* pure insertion: connect a new node *)
  step [ ("P", [ (row db "P" [ i 4; i 6 ], 1) ]) ];
  (* pure deletion: cut the chain in the middle; paths through (2,3)
     must disappear, including transitively derived ones *)
  step [ ("P", [ (row db "P" [ i 2; i 3 ], -1) ]) ];
  (* mixed: remove one edge, add a shortcut that re-derives some pairs *)
  step
    [ ("P", [ (row db "P" [ i 3; i 4 ], -1); (row db "P" [ i 1; i 4 ], 1) ]) ];
  (* deletion where an alternative derivation survives *)
  step [ ("P", [ (row db "P" [ i 1; i 2 ], 1); (row db "P" [ i 1; i 2 ], -1) ]) ];
  Alcotest.(check int)
    "TC stays on the DRed path" 0 (Ivm.fallback_total ivm)

(* ------------------------------------------------------------------ *)
(* Fallback: anti-join views recompute but stay correct                *)
(* ------------------------------------------------------------------ *)

let anti_prog =
  program
    (coll "Q" [ "a" ]
       (exists [ bind "r" "R" ]
          (conj
             [
               eq (attr "Q" "a") (attr "r" "a");
               not_
                 (exists [ bind "s" "S" ]
                    (eq (attr "r" "b") (attr "s" "b")));
             ])))

let anti_fallback conv =
  let db =
    Database.of_list
      [
        ( "R",
          Relation.of_rows [ "a"; "b" ] [ [ i 1; i 10 ]; [ i 2; i 20 ] ] );
        ("S", Relation.of_rows [ "b" ] [ [ i 20 ] ]);
      ]
  in
  let ivm = Ivm.create ~conv ~db () in
  Ivm.register ivm ~name:"Q" anti_prog;
  let reports = Ivm.apply ivm [ ("S", [ (row db "S" [ i 10 ], 1) ]) ] in
  check_against_scratch ~conv ivm "Q" anti_prog;
  let q = List.find (fun r -> r.Ivm.vr_view = "Q") reports in
  Alcotest.(check string) "anti-join recomputes" "fallback" q.Ivm.vr_mode;
  Alcotest.(check bool) "fallback is counted" true (Ivm.fallback_total ivm > 0)

(* ------------------------------------------------------------------ *)
(* Batch semantics                                                     *)
(* ------------------------------------------------------------------ *)

let inverse_roundtrip conv =
  let db = join_db () in
  let ivm = Ivm.create ~conv ~db () in
  Ivm.register ivm ~name:"Q" join_prog;
  let before_db = Ivm.db ivm in
  let before = Ivm.result ivm "Q" in
  let batch =
    [
      ("R", [ (row db "R" [ i 9; i 20 ], 2); (row db "R" [ i 1; i 10 ], -1) ]);
      ("S", [ (row db "S" [ i 20; i 8 ], -1) ]);
    ]
  in
  ignore (Ivm.apply ivm batch);
  ignore (Ivm.apply ivm (Ivm.inverse batch));
  Alcotest.(check bool)
    "view restored" true
    (Relation.equal_bag before (Ivm.result ivm "Q"));
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " restored") true
        (Relation.equal_bag (Database.find before_db n)
           (Database.find (Ivm.db ivm) n)))
    (Database.names before_db);
  check_against_scratch ~conv ivm "Q" join_prog

let atomic_on_error () =
  let db = join_db () in
  let ivm = Ivm.create ~conv:Conventions.sql ~db () in
  Ivm.register ivm ~name:"Q" join_prog;
  let before = Ivm.result ivm "Q" in
  (* second relation is unknown: nothing may have been applied *)
  (try
     ignore
       (Ivm.apply ivm
          [
            ("R", [ (row db "R" [ i 8; i 10 ], 1) ]);
            ("Nope", [ (row db "R" [ i 8; i 10 ], 1) ]);
          ]);
     Alcotest.fail "expected Ivm_error"
   with Ivm.Ivm_error _ -> ());
  Alcotest.(check bool)
    "db untouched" true
    (Relation.equal_bag
       (Database.find db "R")
       (Database.find (Ivm.db ivm) "R"));
  Alcotest.(check bool)
    "view untouched" true
    (Relation.equal_bag before (Ivm.result ivm "Q"));
  (* deleting beyond multiplicity is also atomic *)
  (try
     ignore (Ivm.apply ivm [ ("S", [ (row db "S" [ i 10; i 7 ], -5) ]) ]);
     Alcotest.fail "expected Ivm_error"
   with Ivm.Ivm_error _ -> ());
  Alcotest.(check bool)
    "db untouched after underflow" true
    (Relation.equal_bag
       (Database.find db "S")
       (Database.find (Ivm.db ivm) "S"))

let unchanged_views_skipped () =
  let db =
    Database.of_list
      [
        ("R", Relation.of_rows [ "a"; "b" ] [ [ i 1; i 10 ] ]);
        ("S", Relation.of_rows [ "b"; "c" ] [ [ i 10; i 7 ] ]);
        ("Z", Relation.of_rows [ "z" ] [ [ i 1 ] ]);
      ]
  in
  let ivm = Ivm.create ~conv:Conventions.sql_set ~db () in
  Ivm.register ivm ~name:"Q" join_prog;
  let reports = Ivm.apply ivm [ ("Z", [ (row db "Z" [ i 2 ], 1) ]) ] in
  let q = List.find (fun r -> r.Ivm.vr_view = "Q") reports in
  Alcotest.(check string) "untouched deps skip work" "unchanged" q.Ivm.vr_mode;
  Alcotest.(check int) "no output delta" 0 q.Ivm.vr_out_delta

(* View names must stay out of the engine's working namespace: a view
   registered as "__ivm__X" would collide with maintenance scratch
   relations (and "__delta__X" with seminaive deltas). *)
let reserved_view_names_rejected () =
  let db = join_db () in
  let ivm = Ivm.create ~conv:Conventions.sql_set ~db () in
  List.iter
    (fun name ->
      try
        Ivm.register ivm ~name join_prog;
        Alcotest.failf "view name %S unexpectedly accepted" name
      with Ivm.Ivm_error msg ->
        let contains needle hay =
          let nl = String.length needle and hl = String.length hay in
          let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool)
          (name ^ " error names the reserved namespace")
          true
          (contains "reserved" msg))
    [ "__ivm__X"; "__ivm__old__R"; "__delta__Q" ];
  Alcotest.(check (list string)) "nothing registered" [] (Ivm.views ivm)

(* ------------------------------------------------------------------ *)
(* Delta module basics                                                 *)
(* ------------------------------------------------------------------ *)

let delta_basics () =
  let sch = Schema.make [ "a" ] in
  let t1 = Tuple.make sch [| i 1 |] and t2 = Tuple.make sch [| i 2 |] in
  let d = Delta.of_list [ (t1, 2); (t2, -1); (t1, -2) ] in
  Alcotest.(check int) "cancelled entry dropped" 0 (Delta.count d t1);
  Alcotest.(check int) "net count" (-1) (Delta.count d t2);
  Alcotest.(check int) "cardinality is abs sum" 1 (Delta.cardinality d);
  Alcotest.(check int) "negate flips" 1 (Delta.count (Delta.negate d) t2);
  (* Int/Float and Null/Null match under the canonical key *)
  let tf = Tuple.make sch [| V.float 1.0 |] in
  let d2 = Delta.of_list [ (t1, 1); (tf, -1) ] in
  Alcotest.(check bool) "Int 1 cancels Float 1.0" true (Delta.is_empty d2);
  let tn = Tuple.make sch [| V.Null |] in
  let d3 = Delta.of_list [ (tn, 1); (tn, 1) ] in
  Alcotest.(check int) "Null matches Null" 2 (Delta.count d3 tn)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "ivm"
    [
      ( "delta",
        [ Alcotest.test_case "signed multiset basics" `Quick delta_basics ] );
      ( "counting",
        [
          Alcotest.test_case "join/filter/projection, all convs" `Quick
            (for_all_convs join_incremental);
          Alcotest.test_case "grouped aggregate, all convs" `Quick
            (for_all_convs agg_incremental);
        ] );
      ( "dred",
        [
          Alcotest.test_case "transitive closure, all convs" `Quick
            (for_all_convs tc_incremental);
        ] );
      ( "fallback",
        [
          Alcotest.test_case "anti-join recomputes, all convs" `Quick
            (for_all_convs anti_fallback);
        ] );
      ( "batches",
        [
          Alcotest.test_case "inverse batch restores, all convs" `Quick
            (for_all_convs inverse_roundtrip);
          Alcotest.test_case "atomic on error" `Quick atomic_on_error;
          Alcotest.test_case "unchanged views are skipped" `Quick
            unchanged_views_skipped;
          Alcotest.test_case "reserved view names rejected" `Quick
            reserved_view_names_rejected;
        ] );
    ]
