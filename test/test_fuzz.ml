(* Fuzz subsystem tests.

   - Every checked-in repro under [repros/] is a shrunk case that once
     exposed a real divergence; replaying it through the full oracle must
     now come back clean (the owning layer carries the fix), which makes
     each repro a permanent regression test.
   - The greedy shrinker's invariants: the result still validates, still
     fails the caller's predicate, never grows, and is a local minimum
     (no variant of it both validates and fails). *)

module Fuzz = Arc_fuzz
module Case = Fuzz.Case
module Oracle = Fuzz.Oracle
module Gen = Fuzz.Gen
module Shrink = Fuzz.Shrink
module Repro = Fuzz.Repro
module Driver = Fuzz.Driver
module Database = Arc_relation.Database
module Relation = Arc_relation.Relation

let repros_root = "repros"

(* ------------------------------------------------------------------ *)
(* Repro replay                                                        *)
(* ------------------------------------------------------------------ *)

let repro_dirs = Repro.list_repros repros_root

let replay dir () =
  let case, meta = Repro.load dir in
  (match Case.validate case with
  | Ok () -> ()
  | Error errs ->
      Alcotest.failf "%s: repro no longer validates: %s" dir
        (String.concat "; "
           (List.map Arc_core.Analysis.error_to_string errs)));
  match Oracle.check case with
  | [] -> ()
  | divs ->
      Alcotest.failf "%s: regressed (was: %s):@.%s" dir
        (match List.assoc_opt "kind" meta with Some k -> k | None -> "?")
        (String.concat "\n" (List.map Oracle.divergence_to_string divs))

let repro_tests =
  List.map
    (fun dir -> Alcotest.test_case (Filename.basename dir) `Quick (replay dir))
    repro_dirs

let repros_present () =
  if List.length repro_dirs < 3 then
    Alcotest.failf "expected at least 3 checked-in repros, found %d"
      (List.length repro_dirs)

(* ------------------------------------------------------------------ *)
(* Shrinker invariants                                                 *)
(* ------------------------------------------------------------------ *)

(* a deterministic, semantics-free failure predicate: the case still
   mentions at least one base-relation row anywhere in its database *)
let has_rows (c : Case.t) =
  List.exists
    (fun n -> Relation.cardinality (Database.find c.Case.db n) > 0)
    (Database.names c.Case.db)

let gen_valid_case seed =
  let rec try_i i =
    if i > 200 then Alcotest.fail "generator produced no valid case in 200 tries"
    else
      let st = Random.State.make [| seed; i |] in
      let c = Gen.gen_case st in
      match Case.validate c with
      | Ok () when has_rows c -> c
      | _ -> try_i (i + 1)
  in
  try_i 0

let shrink_preserves_predicate () =
  List.iter
    (fun seed ->
      let c0 = gen_valid_case seed in
      let c, _steps = Shrink.shrink ~fails:has_rows c0 in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: shrunk case still validates" seed)
        true
        (match Case.validate c with Ok () -> true | Error _ -> false);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: shrunk case still fails" seed)
        true (has_rows c))
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let shrink_never_grows () =
  List.iter
    (fun seed ->
      let c0 = gen_valid_case seed in
      let c, steps = Shrink.shrink ~fails:has_rows c0 in
      if Case.size c > Case.size c0 then
        Alcotest.failf "seed %d: size grew %d -> %d" seed (Case.size c0)
          (Case.size c);
      if steps > 0 && Case.size c >= Case.size c0 then
        Alcotest.failf "seed %d: %d accepted steps but size did not shrink"
          seed steps)
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let shrink_reaches_local_minimum () =
  List.iter
    (fun seed ->
      let c0 = gen_valid_case seed in
      (* unlimited-enough attempts so the loop stops by minimality, not cap *)
      let c, _ = Shrink.shrink ~max_attempts:100_000 ~fails:has_rows c0 in
      let improvable =
        List.exists
          (fun v ->
            Case.size v < Case.size c
            && (match Case.validate v with Ok () -> true | Error _ -> false)
            && has_rows v)
          (Shrink.case_variants c)
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: no smaller valid failing variant" seed)
        false improvable)
    [ 0; 1; 2; 3 ]

let shrink_respects_attempt_cap () =
  let c0 = gen_valid_case 11 in
  (* with a zero budget the shrinker must return the input unchanged *)
  let c, steps = Shrink.shrink ~max_attempts:0 ~fails:has_rows c0 in
  Alcotest.(check int) "no steps under zero budget" 0 steps;
  Alcotest.(check int) "size unchanged" (Case.size c0) (Case.size c)

(* a predicate pinned to the failure *kind*, as the driver uses: shrinking a
   divergent case must preserve divergence of the same kind, here simulated
   with a structural kind (program still quantifies over some relation) *)
let shrink_driver_style_predicate () =
  let c0 = gen_valid_case 17 in
  let mentions_exists (c : Case.t) =
    let rec f_has (f : Arc_core.Ast.formula) =
      match f with
      | Arc_core.Ast.Exists _ -> true
      | Arc_core.Ast.And fs | Arc_core.Ast.Or fs -> List.exists f_has fs
      | Arc_core.Ast.Not g -> f_has g
      | _ -> false
    in
    match c.Case.prog.Arc_core.Ast.main with
    | Arc_core.Ast.Coll coll -> f_has coll.Arc_core.Ast.body
    | Arc_core.Ast.Sentence f -> f_has f
  in
  if mentions_exists c0 then begin
    let c, _ = Shrink.shrink ~fails:mentions_exists c0 in
    Alcotest.(check bool) "kind-style predicate preserved" true
      (mentions_exists c)
  end

(* ------------------------------------------------------------------ *)
(* Driver smoke: a small fixed-seed campaign finds nothing             *)
(* ------------------------------------------------------------------ *)

let driver_clean_campaign () =
  let stats, findings = Driver.run ~shrink:false ~seed:7 ~count:15 () in
  Alcotest.(check int) "no divergences" 0 stats.Driver.diverged;
  Alcotest.(check (list string)) "no findings" []
    (List.map (fun f -> f.Driver.f_name) findings);
  Alcotest.(check bool) "cases were generated" true (stats.Driver.generated > 15)

(* IVM mode: every generated case becomes a maintained view; random
   signed batches (a pure function of the seed) are pushed through
   incremental maintenance and compared against from-scratch
   re-evaluation under all convention combos. *)
let driver_clean_ivm_campaign () =
  let stats, findings = Driver.run ~shrink:false ~ivm:true ~seed:42 ~count:25 () in
  Alcotest.(check int) "no ivm divergences" 0 stats.Driver.diverged;
  Alcotest.(check (list string)) "no ivm findings" []
    (List.map (fun f -> f.Driver.f_name) findings)

let () =
  Alcotest.run "arc_fuzz"
    [
      ("repros", Alcotest.test_case "at least three" `Quick repros_present :: repro_tests);
      ( "shrinker",
        [
          Alcotest.test_case "preserves predicate and validity" `Quick
            shrink_preserves_predicate;
          Alcotest.test_case "never grows" `Quick shrink_never_grows;
          Alcotest.test_case "reaches a local minimum" `Quick
            shrink_reaches_local_minimum;
          Alcotest.test_case "respects the attempt cap" `Quick
            shrink_respects_attempt_cap;
          Alcotest.test_case "driver-style kind predicate" `Quick
            shrink_driver_style_predicate;
        ] );
      ( "driver",
        [
          Alcotest.test_case "fixed-seed campaign is clean" `Quick
            driver_clean_campaign;
          Alcotest.test_case "fixed-seed ivm campaign is clean" `Quick
            driver_clean_ivm_campaign;
        ] );
    ]
