(* Plan library tests: lowering shapes (via the explain renderer), each
   optimizer rewrite pass preserving results, hash-key NULL semantics under
   both null logics, plan-level seminaive fixpoints, governor integration,
   tracer spans, and the join-annotation fallback. *)

open Arc_core.Ast
open Arc_core.Build
module V = Arc_value.Value
module Conventions = Arc_value.Conventions
module Relation = Arc_relation.Relation
module Tuple = Arc_relation.Tuple
module Database = Arc_relation.Database
module Eval = Arc_engine.Eval
module Exec = Arc_engine.Exec
module Lower = Arc_plan.Lower
module Opt = Arc_plan.Opt
module Explain = Arc_plan.Explain
module Obs = Arc_obs.Obs
module Gov = Arc_guard.Gov
module Budget = Arc_guard.Budget
module Data = Arc_catalog.Data

let program ?(defs = []) main = { defs; main }

let bag r = List.sort compare (List.map Tuple.key (Relation.tuples r))

let check_same_bag msg r1 r2 =
  Alcotest.(check (list string)) msg (bag r1) (bag r2)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* a two-relation equi-join with a pushable constant filter *)
let join_query =
  collection "Q" [ "A"; "C" ]
    (exists [ bind "r" "R"; bind "s" "S" ]
       (conj
          [
            eq (attr "r" "B") (attr "s" "B");
            eq (attr "Q" "A") (attr "r" "A");
            eq (attr "Q" "C") (attr "s" "C");
          ]))

let explain_of ?passes ~db q =
  let env = Lower.env_of_db ~db ~defs:[] in
  let raw = Lower.lower_collection env q in
  let opt, report =
    match passes with
    | None -> Opt.optimize_coll env raw
    | Some ps -> Opt.optimize_coll ~passes:ps env raw
  in
  (Explain.coll_plan_to_string raw, Explain.coll_plan_to_string opt, report)

(* ---------------------------------------------------------------- *)

let lowering_shape () =
  let raw, opt, report = explain_of ~db:Data.db_rs join_query in
  Alcotest.(check bool) "raw plan enumerates a product" true
    (contains raw "scan R as r" && contains raw "scan S as s");
  Alcotest.(check bool) "optimized plan uses a hash join" true
    (contains opt "hash join on");
  Alcotest.(check bool) "reorder pass reported as applied" true
    (List.assoc "hash-join-order" report);
  Alcotest.(check bool) "no residual product left" false
    (contains opt "product")

let fallback_shape () =
  (* eq18 carries an explicit join-tree annotation: lowered to a fallback *)
  let raw, opt, _ = explain_of ~db:Data.db_outer Data.eq18 in
  Alcotest.(check bool) "raw is a reference fallback" true
    (contains raw "reference evaluator");
  Alcotest.(check bool) "fallback survives optimization" true
    (contains opt "reference evaluator")

let semi_shape () =
  let q =
    collection "Q" [ "A" ]
      (exists [ bind "r" "R" ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              not_
                (exists [ bind "s" "S" ]
                   (eq (attr "s" "B") (attr "r" "B")));
            ]))
  in
  let _, opt, report = explain_of ~db:Data.db_rs q in
  Alcotest.(check bool) "negated exists becomes a hash anti join" true
    (contains opt "hash anti join");
  Alcotest.(check bool) "decorrelate pass reported" true
    (List.assoc "decorrelate-exists" report)

(* every prefix of the pass pipeline preserves results on a fixed corpus *)
let passes_preserve () =
  let cases =
    [
      ("join", Data.db_rs, join_query);
      ("grouping", Data.db_grouping, Data.eq3);
      ("payroll", Data.db_payroll, Data.eq8);
      ("countbug", Data.db_countbug, Data.eq27);
      ("division", Data.db_beers, Data.eq22);
    ]
  in
  List.iter
    (fun (name, db, q) ->
      let env = Lower.env_of_db ~db ~defs:[] in
      let raw = Lower.lower_collection env q in
      let prog = program (Coll q) in
      let reference = Eval.run_rows ~db prog in
      let rec prefixes acc = function
        | [] -> [ List.rev acc ]
        | p :: rest -> List.rev acc :: prefixes (p :: acc) rest
      in
      List.iter
        (fun passes ->
          let opt, _ = Opt.optimize_coll ~passes env raw in
          let ctx, _ = Eval.Internal.prepare ~db prog in
          match
            Exec.exec_program ctx
              { Arc_plan.Ir.strata = []; main = Arc_plan.Ir.Main_coll opt }
          with
          | Eval.Rows r ->
              check_same_bag
                (Printf.sprintf "%s with %d passes" name (List.length passes))
                reference r
          | Eval.Truth _ -> Alcotest.fail "expected rows")
        (prefixes [] Opt.pipeline))
    cases

let null_key_semantics () =
  let db =
    Database.of_list
      [
        ("R", Relation.of_rows [ "A" ] [ [ V.Int 1 ]; [ V.Null ] ]);
        ("S", Relation.of_rows [ "A" ] [ [ V.Int 1 ]; [ V.Null ] ]);
      ]
  in
  let q =
    collection "Q" [ "A" ]
      (exists [ bind "r" "R"; bind "s" "S" ]
         (conj
            [
              eq (attr "r" "A") (attr "s" "A");
              eq (attr "Q" "A") (attr "r" "A");
            ]))
  in
  let run conv engine =
    match engine with
    | `Reference -> Eval.run_rows ~conv ~db (program (Coll q))
    | `Plan -> Exec.run_rows ~conv ~db (program (Coll q))
  in
  (* 3VL: NULL = NULL is Unknown — only the (1,1) match survives *)
  let r3 = run Conventions.sql `Plan in
  Alcotest.(check int) "3VL: null keys never match" 1 (Relation.cardinality r3);
  check_same_bag "3VL parity" (run Conventions.sql `Reference) r3;
  (* 2VL: NULL is an ordinary value — both pairs match *)
  let conv2 = Conventions.classical in
  let r2 = run conv2 `Plan in
  Alcotest.(check int) "2VL: null is a regular key" 2 (Relation.cardinality r2);
  check_same_bag "2VL parity" (run conv2 `Reference) r2

let tc_defs =
  [
    {
      def_name = "T";
      def_body =
        collection "T" [ "src"; "dst" ]
          (disj
             [
               exists [ bind "e" "E" ]
                 (conj
                    [
                      eq (attr "T" "src") (attr "e" "src");
                      eq (attr "T" "dst") (attr "e" "dst");
                    ]);
               exists [ bind "t" "T"; bind "e" "E" ]
                 (conj
                    [
                      eq (attr "t" "dst") (attr "e" "src");
                      eq (attr "T" "src") (attr "t" "src");
                      eq (attr "T" "dst") (attr "e" "dst");
                    ]);
             ]);
    };
  ]

let tc_main =
  collection "Q" [ "src"; "dst" ]
    (exists [ bind "t" "T" ]
       (conj
          [
            eq (attr "Q" "src") (attr "t" "src");
            eq (attr "Q" "dst") (attr "t" "dst");
          ]))

let db_chain n =
  Database.of_list
    [
      ( "E",
        Relation.of_rows [ "src"; "dst" ]
          (List.init n (fun i -> [ V.Int i; V.Int (i + 1) ])) );
    ]

let plan_seminaive () =
  let db = db_chain 16 in
  let prog = program ~defs:tc_defs (Coll tc_main) in
  let naive = Exec.run_rows ~strategy:Eval.Naive ~db prog in
  let semi = Exec.run_rows ~strategy:Eval.Seminaive ~db prog in
  let reference = Eval.run_rows ~db prog in
  Alcotest.(check int) "chain closure size" (16 * 17 / 2)
    (Relation.cardinality naive);
  check_same_bag "plan naive = plan seminaive" naive semi;
  check_same_bag "plan = reference on TC" reference semi

let plan_seminaive_actually_runs () =
  (* the seminaive fixpoint must be chosen (not silently degrade to naive)
     for a plain scan-only recursive definition *)
  let tracer = Obs.collector () in
  let _ =
    Exec.run_rows ~strategy:Eval.Seminaive ~tracer ~db:(db_chain 6)
      (program ~defs:tc_defs (Coll tc_main))
  in
  let spans = Obs.spans tracer in
  Alcotest.(check bool) "fixpoint:seminaive span present" true
    (Obs.find_spans spans "fixpoint:seminaive" <> []);
  Alcotest.(check bool) "no naive fixpoint span" true
    (Obs.find_spans spans "fixpoint:naive" = [])

let tracer_spans () =
  let tracer = Obs.collector () in
  let _ = Exec.run_rows ~tracer ~db:Data.db_rs (program (Coll join_query)) in
  let spans = Obs.spans tracer in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " span present") true
        (Obs.find_spans spans name <> []))
    [ "collection:Q"; "hash_join"; "scan" ]

let guard_truncates () =
  let guard = Gov.make ~on_limit:`Truncate { Budget.default with max_rows = Some 2 } in
  let r =
    Exec.run_rows ~guard ~db:(db_chain 10)
      (program
         (Coll
            (collection "Q" [ "src" ]
               (exists [ bind "e" "E" ]
                  (eq (attr "Q" "src") (attr "e" "src"))))))
  in
  Alcotest.(check bool) "row budget clips plan output" true
    (Relation.cardinality r <= 2);
  Alcotest.(check bool) "governor reports truncation" true
    (Gov.report guard).Gov.truncated

let explain_program () =
  let db = db_chain 4 in
  let _, _, opt, report =
    Exec.compile ~db (program ~defs:tc_defs (Coll tc_main))
  in
  let s = Explain.program_plan_to_string opt in
  Alcotest.(check bool) "recursive stratum rendered" true
    (contains s "recursive stratum {T}");
  Alcotest.(check bool) "main rendered" true (contains s "main:");
  let rs = Explain.report_to_string report in
  Alcotest.(check bool) "report lists all passes" true
    (List.for_all
       (fun n -> contains rs n)
       [ "predicate-pushdown"; "decorrelate-exists"; "hash-join-order";
         "prune-columns" ])

let () =
  Alcotest.run "arc_plan"
    [
      ( "lowering",
        [
          Alcotest.test_case "join lowers and optimizes to hash join" `Quick
            lowering_shape;
          Alcotest.test_case "join annotation falls back to reference" `Quick
            fallback_shape;
          Alcotest.test_case "negated exists decorrelates" `Quick semi_shape;
        ] );
      ( "rewrites",
        [ Alcotest.test_case "every pass prefix preserves results" `Quick
            passes_preserve ] );
      ( "execution",
        [
          Alcotest.test_case "null hash keys respect null logic" `Quick
            null_key_semantics;
          Alcotest.test_case "plan-level seminaive = naive = reference" `Quick
            plan_seminaive;
          Alcotest.test_case "seminaive strategy engages on plans" `Quick
            plan_seminaive_actually_runs;
          Alcotest.test_case "operator spans reach the tracer" `Quick
            tracer_spans;
          Alcotest.test_case "row budget truncates plan output" `Quick
            guard_truncates;
          Alcotest.test_case "explain renders program plans" `Quick
            explain_program;
        ] );
    ]
