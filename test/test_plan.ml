(* Plan library tests: lowering shapes (via the explain renderer), each
   optimizer rewrite pass preserving results, hash-key NULL semantics under
   both null logics, plan-level seminaive fixpoints, governor integration,
   tracer spans, and the join-annotation fallback. *)

open Arc_core.Ast
open Arc_core.Build
module V = Arc_value.Value
module Conventions = Arc_value.Conventions
module Relation = Arc_relation.Relation
module Tuple = Arc_relation.Tuple
module Database = Arc_relation.Database
module Eval = Arc_engine.Eval
module Exec = Arc_engine.Exec
module Lower = Arc_plan.Lower
module Opt = Arc_plan.Opt
module Explain = Arc_plan.Explain
module Obs = Arc_obs.Obs
module Gov = Arc_guard.Gov
module Budget = Arc_guard.Budget
module Data = Arc_catalog.Data

let program ?(defs = []) main = { defs; main }

let bag r = List.sort compare (List.map Tuple.key (Relation.tuples r))

let check_same_bag msg r1 r2 =
  Alcotest.(check (list string)) msg (bag r1) (bag r2)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* a two-relation equi-join with a pushable constant filter *)
let join_query =
  collection "Q" [ "A"; "C" ]
    (exists [ bind "r" "R"; bind "s" "S" ]
       (conj
          [
            eq (attr "r" "B") (attr "s" "B");
            eq (attr "Q" "A") (attr "r" "A");
            eq (attr "Q" "C") (attr "s" "C");
          ]))

let explain_of ?passes ~db q =
  let env = Lower.env_of_db ~db ~defs:[] in
  let raw = Lower.lower_collection env q in
  let opt, report =
    match passes with
    | None -> Opt.optimize_coll env raw
    | Some ps -> Opt.optimize_coll ~passes:ps env raw
  in
  (Explain.coll_plan_to_string raw, Explain.coll_plan_to_string opt, report)

(* ---------------------------------------------------------------- *)

let lowering_shape () =
  let raw, opt, report = explain_of ~db:Data.db_rs join_query in
  Alcotest.(check bool) "raw plan enumerates a product" true
    (contains raw "scan R as r" && contains raw "scan S as s");
  Alcotest.(check bool) "optimized plan uses a hash join" true
    (contains opt "hash join on");
  Alcotest.(check bool) "reorder pass reported as applied" true
    (List.assoc "hash-join-order" report);
  Alcotest.(check bool) "no residual product left" false
    (contains opt "product")

let no_fallback_shape () =
  (* eq18 carries an explicit join-tree annotation; the RANF-style
     translation lowers it to an append of matched/null-padded branches
     instead of the reference-evaluator fallback *)
  let raw, opt, _ = explain_of ~db:Data.db_outer Data.eq18 in
  Alcotest.(check bool) "eq18 lowers without a fallback" false
    (contains raw "reference evaluator");
  Alcotest.(check bool) "eq18 lowers to an append of branches" true
    (contains raw "append");
  Alcotest.(check bool) "optimized eq18 stays fallback-free" false
    (contains opt "reference evaluator");
  (* and no catalog query reaches the fallback node at all *)
  let db_xy =
    Database.of_list
      [
        ("X", Relation.of_rows [ "A" ] [ [ V.Int 1 ]; [ V.Int 5 ] ]);
        ("Y", Relation.of_rows [ "A" ] [ [ V.Int 2 ]; [ V.Int 6 ] ]);
      ]
  in
  let db_sec27 =
    Database.of_list
      [
        ("R", Relation.of_rows [ "A"; "B" ] [ [ V.Int 1; V.Int 7 ] ]);
        ("S", Relation.of_rows [ "B" ] [ [ V.Int 7 ]; [ V.Int 7 ] ]);
      ]
  in
  let cases =
    [
      ("eq1", Data.db_rs, [], Coll Data.eq1);
      ("eq2", db_xy, [], Coll Data.eq2);
      ("eq3", Data.db_grouping, [], Coll Data.eq3);
      ("eq7", Data.db_grouping, [], Coll Data.eq7);
      ("eq8", Data.db_payroll, [], Coll Data.eq8);
      ("eq10", Data.db_payroll, [], Coll Data.eq10);
      ("eq12", Data.db_payroll, [], Coll Data.eq12);
      ("eq15", Data.db_souffle, [], Coll Data.eq15);
      ("eq16", Data.db_parent, Data.eq16_defs, Coll Data.eq16_main);
      ("eq17", Data.db_nulls, [], Coll Data.eq17);
      ("eq17-plain", Data.db_nulls, [], Coll Data.eq17_plain_not_exists);
      ("eq18", Data.db_outer, [], Coll Data.eq18);
      ("fig13-lateral", Data.db_fig13, [], Coll Data.fig13_lateral);
      ("fig13-leftjoin", Data.db_fig13, [], Coll Data.fig13_leftjoin);
      ("eq19", Data.db_external, [], Coll Data.eq19);
      ("eq20", Data.db_external, [], Coll Data.eq20);
      ("eq21", Data.db_external, [], Coll Data.eq21);
      ("eq22", Data.db_beers, [], Coll Data.eq22);
      ("eq24", Data.db_beers, [ Data.eq23_subset ], Coll Data.eq24);
      ("eq26", Data.db_matrices, [], Coll Data.eq26);
      ("eq26-external", Data.db_matrices, [], Coll Data.eq26_external);
      ("eq27", Data.db_countbug, [], Coll Data.eq27);
      ("eq28", Data.db_countbug, [], Coll Data.eq28);
      ("eq29", Data.db_countbug, [], Coll Data.eq29);
      ("sec27-nested", db_sec27, [], Coll Data.sec27_nested);
      ("sec27-unnested", db_sec27, [], Coll Data.sec27_unnested);
    ]
  in
  List.iter
    (fun (name, db, defs, main) ->
      let _, _, plan, _ = Exec.compile ~db { defs; main } in
      let s = Explain.program_plan_to_string plan in
      Alcotest.(check bool) (name ^ " compiles without fallback") false
        (contains s "reference evaluator"))
    cases

let semi_shape () =
  let q =
    collection "Q" [ "A" ]
      (exists [ bind "r" "R" ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              not_
                (exists [ bind "s" "S" ]
                   (eq (attr "s" "B") (attr "r" "B")));
            ]))
  in
  let _, opt, report = explain_of ~db:Data.db_rs q in
  Alcotest.(check bool) "negated exists becomes a hash anti join" true
    (contains opt "hash anti join");
  Alcotest.(check bool) "decorrelate pass reported" true
    (List.assoc "decorrelate-exists" report)

(* every prefix of the pass pipeline preserves results on a fixed corpus *)
let passes_preserve () =
  let cases =
    [
      ("join", Data.db_rs, join_query);
      ("grouping", Data.db_grouping, Data.eq3);
      ("payroll", Data.db_payroll, Data.eq8);
      ("countbug", Data.db_countbug, Data.eq27);
      ("division", Data.db_beers, Data.eq22);
    ]
  in
  List.iter
    (fun (name, db, q) ->
      let env = Lower.env_of_db ~db ~defs:[] in
      let raw = Lower.lower_collection env q in
      let prog = program (Coll q) in
      let reference = Eval.run_rows ~db prog in
      let rec prefixes acc = function
        | [] -> [ List.rev acc ]
        | p :: rest -> List.rev acc :: prefixes (p :: acc) rest
      in
      List.iter
        (fun passes ->
          let opt, _ = Opt.optimize_coll ~passes env raw in
          let ctx, _ = Eval.Internal.prepare ~db prog in
          match
            Exec.exec_program ctx
              { Arc_plan.Ir.strata = []; main = Arc_plan.Ir.Main_coll opt }
          with
          | Eval.Rows r ->
              check_same_bag
                (Printf.sprintf "%s with %d passes" name (List.length passes))
                reference r
          | Eval.Truth _ -> Alcotest.fail "expected rows")
        (prefixes [] Opt.pipeline))
    cases

let null_key_semantics () =
  let db =
    Database.of_list
      [
        ("R", Relation.of_rows [ "A" ] [ [ V.Int 1 ]; [ V.Null ] ]);
        ("S", Relation.of_rows [ "A" ] [ [ V.Int 1 ]; [ V.Null ] ]);
      ]
  in
  let q =
    collection "Q" [ "A" ]
      (exists [ bind "r" "R"; bind "s" "S" ]
         (conj
            [
              eq (attr "r" "A") (attr "s" "A");
              eq (attr "Q" "A") (attr "r" "A");
            ]))
  in
  let run conv engine =
    match engine with
    | `Reference -> Eval.run_rows ~conv ~db (program (Coll q))
    | `Plan -> Exec.run_rows ~conv ~db (program (Coll q))
  in
  (* 3VL: NULL = NULL is Unknown — only the (1,1) match survives *)
  let r3 = run Conventions.sql `Plan in
  Alcotest.(check int) "3VL: null keys never match" 1 (Relation.cardinality r3);
  check_same_bag "3VL parity" (run Conventions.sql `Reference) r3;
  (* 2VL: NULL is an ordinary value — both pairs match *)
  let conv2 = Conventions.classical in
  let r2 = run conv2 `Plan in
  Alcotest.(check int) "2VL: null is a regular key" 2 (Relation.cardinality r2);
  check_same_bag "2VL parity" (run conv2 `Reference) r2

let tc_defs =
  [
    {
      def_name = "T";
      def_body =
        collection "T" [ "src"; "dst" ]
          (disj
             [
               exists [ bind "e" "E" ]
                 (conj
                    [
                      eq (attr "T" "src") (attr "e" "src");
                      eq (attr "T" "dst") (attr "e" "dst");
                    ]);
               exists [ bind "t" "T"; bind "e" "E" ]
                 (conj
                    [
                      eq (attr "t" "dst") (attr "e" "src");
                      eq (attr "T" "src") (attr "t" "src");
                      eq (attr "T" "dst") (attr "e" "dst");
                    ]);
             ]);
    };
  ]

let tc_main =
  collection "Q" [ "src"; "dst" ]
    (exists [ bind "t" "T" ]
       (conj
          [
            eq (attr "Q" "src") (attr "t" "src");
            eq (attr "Q" "dst") (attr "t" "dst");
          ]))

let db_chain n =
  Database.of_list
    [
      ( "E",
        Relation.of_rows [ "src"; "dst" ]
          (List.init n (fun i -> [ V.Int i; V.Int (i + 1) ])) );
    ]

let plan_seminaive () =
  let db = db_chain 16 in
  let prog = program ~defs:tc_defs (Coll tc_main) in
  let naive = Exec.run_rows ~strategy:Eval.Naive ~db prog in
  let semi = Exec.run_rows ~strategy:Eval.Seminaive ~db prog in
  let reference = Eval.run_rows ~db prog in
  Alcotest.(check int) "chain closure size" (16 * 17 / 2)
    (Relation.cardinality naive);
  check_same_bag "plan naive = plan seminaive" naive semi;
  check_same_bag "plan = reference on TC" reference semi

let plan_seminaive_actually_runs () =
  (* the seminaive fixpoint must be chosen (not silently degrade to naive)
     for a plain scan-only recursive definition *)
  let tracer = Obs.collector () in
  let _ =
    Exec.run_rows ~strategy:Eval.Seminaive ~tracer ~db:(db_chain 6)
      (program ~defs:tc_defs (Coll tc_main))
  in
  let spans = Obs.spans tracer in
  Alcotest.(check bool) "fixpoint:seminaive span present" true
    (Obs.find_spans spans "fixpoint:seminaive" <> []);
  Alcotest.(check bool) "no naive fixpoint span" true
    (Obs.find_spans spans "fixpoint:naive" = [])

let tracer_spans () =
  let tracer = Obs.collector () in
  let _ = Exec.run_rows ~tracer ~db:Data.db_rs (program (Coll join_query)) in
  let spans = Obs.spans tracer in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " span present") true
        (Obs.find_spans spans name <> []))
    [ "collection:Q"; "hash_join"; "scan" ]

let guard_truncates () =
  let guard = Gov.make ~on_limit:`Truncate { Budget.default with max_rows = Some 2 } in
  let r =
    Exec.run_rows ~guard ~db:(db_chain 10)
      (program
         (Coll
            (collection "Q" [ "src" ]
               (exists [ bind "e" "E" ]
                  (eq (attr "Q" "src") (attr "e" "src"))))))
  in
  Alcotest.(check bool) "row budget clips plan output" true
    (Relation.cardinality r <= 2);
  Alcotest.(check bool) "governor reports truncation" true
    (Gov.report guard).Gov.truncated

let explain_program () =
  let db = db_chain 4 in
  let _, _, opt, report =
    Exec.compile ~db (program ~defs:tc_defs (Coll tc_main))
  in
  let s = Explain.program_plan_to_string opt in
  Alcotest.(check bool) "recursive stratum rendered" true
    (contains s "recursive stratum {T}");
  Alcotest.(check bool) "main rendered" true (contains s "main:");
  let rs = Explain.report_to_string report in
  Alcotest.(check bool) "report lists all passes" true
    (List.for_all
       (fun n -> contains rs n)
       [ "predicate-pushdown"; "decorrelate-exists"; "hash-join-order";
         "prune-columns" ])

let magic_sets_rewrite () =
  let db = db_chain 16 in
  (* goal-directed: only paths out of node 0 are demanded *)
  let bound_main =
    collection "Q" [ "dst" ]
      (exists [ bind "t" "T" ]
         (conj
            [
              eq (attr "t" "src") (cint 0);
              eq (attr "Q" "dst") (attr "t" "dst");
            ]))
  in
  let prog = program ~defs:tc_defs (Coll bound_main) in
  let ctx, _, opt, report = Exec.compile ~db prog in
  Alcotest.(check bool) "magic-sets pass fired" true
    (List.assoc "magic-sets" report);
  let s = Explain.program_plan_to_string opt in
  Alcotest.(check bool) "magic relation in the plan" true
    (contains s "__magic__T");
  (match Exec.exec_program ctx opt with
  | Eval.Rows r ->
      check_same_bag "magic rewrite preserves the query result"
        (Eval.run_rows ~db prog) r
  | Eval.Truth _ -> Alcotest.fail "expected rows");
  (* the guarded fixpoint derives only the demanded slice of the closure:
     16 facts from source 0, not the full 136-fact closure *)
  (match Eval.Internal.idb_get ctx "T" with
  | Some t ->
      Alcotest.(check int) "only demanded facts derived" 16
        (Relation.cardinality t)
  | None -> Alcotest.fail "T not materialized");
  (match Eval.Internal.idb_get ctx "__magic__T" with
  | Some m -> Alcotest.(check int) "one seed" 1 (Relation.cardinality m)
  | None -> Alcotest.fail "__magic__T not materialized");
  (* an unbound use of T keeps the full fixpoint: no demand, no rewrite *)
  let _, _, _, report_unbound =
    Exec.compile ~db (program ~defs:tc_defs (Coll tc_main))
  in
  Alcotest.(check bool) "no constants, no rewrite" false
    (List.assoc "magic-sets" report_unbound)

(* cyclic graph: every closure fact is re-derivable each round, so the
   indexed fixpoint's seen-set (not per-round novelty) must terminate it *)
let db_cycle n =
  Database.of_list
    [
      ( "E",
        Relation.of_rows [ "src"; "dst" ]
          (List.init n (fun i -> [ V.Int i; V.Int ((i + 1) mod n) ])) );
    ]

let all_convs : (string * Conventions.t) list =
  List.concat_map
    (fun (cs, cn) ->
      List.concat_map
        (fun (nl, nn) ->
          List.map
            (fun (ae, an) ->
              ( Printf.sprintf "%s/%s/%s" cn nn an,
                Conventions.{ collection = cs; null_logic = nl; agg_empty = ae }
              ))
            [
              (Conventions.Agg_null, "agg_null");
              (Conventions.Agg_zero, "agg_zero");
            ])
        [ (Conventions.Two_valued, "2vl"); (Conventions.Three_valued, "3vl") ])
    [ (Conventions.Set, "set"); (Conventions.Bag, "bag") ]

(* indexed fixpoint ≡ tuple fixpoint ≡ naive ≡ reference, on a chain and
   a cycle, under every convention combination *)
let fixpoint_modes_agree () =
  let prog = program ~defs:tc_defs (Coll tc_main) in
  List.iter
    (fun (dbname, db) ->
      List.iter
        (fun (cname, conv) ->
          let reference = Eval.run_rows ~conv ~db prog in
          List.iter
            (fun (mname, fixpoint, batched) ->
              check_same_bag
                (Printf.sprintf "%s %s %s" dbname cname mname)
                reference
                (Exec.run_rows ~conv ~fixpoint ~batched ~db prog))
            [
              ("indexed", `Indexed, true);
              ("indexed/tuple-exec", `Indexed, false);
              ("tuple", `Tuple, true);
              ("tuple/tuple-exec", `Tuple, false);
            ];
          check_same_bag
            (Printf.sprintf "%s %s naive" dbname cname)
            reference
            (Exec.run_rows ~conv ~strategy:Eval.Naive ~db prog))
        all_convs)
    [ ("chain-12", db_chain 12); ("cycle-8", db_cycle 8) ]

(* Guard parity: both fixpoint implementations must trip the governor at
   the same budgets. Under a tight iteration cap with `Truncate both stop
   after the same rounds with identical partial closures; under a row cap
   both clip to at most the budget and report truncation; under `Fail
   both raise. *)
let fixpoint_guard_parity () =
  let db = db_chain 10 in
  let prog = program ~defs:tc_defs (Coll tc_main) in
  let run ?guard fixpoint batched =
    Exec.run_rows ?guard ~fixpoint ~batched ~db prog
  in
  let modes =
    [
      ("indexed", `Indexed, true);
      ("indexed/tuple-exec", `Indexed, false);
      ("tuple", `Tuple, true);
      ("tuple/tuple-exec", `Tuple, false);
    ]
  in
  (* iteration cap, `Truncate: identical partial closures across modes *)
  let iter_budget = { Budget.default with max_iterations = Some 3 } in
  let results =
    List.map
      (fun (n, f, b) ->
        (n, run ~guard:(Gov.make ~on_limit:`Truncate iter_budget) f b))
      modes
  in
  let _, first = List.hd results in
  Alcotest.(check bool) "iteration cap yields a partial closure" true
    (Relation.cardinality first < 55);
  List.iter
    (fun (n, r) ->
      check_same_bag (Printf.sprintf "iteration-capped %s = indexed" n) first r)
    (List.tl results);
  (* row cap, `Truncate: every mode clips to the budget and reports it *)
  List.iter
    (fun (n, f, b) ->
      let guard =
        Gov.make ~on_limit:`Truncate
          { Budget.default with max_rows = Some 10 }
      in
      let r = run ~guard f b in
      Alcotest.(check bool) (Printf.sprintf "row cap clips %s" n) true
        (Relation.cardinality r <= 10);
      Alcotest.(check bool)
        (Printf.sprintf "row-cap truncation reported for %s" n)
        true (Gov.report guard).Gov.truncated)
    modes;
  (* iteration cap, `Fail: every mode raises the same typed error *)
  List.iter
    (fun (n, f, b) ->
      let guard = Gov.make ~on_limit:`Fail iter_budget in
      match run ~guard f b with
      | _ -> Alcotest.fail (Printf.sprintf "%s did not trip the guard" n)
      | exception Eval.Eval_error _ -> ())
    modes

let () =
  Alcotest.run "arc_plan"
    [
      ( "lowering",
        [
          Alcotest.test_case "join lowers and optimizes to hash join" `Quick
            lowering_shape;
          Alcotest.test_case "catalog queries lower without fallback" `Quick
            no_fallback_shape;
          Alcotest.test_case "negated exists decorrelates" `Quick semi_shape;
        ] );
      ( "rewrites",
        [ Alcotest.test_case "every pass prefix preserves results" `Quick
            passes_preserve ] );
      ( "execution",
        [
          Alcotest.test_case "null hash keys respect null logic" `Quick
            null_key_semantics;
          Alcotest.test_case "plan-level seminaive = naive = reference" `Quick
            plan_seminaive;
          Alcotest.test_case "seminaive strategy engages on plans" `Quick
            plan_seminaive_actually_runs;
          Alcotest.test_case "operator spans reach the tracer" `Quick
            tracer_spans;
          Alcotest.test_case "row budget truncates plan output" `Quick
            guard_truncates;
          Alcotest.test_case "explain renders program plans" `Quick
            explain_program;
          Alcotest.test_case "magic sets restrict goal-directed recursion"
            `Quick magic_sets_rewrite;
          Alcotest.test_case "fixpoint modes agree across all conventions"
            `Quick fixpoint_modes_agree;
          Alcotest.test_case "fixpoint guard parity across modes" `Quick
            fixpoint_guard_parity;
        ] );
    ]
