(* Cross-cutting property-based tests over randomly generated ARC queries
   and databases: the whole pipeline (validate → canonicalize → evaluate →
   render to SQL → evaluate there) must agree with itself. *)

open Arc_core.Ast
module B = Arc_core.Build
module Canon = Arc_core.Canon
module Conventions = Arc_value.Conventions
module Relation = Arc_relation.Relation
module Database = Arc_relation.Database
module Eval = Arc_engine.Eval
module V = Arc_value.Value

let schemas = [ ("R", [ "A"; "B" ]); ("S", [ "B"; "C" ]) ]

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gen_db =
  QCheck.Gen.(
    let* nr = int_bound 5 in
    let* ns = int_bound 5 in
    let row () =
      let* a = int_bound 3 in
      let* b = int_bound 3 in
      return [ V.Int a; V.Int b ]
    in
    let* rrows = list_size (return nr) (row ()) in
    let* srows = list_size (return ns) (row ()) in
    return
      (Database.of_list
         [
           ("R", Relation.of_rows [ "A"; "B" ] rrows);
           ("S", Relation.of_rows [ "B"; "C" ] srows);
         ]))

(* random TRC-fragment query over R(A,B), S(B,C) with head Q(X) *)
let gen_trc_query =
  QCheck.Gen.(
    let term_for var attrs =
      let* a = oneofl attrs in
      return (Attr (var, a))
    in
    let pred_g bound =
      (* bound: (var, attrs) list *)
      let* v1, attrs1 = oneofl bound in
      let* t1 = term_for v1 attrs1 in
      let* use_const = bool in
      let* op = oneofl [ Eq; Neq; Lt; Leq ] in
      if use_const then
        let* c = int_bound 3 in
        return (Pred (Cmp (op, t1, Const (V.Int c))))
      else
        let* v2, attrs2 = oneofl bound in
        let* t2 = term_for v2 attrs2 in
        return (Pred (Cmp (op, t1, t2)))
    in
    let rec formula_g bound depth =
      if depth = 0 then pred_g bound
      else
        frequency
          [
            (4, pred_g bound);
            ( 2,
              let* fs = list_size (int_range 2 3) (formula_g bound (depth - 1)) in
              return (And fs) );
            ( 1,
              let* fs = list_size (int_range 2 2) (formula_g bound (depth - 1)) in
              return (Or fs) );
            ( 1,
              (* negated subscope over S *)
              let v = "n" ^ string_of_int depth in
              let* body = formula_g ((v, [ "B"; "C" ]) :: bound) (depth - 1) in
              return
                (Not
                   (Exists
                      {
                        bindings = [ { var = v; source = Base "S" } ];
                        grouping = None;
                        join = None;
                        body;
                      })) );
          ]
    in
    let bound = [ ("r", [ "A"; "B" ]); ("s", [ "B"; "C" ]) ] in
    let* body = formula_g bound 2 in
    let* head_src = oneofl [ ("r", "A"); ("r", "B"); ("s", "C") ] in
    return
      (Coll
         {
           head = { head_name = "Q"; head_attrs = [ "X" ] };
           body =
             Exists
               {
                 bindings =
                   [
                     { var = "r"; source = Base "R" };
                     { var = "s"; source = Base "S" };
                   ];
                 grouping = None;
                 join = None;
                 body =
                   And
                     [
                       Pred
                         (Cmp
                            ( Eq,
                              Attr ("Q", "X"),
                              Attr (fst head_src, snd head_src) ));
                       body;
                     ];
               };
         }))

let arbitrary_q =
  QCheck.make
    ~print:(fun q -> Arc_syntax.Printer.query q)
    gen_trc_query

let arbitrary_q_db =
  QCheck.make
    ~print:(fun (q, _) -> Arc_syntax.Printer.query q)
    QCheck.Gen.(pair gen_trc_query gen_db)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* generated queries validate *)
let prop_validates =
  QCheck.Test.make ~name:"generated queries validate" ~count:200 arbitrary_q
    (fun q ->
      Arc_core.Analysis.validate_query
        ~env:(Arc_core.Analysis.env ~schemas ())
        q
      = Ok ())

(* canonicalization preserves evaluation *)
let prop_canon_preserves_eval =
  QCheck.Test.make ~name:"canonicalization preserves evaluation" ~count:150
    arbitrary_q_db (fun (q, db) ->
      let r1 = Eval.run_rows ~db (program q) in
      let r2 = Eval.run_rows ~db (program (Canon.canonical_query q)) in
      Relation.equal_set r1 r2)

(* print/parse round-trip on generated TRC queries *)
let prop_roundtrip =
  QCheck.Test.make ~name:"comprehension round-trip" ~count:200 arbitrary_q
    (fun q ->
      equal_query q
        (Arc_syntax.Parser.query_of_string (Arc_syntax.Printer.query q)))

(* ARC evaluation = SQL evaluation of the ARC→SQL rendering *)
let prop_arc_sql_agree =
  QCheck.Test.make ~name:"ARC engine ≡ SQL rendering" ~count:120
    arbitrary_q_db (fun (q, db) ->
      let via_arc =
        Eval.run_rows ~conv:Conventions.sql_set ~db (program q)
      in
      match
        Arc_sql.Of_arc.statement ~conv:Conventions.sql_set (program q)
      with
      | exception Arc_sql.Of_arc.Unsupported _ -> true
      | stmt ->
          let via_sql = Arc_sql.Eval_sql.run ~db stmt in
          Relation.equal_set via_arc via_sql)

(* unnesting rewrite is sound under set semantics on generated queries *)
let prop_unnest_sound =
  QCheck.Test.make ~name:"merge_nested_exists sound (set)" ~count:120
    arbitrary_q_db (fun (q, db) ->
      let merged = Arc_core.Rewrite.merge_nested_exists q in
      Relation.equal_set
        (Eval.run_rows ~conv:Conventions.sql_set ~db (program q))
        (Eval.run_rows ~conv:Conventions.sql_set ~db (program merged)))

(* push_negation is sound even under three-valued logic *)
let prop_push_negation_3vl =
  QCheck.Test.make ~name:"push_negation sound (3VL)" ~count:120 arbitrary_q_db
    (fun (q, db) ->
      let q' =
        match q with
        | Coll c -> Coll { c with body = Arc_core.Rewrite.push_negation c.body }
        | s -> s
      in
      Relation.equal_set
        (Eval.run_rows ~conv:Conventions.sql_set ~db (program q))
        (Eval.run_rows ~conv:Conventions.sql_set ~db (program q')))

(* FIO ≡ FOI on random grouped instances *)
let prop_fio_foi =
  QCheck.Test.make ~name:"FIO ≡ FOI on random instances" ~count:100
    (QCheck.make
       QCheck.Gen.(
         let* n = int_bound 8 in
         let* rows =
           list_size (return n)
             (let* a = int_bound 3 in
              let* b = int_bound 5 in
              return [ V.Int a; V.Int b ])
         in
         return
           (Database.of_list [ ("R", Relation.of_rows [ "A"; "B" ] rows) ])))
    (fun db ->
      let fio = Eval.run_rows ~db (program (Coll Arc_catalog.Data.eq3)) in
      let foi = Eval.run_rows ~db (program (Coll Arc_catalog.Data.eq7)) in
      Relation.equal_set fio foi)

(* recursion: ancestor = reachability oracle on random DAG-ish graphs *)
let prop_recursion_oracle =
  QCheck.Test.make ~name:"LFP ancestor = reachability oracle" ~count:60
    (QCheck.make
       QCheck.Gen.(
         list_size (int_bound 10)
           (let* a = int_bound 6 in
            let* b = int_bound 6 in
            return (a, b))))
    (fun edges ->
      let edges = List.sort_uniq compare edges in
      let db =
        Database.of_list
          [
            ( "P",
              Relation.of_rows [ "s"; "t" ]
                (List.map (fun (a, b) -> [ V.Int a; V.Int b ]) edges) );
          ]
      in
      let via_arc =
        Eval.run_rows ~db
          {
            defs = Arc_catalog.Data.eq16_defs;
            main = Coll Arc_catalog.Data.eq16_main;
          }
      in
      (* Floyd-Warshall style oracle *)
      let reach = Hashtbl.create 64 in
      List.iter (fun e -> Hashtbl.replace reach e ()) edges;
      let changed = ref true in
      while !changed do
        changed := false;
        Hashtbl.iter
          (fun (a, b) () ->
            List.iter
              (fun (c, d) ->
                if b = c && not (Hashtbl.mem reach (a, d)) then (
                  Hashtbl.replace reach (a, d) ();
                  changed := true))
              edges)
          (Hashtbl.copy reach)
      done;
      let expected =
        Hashtbl.fold (fun (a, b) () acc -> [ V.Int a; V.Int b ] :: acc) reach []
      in
      Relation.equal_set via_arc (Relation.of_rows [ "s"; "t" ] expected))

(* dedup-wrap ≡ set-semantics evaluation *)
let prop_dedup_wrap =
  QCheck.Test.make ~name:"dedup_wrap ≡ set semantics" ~count:100
    arbitrary_q_db (fun (q, db) ->
      match q with
      | Coll c ->
          let counter = ref 0 in
          let fresh p =
            incr counter;
            Printf.sprintf "%s_w%d" p !counter
          in
          let wrapped = Arc_core.Rewrite.dedup_wrap ~fresh c in
          let bag_wrapped =
            Eval.run_rows ~conv:Conventions.sql ~db (program (Coll wrapped))
          in
          let set_plain =
            Eval.run_rows ~conv:Conventions.sql_set ~db (program q)
          in
          Relation.equal_set bag_wrapped set_plain
          && Relation.cardinality bag_wrapped
             = Relation.cardinality (Relation.dedup bag_wrapped)
      | _ -> true)

(* plan engine ≡ reference evaluator on random safe cores, bag-for-bag,
   under both bag and set semantics *)
let bag_equal r1 r2 =
  let keys r =
    List.sort compare
      (List.map Arc_relation.Tuple.key (Relation.tuples r))
  in
  keys r1 = keys r2

let prop_plan_matches_reference =
  QCheck.Test.make ~name:"plan engine ≡ reference (bag & set)" ~count:150
    arbitrary_q_db (fun (q, db) ->
      List.for_all
        (fun conv ->
          bag_equal
            (Eval.run_rows ~conv ~db (program q))
            (Arc_engine.Exec.run_rows ~conv ~db (program q)))
        [ Conventions.sql; Conventions.sql_set; Conventions.classical ])

(* every optimizer pass prefix preserves plan-engine results *)
let prop_passes_preserve =
  QCheck.Test.make ~name:"optimizer pass prefixes preserve results" ~count:100
    arbitrary_q_db (fun (q, db) ->
      match q with
      | Coll c ->
          let env = Arc_plan.Lower.env_of_db ~db ~defs:[] in
          let raw = Arc_plan.Lower.lower_collection env c in
          let reference = Eval.run_rows ~db (program q) in
          let rec prefixes acc = function
            | [] -> [ List.rev acc ]
            | p :: rest -> List.rev acc :: prefixes (p :: acc) rest
          in
          List.for_all
            (fun passes ->
              let opt, _ =
                Arc_plan.Opt.optimize_coll ~passes env raw
              in
              let ctx, _ = Eval.Internal.prepare ~db (program q) in
              match
                Arc_engine.Exec.exec_program ctx
                  { Arc_plan.Ir.strata = []; main = Arc_plan.Ir.Main_coll opt }
              with
              | Eval.Rows r -> bag_equal reference r
              | Eval.Truth _ -> false)
            (prefixes [] Arc_plan.Opt.pipeline)
      | _ -> true)

(* intent similarity is reflexive (=1.0) and symmetric on random queries *)
let prop_similarity_laws =
  QCheck.Test.make ~name:"similarity reflexive & symmetric" ~count:80
    (QCheck.make QCheck.Gen.(pair gen_trc_query gen_trc_query))
    (fun (q1, q2) ->
      let s11 = Arc_intent.Intent.similarity q1 q1 in
      let s12 = Arc_intent.Intent.similarity q1 q2 in
      let s21 = Arc_intent.Intent.similarity q2 q1 in
      s11 >= 0.999 && Float.abs (s12 -. s21) < 1e-9 && s12 >= 0.0 && s12 <= 1.0)

let () =
  Alcotest.run "arc_properties"
    [
      ( "pipeline",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_validates;
            prop_canon_preserves_eval;
            prop_roundtrip;
            prop_arc_sql_agree;
          ] );
      ( "rewrites",
        List.map QCheck_alcotest.to_alcotest
          [ prop_unnest_sound; prop_push_negation_3vl; prop_dedup_wrap ] );
      ( "semantics",
        List.map QCheck_alcotest.to_alcotest
          [ prop_fio_foi; prop_recursion_oracle ] );
      ( "planner",
        List.map QCheck_alcotest.to_alcotest
          [ prop_plan_matches_reference; prop_passes_preserve ] );
      ( "intent",
        List.map QCheck_alcotest.to_alcotest [ prop_similarity_laws ] );
    ]
