(* Statistics and cost-model tests: ANALYZE must be exact (it is a full
   pass), selectivity fractions must obey their algebra, the cost model
   must reconcile to the heuristic estimator when no statistics exist, and
   stats-driven estimates must beat the heuristic on the catalog suite
   (lower median Q-error). Statistics are advisory: results never change,
   only plans. *)

open Arc_core.Ast
module V = Arc_value.Value
module Relation = Arc_relation.Relation
module Tuple = Arc_relation.Tuple
module Schema = Arc_relation.Schema
module Stats = Arc_relation.Stats
module Database = Arc_relation.Database
module Eval = Arc_engine.Eval
module Exec = Arc_engine.Exec
module Ir = Arc_plan.Ir
module Explain = Arc_plan.Explain
module Data = Arc_catalog.Data

(* every catalog database with data in it *)
let dbs =
  [
    ("db_rs", Data.db_rs);
    ("db_grouping", Data.db_grouping);
    ("db_payroll", Data.db_payroll);
    ("db_parent", Data.db_parent);
    ("db_nulls", Data.db_nulls);
    ("db_beers", Data.db_beers);
    ("db_matrices", Data.db_matrices);
    ("db_countbug", Data.db_countbug);
  ]

let each_column f =
  List.iter
    (fun (dbname, db) ->
      List.iter
        (fun rname ->
          let r = Database.find db rname in
          let s = Stats.collect r in
          List.iter
            (fun attr ->
              let c =
                match Stats.col s attr with
                | Some c -> c
                | None ->
                    Alcotest.failf "%s.%s: no stats for column %s" dbname
                      rname attr
              in
              f (Printf.sprintf "%s.%s.%s" dbname rname attr) r s c attr)
            (Schema.attrs (Relation.schema r)))
        (Database.names db))
    dbs

let column_values r attr =
  List.map (fun tp -> Tuple.get tp attr) (Relation.tuples r)

let count p xs = List.length (List.filter p xs)

(* collection is a full pass: row counts, null counts, distinct counts,
   MCV frequencies and histogram bucket sums are all exact *)
let collect_exact () =
  each_column (fun label r s c attr ->
      Alcotest.(check int)
        (label ^ ": s_rows")
        (Relation.cardinality r) s.Stats.s_rows;
      let vs = column_values r attr in
      let nulls = count V.is_null vs in
      let non_null = List.filter (fun v -> not (V.is_null v)) vs in
      let distinct = List.sort_uniq V.compare non_null in
      Alcotest.(check int) (label ^ ": c_nulls") nulls c.Stats.c_nulls;
      Alcotest.(check int)
        (label ^ ": c_distinct")
        (List.length distinct) c.Stats.c_distinct;
      (* MCV entries are exact occurrence counts, and only for repeats *)
      List.iter
        (fun (v, n) ->
          if n < 2 then
            Alcotest.failf "%s: MCV %s occurs only %d time" label
              (V.canonical v) n;
          Alcotest.(check int)
            (label ^ ": MCV count of " ^ V.canonical v)
            (count (fun v' -> V.compare v v' = 0) non_null)
            n)
        c.Stats.c_mcvs;
      (* equi-depth histogram partitions the non-null rows *)
      let brows =
        List.fold_left (fun a b -> a + b.Stats.b_rows) 0 c.Stats.c_hist
      in
      let bdistinct =
        List.fold_left (fun a b -> a + b.Stats.b_distinct) 0 c.Stats.c_hist
      in
      Alcotest.(check int)
        (label ^ ": histogram rows = non-null rows")
        (List.length non_null) brows;
      Alcotest.(check int)
        (label ^ ": histogram distinct = distinct")
        (List.length distinct) bdistinct;
      (* buckets ascend and min/max bracket the data *)
      let rec ascending = function
        | a :: (b :: _ as rest) ->
            V.compare a.Stats.b_hi b.Stats.b_hi < 0 && ascending rest
        | _ -> true
      in
      if not (ascending c.Stats.c_hist) then
        Alcotest.failf "%s: histogram bounds not ascending" label;
      match (c.Stats.c_min, c.Stats.c_max, distinct) with
      | Some lo, Some hi, _ :: _ ->
          Alcotest.(check int)
            (label ^ ": c_min")
            0
            (V.compare lo (List.hd distinct));
          Alcotest.(check int)
            (label ^ ": c_max")
            0
            (V.compare hi (List.nth distinct (List.length distinct - 1)))
      | None, None, [] -> ()
      | _ -> Alcotest.failf "%s: min/max disagree with data" label)

(* the selectivity algebra: fractions live in [0,1]; eq_fraction sums to
   the non-null fraction over the distinct values; le_fraction is monotone
   and exact at the maximum *)
let selectivity_algebra () =
  each_column (fun label r s c attr ->
      if Relation.cardinality r = 0 then ()
      else begin
        let vs = column_values r attr in
        let non_null = List.filter (fun v -> not (V.is_null v)) vs in
        let distinct = List.sort_uniq V.compare non_null in
        let rows = float_of_int s.Stats.s_rows in
        let in_unit what f =
          if not (f >= 0.0 && f <= 1.0) then
            Alcotest.failf "%s: %s = %f outside [0,1]" label what f
        in
        in_unit "null_fraction" (Stats.null_fraction s c);
        in_unit "eq_unknown_fraction" (Stats.eq_unknown_fraction s c);
        let total =
          List.fold_left
            (fun a v ->
              let f = Stats.eq_fraction s c v in
              in_unit ("eq_fraction " ^ V.canonical v) f;
              a +. f)
            0.0 distinct
        in
        let expect = float_of_int (List.length non_null) /. rows in
        if abs_float (total -. expect) > 1e-9 then
          Alcotest.failf "%s: eq_fractions sum %f <> non-null fraction %f"
            label total expect;
        (* off-range probes are zero *)
        (match distinct with
        | [] -> ()
        | _ ->
            let le =
              List.filter_map (fun v -> Stats.le_fraction s c v) distinct
            in
            let rec monotone = function
              | a :: (b :: _ as rest) ->
                  a <= b +. 1e-9 && monotone rest
              | _ -> true
            in
            List.iter (in_unit "le_fraction") le;
            if not (monotone le) then
              Alcotest.failf "%s: le_fraction not monotone" label;
            match List.rev le with
            | last :: _ ->
                if abs_float (last -. expect) > 1e-9 then
                  Alcotest.failf
                    "%s: le_fraction at max %f <> non-null fraction %f"
                    label last expect
            | [] -> ())
      end)

(* patch_rows updates the row count and marks the details stale; replacing
   a relation drops its (now unverifiable) statistics *)
let staleness () =
  let r = Database.find Data.db_rs "R" in
  let s = Stats.collect r in
  Alcotest.(check bool) "fresh stats not stale" false s.Stats.s_stale;
  let s' = Stats.patch_rows s (s.Stats.s_rows + 5) in
  Alcotest.(check bool) "patched stats stale" true s'.Stats.s_stale;
  Alcotest.(check int) "patched rows" (s.Stats.s_rows + 5) s'.Stats.s_rows;
  let db = Database.analyze Data.db_rs in
  Alcotest.(check bool) "analyze -> analyzed" true (Database.analyzed db);
  let db' = Database.add db "R" r in
  Alcotest.(check bool)
    "add drops stats" true
    (Database.stats db' "R" = None);
  Alcotest.(check bool)
    "other stats survive" true
    (Database.stats db' "S" <> None)

let db_xy =
  Database.of_list
    [
      ("X", Relation.of_rows [ "A" ] [ [ V.Int 1 ]; [ V.Int 5 ] ]);
      ("Y", Relation.of_rows [ "A" ] [ [ V.Int 2 ]; [ V.Int 6 ] ]);
    ]

(* catalog join/aggregation workloads used for the estimator comparisons *)
let q_workloads =
  [
    ("eq1", Data.db_rs, { defs = []; main = Coll Data.eq1 });
    ("eq2", db_xy, { defs = []; main = Coll Data.eq2 });
    ("eq3", Data.db_grouping, { defs = []; main = Coll Data.eq3 });
    ("eq7", Data.db_grouping, { defs = []; main = Coll Data.eq7 });
    ("eq8", Data.db_payroll, { defs = []; main = Coll Data.eq8 });
    ("eq10", Data.db_payroll, { defs = []; main = Coll Data.eq10 });
    ("eq12", Data.db_payroll, { defs = []; main = Coll Data.eq12 });
    ("eq22", Data.db_beers, { defs = []; main = Coll Data.eq22 });
    ("eq26", Data.db_matrices, { defs = []; main = Coll Data.eq26 });
  ]

(* without ANALYZE the cost model reconciles to the heuristic estimator:
   same numbers on every node, so plans cannot churn *)
let reconcile_without_stats () =
  List.iter
    (fun (name, db, prog) ->
      let _ctx, _raw, optimized, _report = Exec.compile ~db prog in
      let stats = Ir.fresh_stats () in
      let heur = Explain.analyze_info optimized ~stats in
      let card = Explain.analyze_info ~cenv:[] optimized ~stats in
      List.iter2
        (fun h c ->
          Alcotest.(check int)
            (Printf.sprintf "%s node %d: est" name h.Explain.ni_id)
            h.Explain.ni_est c.Explain.ni_est)
        heur card)
    q_workloads

(* statistics are advisory: ANALYZE and the batched/tuple execution paths
   must return the same bags *)
let modes_agree () =
  List.iter
    (fun (name, db, prog) ->
      let base = Exec.run_rows ~db prog in
      let tuple = Exec.run_rows ~batched:false ~db prog in
      let stats = Exec.run_rows ~db:(Database.analyze db) prog in
      if not (Relation.equal_bag base tuple) then
        Alcotest.failf "%s: batched and tuple-at-a-time bags differ" name;
      if not (Relation.equal_bag base stats) then
        Alcotest.failf "%s: ANALYZE changed the result bag" name)
    (("eq16", Data.db_parent,
      { defs = Data.eq16_defs; main = Coll Data.eq16_main })
    :: q_workloads)

let median xs =
  match List.sort compare xs with
  | [] -> nan
  | s -> List.nth s (List.length s / 2)

(* the Q-error regression the whole refactor exists for: run each catalog
   workload once under its ANALYZEd database, then score the same plan and
   the same actuals under both estimators. The stats-driven estimates must
   have strictly lower median (and mean) Q-error than the heuristic. *)
let q_error_collect () =
  let q_stats = ref [] and q_heur = ref [] in
  List.iter
    (fun (_name, db, prog) ->
      let adb = Database.analyze db in
      let ctx, _raw, optimized, _report = Exec.compile ~db:adb prog in
      let stats = Ir.fresh_stats () in
      ignore (Exec.exec_program ~stats ctx optimized);
      let cenv = Database.stats_bindings adb in
      let take sink infos =
        List.iter
          (fun ni ->
            match ni.Explain.ni_q with
            | Some q -> sink := q :: !sink
            | None -> ())
          infos
      in
      take q_stats (Explain.analyze_info ~cenv optimized ~stats);
      take q_heur (Explain.analyze_info optimized ~stats))
    q_workloads;
  (!q_stats, !q_heur)

let stats_beat_heuristic () =
  let q_stats, q_heur = q_error_collect () in
  Alcotest.(check int)
    "same node population"
    (List.length q_heur) (List.length q_stats);
  let mean xs =
    List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
  in
  let ms = median q_stats and mh = median q_heur in
  if not (ms < mh) then
    Alcotest.failf
      "median q-error: stats %.3f not below heuristic %.3f" ms mh;
  let mns = mean q_stats and mnh = mean q_heur in
  if not (mns < mnh) then
    Alcotest.failf
      "mean q-error: stats %.3f not below heuristic %.3f (medians %.3f vs \
       %.3f)"
      mns mnh ms mh

let () =
  Alcotest.run "arc_stats"
    [
      ( "collect",
        [
          Alcotest.test_case "full-pass statistics are exact" `Quick
            collect_exact;
          Alcotest.test_case "selectivity fractions obey their algebra"
            `Quick selectivity_algebra;
          Alcotest.test_case "patch_rows staleness and add invalidation"
            `Quick staleness;
        ] );
      ( "cost model",
        [
          Alcotest.test_case "no stats: reconciles to the heuristic" `Quick
            reconcile_without_stats;
          Alcotest.test_case
            "stats and batching never change result bags" `Quick
            modes_agree;
          Alcotest.test_case "stats-driven beats heuristic q-error" `Quick
            stats_beat_heuristic;
        ] );
    ]
