(* SQL substrate tests: parser, printer, evaluator, and both directions of
   the SQL↔ARC translator (cross-validated on the paper's figure queries). *)

module Sql = Arc_sql
module V = Arc_value.Value
module B3 = Arc_value.Bool3
module Conventions = Arc_value.Conventions
module Relation = Arc_relation.Relation
module Database = Arc_relation.Database
module Eval = Arc_engine.Eval

let i = V.int
let s = V.str

let check_rel ?(msg = "result") expected actual =
  if not (Relation.equal_bag (Relation.sort expected) (Relation.sort actual))
  then
    Alcotest.failf "%s:@.expected:@.%s@.actual:@.%s" msg
      (Relation.to_table (Relation.sort expected))
      (Relation.to_table (Relation.sort actual))

(* ------------------------------------------------------------------ *)
(* Parser / printer                                                    *)
(* ------------------------------------------------------------------ *)

let roundtrip q =
  let st = Sql.Parse.statement_of_string q in
  let printed = Sql.Print.statement st in
  let st2 =
    try Sql.Parse.statement_of_string printed
    with Sql.Parse.Parse_error m ->
      Alcotest.failf "reparse of %S failed: %s" printed m
  in
  if not (Sql.Ast.equal_statement st st2) then
    Alcotest.failf "round-trip mismatch: %s" printed

let parse_roundtrips () =
  List.iter roundtrip
    [
      "select R.A from R";
      "select distinct R.A, S.B from R, S where R.A = S.B";
      "select R.A, sum(R.B) as sm from R group by R.A";
      "select R.dept, avg(S.sal) av from R, S where R.empl = S.empl group by \
       R.dept having sum(S.sal) > 100";
      "select R.A from R where not exists (select 1 from S where S.B = R.A)";
      "select R.A from R where R.A not in (select S.A from S)";
      "select R.A from R where R.A in (select S.A from S)";
      "select R.A, X.sm from R join lateral (select sum(S.B) sm from S where \
       S.A < R.A) as X on true";
      "select R.A, S.B from R left join S on R.A = S.B";
      "select R.m, S.n from R full join S on R.y = S.y";
      "select R.A from R cross join S";
      "select R.A from R union select S.B from S";
      "select R.A from R union all select S.B from S";
      "select R.A from R except select S.A from S";
      "select R.A from R intersect select S.A from S";
      "with T as (select R.A from R) select T.A from T";
      "with recursive A(s, t) as (select P.s, P.t from P union select P.s, \
       A.t from P, A where P.t = A.s) select A.s, A.t from A";
      "select count(*) c, count(distinct R.A) d from R";
      "select R.A + 1 as x, R.B * 2 y from R where R.A - 1 > 0";
      "select R.A from R where R.name like 'a%' and R.B is not null";
      "select (select sum(S.B) from S where S.A = R.A) as sm from R";
      "select R.A from R where R.B = (select max(S.B) from S)";
    ]

let parse_errors () =
  let bad q =
    match Sql.Parse.statement_of_string q with
    | exception Sql.Parse.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error: %s" q
  in
  bad "select";
  bad "select R.A from";
  bad "select R.A from R where";
  bad "select R.A from R group";
  bad "select R.A from R junk extra"

(* ------------------------------------------------------------------ *)
(* Evaluator                                                           *)
(* ------------------------------------------------------------------ *)

let db_counts =
  Database.of_list
    [
      ("R", Relation.of_rows [ "id"; "q" ] [ [ i 9; i 0 ] ]);
      ("S", Relation.of_rows [ "id"; "d" ] []);
    ]

let count_bug_sql () =
  let run q = Sql.Eval_sql.run_string ~db:db_counts q in
  check_rel ~msg:"fig 21a"
    (Relation.of_rows [ "id" ] [ [ i 9 ] ])
    (run
       "select R.id from R where R.q = (select count(S.d) from S where R.id = \
        S.id)");
  Alcotest.(check int) "fig 21b (the bug)" 0
    (Relation.cardinality
       (run
          "select R.id from R, (select S.id, count(S.d) ct from S group by \
           S.id) X where R.id = X.id and R.q = X.ct"));
  check_rel ~msg:"fig 21c"
    (Relation.of_rows [ "id" ] [ [ i 9 ] ])
    (run
       "select R.id from R, (select R2.id, count(S.d) ct from R R2 left join \
        S on R2.id = S.id group by R2.id) X where R.id = X.id and R.q = X.ct")

let not_in_null_sql () =
  let db =
    Database.of_list
      [
        ("R", Relation.of_rows [ "A" ] [ [ i 1 ]; [ i 2 ] ]);
        ("S", Relation.of_rows [ "A" ] [ [ i 1 ]; [ V.Null ] ]);
      ]
  in
  (* Fig 11a: empty because S contains NULL *)
  Alcotest.(check int) "NOT IN with NULL" 0
    (Relation.cardinality
       (Sql.Eval_sql.run_string ~db
          "select R.A from R where R.A not in (select S.A from S)"));
  (* Fig 11b: the NOT EXISTS + explicit null checks rewrite agrees *)
  Alcotest.(check int) "rewrite agrees" 0
    (Relation.cardinality
       (Sql.Eval_sql.run_string ~db
          "select R.A from R where not exists (select 1 from S where S.A = \
           R.A or S.A is null or R.A is null)"));
  (* without NULL in S, both return {2} *)
  let db2 =
    Database.of_list
      [
        ("R", Relation.of_rows [ "A" ] [ [ i 1 ]; [ i 2 ] ]);
        ("S", Relation.of_rows [ "A" ] [ [ i 1 ] ]);
      ]
  in
  check_rel ~msg:"no null case"
    (Relation.of_rows [ "A" ] [ [ i 2 ] ])
    (Sql.Eval_sql.run_string ~db:db2
       "select R.A from R where R.A not in (select S.A from S)")

let lateral_vs_scalar () =
  (* Fig 5a ≡ Fig 5b *)
  let db =
    Database.of_list
      [
        ( "R",
          Relation.of_rows [ "A"; "B" ]
            [ [ i 1; i 10 ]; [ i 1; i 20 ]; [ i 2; i 5 ] ] );
      ]
  in
  let scalar =
    Sql.Eval_sql.run_string ~db
      "select distinct R.A, (select sum(R2.B) sm from R R2 where R2.A = R.A) \
       sm from R"
  in
  let lateral =
    Sql.Eval_sql.run_string ~db
      "select distinct R.A, X.sm from R join lateral (select sum(R2.B) sm \
       from R R2 where R2.A = R.A) X on true"
  in
  Alcotest.(check bool) "scalar = lateral" true (Relation.equal_bag scalar lateral);
  check_rel ~msg:"values"
    (Relation.of_rows [ "A"; "sm" ] [ [ i 1; i 30 ]; [ i 2; i 5 ] ])
    scalar

let fig13_bag_counterexample_sql () =
  let db =
    Database.of_list
      [
        ("R", Relation.of_rows [ "A" ] [ [ i 1 ]; [ i 1 ] ]);
        ("S", Relation.of_rows [ "A"; "B" ] [ [ i 0; i 10 ] ]);
      ]
  in
  let lateral =
    Sql.Eval_sql.run_string ~db
      "select R.A, X.sm from R join lateral (select sum(S.B) sm from S where \
       S.A < R.A) X on true"
  in
  let leftjoin =
    Sql.Eval_sql.run_string ~db
      "select R.A, sum(S.B) sm from R left join S on S.A < R.A group by R.A"
  in
  Alcotest.(check int) "lateral keeps duplicates" 2 (Relation.cardinality lateral);
  Alcotest.(check int) "left join collapses" 1 (Relation.cardinality leftjoin)

let outer_join_on_vs_where () =
  (* ON conditions on the preserved side keep rows; WHERE filters them *)
  let db =
    Database.of_list
      [
        ( "R",
          Relation.of_rows [ "m"; "y"; "h" ]
            [ [ s "r1"; i 2000; i 11 ]; [ s "r2"; i 2001; i 12 ] ] );
        ( "S",
          Relation.of_rows [ "n"; "y" ]
            [ [ s "s1"; i 2000 ]; [ s "s2"; i 2001 ] ] );
      ]
  in
  let on_version =
    Sql.Eval_sql.run_string ~db
      "select R.m, S.n from R left join S on R.y = S.y and R.h = 11"
  in
  check_rel ~msg:"ON keeps r2 padded"
    (Relation.of_rows [ "m"; "n" ] [ [ s "r1"; s "s1" ]; [ s "r2"; V.Null ] ])
    on_version;
  let where_version =
    Sql.Eval_sql.run_string ~db
      "select R.m, S.n from R left join S on R.y = S.y where R.h = 11"
  in
  check_rel ~msg:"WHERE drops r2"
    (Relation.of_rows [ "m"; "n" ] [ [ s "r1"; s "s1" ] ])
    where_version

let group_having_sql () =
  let db =
    Database.of_list
      [
        ( "R",
          Relation.of_rows [ "empl"; "dept" ]
            [ [ s "e1"; s "d1" ]; [ s "e2"; s "d1" ]; [ s "e3"; s "d2" ] ] );
        ( "S",
          Relation.of_rows [ "empl"; "sal" ]
            [ [ s "e1"; i 60 ]; [ s "e2"; i 60 ]; [ s "e3"; i 50 ] ] );
      ]
  in
  check_rel ~msg:"fig 6a"
    (Relation.of_rows [ "dept"; "av" ] [ [ s "d1"; V.Float 60. ] ])
    (Sql.Eval_sql.run_string ~db
       "select R.dept, avg(S.sal) av from R, S where R.empl = S.empl group \
        by R.dept having sum(S.sal) > 100")

let empty_aggregate_sql () =
  let db = Database.of_list [ ("S", Relation.of_rows [ "B" ] []) ] in
  let r = Sql.Eval_sql.run_string ~db "select sum(S.B) sm from S" in
  check_rel ~msg:"one NULL row" (Relation.of_rows [ "sm" ] [ [ V.Null ] ]) r;
  let r2 = Sql.Eval_sql.run_string ~db "select count(S.B) c from S" in
  check_rel ~msg:"count 0" (Relation.of_rows [ "c" ] [ [ i 0 ] ]) r2

let set_ops_sql () =
  let db =
    Database.of_list
      [
        ("R", Relation.of_rows [ "A" ] [ [ i 1 ]; [ i 1 ]; [ i 2 ] ]);
        ("S", Relation.of_rows [ "A" ] [ [ i 2 ]; [ i 3 ] ]);
      ]
  in
  let run q = Sql.Eval_sql.run_string ~db q in
  Alcotest.(check int) "union distinct" 3
    (Relation.cardinality (run "select R.A from R union select S.A from S"));
  Alcotest.(check int) "union all" 5
    (Relation.cardinality (run "select R.A from R union all select S.A from S"));
  check_rel ~msg:"except"
    (Relation.of_rows [ "A" ] [ [ i 1 ] ])
    (run "select R.A from R except select S.A from S");
  check_rel ~msg:"intersect"
    (Relation.of_rows [ "A" ] [ [ i 2 ] ])
    (run "select R.A from R intersect select S.A from S")

let order_by_limit () =
  let db =
    Database.of_list
      [
        ( "R",
          Relation.of_rows [ "A"; "B" ]
            [ [ i 1; i 10 ]; [ i 2; i 30 ]; [ i 3; i 20 ]; [ i 4; i 30 ] ] );
      ]
  in
  let run q = Sql.Eval_sql.run_string ~db q in
  let values r =
    List.map
      (fun tp -> Arc_relation.Tuple.values tp)
      (Relation.tuples r)
  in
  (* ascending on a column *)
  Alcotest.(check bool) "order by asc" true
    (values (run "select R.A from R order by R.B")
    = [ [ i 1 ]; [ i 3 ]; [ i 2 ]; [ i 4 ] ]);
  (* descending, multi-key: B desc then A asc breaks the tie *)
  Alcotest.(check bool) "order by desc with tiebreak" true
    (values (run "select R.A from R order by R.B desc, R.A")
    = [ [ i 2 ]; [ i 4 ]; [ i 3 ]; [ i 1 ] ]);
  (* limit *)
  Alcotest.(check bool) "limit" true
    (values (run "select R.A from R order by R.B desc, R.A limit 2")
    = [ [ i 2 ]; [ i 4 ] ]);
  (* order by output alias *)
  Alcotest.(check bool) "order by alias" true
    (values (run "select R.B * 2 as d from R order by d limit 1")
    = [ [ i 20 ] ]);
  (* order by aggregate with group by *)
  Alcotest.(check bool) "order by aggregate" true
    (values (run "select R.B, count(*) c from R group by R.B order by c desc, R.B limit 1")
    = [ [ i 30; i 2 ] ]);
  (* parse/print round-trip *)
  roundtrip "select R.A from R order by R.B desc, R.A limit 3";
  (* SQL→ARC reports ordered output as unsupported (paper Section 5) *)
  (match
     Sql.To_arc.statement ~schemas:[ ("R", [ "A"; "B" ]) ]
       (Sql.Parse.statement_of_string "select R.A from R order by R.B")
   with
  | exception Sql.To_arc.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported for ORDER BY")

let recursive_cte_sql () =
  let db =
    Database.of_list
      [
        ( "P",
          Relation.of_rows [ "s"; "t" ]
            [ [ i 1; i 2 ]; [ i 2; i 3 ]; [ i 3; i 4 ] ] );
      ]
  in
  let r =
    Sql.Eval_sql.run_string ~db
      "with recursive A(s, t) as (select P.s, P.t from P union select P.s, \
       A.t from P, A where P.t = A.s) select A.s, A.t from A"
  in
  Alcotest.(check int) "transitive closure size" 6 (Relation.cardinality r)

(* ------------------------------------------------------------------ *)
(* SQL→ARC: cross-validation against the direct SQL evaluator          *)
(* ------------------------------------------------------------------ *)

let figures_db =
  Database.of_list
    [
      ( "R",
        Relation.of_rows [ "A"; "B" ]
          [ [ i 1; i 10 ]; [ i 1; i 20 ]; [ i 2; i 5 ]; [ i 3; V.Null ] ] );
      ( "S",
        Relation.of_rows [ "B"; "C" ]
          [ [ i 10; i 0 ]; [ i 20; i 5 ]; [ i 5; i 0 ]; [ V.Null; i 7 ] ] );
    ]

let schemas = [ ("R", [ "A"; "B" ]); ("S", [ "B"; "C" ]) ]

let cross_check ?(db = figures_db) q =
  let direct = Sql.Eval_sql.run_string ~db q in
  let prog = Sql.To_arc.statement ~schemas (Sql.Parse.statement_of_string q) in
  (match Arc_core.Analysis.validate prog with
  | Ok () -> ()
  | Error es ->
      Alcotest.failf "translated ARC invalid for %S: %s" q
        (String.concat "; "
           (List.map Arc_core.Analysis.error_to_string es)));
  let via_arc = Eval.run_rows ~conv:Conventions.sql ~db prog in
  if not (Relation.equal_bag (Relation.sort direct) (Relation.sort via_arc))
  then
    Alcotest.failf "SQL vs ARC mismatch for %S:@.SQL:@.%s@.ARC:@.%s" q
      (Relation.to_table (Relation.sort direct))
      (Relation.to_table (Relation.sort via_arc))

let to_arc_basic () =
  List.iter cross_check
    [
      "select R.A from R";
      "select R.A, R.B from R where R.A > 1";
      "select R.A, S.C from R, S where R.B = S.B";
      "select distinct R.A from R";
      "select R.A + 1 x, R.B * 2 y from R where R.A - 1 >= 0";
    ]

let to_arc_subqueries () =
  List.iter cross_check
    [
      "select R.A from R where exists (select 1 from S where S.B = R.B)";
      "select R.A from R where not exists (select 1 from S where S.B = R.B)";
      "select R.A from R where R.B in (select S.B from S where S.C = 0)";
      "select R.A from R where R.B not in (select S.B from S)";
      "select R.A from R where R.A in (select S.C from S)";
    ]

let to_arc_aggregates () =
  List.iter cross_check
    [
      "select R.A, sum(R.B) sm from R group by R.A";
      "select R.A, sum(R.B) sm, count(R.B) ct, max(R.B) mx from R group by R.A";
      "select count(*) c from R";
      "select R.A, count(*) c from R group by R.A having count(*) > 1";
      "select sum(R.B) sm from R where R.A > 1";
    ]

let to_arc_lateral_scalar () =
  List.iter cross_check
    [
      "select R.A, (select sum(S.C) from S where S.B = R.B) sm from R";
      "select R.A, X.sm from R join lateral (select sum(S.C) sm from S where \
       S.B = R.B) X on true";
    ]

let to_arc_outer_joins () =
  List.iter cross_check
    [
      "select R.A, S.C from R left join S on R.B = S.B";
      "select R.A, S.C from R full join S on R.B = S.B";
      "select R.A, S.C from R left join S on R.B = S.B and R.A = 1";
    ]

let to_arc_set_ops () =
  List.iter cross_check
    [
      "select R.A x from R union select S.C x from S";
      "select R.A x from R union all select S.C x from S";
      "select R.A x from R except select S.C x from S";
      "select R.A x from R intersect select S.C x from S";
    ]

let to_arc_ctes () =
  cross_check
    "with T(v) as (select R.A from R where R.A > 1) select T.v from T";
  let db =
    Database.of_list
      [
        ( "P",
          Relation.of_rows [ "s"; "t" ]
            [ [ i 1; i 2 ]; [ i 2; i 3 ]; [ i 3; i 4 ] ] );
      ]
  in
  let q =
    "with recursive A(s, t) as (select P.s, P.t from P union select P.s, A.t \
     from P, A where P.t = A.s) select A.s, A.t from A"
  in
  let direct = Sql.Eval_sql.run_string ~db q in
  let prog =
    Sql.To_arc.statement ~schemas:[ ("P", [ "s"; "t" ]) ]
      (Sql.Parse.statement_of_string q)
  in
  let via_arc = Eval.run_rows ~conv:Conventions.sql ~db prog in
  Alcotest.(check bool) "recursive CTE agrees" true
    (Relation.equal_set direct via_arc)

let to_arc_pattern () =
  (* the translation preserves the FIO pattern of GROUP BY (Fig 4) *)
  let prog =
    Sql.To_arc.statement ~schemas
      (Sql.Parse.statement_of_string "select R.A, sum(R.B) sm from R group by R.A")
  in
  let pat = Arc_core.Pattern.of_query prog.Arc_core.Ast.main in
  Alcotest.(check bool) "FIO" true
    (pat.Arc_core.Pattern.agg_styles = [ Arc_core.Pattern.FIO ]);
  (* the scalar-subquery form becomes FOI (Fig 5) *)
  let prog2 =
    Sql.To_arc.statement ~schemas
      (Sql.Parse.statement_of_string
         "select R.A, (select sum(R2.B) from R R2 where R2.A = R.A) sm from R")
  in
  let pat2 = Arc_core.Pattern.of_query prog2.Arc_core.Ast.main in
  Alcotest.(check bool) "FOI" true
    (pat2.Arc_core.Pattern.agg_styles = [ Arc_core.Pattern.FOI ])

(* ------------------------------------------------------------------ *)
(* ARC→SQL                                                             *)
(* ------------------------------------------------------------------ *)

let of_arc_roundtrip () =
  (* arc → sql → evaluate, compare against the ARC engine *)
  let open Arc_core.Build in
  let checks =
    [
      ( coll "Q" [ "A" ]
          (exists
             [ bind "r" "R"; bind "s" "S" ]
             (conj
                [
                  eq (attr "Q" "A") (attr "r" "A");
                  eq (attr "r" "B") (attr "s" "B");
                  eq (attr "s" "C") (cint 0);
                ])),
        "eq1" );
      ( coll "Q" [ "A"; "sm" ]
          (exists
             ~grouping:[ ("r", "A") ]
             [ bind "r" "R" ]
             (conj
                [
                  eq (attr "Q" "A") (attr "r" "A");
                  eq (attr "Q" "sm") (sum (attr "r" "B"));
                ])),
        "eq3" );
      ( coll "Q" [ "A" ]
          (exists [ bind "r" "R" ]
             (conj
                [
                  eq (attr "Q" "A") (attr "r" "A");
                  not_
                    (exists [ bind "s" "S" ] (eq (attr "r" "B") (attr "s" "B")));
                ])),
        "negation" );
      ( coll "Q" [ "X" ]
          (disj
             [
               exists [ bind "r" "R" ] (eq (attr "Q" "X") (attr "r" "A"));
               exists [ bind "s" "S" ] (eq (attr "Q" "X") (attr "s" "C"));
             ]),
        "union" );
      ( coll "Q" [ "A"; "C" ]
          (exists
             ~join:(J_left (J_var "r", J_var "s"))
             [ bind "r" "R"; bind "s" "S" ]
             (conj
                [
                  eq (attr "Q" "A") (attr "r" "A");
                  eq (attr "Q" "C") (attr "s" "C");
                  eq (attr "r" "B") (attr "s" "B");
                ])),
        "left join" );
    ]
  in
  List.iter
    (fun (q, name) ->
      let prog = Arc_core.Ast.program q in
      let via_engine =
        Eval.run_rows ~conv:Conventions.sql_set ~db:figures_db prog
      in
      let sql = Sql.Of_arc.statement ~conv:Conventions.sql_set ~schemas prog in
      let via_sql = Sql.Eval_sql.run ~db:figures_db sql in
      if
        not
          (Relation.equal_set via_engine via_sql)
      then
        Alcotest.failf "%s: engine vs SQL mismatch:@.engine:@.%s@.sql (%s):@.%s"
          name
          (Relation.to_table (Relation.sort via_engine))
          (Sql.Print.statement sql)
          (Relation.to_table (Relation.sort via_sql)))
    checks

let of_arc_sentence () =
  let open Arc_core.Build in
  let prog =
    Arc_core.Ast.program
      (sentence
         (exists [ bind "r" "R" ] (gt (attr "r" "A") (cint 0))))
  in
  let sql = Sql.Of_arc.statement prog in
  let r = Sql.Eval_sql.run ~db:figures_db sql in
  Alcotest.(check int) "sentence holds -> one row" 1 (Relation.cardinality r)

let of_arc_recursive () =
  let open Arc_core.Build in
  let db =
    Database.of_list
      [ ("P", Relation.of_rows [ "s"; "t" ] [ [ i 1; i 2 ]; [ i 2; i 3 ] ]) ]
  in
  let anc =
    define "A"
      (collection "A" [ "s"; "t" ]
         (disj
            [
              exists [ bind "p" "P" ]
                (conj
                   [
                     eq (attr "A" "s") (attr "p" "s");
                     eq (attr "A" "t") (attr "p" "t");
                   ]);
              exists
                [ bind "p" "P"; bind "a2" "A" ]
                (conj
                   [
                     eq (attr "A" "s") (attr "p" "s");
                     eq (attr "p" "t") (attr "a2" "s");
                     eq (attr "a2" "t") (attr "A" "t");
                   ]);
            ]))
  in
  let prog =
    Arc_core.Ast.program ~defs:[ anc ]
      (coll "Q" [ "s"; "t" ]
         (exists [ bind "a" "A" ]
            (conj
               [
                 eq (attr "Q" "s") (attr "a" "s");
                 eq (attr "Q" "t") (attr "a" "t");
               ])))
  in
  let via_engine = Eval.run_rows ~db prog in
  let sql = Sql.Of_arc.statement prog in
  Alcotest.(check bool) "marked recursive" true sql.Sql.Ast.with_recursive;
  let via_sql = Sql.Eval_sql.run ~db sql in
  Alcotest.(check bool) "recursion agrees" true
    (Relation.equal_set via_engine via_sql)

(* Satellite: Of_arc output must survive print → re-parse → to_arc as a
   semantically equivalent core — including identifier quoting, string
   escaping, operator precedence, and the NOT EXISTS/NOT IN family. *)
let of_arc_reparse_roundtrip () =
  let open Arc_core.Build in
  let db_strs =
    Database.of_list
      [
        ( "T",
          Relation.of_rows [ "name" ]
            [ [ s "it's" ]; [ s "plain" ]; [ s "a,b" ]; [ s "null" ] ] );
      ]
  in
  let value_rows r =
    let attrs = Arc_relation.Schema.attrs (Relation.schema r) in
    List.sort compare
      (List.map
         (fun tp -> List.map (Arc_relation.Tuple.get tp) attrs)
         (Relation.tuples r))
  in
  let all_schemas = schemas @ [ ("T", [ "name" ]) ] in
  let check (db, q, name) =
    let prog = Arc_core.Ast.program q in
    let direct = Eval.run_rows ~conv:Conventions.sql_set ~db prog in
    let sql_text =
      Sql.Print.statement (Sql.Of_arc.statement ~conv:Conventions.sql_set prog)
    in
    let reparsed =
      try Sql.Parse.statement_of_string sql_text
      with Sql.Parse.Parse_error m ->
        Alcotest.failf "%s: reparse of %S failed: %s" name sql_text m
    in
    let back = Sql.To_arc.statement ~schemas:all_schemas reparsed in
    let via = Eval.run_rows ~conv:Conventions.sql_set ~db back in
    if value_rows direct <> value_rows via then
      Alcotest.failf "%s: %S changed meaning on re-parse" name sql_text
  in
  List.iter check
    [
      ( db_strs,
        coll "Q" [ "n" ]
          (exists [ bind "t" "T" ]
             (conj
                [
                  eq (attr "Q" "n") (attr "t" "name");
                  eq (attr "t" "name") (cstr "it's");
                ])),
        "embedded quote in literal" );
      ( db_strs,
        coll "Q" [ "n" ]
          (exists [ bind "t" "T" ]
             (conj
                [
                  eq (attr "Q" "n") (attr "t" "name");
                  like (attr "t" "name") "it'%";
                ])),
        "embedded quote in LIKE pattern" );
      ( figures_db,
        coll "Q" [ "x"; "y" ]
          (exists [ bind "r" "R" ]
             (conj
                [
                  eq (attr "Q" "x")
                    (add (attr "r" "A") (mul (attr "r" "B") (cint 2)));
                  eq (attr "Q" "y") (mod_ (attr "r" "B") (cint 3));
                ])),
        "arithmetic precedence and mod" );
      ( figures_db,
        coll "Q" [ "A" ]
          (exists [ bind "r" "R" ]
             (conj
                [
                  eq (attr "Q" "A") (attr "r" "A");
                  not_
                    (exists [ bind "s2" "S" ]
                       (eq (attr "r" "B") (attr "s2" "B")));
                ])),
        "not exists" );
      ( figures_db,
        coll "Q" [ "f" ]
          (exists [ bind "r" "R" ]
             (conj
                [
                  eq (attr "Q" "f") (attr "r" "A");
                  gt (attr "r" "A") (const (V.Float 1e-7));
                ])),
        "exponent float literal" );
    ]

let full_circle () =
  (* SQL → ARC → SQL: the reprinted SQL must still evaluate to the same
     result (under set semantics, which the reverse direction targets) *)
  List.iter
    (fun q ->
      let direct = Relation.dedup (Sql.Eval_sql.run_string ~db:figures_db q) in
      let prog =
        Sql.To_arc.statement ~schemas (Sql.Parse.statement_of_string q)
      in
      match Sql.Of_arc.statement ~conv:Conventions.sql_set prog with
      | exception Sql.Of_arc.Unsupported _ -> ()
      | back ->
          let again = Sql.Eval_sql.run ~db:figures_db back in
          if not (Relation.equal_set direct again) then
            Alcotest.failf "full circle changed %S (became %S)" q
              (Sql.Print.statement back))
    [
      "select R.A from R";
      "select R.A, S.C from R, S where R.B = S.B";
      "select R.A from R where not exists (select 1 from S where S.B = R.B)";
      "select R.A, sum(R.B) sm from R group by R.A";
      "select R.A x from R union select S.C x from S";
      "select R.A, S.C from R left join S on R.B = S.B";
      "select R.A from R where R.B in (select S.B from S where S.C = 0)";
    ]

(* property: random small databases, the whole translated query battery *)
let prop_translation_agrees =
  let gen_db =
    QCheck.Gen.(
      let row = list_size (return 2) (map i (int_bound 4)) in
      let* rrows = list_size (int_bound 6) row in
      let* srows = list_size (int_bound 6) row in
      return
        (Database.of_list
           [
             ("R", Relation.of_rows [ "A"; "B" ] rrows);
             ("S", Relation.of_rows [ "B"; "C" ] srows);
           ]))
  in
  let queries =
    [
      "select R.A, S.C from R, S where R.B = S.B";
      "select R.A from R where not exists (select 1 from S where S.B = R.B)";
      "select R.A, sum(R.B) sm from R group by R.A";
      "select R.A from R where R.B in (select S.B from S)";
      "select R.A, S.C from R left join S on R.B = S.B";
      "select R.A x from R union select S.C x from S";
      "select distinct R.A from R where R.A > 1";
    ]
  in
  QCheck.Test.make ~name:"SQL ≡ ARC on random databases" ~count:60
    (QCheck.make gen_db) (fun db ->
      List.for_all
        (fun q ->
          let direct = Sql.Eval_sql.run_string ~db q in
          let prog =
            Sql.To_arc.statement ~schemas (Sql.Parse.statement_of_string q)
          in
          let via_arc = Eval.run_rows ~conv:Conventions.sql ~db prog in
          Relation.equal_bag (Relation.sort direct) (Relation.sort via_arc))
        queries)

let () =
  Alcotest.run "arc_sql"
    [
      ( "parse/print",
        [
          Alcotest.test_case "round-trips" `Quick parse_roundtrips;
          Alcotest.test_case "errors" `Quick parse_errors;
        ] );
      ( "evaluator",
        [
          Alcotest.test_case "count bug (fig 21)" `Quick count_bug_sql;
          Alcotest.test_case "NOT IN with NULL (fig 11)" `Quick not_in_null_sql;
          Alcotest.test_case "scalar = lateral (fig 5)" `Quick lateral_vs_scalar;
          Alcotest.test_case "fig 13 bag counterexample" `Quick
            fig13_bag_counterexample_sql;
          Alcotest.test_case "ON vs WHERE on outer join" `Quick
            outer_join_on_vs_where;
          Alcotest.test_case "group/having (fig 6)" `Quick group_having_sql;
          Alcotest.test_case "aggregates over empty" `Quick empty_aggregate_sql;
          Alcotest.test_case "set operations" `Quick set_ops_sql;
          Alcotest.test_case "order by / limit" `Quick order_by_limit;
          Alcotest.test_case "recursive CTE" `Quick recursive_cte_sql;
        ] );
      ( "sql→arc",
        [
          Alcotest.test_case "basic" `Quick to_arc_basic;
          Alcotest.test_case "subqueries" `Quick to_arc_subqueries;
          Alcotest.test_case "aggregates" `Quick to_arc_aggregates;
          Alcotest.test_case "lateral/scalar" `Quick to_arc_lateral_scalar;
          Alcotest.test_case "outer joins" `Quick to_arc_outer_joins;
          Alcotest.test_case "set operations" `Quick to_arc_set_ops;
          Alcotest.test_case "CTEs" `Quick to_arc_ctes;
          Alcotest.test_case "pattern preservation" `Quick to_arc_pattern;
        ] );
      ( "arc→sql",
        [
          Alcotest.test_case "round-trips" `Quick of_arc_roundtrip;
          Alcotest.test_case "full circle SQL→ARC→SQL" `Quick full_circle;
          Alcotest.test_case "of_arc print/re-parse fidelity" `Quick
            of_arc_reparse_roundtrip;
          Alcotest.test_case "sentence" `Quick of_arc_sentence;
          Alcotest.test_case "recursion" `Quick of_arc_recursive;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_translation_agrees ] );
    ]
