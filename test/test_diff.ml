(* Differential testing: the plan engine (Exec) against the reference
   evaluator (Eval) on the full Fig/Eq catalog plus queries drawn from the
   examples/ programs, under every convention combination and both
   recursion strategies. The two engines must agree bag-for-bag (or both
   raise an evaluation error). *)

open Arc_core.Ast
open Arc_core.Build
module V = Arc_value.Value
module B3 = Arc_value.Bool3
module Conventions = Arc_value.Conventions
module Relation = Arc_relation.Relation
module Tuple = Arc_relation.Tuple
module Database = Arc_relation.Database
module Eval = Arc_engine.Eval
module Exec = Arc_engine.Exec
module Data = Arc_catalog.Data

let program ?(defs = []) main = { defs; main }

(* every convention combination: 2 collection × 2 null-logic × 2 agg-empty *)
let all_conventions : (string * Conventions.t) list =
  List.concat_map
    (fun (cs, cn) ->
      List.concat_map
        (fun (nl, nn) ->
          List.map
            (fun (ae, an) ->
              ( Printf.sprintf "%s/%s/%s" cn nn an,
                Conventions.
                  { collection = cs; null_logic = nl; agg_empty = ae } ))
            [ (Conventions.Agg_null, "agg_null");
              (Conventions.Agg_zero, "agg_zero") ])
        [ (Conventions.Two_valued, "2vl"); (Conventions.Three_valued, "3vl") ])
    [ (Conventions.Set, "set"); (Conventions.Bag, "bag") ]

type run_result =
  | Bag of string list  (** sorted canonical tuple keys *)
  | Truth of B3.t
  | Errored of string

let outcome_of ~engine ~conv ~strategy ~db prog =
  match engine ~conv ~strategy ~db prog with
  | Eval.Rows r ->
      Bag (List.sort compare (List.map Tuple.key (Relation.tuples r)))
  | Eval.Truth t -> Truth t
  | exception Eval.Eval_error _ -> Errored "eval_error"

let result_to_string = function
  | Bag keys -> Printf.sprintf "bag of %d rows" (List.length keys)
  | Truth t -> "truth " ^ B3.to_string t
  | Errored m -> "error: " ^ m

let agree a b =
  match (a, b) with
  | Bag x, Bag y -> x = y
  | Truth x, Truth y -> x = y
  | Errored _, Errored _ -> true (* both engines reject: acceptable *)
  | _ -> false

let check_case name ~db ?(defs = []) main () =
  let prog = program ~defs main in
  List.iter
    (fun (cname, conv) ->
      List.iter
        (fun (sname, strategy) ->
          let reference =
            outcome_of
              ~engine:(fun ~conv ~strategy ~db p ->
                Eval.run ~conv ~strategy ~db p)
              ~conv ~strategy ~db prog
          in
          let plan =
            outcome_of
              ~engine:(fun ~conv ~strategy ~db p ->
                Exec.run ~conv ~strategy ~db p)
              ~conv ~strategy ~db prog
          in
          if not (agree reference plan) then
            Alcotest.failf "%s [%s, %s]: reference %s, plan %s" name cname
              sname
              (result_to_string reference)
              (result_to_string plan))
        [ ("naive", Eval.Naive); ("seminaive", Eval.Seminaive) ])
    all_conventions

(* ---------------------------------------------------------------- *)
(* Catalog corpus: every Fig/Eq query with its paper database        *)
(* ---------------------------------------------------------------- *)

let db_xy =
  Database.of_list
    [
      ("X", Relation.of_rows [ "A" ] [ [ V.Int 1 ]; [ V.Int 5 ] ]);
      ("Y", Relation.of_rows [ "A" ] [ [ V.Int 2 ]; [ V.Int 6 ] ]);
    ]

let db_sec27 =
  Database.of_list
    [
      ("R", Relation.of_rows [ "A"; "B" ] [ [ V.Int 1; V.Int 7 ] ]);
      ("S", Relation.of_rows [ "B" ] [ [ V.Int 7 ]; [ V.Int 7 ] ]);
    ]

let db_dedup =
  Database.of_list
    [
      ( "R",
        Relation.of_rows [ "A"; "B" ]
          [ [ V.Int 1; V.Int 2 ]; [ V.Int 1; V.Int 2 ]; [ V.Int 3; V.Int 4 ] ]
      );
    ]

let catalog_cases =
  [
    ("eq1", Data.db_rs, [], Coll Data.eq1);
    ("eq2", db_xy, [], Coll Data.eq2);
    ("eq3", Data.db_grouping, [], Coll Data.eq3);
    ("eq7", Data.db_grouping, [], Coll Data.eq7);
    ("eq8", Data.db_payroll, [], Coll Data.eq8);
    ("eq10", Data.db_payroll, [], Coll Data.eq10);
    ("eq12", Data.db_payroll, [], Coll Data.eq12);
    ("eq13", Data.db_boolean, [], Sentence Data.eq13);
    ("eq14", Data.db_boolean, [], Sentence Data.eq14);
    ("eq15", Data.db_souffle, [], Coll Data.eq15);
    ("eq16", Data.db_parent, Data.eq16_defs, Coll Data.eq16_main);
    ("eq17", Data.db_nulls, [], Coll Data.eq17);
    ("eq17-plain", Data.db_nulls, [], Coll Data.eq17_plain_not_exists);
    ("eq18", Data.db_outer, [], Coll Data.eq18);
    ("fig13-lateral", Data.db_fig13, [], Coll Data.fig13_lateral);
    ("fig13-leftjoin", Data.db_fig13, [], Coll Data.fig13_leftjoin);
    ("eq19", Data.db_external, [], Coll Data.eq19);
    ("eq20", Data.db_external, [], Coll Data.eq20);
    ("eq21", Data.db_external, [], Coll Data.eq21);
    ("eq22", Data.db_beers, [], Coll Data.eq22);
    ("eq24", Data.db_beers, [ Data.eq23_subset ], Coll Data.eq24);
    ("eq26", Data.db_matrices, [], Coll Data.eq26);
    ("eq26-external", Data.db_matrices, [], Coll Data.eq26_external);
    ("eq27", Data.db_countbug, [], Coll Data.eq27);
    ("eq28", Data.db_countbug, [], Coll Data.eq28);
    ("eq29", Data.db_countbug, [], Coll Data.eq29);
    ("sec27-nested", db_sec27, [], Coll Data.sec27_nested);
    ("sec27-unnested", db_sec27, [], Coll Data.sec27_unnested);
    ("dedup-grouping", db_dedup, [], Coll Data.dedup_grouping);
  ]

(* ---------------------------------------------------------------- *)
(* Example-program corpus (examples/*.ml queries, rebuilt here)      *)
(* ---------------------------------------------------------------- *)

let s = V.str

let db_division =
  Database.of_list
    [
      ( "Supplies",
        Relation.of_rows [ "sup"; "part" ]
          [
            [ s "acme"; s "bolt" ]; [ s "acme"; s "nut" ]; [ s "acme"; s "cam" ];
            [ s "bolts4u"; s "bolt" ]; [ s "bolts4u"; s "nut" ];
            [ s "camco"; s "cam" ];
          ] );
      ( "Parts",
        Relation.of_rows [ "part" ] [ [ s "bolt" ]; [ s "nut" ]; [ s "cam" ] ]
      );
    ]

(* relational_division.ml: double negation (anti-join of anti-joins) *)
let division_trc =
  collection "Q" [ "sup" ]
    (exists [ bind "s1" "Supplies" ]
       (conj
          [
            eq (attr "Q" "sup") (attr "s1" "sup");
            not_
              (exists [ bind "p" "Parts" ]
                 (not_
                    (exists [ bind "s2" "Supplies" ]
                       (conj
                          [
                            eq (attr "s2" "sup") (attr "s1" "sup");
                            eq (attr "s2" "part") (attr "p" "part");
                          ]))));
          ]))

let db_analytics =
  Database.of_list
    [
      ( "Orders",
        Relation.of_rows [ "oid"; "cust"; "amount" ]
          (List.init 40 (fun i ->
               [ V.Int i; V.Int (i mod 7); V.Int ((i * 13 mod 50) + 1) ])) );
      ( "Customers",
        Relation.of_rows [ "cust"; "region" ]
          (List.init 7 (fun i -> [ V.Int i; s (if i mod 2 = 0 then "n" else "s") ]))
      );
    ]

(* analytics_workload.ml: join + grouped aggregate + having *)
let analytics_rollup =
  collection "Q" [ "region"; "total" ]
    (exists
       ~grouping:[ ("c", "region") ]
       [ bind "o" "Orders"; bind "c" "Customers" ]
       (conj
          [
            eq (attr "o" "cust") (attr "c" "cust");
            eq (attr "Q" "region") (attr "c" "region");
            eq (attr "Q" "total") (sum (attr "o" "amount"));
            gt (sum (attr "o" "amount")) (cint 0);
          ]))

let db_chain n =
  Database.of_list
    [
      ( "E",
        Relation.of_rows [ "src"; "dst" ]
          (List.init n (fun i -> [ V.Int i; V.Int (i + 1) ])) );
    ]

(* transitive closure, the canonical recursive workload *)
let tc_defs =
  [
    {
      def_name = "T";
      def_body =
        collection "T" [ "src"; "dst" ]
          (disj
             [
               exists [ bind "e" "E" ]
                 (conj
                    [
                      eq (attr "T" "src") (attr "e" "src");
                      eq (attr "T" "dst") (attr "e" "dst");
                    ]);
               exists [ bind "t" "T"; bind "e" "E" ]
                 (conj
                    [
                      eq (attr "t" "dst") (attr "e" "src");
                      eq (attr "T" "src") (attr "t" "src");
                      eq (attr "T" "dst") (attr "e" "dst");
                    ]);
             ])
    };
  ]

let tc_main =
  collection "Q" [ "src"; "dst" ]
    (exists [ bind "t" "T" ]
       (conj
          [
            eq (attr "Q" "src") (attr "t" "src");
            eq (attr "Q" "dst") (attr "t" "dst");
          ]))

let example_cases =
  [
    ("division-trc", db_division, [], Coll division_trc);
    ("analytics-rollup", db_analytics, [], Coll analytics_rollup);
    ("tc-chain", db_chain 12, tc_defs, Coll tc_main);
  ]

let () =
  let case (name, db, defs, main) =
    Alcotest.test_case name `Quick (check_case name ~db ~defs main)
  in
  Alcotest.run "arc_diff"
    [
      ("catalog", List.map case catalog_cases);
      ("examples", List.map case example_cases);
    ]
