(* TRC frontend tests: the paper's Section 2.1 normalization, end to end. *)

open Arc_core.Ast
open Arc_core.Build
module Trc = Arc_trc.Trc
module Relation = Arc_relation.Relation
module Database = Arc_relation.Database
module V = Arc_value.Value

let i = V.int

(* the exact textbook query the paper starts from *)
let textbook = "{r.A | r in R and exists s[r.B = s.B and s.C = 0 and s in S]}"

let paper_normalization () =
  let c = Trc.to_arc textbook in
  (* the expected result is Eq (1) *)
  let eq1 =
    collection "Q" [ "A" ]
      (exists
         [ bind "r" "R" ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              exists [ bind "s" "S" ]
                (conj
                   [
                     eq (attr "r" "B") (attr "s" "B");
                     eq (attr "s" "C") (cint 0);
                   ]);
            ]))
  in
  if not (equal_collection c eq1) then
    Alcotest.failf "normalization differs:@.%s"
      (Arc_syntax.Printer.query (Coll c));
  Alcotest.(check bool) "validates as ARC" true
    (Arc_core.Analysis.validate_query (Coll c) = Ok ());
  Alcotest.(check bool) "in the TRC fragment" true
    (Arc_core.Fragment.is_trc (Coll c))

let unicode_input () =
  let c =
    Trc.to_arc
      "{r.A | r \xe2\x88\x88 R \xe2\x88\xa7 \xe2\x88\x83s[r.B = s.B \xe2\x88\xa7 s.C = 0 \xe2\x88\xa7 s \xe2\x88\x88 S]}"
  in
  let c2 = Trc.to_arc textbook in
  Alcotest.(check bool) "unicode = ascii" true (equal_collection c c2)

let sugar_range_in_quantifier () =
  (* 'exists s in S[...]' sugar produces the same result as the floating
     membership atom *)
  let c1 = Trc.to_arc "{r.A | r in R and exists s in S[r.B = s.B]}" in
  let c2 = Trc.to_arc "{r.A | r in R and exists s[r.B = s.B and s in S]}" in
  Alcotest.(check bool) "sugar = floating atom" true (equal_collection c1 c2)

let evaluation_agrees () =
  let db =
    Database.of_list
      [
        ( "R",
          Relation.of_rows [ "A"; "B" ]
            [ [ i 1; i 10 ]; [ i 2; i 20 ]; [ i 3; i 30 ] ] );
        ( "S",
          Relation.of_rows [ "B"; "C" ]
            [ [ i 10; i 0 ]; [ i 20; i 5 ]; [ i 99; i 0 ] ] );
      ]
  in
  let c = Trc.to_arc textbook in
  let r = Arc_engine.Eval.run_rows ~db (program (Coll c)) in
  Alcotest.(check bool) "evaluates like eq1" true
    (Relation.equal_set r (Relation.of_rows [ "A" ] [ [ i 1 ] ]))

let forall_range_sugar () =
  let c =
    Trc.to_arc
      "{s1.sup | s1 in Supplies and not exists p in Parts[not exists s2 in \
       Supplies[s2.sup = s1.sup and s2.part = p.part]]}"
  in
  let db =
    Database.of_list
      [
        ( "Supplies",
          Relation.of_rows [ "sup"; "part" ]
            [
              [ V.str "a"; V.str "x" ]; [ V.str "a"; V.str "y" ];
              [ V.str "b"; V.str "x" ];
            ] );
        ("Parts", Relation.of_rows [ "part" ] [ [ V.str "x" ]; [ V.str "y" ] ]);
      ]
  in
  let r = Arc_engine.Eval.run_rows ~db (program (Coll c)) in
  Alcotest.(check bool) "division result" true
    (Relation.equal_set r (Relation.of_rows [ "sup" ] [ [ V.str "a" ] ]))

(* regression: ∀-elimination must keep each quantified variable's range
   atom positive on the ∃'s conjunctive spine, or range extraction fails.
   Both the range sugar and the implication idiom once raised
   Normalize_error on every forall (found by the differential fuzzer). *)
let division_db =
  Database.of_list
    [
      ( "Supplies",
        Relation.of_rows [ "sup"; "part" ]
          [
            [ V.str "a"; V.str "x" ]; [ V.str "a"; V.str "y" ];
            [ V.str "b"; V.str "x" ];
          ] );
      ("Parts", Relation.of_rows [ "part" ] [ [ V.str "x" ]; [ V.str "y" ] ]);
    ]

let check_division name q =
  let c = Trc.to_arc q in
  let r = Arc_engine.Eval.run_rows ~db:division_db (program (Coll c)) in
  Alcotest.(check bool) name true
    (Relation.equal_set r (Relation.of_rows [ "sup" ] [ [ V.str "a" ] ]))

let forall_sugar_division () =
  check_division "forall range sugar"
    "{s1.sup | s1 in Supplies and forall p in Parts [exists s2 in Supplies[s2.sup \
     = s1.sup and s2.part = p.part]]}"

let forall_implication_division () =
  check_division "forall implication idiom"
    "{s1.sup | s1 in Supplies and forall p [not (p in Parts) or exists s2 in \
     Supplies[s2.sup = s1.sup and s2.part = p.part]]}"

let multi_projection_dedup () =
  let c = Trc.to_arc "{r.A, s.A | r in R and s in R and r.B = s.B}" in
  Alcotest.(check (list string)) "head attrs deduplicated" [ "A"; "A2" ]
    c.head.head_attrs

let errors () =
  (match Trc.parse "{r.A | r in" with
  | exception Trc.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected parse error");
  (match Trc.to_arc "{r.A | exists s[s.B = r.B]}" with
  | exception Trc.Normalize_error _ -> ()
  | _ -> Alcotest.fail "expected range-less head variable error");
  match Trc.to_arc "{r.A | r in R and exists s[s.B = r.B]}" with
  | exception Trc.Normalize_error _ -> ()
  | _ -> Alcotest.fail "expected range-less quantified variable error"

let print_parse () =
  let q = Trc.parse textbook in
  let printed = Trc.to_string q in
  let q2 = Trc.parse printed in
  Alcotest.(check bool) "textbook print/parse round-trip" true (q = q2)

let () =
  Alcotest.run "arc_trc"
    [
      ( "normalization",
        [
          Alcotest.test_case "the paper's two steps" `Quick paper_normalization;
          Alcotest.test_case "unicode input" `Quick unicode_input;
          Alcotest.test_case "range sugar" `Quick sugar_range_in_quantifier;
          Alcotest.test_case "evaluation" `Quick evaluation_agrees;
          Alcotest.test_case "division via ¬∃¬" `Quick forall_range_sugar;
          Alcotest.test_case "division via forall-in sugar" `Quick
            forall_sugar_division;
          Alcotest.test_case "division via forall implication" `Quick
            forall_implication_division;
          Alcotest.test_case "head dedup" `Quick multi_projection_dedup;
        ] );
      ( "misc",
        [
          Alcotest.test_case "errors" `Quick errors;
          Alcotest.test_case "print/parse" `Quick print_parse;
        ] );
    ]
