(* Relation substrate tests: schemas, tuples, bag/set relations, RA ops. *)

module V = Arc_value.Value
module Schema = Arc_relation.Schema
module Tuple = Arc_relation.Tuple
module Relation = Arc_relation.Relation
module Database = Arc_relation.Database

let i = V.int

let schema_basics () =
  let s = Schema.make [ "A"; "B"; "C" ] in
  Alcotest.(check int) "arity" 3 (Schema.arity s);
  Alcotest.(check int) "index" 1 (Schema.index s "B");
  Alcotest.(check bool) "mem" true (Schema.mem s "C");
  Alcotest.(check bool) "not mem" false (Schema.mem s "D");
  Alcotest.check_raises "duplicate" (Schema.Duplicate_attribute "A") (fun () ->
      ignore (Schema.make [ "A"; "A" ]));
  Alcotest.check_raises "unknown" (Schema.Unknown_attribute "Z") (fun () ->
      ignore (Schema.index s "Z"))

let schema_names_vs_order () =
  let s1 = Schema.make [ "A"; "B" ] and s2 = Schema.make [ "B"; "A" ] in
  Alcotest.(check bool) "equal_names ignores order" true
    (Schema.equal_names s1 s2);
  Alcotest.(check bool) "equal respects order" false (Schema.equal s1 s2)

let tuple_access () =
  let t = Tuple.of_alist [ ("A", i 1); ("B", i 2) ] in
  Alcotest.(check bool) "get" true (V.equal (Tuple.get t "B") (i 2));
  let p = Tuple.project t [ "B" ] in
  Alcotest.(check int) "projected arity" 1 (Schema.arity (Tuple.schema p));
  let t2 = Tuple.of_alist [ ("B", i 2); ("A", i 1) ] in
  Alcotest.(check bool) "name-based equality" true (Tuple.equal t t2)

let tuple_concat () =
  let t1 = Tuple.of_alist [ ("A", i 1) ] in
  let t2 = Tuple.of_alist [ ("B", i 2) ] in
  let t = Tuple.concat t1 t2 in
  Alcotest.(check bool) "concat fields" true
    (V.equal (Tuple.get t "A") (i 1) && V.equal (Tuple.get t "B") (i 2));
  Alcotest.check_raises "overlap" (Schema.Duplicate_attribute "A") (fun () ->
      ignore (Tuple.concat t1 t1))

let rel_dedup () =
  let r = Relation.of_rows [ "A" ] [ [ i 1 ]; [ i 1 ]; [ i 2 ] ] in
  Alcotest.(check int) "bag card" 3 (Relation.cardinality r);
  Alcotest.(check int) "set card" 2 (Relation.cardinality (Relation.dedup r))

(* regression: the dedup key must be a canonical (self-delimiting) tuple
   serialization — string values chosen so that a naive concatenation of
   printed values would collide across attribute boundaries *)
let rel_dedup_collisions () =
  let s = V.str in
  let r =
    Relation.of_rows [ "A"; "B" ]
      [
        [ s "x'|B='y"; s "z" ];
        [ s "x"; s "y'|B='z" ];
        [ s "ab"; s "c" ];
        [ s "a"; s "bc" ];
        [ s "a;b"; s "c" ];
        [ s "a"; s "b;c" ];
      ]
  in
  Alcotest.(check int) "no cross-attribute collisions" 6
    (Relation.cardinality (Relation.dedup r));
  (* numeric cross-type equality is still respected: Int 1 = Float 1.0 *)
  let n =
    Relation.of_rows [ "A" ] [ [ V.Int 1 ]; [ V.Float 1.0 ]; [ V.Float 1.5 ] ]
  in
  Alcotest.(check int) "Int 1 and Float 1.0 deduplicate" 2
    (Relation.cardinality (Relation.dedup n));
  (* and key agrees with tuple equality on attribute order *)
  let t1 = Tuple.of_alist [ ("A", i 1); ("B", i 2) ] in
  let t2 = Tuple.of_alist [ ("B", i 2); ("A", i 1) ] in
  Alcotest.(check string) "key is order-insensitive" (Tuple.key t1)
    (Tuple.key t2)

let rel_ops () =
  let r = Relation.of_rows [ "A" ] [ [ i 1 ]; [ i 2 ]; [ i 2 ] ] in
  let s = Relation.of_rows [ "A" ] [ [ i 2 ]; [ i 3 ] ] in
  Alcotest.(check int) "union all" 5
    (Relation.cardinality (Relation.union r s));
  (* bag minus: {1,2,2} - {2,3} = {1,2} *)
  Alcotest.(check int) "bag minus" 2
    (Relation.cardinality (Relation.minus r s));
  (* bag intersect: min multiplicities *)
  Alcotest.(check int) "bag intersect" 1
    (Relation.cardinality (Relation.intersect r s));
  let p = Relation.product r (Relation.rename [ ("A", "B") ] s) in
  Alcotest.(check int) "product" 6 (Relation.cardinality p)

let rel_select_project () =
  let r = Relation.of_rows [ "A"; "B" ] [ [ i 1; i 2 ]; [ i 3; i 4 ] ] in
  let sel = Relation.select (fun t -> V.equal (Tuple.get t "A") (i 1)) r in
  Alcotest.(check int) "select" 1 (Relation.cardinality sel);
  let prj = Relation.project [ "B" ] r in
  Alcotest.(check bool) "project schema" true
    (Schema.attrs (Relation.schema prj) = [ "B" ])

let rel_join () =
  let r = Relation.of_rows [ "A"; "B" ] [ [ i 1; i 2 ]; [ i 3; i 4 ] ] in
  let s = Relation.of_rows [ "B"; "C" ] [ [ i 2; i 9 ]; [ i 5; i 0 ] ] in
  let j = Relation.join r s in
  Alcotest.(check int) "natural join matches" 1 (Relation.cardinality j);
  Alcotest.(check bool) "join schema" true
    (Schema.attrs (Relation.schema j) = [ "A"; "B"; "C" ]);
  (* NULL never joins *)
  let rn = Relation.of_rows [ "A"; "B" ] [ [ i 1; V.Null ] ] in
  let sn = Relation.of_rows [ "B"; "C" ] [ [ V.Null; i 9 ] ] in
  Alcotest.(check int) "null does not join" 0
    (Relation.cardinality (Relation.join rn sn))

let rel_equalities () =
  let r1 = Relation.of_rows [ "A" ] [ [ i 1 ]; [ i 1 ]; [ i 2 ] ] in
  let r2 = Relation.of_rows [ "A" ] [ [ i 2 ]; [ i 1 ] ] in
  Alcotest.(check bool) "set equal" true (Relation.equal_set r1 r2);
  Alcotest.(check bool) "bag not equal" false (Relation.equal_bag r1 r2);
  Alcotest.(check bool) "bag equal to itself shuffled" true
    (Relation.equal_bag r1
       (Relation.of_rows [ "A" ] [ [ i 2 ]; [ i 1 ]; [ i 1 ] ]))

let rel_errors () =
  Alcotest.(check bool) "row arity mismatch raises" true
    (try
       ignore (Relation.of_rows [ "A" ] [ [ i 1; i 2 ] ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "union schema mismatch raises" true
    (try
       ignore
         (Relation.union
            (Relation.of_rows [ "A" ] [])
            (Relation.of_rows [ "B" ] []));
       false
     with Invalid_argument _ -> true)

let database () =
  let db =
    Database.of_list [ ("R", Relation.of_rows [ "A" ] [ [ i 1 ] ]) ]
  in
  Alcotest.(check bool) "mem" true (Database.mem db "R");
  Alcotest.(check bool) "find" true
    (Relation.cardinality (Database.find db "R") = 1);
  Alcotest.check_raises "unknown" (Database.Unknown_relation "Z") (fun () ->
      ignore (Database.find db "Z"));
  Alcotest.(check (list string)) "names" [ "R" ] (Database.names db)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let table_render () =
  let r = Relation.of_rows [ "A"; "B" ] [ [ i 1; V.Str "x" ] ] in
  let tbl = Relation.to_table r in
  Alcotest.(check bool) "mentions header and row count" true
    (contains tbl "| A " && contains tbl "(1 row(s))");
  let nullary = Relation.make (Schema.make []) [] in
  Alcotest.(check bool) "nullary rendering" true
    (contains (Relation.to_table nullary) "nullary")

let csv_roundtrip () =
  let check_rt name r =
    let r' = Arc_relation.Csv.read ~name:"R" (Arc_relation.Csv.write r) in
    Alcotest.(check bool) (name ^ ": schema") true
      (Schema.equal (Relation.schema r) (Relation.schema r'));
    Alcotest.(check bool) (name ^ ": rows") true (Relation.equal_bag r r')
  in
  check_rt "adversarial values"
    (Relation.of_rows [ "A"; "B"; "C" ]
       [
         [ i 1; V.Str "plain"; V.Null ];
         [ i (-3); V.Str "comma, inside"; V.Bool true ];
         [ V.Float 2.5; V.Str "quote \" and 'tick'"; V.Bool false ];
         [ V.Float 1e-7; V.Str "null"; V.Null ];
         [ V.Float 1e20; V.Str ""; V.Str "line\nbreak" ];
         [ V.Int 0; V.Str "123"; V.Str "true" ];
       ]);
  check_rt "nasty attribute names"
    (Relation.of_rows [ "a,b"; "with \"quote\""; "null" ] [ [ i 1; i 2; i 3 ] ]);
  check_rt "empty relation" (Relation.of_rows [ "A" ] []);
  check_rt "nullary with rows"
    (Relation.make (Schema.make []) [ Tuple.make (Schema.make []) [||] ]);
  (* the quoted string "null" must stay a string, the bare marker a NULL *)
  let r = Arc_relation.Csv.read "A,B\n\"null\",null\n" in
  let tp = List.hd (Relation.tuples r) in
  Alcotest.(check bool) "quoted null is a string" true
    (Tuple.get tp "A" = V.Str "null");
  Alcotest.(check bool) "bare null is NULL" true (V.is_null (Tuple.get tp "B"));
  Alcotest.check_raises "bare string rejected"
    (Arc_relation.Csv.Csv_error "malformed bare field \"abc\" (strings must be quoted)")
    (fun () -> ignore (Arc_relation.Csv.read "A\nabc\n"));
  Alcotest.check_raises "ragged row rejected"
    (Arc_relation.Csv.Csv_error "row has 2 field(s), header has 1")
    (fun () -> ignore (Arc_relation.Csv.read "A\n1,2\n"))

(* properties *)
let gen_rel =
  QCheck.make
    ~print:(fun r -> Relation.to_table r)
    QCheck.Gen.(
      let* n = int_bound 8 in
      let* rows =
        list_size (return n)
          (let* a = int_bound 4 in
           let* b = int_bound 4 in
           return [ V.Int a; V.Int b ])
      in
      return (Relation.of_rows [ "A"; "B" ] rows))

let prop_dedup_idempotent =
  QCheck.Test.make ~name:"dedup idempotent" ~count:200 gen_rel (fun r ->
      Relation.equal_bag (Relation.dedup r) (Relation.dedup (Relation.dedup r)))

let prop_union_card =
  QCheck.Test.make ~name:"bag union cardinality adds" ~count:200
    (QCheck.pair gen_rel gen_rel) (fun (r, s) ->
      Relation.cardinality (Relation.union r s)
      = Relation.cardinality r + Relation.cardinality s)

let prop_minus_then_union =
  QCheck.Test.make ~name:"(r-s) card = r card - intersect card" ~count:200
    (QCheck.pair gen_rel gen_rel) (fun (r, s) ->
      Relation.cardinality (Relation.minus r s)
      = Relation.cardinality r - Relation.cardinality (Relation.intersect r s))

let prop_product_card =
  QCheck.Test.make ~name:"product cardinality multiplies" ~count:100
    (QCheck.pair gen_rel gen_rel) (fun (r, s) ->
      let s = Relation.rename [ ("A", "C"); ("B", "D") ] s in
      Relation.cardinality (Relation.product r s)
      = Relation.cardinality r * Relation.cardinality s)

(* signed deltas: exact bag updates, canonical-key matching *)

let rel_apply_delta () =
  let r = Relation.of_rows [ "A" ] [ [ i 1 ]; [ i 1 ]; [ i 2 ] ] in
  let t v = Tuple.make (Relation.schema r) [| v |] in
  let r' =
    Relation.apply_delta r [ (t (i 1), -1); (t (i 3), 2); (t (i 2), -1) ]
  in
  Alcotest.(check bool) "delta applied" true
    (Relation.equal_bag r'
       (Relation.of_rows [ "A" ] [ [ i 1 ]; [ i 3 ]; [ i 3 ] ]));
  Alcotest.check_raises "underflow is an error"
    (Invalid_argument "Relation.apply_delta: delete exceeds multiplicity")
    (fun () -> ignore (Relation.apply_delta r [ (t (i 2), -2) ]));
  (* Int/Float unify under the canonical key, as in dedup/grouping *)
  let r'' = Relation.apply_delta r [ (t (V.float 2.0), -1) ] in
  Alcotest.(check int) "Float 2.0 deletes Int 2" 2 (Relation.cardinality r'')

(* NULL deletes NULL under the canonical key — the 2VL/3VL distinction is
   about predicate evaluation, not identity, so both conventions share
   this behavior *)
let rel_delta_nulls () =
  let r = Relation.of_rows [ "A" ] [ [ V.Null ]; [ i 1 ] ] in
  let t v = Tuple.make (Relation.schema r) [| v |] in
  let r' = Relation.apply_delta r [ (t V.Null, -1) ] in
  Alcotest.(check bool) "NULL row deleted" true
    (Relation.equal_bag r' (Relation.of_rows [ "A" ] [ [ i 1 ] ]));
  let d = Relation.diff_signed r r' in
  Alcotest.(check int) "diff sees the NULL deletion" 1 (List.length d);
  (match d with
  | [ (tp, n) ] ->
      Alcotest.(check int) "deletion sign" (-1) n;
      Alcotest.(check bool) "NULL representative" true
        (V.equal (Tuple.get tp "A") V.Null)
  | _ -> Alcotest.fail "expected exactly one entry");
  Alcotest.(check bool) "apply of diff reproduces" true
    (Relation.equal_bag r' (Relation.apply_delta r d))

let prop_diff_then_apply =
  QCheck.Test.make ~name:"apply_delta (diff_signed r s) r ~ s" ~count:300
    (QCheck.pair gen_rel gen_rel) (fun (r, s) ->
      Relation.equal_bag s (Relation.apply_delta r (Relation.diff_signed r s)))

let prop_delta_inverse =
  QCheck.Test.make ~name:"inverse delta restores the original" ~count:300
    (QCheck.pair gen_rel gen_rel) (fun (r, s) ->
      let d = Relation.diff_signed r s in
      let s' = Relation.apply_delta r d in
      Relation.equal_bag r
        (Relation.apply_delta s' (List.map (fun (tp, n) -> (tp, -n)) d)))

let () =
  Alcotest.run "arc_relation"
    [
      ( "schema",
        [
          Alcotest.test_case "basics" `Quick schema_basics;
          Alcotest.test_case "names vs order" `Quick schema_names_vs_order;
        ] );
      ( "tuple",
        [
          Alcotest.test_case "access" `Quick tuple_access;
          Alcotest.test_case "concat" `Quick tuple_concat;
        ] );
      ( "relation",
        [
          Alcotest.test_case "dedup" `Quick rel_dedup;
          Alcotest.test_case "dedup collision regression" `Quick
            rel_dedup_collisions;
          Alcotest.test_case "bag ops" `Quick rel_ops;
          Alcotest.test_case "select/project" `Quick rel_select_project;
          Alcotest.test_case "natural join" `Quick rel_join;
          Alcotest.test_case "set/bag equality" `Quick rel_equalities;
          Alcotest.test_case "errors" `Quick rel_errors;
          Alcotest.test_case "table rendering" `Quick table_render;
          Alcotest.test_case "csv roundtrip" `Quick csv_roundtrip;
          Alcotest.test_case "apply_delta" `Quick rel_apply_delta;
          Alcotest.test_case "signed deltas and NULL" `Quick rel_delta_nulls;
        ] );
      ("database", [ Alcotest.test_case "basics" `Quick database ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_dedup_idempotent;
            prop_union_card;
            prop_minus_then_union;
            prop_product_card;
            prop_diff_then_apply;
            prop_delta_inverse;
          ] );
    ]
