(* EXPLAIN ANALYZE tests: per-node actuals recorded during plan execution
   must agree with what the engine actually returned, Q-error must obey its
   algebra, and the metrics registry must keep its counters straight. *)

open Arc_core.Ast
module Relation = Arc_relation.Relation
module Eval = Arc_engine.Eval
module Exec = Arc_engine.Exec
module Ir = Arc_plan.Ir
module Explain = Arc_plan.Explain
module Metrics = Arc_obs.Metrics
module Json = Arc_obs.Json
module Data = Arc_catalog.Data

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec at k =
    k + nl <= hl && (String.sub haystack k nl = needle || at (k + 1))
  in
  nl = 0 || at 0

(* catalog queries spanning joins, grouping, aggregation, division and
   recursion — the actuals recorded at the root of the main plan must equal
   the cardinality of the relation the engine returned *)
let analyze_workloads =
  [
    ("eq1 join", Data.db_rs, { defs = []; main = Coll Data.eq1 });
    ("eq3 grouping", Data.db_grouping, { defs = []; main = Coll Data.eq3 });
    ("eq8 payroll", Data.db_payroll, { defs = []; main = Coll Data.eq8 });
    ("eq22 division", Data.db_beers, { defs = []; main = Coll Data.eq22 });
    ( "eq16 transitive closure",
      Data.db_parent,
      { defs = Data.eq16_defs; main = Coll Data.eq16_main } );
  ]

let run_with_stats db prog =
  let ctx, _raw, optimized, _report = Exec.compile ~db prog in
  let stats = Ir.fresh_stats () in
  let outcome = Exec.exec_program ~stats ctx optimized in
  (optimized, stats, outcome)

let actuals_match_output () =
  List.iter
    (fun (name, db, prog) ->
      let optimized, stats, outcome = run_with_stats db prog in
      let cardinality =
        match outcome with
        | Eval.Rows r -> Relation.cardinality r
        | Eval.Truth _ -> Alcotest.failf "%s: unexpected truth outcome" name
      in
      let infos = Explain.analyze_info optimized ~stats in
      (* the main plan's root is the first main node in preorder *)
      let root =
        match
          List.filter (fun ni -> ni.Explain.ni_def = "main") infos
        with
        | [] -> Alcotest.failf "%s: no main nodes in analyze_info" name
        | ni :: _ -> ni
      in
      match root.Explain.ni_actual with
      | None -> Alcotest.failf "%s: main root was never executed" name
      | Some a ->
          Alcotest.(check int)
            (name ^ ": root actual rows = engine output cardinality")
            cardinality a.Ir.a_rows)
    analyze_workloads

(* every executed node carries coherent actuals: invocations >= 1,
   inclusive >= exclusive >= 0, q >= 1 *)
let actuals_coherent () =
  List.iter
    (fun (name, db, prog) ->
      let optimized, stats, _ = run_with_stats db prog in
      List.iter
        (fun ni ->
          match ni.Explain.ni_actual with
          | None -> ()
          | Some a ->
              if a.Ir.a_invocations < 1 then
                Alcotest.failf "%s node %d: zero invocations" name
                  ni.Explain.ni_id;
              if a.Ir.a_rows < 0 then
                Alcotest.failf "%s node %d: negative rows" name
                  ni.Explain.ni_id;
              if Int64.compare ni.Explain.ni_excl_ns 0L < 0 then
                Alcotest.failf "%s node %d: negative exclusive time" name
                  ni.Explain.ni_id;
              if Int64.compare ni.Explain.ni_excl_ns a.Ir.a_incl_ns > 0 then
                Alcotest.failf "%s node %d: exclusive > inclusive" name
                  ni.Explain.ni_id;
              (match ni.Explain.ni_q with
              | Some q when q < 1.0 ->
                  Alcotest.failf "%s node %d: q-error %f < 1" name
                    ni.Explain.ni_id q
              | _ -> ()))
        (Explain.analyze_info optimized ~stats))
    analyze_workloads

(* the rendered tree annotates every node with est/act/q/excl *)
let render_smoke () =
  let optimized, stats, _ =
    run_with_stats Data.db_grouping { defs = []; main = Coll Data.eq3 }
  in
  let out = Explain.analyze_to_string ~stats optimized in
  List.iter
    (fun needle ->
      if not (contains ~needle out) then
        Alcotest.failf "analyze output lacks %S:\n%s" needle out)
    [ "est="; "act="; "q="; "excl=" ];
  (* an absurd warn threshold flags nothing; threshold 1.0 flags any
     node whose estimate missed at all *)
  let strict = Explain.analyze_to_string ~warn_q_error:1.01 ~stats optimized in
  let lax = Explain.analyze_to_string ~warn_q_error:1e9 ~stats optimized in
  if contains ~needle:"misestimate" lax then
    Alcotest.fail "warn threshold 1e9 still flagged a node";
  ignore strict

(* recursion: the fixpoint head reports iterations and per-round deltas *)
let recursion_annotations () =
  let optimized, stats, _ =
    run_with_stats Data.db_parent
      { defs = Data.eq16_defs; main = Coll Data.eq16_main }
  in
  let out = Explain.analyze_to_string ~stats optimized in
  List.iter
    (fun needle ->
      if not (contains ~needle out) then
        Alcotest.failf "recursive analyze output lacks %S:\n%s" needle out)
    [ "iters="; "deltas=[" ]

(* IVM batches patch relation row counts without re-gathering column
   details; the cost model discounts those details and analyze must
   attribute the resulting estimates to stale statistics end-to-end *)
let stale_statistics_flagged () =
  let module Database = Arc_relation.Database in
  let module Tuple = Arc_relation.Tuple in
  let module V = Arc_value.Value in
  let module Ivm = Arc_ivm.Ivm in
  let db = Database.analyze Data.db_rs in
  let prog = { defs = []; main = Coll Data.eq1 } in
  let fresh_out =
    let ctx, _, opt, _ = Exec.compile ~db prog in
    let stats = Ir.fresh_stats () in
    ignore (Exec.exec_program ~stats ctx opt);
    Explain.analyze_to_string ~cenv:(Database.stats_bindings db) ~stats opt
  in
  if contains ~needle:"src=stale" fresh_out then
    Alcotest.fail "freshly analyzed statistics flagged stale";
  let ivm = Ivm.create ~db () in
  Ivm.register ivm ~name:"v" prog;
  let s = Database.find db "S" in
  let row = Tuple.make (Relation.schema s) [| V.Int 42; V.Int 0 |] in
  ignore (Ivm.apply ivm [ ("S", [ (row, 1) ]) ]);
  let db' = Ivm.db ivm in
  let ctx, _, opt, _ = Exec.compile ~db:db' prog in
  let stats = Ir.fresh_stats () in
  ignore (Exec.exec_program ~stats ctx opt);
  let out =
    Explain.analyze_to_string ~cenv:(Database.stats_bindings db') ~stats opt
  in
  if not (contains ~needle:"src=stale" out) then
    Alcotest.failf "post-batch analyze does not flag stale statistics:\n%s" out

let q_error_algebra () =
  let check msg expected actual =
    Alcotest.(check (float 1e-9)) msg expected actual
  in
  check "exact estimate" 1.0 (Ir.q_error 10 10);
  check "underestimate" 100.0 (Ir.q_error 1 100);
  check "overestimate is symmetric" 100.0 (Ir.q_error 100 1);
  check "both zero clamp to 1" 1.0 (Ir.q_error 0 0);
  check "zero estimate clamps" 5.0 (Ir.q_error 0 5);
  check "zero actual clamps" 5.0 (Ir.q_error 5 0)

(* node ids are stable and dense: preorder numbering covers 0..n-1 with no
   duplicates, matching Ir.program_ids *)
let ids_dense () =
  List.iter
    (fun (name, db, prog) ->
      let optimized, stats, _ = run_with_stats db prog in
      let infos = Explain.analyze_info optimized ~stats in
      let ids = List.map (fun ni -> ni.Explain.ni_id) infos in
      let sorted = List.sort_uniq compare ids in
      if List.length sorted <> List.length ids then
        Alcotest.failf "%s: duplicate node ids" name;
      List.iteri
        (fun i id ->
          if i <> id then
            Alcotest.failf "%s: ids not dense at %d (got %d)" name i id)
        sorted)
    analyze_workloads

(* --- metrics registry ------------------------------------------------- *)

let metrics_counters () =
  let m = Metrics.create () in
  Metrics.inc m "req_total";
  Metrics.inc m ~by:4 "req_total";
  Alcotest.(check int) "counter accumulates" 5
    (Metrics.counter_value m "req_total");
  (* label order does not matter: both orders hit the same series *)
  Metrics.inc m ~labels:[ ("op", "scan"); ("def", "main") ] "node_total";
  Metrics.inc m ~labels:[ ("def", "main"); ("op", "scan") ] "node_total";
  Alcotest.(check int) "labels canonicalised" 2
    (Metrics.counter_value m
       ~labels:[ ("op", "scan"); ("def", "main") ]
       "node_total");
  Metrics.set_gauge m "depth" 3.0;
  Metrics.set_gauge m "depth" 7.0;
  (match Metrics.gauge_value m "depth" with
  | Some g -> Alcotest.(check (float 0.0)) "gauge keeps last" 7.0 g
  | None -> Alcotest.fail "gauge missing");
  (* registering the same name as a different kind is a programming error *)
  match Metrics.observe m "req_total" 1.0 with
  | () -> Alcotest.fail "kind conflict not detected"
  | exception Invalid_argument _ -> ()

let metrics_histograms () =
  let m = Metrics.create () in
  List.iter (fun v -> Metrics.observe m "lat_ns" v) [ 1.0; 2.0; 4.0; 1000.0 ];
  Alcotest.(check int) "count" 4 (Metrics.histogram_count m "lat_ns");
  Alcotest.(check (float 1e-9)) "sum" 1007.0 (Metrics.histogram_sum m "lat_ns");
  (match Metrics.quantile m "lat_ns" 0.5 with
  | Some q when q >= 1.0 && q <= 16.0 -> ()
  | Some q -> Alcotest.failf "median %f outside [1,16]" q
  | None -> Alcotest.fail "median missing");
  let prom = Metrics.to_prometheus m in
  List.iter
    (fun needle ->
      if not (contains ~needle prom) then
        Alcotest.failf "prometheus exposition lacks %S:\n%s" needle prom)
    [ "# TYPE lat_ns histogram"; "lat_ns_bucket"; "lat_ns_sum"; "lat_ns_count";
      "le=\"+Inf\"" ];
  (* the JSON exposition is parsable and round-trips through the parser *)
  let j = Metrics.to_json m in
  match Json.parse (Json.to_string j) with
  | Ok j' when j' = j -> ()
  | Ok _ -> Alcotest.fail "metrics JSON changed under round-trip"
  | Error msg -> Alcotest.failf "metrics JSON unparsable: %s" msg

(* export_stats aggregates per-node actuals into labeled series *)
let metrics_export () =
  let optimized, stats, outcome =
    run_with_stats Data.db_rs { defs = []; main = Coll Data.eq1 }
  in
  let cardinality =
    match outcome with
    | Eval.Rows r -> Relation.cardinality r
    | Eval.Truth _ -> Alcotest.fail "unexpected truth outcome"
  in
  let m = Metrics.create () in
  Exec.export_stats m optimized stats;
  let prom = Metrics.to_prometheus m in
  if not (contains ~needle:"arc_node_invocations_total" prom) then
    Alcotest.failf "export lacks invocations counter:\n%s" prom;
  (* summed over all ops, emitted rows include at least the final output *)
  let total_rows =
    List.fold_left
      (fun acc ni ->
        match ni.Explain.ni_actual with
        | Some a -> acc + a.Ir.a_rows
        | None -> acc)
      0
      (Explain.analyze_info optimized ~stats)
  in
  if total_rows < cardinality then
    Alcotest.failf "node rows (%d) < output cardinality (%d)" total_rows
      cardinality

let () =
  Alcotest.run "arc_analyze"
    [
      ( "actuals",
        [
          Alcotest.test_case "root rows = engine output on catalog queries"
            `Quick actuals_match_output;
          Alcotest.test_case "per-node actuals are coherent" `Quick
            actuals_coherent;
          Alcotest.test_case "node ids are dense preorder" `Quick ids_dense;
        ] );
      ( "rendering",
        [
          Alcotest.test_case "est/act/q/excl on every node" `Quick
            render_smoke;
          Alcotest.test_case "fixpoint iterations and deltas" `Quick
            recursion_annotations;
          Alcotest.test_case "stale statistics flagged after IVM batches"
            `Quick stale_statistics_flagged;
        ] );
      ( "q-error",
        [ Alcotest.test_case "q-error algebra" `Quick q_error_algebra ] );
      ( "metrics",
        [
          Alcotest.test_case "counters, labels, gauges, kind conflicts"
            `Quick metrics_counters;
          Alcotest.test_case "histograms and expositions" `Quick
            metrics_histograms;
          Alcotest.test_case "export_stats aggregates node actuals" `Quick
            metrics_export;
        ] );
    ]
