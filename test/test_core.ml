(* Core AST tests: builders, validation, predicate classification, safety,
   canonicalization, pattern signatures. *)

open Arc_core.Ast
open Arc_core.Build
module Analysis = Arc_core.Analysis
module Canon = Arc_core.Canon
module Pattern = Arc_core.Pattern
module Pp = Arc_core.Pp
module External = Arc_core.External
module V = Arc_value.Value

let schemas =
  [
    ("R", [ "A"; "B" ]); ("S", [ "B"; "C" ]); ("L", [ "d"; "b" ]);
    ("P", [ "s"; "t" ]);
  ]

let env = Analysis.env ~schemas ()

(* Eq (1) *)
let eq1 =
  coll "Q" [ "A" ]
    (exists
       [ bind "r" "R"; bind "s" "S" ]
       (conj
          [
            eq (attr "Q" "A") (attr "r" "A");
            eq (attr "r" "B") (attr "s" "B");
            eq (attr "s" "C") (cint 0);
          ]))

let validate_ok () =
  match Analysis.validate_query ~env eq1 with
  | Ok () -> ()
  | Error es ->
      Alcotest.failf "unexpected errors: %s"
        (String.concat "; " (List.map Analysis.error_to_string es))

let expect_error name q pred =
  match Analysis.validate_query ~env q with
  | Ok () -> Alcotest.failf "%s: expected a validation error" name
  | Error es ->
      if not (List.exists pred es) then
        Alcotest.failf "%s: wrong errors: %s" name
          (String.concat "; " (List.map Analysis.error_to_string es))

let validate_unbound () =
  expect_error "unbound var"
    (coll "Q" [ "A" ]
       (exists [ bind "r" "R" ] (eq (attr "Q" "A") (attr "zz" "A"))))
    (function Analysis.Unbound_variable "zz" -> true | _ -> false)

let validate_unknown_attr () =
  expect_error "unknown attr"
    (coll "Q" [ "A" ]
       (exists [ bind "r" "R" ] (eq (attr "Q" "A") (attr "r" "Z"))))
    (function Analysis.Unknown_attribute ("r", "Z") -> true | _ -> false)

let validate_unknown_rel () =
  expect_error "unknown relation"
    (coll "Q" [ "A" ]
       (exists [ bind "r" "NoSuch" ] (eq (attr "Q" "A") (attr "r" "A"))))
    (function Analysis.Unknown_relation "NoSuch" -> true | _ -> false)

let validate_dup_binding () =
  expect_error "duplicate binding"
    (coll "Q" [ "A" ]
       (exists
          [ bind "r" "R"; bind "r" "S" ]
          (eq (attr "Q" "A") (attr "r" "A"))))
    (function Analysis.Duplicate_binding "r" -> true | _ -> false)

let validate_dup_head_attr () =
  expect_error "duplicate head attr"
    (coll "Q" [ "A"; "A" ]
       (exists [ bind "r" "R" ] (eq (attr "Q" "A") (attr "r" "A"))))
    (function Analysis.Duplicate_head_attr ("Q", "A") -> true | _ -> false)

(* "__delta__"/"__ivm__" prefixes are reserved for engine working
   relations (seminaive deltas, IVM state); user programs must not be
   able to name or reference them *)
let validate_reserved_names () =
  expect_error "reserved head name"
    (coll "__delta__Q" [ "A" ]
       (exists [ bind "r" "R" ] (eq (attr "__delta__Q" "A") (attr "r" "A"))))
    (function
      | Analysis.Reserved_relation_name "__delta__Q" -> true
      | _ -> false);
  expect_error "reserved scan name"
    (coll "Q" [ "A" ]
       (exists [ bind "r" "__ivm__pos__R" ] (eq (attr "Q" "A") (attr "r" "A"))))
    (function
      | Analysis.Reserved_relation_name "__ivm__pos__R" -> true
      | _ -> false);
  let bad_env =
    Analysis.env ~schemas:(("__delta__R", [ "A" ]) :: schemas) ()
  in
  (match
     Analysis.validate ~env:bad_env
       (program
          (coll "Q" [ "A" ]
             (exists [ bind "r" "R" ] (eq (attr "Q" "A") (attr "r" "A")))))
   with
  | Error es
    when List.exists
           (function
             | Analysis.Reserved_relation_name "__delta__R" -> true
             | _ -> false)
           es ->
      ()
  | Ok () -> Alcotest.fail "reserved base schema: expected an error"
  | Error es ->
      Alcotest.failf "reserved base schema: wrong errors: %s"
        (String.concat "; " (List.map Analysis.error_to_string es)));
  Alcotest.(check bool)
    "error message names the offender" true
    (let msg =
       Analysis.error_to_string (Analysis.Reserved_relation_name "__delta__X")
     in
     let needle = "__delta__X" in
     let nl = String.length needle and ml = String.length msg in
     let rec at k =
       k + nl <= ml && (String.sub msg k nl = needle || at (k + 1))
     in
     at 0)

let validate_agg_needs_grouping () =
  expect_error "aggregate without grouping"
    (coll "Q" [ "sm" ]
       (exists [ bind "r" "R" ] (eq (attr "Q" "sm") (sum (attr "r" "B")))))
    (function Analysis.Aggregate_outside_grouping _ -> true | _ -> false)

let validate_nested_agg () =
  expect_error "nested aggregate"
    (coll "Q" [ "sm" ]
       (exists ~grouping:group_all [ bind "r" "R" ]
          (eq (attr "Q" "sm") (sum (sum (attr "r" "B"))))))
    (function Analysis.Nested_aggregate _ -> true | _ -> false)

let validate_grouping_var () =
  expect_error "grouping var not bound in scope"
    (coll "Q" [ "A" ]
       (exists [ bind "r" "R" ]
          (exists
             ~grouping:[ ("r", "A") ]
             [ bind "s" "S" ]
             (eq (attr "Q" "A") (attr "r" "A")))))
    (function Analysis.Grouping_var_not_bound "r" -> true | _ -> false)

let validate_join_vars () =
  expect_error "join var not bound"
    (coll "Q" [ "A" ]
       (exists
          ~join:(J_left (J_var "r", J_var "zz"))
          [ bind "r" "R"; bind "s" "S" ]
          (eq (attr "Q" "A") (attr "r" "A"))))
    (function Analysis.Join_var_not_bound "zz" -> true | _ -> false);
  expect_error "join var duplicated"
    (coll "Q" [ "A" ]
       (exists
          ~join:(J_inner [ J_var "r"; J_var "r" ])
          [ bind "r" "R"; bind "s" "S" ]
          (eq (attr "Q" "A") (attr "r" "A"))))
    (function Analysis.Join_var_duplicated "r" -> true | _ -> false)

let validate_grouped_head_dependency () =
  expect_error "non-key head assignment in grouping scope"
    (coll "Q" [ "A"; "B" ]
       (exists
          ~grouping:[ ("r", "A") ]
          [ bind "r" "R" ]
          (conj
             [
               eq (attr "Q" "A") (attr "r" "A");
               eq (attr "Q" "B") (attr "r" "B");
             ])))
    (function
      | Analysis.Ungrouped_head_dependency ("Q", "B") -> true | _ -> false)

let validate_head_in_nested () =
  expect_error "outer head referenced in nested collection"
    (coll "Q" [ "A" ]
       (exists
          [
            bind "r" "R";
            bind_in "x"
              (collection "X" [ "B" ]
                 (exists [ bind "s" "S" ]
                    (conj
                       [
                         eq (attr "X" "B") (attr "s" "B");
                         eq (attr "Q" "A") (attr "s" "C");
                       ])));
          ]
          (conj [ eq (attr "Q" "A") (attr "r" "A") ])))
    (function Analysis.Head_in_nested_collection "Q" -> true | _ -> false)

(* head attrs of an enclosing collection visible at depth (Eq 23 pattern) *)
let validate_head_visible_in_own_scopes () =
  let def =
    collection "Subset" [ "left"; "right" ]
      (not_
         (exists [ bind "l3" "L" ]
            (conj
               [
                 eq (attr "l3" "d") (attr "Subset" "left");
                 not_
                   (exists [ bind "l4" "L" ]
                      (conj
                         [
                           eq (attr "l4" "b") (attr "l3" "b");
                           eq (attr "l4" "d") (attr "Subset" "right");
                         ]));
               ])))
  in
  match Analysis.validate ~env { defs = [ define "Subset" def ]; main = Sentence True } with
  | Ok () -> ()
  | Error es ->
      Alcotest.failf "subset def should validate: %s"
        (String.concat "; " (List.map Analysis.error_to_string es))

(* predicate classification (Section 2.1 / 2.5) *)
let classify () =
  let heads = [ "Q" ] in
  let c p = Analysis.classify ~heads p in
  let assign = Cmp (Eq, Attr ("Q", "A"), Attr ("r", "A")) in
  let comparison = Cmp (Eq, Attr ("r", "B"), Attr ("s", "B")) in
  let agg_assign = Cmp (Eq, Attr ("Q", "sm"), Agg (Arc_value.Aggregate.Sum, Attr ("r", "B"))) in
  let agg_cmp = Cmp (Gt, Attr ("r", "q"), Agg (Arc_value.Aggregate.Count, Attr ("s", "d"))) in
  Alcotest.(check bool) "assignment" true (c assign).Analysis.is_assignment;
  Alcotest.(check bool) "assignment not agg" false
    (c assign).Analysis.is_aggregation;
  Alcotest.(check bool) "comparison" false (c comparison).Analysis.is_assignment;
  Alcotest.(check bool) "agg assignment both" true
    ((c agg_assign).Analysis.is_assignment && (c agg_assign).Analysis.is_aggregation);
  Alcotest.(check bool) "agg comparison" true
    ((c agg_cmp).Analysis.is_aggregation && not (c agg_cmp).Analysis.is_assignment)

(* safety: Eq1 is safe; the raw Minus definition is unsafe (Section 2.13) *)
let safety () =
  let c1 = match eq1 with Coll c -> c | _ -> assert false in
  (match Analysis.collection_safety ~env ~defs:[] c1 with
  | Analysis.Safe -> ()
  | Analysis.Unsafe r -> Alcotest.failf "eq1 should be safe: %s" r);
  let minus_def =
    collection "Minus" [ "left"; "right"; "out" ]
      (eq (attr "Minus" "out") (sub (attr "Minus" "left") (attr "Minus" "right")))
  in
  (match Analysis.collection_safety ~env ~defs:[] minus_def with
  | Analysis.Unsafe _ -> ()
  | Analysis.Safe -> Alcotest.fail "raw Minus definition should be unsafe");
  (* the Subset abstract relation (Eq 23) is unsafe in isolation *)
  let subset =
    collection "Subset" [ "left"; "right" ]
      (not_
         (exists [ bind "l3" "L" ]
            (conj
               [
                 eq (attr "l3" "d") (attr "Subset" "left");
                 not_
                   (exists [ bind "l4" "L" ]
                      (conj
                         [
                           eq (attr "l4" "b") (attr "l3" "b");
                           eq (attr "l4" "d") (attr "Subset" "right");
                         ]));
               ])))
  in
  match Analysis.collection_safety ~env ~defs:[] subset with
  | Analysis.Unsafe _ -> ()
  | Analysis.Safe -> Alcotest.fail "Subset should be unsafe in isolation"

let safety_externals_resolved () =
  (* Eq (20): Minus resolved through its left/right → out access pattern *)
  let q =
    collection "Q" [ "A" ]
      (exists
         [ bind "r" "R"; bind "s" "S"; bind "f" "Minus" ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              eq (attr "f" "left") (attr "r" "B");
              eq (attr "f" "right") (attr "s" "B");
              gt (attr "f" "out") (cint 0);
            ]))
  in
  (match Analysis.collection_safety ~env ~defs:[] q with
  | Analysis.Safe -> ()
  | Analysis.Unsafe r -> Alcotest.failf "eq20 should be safe: %s" r);
  (* unresolvable external: no seed equations *)
  let bad =
    collection "Q" [ "A" ]
      (exists
         [ bind "f" "Minus" ]
         (eq (attr "Q" "A") (attr "f" "out")))
  in
  match Analysis.collection_safety ~env ~defs:[] bad with
  | Analysis.Unsafe _ -> ()
  | Analysis.Safe -> Alcotest.fail "unseeded Minus should be unsafe"

(* canonicalization *)
let canon_invariance () =
  let variant =
    coll "Out" [ "A" ]
      (exists
         [ bind "x" "R"; bind "y" "S" ]
         (conj
            [
              eq (attr "y" "C") (cint 0);
              eq (attr "x" "B") (attr "y" "B");
              eq (attr "Out" "A") (attr "x" "A");
            ]))
  in
  let c1 = Canon.canonical_query eq1 and c2 = Canon.canonical_query variant in
  Alcotest.(check bool) "rename+reorder invariant" true (equal_query c1 c2);
  Alcotest.(check string) "same skeleton" (Canon.skeleton eq1)
    (Canon.skeleton variant)

let canon_distinguishes () =
  let different =
    coll "Q" [ "A" ]
      (exists
         [ bind "r" "R"; bind "s" "S" ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              eq (attr "r" "B") (attr "s" "B");
              eq (attr "s" "C") (cint 1);
            ]))
  in
  Alcotest.(check bool) "different constant -> different canon" false
    (equal_query (Canon.canonical_query eq1) (Canon.canonical_query different))

let cint' n = Const (V.Int n)

let simplify () =
  let f = And [ True; And [ Pred (Cmp (Eq, cint' 1, cint' 1)) ]; True ] in
  match Canon.simplify_formula f with
  | Pred _ -> ()
  | _ -> Alcotest.fail "flatten and drop True"

let simplify_double_neg () =
  let p = Pred (Cmp (Eq, Const (V.Int 1), Const (V.Int 1))) in
  Alcotest.(check bool) "double negation" true
    (equal_formula (Canon.simplify_formula (Not (Not p))) p)

(* pattern signatures *)
let pattern_fio_foi () =
  let fio =
    coll "Q" [ "A"; "sm" ]
      (exists
         ~grouping:[ ("r", "A") ]
         [ bind "r" "R" ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              eq (attr "Q" "sm") (sum (attr "r" "B"));
            ]))
  in
  let foi =
    coll "Q" [ "A"; "sm" ]
      (exists
         [
           bind "r" "R";
           bind_in "x"
             (collection "X" [ "sm" ]
                (exists ~grouping:group_all [ bind "r2" "R" ]
                   (conj
                      [
                        eq (attr "r2" "A") (attr "r" "A");
                        eq (attr "X" "sm") (sum (attr "r2" "B"));
                      ])));
         ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              eq (attr "Q" "sm") (attr "x" "sm");
            ]))
  in
  let p_fio = Pattern.of_query fio and p_foi = Pattern.of_query foi in
  Alcotest.(check bool) "fio classified FIO" true
    (p_fio.Pattern.agg_styles = [ Pattern.FIO ]);
  Alcotest.(check bool) "foi classified FOI" true
    (p_foi.Pattern.agg_styles = [ Pattern.FOI ]);
  Alcotest.(check bool) "fio references R once" true
    (p_fio.Pattern.rel_refs = [ ("R", 1) ]);
  Alcotest.(check bool) "foi references R twice" true
    (p_foi.Pattern.rel_refs = [ ("R", 2) ])

let pattern_counts () =
  let p = Pattern.of_query eq1 in
  Alcotest.(check int) "scopes" 1 p.Pattern.n_scopes;
  Alcotest.(check int) "assignments" 1 p.Pattern.n_assignments;
  Alcotest.(check int) "comparisons" 2 p.Pattern.n_comparisons;
  Alcotest.(check int) "no negation" 0 p.Pattern.n_negations;
  Alcotest.(check bool) "refs" true
    (p.Pattern.rel_refs = [ ("R", 1); ("S", 1) ])

(* Pp atoms *)
let pp_atoms () =
  Alcotest.(check string) "term" "r.A" (Pp.term (Attr ("r", "A")));
  Alcotest.(check string) "scalar" "r.B - s.B"
    (Pp.term (Scalar (Sub, [ Attr ("r", "B"); Attr ("s", "B") ])));
  Alcotest.(check string) "agg" "sum(r.B)"
    (Pp.term (Agg (Arc_value.Aggregate.Sum, Attr ("r", "B"))));
  Alcotest.(check string) "pred" "r.B = s.B"
    (Pp.pred (Cmp (Eq, Attr ("r", "B"), Attr ("s", "B"))));
  Alcotest.(check string) "join tree" "left(r, inner(11, s))"
    (Pp.join_tree (J_left (J_var "r", J_inner [ J_lit (V.Int 11); J_var "s" ])));
  Alcotest.(check string) "head" "Q(A, B)"
    (Pp.head { head_name = "Q"; head_attrs = [ "A"; "B" ] })

(* external decls *)
let external_decls () =
  let d = External.arithmetic "Minus" in
  Alcotest.(check int) "4 modes" 4 (List.length d.External.ext_modes);
  Alcotest.(check bool) "find standard" true
    (External.find External.standard "Bigger" <> None);
  Alcotest.(check bool) "product attrs" true
    ((External.product_style "*").External.ext_attrs = [ "$1"; "$2"; "out" ])

(* free variables *)
let free_vars () =
  Alcotest.(check (list string)) "closed query" []
    (Analysis.free_vars_query eq1);
  let open_q =
    coll "Q" [ "A" ]
      (exists [ bind "r" "R" ] (eq (attr "Q" "A") (attr "leak" "A")))
  in
  Alcotest.(check (list string)) "leaking var" [ "leak" ]
    (Analysis.free_vars_query open_q)

(* qcheck: canonicalization is invariant under conjunct shuffling *)
let prop_canon_shuffle =
  QCheck.Test.make ~name:"canon invariant under conjunct permutation"
    ~count:100
    QCheck.(small_list (pair small_int small_int))
    (fun pairs ->
      let base =
        [
          eq (attr "Q" "A") (attr "r" "A");
          eq (attr "r" "B") (attr "s" "B");
          eq (attr "s" "C") (cint 0);
        ]
        @ List.map (fun (a, b) -> neq (cint a) (cint b)) pairs
      in
      let mk body =
        coll "Q" [ "A" ] (exists [ bind "r" "R"; bind "s" "S" ] (conj body))
      in
      let shuffled = List.rev base in
      equal_query
        (Canon.canonical_query (mk base))
        (Canon.canonical_query (mk shuffled)))

let () =
  Alcotest.run "arc_core"
    [
      ( "validation",
        [
          Alcotest.test_case "eq1 valid" `Quick validate_ok;
          Alcotest.test_case "unbound variable" `Quick validate_unbound;
          Alcotest.test_case "unknown attribute" `Quick validate_unknown_attr;
          Alcotest.test_case "unknown relation" `Quick validate_unknown_rel;
          Alcotest.test_case "duplicate binding" `Quick validate_dup_binding;
          Alcotest.test_case "duplicate head attr" `Quick validate_dup_head_attr;
          Alcotest.test_case "reserved relation names" `Quick
            validate_reserved_names;
          Alcotest.test_case "aggregate needs grouping" `Quick
            validate_agg_needs_grouping;
          Alcotest.test_case "nested aggregate" `Quick validate_nested_agg;
          Alcotest.test_case "grouping var scope" `Quick validate_grouping_var;
          Alcotest.test_case "join annotation vars" `Quick validate_join_vars;
          Alcotest.test_case "grouped head dependency" `Quick
            validate_grouped_head_dependency;
          Alcotest.test_case "head hidden in nested" `Quick
            validate_head_in_nested;
          Alcotest.test_case "head visible at depth (eq23)" `Quick
            validate_head_visible_in_own_scopes;
        ] );
      ( "classification",
        [ Alcotest.test_case "roles" `Quick classify ] );
      ( "safety",
        [
          Alcotest.test_case "safe/unsafe/abstract" `Quick safety;
          Alcotest.test_case "external access patterns" `Quick
            safety_externals_resolved;
        ] );
      ( "canonicalization",
        [
          Alcotest.test_case "invariance" `Quick canon_invariance;
          Alcotest.test_case "distinguishes semantics" `Quick canon_distinguishes;
          Alcotest.test_case "simplify" `Quick simplify;
          Alcotest.test_case "double negation" `Quick simplify_double_neg;
        ] );
      ( "patterns",
        [
          Alcotest.test_case "FIO vs FOI" `Quick pattern_fio_foi;
          Alcotest.test_case "counts" `Quick pattern_counts;
        ] );
      ( "atoms",
        [
          Alcotest.test_case "pp" `Quick pp_atoms;
          Alcotest.test_case "external decls" `Quick external_decls;
          Alcotest.test_case "free vars" `Quick free_vars;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_canon_shuffle ] );
    ]
