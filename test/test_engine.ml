(* Engine tests: the conceptual evaluation strategy, construct by construct,
   plus the paper's worked behavioral examples. *)

open Arc_core.Ast
open Arc_core.Build
module V = Arc_value.Value
module B3 = Arc_value.Bool3
module Conventions = Arc_value.Conventions
module Relation = Arc_relation.Relation
module Database = Arc_relation.Database
module Eval = Arc_engine.Eval

let i = V.int
let s = V.str

let check_rel ?(msg = "result") expected actual =
  if not (Relation.equal_bag (Relation.sort expected) (Relation.sort actual))
  then
    Alcotest.failf "%s:@.expected:@.%s@.actual:@.%s" msg
      (Relation.to_table (Relation.sort expected))
      (Relation.to_table (Relation.sort actual))

let check_set ?(msg = "result") expected actual =
  if not (Relation.equal_set expected actual) then
    Alcotest.failf "%s:@.expected:@.%s@.actual:@.%s" msg
      (Relation.to_table (Relation.sort expected))
      (Relation.to_table (Relation.sort actual))

(* R(A,B), S(B,C) used across many tests *)
let db_rs =
  Database.of_list
    [
      ("R", Relation.of_rows [ "A"; "B" ] [ [ i 1; i 10 ]; [ i 2; i 20 ]; [ i 3; i 30 ] ]);
      ("S", Relation.of_rows [ "B"; "C" ] [ [ i 10; i 0 ]; [ i 20; i 5 ]; [ i 99; i 0 ] ]);
    ]

(* Eq (1): { Q(A) | ∃r ∈ R, s ∈ S [Q.A = r.A ∧ r.B = s.B ∧ s.C = 0] } *)
let eq1 () =
  let q =
    coll "Q" [ "A" ]
      (exists
         [ bind "r" "R"; bind "s" "S" ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              eq (attr "r" "B") (attr "s" "B");
              eq (attr "s" "C") (cint 0);
            ]))
  in
  let result = Eval.run_rows ~db:db_rs (program q) in
  check_rel (Relation.of_rows [ "A" ] [ [ i 1 ] ]) result

(* Simple projection keeps bag multiplicities under bag semantics *)
let bag_projection () =
  let db =
    Database.of_list
      [ ("R", Relation.of_rows [ "A"; "B" ] [ [ i 1; i 1 ]; [ i 1; i 2 ] ]) ]
  in
  let q =
    coll "Q" [ "A" ]
      (exists [ bind "r" "R" ] (eq (attr "Q" "A") (attr "r" "A")))
  in
  let bag = Eval.run_rows ~conv:Conventions.sql ~db (program q) in
  Alcotest.(check int) "bag keeps duplicates" 2 (Relation.cardinality bag);
  let set = Eval.run_rows ~conv:Conventions.sql_set ~db (program q) in
  Alcotest.(check int) "set deduplicates" 1 (Relation.cardinality set)

(* Eq (3): grouped aggregate, FIO *)
let grouped_aggregate () =
  let db =
    Database.of_list
      [
        ( "R",
          Relation.of_rows [ "A"; "B" ]
            [ [ i 1; i 10 ]; [ i 1; i 20 ]; [ i 2; i 5 ] ] );
      ]
  in
  let q =
    coll "Q" [ "A"; "sm" ]
      (exists
         ~grouping:[ ("r", "A") ]
         [ bind "r" "R" ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              eq (attr "Q" "sm") (sum (attr "r" "B"));
            ]))
  in
  let result = Eval.run_rows ~db (program q) in
  check_rel
    (Relation.of_rows [ "A"; "sm" ] [ [ i 1; i 30 ]; [ i 2; i 5 ] ])
    result

(* multiple aggregates share one scope (Section 2.5) *)
let multi_aggregate_one_scope () =
  let db =
    Database.of_list
      [
        ( "R",
          Relation.of_rows [ "A"; "B" ]
            [ [ i 1; i 10 ]; [ i 1; i 20 ]; [ i 2; i 6 ] ] );
      ]
  in
  let q =
    coll "Q" [ "A"; "sm"; "ct"; "mx" ]
      (exists
         ~grouping:[ ("r", "A") ]
         [ bind "r" "R" ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              eq (attr "Q" "sm") (sum (attr "r" "B"));
              eq (attr "Q" "ct") (count (attr "r" "B"));
              eq (attr "Q" "mx") (max_ (attr "r" "B"));
            ]))
  in
  let result = Eval.run_rows ~db (program q) in
  check_rel
    (Relation.of_rows
       [ "A"; "sm"; "ct"; "mx" ]
       [ [ i 1; i 30; i 2; i 20 ]; [ i 2; i 6; i 1; i 6 ] ])
    result

(* Eq (2): correlated (lateral) nested comprehension *)
let lateral_nested () =
  let db =
    Database.of_list
      [
        ("X", Relation.of_rows [ "A" ] [ [ i 1 ]; [ i 5 ] ]);
        ("Y", Relation.of_rows [ "A" ] [ [ i 2 ]; [ i 6 ] ]);
      ]
  in
  let inner =
    collection "Z" [ "B" ]
      (exists [ bind "y" "Y" ]
         (conj
            [
              eq (attr "Z" "B") (attr "y" "A");
              lt (attr "x" "A") (attr "y" "A");
            ]))
  in
  let q =
    coll "Q" [ "A"; "B" ]
      (exists
         [ bind "x" "X"; bind_in "z" inner ]
         (conj
            [ eq (attr "Q" "A") (attr "x" "A"); eq (attr "Q" "B") (attr "z" "B") ]))
  in
  let result = Eval.run_rows ~db (program q) in
  check_rel
    (Relation.of_rows [ "A"; "B" ]
       [ [ i 1; i 2 ]; [ i 1; i 6 ]; [ i 5; i 6 ] ])
    result

(* negation: NOT EXISTS *)
let negation () =
  let q =
    coll "Q" [ "A" ]
      (exists [ bind "r" "R" ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              not_
                (exists [ bind "s" "S" ]
                   (eq (attr "r" "B") (attr "s" "B")));
            ]))
  in
  let result = Eval.run_rows ~db:db_rs (program q) in
  check_rel (Relation.of_rows [ "A" ] [ [ i 3 ] ]) result

(* disjunction = union *)
let disjunction () =
  let q =
    coll "Q" [ "X" ]
      (disj
         [
           exists [ bind "r" "R" ] (eq (attr "Q" "X") (attr "r" "A"));
           exists [ bind "s" "S" ] (eq (attr "Q" "X") (attr "s" "C"));
         ])
  in
  let result = Eval.run_rows ~db:db_rs (program q) in
  check_set
    (Relation.of_rows [ "X" ]
       [ [ i 1 ]; [ i 2 ]; [ i 3 ]; [ i 0 ]; [ i 5 ] ])
    result

(* sentences (Fig 9): boolean query with aggregate comparison *)
let sentence_aggregate () =
  let db =
    Database.of_list
      [
        ("R", Relation.of_rows [ "id"; "q" ] [ [ i 1; i 2 ] ]);
        ( "S",
          Relation.of_rows [ "id"; "d" ]
            [ [ i 1; s "a" ]; [ i 1; s "b" ]; [ i 1; s "c" ] ] );
      ]
  in
  (* (13): ∃r ∈ R[∃s ∈ S, γ∅[r.id = s.id ∧ r.q <= count(s.d)]] *)
  let sent =
    sentence
      (exists [ bind "r" "R" ]
         (exists ~grouping:group_all [ bind "s" "S" ]
            (conj
               [
                 eq (attr "r" "id") (attr "s" "id");
                 leq (attr "r" "q") (count (attr "s" "d"));
               ])))
  in
  Alcotest.(check bool)
    "2 <= count(3) holds" true
    (Eval.run_truth ~db (program sent) = B3.True);
  (* (14): ¬∃r ∈ R[∃s ∈ S, γ∅[r.id = s.id ∧ r.q > count(s.d)]] *)
  let sent2 =
    sentence
      (not_
         (exists [ bind "r" "R" ]
            (exists ~grouping:group_all [ bind "s" "S" ]
               (conj
                  [
                    eq (attr "r" "id") (attr "s" "id");
                    gt (attr "r" "q") (count (attr "s" "d"));
                  ]))))
  in
  Alcotest.(check bool)
    "no r exceeds its count" true
    (Eval.run_truth ~db (program sent2) = B3.True)

(* recursion (Eq 16): ancestor = LFP of parent ∪ parent∘ancestor *)
let recursion_ancestor () =
  let db =
    Database.of_list
      [
        ( "P",
          Relation.of_rows [ "s"; "t" ]
            [ [ i 1; i 2 ]; [ i 2; i 3 ]; [ i 3; i 4 ] ] );
      ]
  in
  let anc =
    define "A"
      (collection "A" [ "s"; "t" ]
         (disj
            [
              exists [ bind "p" "P" ]
                (conj
                   [
                     eq (attr "A" "s") (attr "p" "s");
                     eq (attr "A" "t") (attr "p" "t");
                   ]);
              exists
                [ bind "p" "P"; bind "a2" "A" ]
                (conj
                   [
                     eq (attr "A" "s") (attr "p" "s");
                     eq (attr "p" "t") (attr "a2" "s");
                     eq (attr "a2" "t") (attr "A" "t");
                   ]);
            ]))
  in
  let q =
    coll "Q" [ "s"; "t" ]
      (exists [ bind "a" "A" ]
         (conj
            [ eq (attr "Q" "s") (attr "a" "s"); eq (attr "Q" "t") (attr "a" "t") ]))
  in
  let result = Eval.run_rows ~db (program ~defs:[ anc ] q) in
  check_set
    (Relation.of_rows [ "s"; "t" ]
       [
         [ i 1; i 2 ]; [ i 2; i 3 ]; [ i 3; i 4 ];
         [ i 1; i 3 ]; [ i 2; i 4 ]; [ i 1; i 4 ];
       ])
    result

(* cyclic graph: LFP still terminates *)
let recursion_cycle () =
  let db =
    Database.of_list
      [ ("P", Relation.of_rows [ "s"; "t" ] [ [ i 1; i 2 ]; [ i 2; i 1 ] ]) ]
  in
  let anc =
    define "A"
      (collection "A" [ "s"; "t" ]
         (disj
            [
              exists [ bind "p" "P" ]
                (conj
                   [
                     eq (attr "A" "s") (attr "p" "s");
                     eq (attr "A" "t") (attr "p" "t");
                   ]);
              exists
                [ bind "p" "P"; bind "a2" "A" ]
                (conj
                   [
                     eq (attr "A" "s") (attr "p" "s");
                     eq (attr "p" "t") (attr "a2" "s");
                     eq (attr "a2" "t") (attr "A" "t");
                   ]);
            ]))
  in
  let q =
    coll "Q" [ "s"; "t" ]
      (exists [ bind "a" "A" ]
         (conj
            [ eq (attr "Q" "s") (attr "a" "s"); eq (attr "Q" "t") (attr "a" "t") ]))
  in
  let result = Eval.run_rows ~db (program ~defs:[ anc ] q) in
  check_set
    (Relation.of_rows [ "s"; "t" ]
       [ [ i 1; i 2 ]; [ i 2; i 1 ]; [ i 1; i 1 ]; [ i 2; i 2 ] ])
    result

(* naive and semi-naive recursion agree (and with the closure oracle) *)
let recursion_strategies_agree () =
  let anc =
    define "A"
      (collection "A" [ "s"; "t" ]
         (disj
            [
              exists [ bind "p" "P" ]
                (conj
                   [
                     eq (attr "A" "s") (attr "p" "s");
                     eq (attr "A" "t") (attr "p" "t");
                   ]);
              exists
                [ bind "p" "P"; bind "a2" "A" ]
                (conj
                   [
                     eq (attr "A" "s") (attr "p" "s");
                     eq (attr "p" "t") (attr "a2" "s");
                     eq (attr "a2" "t") (attr "A" "t");
                   ]);
            ]))
  in
  let q =
    coll "Q" [ "s"; "t" ]
      (exists [ bind "a" "A" ]
         (conj
            [ eq (attr "Q" "s") (attr "a" "s"); eq (attr "Q" "t") (attr "a" "t") ]))
  in
  let rng = Random.State.make [| 11 |] in
  for _ = 1 to 15 do
    let edges =
      List.init
        (Random.State.int rng 12)
        (fun _ ->
          [ i (Random.State.int rng 7); i (Random.State.int rng 7) ])
    in
    let db = Database.of_list [ ("P", Relation.of_rows [ "s"; "t" ] edges) ] in
    let prog = program ~defs:[ anc ] q in
    let naive = Eval.run_rows ~strategy:Eval.Naive ~db prog in
    let semi = Eval.run_rows ~strategy:Eval.Seminaive ~db prog in
    Alcotest.(check bool) "strategies agree" true
      (Relation.equal_set naive semi)
  done

(* doubly-recursive rule: A(x,y) :- A(x,z), A(z,y) — two delta occurrences *)
let recursion_nonlinear () =
  let db =
    Database.of_list
      [
        ( "P",
          Relation.of_rows [ "s"; "t" ]
            [ [ i 1; i 2 ]; [ i 2; i 3 ]; [ i 3; i 4 ]; [ i 4; i 5 ] ] );
      ]
  in
  let anc =
    define "A"
      (collection "A" [ "s"; "t" ]
         (disj
            [
              exists [ bind "p" "P" ]
                (conj
                   [
                     eq (attr "A" "s") (attr "p" "s");
                     eq (attr "A" "t") (attr "p" "t");
                   ]);
              exists
                [ bind "a1" "A"; bind "a2" "A" ]
                (conj
                   [
                     eq (attr "A" "s") (attr "a1" "s");
                     eq (attr "a1" "t") (attr "a2" "s");
                     eq (attr "a2" "t") (attr "A" "t");
                   ]);
            ]))
  in
  let q =
    coll "Q" [ "s"; "t" ]
      (exists [ bind "a" "A" ]
         (conj
            [ eq (attr "Q" "s") (attr "a" "s"); eq (attr "Q" "t") (attr "a" "t") ]))
  in
  let prog = program ~defs:[ anc ] q in
  let naive = Eval.run_rows ~strategy:Eval.Naive ~db prog in
  let semi = Eval.run_rows ~strategy:Eval.Seminaive ~db prog in
  Alcotest.(check int) "closure of a 5-chain" 10 (Relation.cardinality semi);
  Alcotest.(check bool) "nonlinear recursion agrees" true
    (Relation.equal_set naive semi)

(* multiple aggregate kinds through the same grouping scope *)
let all_aggregate_kinds () =
  let db =
    Database.of_list
      [
        ( "R",
          Relation.of_rows [ "A"; "B" ]
            [ [ i 1; i 10 ]; [ i 1; i 10 ]; [ i 1; i 20 ]; [ i 2; V.Null ] ] );
      ]
  in
  let q =
    coll "Q" [ "A"; "sm"; "sd"; "ct"; "cd"; "av"; "mn"; "mx" ]
      (exists
         ~grouping:[ ("r", "A") ]
         [ bind "r" "R" ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              eq (attr "Q" "sm") (sum (attr "r" "B"));
              eq (attr "Q" "sd") (agg "sumdistinct" (attr "r" "B"));
              eq (attr "Q" "ct") (count (attr "r" "B"));
              eq (attr "Q" "cd") (agg "countdistinct" (attr "r" "B"));
              eq (attr "Q" "av") (avg (attr "r" "B"));
              eq (attr "Q" "mn") (min_ (attr "r" "B"));
              eq (attr "Q" "mx") (max_ (attr "r" "B"));
            ]))
  in
  (* bag conventions: the duplicate (1,10) row must count twice *)
  let result = Eval.run_rows ~conv:Conventions.sql ~db (program q) in
  check_rel
    (Relation.of_rows
       [ "A"; "sm"; "sd"; "ct"; "cd"; "av"; "mn"; "mx" ]
       [
         [ i 1; i 40; i 30; i 3; i 2; V.Float (40. /. 3.); i 10; i 20 ];
         (* group 2 has only a NULL: count 0, sum NULL (SQL convention) *)
         [ i 2; V.Null; V.Null; i 0; i 0; V.Null; V.Null; V.Null ];
       ])
    result

(* three-way join annotation: (R left S) left T *)
let nested_outer_joins () =
  let db =
    Database.of_list
      [
        ("R", Relation.of_rows [ "A" ] [ [ i 1 ]; [ i 2 ]; [ i 3 ] ]);
        ("S", Relation.of_rows [ "B" ] [ [ i 1 ]; [ i 2 ] ]);
        ("T", Relation.of_rows [ "C" ] [ [ i 2 ] ]);
      ]
  in
  let q =
    coll "Q" [ "A"; "B"; "C" ]
      (exists
         ~join:(J_left (J_left (J_var "r", J_var "s"), J_var "t"))
         [ bind "r" "R"; bind "s" "S"; bind "t" "T" ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              eq (attr "Q" "B") (attr "s" "B");
              eq (attr "Q" "C") (attr "t" "C");
              eq (attr "r" "A") (attr "s" "B");
              eq (attr "s" "B") (attr "t" "C");
            ]))
  in
  let result = Eval.run_rows ~conv:Conventions.sql ~db (program q) in
  check_rel
    (Relation.of_rows [ "A"; "B"; "C" ]
       [
         [ i 1; i 1; V.Null ];
         [ i 2; i 2; i 2 ];
         [ i 3; V.Null; V.Null ];
       ])
    result

(* engine error paths produce Eval_error, not crashes *)
let engine_errors () =
  let expect_error name prog =
    match Eval.run ~db:db_rs prog with
    | exception Eval.Eval_error _ -> ()
    | _ -> Alcotest.failf "%s: expected Eval_error" name
  in
  expect_error "unknown relation"
    (program
       (coll "Q" [ "A" ]
          (exists [ bind "r" "NoSuch" ] (eq (attr "Q" "A") (attr "r" "A")))));
  expect_error "unassigned head attribute"
    (program
       (coll "Q" [ "A"; "B" ]
          (exists [ bind "r" "R" ] (eq (attr "Q" "A") (attr "r" "A")))));
  expect_error "unseeded external"
    (program
       (coll "Q" [ "A" ]
          (exists [ bind "f" "Minus" ] (eq (attr "Q" "A") (attr "f" "out")))));
  expect_error "unstratifiable ARC recursion"
    (program
       ~defs:
         [
           define "T"
             (collection "T" [ "x" ]
                (exists [ bind "r" "R" ]
                   (conj
                      [
                        eq (attr "T" "x") (attr "r" "A");
                        not_
                          (exists [ bind "t" "T" ]
                             (eq (attr "t" "x") (attr "r" "A")));
                      ])));
         ]
       (coll "Q" [ "x" ]
          (exists [ bind "t" "T" ] (eq (attr "Q" "x") (attr "t" "x")))))

(* outer joins (Section 2.11): left join with NULL padding *)
let left_join () =
  let db =
    Database.of_list
      [
        ("R", Relation.of_rows [ "A" ] [ [ i 1 ]; [ i 2 ] ]);
        ("S", Relation.of_rows [ "B" ] [ [ i 1 ] ]);
      ]
  in
  let q =
    coll "Q" [ "A"; "B" ]
      (exists
         ~join:(J_left (J_var "r", J_var "s"))
         [ bind "r" "R"; bind "s" "S" ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              eq (attr "Q" "B") (attr "s" "B");
              eq (attr "r" "A") (attr "s" "B");
            ]))
  in
  let result = Eval.run_rows ~db (program q) in
  check_rel
    (Relation.of_rows [ "A"; "B" ] [ [ i 1; i 1 ]; [ i 2; V.Null ] ])
    result

(* full outer join *)
let full_join () =
  let db =
    Database.of_list
      [
        ("R", Relation.of_rows [ "A" ] [ [ i 1 ]; [ i 2 ] ]);
        ("S", Relation.of_rows [ "B" ] [ [ i 1 ]; [ i 9 ] ]);
      ]
  in
  let q =
    coll "Q" [ "A"; "B" ]
      (exists
         ~join:(J_full (J_var "r", J_var "s"))
         [ bind "r" "R"; bind "s" "S" ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              eq (attr "Q" "B") (attr "s" "B");
              eq (attr "r" "A") (attr "s" "B");
            ]))
  in
  let result = Eval.run_rows ~db (program q) in
  check_rel
    (Relation.of_rows [ "A"; "B" ]
       [ [ i 1; i 1 ]; [ i 2; V.Null ]; [ V.Null; i 9 ] ])
    result

(* Eq (18): left(r, inner(11, s)) — the literal-leaf cross join *)
let outer_join_literal () =
  let db =
    Database.of_list
      [
        ( "R",
          Relation.of_rows [ "m"; "y"; "h" ]
            [ [ s "r1"; i 2000; i 11 ]; [ s "r2"; i 2001; i 12 ] ] );
        ( "S",
          Relation.of_rows [ "n"; "y" ]
            [ [ s "s1"; i 2000 ]; [ s "s2"; i 2001 ] ] );
      ]
  in
  let q =
    coll "Q" [ "m"; "n" ]
      (exists
         ~join:(J_left (J_var "r", J_inner [ J_lit (i 11); J_var "s" ]))
         [ bind "r" "R"; bind "s" "S" ]
         (conj
            [
              eq (attr "Q" "m") (attr "r" "m");
              eq (attr "Q" "n") (attr "s" "n");
              eq (attr "r" "y") (attr "s" "y");
              eq (attr "r" "h") (cint 11);
            ]))
  in
  let result = Eval.run_rows ~db (program q) in
  (* r1 (h=11) matches s1 on year; r2 (h=12) is kept but NULL-padded because
     r.h = 11 is a join condition, not a filter *)
  check_rel
    (Relation.of_rows [ "m"; "n" ]
       [ [ s "r1"; s "s1" ]; [ s "r2"; V.Null ] ])
    result

(* external relations (Eqs 19-21): Minus and Bigger via access patterns *)
let external_relations () =
  let db =
    Database.of_list
      [
        ("R", Relation.of_rows [ "A"; "B" ] [ [ i 1; i 10 ]; [ i 2; i 3 ] ]);
        ("S", Relation.of_rows [ "B" ] [ [ i 4 ] ]);
        ("T", Relation.of_rows [ "B" ] [ [ i 5 ] ]);
      ]
  in
  (* (19) direct arithmetic: Q(A) s.t. r.B - s.B > t.B *)
  let q19 =
    coll "Q" [ "A" ]
      (exists
         [ bind "r" "R"; bind "s" "S"; bind "t" "T" ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              gt (sub (attr "r" "B") (attr "s" "B")) (attr "t" "B");
            ]))
  in
  (* (20) relationalized Minus *)
  let q20 =
    coll "Q" [ "A" ]
      (exists
         [ bind "r" "R"; bind "s" "S"; bind "t" "T"; bind "f" "Minus" ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              eq (attr "f" "left") (attr "r" "B");
              eq (attr "f" "right") (attr "s" "B");
              gt (attr "f" "out") (attr "t" "B");
            ]))
  in
  (* (21) fully relationalized: equijoin with Bigger *)
  let q21 =
    coll "Q" [ "A" ]
      (exists
         [
           bind "r" "R"; bind "s" "S"; bind "t" "T";
           bind "f" "Minus"; bind "g" "Bigger";
         ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              eq (attr "f" "left") (attr "r" "B");
              eq (attr "f" "right") (attr "s" "B");
              eq (attr "f" "out") (attr "g" "left");
              eq (attr "g" "right") (attr "t" "B");
            ]))
  in
  let expected = Relation.of_rows [ "A" ] [ [ i 1 ] ] in
  check_rel ~msg:"eq19" expected (Eval.run_rows ~db (program q19));
  check_rel ~msg:"eq20" expected (Eval.run_rows ~db (program q20));
  check_rel ~msg:"eq21" expected (Eval.run_rows ~db (program q21))

(* conventions (Eq 15): sum over empty group — Soufflé 0 vs SQL NULL *)
let convention_agg_empty () =
  let db =
    Database.of_list
      [
        ("R", Relation.of_rows [ "ak"; "b" ] [ [ i 1; i 2 ] ]);
        ("S", Relation.empty [ "a"; "b" ]);
      ]
  in
  let inner =
    collection "X" [ "sm" ]
      (exists ~grouping:group_all [ bind "s2" "S" ]
         (conj
            [
              lt (attr "s2" "a") (attr "r" "ak");
              eq (attr "X" "sm") (sum (attr "s2" "b"));
            ]))
  in
  let q =
    coll "Q" [ "ak"; "sm" ]
      (exists
         [ bind "r" "R"; bind_in "x" inner ]
         (conj
            [
              eq (attr "Q" "ak") (attr "r" "ak");
              eq (attr "Q" "sm") (attr "x" "sm");
            ]))
  in
  let souffle = Eval.run_rows ~conv:Conventions.souffle ~db (program q) in
  check_rel ~msg:"souffle derives Q(1,0)"
    (Relation.of_rows [ "ak"; "sm" ] [ [ i 1; i 0 ] ])
    souffle;
  let sql = Eval.run_rows ~conv:Conventions.sql_set ~db (program q) in
  check_rel ~msg:"SQL derives (1, NULL)"
    (Relation.of_rows [ "ak"; "sm" ] [ [ i 1; V.Null ] ])
    sql

(* Section 2.7: nested vs unnested under set and bag semantics *)
let set_bag_unnesting () =
  let db =
    Database.of_list
      [
        ("R", Relation.of_rows [ "A"; "B" ] [ [ i 1; i 7 ] ]);
        ("S", Relation.of_rows [ "B" ] [ [ i 7 ]; [ i 7 ] ]);
      ]
  in
  let nested =
    coll "Q" [ "A" ]
      (exists [ bind "r" "R" ]
         (exists [ bind "s" "S" ]
            (conj
               [
                 eq (attr "Q" "A") (attr "r" "A");
                 eq (attr "r" "B") (attr "s" "B");
               ])))
  in
  let unnested =
    coll "Q" [ "A" ]
      (exists
         [ bind "r" "R"; bind "s" "S" ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              eq (attr "r" "B") (attr "s" "B");
            ]))
  in
  let set_n = Eval.run_rows ~conv:Conventions.sql_set ~db (program nested) in
  let set_u = Eval.run_rows ~conv:Conventions.sql_set ~db (program unnested) in
  Alcotest.(check bool) "equal under set" true (Relation.equal_set set_n set_u);
  let bag_n = Eval.run_rows ~conv:Conventions.sql ~db (program nested) in
  let bag_u = Eval.run_rows ~conv:Conventions.sql ~db (program unnested) in
  Alcotest.(check int) "nested: once per r" 1 (Relation.cardinality bag_n);
  Alcotest.(check int) "unnested: once per pair" 2 (Relation.cardinality bag_u)

(* NULLs and NOT IN (Eq 17) under 2VL with explicit null checks *)
let not_in_nulls () =
  let db =
    Database.of_list
      [
        ("R", Relation.of_rows [ "A" ] [ [ i 1 ]; [ i 2 ] ]);
        ("S", Relation.of_rows [ "A" ] [ [ i 1 ]; [ V.Null ] ]);
      ]
  in
  let q =
    coll "Q" [ "A" ]
      (exists [ bind "r" "R" ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              not_
                (exists [ bind "s" "S" ]
                   (disj
                      [
                        eq (attr "s" "A") (attr "r" "A");
                        is_null (attr "s" "A");
                        is_null (attr "r" "A");
                      ]));
            ]))
  in
  (* the explicit-null-check rewrite returns the empty set, replicating
     SQL's NOT IN behavior, even under two-valued logic *)
  let result = Eval.run_rows ~conv:Conventions.classical ~db (program q) in
  Alcotest.(check int) "empty because S contains NULL" 0
    (Relation.cardinality result);
  (* without the null checks, 2VL NOT EXISTS returns {2} *)
  let q2 =
    coll "Q" [ "A" ]
      (exists [ bind "r" "R" ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              not_
                (exists [ bind "s" "S" ] (eq (attr "s" "A") (attr "r" "A")));
            ]))
  in
  let result2 = Eval.run_rows ~conv:Conventions.classical ~db (program q2) in
  check_rel (Relation.of_rows [ "A" ] [ [ i 2 ] ]) result2

(* deduplication via grouping on all attributes (Section 2.7) *)
let dedup_via_grouping () =
  let db =
    Database.of_list
      [
        ( "R",
          Relation.of_rows [ "A"; "B" ]
            [ [ i 1; i 2 ]; [ i 1; i 2 ]; [ i 3; i 4 ] ] );
      ]
  in
  let q =
    coll "Q" [ "A"; "B" ]
      (exists
         ~grouping:[ ("r", "A"); ("r", "B") ]
         [ bind "r" "R" ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              eq (attr "Q" "B") (attr "r" "B");
            ]))
  in
  (* even under bag semantics, grouping on all attributes deduplicates *)
  let result = Eval.run_rows ~conv:Conventions.sql ~db (program q) in
  check_rel
    (Relation.of_rows [ "A"; "B" ] [ [ i 1; i 2 ]; [ i 3; i 4 ] ])
    result

(* regression: group keys are canonical serializations, so string values
   that would collide under naive concatenation stay in separate groups *)
let grouping_key_collisions () =
  let db =
    Database.of_list
      [
        ( "R",
          Relation.of_rows [ "A"; "B" ]
            [
              [ s "ab"; s "c" ]; [ s "ab"; s "c" ];
              [ s "a"; s "bc" ];
              [ s "x'|y"; s "z" ]; [ s "x"; s "'|y'z" ];
            ] );
      ]
  in
  let q =
    coll "Q" [ "A"; "B"; "n" ]
      (exists
         ~grouping:[ ("r", "A"); ("r", "B") ]
         [ bind "r" "R" ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              eq (attr "Q" "B") (attr "r" "B");
              eq (attr "Q" "n") (count (attr "r" "A"));
            ]))
  in
  let result = Eval.run_rows ~conv:Conventions.sql ~db (program q) in
  check_rel
    (Relation.of_rows [ "A"; "B"; "n" ]
       [
         [ s "ab"; s "c"; i 2 ];
         [ s "a"; s "bc"; i 1 ];
         [ s "x'|y"; s "z"; i 1 ];
         [ s "x"; s "'|y'z"; i 1 ];
       ])
    result

(* abstract relations (Example 2): Subset over drinkers *)
let unique_set_abstract () =
  let likes =
    Relation.of_rows
      [ "d"; "b" ]
      [
        [ s "ann"; s "ipa" ]; [ s "ann"; s "stout" ];
        [ s "bob"; s "ipa" ]; [ s "bob"; s "stout" ];
        [ s "cal"; s "ipa" ];
      ]
  in
  let db = Database.of_list [ ("L", likes) ] in
  (* Subset(left,right): drinker left's beers ⊆ drinker right's beers *)
  let subset =
    define "Subset"
      (collection "Subset" [ "left"; "right" ]
         (not_
            (exists [ bind "l3" "L" ]
               (conj
                  [
                    eq (attr "l3" "d") (attr "Subset" "left");
                    not_
                      (exists [ bind "l4" "L" ]
                         (conj
                            [
                              eq (attr "l4" "b") (attr "l3" "b");
                              eq (attr "l4" "d") (attr "Subset" "right");
                            ]));
                  ]))))
  in
  (* drinkers with a unique set of beers, via the abstract module (Eq 24) *)
  let q =
    coll "Q" [ "d" ]
      (exists [ bind "l1" "L" ]
         (conj
            [
              eq (attr "Q" "d") (attr "l1" "d");
              not_
                (exists
                   [ bind "l2" "L"; bind "s1" "Subset"; bind "s2" "Subset" ]
                   (conj
                      [
                        neq (attr "l2" "d") (attr "l1" "d");
                        eq (attr "s1" "left") (attr "l1" "d");
                        eq (attr "s1" "right") (attr "l2" "d");
                        eq (attr "s2" "left") (attr "l2" "d");
                        eq (attr "s2" "right") (attr "l1" "d");
                      ]));
            ]))
  in
  let result = Eval.run_rows ~db (program ~defs:[ subset ] q) in
  (* ann and bob share {ipa, stout}; cal's {ipa} is unique *)
  check_set (Relation.of_rows [ "d" ] [ [ s "cal" ] ]) result

(* the count bug (Section 3.2, Eqs 27-29) on R(9,0), S = ∅ *)
let count_bug () =
  let db =
    Database.of_list
      [
        ("R", Relation.of_rows [ "id"; "q" ] [ [ i 9; i 0 ] ]);
        ("S", Relation.empty [ "id"; "d" ]);
      ]
  in
  (* (27) original: aggregate used as comparison inside correlated scope *)
  let q27 =
    coll "Q" [ "id" ]
      (exists [ bind "r" "R" ]
         (conj
            [
              eq (attr "Q" "id") (attr "r" "id");
              exists ~grouping:group_all [ bind "s" "S" ]
                (conj
                   [
                     eq (attr "r" "id") (attr "s" "id");
                     eq (attr "r" "q") (count (attr "s" "d"));
                   ]);
            ]))
  in
  (* (28) incorrect decorrelation (Kim): group S by id, then join *)
  let x28 =
    collection "X" [ "id"; "ct" ]
      (exists
         ~grouping:[ ("s", "id") ]
         [ bind "s" "S" ]
         (conj
            [
              eq (attr "X" "id") (attr "s" "id");
              eq (attr "X" "ct") (count (attr "s" "d"));
            ]))
  in
  let q28 =
    coll "Q" [ "id" ]
      (exists
         [ bind "r" "R"; bind_in "x" x28 ]
         (conj
            [
              eq (attr "Q" "id") (attr "r" "id");
              eq (attr "r" "id") (attr "x" "id");
              eq (attr "r" "q") (attr "x" "ct");
            ]))
  in
  (* (29) correct decorrelation: left join before grouping *)
  let x29 =
    collection "X" [ "id"; "ct" ]
      (exists
         ~grouping:[ ("r2", "id") ]
         ~join:(J_left (J_var "r2", J_var "s"))
         [ bind "s" "S"; bind "r2" "R" ]
         (conj
            [
              eq (attr "X" "id") (attr "r2" "id");
              eq (attr "X" "ct") (count (attr "s" "d"));
              eq (attr "r2" "id") (attr "s" "id");
            ]))
  in
  let q29 =
    coll "Q" [ "id" ]
      (exists
         [ bind "r" "R"; bind_in "x" x29 ]
         (conj
            [
              eq (attr "Q" "id") (attr "r" "id");
              eq (attr "r" "id") (attr "x" "id");
              eq (attr "r" "q") (attr "x" "ct");
            ]))
  in
  let r27 = Eval.run_rows ~db (program q27) in
  let r28 = Eval.run_rows ~db (program q28) in
  let r29 = Eval.run_rows ~db (program q29) in
  check_rel ~msg:"(27) returns 9" (Relation.of_rows [ "id" ] [ [ i 9 ] ]) r27;
  Alcotest.(check int) "(28) loses the row — the count bug" 0
    (Relation.cardinality r28);
  check_rel ~msg:"(29) returns 9" (Relation.of_rows [ "id" ] [ [ i 9 ] ]) r29

(* FIO vs FOI (Eqs 3 vs 7) agree under set semantics *)
let fio_foi_agree () =
  let db =
    Database.of_list
      [
        ( "R",
          Relation.of_rows [ "A"; "B" ]
            [ [ i 1; i 10 ]; [ i 1; i 20 ]; [ i 2; i 5 ] ] );
      ]
  in
  let fio =
    coll "Q" [ "A"; "sm" ]
      (exists
         ~grouping:[ ("r", "A") ]
         [ bind "r" "R" ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              eq (attr "Q" "sm") (sum (attr "r" "B"));
            ]))
  in
  let inner =
    collection "X" [ "sm" ]
      (exists ~grouping:group_all [ bind "r2" "R" ]
         (conj
            [
              eq (attr "r2" "A") (attr "r" "A");
              eq (attr "X" "sm") (sum (attr "r2" "B"));
            ]))
  in
  let foi =
    coll "Q" [ "A"; "sm" ]
      (exists
         [ bind "r" "R"; bind_in "x" inner ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              eq (attr "Q" "sm") (attr "x" "sm");
            ]))
  in
  let r_fio = Eval.run_rows ~db (program fio) in
  let r_foi = Eval.run_rows ~db (program foi) in
  Alcotest.(check bool) "FIO = FOI (set semantics)" true
    (Relation.equal_set r_fio r_foi)

(* HAVING as outer selection (Eq 8) *)
let having_eq8 () =
  let db =
    Database.of_list
      [
        ( "R",
          Relation.of_rows [ "empl"; "dept" ]
            [ [ s "e1"; s "d1" ]; [ s "e2"; s "d1" ]; [ s "e3"; s "d2" ] ] );
        ( "S",
          Relation.of_rows [ "empl"; "sal" ]
            [ [ s "e1"; i 60 ]; [ s "e2"; i 60 ]; [ s "e3"; i 50 ] ] );
      ]
  in
  let x =
    collection "X" [ "dept"; "av"; "sm" ]
      (exists
         ~grouping:[ ("r", "dept") ]
         [ bind "r" "R"; bind "s" "S" ]
         (conj
            [
              eq (attr "X" "dept") (attr "r" "dept");
              eq (attr "X" "av") (avg (attr "s" "sal"));
              eq (attr "X" "sm") (sum (attr "s" "sal"));
              eq (attr "r" "empl") (attr "s" "empl");
            ]))
  in
  let q =
    coll "Q" [ "dept"; "av" ]
      (exists [ bind_in "x" x ]
         (conj
            [
              eq (attr "Q" "dept") (attr "x" "dept");
              eq (attr "Q" "av") (attr "x" "av");
              gt (attr "x" "sm") (cint 100);
            ]))
  in
  let result = Eval.run_rows ~db (program q) in
  (* d1 pays 120 total (avg 60); d2 pays 50 only *)
  check_rel
    (Relation.of_rows [ "dept"; "av" ] [ [ s "d1"; V.Float 60. ] ])
    result

(* matrix multiplication (Eq 26) *)
let matrix_mult () =
  (* A = [[1,2],[3,4]], B = [[5,6],[7,8]] sparse form *)
  let mat name rows =
    ( name,
      Relation.of_rows [ "row"; "col"; "val" ]
        (List.concat_map
           (fun (r, cs) ->
             List.map (fun (c, v) -> [ i r; i c; i v ]) cs)
           rows) )
  in
  let db =
    Database.of_list
      [
        mat "A" [ (1, [ (1, 1); (2, 2) ]); (2, [ (1, 3); (2, 4) ]) ];
        mat "B" [ (1, [ (1, 5); (2, 6) ]); (2, [ (1, 7); (2, 8) ]) ];
      ]
  in
  let q =
    coll "C" [ "row"; "col"; "val" ]
      (exists
         ~grouping:[ ("a", "row"); ("b", "col") ]
         [ bind "a" "A"; bind "b" "B" ]
         (conj
            [
              eq (attr "C" "row") (attr "a" "row");
              eq (attr "C" "col") (attr "b" "col");
              eq (attr "a" "col") (attr "b" "row");
              eq (attr "C" "val") (sum (mul (attr "a" "val") (attr "b" "val")));
            ]))
  in
  let result = Eval.run_rows ~db (program q) in
  check_rel
    (Relation.of_rows [ "row"; "col"; "val" ]
       [
         [ i 1; i 1; i 19 ]; [ i 1; i 2; i 22 ];
         [ i 2; i 1; i 43 ]; [ i 2; i 2; i 50 ];
       ])
    result

(* scalar-subquery ≡ lateral, but LEFT JOIN + GROUP BY differs under bag
   semantics with duplicate outer rows (Fig 13) *)
let fig13_counterexample () =
  let db =
    Database.of_list
      [
        ("R", Relation.of_rows [ "A" ] [ [ i 1 ]; [ i 1 ] ]);
        ("S", Relation.of_rows [ "A"; "B" ] [ [ i 0; i 10 ] ]);
      ]
  in
  (* lateral form (Fig 13b): one output row per R tuple *)
  let inner =
    collection "X" [ "sm" ]
      (exists ~grouping:group_all [ bind "s" "S" ]
         (conj
            [
              lt (attr "s" "A") (attr "r" "A");
              eq (attr "X" "sm") (sum (attr "s" "B"));
            ]))
  in
  let lateral =
    coll "Q" [ "A"; "sm" ]
      (exists
         [ bind "r" "R"; bind_in "x" inner ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              eq (attr "Q" "sm") (attr "x" "sm");
            ]))
  in
  (* left-join + group-by form (Fig 13c): collapses duplicate R rows *)
  let leftjoin =
    coll "Q" [ "A"; "sm" ]
      (exists
         ~grouping:[ ("r", "A") ]
         ~join:(J_left (J_var "r", J_var "s"))
         [ bind "r" "R"; bind "s" "S" ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              eq (attr "Q" "sm") (sum (attr "s" "B"));
              lt (attr "s" "A") (attr "r" "A");
            ]))
  in
  let r_lat = Eval.run_rows ~conv:Conventions.sql ~db (program lateral) in
  let r_lj = Eval.run_rows ~conv:Conventions.sql ~db (program leftjoin) in
  Alcotest.(check int) "lateral keeps both duplicate rows" 2
    (Relation.cardinality r_lat);
  Alcotest.(check int) "left join + group by collapses them" 1
    (Relation.cardinality r_lj)

let () =
  Alcotest.run "arc_engine"
    [
      ( "basics",
        [
          Alcotest.test_case "eq1 TRC query" `Quick eq1;
          Alcotest.test_case "bag vs set projection" `Quick bag_projection;
          Alcotest.test_case "lateral nested comprehension" `Quick lateral_nested;
          Alcotest.test_case "negation" `Quick negation;
          Alcotest.test_case "disjunction" `Quick disjunction;
        ] );
      ( "aggregates",
        [
          Alcotest.test_case "grouped aggregate (eq3)" `Quick grouped_aggregate;
          Alcotest.test_case "multiple aggregates, one scope" `Quick
            multi_aggregate_one_scope;
          Alcotest.test_case "sentences with aggregates (eqs 13-14)" `Quick
            sentence_aggregate;
          Alcotest.test_case "FIO = FOI under set semantics" `Quick fio_foi_agree;
          Alcotest.test_case "HAVING as outer selection (eq8)" `Quick having_eq8;
          Alcotest.test_case "matrix multiplication (eq26)" `Quick matrix_mult;
        ] );
      ( "recursion",
        [
          Alcotest.test_case "ancestor chain" `Quick recursion_ancestor;
          Alcotest.test_case "ancestor cycle" `Quick recursion_cycle;
          Alcotest.test_case "naive = semi-naive" `Quick
            recursion_strategies_agree;
          Alcotest.test_case "nonlinear recursion" `Quick recursion_nonlinear;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "all aggregate kinds" `Quick all_aggregate_kinds;
          Alcotest.test_case "nested outer joins" `Quick nested_outer_joins;
          Alcotest.test_case "error paths" `Quick engine_errors;
        ] );
      ( "outer joins",
        [
          Alcotest.test_case "left join" `Quick left_join;
          Alcotest.test_case "full join" `Quick full_join;
          Alcotest.test_case "literal leaf (eq18)" `Quick outer_join_literal;
        ] );
      ( "externals & abstracts",
        [
          Alcotest.test_case "minus/bigger (eqs 19-21)" `Quick external_relations;
          Alcotest.test_case "unique-set via abstract Subset" `Quick
            unique_set_abstract;
        ] );
      ( "conventions",
        [
          Alcotest.test_case "agg over empty: 0 vs NULL (eq15)" `Quick
            convention_agg_empty;
          Alcotest.test_case "set/bag (un)nesting" `Quick set_bag_unnesting;
          Alcotest.test_case "NOT IN with NULLs (eq17)" `Quick not_in_nulls;
          Alcotest.test_case "dedup via grouping" `Quick dedup_via_grouping;
          Alcotest.test_case "grouping key collision regression" `Quick
            grouping_key_collisions;
        ] );
      ( "count bug",
        [
          Alcotest.test_case "eqs 27-29" `Quick count_bug;
          Alcotest.test_case "fig 13 bag counterexample" `Quick
            fig13_counterexample;
        ] );
    ]
