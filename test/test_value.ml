(* Value substrate tests: values, 3VL, aggregates, conventions. *)

module V = Arc_value.Value
module B3 = Arc_value.Bool3
module Agg = Arc_value.Aggregate
module Conv = Arc_value.Conventions

let i = V.int

let value_compare () =
  Alcotest.(check bool) "null < int" true (V.compare V.Null (i 0) < 0);
  Alcotest.(check bool) "int/float cross" true
    (V.compare (i 1) (V.Float 1.5) < 0);
  Alcotest.(check bool) "1 = 1.0" true (V.equal (i 1) (V.Float 1.));
  Alcotest.(check bool) "null = null (grouping)" true (V.equal V.Null V.Null);
  Alcotest.(check bool) "str order" true (V.compare (V.Str "a") (V.Str "b") < 0)

let value_cmp3 () =
  Alcotest.(check bool) "null vs x is None" true (V.cmp3 V.Null (i 1) = None);
  Alcotest.(check bool) "x vs null is None" true (V.cmp3 (i 1) V.Null = None);
  Alcotest.(check bool) "1 < 2" true (V.cmp3 (i 1) (i 2) = Some (-1));
  Alcotest.check_raises "int vs str raises"
    (V.Type_error "cannot compare int with string") (fun () ->
      ignore (V.cmp3 (i 1) (V.Str "x")))

let value_arith () =
  Alcotest.(check bool) "3 - 1 = 2" true (V.equal (V.sub (i 3) (i 1)) (i 2));
  Alcotest.(check bool) "null strict" true (V.is_null (V.add V.Null (i 1)));
  Alcotest.(check bool) "mixed int/float" true
    (V.equal (V.mul (i 2) (V.Float 1.5)) (V.Float 3.));
  (* SQL semantics: division/modulo by zero yields NULL, never an error,
     never an infinity (which would not round-trip through canonical) *)
  Alcotest.(check bool) "int div by zero is null" true
    (V.is_null (V.div (i 1) (i 0)));
  Alcotest.(check bool) "float div by zero is null" true
    (V.is_null (V.div (V.Float 1.5) (V.Float 0.)));
  Alcotest.(check bool) "mixed div by zero is null" true
    (V.is_null (V.div (i 1) (V.Float 0.)));
  Alcotest.(check bool) "7 mod 3 = 1" true
    (V.equal (V.modulo (i 7) (i 3)) (i 1));
  Alcotest.(check bool) "mod by zero is null" true
    (V.is_null (V.modulo (i 7) (i 0)));
  Alcotest.(check bool) "float mod" true
    (V.equal (V.modulo (V.Float 7.5) (i 2)) (V.Float 1.5));
  Alcotest.(check bool) "mod null strict" true
    (V.is_null (V.modulo V.Null (i 3)))

(* Int/Float values that compare equal must agree on their hash key, or
   the reference evaluator's grouping and the plan engine's hash joins
   would partition the same rows differently. *)
let value_canonical_coercion () =
  Alcotest.(check string)
    "Int 1 and Float 1.0 share a canonical form" (V.canonical (i 1))
    (V.canonical (V.Float 1.0));
  Alcotest.(check bool) "Float 1.5 differs from Int 1" true
    (V.canonical (V.Float 1.5) <> V.canonical (i 1));
  Alcotest.(check bool) "equal values, equal keys" true
    (List.for_all
       (fun (a, b) -> (V.equal a b) = (V.canonical a = V.canonical b))
       [
         (i 0, V.Float 0.);
         (i (-3), V.Float (-3.));
         (i 7, V.Float 7.2);
         (V.Float 2.5, V.Float 2.5);
         (V.Null, i 0);
         (V.Bool true, i 1);
         (V.Str "1", i 1);
       ])

let value_to_string_roundtrip () =
  Alcotest.(check string) "quote doubling" "'it''s'"
    (V.to_string (V.Str "it's"));
  Alcotest.(check string) "plain string" "'abc'" (V.to_string (V.Str "abc"));
  (* float_repr must reparse to the identical float *)
  List.iter
    (fun f ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "float %h reparses" f)
        f
        (float_of_string (V.to_string (V.Float f))))
    [ 0.5; 1.0; -2.25; 1e-7; 1e20; 3.141592653589793; 0.1 ]

let value_like () =
  let t pat s expect =
    Alcotest.(check (option bool))
      (Printf.sprintf "'%s' like '%s'" s pat)
      (Some expect)
      (V.like (V.Str s) pat)
  in
  t "a%" "abc" true;
  t "a%" "bac" false;
  t "%c" "abc" true;
  t "a_c" "abc" true;
  t "a_c" "abbc" false;
  t "%b%" "abc" true;
  t "" "" true;
  t "%" "" true;
  t "_" "" false;
  Alcotest.(check (option bool)) "null like" None (V.like V.Null "a%")

let bool3_tables () =
  let open B3 in
  Alcotest.(check bool) "T and U = U" true (and_ True Unknown = Unknown);
  Alcotest.(check bool) "F and U = F" true (and_ False Unknown = False);
  Alcotest.(check bool) "T or U = T" true (or_ True Unknown = True);
  Alcotest.(check bool) "F or U = U" true (or_ False Unknown = Unknown);
  Alcotest.(check bool) "not U = U" true (not_ Unknown = Unknown);
  Alcotest.(check bool) "to_bool U = false" true (to_bool Unknown = false);
  Alcotest.(check bool) "and_list empty = T" true (and_list [] = True);
  Alcotest.(check bool) "or_list empty = F" true (or_list [] = False)

let agg_basic () =
  let apply k vs = Agg.apply Conv.Agg_null k vs in
  Alcotest.(check bool) "sum" true (V.equal (apply Agg.Sum [ i 1; i 2; i 3 ]) (i 6));
  Alcotest.(check bool) "count" true (V.equal (apply Agg.Count [ i 1; i 2 ]) (i 2));
  Alcotest.(check bool) "count skips nulls" true
    (V.equal (apply Agg.Count [ i 1; V.Null ]) (i 1));
  Alcotest.(check bool) "sum skips nulls" true
    (V.equal (apply Agg.Sum [ i 1; V.Null; i 2 ]) (i 3));
  Alcotest.(check bool) "avg" true
    (V.equal (apply Agg.Avg [ i 1; i 3 ]) (V.Float 2.));
  Alcotest.(check bool) "min" true (V.equal (apply Agg.Min [ i 3; i 1 ]) (i 1));
  Alcotest.(check bool) "max" true (V.equal (apply Agg.Max [ i 3; i 1 ]) (i 3))

let agg_distinct () =
  let apply k vs = Agg.apply Conv.Agg_null k vs in
  Alcotest.(check bool) "countdistinct" true
    (V.equal (apply Agg.Count_distinct [ i 1; i 1; i 2 ]) (i 2));
  Alcotest.(check bool) "sumdistinct" true
    (V.equal (apply Agg.Sum_distinct [ i 5; i 5; i 2 ]) (i 7));
  Alcotest.(check bool) "avgdistinct" true
    (V.equal (apply Agg.Avg_distinct [ i 2; i 2; i 4 ]) (V.Float 3.))

let agg_empty_convention () =
  Alcotest.(check bool) "SQL: sum [] = null" true
    (V.is_null (Agg.apply Conv.Agg_null Agg.Sum []));
  Alcotest.(check bool) "Souffle: sum [] = 0" true
    (V.equal (Agg.apply Conv.Agg_zero Agg.Sum []) (i 0));
  Alcotest.(check bool) "count [] = 0 in both" true
    (V.equal (Agg.apply Conv.Agg_null Agg.Count []) (i 0));
  Alcotest.(check bool) "sum of all nulls behaves as empty" true
    (V.is_null (Agg.apply Conv.Agg_null Agg.Sum [ V.Null; V.Null ]))

let agg_names () =
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Agg.kind_to_string k ^ " round-trips")
        true
        (Agg.kind_of_string (Agg.kind_to_string k) = Some k))
    Agg.all_kinds;
  Alcotest.(check bool) "average alias" true
    (Agg.kind_of_string "average" = Some Agg.Avg);
  Alcotest.(check bool) "unknown" true (Agg.kind_of_string "median" = None)

let conventions () =
  Alcotest.(check bool) "sql is bag" true (Conv.sql.Conv.collection = Conv.Bag);
  Alcotest.(check bool) "sql_set is set" true
    (Conv.sql_set.Conv.collection = Conv.Set);
  Alcotest.(check bool) "souffle 2VL" true
    (Conv.souffle.Conv.null_logic = Conv.Two_valued);
  Alcotest.(check bool) "souffle agg 0" true
    (Conv.souffle.Conv.agg_empty = Conv.Agg_zero)

(* property tests *)
let prop_like_percent =
  QCheck.Test.make ~name:"LIKE '%' matches every string" ~count:200
    QCheck.(string_of_size (Gen.int_bound 20))
    (fun s ->
      (* avoid pattern metacharacters confusion: pattern is just % *)
      V.like (V.Str s) "%" = Some true)

let prop_compare_total =
  let gen =
    QCheck.oneof
      [
        QCheck.always V.Null;
        QCheck.map V.int QCheck.small_int;
        QCheck.map V.float (QCheck.float_bound_exclusive 100.);
        QCheck.map V.str QCheck.(string_of_size (Gen.int_bound 6));
      ]
  in
  QCheck.Test.make ~name:"compare is antisymmetric" ~count:500
    (QCheck.pair gen gen)
    (fun (a, b) -> compare (V.compare a b) 0 = compare 0 (V.compare b a))

let prop_bool3_demorgan =
  let gen = QCheck.oneofl [ B3.True; B3.False; B3.Unknown ] in
  QCheck.Test.make ~name:"Kleene De Morgan" ~count:100 (QCheck.pair gen gen)
    (fun (a, b) ->
      B3.not_ (B3.and_ a b) = B3.or_ (B3.not_ a) (B3.not_ b)
      && B3.not_ (B3.or_ a b) = B3.and_ (B3.not_ a) (B3.not_ b))

let prop_sum_append =
  QCheck.Test.make ~name:"sum distributes over append" ~count:200
    QCheck.(pair (small_list small_int) (small_list small_int))
    (fun (xs, ys) ->
      let vs l = List.map V.int l in
      let s l =
        match Agg.apply Conv.Agg_zero Agg.Sum (vs l) with
        | V.Int n -> n
        | _ -> -1
      in
      s (xs @ ys) = s xs + s ys)

let () =
  Alcotest.run "arc_value"
    [
      ( "value",
        [
          Alcotest.test_case "compare" `Quick value_compare;
          Alcotest.test_case "cmp3" `Quick value_cmp3;
          Alcotest.test_case "arithmetic" `Quick value_arith;
          Alcotest.test_case "canonical int/float coercion" `Quick
            value_canonical_coercion;
          Alcotest.test_case "to_string roundtrip" `Quick
            value_to_string_roundtrip;
          Alcotest.test_case "like" `Quick value_like;
        ] );
      ( "bool3",
        [ Alcotest.test_case "kleene tables" `Quick bool3_tables ] );
      ( "aggregate",
        [
          Alcotest.test_case "basic" `Quick agg_basic;
          Alcotest.test_case "distinct variants" `Quick agg_distinct;
          Alcotest.test_case "empty-input convention" `Quick agg_empty_convention;
          Alcotest.test_case "names" `Quick agg_names;
        ] );
      ( "conventions", [ Alcotest.test_case "presets" `Quick conventions ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_like_percent; prop_compare_total; prop_bool3_demorgan; prop_sum_append ] );
    ]
