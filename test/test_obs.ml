(* Observability tests: tracing must never change evaluation results, the
   collected counters must obey basic invariants, and the machine-readable
   sinks must round-trip. *)

open Arc_core.Ast
open Arc_core.Build
module V = Arc_value.Value
module Relation = Arc_relation.Relation
module Database = Arc_relation.Database
module Eval = Arc_engine.Eval
module Obs = Arc_obs.Obs
module Sink = Arc_obs.Sink
module Json = Arc_obs.Json
module Data = Arc_catalog.Data

let i = V.int

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec at k = k + nl <= hl && (String.sub haystack k nl = needle || at (k + 1)) in
  nl = 0 || at 0

let check_rel ?(msg = "result") expected actual =
  if not (Relation.equal_bag (Relation.sort expected) (Relation.sort actual))
  then
    Alcotest.failf "%s:@.expected:@.%s@.actual:@.%s" msg
      (Relation.to_table (Relation.sort expected))
      (Relation.to_table (Relation.sort actual))

let db_rs =
  Database.of_list
    [
      ( "R",
        Relation.of_rows [ "A"; "B" ]
          [ [ i 1; i 10 ]; [ i 2; i 20 ]; [ i 3; i 30 ] ] );
      ( "S",
        Relation.of_rows [ "B"; "C" ]
          [ [ i 10; i 0 ]; [ i 20; i 5 ]; [ i 99; i 0 ] ] );
    ]

(* { Q(A) | ∃r ∈ R, s ∈ S [Q.A = r.A ∧ r.B = s.B ∧ s.C = 0] } *)
let join_query =
  coll "Q" [ "A" ]
    (exists
       [ bind "r" "R"; bind "s" "S" ]
       (conj
          [
            eq (attr "Q" "A") (attr "r" "A");
            eq (attr "r" "B") (attr "s" "B");
            eq (attr "s" "C") (cint 0);
          ]))

let chain n =
  Database.of_list
    [
      ( "P",
        Relation.of_rows [ "s"; "t" ]
          (List.init n (fun k -> [ V.Int k; V.Int (k + 1) ])) );
    ]

let eq16 = { defs = Data.eq16_defs; main = Coll Data.eq16_main }

(* (a) tracing is observationally transparent: the default path, an explicit
   null tracer, and a collecting tracer all produce the same relation *)
let tracing_preserves_results () =
  let baseline = Eval.run_rows ~db:db_rs (program join_query) in
  let with_null =
    Eval.run_rows ~tracer:Obs.null ~db:db_rs (program join_query)
  in
  let with_collector =
    Eval.run_rows ~tracer:(Obs.collector ()) ~db:db_rs (program join_query)
  in
  check_rel ~msg:"null tracer" baseline with_null;
  check_rel ~msg:"collecting tracer" baseline with_collector;
  (* same, through a recursive program under both strategies *)
  let db = chain 8 in
  let baseline = Eval.run_rows ~db eq16 in
  List.iter
    (fun strategy ->
      let traced =
        Eval.run_rows ~strategy ~tracer:(Obs.collector ()) ~db eq16
      in
      check_rel ~msg:"recursive, traced" baseline traced)
    [ Eval.Naive; Eval.Seminaive ]

(* (b) counter invariants on a plain join query *)
let counter_invariants () =
  let tracer = Obs.collector () in
  ignore (Eval.run_rows ~tracer ~db:db_rs (program join_query));
  let spans = Obs.spans tracer in
  let scanned = Obs.counter_total spans "tuples_scanned" in
  let emitted = Obs.counter_total spans "rows_emitted" in
  let candidates = Obs.counter_total spans "candidates" in
  let survivors = Obs.counter_total spans "survivors" in
  if scanned <= 0 then Alcotest.failf "expected tuples_scanned > 0";
  if emitted > scanned then
    Alcotest.failf "emitted (%d) > scanned (%d)" emitted scanned;
  if survivors > candidates then
    Alcotest.failf "join survivors (%d) > candidates (%d)" survivors candidates

(* (b') semi-naive does no more fixpoint rounds — and far fewer tuple scans —
   than naive on the paper's transitive-closure program *)
let seminaive_beats_naive () =
  let run strategy =
    let tracer = Obs.collector () in
    ignore (Eval.run_rows ~strategy ~tracer ~db:(chain 12) eq16);
    Obs.spans tracer
  in
  let naive = run Eval.Naive and semi = run Eval.Seminaive in
  let iterations spans name =
    match Obs.find_spans spans name with
    | [ fp ] -> (
        match Obs.attr_int fp "iterations" with
        | Some n -> fp, n
        | None -> Alcotest.failf "%s has no iterations attribute" name)
    | l -> Alcotest.failf "expected one %s span, got %d" name (List.length l)
  in
  let nfp, n_iters = iterations naive "fixpoint:naive" in
  let sfp, s_iters = iterations semi "fixpoint:seminaive" in
  if s_iters > n_iters then
    Alcotest.failf "semi-naive iterations (%d) > naive (%d)" s_iters n_iters;
  if Obs.counter_total [ sfp ] "tuples_scanned"
     >= Obs.counter_total [ nfp ] "tuples_scanned"
  then
    Alcotest.failf "semi-naive scanned no fewer tuples (%d) than naive (%d)"
      (Obs.counter_total [ sfp ] "tuples_scanned")
      (Obs.counter_total [ nfp ] "tuples_scanned");
  (* the deltas across seed + iterations add up to the closure: 12*13/2 *)
  let delta_sum spans =
    List.fold_left
      (fun acc (s : Obs.span) ->
        acc + Option.value ~default:0 (Obs.attr_int s "delta:A"))
      0
      (Obs.find_spans spans "seed" @ Obs.find_spans spans "iteration")
  in
  Alcotest.(check int) "seminaive deltas sum to |closure|" 78 (delta_sum semi)

(* (c) the JSONL sink parses line by line and spans nest correctly *)
let jsonl_roundtrip () =
  let tracer = Obs.collector () in
  ignore (Eval.run_rows ~tracer ~db:(chain 6) eq16);
  let out = Sink.jsonl (Obs.spans tracer) in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' out)
  in
  if List.length lines < 5 then
    Alcotest.failf "expected a real trace, got %d lines" (List.length lines);
  let seen = Hashtbl.create 64 in
  List.iter
    (fun line ->
      match Json.parse line with
      | Error msg -> Alcotest.failf "unparsable JSONL line (%s): %s" msg line
      | Ok doc -> (
          let field k =
            match Json.member k doc with
            | Some v -> v
            | None -> Alcotest.failf "span without %S field: %s" k line
          in
          let id =
            match Json.to_int (field "id") with
            | Some id -> id
            | None -> Alcotest.failf "non-integer id: %s" line
          in
          if Hashtbl.mem seen id then Alcotest.failf "duplicate span id %d" id;
          (match field "name" with
          | Json.Str _ -> ()
          | _ -> Alcotest.failf "non-string name: %s" line);
          (match Json.to_int (field "dur_ns") with
          | Some d when d >= 0 -> ()
          | _ -> Alcotest.failf "bad dur_ns: %s" line);
          match field "parent" with
          | Json.Null -> Hashtbl.add seen id ()
          | Json.Int p ->
              (* preorder: every parent is emitted before its children *)
              if not (Hashtbl.mem seen p) then
                Alcotest.failf "span %d references unseen parent %d" id p;
              Hashtbl.add seen id ()
          | _ -> Alcotest.failf "bad parent field: %s" line))
    lines;
  (* the tree contains the spans the ISSUE promises for recursion *)
  let has name =
    List.exists
      (fun l ->
        match Json.parse l with
        | Ok doc -> Json.member "name" doc = Some (Json.Str name)
        | Error _ -> false)
      lines
  in
  List.iter
    (fun name ->
      if not (has name) then Alcotest.failf "no %S span in JSONL trace" name)
    [ "fixpoint:seminaive"; "iteration"; "collection:Q"; "scope" ]

(* pretty sink shows the span names and chrome sink is one valid JSON doc *)
let sinks_smoke () =
  let tracer = Obs.collector () in
  ignore (Eval.run_rows ~tracer ~db:db_rs (program join_query));
  let spans = Obs.spans tracer in
  let pretty = Sink.pretty spans in
  List.iter
    (fun needle ->
      if not (contains ~needle pretty) then
        Alcotest.failf "pretty output lacks %S:\n%s" needle pretty)
    [ "collection:Q"; "scope"; "rows_emitted" ];
  match Json.parse (Sink.chrome spans) with
  | Ok (Json.List (_ :: _)) -> ()
  | Ok _ -> Alcotest.fail "chrome trace is not a non-empty array"
  | Error msg -> Alcotest.failf "chrome trace unparsable: %s" msg

(* errors are attributed to the collection being evaluated *)
let error_context () =
  let bad =
    coll "Q" [ "A" ]
      (exists [ bind "r" "R" ] (eq (attr "Q" "A") (attr "r" "missing")))
  in
  match Eval.run_rows ~db:db_rs (program bad) with
  | _ -> Alcotest.fail "expected Eval_error"
  | exception Eval.Eval_error e ->
      let msg = Eval.error_to_string e in
      if not (contains ~needle:"in collection \"Q\"" msg) then
        Alcotest.failf "error lacks collection context: %s" msg

(* the JSON emitter/parser round-trips structured values *)
let json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "a \"quoted\"\nline\twith\\escapes");
        ("n", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("z", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Obj [ ("k", Json.Str "v") ] ]);
      ]
  in
  (match Json.parse (Json.to_string v) with
  | Ok v' when v' = v -> ()
  | Ok _ -> Alcotest.fail "compact round-trip changed the value"
  | Error msg -> Alcotest.failf "compact round-trip failed: %s" msg);
  match Json.parse (Json.pretty v) with
  | Ok v' when v' = v -> ()
  | Ok _ -> Alcotest.fail "pretty round-trip changed the value"
  | Error msg -> Alcotest.failf "pretty round-trip failed: %s" msg

(* every string the fuzzer can generate — plus worse — survives a
   to_string/parse round-trip, byte for byte *)
let json_hostile_roundtrip () =
  let hostile =
    Arc_fuzz.Gen.str_pool
    @ [
        "\x00\x01\x1f";          (* C0 controls, escaped as \u00XX *)
        "\x7f";                  (* DEL, likewise *)
        "caf\xc3\xa9";           (* 2-byte UTF-8 *)
        "\xe2\x9a\xa0 warn";     (* 3-byte UTF-8 *)
        "\xf0\x9f\x98\x80";      (* 4-byte UTF-8 (astral) *)
        "back\\slash \"quote\"";
        "mixed\n\t\r\x0b\x0c";
      ]
  in
  List.iter
    (fun s ->
      let j = Json.Obj [ ("k", Json.Str s); (s, Json.Int 1) ] in
      match Json.parse (Json.to_string j) with
      | Ok j' when j' = j -> ()
      | Ok _ -> Alcotest.failf "round-trip changed %S" s
      | Error msg -> Alcotest.failf "round-trip of %S failed: %s" s msg)
    hostile

(* \u escapes: surrogate pairs decode to one astral code point; unpaired
   halves and malformed hex are rejected rather than smuggled through *)
let json_unicode_escapes () =
  (match Json.parse {|"\ud83d\ude00"|} with
  | Ok (Json.Str s) ->
      Alcotest.(check string) "surrogate pair decodes" "\xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "surrogate pair parsed to a non-string"
  | Error msg -> Alcotest.failf "surrogate pair rejected: %s" msg);
  (match Json.parse {|"\u00e9"|} with
  | Ok (Json.Str s) -> Alcotest.(check string) "BMP escape" "\xc3\xa9" s
  | _ -> Alcotest.fail "BMP \\u escape failed");
  List.iter
    (fun bad ->
      match Json.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed input %s" bad)
    [
      {|"\ud83d"|};        (* unpaired high surrogate *)
      {|"\ud83dx"|};       (* high surrogate not followed by \u *)
      {|"\ude00"|};        (* unpaired low surrogate *)
      {|"\ud83d\u0041"|}; (* high surrogate followed by a non-low \u *)
      {|"\u12g4"|};        (* bad hex digit *)
      {|"\u12"|};          (* truncated *)
    ]

(* spans whose names and attributes contain newlines, quotes and raw UTF-8
   still produce machine-parsable chrome and JSONL output *)
let sinks_hostile_attrs () =
  let tracer = Obs.collector () in
  let h = Obs.enter tracer "outer \"op\"\nline2" in
  Obs.set h "note" (Obs.Str "it's \"quoted\"\n\ttab \xe2\x9a\xa0");
  Obs.set h "caf\xc3\xa9" (Obs.Str "\x01control\x7f");
  let inner = Obs.enter tracer "inner,comma" in
  Obs.set inner "n" (Obs.Int 3);
  Obs.leave tracer inner;
  Obs.leave tracer h;
  let spans = Obs.spans tracer in
  (match Json.parse (Sink.chrome spans) with
  | Ok (Json.List (_ :: _)) -> ()
  | Ok _ -> Alcotest.fail "chrome trace is not a non-empty array"
  | Error msg -> Alcotest.failf "chrome trace unparsable: %s" msg);
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (Sink.jsonl spans))
  in
  Alcotest.(check int) "one JSONL line per span" 2 (List.length lines);
  List.iter
    (fun line ->
      match Json.parse line with
      | Error msg -> Alcotest.failf "unparsable JSONL line (%s): %s" msg line
      | Ok doc -> (
          match Json.member "name" doc with
          | Some (Json.Str _) -> ()
          | _ -> Alcotest.failf "JSONL line lacks string name: %s" line))
    lines;
  (* the hostile attribute value survives the trip through JSONL intact *)
  let first = List.nth lines 0 in
  match Json.parse first with
  | Ok doc -> (
      match Json.member "attrs" doc with
      | Some (Json.Obj attrs) -> (
          match List.assoc_opt "note" attrs with
          | Some (Json.Str s) ->
              Alcotest.(check string) "attr round-trips"
                "it's \"quoted\"\n\ttab \xe2\x9a\xa0" s
          | _ -> Alcotest.fail "note attr missing from JSONL")
      | _ -> Alcotest.fail "attrs missing from JSONL")
  | Error msg -> Alcotest.failf "unparsable first line: %s" msg

let () =
  Alcotest.run "arc_obs"
    [
      ( "transparency",
        [
          Alcotest.test_case "tracing preserves results" `Quick
            tracing_preserves_results;
          Alcotest.test_case "error messages name the collection" `Quick
            error_context;
        ] );
      ( "counters",
        [
          Alcotest.test_case "emitted <= scanned, survivors <= candidates"
            `Quick counter_invariants;
          Alcotest.test_case "semi-naive <= naive on transitive closure"
            `Quick seminaive_beats_naive;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "JSONL parses and spans nest" `Quick
            jsonl_roundtrip;
          Alcotest.test_case "pretty and chrome sinks" `Quick sinks_smoke;
          Alcotest.test_case "JSON emitter/parser round-trip" `Quick
            json_roundtrip;
          Alcotest.test_case "hostile strings round-trip" `Quick
            json_hostile_roundtrip;
          Alcotest.test_case "unicode escapes and surrogate pairs" `Quick
            json_unicode_escapes;
          Alcotest.test_case "sinks survive hostile attributes" `Quick
            sinks_hostile_attrs;
        ] );
    ]
