(** Lossless typed CSV for relations.

    The format is designed so that any relation the engine can produce —
    including NULLs, strings containing delimiters, quotes, newlines, or
    the literal text [null] — round-trips exactly:

    {ul
    {- strings are {e always} double-quoted, with embedded double quotes
       doubled ([""]), so a quoted ["null"] is the three-letter string and
       a bare [null] is SQL NULL;}
    {- bare fields are typed: [null], [true], [false], integers, floats
       (floats always carry a [.] or exponent, so the int/float split is
       unambiguous and [Value.to_string]'s shortest-reparsing form is used
       verbatim);}
    {- header fields follow the same quoting rule, so attribute names with
       commas or quotes survive;}
    {- quoted fields may span lines (embedded newlines are data).}} *)

exception Csv_error of string
(** Raised by {!read} on malformed input: unterminated quotes, ragged
    rows, or a bare field that parses as none of the typed forms. *)

val write : Relation.t -> string
(** Header line (attribute names) followed by one line per tuple,
    ["\n"]-separated with a trailing newline. *)

val read : ?name:string -> string -> Relation.t
(** Inverse of {!write}. [read (write r)] equals [r] bag-for-bag with the
    same schema, for every relation [r]. *)
