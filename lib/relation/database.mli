(** A database instance: a finite map from relation names to base relations
    (the extensional database, EDB in the paper's Fig 14 taxonomy). *)

type t

exception Unknown_relation of string

val empty : t
val of_list : (string * Relation.t) list -> t
val add : t -> string -> Relation.t -> t
val find : t -> string -> Relation.t
(** Raises {!Unknown_relation}. *)

val find_opt : t -> string -> Relation.t option
val mem : t -> string -> bool
val names : t -> string list

(** {1 Statistics (ANALYZE)}

    Optional per-relation {!Stats.t}, stored alongside the relations and
    consumed by the plan-layer cost model. Statistics are advisory:
    replacing a relation with {!add} drops its entry, so a present entry
    always describes the current relation (or a patched row count marked
    stale — see {!Stats.patch_rows}). *)

val analyze : ?only:string list -> t -> t
(** Collect statistics for every relation (or just [only]). *)

val stats : t -> string -> Stats.t option
val stats_bindings : t -> (string * Stats.t) list
val analyzed : t -> bool
(** Whether any relation has statistics. *)

val set_stats : t -> string -> Stats.t -> t
(** No-op when the relation does not exist. *)

val clear_stats : t -> t
val pp : Format.formatter -> t -> unit
