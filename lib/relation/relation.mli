(** Relations: collections of tuples over a shared schema.

    The representation is always a bag (tuple list with multiplicities);
    whether a result is deduplicated is decided by the active
    {!Arc_value.Conventions.collection_semantics}, applied by callers via
    {!dedup}. This matches the paper's Section 2.7: the same query is
    {e interpreted} under set or bag semantics. *)

type t

val make : ?name:string -> Schema.t -> Tuple.t list -> t
(** Raises [Invalid_argument] if a tuple's schema differs from the
    relation's (attribute names and order must match). *)

val of_rows : ?name:string -> string list -> Arc_value.Value.t list list -> t
(** Convenience: schema from attribute names, rows as value lists. *)

val empty : ?name:string -> string list -> t

val name : t -> string option
val schema : t -> Schema.t
val tuples : t -> Tuple.t list
val cardinality : t -> int
val is_empty : t -> bool

val dedup : t -> t
(** Set-semantics view: one representative per distinct tuple, preserving
    first-occurrence order. *)

val add : t -> Tuple.t -> t

(** {1 Classic relational-algebra operations}

    Provided for the substrate's own tests and for oracle implementations in
    property tests; the ARC engine evaluates comprehensions directly and does
    not compile to these. *)

val select : (Tuple.t -> bool) -> t -> t
val project : string list -> t -> t
val rename : (string * string) list -> t -> t
val product : t -> t -> t
val union : t -> t -> t
(** Bag union (UNION ALL); apply {!dedup} for set union. *)

val minus : t -> t -> t
(** Bag difference (EXCEPT ALL): multiplicities subtract. *)

val intersect : t -> t -> t
(** Bag intersection: pointwise [min] of multiplicities. *)

val join : t -> t -> t
(** Natural join on shared attribute names (name-based equality,
    [Null] ≠ [Null] here, as in SQL join predicates). *)

(** {1 Signed deltas}

    A signed delta is a list of [(tuple, multiplicity)] pairs: positive
    multiplicities insert copies, negative ones delete occurrences matched
    by {!Tuple.key} — the canonical serialization {!dedup} uses, so
    [Null] matches [Null] (under both 2VL and 3VL, as in GROUP
    BY/DISTINCT) and [Int 1] matches [Float 1.0]. These are the atoms the
    incremental view maintenance layer ([Arc_ivm]) propagates. *)

val align_to : Schema.t -> Tuple.t -> Tuple.t
(** Reorder a tuple's cells to a schema over the same attribute names
    (identity when already aligned); raises [Unknown_attribute] when the
    attribute sets differ. *)

val apply_delta : t -> (Tuple.t * int) list -> t
(** Apply a signed delta: deletions filter existing rows (preserving
    order), insertions append. Raises [Invalid_argument] if a tuple's
    schema differs from the relation's or a deletion exceeds the present
    multiplicity — deltas are exact, never clamped, so
    [apply_delta (apply_delta r d) (inverse of d)] restores [r]. *)

val diff_signed : t -> t -> (Tuple.t * int) list
(** [diff_signed old new] is the signed delta turning [old] into [new]
    (bag-wise): [apply_delta old (diff_signed old new)] is bag-equal to
    [new]. Sorted by tuple for determinism; zero entries omitted. *)

val equal_set : t -> t -> bool
(** Equality under set semantics (same distinct tuples). *)

val equal_bag : t -> t -> bool
(** Equality under bag semantics (same multiplicities). *)

val sort : t -> t
(** Deterministic tuple order, for printing and golden tests. *)

val to_table : t -> string
(** ASCII table rendering. *)

val pp : Format.formatter -> t -> unit
