(** Tuples over a {!Schema}, with name-based access. *)

type t

val make : Schema.t -> Arc_value.Value.t array -> t
(** Raises [Invalid_argument] if the array length differs from the schema
    arity. The array is not copied; callers must not mutate it. *)

val of_alist : (string * Arc_value.Value.t) list -> t
(** Builds a schema from the association-list order. *)

val schema : t -> Schema.t
val get : t -> string -> Arc_value.Value.t
val values : t -> Arc_value.Value.t list

val project : t -> string list -> t
val rename_schema : t -> Schema.t -> t

val concat : t -> t -> t
(** Schema union; raises {!Schema.Duplicate_attribute} on overlap. *)

val equal : t -> t -> bool
(** Name-based: equal iff same attribute set and each attribute maps to an
    equal value ([Null] = [Null], per grouping/dedup semantics). *)

val compare : t -> t -> int
(** Deterministic total order over tuples of the same schema. *)

val key : t -> string
(** Canonical string key (sorted by attribute name, length-prefixed
    {!Arc_value.Value.canonical} cells) for hashing/grouping. Injective up
    to {!equal}: two tuples share a key iff they are [equal]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
