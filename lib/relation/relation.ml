module Value = Arc_value.Value

type t = { name : string option; schema : Schema.t; rows : Tuple.t list }

let make ?name schema rows =
  List.iter
    (fun tp ->
      if not (Schema.equal (Tuple.schema tp) schema) then
        invalid_arg "Relation.make: tuple schema mismatch")
    rows;
  { name; schema; rows }

let of_rows ?name attrs rows =
  let schema = Schema.make attrs in
  let mk vs =
    if List.length vs <> Schema.arity schema then
      invalid_arg "Relation.of_rows: row arity mismatch";
    Tuple.make schema (Array.of_list vs)
  in
  { name; schema; rows = List.map mk rows }

let empty ?name attrs = of_rows ?name attrs []

let name t = t.name
let schema t = t.schema
let tuples t = t.rows
let cardinality t = List.length t.rows
let is_empty t = t.rows = []

let dedup t =
  let seen = Hashtbl.create 64 in
  let rows =
    List.filter
      (fun tp ->
        let k = Tuple.key tp in
        if Hashtbl.mem seen k then false
        else (
          Hashtbl.add seen k ();
          true))
      t.rows
  in
  { t with rows }

let add t tp =
  if not (Schema.equal (Tuple.schema tp) t.schema) then
    invalid_arg "Relation.add: tuple schema mismatch";
  { t with rows = t.rows @ [ tp ] }

let select p t = { t with rows = List.filter p t.rows }

let project attrs t =
  {
    name = None;
    schema = Schema.project t.schema attrs;
    rows = List.map (fun tp -> Tuple.project tp attrs) t.rows;
  }

let rename mapping t =
  let attrs' =
    List.map
      (fun a -> match List.assoc_opt a mapping with Some b -> b | None -> a)
      (Schema.attrs t.schema)
  in
  let schema' = Schema.make attrs' in
  {
    name = None;
    schema = schema';
    rows = List.map (fun tp -> Tuple.rename_schema tp schema') t.rows;
  }

let product t1 t2 =
  let schema = Schema.union t1.schema t2.schema in
  {
    name = None;
    schema;
    rows =
      List.concat_map
        (fun r1 -> List.map (fun r2 -> Tuple.concat r1 r2) t2.rows)
        t1.rows;
  }

let union t1 t2 =
  if not (Schema.equal_names t1.schema t2.schema) then
    invalid_arg "Relation.union: schema mismatch";
  let align tp =
    if Schema.equal (Tuple.schema tp) t1.schema then tp
    else Tuple.project tp (Schema.attrs t1.schema)
  in
  { name = None; schema = t1.schema; rows = t1.rows @ List.map align t2.rows }

let counts rows =
  let h = Hashtbl.create 64 in
  List.iter
    (fun tp ->
      let k = Tuple.key tp in
      Hashtbl.replace h k (1 + Option.value ~default:0 (Hashtbl.find_opt h k)))
    rows;
  h

let minus t1 t2 =
  if not (Schema.equal_names t1.schema t2.schema) then
    invalid_arg "Relation.minus: schema mismatch";
  let remaining = counts t2.rows in
  let rows =
    List.filter
      (fun tp ->
        let k = Tuple.key tp in
        match Hashtbl.find_opt remaining k with
        | Some n when n > 0 ->
            Hashtbl.replace remaining k (n - 1);
            false
        | _ -> true)
      t1.rows
  in
  { name = None; schema = t1.schema; rows }

let intersect t1 t2 =
  if not (Schema.equal_names t1.schema t2.schema) then
    invalid_arg "Relation.intersect: schema mismatch";
  let available = counts t2.rows in
  let rows =
    List.filter
      (fun tp ->
        let k = Tuple.key tp in
        match Hashtbl.find_opt available k with
        | Some n when n > 0 ->
            Hashtbl.replace available k (n - 1);
            true
        | _ -> false)
      t1.rows
  in
  { name = None; schema = t1.schema; rows }

(* Signed deltas: multiplicities keyed by [Tuple.key] — the same canonical
   serialization [dedup]/[minus]/[intersect] use, so Null matches Null and
   Int 1 matches Float 1.0 under either null-logic convention. *)

let align_to schema tp =
  if Schema.equal (Tuple.schema tp) schema then tp
  else Tuple.project tp (Schema.attrs schema)

let apply_delta t (delta : (Tuple.t * int) list) =
  List.iter
    (fun (tp, _) ->
      if not (Schema.equal_names (Tuple.schema tp) t.schema) then
        invalid_arg "Relation.apply_delta: tuple schema mismatch")
    delta;
  let to_remove = Hashtbl.create 16 in
  let inserts =
    List.concat_map
      (fun (tp, n) ->
        let tp = align_to t.schema tp in
        if n > 0 then List.init n (fun _ -> tp)
        else begin
          if n < 0 then begin
            let k = Tuple.key tp in
            Hashtbl.replace to_remove k
              (-n + Option.value ~default:0 (Hashtbl.find_opt to_remove k))
          end;
          []
        end)
      delta
  in
  let rows =
    if Hashtbl.length to_remove = 0 then t.rows
    else
      List.filter
        (fun tp ->
          let k = Tuple.key tp in
          match Hashtbl.find_opt to_remove k with
          | Some n when n > 0 ->
              Hashtbl.replace to_remove k (n - 1);
              false
          | _ -> true)
        t.rows
  in
  Hashtbl.iter
    (fun _ n ->
      if n > 0 then
        invalid_arg "Relation.apply_delta: delete exceeds multiplicity")
    to_remove;
  { t with rows = rows @ inserts }

let diff_signed t_old t_new =
  if not (Schema.equal_names t_old.schema t_new.schema) then
    invalid_arg "Relation.diff_signed: schema mismatch";
  let reps = Hashtbl.create 64 in
  let tally sign rows =
    List.iter
      (fun tp ->
        let tp = align_to t_old.schema tp in
        let k = Tuple.key tp in
        match Hashtbl.find_opt reps k with
        | Some (rep, n) -> Hashtbl.replace reps k (rep, n + sign)
        | None -> Hashtbl.add reps k (tp, sign))
      rows
  in
  tally 1 t_new.rows;
  tally (-1) t_old.rows;
  Hashtbl.fold
    (fun _ (tp, n) acc -> if n = 0 then acc else (tp, n) :: acc)
    reps []
  |> List.sort (fun (a, _) (b, _) -> Tuple.compare a b)

let join t1 t2 =
  let shared =
    List.filter (fun a -> Schema.mem t2.schema a) (Schema.attrs t1.schema)
  in
  let rest2 =
    List.filter (fun a -> not (Schema.mem t1.schema a)) (Schema.attrs t2.schema)
  in
  let schema = Schema.make (Schema.attrs t1.schema @ rest2) in
  let matches r1 r2 =
    List.for_all
      (fun a ->
        let v1 = Tuple.get r1 a and v2 = Tuple.get r2 a in
        (* SQL-style: null never joins *)
        (not (Value.is_null v1)) && (not (Value.is_null v2)) && Value.equal v1 v2)
      shared
  in
  let rows =
    List.concat_map
      (fun r1 ->
        List.filter_map
          (fun r2 ->
            if matches r1 r2 then
              Some
                (Tuple.make schema
                   (Array.of_list
                      (List.map (Tuple.get r1) (Schema.attrs t1.schema)
                      @ List.map (Tuple.get r2) rest2)))
            else None)
          t2.rows)
      t1.rows
  in
  { name = None; schema; rows }

let sort t =
  { t with rows = List.sort Tuple.compare t.rows }

let equal_set t1 t2 =
  Schema.equal_names t1.schema t2.schema
  &&
  let d1 = sort (dedup t1) and d2 = sort (dedup t2) in
  List.length d1.rows = List.length d2.rows
  && List.for_all2 Tuple.equal d1.rows d2.rows

let equal_bag t1 t2 =
  Schema.equal_names t1.schema t2.schema
  &&
  let s1 = sort t1 and s2 = sort t2 in
  List.length s1.rows = List.length s2.rows
  && List.for_all2 Tuple.equal s1.rows s2.rows

let to_table t =
  let attrs = Schema.attrs t.schema in
  let header = attrs in
  let body =
    List.map
      (fun tp -> List.map (fun a -> Value.to_string (Tuple.get tp a)) attrs)
      t.rows
  in
  let ncols = List.length attrs in
  let widths = Array.make (max ncols 1) 0 in
  List.iteri (fun i c -> widths.(i) <- String.length c) header;
  List.iter
    (List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)))
    body;
  let line =
    "+" ^ String.concat "+" (List.mapi (fun i _ -> String.make (widths.(i) + 2) '-') attrs) ^ "+"
  in
  let render_row cells =
    "|"
    ^ String.concat "|"
        (List.mapi
           (fun i c -> Printf.sprintf " %-*s " widths.(i) c)
           cells)
    ^ "|"
  in
  if ncols = 0 then Printf.sprintf "(%d nullary tuple(s))" (List.length t.rows)
  else
    String.concat "\n"
      ([ line; render_row header; line ]
      @ List.map render_row body
      @ [ line; Printf.sprintf "(%d row(s))" (List.length body) ])

let pp fmt t = Format.pp_print_string fmt (to_table t)
