module Value = Arc_value.Value

(* [key_cache] memoizes the canonical key: tuples are immutable and key
   computation (canonical cell serialization) dominates dedup/diff/group
   hot paths. Never exposed — equality and polymorphic hashing on [t]
   are not used anywhere (all hashing goes through [key] strings). *)
type t = {
  schema : Schema.t;
  cells : Value.t array;
  mutable key_cache : string option;
}

let make schema cells =
  if Array.length cells <> Schema.arity schema then
    invalid_arg "Tuple.make: arity mismatch";
  { schema; cells; key_cache = None }

let of_alist pairs =
  let schema = Schema.make (List.map fst pairs) in
  { schema; cells = Array.of_list (List.map snd pairs); key_cache = None }

let schema t = t.schema
let get t name = t.cells.(Schema.index t.schema name)
let values t = Array.to_list t.cells

let project t names =
  let schema = Schema.project t.schema names in
  { schema; cells = Array.of_list (List.map (get t) names); key_cache = None }

let rename_schema t schema' =
  if Schema.arity schema' <> Array.length t.cells then
    invalid_arg "Tuple.rename_schema: arity mismatch";
  { schema = schema'; cells = t.cells; key_cache = None }

let concat t1 t2 =
  {
    schema = Schema.union t1.schema t2.schema;
    cells = Array.append t1.cells t2.cells;
    key_cache = None;
  }

let sorted_attrs t = Schema.sorted_attrs t.schema

(* Length-prefixed attribute names plus Value.canonical cells: no choice of
   attribute names or string values can make two distinct tuples collide
   (the old "A=x|B=y" form collided with values containing '|' or '='). *)
let key t =
  match t.key_cache with
  | Some k -> k
  | None ->
      let parts = Schema.key_parts t.schema
      and ixs = Schema.sorted_ixs t.schema in
      let buf = Buffer.create 32 in
      Array.iteri
        (fun i p ->
          Buffer.add_string buf p;
          Buffer.add_string buf (Value.canonical t.cells.(ixs.(i))))
        parts;
      let k = Buffer.contents buf in
      t.key_cache <- Some k;
      k

let equal t1 t2 =
  match (t1.key_cache, t2.key_cache) with
  | Some k1, Some k2 -> k1 = k2 (* key is injective up to [equal] *)
  | _ ->
      Schema.equal_names t1.schema t2.schema
      && List.for_all
           (fun a -> Value.equal (get t1 a) (get t2 a))
           (sorted_attrs t1)

let compare t1 t2 =
  let a1 = sorted_attrs t1 and a2 = sorted_attrs t2 in
  match Stdlib.compare a1 a2 with
  | 0 ->
      List.fold_left
        (fun acc a -> if acc <> 0 then acc else Value.compare (get t1 a) (get t2 a))
        0 a1
  | c -> c

let to_string t =
  "("
  ^ String.concat ", "
      (List.map
         (fun a -> a ^ ": " ^ Value.to_string (get t a))
         (Schema.attrs t.schema))
  ^ ")"

let pp fmt t = Format.pp_print_string fmt (to_string t)
