module Value = Arc_value.Value

type t = { schema : Schema.t; cells : Value.t array }

let make schema cells =
  if Array.length cells <> Schema.arity schema then
    invalid_arg "Tuple.make: arity mismatch";
  { schema; cells }

let of_alist pairs =
  let schema = Schema.make (List.map fst pairs) in
  { schema; cells = Array.of_list (List.map snd pairs) }

let schema t = t.schema
let get t name = t.cells.(Schema.index t.schema name)
let values t = Array.to_list t.cells

let project t names =
  let schema = Schema.project t.schema names in
  { schema; cells = Array.of_list (List.map (get t) names) }

let rename_schema t schema' =
  if Schema.arity schema' <> Array.length t.cells then
    invalid_arg "Tuple.rename_schema: arity mismatch";
  { schema = schema'; cells = t.cells }

let concat t1 t2 =
  {
    schema = Schema.union t1.schema t2.schema;
    cells = Array.append t1.cells t2.cells;
  }

let sorted_attrs t = List.sort compare (Schema.attrs t.schema)

let equal t1 t2 =
  Schema.equal_names t1.schema t2.schema
  && List.for_all (fun a -> Value.equal (get t1 a) (get t2 a)) (sorted_attrs t1)

let compare t1 t2 =
  let a1 = sorted_attrs t1 and a2 = sorted_attrs t2 in
  match Stdlib.compare a1 a2 with
  | 0 ->
      List.fold_left
        (fun acc a -> if acc <> 0 then acc else Value.compare (get t1 a) (get t2 a))
        0 a1
  | c -> c

(* Length-prefixed attribute names plus Value.canonical cells: no choice of
   attribute names or string values can make two distinct tuples collide
   (the old "A=x|B=y" form collided with values containing '|' or '='). *)
let key t =
  String.concat ""
    (List.map
       (fun a ->
         "a" ^ string_of_int (String.length a) ^ ":" ^ a
         ^ Value.canonical (get t a))
       (sorted_attrs t))

let to_string t =
  "("
  ^ String.concat ", "
      (List.map
         (fun a -> a ^ ": " ^ Value.to_string (get t a))
         (Schema.attrs t.schema))
  ^ ")"

let pp fmt t = Format.pp_print_string fmt (to_string t)
