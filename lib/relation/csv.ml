module Value = Arc_value.Value

exception Csv_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Csv_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* Bare header names are restricted to forms a bare value field can never
   take (no digits-only names, no [null]/[true]/[false]); anything else is
   quoted. Values: only strings are quoted — every other type has an
   unambiguous bare form. *)
let plain_header s =
  s <> ""
  && (match s.[0] with
     | 'a' .. 'z' | 'A' .. 'Z' | '_' | '$' -> true
     | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> true
         | _ -> false)
       s
  && not (List.mem (String.lowercase_ascii s) [ "null"; "true"; "false" ])

let header_field s = if plain_header s then s else quote s

let value_field = function
  | Value.Null -> "null"
  | Value.Int x -> string_of_int x
  | Value.Float _ as v -> Value.to_string v (* always has '.' or exponent *)
  | Value.Bool b -> string_of_bool b
  | Value.Str s -> quote s

let write rel =
  let attrs = Schema.attrs (Relation.schema rel) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (String.concat "," (List.map header_field attrs));
  Buffer.add_char buf '\n';
  List.iter
    (fun tp ->
      Buffer.add_string buf
        (String.concat ","
           (List.map (fun a -> value_field (Tuple.get tp a)) attrs));
      Buffer.add_char buf '\n')
    (Relation.tuples rel);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

type field = Quoted of string | Bare of string

(* One pass over the input: quoted fields may contain commas, quotes
   (doubled) and newlines; records end at a newline outside quotes. *)
let parse_records input =
  let n = String.length input in
  let records = ref [] in
  let fields = ref [] in
  let pos = ref 0 in
  let flush_record () =
    records := List.rev !fields :: !records;
    fields := []
  in
  let parse_field () =
    if !pos < n && input.[!pos] = '"' then begin
      let buf = Buffer.create 16 in
      let i = ref (!pos + 1) in
      let fin = ref false in
      while not !fin do
        if !i >= n then fail "unterminated quoted field at byte %d" !pos
        else if input.[!i] <> '"' then (
          Buffer.add_char buf input.[!i];
          incr i)
        else if !i + 1 < n && input.[!i + 1] = '"' then (
          Buffer.add_char buf '"';
          i := !i + 2)
        else (
          fin := true;
          incr i)
      done;
      pos := !i;
      Quoted (Buffer.contents buf)
    end
    else begin
      let start = !pos in
      while
        !pos < n && input.[!pos] <> ',' && input.[!pos] <> '\n'
        && input.[!pos] <> '\r'
      do
        incr pos
      done;
      Bare (String.sub input start (!pos - start))
    end
  in
  while !pos < n do
    let f = parse_field () in
    fields := f :: !fields;
    if !pos >= n then flush_record ()
    else
      match input.[!pos] with
      | ',' -> incr pos
      | '\r' when !pos + 1 < n && input.[!pos + 1] = '\n' ->
          pos := !pos + 2;
          flush_record ()
      | '\n' | '\r' ->
          incr pos;
          flush_record ()
      | c -> fail "unexpected character %C after quoted field" c
  done;
  if !fields <> [] then flush_record ();
  List.rev !records

let header_of = function
  | Quoted s -> s
  | Bare s -> if s = "" then fail "empty bare header field" else s

let looks_float s =
  String.exists (function '.' | 'e' | 'E' -> true | _ -> false) s

let value_of = function
  | Quoted s -> Value.Str s
  | Bare "null" -> Value.Null
  | Bare "true" -> Value.Bool true
  | Bare "false" -> Value.Bool false
  | Bare s -> (
      if looks_float s then
        match float_of_string_opt s with
        | Some f -> Value.Float f
        | None -> fail "malformed float field %S" s
      else
        match int_of_string_opt s with
        | Some i -> Value.Int i
        | None -> fail "malformed bare field %S (strings must be quoted)" s)

let read ?name input =
  match parse_records input with
  | [] -> fail "missing header line"
  | header :: rows ->
      (* a nullary relation writes an empty header line, which parses as
         the single bare field "" *)
      let attrs =
        match header with [ Bare "" ] -> [] | _ -> List.map header_of header
      in
      let width = List.length attrs in
      let row r =
        match (attrs, r) with
        | [], [ Bare "" ] -> []
        | _ ->
            if List.length r <> width then
              fail "row has %d field(s), header has %d" (List.length r) width;
            List.map value_of r
      in
      Relation.of_rows ?name attrs (List.map row rows)
