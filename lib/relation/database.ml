module M = Map.Make (String)

(* Relations plus optional per-relation statistics. Statistics are strictly
   advisory (the cost model's input, never a source of truth): [add]
   invalidates the replaced relation's entry, so a stats entry always
   describes either the current relation ([Stats.collect] at analyze time)
   or a patched row count explicitly marked stale. *)
type t = { rels : Relation.t M.t; stats : Stats.t M.t }

exception Unknown_relation of string

let empty = { rels = M.empty; stats = M.empty }

let add t name r =
  { rels = M.add name r t.rels; stats = M.remove name t.stats }

let of_list l = List.fold_left (fun acc (n, r) -> add acc n r) empty l

let find t name =
  match M.find_opt name t.rels with
  | Some r -> r
  | None -> raise (Unknown_relation name)

let find_opt t name = M.find_opt name t.rels
let mem t name = M.mem name t.rels
let names t = List.map fst (M.bindings t.rels)

(* ------------------------------------------------------------------ *)
(* Statistics (ANALYZE)                                                *)
(* ------------------------------------------------------------------ *)

let analyze ?only t =
  let wanted n = match only with None -> true | Some l -> List.mem n l in
  {
    t with
    stats =
      M.fold
        (fun n r acc -> if wanted n then M.add n (Stats.collect r) acc else acc)
        t.rels t.stats;
  }

let stats t name = M.find_opt name t.stats
let stats_bindings t = M.bindings t.stats
let analyzed t = not (M.is_empty t.stats)

let set_stats t name s =
  if M.mem name t.rels then { t with stats = M.add name s t.stats } else t

let clear_stats t = { t with stats = M.empty }

let pp fmt t =
  M.iter
    (fun n r ->
      Format.fprintf fmt "%s =@.%s@." n (Relation.to_table r))
    t.rels
