type t = {
  names : string list;
  idx : (string, int) Hashtbl.t;
  sorted : string list;  (* names sorted, for name-based equality *)
  key_parts : string array;  (* per sorted attr: "a<len>:<name>" *)
  sorted_ixs : int array;  (* cell index of each sorted attr *)
}

exception Duplicate_attribute of string
exception Unknown_attribute of string

let make names =
  let idx = Hashtbl.create (List.length names) in
  List.iteri
    (fun i n ->
      if Hashtbl.mem idx n then raise (Duplicate_attribute n)
      else Hashtbl.add idx n i)
    names;
  let sorted_pairs =
    List.sort compare (List.mapi (fun i n -> (n, i)) names)
  in
  {
    names;
    idx;
    sorted = List.map fst sorted_pairs;
    key_parts =
      Array.of_list
        (List.map
           (fun (n, _) -> "a" ^ string_of_int (String.length n) ^ ":" ^ n)
           sorted_pairs);
    sorted_ixs = Array.of_list (List.map snd sorted_pairs);
  }

let attrs t = t.names
let arity t = List.length t.names
let mem t n = Hashtbl.mem t.idx n

let index t n =
  match Hashtbl.find_opt t.idx n with
  | Some i -> i
  | None -> raise (Unknown_attribute n)

let equal t1 t2 = t1.names = t2.names
let equal_names t1 t2 = t1.sorted = t2.sorted
let sorted_attrs t = t.sorted
let key_parts t = t.key_parts
let sorted_ixs t = t.sorted_ixs

let union t1 t2 = make (t1.names @ t2.names)

let project t names =
  List.iter (fun n -> if not (mem t n) then raise (Unknown_attribute n)) names;
  make names

let to_string t = "(" ^ String.concat ", " t.names ^ ")"
let pp fmt t = Format.pp_print_string fmt (to_string t)
