(** Per-relation column statistics (ANALYZE): row count, and per column the
    null count, distinct count, min/max, most-common values, and an
    equi-depth histogram — exact (full-pass) statistics under
    {!Arc_value.Value.compare} identity. The plan-layer cost model
    ([Arc_plan.Card]) turns these into selectivities; everything here is
    advisory and can never change results, only plans. *)

module V = Arc_value.Value

val mcv_target : int
(** Maximum number of most-common values retained per column. *)

val histogram_buckets : int
(** Target number of equi-depth histogram buckets per column. *)

type bucket = {
  b_hi : V.t;  (** inclusive upper bound; a value never spans buckets *)
  b_rows : int;
  b_distinct : int;
}

type col = {
  c_nulls : int;
  c_distinct : int;  (** distinct non-null values *)
  c_min : V.t option;
  c_max : V.t option;
  c_mcvs : (V.t * int) list;
      (** occurrence counts, most frequent first; only values occurring
          more than once qualify *)
  c_hist : bucket list;  (** ascending by [b_hi] *)
}

type t = {
  s_rows : int;
  s_analyzed_rows : int;
      (** row count at collection time; the gap to [s_rows] measures drift
          since the column details were gathered *)
  s_cols : (string * col) list;  (** in schema attribute order *)
  s_stale : bool;
      (** the row count has been patched since collection; column details
          may be out of date *)
}

val collect : Relation.t -> t
val col : t -> string -> col option

val patch_rows : t -> int -> t
(** Update the row count and mark the column details stale — what
    incremental maintenance applies after a batch. *)

val drift : t -> float
(** Relative row-count drift since collection, in [0,1]: 0 for fresh
    statistics, saturating at 1 once the relation has doubled or emptied.
    The cost model blends stale column selectivities toward heuristics by
    this weight. *)

(** {1 Selectivity fractions}

    All fractions are of {e all} rows (nulls included) and lie in [0,1]. *)

val null_fraction : t -> col -> float

val eq_fraction : t -> col -> V.t -> float
(** P(column = v): exact for MCVs, uniform over the remaining distinct
    values otherwise, zero outside [min,max]. *)

val eq_unknown_fraction : t -> col -> float
(** P(column = ?) for an unknown comparand: uniform over distinct values. *)

val le_fraction : t -> col -> V.t -> float option
(** P(column <= v) via the histogram; [None] without one. *)

val cmp_fraction :
  t -> col -> [ `Lt | `Le | `Gt | `Ge ] -> V.t -> float option

val to_string : ?name:string -> t -> string
