(** Relation schemas in the named perspective (paper, Section 2.1).

    Following Codd's "totally associative addressing", attributes are
    accessed by name, never by position. A schema is an ordered list of
    distinct attribute names; the order is presentational only and does not
    affect semantics (tuple equality and joins are name-based). *)

type t

exception Duplicate_attribute of string
exception Unknown_attribute of string

val make : string list -> t
(** Raises {!Duplicate_attribute} if a name repeats. *)

val attrs : t -> string list
val arity : t -> int
val mem : t -> string -> bool

val index : t -> string -> int
(** Position of an attribute (internal storage only).
    Raises {!Unknown_attribute}. *)

val sorted_attrs : t -> string list
(** The attribute names in sorted order, precomputed at {!make} — the
    iteration order of name-based tuple equality/comparison. *)

val key_parts : t -> string array
(** Per sorted attribute, its length-prefixed header ["a<len>:<name>"]
    of the canonical tuple key (internal to {!Tuple.key}). *)

val sorted_ixs : t -> int array
(** Cell index of each sorted attribute (internal to {!Tuple.key}). *)

val equal_names : t -> t -> bool
(** Same attribute sets, ignoring order. *)

val equal : t -> t -> bool
(** Same attribute names in the same order. *)

val union : t -> t -> t
(** Concatenation; raises {!Duplicate_attribute} on overlap. *)

val project : t -> string list -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
