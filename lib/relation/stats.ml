module V = Arc_value.Value

(* Per-relation column statistics, in the classic ANALYZE shape: row count,
   and per column the null count, distinct count, min/max, the most common
   values with their frequencies, and an equi-depth histogram over the
   non-null values. Value identity everywhere is [Value.compare] (so
   [Int 1] and [Float 1.0] count as one distinct value, exactly as they
   group and deduplicate). Collection is a full pass over the relation —
   these are exact statistics, not samples; the planner treats them as
   approximate anyway because they describe the relation at ANALYZE time,
   not at execution time (see [stale]). *)

let mcv_target = 8
let histogram_buckets = 16

type bucket = {
  b_hi : V.t;  (** inclusive upper bound; a value never spans buckets *)
  b_rows : int;
  b_distinct : int;
}

type col = {
  c_nulls : int;
  c_distinct : int;  (** distinct non-null values *)
  c_min : V.t option;  (** smallest non-null value *)
  c_max : V.t option;
  c_mcvs : (V.t * int) list;
      (** most common values with occurrence counts, most frequent first;
          only values occurring more than once qualify *)
  c_hist : bucket list;  (** equi-depth, ascending by [b_hi] *)
}

type t = {
  s_rows : int;
  s_analyzed_rows : int;
      (** row count at collection time; the gap to [s_rows] measures how far
          the relation has drifted since the column details were gathered *)
  s_cols : (string * col) list;  (** in schema attribute order *)
  s_stale : bool;
      (** row count has been patched since collection (e.g. by incremental
          maintenance); column-level details may no longer be accurate *)
}

(* ------------------------------------------------------------------ *)
(* Collection                                                          *)
(* ------------------------------------------------------------------ *)

(* Runs of equal values in an ascending sort: the common substrate for
   distinct counts, MCVs and histogram buckets. *)
let runs_of sorted =
  let rec go acc = function
    | [] -> List.rev acc
    | v :: rest -> (
        match acc with
        | (v0, n) :: tl when V.compare v0 v = 0 -> go ((v0, n + 1) :: tl) rest
        | _ -> go ((v, 1) :: acc) rest)
  in
  go [] sorted

let mcvs_of runs =
  let indexed = List.mapi (fun i (v, n) -> (i, v, n)) runs in
  let frequent = List.filter (fun (_, _, n) -> n > 1) indexed in
  let top =
    List.sort
      (fun (i1, _, n1) (i2, _, n2) -> compare (-n1, i1) (-n2, i2))
      frequent
  in
  let rec take k = function
    | (_, v, n) :: rest when k > 0 -> (v, n) :: take (k - 1) rest
    | _ -> []
  in
  take mcv_target top

(* Equi-depth buckets over the value runs: close a bucket once it holds at
   least [depth] rows; boundaries always fall between runs, so every
   occurrence of a value lands in one bucket. *)
let histogram_of runs nonnull =
  if runs = [] then []
  else begin
    let depth = max 1 ((nonnull + histogram_buckets - 1) / histogram_buckets) in
    let buckets = ref [] in
    let cur_rows = ref 0 and cur_distinct = ref 0 and cur_hi = ref None in
    let flush () =
      match !cur_hi with
      | None -> ()
      | Some hi ->
          buckets :=
            { b_hi = hi; b_rows = !cur_rows; b_distinct = !cur_distinct }
            :: !buckets;
          cur_rows := 0;
          cur_distinct := 0;
          cur_hi := None
    in
    List.iter
      (fun (v, n) ->
        cur_rows := !cur_rows + n;
        incr cur_distinct;
        cur_hi := Some v;
        if !cur_rows >= depth then flush ())
      runs;
    flush ();
    List.rev !buckets
  end

let collect_column rows attr =
  let values = List.map (fun tp -> Tuple.get tp attr) rows in
  let nulls, nonnull = List.partition V.is_null values in
  let sorted = List.sort V.compare nonnull in
  let runs = runs_of sorted in
  {
    c_nulls = List.length nulls;
    c_distinct = List.length runs;
    c_min = (match sorted with [] -> None | v :: _ -> Some v);
    c_max =
      (match List.rev sorted with [] -> None | v :: _ -> Some v);
    c_mcvs = mcvs_of runs;
    c_hist = histogram_of runs (List.length sorted);
  }

let collect (r : Relation.t) : t =
  let rows = Relation.tuples r in
  {
    s_rows = Relation.cardinality r;
    s_analyzed_rows = Relation.cardinality r;
    s_cols =
      List.map
        (fun a -> (a, collect_column rows a))
        (Schema.attrs (Relation.schema r));
    s_stale = false;
  }

let col t attr = List.assoc_opt attr t.s_cols

(* Incremental maintenance keeps the row count truthful and flags the
   column details as unreliable; the cost model then uses [s_rows] but
   discounts column-level selectivities in proportion to the drift from
   [s_analyzed_rows]. *)
let patch_rows t rows = { t with s_rows = max 0 rows; s_stale = true }

(* Fraction in [0,1] measuring how much the row count has drifted since
   ANALYZE; 0 for fresh statistics, 1 once the relation has doubled or
   emptied relative to collection time. *)
let drift t =
  if not t.s_stale then 0.0
  else
    let base = max 1 t.s_analyzed_rows in
    min 1.0 (Float.abs (float_of_int (t.s_rows - t.s_analyzed_rows)) /. float_of_int base)

(* ------------------------------------------------------------------ *)
(* Selectivity fractions                                               *)
(* ------------------------------------------------------------------ *)

let nonnull_rows t c = max 0 (t.s_rows - c.c_nulls)

let null_fraction t c =
  if t.s_rows = 0 then 0.0
  else float_of_int c.c_nulls /. float_of_int t.s_rows

let in_range c v =
  match (c.c_min, c.c_max) with
  | Some lo, Some hi -> V.compare v lo >= 0 && V.compare v hi <= 0
  | _ -> false

(* P(column = v) over all rows. MCV hit: exact frequency. Otherwise the
   non-MCV rows are assumed uniform over the non-MCV distinct values; out
   of [min,max] range the fraction is zero. *)
let eq_fraction t c v =
  if t.s_rows = 0 then 0.0
  else if V.is_null v then null_fraction t c
  else
    match List.find_opt (fun (m, _) -> V.compare m v = 0) c.c_mcvs with
    | Some (_, n) -> float_of_int n /. float_of_int t.s_rows
    | None ->
        if c.c_distinct = 0 || not (in_range c v) then 0.0
        else
          let mcv_rows =
            List.fold_left (fun acc (_, n) -> acc + n) 0 c.c_mcvs
          in
          let rest_rows = nonnull_rows t c - mcv_rows in
          let rest_distinct = c.c_distinct - List.length c.c_mcvs in
          if rest_distinct <= 0 || rest_rows <= 0 then 0.0
          else
            float_of_int rest_rows
            /. float_of_int rest_distinct
            /. float_of_int t.s_rows

(* P(column = some unknown value): uniform over distinct values. *)
let eq_unknown_fraction t c =
  if t.s_rows = 0 || c.c_distinct = 0 then 0.0
  else
    float_of_int (nonnull_rows t c)
    /. float_of_int c.c_distinct
    /. float_of_int t.s_rows

(* P(column <= v) over all rows, via the histogram: full buckets below [v]
   count entirely, the bucket containing [v] counts half (the within-bucket
   distribution is unknown). [None] when there is no histogram. *)
let le_fraction t c v =
  match c.c_hist with
  | [] -> None
  | hist ->
      if t.s_rows = 0 then Some 0.0
      else begin
        let below = ref 0.0 in
        let rec go = function
          | [] -> ()
          | b :: rest ->
              if V.compare b.b_hi v <= 0 then begin
                below := !below +. float_of_int b.b_rows;
                go rest
              end
              else if
                (* [v] falls inside this bucket iff it is >= the previous
                   bucket's bound; buckets are ascending so it suffices to
                   check against the bucket's own contents via min *)
                match c.c_min with
                | Some lo -> V.compare v lo >= 0
                | None -> false
              then below := !below +. (float_of_int b.b_rows /. 2.0)
        in
        go hist;
        Some (min 1.0 (!below /. float_of_int t.s_rows))
      end

let cmp_fraction t c op v =
  let le = le_fraction t c v in
  let eq = eq_fraction t c v in
  match (op, le) with
  | `Le, Some f -> Some f
  | `Lt, Some f -> Some (max 0.0 (f -. eq))
  | `Ge, Some f -> Some (max 0.0 (1.0 -. null_fraction t c -. f +. eq))
  | `Gt, Some f -> Some (max 0.0 (1.0 -. null_fraction t c -. f))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let to_string ?(name = "") t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%s: %d rows%s\n" name t.s_rows
       (if t.s_stale then " (stale)" else ""));
  List.iter
    (fun (a, c) ->
      let range =
        match (c.c_min, c.c_max) with
        | Some lo, Some hi ->
            Printf.sprintf " range=[%s..%s]" (V.to_string lo) (V.to_string hi)
        | _ -> ""
      in
      let mcvs =
        if c.c_mcvs = [] then ""
        else
          " mcvs="
          ^ String.concat ","
              (List.map
                 (fun (v, n) -> Printf.sprintf "%s:%d" (V.to_string v) n)
                 c.c_mcvs)
      in
      Buffer.add_string b
        (Printf.sprintf "  %s: distinct=%d nulls=%d%s%s buckets=%d\n" a
           c.c_distinct c.c_nulls range mcvs (List.length c.c_hist)))
    t.s_cols;
  Buffer.contents b
