type kind =
  | Sum
  | Count
  | Avg
  | Min
  | Max
  | Count_distinct
  | Sum_distinct
  | Avg_distinct

let all_kinds =
  [ Sum; Count; Avg; Min; Max; Count_distinct; Sum_distinct; Avg_distinct ]

let kind_to_string = function
  | Sum -> "sum"
  | Count -> "count"
  | Avg -> "avg"
  | Min -> "min"
  | Max -> "max"
  | Count_distinct -> "countdistinct"
  | Sum_distinct -> "sumdistinct"
  | Avg_distinct -> "avgdistinct"

let kind_of_string s =
  match String.lowercase_ascii s with
  | "sum" -> Some Sum
  | "count" -> Some Count
  | "avg" | "average" -> Some Avg
  | "min" -> Some Min
  | "max" -> Some Max
  | "countdistinct" | "count_distinct" -> Some Count_distinct
  | "sumdistinct" | "sum_distinct" -> Some Sum_distinct
  | "avgdistinct" | "avg_distinct" -> Some Avg_distinct
  | _ -> None

let dedup values =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun v ->
      let key = Value.canonical v in
      if Hashtbl.mem seen key then false
      else (
        Hashtbl.add seen key ();
        true))
    values

let non_null values = List.filter (fun v -> not (Value.is_null v)) values

let sum_values vs = List.fold_left Value.add (Value.Int 0) vs

let empty_result (empty_conv : Conventions.agg_empty) =
  match empty_conv with
  | Conventions.Agg_null -> Value.Null
  | Conventions.Agg_zero -> Value.Int 0

let rec apply empty_conv kind values =
  match kind with
  | Count -> Value.Int (List.length (non_null values))
  | Count_distinct -> Value.Int (List.length (dedup (non_null values)))
  | Sum -> (
      match non_null values with
      | [] -> empty_result empty_conv
      | vs -> sum_values vs)
  | Sum_distinct -> apply empty_conv Sum (dedup (non_null values))
  | Avg -> (
      match non_null values with
      | [] -> empty_result empty_conv
      | vs ->
          let fs = List.filter_map Value.to_float vs in
          Value.Float (List.fold_left ( +. ) 0. fs /. float_of_int (List.length fs)))
  | Avg_distinct -> apply empty_conv Avg (dedup (non_null values))
  | Min -> (
      match non_null values with
      | [] -> empty_result empty_conv
      | v :: vs -> List.fold_left (fun a b -> if Value.compare b a < 0 then b else a) v vs)
  | Max -> (
      match non_null values with
      | [] -> empty_result empty_conv
      | v :: vs -> List.fold_left (fun a b -> if Value.compare b a > 0 then b else a) v vs)
