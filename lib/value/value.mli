(** Atomic values of the relational model, including SQL-style NULL.

    ARC is agnostic about the domain of values; this module fixes a concrete
    domain rich enough for every example in the paper (integers, floats,
    strings, booleans) plus [Null], whose comparison behavior is governed by
    the active convention (see {!Conventions}). *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type ty = T_any | T_int | T_float | T_str | T_bool

val type_of : t -> ty
(** [type_of Null] is [T_any]. *)

val ty_name : ty -> string

val is_null : t -> bool

val equal : t -> t -> bool
(** Structural equality; [Null] equals [Null]. Used for grouping keys and
    set-semantics deduplication (SQL, too, treats NULLs as "not distinct"
    in GROUP BY/DISTINCT). For predicate evaluation use {!cmp3}. *)

val compare : t -> t -> int
(** Total order for deterministic output: [Null] sorts first, then values by
    type, numerics compared numerically across Int/Float. *)

val cmp3 : t -> t -> int option
(** Predicate-level comparison: [None] when either side is [Null] (yielding
    [Unknown] under three-valued logic), otherwise [Some c] with [c] as
    {!compare}. Comparing values of incompatible types raises
    [Type_error]. *)

exception Type_error of string

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** Arithmetic is null-strict: any [Null] operand yields [Null]. Division
    by zero (integer or float) yields [Null], SQL-style — never an error,
    never an infinity or NaN. *)

val modulo : t -> t -> t
(** Remainder ([mod] for ints, [Float.rem] for floats); modulo by zero
    yields [Null] like {!div}. *)

val neg : t -> t

val to_float : t -> float option
(** Numeric coercion used by aggregates such as [avg]. *)

val like : t -> string -> bool option
(** SQL [LIKE] with [%] and [_] wildcards; [None] when the value is [Null]. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** Literal syntax accepted by every frontend lexer: strings are
    single-quoted with embedded quotes doubled ([''']), floats print in a
    shortest form that reparses to the identical float (exponent notation
    when needed). *)

val canonical : t -> string
(** Serialization for hash keys: injective up to {!equal} (so [Int 1] and
    [Float 1.0] agree), and self-delimiting (tagged and length-prefixed or
    terminated), so concatenating canonical forms cannot collide the way
    concatenating {!to_string} forms can. Not meant for display. *)

val int : int -> t
val str : string -> t
val float : float -> t
val bool : bool -> t
