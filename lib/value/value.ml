type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type ty = T_any | T_int | T_float | T_str | T_bool

exception Type_error of string

let type_of = function
  | Null -> T_any
  | Int _ -> T_int
  | Float _ -> T_float
  | Str _ -> T_str
  | Bool _ -> T_bool

let ty_name = function
  | T_any -> "any"
  | T_int -> "int"
  | T_float -> "float"
  | T_str -> "string"
  | T_bool -> "bool"

let is_null = function Null -> true | _ -> false

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 2
  | Str _ -> 3

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Int x, Float y -> Stdlib.compare (float_of_int x) y
  | Float x, Int y -> Stdlib.compare x (float_of_int y)
  | Str x, Str y -> Stdlib.compare x y
  | Bool x, Bool y -> Stdlib.compare x y
  | _ -> Stdlib.compare (rank a) (rank b)

let equal a b = compare a b = 0

let cmp3 a b =
  match (a, b) with
  | Null, _ | _, Null -> None
  | Int _, Str _ | Str _, Int _ | Float _, Str _ | Str _, Float _
  | Bool _, Int _ | Int _, Bool _ | Bool _, Float _ | Float _, Bool _
  | Bool _, Str _ | Str _, Bool _ ->
      raise
        (Type_error
           (Printf.sprintf "cannot compare %s with %s" (ty_name (type_of a))
              (ty_name (type_of b))))
  | _ -> Some (compare a b)

let arith name fi ff a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (fi x y)
  | Float x, Float y -> Float (ff x y)
  | Int x, Float y -> Float (ff (float_of_int x) y)
  | Float x, Int y -> Float (ff x (float_of_int y))
  | _ ->
      raise
        (Type_error
           (Printf.sprintf "%s: non-numeric operands %s, %s" name
              (ty_name (type_of a))
              (ty_name (type_of b))))

let add = arith "+" ( + ) ( +. )
let sub = arith "-" ( - ) ( -. )
let mul = arith "*" ( * ) ( *. )

(* SQL-style: division (and modulo) by zero is NULL, not an error. This
   also keeps float division total — no infinities or NaNs escape into
   result sets, where their canonical forms would not round-trip. *)
let is_zero = function Int 0 -> true | Float f -> f = 0.0 | _ -> false

let div a b = if is_zero b then Null else arith "/" ( / ) ( /. ) a b

let modulo a b =
  if is_zero b then Null else arith "%" ( mod ) Float.rem a b

let neg = function
  | Null -> Null
  | Int x -> Int (-x)
  | Float x -> Float (-.x)
  | v -> raise (Type_error ("neg: non-numeric operand " ^ ty_name (type_of v)))

let to_float = function
  | Int x -> Some (float_of_int x)
  | Float x -> Some x
  | _ -> None

(* SQL LIKE: '%' matches any sequence, '_' any single char. *)
let like v pat =
  match v with
  | Null -> None
  | Str s ->
      let n = String.length s and m = String.length pat in
      (* memoized recursive match *)
      let memo = Hashtbl.create 16 in
      let rec go i j =
        match Hashtbl.find_opt memo (i, j) with
        | Some r -> r
        | None ->
            let r =
              if j = m then i = n
              else
                match pat.[j] with
                | '%' -> go i (j + 1) || (i < n && go (i + 1) j)
                | '_' -> i < n && go (i + 1) (j + 1)
                | c -> i < n && s.[i] = c && go (i + 1) (j + 1)
            in
            Hashtbl.add memo (i, j) r;
            r
      in
      Some (go 0 0)
  | _ -> raise (Type_error "LIKE applied to non-string")

(* Shortest decimal form that parses back to the same float. *)
let float_repr x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else
    let s = Printf.sprintf "%.15g" x in
    if float_of_string s = x then s else Printf.sprintf "%.17g" x

(* SQL-style single-quoted literal: embedded quotes double. *)
let quote_str s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '\'';
  String.iter
    (fun c ->
      if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '\'';
  Buffer.contents buf

let to_string = function
  | Null -> "null"
  | Int x -> string_of_int x
  | Float x -> float_repr x
  | Str s -> quote_str s
  | Bool b -> string_of_bool b

let pp fmt v = Format.pp_print_string fmt (to_string v)

(* Injective (up to [equal]) serialization for hash keys. Every form is
   self-delimiting — tagged, and either fixed-width, terminated by ';', or
   length-prefixed — so concatenations of canonical forms can never collide
   the way naive [to_string] concatenations do. Int/Float values that
   compare equal (e.g. [Int 1] and [Float 1.0]) share the "d" form. *)
let canonical = function
  | Null -> "n;"
  | Bool true -> "b1;"
  | Bool false -> "b0;"
  | Int x -> "d" ^ string_of_int x ^ ";"
  | Float f ->
      if Float.is_integer f && Float.abs f <= 4.0e18 then
        "d" ^ string_of_int (int_of_float f) ^ ";"
      else "f" ^ Printf.sprintf "%h" f ^ ";"
  | Str s -> "s" ^ string_of_int (String.length s) ^ ":" ^ s

let int x = Int x
let str s = Str s
let float x = Float x
let bool b = Bool b
