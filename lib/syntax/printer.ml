open Arc_core.Ast
module V = Arc_value.Value
module Aggregate = Arc_value.Aggregate

type sym = {
  exists_ : string;
  in_ : string;
  and_ : string;
  or_ : string;
  not_ : string;
  gamma : string;
  empty : string;
}

let usym =
  {
    exists_ = "\xe2\x88\x83" (* ∃ *);
    in_ = "\xe2\x88\x88" (* ∈ *);
    and_ = "\xe2\x88\xa7" (* ∧ *);
    or_ = "\xe2\x88\xa8" (* ∨ *);
    not_ = "\xc2\xac" (* ¬ *);
    gamma = "\xce\xb3" (* γ *);
    empty = "\xe2\x88\x85" (* ∅ *);
  }

let asym =
  {
    exists_ = "exists ";
    in_ = "in";
    and_ = "and";
    or_ = "or";
    not_ = "not ";
    gamma = "gamma";
    empty = "0";
  }

let sym unicode = if unicode then usym else asym

let is_plain_ident s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> true | _ -> false)
       s

let quote_ident s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let ident s = if is_plain_ident s then s else quote_ident s

let attr_ref v a =
  ident v ^ "."
  ^
  if
    is_plain_ident a
    || (a <> "" && String.for_all (function '0' .. '9' | '$' -> true | _ -> false) a)
  then a
  else quote_ident a

let rec term_str t =
  match t with
  | Const c -> V.to_string c
  | Attr (v, a) -> attr_ref v a
  | Scalar (Neg, [ x ]) -> "-" ^ atom_str x
  | Scalar (op, [ l; r ]) ->
      Printf.sprintf "%s %s %s" (atom_str l)
        (Arc_core.Pp.scalar_op_symbol op)
        (atom_str r)
  | Scalar (op, ts) ->
      Printf.sprintf "%s(%s)"
        (Arc_core.Pp.scalar_op_symbol op)
        (String.concat ", " (List.map term_str ts))
  | Agg (k, t) ->
      Printf.sprintf "%s(%s)" (Aggregate.kind_to_string k) (term_str t)

and atom_str t =
  match t with
  | Scalar ((Add | Sub | Mul | Div | Mod), [ _; _ ]) -> "(" ^ term_str t ^ ")"
  | _ -> term_str t

let pred_str p =
  match p with
  | Cmp (op, l, r) ->
      Printf.sprintf "%s %s %s" (term_str l) (cmp_op_to_string op) (term_str r)
  | Is_null t -> term_str t ^ " is null"
  | Not_null t -> term_str t ^ " is not null"
  | Like (t, pat) ->
      Printf.sprintf "%s like %s" (term_str t) (V.to_string (V.Str pat))

let rec join_tree_str jt =
  match jt with
  | J_var v -> ident v
  | J_lit c -> V.to_string c
  | J_inner l -> "inner(" ^ String.concat ", " (List.map join_tree_str l) ^ ")"
  | J_left (a, b) -> "left(" ^ join_tree_str a ^ ", " ^ join_tree_str b ^ ")"
  | J_full (a, b) -> "full(" ^ join_tree_str a ^ ", " ^ join_tree_str b ^ ")"

let grouping_str s keys =
  match keys with
  | [] -> s.gamma ^ "_" ^ s.empty
  | keys ->
      s.gamma ^ "_{"
      ^ String.concat ", " (List.map (fun (v, a) -> attr_ref v a) keys)
      ^ "}"

let head_str h =
  ident h.head_name ^ "(" ^ String.concat ", " (List.map (fun a -> if is_plain_ident a then a else "\"" ^ a ^ "\"") h.head_attrs) ^ ")"

let rec formula_str s f =
  match f with
  | True -> "true"
  | Pred p -> pred_str p
  (* the empty conjunction/disjunction are the constants true/false *)
  | And [] -> "true"
  | Or [] -> "false"
  | And fs ->
      String.concat (" " ^ s.and_ ^ " ") (List.map (conj_atom s) fs)
  | Or fs -> String.concat (" " ^ s.or_ ^ " ") (List.map (disj_atom s) fs)
  | Not f -> s.not_ ^ paren_unless_atomic s f
  | Exists scope -> exists_str s scope

(* Directly nested connectives of the same kind are parenthesized so the
   printed tree parses back to the identical AST (no silent flattening). *)
and conj_atom s f =
  match f with
  | Or _ | And _ -> "(" ^ formula_str s f ^ ")"
  | _ -> formula_str s f

and disj_atom s f =
  match f with Or _ -> "(" ^ formula_str s f ^ ")" | _ -> formula_str s f

and paren_unless_atomic s f =
  match f with
  | Pred _ | Exists _ | Not _ | True -> formula_str s f
  | _ -> "(" ^ formula_str s f ^ ")"

and exists_str s scope =
  let bindings =
    List.map
      (fun b ->
        match b.source with
        | Base n -> ident b.var ^ " " ^ s.in_ ^ " " ^ ident n
        | Nested c -> ident b.var ^ " " ^ s.in_ ^ " " ^ collection_str s c)
      scope.bindings
  in
  let extras =
    (match scope.grouping with
    | Some keys -> [ grouping_str s keys ]
    | None -> [])
    @ match scope.join with Some jt -> [ join_tree_str jt ] | None -> []
  in
  s.exists_
  ^ String.concat ", " (bindings @ extras)
  ^ "[" ^ formula_str s scope.body ^ "]"

and collection_str s c =
  "{" ^ head_str c.head ^ " | " ^ formula_str s c.body ^ "}"

let term ?(unicode = true) t =
  ignore unicode;
  term_str t

let pred ?(unicode = true) p =
  ignore unicode;
  pred_str p

let formula ?(unicode = true) f = formula_str (sym unicode) f
let collection ?(unicode = true) c = collection_str (sym unicode) c

let query ?(unicode = true) q =
  match q with
  | Coll c -> collection_str (sym unicode) c
  | Sentence f -> formula_str (sym unicode) f

let program ?(unicode = true) (p : program) =
  let s = sym unicode in
  String.concat "\n"
    (List.map
       (fun d ->
         Printf.sprintf "def %s := %s" (ident d.def_name)
           (collection_str s d.def_body))
       p.defs
    @ [ query ~unicode p.main ])

(* ------------------------------------------------------------------ *)
(* Pretty multi-line layout                                            *)
(* ------------------------------------------------------------------ *)

let pretty_query ?(unicode = true) ?(width = 72) q =
  let s = sym unicode in
  let buf = Buffer.create 256 in
  let pad n = String.make n ' ' in
  let rec p_formula ind f =
    let one_line = formula_str s f in
    if String.length one_line + ind <= width then Buffer.add_string buf one_line
    else
      match f with
      | And fs ->
          List.iteri
            (fun i g ->
              if i > 0 then (
                Buffer.add_string buf ("\n" ^ pad ind ^ s.and_ ^ " "));
              p_formula (ind + 2) g)
            fs
      | Or fs ->
          List.iteri
            (fun i g ->
              if i > 0 then
                Buffer.add_string buf ("\n" ^ pad ind ^ s.or_ ^ " ");
              p_formula (ind + 2) g)
            fs
      | Not g ->
          Buffer.add_string buf (s.not_ ^ "(");
          p_formula (ind + 2) g;
          Buffer.add_string buf ")"
      | Exists scope -> p_exists ind scope
      | _ -> Buffer.add_string buf one_line
  and p_exists ind scope =
    let bindings =
      List.map
        (fun b ->
          match b.source with
          | Base n -> ident b.var ^ " " ^ s.in_ ^ " " ^ ident n
          | Nested c ->
              let one = collection_str s c in
              if String.length one + ind <= width then
                ident b.var ^ " " ^ s.in_ ^ " " ^ one
              else ident b.var ^ " " ^ s.in_ ^ " " ^ p_coll_string (ind + 2) c)
        scope.bindings
    in
    let extras =
      (match scope.grouping with
      | Some keys -> [ grouping_str s keys ]
      | None -> [])
      @ match scope.join with Some jt -> [ join_tree_str jt ] | None -> []
    in
    Buffer.add_string buf (s.exists_ ^ String.concat ", " (bindings @ extras));
    Buffer.add_string buf ("\n" ^ pad ind ^ "[");
    p_formula (ind + 1) scope.body;
    Buffer.add_string buf "]"
  and p_coll_string ind c =
    let sub = pretty_coll ind c in
    sub
  and pretty_coll ind c =
    let b2 = Buffer.create 128 in
    Buffer.add_string b2 ("{" ^ head_str c.head ^ " |\n" ^ pad (ind + 2));
    let saved = Buffer.contents buf in
    Buffer.clear buf;
    p_formula (ind + 2) c.body;
    Buffer.add_string b2 (Buffer.contents buf);
    Buffer.clear buf;
    Buffer.add_string buf saved;
    Buffer.add_string b2 "}";
    Buffer.contents b2
  in
  (match q with
  | Coll c ->
      Buffer.add_string buf ("{" ^ head_str c.head ^ " | ");
      p_formula 2 c.body;
      Buffer.add_string buf "}"
  | Sentence f -> p_formula 0 f);
  Buffer.contents buf
