open Arc_core.Ast
module V = Arc_value.Value
module Aggregate = Arc_value.Aggregate
open Lexer

exception Parse_error of string

(* internal backtracking failure *)
exception Fail of string

let fail fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt

type state = { toks : token array }

let tok st i = if i < Array.length st.toks then st.toks.(i) else EOF

let expect st i t =
  if tok st i = t then i + 1
  else
    fail "expected %s, found %s" (token_to_string t)
      (token_to_string (tok st i))

let try_parse f st i = try Some (f st i) with Fail _ -> None

let starts_term_op = function
  | OP ("=" | "<>" | "<" | "<=" | ">" | ">=" | "+" | "-" | "*" | "/" | "%") ->
      true
  | KW ("is" | "like") -> true
  | _ -> false

(* ---------------- terms ---------------- *)

let rec parse_term st i = parse_add st i

and parse_add st i =
  let l, i = parse_mul st i in
  let rec loop acc i =
    match tok st i with
    | OP "+" ->
        let r, i = parse_mul st (i + 1) in
        loop (Scalar (Add, [ acc; r ])) i
    | OP "-" ->
        let r, i = parse_mul st (i + 1) in
        loop (Scalar (Sub, [ acc; r ])) i
    | _ -> (acc, i)
  in
  loop l i

and parse_mul st i =
  let l, i = parse_atom st i in
  let rec loop acc i =
    match tok st i with
    | OP "*" ->
        let r, i = parse_atom st (i + 1) in
        loop (Scalar (Mul, [ acc; r ])) i
    | OP "/" ->
        let r, i = parse_atom st (i + 1) in
        loop (Scalar (Div, [ acc; r ])) i
    | OP "%" ->
        let r, i = parse_atom st (i + 1) in
        loop (Scalar (Mod, [ acc; r ])) i
    | _ -> (acc, i)
  in
  loop l i

and parse_atom st i =
  match tok st i with
  | NUMBER v -> (Const v, i + 1)
  | STRING s -> (Const (V.Str s), i + 1)
  | KW "null" -> (Const V.Null, i + 1)
  | KW "true" -> (Const (V.Bool true), i + 1)
  | KW "false" -> (Const (V.Bool false), i + 1)
  | OP "-" ->
      let t, i = parse_atom st (i + 1) in
      (Scalar (Neg, [ t ]), i)
  | LPAREN ->
      let t, i = parse_term st (i + 1) in
      let i = expect st i RPAREN in
      (t, i)
  | IDENT name -> (
      match (Aggregate.kind_of_string name, tok st (i + 1)) with
      | Some k, LPAREN ->
          let t, i = parse_term st (i + 2) in
          let i = expect st i RPAREN in
          (Agg (k, t), i)
      | _ -> (
          match tok st (i + 1) with
          | DOT -> (
              match tok st (i + 2) with
              | IDENT a -> (Attr (name, a), i + 3)
              (* keywords are legal attribute names in attribute position
                 (e.g. Minus.left, Bigger.right) *)
              | KW a -> (Attr (name, a), i + 3)
              | NUMBER (V.Int n) -> (Attr (name, string_of_int n), i + 3)
              | t -> fail "expected attribute after '.', found %s" (token_to_string t))
          | t ->
              fail "expected '.' after identifier %S, found %s" name
                (token_to_string t)))
  | t -> fail "expected term, found %s" (token_to_string t)

(* ---------------- predicates ---------------- *)

and parse_pred st i =
  let l, i = parse_term st i in
  match tok st i with
  | OP ("=" | "<>" | "<" | "<=" | ">" | ">=") ->
      let op =
        match tok st i with
        | OP "=" -> Eq
        | OP "<>" -> Neq
        | OP "<" -> Lt
        | OP "<=" -> Leq
        | OP ">" -> Gt
        | OP ">=" -> Geq
        | _ -> assert false
      in
      let r, i = parse_term st (i + 1) in
      (Cmp (op, l, r), i)
  | KW "is" -> (
      match (tok st (i + 1), tok st (i + 2)) with
      | KW "null", _ -> (Is_null l, i + 2)
      | KW "not", KW "null" -> (Not_null l, i + 3)
      | _ -> fail "expected 'null' or 'not null' after 'is'")
  | KW "like" -> (
      match tok st (i + 1) with
      | STRING p -> (Like (l, p), i + 2)
      | t -> fail "expected string pattern after 'like', found %s" (token_to_string t))
  | t -> fail "expected comparison operator, found %s" (token_to_string t)

(* ---------------- formulas ---------------- *)

and parse_formula st i =
  let l, i = parse_conj st i in
  let rec loop acc i =
    match tok st i with
    | KW "or" ->
        let r, i = parse_conj st (i + 1) in
        loop (acc @ [ r ]) i
    | _ -> (acc, i)
  in
  let parts, i = loop [ l ] i in
  ((match parts with [ f ] -> f | fs -> Or fs), i)

and parse_conj st i =
  let l, i = parse_unary st i in
  let rec loop acc i =
    match tok st i with
    | KW "and" ->
        let r, i = parse_unary st (i + 1) in
        loop (acc @ [ r ]) i
    | _ -> (acc, i)
  in
  let parts, i = loop [ l ] i in
  ((match parts with [ f ] -> f | fs -> And fs), i)

and parse_unary st i =
  match tok st i with
  | KW "not" ->
      let f, i = parse_unary st (i + 1) in
      (Not f, i)
  | KW "exists" -> parse_exists st (i + 1)
  (* bare true/false are formulas (True, the empty disjunction) — but when a
     term operator follows they open a boolean-constant predicate, e.g.
     [true <> r.a], and fall through to parse_pred *)
  | KW "true" when not (starts_term_op (tok st (i + 1))) -> (True, i + 1)
  | KW "false" when not (starts_term_op (tok st (i + 1))) -> (Or [], i + 1)
  | LPAREN -> (
      (* could be a parenthesized formula or a parenthesized term starting a
         predicate; try the predicate reading first *)
      match try_parse parse_pred st i with
      | Some (p, i) -> (Pred p, i)
      | None ->
          let f, i = parse_formula st (i + 1) in
          let i = expect st i RPAREN in
          (f, i))
  | _ ->
      let p, i = parse_pred st i in
      (Pred p, i)

and parse_exists st i =
  (* items: bindings, at most one grouping, at most one join annotation *)
  let rec items i bindings grouping join =
    let next i bindings grouping join =
      match tok st i with
      | COMMA -> items (i + 1) bindings grouping join
      | LBRACKET -> (i + 1, bindings, grouping, join)
      | t -> fail "expected ',' or '[', found %s" (token_to_string t)
    in
    match tok st i with
    | KW "gamma" -> (
        let i = expect st (i + 1) UNDERSCORE in
        match tok st i with
        | KW "emptyset" -> next (i + 1) bindings (Some []) join
        | NUMBER (V.Int 0) -> next (i + 1) bindings (Some []) join
        | LBRACE ->
            let rec keys i acc =
              match (tok st i, tok st (i + 1), tok st (i + 2)) with
              | IDENT v, DOT, IDENT a -> (
                  match tok st (i + 3) with
                  | COMMA -> keys (i + 4) (acc @ [ (v, a) ])
                  | RBRACE -> (i + 4, acc @ [ (v, a) ])
                  | t -> fail "expected ',' or '}' in grouping keys, found %s" (token_to_string t))
              | t, _, _ -> fail "expected grouping key, found %s" (token_to_string t)
            in
            let i, ks = keys (i + 1) [] in
            next i bindings (Some ks) join
        | t -> fail "expected grouping keys after gamma_, found %s" (token_to_string t))
    | KW (("inner" | "left" | "full") as kw) when tok st (i + 1) = LPAREN ->
        let jt, i = parse_join_tree st i in
        ignore kw;
        next i bindings grouping (Some jt)
    | IDENT v -> (
        match tok st (i + 1) with
        | KW "in" -> (
            match tok st (i + 2) with
            | IDENT rel -> next (i + 3) (bindings @ [ { var = v; source = Base rel } ]) grouping join
            | LBRACE ->
                let c, i = parse_collection st (i + 2) in
                next i (bindings @ [ { var = v; source = Nested c } ]) grouping join
            | t -> fail "expected relation or collection after 'in', found %s" (token_to_string t))
        | t -> fail "expected 'in' after binding variable, found %s" (token_to_string t))
    | t -> fail "expected binding, grouping, or join annotation; found %s" (token_to_string t)
  in
  let i, bindings, grouping, join = items i [] None None in
  let body, i = parse_formula st i in
  let i = expect st i RBRACKET in
  (Exists { bindings; grouping; join; body }, i)

and parse_join_tree st i =
  match tok st i with
  | KW (("inner" | "left" | "full") as kw) when tok st (i + 1) = LPAREN ->
      let rec args i acc =
        let a, i = parse_join_tree st i in
        match tok st i with
        | COMMA -> args (i + 1) (acc @ [ a ])
        | RPAREN -> (i + 1, acc @ [ a ])
        | t -> fail "expected ',' or ')' in join annotation, found %s" (token_to_string t)
      in
      let i, children = args (i + 2) [] in
      let jt =
        match (kw, children) with
        | "inner", l -> J_inner l
        | "left", [ a; b ] -> J_left (a, b)
        | "full", [ a; b ] -> J_full (a, b)
        | "left", _ | "full", _ -> fail "%s join annotation must be binary" kw
        | _ -> assert false
      in
      (jt, i)
  | IDENT v -> (J_var v, i + 1)
  | NUMBER v -> (J_lit v, i + 1)
  | STRING s -> (J_lit (V.Str s), i + 1)
  | t -> fail "expected join-tree leaf, found %s" (token_to_string t)

(* ---------------- collections, queries, programs ---------------- *)

and parse_collection st i =
  let i = expect st i LBRACE in
  let name, i =
    match tok st i with
    | IDENT n -> (n, i + 1)
    | t -> fail "expected head name, found %s" (token_to_string t)
  in
  let i = expect st i LPAREN in
  let rec attrs i acc =
    match tok st i with
    | RPAREN -> (i + 1, acc)
    | IDENT a -> (
        match tok st (i + 1) with
        | COMMA -> attrs (i + 2) (acc @ [ a ])
        | RPAREN -> (i + 2, acc @ [ a ])
        | t -> fail "expected ',' or ')' in head, found %s" (token_to_string t))
    | t -> fail "expected head attribute, found %s" (token_to_string t)
  in
  let i, head_attrs = attrs i [] in
  let i = expect st i PIPE in
  let body, i = parse_formula st i in
  let i = expect st i RBRACE in
  ({ head = { head_name = name; head_attrs }; body }, i)

let parse_query st i =
  match tok st i with
  | LBRACE ->
      let c, i = parse_collection st i in
      (Coll c, i)
  | _ ->
      let f, i = parse_formula st i in
      (Sentence f, i)

let parse_program st i =
  let rec defs i acc =
    match tok st i with
    | KW "def" ->
        let name, i =
          match tok st (i + 1) with
          | IDENT n -> (n, i + 2)
          | t -> fail "expected definition name, found %s" (token_to_string t)
        in
        let i = expect st i ASSIGN in
        let c, i = parse_collection st i in
        defs i (acc @ [ { def_name = name; def_body = c } ])
    | _ -> (i, acc)
  in
  let i, defs = defs i [] in
  let main, i = parse_query st i in
  ({ defs; main }, i)

let run_parser f input =
  let toks =
    try Lexer.tokenize input
    with Lex_error (msg, off) ->
      raise (Parse_error (Printf.sprintf "lexical error at offset %d: %s" off msg))
  in
  let st = { toks = Array.of_list toks } in
  try
    let v, i = f st 0 in
    if tok st i <> EOF then
      raise
        (Parse_error
           (Printf.sprintf "trailing input at token %d: %s" i
              (token_to_string (tok st i))))
    else v
  with Fail msg -> raise (Parse_error msg)

let query_of_string s = run_parser parse_query s

let collection_of_string s =
  run_parser (fun st i -> parse_collection st i) s

let formula_of_string s = run_parser parse_formula s
let program_of_string s = run_parser parse_program s
