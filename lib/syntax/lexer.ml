module V = Arc_value.Value

type token =
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | PIPE
  | COMMA
  | DOT
  | UNDERSCORE
  | ASSIGN
  | IDENT of string
  | NUMBER of V.t
  | STRING of string
  | KW of string
  | OP of string
  | EOF

exception Lex_error of string * int

let keywords =
  [
    "exists"; "in"; "and"; "or"; "not"; "gamma"; "def"; "is"; "null"; "like";
    "true"; "false"; "inner"; "left"; "full";
  ]

(* Unicode symbols we recognize, as byte sequences *)
let unicode_tokens =
  [
    ("\xe2\x88\x83", KW "exists"); (* ∃ *)
    ("\xe2\x88\x88", KW "in"); (* ∈ *)
    ("\xe2\x88\xa7", KW "and"); (* ∧ *)
    ("\xe2\x88\xa8", KW "or"); (* ∨ *)
    ("\xc2\xac", KW "not"); (* ¬ *)
    ("\xce\xb3", KW "gamma"); (* γ *)
    ("\xe2\x88\x85", KW "emptyset"); (* ∅ *)
    ("\xe2\x89\xa4", OP "<="); (* ≤ *)
    ("\xe2\x89\xa5", OP ">="); (* ≥ *)
    ("\xe2\x89\xa0", OP "<>"); (* ≠ *)
  ]

let tokenize input =
  let n = String.length input in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let pos = ref 0 in
  let peek i = if !pos + i < n then Some input.[!pos + i] else None in
  let starts_with s =
    let l = String.length s in
    !pos + l <= n && String.sub input !pos l = s
  in
  while !pos < n do
    let c = input.[!pos] in
    match c with
    | ' ' | '\t' | '\n' | '\r' -> incr pos
    | '{' ->
        emit LBRACE;
        incr pos
    | '}' ->
        emit RBRACE;
        incr pos
    | '(' ->
        emit LPAREN;
        incr pos
    | ')' ->
        emit RPAREN;
        incr pos
    | '[' ->
        emit LBRACKET;
        incr pos
    | ']' ->
        emit RBRACKET;
        incr pos
    | '|' ->
        emit PIPE;
        incr pos
    | ',' ->
        emit COMMA;
        incr pos
    | '.' ->
        emit DOT;
        incr pos
    | '_' -> (
        (* identifier starting with underscore, or the gamma separator *)
        match peek 1 with
        | Some ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_') ->
            let start = !pos in
            incr pos;
            while
              !pos < n
              && (match input.[!pos] with
                 | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> true
                 | _ -> false)
            do
              incr pos
            done;
            emit (IDENT (String.sub input start (!pos - start)))
        | _ ->
            emit UNDERSCORE;
            incr pos)
    | ':' ->
        if peek 1 = Some '=' then (
          emit ASSIGN;
          pos := !pos + 2)
        else raise (Lex_error ("unexpected ':'", !pos))
    | '=' ->
        emit (OP "=");
        incr pos
    | '<' ->
        if peek 1 = Some '=' then (
          emit (OP "<=");
          pos := !pos + 2)
        else if peek 1 = Some '>' then (
          emit (OP "<>");
          pos := !pos + 2)
        else (
          emit (OP "<");
          incr pos)
    | '>' ->
        if peek 1 = Some '=' then (
          emit (OP ">=");
          pos := !pos + 2)
        else (
          emit (OP ">");
          incr pos)
    | '+' | '-' | '*' | '/' | '%' ->
        emit (OP (String.make 1 c));
        incr pos
    | '\'' ->
        (* embedded quotes double, SQL-style: 'it''s' *)
        let buf = Buffer.create 16 in
        let i = ref (!pos + 1) in
        let fin = ref false in
        while not !fin do
          if !i >= n then raise (Lex_error ("unterminated string", !pos))
          else if input.[!i] <> '\'' then (
            Buffer.add_char buf input.[!i];
            incr i)
          else if !i + 1 < n && input.[!i + 1] = '\'' then (
            Buffer.add_char buf '\'';
            i := !i + 2)
          else (
            fin := true;
            incr i)
        done;
        emit (STRING (Buffer.contents buf));
        pos := !i
    | '"' ->
        (* embedded double quotes double: "a""b" *)
        let buf = Buffer.create 16 in
        let i = ref (!pos + 1) in
        let fin = ref false in
        while not !fin do
          if !i >= n then
            raise (Lex_error ("unterminated quoted identifier", !pos))
          else if input.[!i] <> '"' then (
            Buffer.add_char buf input.[!i];
            incr i)
          else if !i + 1 < n && input.[!i + 1] = '"' then (
            Buffer.add_char buf '"';
            i := !i + 2)
          else (
            fin := true;
            incr i)
        done;
        emit (IDENT (Buffer.contents buf));
        pos := !i
    | '0' .. '9' ->
        let start = !pos in
        let scan_digits () =
          while
            !pos < n && match input.[!pos] with '0' .. '9' -> true | _ -> false
          do
            incr pos
          done
        in
        scan_digits ();
        let is_float = ref false in
        if
          !pos + 1 < n
          && input.[!pos] = '.'
          && match input.[!pos + 1] with '0' .. '9' -> true | _ -> false
        then begin
          is_float := true;
          incr pos;
          scan_digits ()
        end;
        (* exponent: e/E, optional sign, mandatory digits *)
        (match (peek 0, peek 1, peek 2) with
        | Some ('e' | 'E'), Some '0' .. '9', _ ->
            is_float := true;
            incr pos;
            scan_digits ()
        | Some ('e' | 'E'), Some ('+' | '-'), Some ('0' .. '9') ->
            is_float := true;
            pos := !pos + 2;
            scan_digits ()
        | _ -> ());
        if !is_float then begin
          let lit = String.sub input start (!pos - start) in
          match float_of_string_opt lit with
          | Some f -> emit (NUMBER (V.Float f))
          | None ->
              raise
                (Lex_error
                   (Printf.sprintf "invalid numeric literal %S" lit, start))
        end
        else
          let lit = String.sub input start (!pos - start) in
          (match int_of_string_opt lit with
          | Some i -> emit (NUMBER (V.Int i))
          | None ->
              raise
                (Lex_error
                   ( Printf.sprintf "integer literal %S out of range" lit,
                     start )))
    | 'a' .. 'z' | 'A' .. 'Z' | '$' ->
        let start = !pos in
        while
          !pos < n
          && (match input.[!pos] with
             | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> true
             | _ -> false)
        do
          incr pos
        done;
        let word = String.sub input start (!pos - start) in
        let gamma_prefix = "gamma_" in
        let gl = String.length gamma_prefix in
        if List.mem word keywords then emit (KW word)
        else if String.length word >= gl && String.sub word 0 gl = gamma_prefix
        then begin
          (* ASCII grouping operator: gamma_0, gamma_{...} *)
          emit (KW "gamma");
          emit UNDERSCORE;
          let rest = String.sub word gl (String.length word - gl) in
          if rest = "" then ()
          else
            match int_of_string_opt rest with
            | Some i
              when String.for_all
                     (function '0' .. '9' -> true | _ -> false)
                     rest ->
                emit (NUMBER (V.Int i))
            | _ -> emit (IDENT rest)
        end
        else emit (IDENT word)
    | _ -> (
        match
          List.find_opt (fun (s, _) -> starts_with s) unicode_tokens
        with
        | Some (s, t) ->
            emit t;
            pos := !pos + String.length s
        | None ->
            raise
              (Lex_error
                 (Printf.sprintf "unexpected character %C" c, !pos)))
  done;
  List.rev (EOF :: !toks)

let token_to_string = function
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | PIPE -> "|"
  | COMMA -> ","
  | DOT -> "."
  | UNDERSCORE -> "_"
  | ASSIGN -> ":="
  | IDENT s -> "ident " ^ s
  | NUMBER v -> "number " ^ V.to_string v
  | STRING s -> "string '" ^ s ^ "'"
  | KW s -> s
  | OP s -> s
  | EOF -> "<eof>"
