(** The ARC evaluation engine.

    Executes the paper's {e conceptual evaluation strategy} (Section 2.3)
    literally: quantifier scopes enumerate their bindings as nested loops
    (later bindings — including correlated nested comprehensions — see
    earlier ones, giving lateral-join semantics, Section 2.4); join
    annotations drive outer joins with NULL padding (Section 2.11); a
    grouping operator partitions the enumerated scope rows and evaluates all
    aggregation predicates of the scope over each group (Section 2.5);
    definition environments are computed bottom-up with least-fixed-point
    semantics for recursive definitions (Section 2.9); external and abstract
    relations are resolved through access patterns (Section 2.13).

    Everything is interpreted under a {!Arc_value.Conventions.t} value —
    set vs bag, 2- vs 3-valued logic, and aggregate-on-empty are switches,
    not language features (Sections 2.6, 2.7).

    Evaluation runs under a resource governor ({!Arc_guard.Gov.t}): the
    engine probes it at the same operator boundaries the tracer instruments,
    so wall-clock deadlines, row/binding/depth caps, and cooperative
    cancellation are honored within one operator step. The default guard is
    seed-equivalent — only the 100k fixpoint-iteration cap — and costs the
    hot paths nothing. *)

open Arc_core.Ast

exception Eval_error of Arc_guard.Error.t
(** Structured evaluation failure. The payload's [context] field carries the
    ["in collection %S"] chain (outermost first);
    {!Arc_guard.Error.to_string} renders exactly the historical string
    messages. *)

val error_to_string : Arc_guard.Error.t -> string
(** Alias of {!Arc_guard.Error.to_string}. *)

type recursion_strategy =
  | Naive  (** re-derive everything each round *)
  | Seminaive
      (** re-derive only through last round's new tuples (the default);
          identical results, asymptotically fewer re-derivations *)

type outcome =
  | Rows of Arc_relation.Relation.t
  | Truth of Arc_value.Bool3.t  (** For [Sentence] queries (Fig 9). *)

val run :
  ?conv:Arc_value.Conventions.t ->
  ?externals:Externals.impl list ->
  ?strategy:recursion_strategy ->
  ?tracer:Arc_obs.Obs.t ->
  ?guard:Arc_guard.Gov.t ->
  db:Arc_relation.Database.t ->
  program ->
  outcome
(** Evaluates a program: computes safe (intensional) definitions bottom-up —
    recursive ones by least fixed point under set semantics, with a
    stratification check — registers unsafe (abstract) definitions for
    in-context membership resolution, then evaluates the main query.
    Defaults: [conv = Conventions.sql_set], [externals = Externals.standard].

    [tracer] (default {!Arc_obs.Obs.null}, a no-op) receives a span per
    evaluated operator: [collection:<name>] (attr [rows_emitted]), [scope]
    ([bindings], [deferred], [rows_out], [tuples_scanned]), [join]
    ([candidates], [survivors], [rows_out]), [deferred] ([resolutions]),
    [group] ([rows_in], [keys], [buckets]), and per-stratum
    [fixpoint:naive] / [fixpoint:seminaive] spans whose [iteration]
    children carry [delta:<relation>] sizes. Tracing never changes
    results.

    [guard] (default {!Arc_guard.Gov.default}, seed-equivalent) enforces
    the budget it was built with. Under [`Fail] a crossed limit raises
    {!Eval_error} with [Budget_exceeded]; under [`Truncate] evaluation
    completes with a partial result and [Arc_guard.Gov.report] describes
    what was clipped. Note a governor is single-use: it carries mutable
    counters and its deadline starts at {!Arc_guard.Gov.make}, so build a
    fresh one per [run].

    Raises {!Eval_error} on unstratifiable recursion, unresolvable
    external/abstract bindings, head attributes without assignment
    predicates, exhausted budgets, cancellation, or external-relation
    failure; the payload carries an ["in collection"] context chain naming
    the definition being evaluated. *)

val run_rows :
  ?conv:Arc_value.Conventions.t ->
  ?externals:Externals.impl list ->
  ?strategy:recursion_strategy ->
  ?tracer:Arc_obs.Obs.t ->
  ?guard:Arc_guard.Gov.t ->
  db:Arc_relation.Database.t ->
  program ->
  Arc_relation.Relation.t
(** Like {!run} but expects a collection result; raises {!Eval_error} on a
    sentence. *)

val run_truth :
  ?conv:Arc_value.Conventions.t ->
  ?externals:Externals.impl list ->
  ?strategy:recursion_strategy ->
  ?tracer:Arc_obs.Obs.t ->
  ?guard:Arc_guard.Gov.t ->
  db:Arc_relation.Database.t ->
  program ->
  Arc_value.Bool3.t

val eval_collection_standalone :
  ?conv:Arc_value.Conventions.t ->
  ?externals:Externals.impl list ->
  ?tracer:Arc_obs.Obs.t ->
  ?guard:Arc_guard.Gov.t ->
  db:Arc_relation.Database.t ->
  collection ->
  Arc_relation.Relation.t
(** Evaluates a single collection with no definition environment. *)

(** Hooks for the physical plan executor ({!Arc_engine.Exec}).

    The plan engine replaces the {e enumeration} strategy (nested loops →
    hash operators) but deliberately shares every {e semantic} primitive
    with this reference evaluator — term/predicate/formula evaluation,
    group-aware evaluation, deferred external/abstract resolution, and the
    collection fallback — so the two engines can only diverge in what they
    enumerate, never in what a row means. Not part of the stable API. *)
module Internal : sig
  type ctx
  type benv = (var * Arc_relation.Tuple.t) list

  val prepare :
    ?conv:Arc_value.Conventions.t ->
    ?externals:Externals.impl list ->
    ?strategy:recursion_strategy ->
    ?tracer:Arc_obs.Obs.t ->
    ?guard:Arc_guard.Gov.t ->
    db:Arc_relation.Database.t ->
    program ->
    ctx * definition list
  (** Validates safety, registers abstract definitions, and returns the
      context with an {e empty} IDB plus the safe definitions the caller
      must materialize (in dependency order). *)

  val conv : ctx -> Arc_value.Conventions.t
  val strategy : ctx -> recursion_strategy
  val tracer : ctx -> Arc_obs.Obs.t
  val gov : ctx -> Arc_guard.Gov.t
  val db : ctx -> Arc_relation.Database.t
  val idb_set : ctx -> rel_name -> Arc_relation.Relation.t -> unit
  val idb_get : ctx -> rel_name -> Arc_relation.Relation.t option
  val idb_remove : ctx -> rel_name -> unit
  val eval_term : ctx -> benv -> term -> Arc_value.Value.t

  val eval_gterm :
    ctx -> rep:benv -> group:benv list -> scope_vars:var list -> term ->
    Arc_value.Value.t

  val eval_pred : ctx -> benv -> pred -> Arc_value.Bool3.t

  val eval_pred_values :
    ctx -> pred -> Arc_value.Value.t list -> Arc_value.Bool3.t

  val eval_formula : ctx -> benv -> formula -> Arc_value.Bool3.t

  val eval_gformula :
    ctx -> rep:benv -> group:benv list -> scope_vars:var list -> formula ->
    Arc_value.Bool3.t

  val eval_collection : ctx -> benv -> collection -> Arc_relation.Relation.t
  (** The reference pipeline for one collection — the plan engine's
      fallback for join-annotated scopes. *)

  val source_rows : ctx -> benv -> source -> Arc_relation.Tuple.t list
  (** Governed scan (ticks, charges bindings, counts [tuples_scanned]). *)

  val resolve_deferred :
    ctx -> benv -> scope -> benv list -> binding list -> benv list
  (** Resolves external/abstract bindings from seed equations found in the
      scope body (which must be the {e pre-extraction} body). *)

  val take : int -> 'a list -> 'a list
  (** Governed truncation helper. *)
end
