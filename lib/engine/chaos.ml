module Value = Arc_value.Value

type fault =
  | Fail_every of int
  | Fail_once
  | Fail_prob of float
  | Latency of int

type stats = { mutable calls : int; mutable failures : int }

let stats () = { calls = 0; failures = 0 }

let boom relation =
  raise
    (Externals.External_error { relation; cause = "injected chaos fault" })

let wrap ?(seed = 42) ?(sleep = fun _ -> ()) ?stats:st fault
    (impl : Externals.impl) =
  let relation = Externals.name impl in
  let rng = Random.State.make [| seed |] in
  let calls = ref 0 in
  let record_failure () =
    match st with Some s -> s.failures <- s.failures + 1 | None -> ()
  in
  let complete bound =
    incr calls;
    (match st with Some s -> s.calls <- s.calls + 1 | None -> ());
    (match fault with
    | Fail_every n when n > 0 && !calls mod n = 0 ->
        record_failure ();
        boom relation
    | Fail_every _ -> ()
    | Fail_once ->
        if !calls = 1 then begin
          record_failure ();
          boom relation
        end
    | Fail_prob p ->
        if Random.State.float rng 1.0 < p then begin
          record_failure ();
          boom relation
        end
    | Latency ns -> sleep ns);
    impl.Externals.complete bound
  in
  { impl with Externals.complete }

let wrap_all ?seed ?sleep ?stats fault impls =
  List.map (wrap ?seed ?sleep ?stats fault) impls
