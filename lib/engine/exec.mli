(** Physical plan executor: runs the {!Arc_plan} IR with hash-based join,
    semi/anti-join, aggregation and deduplication operators. Per-row
    semantics (terms, predicates, residual formulas, deferred resolution,
    and the reference fallback) are shared with {!Eval} via its internals,
    so the two engines can only differ in what they enumerate — which is
    exactly what the differential tests check. *)

open Arc_core.Ast

val compile :
  ?conv:Arc_value.Conventions.t ->
  ?externals:Externals.impl list ->
  ?strategy:Eval.recursion_strategy ->
  ?tracer:Arc_obs.Obs.t ->
  ?guard:Arc_guard.Gov.t ->
  db:Arc_relation.Database.t ->
  program ->
  Eval.Internal.ctx * Arc_plan.Ir.program_plan * Arc_plan.Ir.program_plan
  * (string * bool) list
(** [compile ~db prog] validates and lowers [prog], returning the prepared
    evaluation context, the raw lowered plan, the optimized plan, and the
    rewrite report (pass name, whether it changed the plan). *)

val exec_program :
  ?stats:Arc_plan.Ir.stats ->
  ?batched:bool ->
  ?fixpoint:[ `Indexed | `Tuple ] ->
  Eval.Internal.ctx ->
  Arc_plan.Ir.program_plan ->
  Eval.outcome
(** Execute a compiled plan: materializes definition strata into the
    context's IDB (hash-based naive or seminaive fixpoints for recursive
    strata), then runs the main plan. Raises {!Eval.Eval_error} like the
    reference evaluator.

    [batched] (default [true]) selects the block-at-a-time pipeline:
    operators work on row arrays with amortized governor probes,
    buffer-reused (or memoized whole-tuple) hash keys, and constant-time
    group appends. Both paths emit the same rows in the same order;
    [batched:false] is the tuple-at-a-time baseline kept for ablation.

    [fixpoint] (default [`Indexed]) selects the seminaive fixpoint
    implementation for recursive strata: [`Indexed] runs one delta rule
    per component-scan occurrence on the batched pipeline with
    persistent caches — hash-join build tables and component-free
    subtree results survive across rounds, and a seen-set of canonical
    tuple keys replaces per-round dedup/diff — while [`Tuple] is the
    legacy per-occurrence whole-plan re-execution kept as the ablation
    baseline (BENCH_9). Both produce identical relations and trip
    governor budgets at the same rounds.

    When [stats] is given, every operator additionally records per-node
    actuals (invocations, rows emitted, inclusive wall-clock, hash
    build/probe/match counts, fixpoint iterations and delta sizes) into
    it, keyed by the stable node ids of {!Arc_plan.Ir.program_ids} — the
    raw material for [arc analyze] (see
    {!Arc_plan.Explain.analyze_to_string}). *)

val export_stats :
  Arc_obs.Metrics.t ->
  Arc_plan.Ir.program_plan ->
  Arc_plan.Ir.stats ->
  unit
(** Aggregate a run's per-node actuals into operator-level metrics
    series ([arc_node_invocations_total], [arc_node_rows_total],
    [arc_node_excl_ns], [arc_node_rows], [arc_node_q_error], all labeled
    by [op]). *)

(** {1 Incremental-maintenance hooks}

    Raw operator entry points for {!Arc_ivm}: execute a bare pipeline, a
    collection plan, or one definition stratum against an explicit
    context (stats off). The pipeline form returns binding environments —
    derivations before projection/deduplication — which is what counting-
    based maintenance needs. *)

val exec_pipeline :
  Eval.Internal.ctx ->
  ?outer:Eval.Internal.benv ->
  Arc_plan.Ir.t ->
  Eval.Internal.benv list

val exec_collection :
  Eval.Internal.ctx -> Arc_plan.Ir.coll_plan -> Arc_relation.Relation.t

val exec_stratum_plan : Eval.Internal.ctx -> Arc_plan.Ir.stratum -> unit
(** Materializes the stratum's definitions into the context's IDB,
    running a hash fixpoint for recursive strata (with the same
    stratification check as {!exec_program}). *)

val run :
  ?conv:Arc_value.Conventions.t ->
  ?externals:Externals.impl list ->
  ?strategy:Eval.recursion_strategy ->
  ?tracer:Arc_obs.Obs.t ->
  ?guard:Arc_guard.Gov.t ->
  ?batched:bool ->
  ?fixpoint:[ `Indexed | `Tuple ] ->
  db:Arc_relation.Database.t ->
  program ->
  Eval.outcome
(** Drop-in replacement for {!Eval.run} using the plan engine. *)

val run_rows :
  ?conv:Arc_value.Conventions.t ->
  ?externals:Externals.impl list ->
  ?strategy:Eval.recursion_strategy ->
  ?tracer:Arc_obs.Obs.t ->
  ?guard:Arc_guard.Gov.t ->
  ?batched:bool ->
  ?fixpoint:[ `Indexed | `Tuple ] ->
  db:Arc_relation.Database.t ->
  program ->
  Arc_relation.Relation.t

val run_truth :
  ?conv:Arc_value.Conventions.t ->
  ?externals:Externals.impl list ->
  ?strategy:Eval.recursion_strategy ->
  ?tracer:Arc_obs.Obs.t ->
  ?guard:Arc_guard.Gov.t ->
  ?batched:bool ->
  ?fixpoint:[ `Indexed | `Tuple ] ->
  db:Arc_relation.Database.t ->
  program ->
  Arc_value.Bool3.t
