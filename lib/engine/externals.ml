module Value = Arc_value.Value
module External = Arc_core.External

type impl = {
  decl : External.decl;
  complete : (string * Value.t) list -> (string * Value.t) list list option;
}

exception External_error of { relation : string; cause : string }

let name impl = impl.decl.External.ext_name

let with_retry ?(attempts = 3) ?(backoff_ns = 1_000_000) ?(sleep = fun _ -> ())
    impl =
  if attempts < 1 then invalid_arg "Externals.with_retry: attempts < 1";
  let complete bound =
    let rec go k last_cause =
      if k > attempts then
        raise
          (Arc_guard.Error.Guard_error
             (Arc_guard.Error.make
                (Arc_guard.Error.External_failure
                   { relation = name impl; attempts; cause = last_cause })))
      else
        match impl.complete bound with
        | result -> result
        | exception External_error { cause; _ } ->
            if k < attempts then sleep (backoff_ns * (1 lsl (k - 1)));
            go (k + 1) cause
    in
    go 1 ""
  in
  { impl with complete }

let get bound a = List.assoc_opt a bound

let arithmetic name f ~inverse_left ~inverse_right =
  let decl = External.arithmetic name in
  let complete bound =
    match (get bound "left", get bound "right", get bound "out") with
    | Some l, Some r, Some o ->
        Some
          (if Value.equal (f l r) o then
             [ [ ("left", l); ("right", r); ("out", o) ] ]
           else [])
    | Some l, Some r, None ->
        Some [ [ ("left", l); ("right", r); ("out", f l r) ] ]
    | Some l, None, Some o ->
        Some [ [ ("left", l); ("right", inverse_right o l); ("out", o) ] ]
    | None, Some r, Some o ->
        Some [ [ ("left", inverse_left o r); ("right", r); ("out", o) ] ]
    | _ -> None
  in
  { decl; complete }

let product_style name f =
  let decl = External.product_style name in
  let complete bound =
    match (get bound "$1", get bound "$2", get bound "out") with
    | Some a, Some b, Some o ->
        Some
          (if Value.equal (f a b) o then
             [ [ ("$1", a); ("$2", b); ("out", o) ] ]
           else [])
    | Some a, Some b, None -> Some [ [ ("$1", a); ("$2", b); ("out", f a b) ] ]
    | _ -> None
  in
  { decl; complete }

let comparison name f =
  let decl = External.comparison name in
  let complete bound =
    match (get bound "left", get bound "right") with
    | Some l, Some r ->
        Some (if f l r then [ [ ("left", l); ("right", r) ] ] else [])
    | _ -> None
  in
  { decl; complete }

let bigger l r = match Value.cmp3 l r with Some c -> c > 0 | None -> false

let standard =
  [
    arithmetic "Minus" Value.sub
      ~inverse_left:(fun out right -> Value.add out right)
      ~inverse_right:(fun out left -> Value.sub left out);
    arithmetic "Add" Value.add
      ~inverse_left:(fun out right -> Value.sub out right)
      ~inverse_right:(fun out left -> Value.sub out left);
    arithmetic "-" Value.sub
      ~inverse_left:(fun out right -> Value.add out right)
      ~inverse_right:(fun out left -> Value.sub left out);
    arithmetic "+" Value.add
      ~inverse_left:(fun out right -> Value.sub out right)
      ~inverse_right:(fun out left -> Value.sub out left);
    product_style "*" Value.mul;
    comparison "Bigger" bigger;
    comparison ">" bigger;
  ]

let find impls name = List.find_opt (fun i -> i.decl.External.ext_name = name) impls

let decls impls = List.map (fun i -> i.decl) impls
