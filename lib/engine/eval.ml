open Arc_core.Ast
module V = Arc_value.Value
module B3 = Arc_value.Bool3
module Conventions = Arc_value.Conventions
module Aggregate = Arc_value.Aggregate
module Relation = Arc_relation.Relation
module Tuple = Arc_relation.Tuple
module Schema = Arc_relation.Schema
module Database = Arc_relation.Database
module Analysis = Arc_core.Analysis
module External = Arc_core.External
module Obs = Arc_obs.Obs
module Gov = Arc_guard.Gov
module Err = Arc_guard.Error

exception Eval_error of Err.t

let raise_kind kind = raise (Eval_error (Err.make kind))
let fail fmt = Printf.ksprintf (fun s -> raise_kind (Err.Msg s)) fmt
let error_to_string = Err.to_string

type outcome = Rows of Relation.t | Truth of B3.t

type recursion_strategy = Naive | Seminaive

type ctx = {
  conv : Conventions.t;
  strategy : recursion_strategy;
  db : Database.t;
  idb : (string, Relation.t) Hashtbl.t;
  abstracts : (string * collection) list;
  externals : Externals.impl list;
  (* Bindings for the head attributes of the abstract relation currently
     being membership-tested (Section 2.13.2). *)
  params : ((var * attr) * V.t) list;
  (* Singleton relations for literal join-tree leaves of the scope being
     evaluated (Fig 12). *)
  lits : (var * Tuple.t) list;
  (* Trace/metrics tracer (Arc_obs); Obs.null makes every probe a no-op. *)
  tracer : Obs.t;
  (* Resource governor (Arc_guard); probed at the same operator boundaries
     the tracer instruments. Gov.default reproduces seed behavior. *)
  gov : Gov.t;
}

type benv = (var * Tuple.t) list

(* ------------------------------------------------------------------ *)
(* Terms                                                               *)
(* ------------------------------------------------------------------ *)

let scalar_apply op args =
  match (op, args) with
  | Add, [ a; b ] -> V.add a b
  | Sub, [ a; b ] -> V.sub a b
  | Mul, [ a; b ] -> V.mul a b
  | Div, [ a; b ] -> V.div a b
  | Mod, [ a; b ] -> V.modulo a b
  | Neg, [ a ] -> V.neg a
  | _ -> fail "malformed scalar application"

let rec eval_term ctx (benv : benv) = function
  | Const c -> c
  | Attr (v, a) -> (
      match List.assoc_opt v benv with
      | Some tp -> (
          try Tuple.get tp a
          with Schema.Unknown_attribute _ ->
            fail "variable %S has no attribute %S" v a)
      | None -> (
          match List.assoc_opt (v, a) ctx.params with
          | Some value -> value
          | None -> fail "unbound variable %S (attribute %S)" v a))
  | Scalar (op, ts) -> scalar_apply op (List.map (eval_term ctx benv) ts)
  | Agg (k, _) ->
      fail "aggregate %s outside a grouping evaluation"
        (Aggregate.kind_to_string k)

(* Group-aware term evaluation (Section 2.5): aggregates accumulate the
   inner term over every row of the group; other subterms are evaluated
   under the representative environment (grouping keys and outer references
   are constant within a group). When the group is empty (γ∅ over zero
   rows), references to scope variables evaluate to NULL. *)
let rec eval_gterm ctx ~rep ~group ~scope_vars t =
  match t with
  | Const c -> c
  | Attr (v, _) when group = [] && List.mem v scope_vars -> V.Null
  | Attr _ -> eval_term ctx rep t
  | Scalar (op, ts) ->
      scalar_apply op (List.map (eval_gterm ctx ~rep ~group ~scope_vars) ts)
  | Agg (k, inner) ->
      let values = List.map (fun be -> eval_term ctx be inner) group in
      Aggregate.apply ctx.conv.Conventions.agg_empty k values

(* ------------------------------------------------------------------ *)
(* Predicates                                                          *)
(* ------------------------------------------------------------------ *)

let test_cmp op c =
  match op with
  | Eq -> c = 0
  | Neq -> c <> 0
  | Lt -> c < 0
  | Leq -> c <= 0
  | Gt -> c > 0
  | Geq -> c >= 0

let cmp_values ctx op vl vr =
  match ctx.conv.Conventions.null_logic with
  | Conventions.Three_valued -> (
      match V.cmp3 vl vr with
      | None -> B3.Unknown
      | Some c -> B3.of_bool (test_cmp op c))
  | Conventions.Two_valued -> B3.of_bool (test_cmp op (V.compare vl vr))

let eval_pred_values ctx p vals =
  match (p, vals) with
  | Cmp (op, _, _), [ vl; vr ] -> cmp_values ctx op vl vr
  | Is_null _, [ v ] -> B3.of_bool (V.is_null v)
  | Not_null _, [ v ] -> B3.of_bool (not (V.is_null v))
  | Like (_, pat), [ v ] -> (
      match V.like v pat with
      | Some b -> B3.of_bool b
      | None -> (
          match ctx.conv.Conventions.null_logic with
          | Conventions.Three_valued -> B3.Unknown
          | Conventions.Two_valued -> B3.False))
  | _ -> fail "malformed predicate"

let eval_pred ctx benv p =
  eval_pred_values ctx p (List.map (eval_term ctx benv) (pred_terms p))

(* ------------------------------------------------------------------ *)
(* Literal join-tree leaves (Fig 12)                                   *)
(* ------------------------------------------------------------------ *)

(* The pure decomposition (which comparison each literal consumes, how the
   tree is rewritten) lives in [Analysis.prepare_join_literals], shared
   with the plan lowering; this wrapper only materializes the singleton
   tuples the evaluator binds. *)
let prepare_literals (scope : scope) =
  let scope', lits = Analysis.prepare_join_literals scope in
  ( scope',
    List.map
      (fun (v, c) ->
        let schema = Schema.make [ "val" ] in
        (v, Tuple.make schema [| c |]))
      lits )

(* ------------------------------------------------------------------ *)
(* Scope enumeration                                                   *)
(* ------------------------------------------------------------------ *)

(* keep the first [n] elements — governed truncation clips enumerations *)
let take n l =
  if n <= 0 then []
  else
    let rec go k = function
      | [] -> []
      | x :: rest -> if k = 0 then [] else x :: go (k - 1) rest
    in
    go n l

let rec source_rows ctx benv src =
  Gov.tick ctx.gov;
  let rows = source_rows_raw ctx benv src in
  if Obs.enabled ctx.tracer then
    Obs.count ctx.tracer "tuples_scanned" (List.length rows);
  if not (Gov.active ctx.gov) then rows
  else
    let n = List.length rows in
    let allowed = Gov.charge_bindings ctx.gov n in
    if allowed >= n then rows else take allowed rows

and source_rows_raw ctx benv = function
  | Base name -> (
      (* under set semantics, stored relations are interpreted as sets:
         duplicates in the physical bag collapse (paper, Section 2.7 and
         footnote 4 — inputs are sets, so the full join is a set) *)
      let interp r =
        match ctx.conv.Conventions.collection with
        | Conventions.Set -> Relation.tuples (Relation.dedup r)
        | Conventions.Bag -> Relation.tuples r
      in
      match List.assoc_opt name ctx.lits with
      | Some tp -> [ tp ]
      | None -> (
          match Hashtbl.find_opt ctx.idb name with
          | Some r -> Relation.tuples r (* IDB relations are already sets *)
          | None -> (
              match Database.find_opt ctx.db name with
              | Some r -> interp r
              | None ->
                  fail "relation %S is not finite (external or abstract)" name)))
  | Nested c -> Relation.tuples (eval_collection ctx benv c)

and source_is_finite ctx = function
  | Nested _ -> true
  | Base name ->
      List.mem_assoc name ctx.lits
      || Hashtbl.mem ctx.idb name
      || Database.mem ctx.db name

and source_schema ctx = function
  | Base name -> (
      match List.assoc_opt name ctx.lits with
      | Some tp -> Schema.attrs (Tuple.schema tp)
      | None -> (
          match Hashtbl.find_opt ctx.idb name with
          | Some r -> Schema.attrs (Relation.schema r)
          | None -> (
              match Database.find_opt ctx.db name with
              | Some r -> Schema.attrs (Relation.schema r)
              | None -> fail "cannot determine schema of %S" name)))
  | Nested c -> c.head.head_attrs

(* --- join-annotation trees ----------------------------------------- *)

(* The ON/WHERE split and condition-to-node attachment are shared with the
   plan lowering through [Analysis] (split_join_conditions, smallest_cover,
   node_join_preds), so both engines decompose an annotated scope
   identically. *)
and split_join_conditions ~heads (scope : scope) =
  Analysis.split_join_conditions ~heads scope

and enum_join_tree ctx benv (scope : scope) ~attached : benv list =
  Gov.tick ctx.gov;
  let sp = Obs.enter ctx.tracer "join" in
  let tree = Option.get scope.join in
  let node_preds node = Analysis.node_join_preds tree scope ~attached node in
  let binding_of v =
    match List.find_opt (fun b -> b.var = v) scope.bindings with
    | Some b -> b
    | None -> fail "join annotation references unbound variable %S" v
  in
  let null_row_of_var v =
    let attrs = source_schema ctx (binding_of v).source in
    let schema = Schema.make attrs in
    Tuple.make schema (Array.make (List.length attrs) V.Null)
  in
  let null_pad node : benv =
    List.map (fun v -> (v, null_row_of_var v)) (join_tree_vars node)
  in
  let check preds (row : benv) =
    List.for_all (fun p -> eval_pred ctx (row @ benv) p = B3.True) preds
  in
  let rec eval node : benv list =
    let mine = node_preds node in
    match node with
    | J_var v ->
        let rows =
          List.map
            (fun tp -> [ (v, tp) ])
            (source_rows ctx benv (binding_of v).source)
        in
        let kept = List.filter (check mine) rows in
        if Obs.enabled ctx.tracer then begin
          Obs.add sp "candidates" (List.length rows);
          Obs.add sp "survivors" (List.length kept)
        end;
        kept
    | J_lit _ -> fail "unexpanded literal leaf"
    | J_inner l ->
        let rows =
          List.fold_left
            (fun acc child ->
              let crows = eval child in
              List.concat_map (fun r -> List.map (fun c -> r @ c) crows) acc)
            [ [] ] l
        in
        let kept = List.filter (check mine) rows in
        if Obs.enabled ctx.tracer then begin
          Obs.add sp "candidates" (List.length rows);
          Obs.add sp "survivors" (List.length kept)
        end;
        kept
    | J_left (a, b) ->
        let ra = eval a and rb = eval b in
        List.concat_map
          (fun x ->
            let matches =
              List.filter_map
                (fun y ->
                  let row = x @ y in
                  if check mine row then Some row else None)
                rb
            in
            if matches = [] then [ x @ null_pad b ] else matches)
          ra
    | J_full (a, b) ->
        let ra = eval a and rb = eval b in
        let matched_b = Hashtbl.create 16 in
        let left_part =
          List.concat_map
            (fun x ->
              let matches =
                List.concat
                  (List.mapi
                     (fun i y ->
                       let row = x @ y in
                       if check mine row then (
                         Hashtbl.replace matched_b i ();
                         [ row ])
                       else [])
                     rb)
              in
              if matches = [] then [ x @ null_pad b ] else matches)
            ra
        in
        let right_part =
          List.concat
            (List.mapi
               (fun i y -> if Hashtbl.mem matched_b i then [] else [ null_pad a @ y ])
               rb)
        in
        left_part @ right_part
  in
  let tree_rows = eval tree in
  (* bindings not mentioned in the tree are implicit inner factors,
     evaluated laterally after the tree *)
  let missing =
    List.filter
      (fun b ->
        source_is_finite ctx b.source
        && not (List.mem b.var (join_tree_vars tree)))
      scope.bindings
  in
  let out =
    List.concat_map
      (fun r ->
        List.fold_left
          (fun acc b ->
            List.concat_map
              (fun (row : benv) ->
                List.map
                  (fun tp -> (b.var, tp) :: row)
                  (source_rows ctx (row @ benv) b.source))
              acc)
          [ r ] missing)
      tree_rows
  in
  if Obs.enabled ctx.tracer then Obs.set sp "rows_out" (Obs.Int (List.length out));
  Obs.leave ctx.tracer sp;
  out

(* --- deferred (external / abstract) bindings ------------------------ *)

and resolve_deferred ctx benv (scope : scope) rows deferred : benv list =
  if deferred = [] then rows
  else begin
    let sp = Obs.enter ctx.tracer "deferred" in
    let out = resolve_deferred_raw ctx benv scope rows deferred in
    if Obs.enabled ctx.tracer then begin
      Obs.set sp "bindings" (Obs.Int (List.length deferred));
      Obs.set sp "rows_in" (Obs.Int (List.length rows));
      Obs.set sp "resolutions" (Obs.Int (List.length out))
    end;
    Obs.leave ctx.tracer sp;
    out
  end

and resolve_deferred_raw ctx benv (scope : scope) rows deferred : benv list =
  let conjs = conjuncts scope.body in
  List.fold_left
    (fun rows b ->
      let name =
        match b.source with Base n -> n | Nested _ -> assert false
      in
      List.concat_map
        (fun (row : benv) ->
          (* seed equations x.attr = term, term evaluable now *)
          let seed_of = function
            | Pred (Cmp (Eq, Attr (v, a), t)) when v = b.var -> Some (a, t)
            | Pred (Cmp (Eq, t, Attr (v, a))) when v = b.var -> Some (a, t)
            | _ -> None
          in
          let seeds =
            List.filter_map
              (fun f ->
                match seed_of f with
                | Some (a, t)
                  when (not (term_has_agg t))
                       && List.for_all (fun (v', _) -> v' <> b.var) (term_vars t)
                  -> (
                    try Some (a, eval_term ctx (row @ benv) t)
                    with Eval_error _ -> None)
                | _ -> None)
              conjs
          in
          let seeds =
            List.fold_left
              (fun acc (a, v) ->
                if List.mem_assoc a acc then acc else (a, v) :: acc)
              [] seeds
            |> List.rev
          in
          match Externals.find ctx.externals name with
          | Some impl -> (
              let completed =
                try impl.Externals.complete seeds
                with Externals.External_error { relation; cause } ->
                  raise_kind
                    (Err.External_failure { relation; attempts = 1; cause })
              in
              match completed with
              | Some assignments ->
                  let attrs = impl.Externals.decl.External.ext_attrs in
                  let schema = Schema.make attrs in
                  List.map
                    (fun assignment ->
                      let tp =
                        Tuple.make schema
                          (Array.of_list
                             (List.map (fun a -> List.assoc a assignment) attrs))
                      in
                      ((b.var, tp) :: row : benv))
                    assignments
              | None ->
                  raise_kind
                    (Err.Unbound_external
                       { relation = name; bound = List.map fst seeds }))
          | None -> (
              match List.assoc_opt name ctx.abstracts with
              | Some def ->
                  let attrs = def.head.head_attrs in
                  if List.for_all (fun a -> List.mem_assoc a seeds) attrs then
                    let params =
                      List.map
                        (fun a ->
                          ((def.head.head_name, a), List.assoc a seeds))
                        attrs
                    in
                    let ctx' = { ctx with params = params @ ctx.params } in
                    if eval_formula ctx' (row @ benv) def.body = B3.True then
                      let schema = Schema.make attrs in
                      let tp =
                        Tuple.make schema
                          (Array.of_list
                             (List.map (fun a -> List.assoc a seeds) attrs))
                      in
                      [ ((b.var, tp) :: row : benv) ]
                    else []
                  else
                    raise_kind
                      (Err.Unbound_abstract
                         { relation = name; bound = List.map fst seeds })
              | None -> raise_kind (Err.Unknown_relation name)))
        rows)
    rows deferred

(* --- full scope pipeline -------------------------------------------- *)

(* Returns the residual scope (literal leaves expanded, attached join
   conditions removed from the body) together with the enumerated rows,
   each extending [benv]. *)
and enum_scope ctx benv (scope : scope) ~heads : scope * benv list =
  Gov.tick ctx.gov;
  let sp = Obs.enter ctx.tracer "scope" in
  let scope, lit_rows = prepare_literals scope in
  let ctx = { ctx with lits = lit_rows @ ctx.lits } in
  let deferred =
    List.filter (fun b -> not (source_is_finite ctx b.source)) scope.bindings
  in
  let residual_scope, rows =
    match scope.join with
    | Some _ ->
        let attached, residual = split_join_conditions ~heads scope in
        let rows = enum_join_tree ctx benv scope ~attached in
        ({ scope with body = And residual }, rows)
    | None ->
        let rows =
          List.fold_left
            (fun acc b ->
              if not (source_is_finite ctx b.source) then acc
              else
                List.concat_map
                  (fun (row : benv) ->
                    List.map
                      (fun tp -> (b.var, tp) :: row)
                      (source_rows ctx (row @ benv) b.source))
                  acc)
            [ ([] : benv) ]
            scope.bindings
        in
        (scope, rows)
  in
  let out = resolve_deferred ctx benv scope rows deferred in
  if Obs.enabled ctx.tracer then begin
    Obs.set sp "bindings" (Obs.Int (List.length scope.bindings));
    Obs.set sp "deferred" (Obs.Int (List.length deferred));
    Obs.set sp "rows_out" (Obs.Int (List.length out))
  end;
  Obs.leave ctx.tracer sp;
  (residual_scope, out)

(* ------------------------------------------------------------------ *)
(* Formula evaluation (boolean contexts)                               *)
(* ------------------------------------------------------------------ *)

and eval_formula ctx benv f : B3.t =
  match f with
  | True -> B3.True
  | Pred p -> eval_pred ctx benv p
  | And fs -> B3.and_list (List.map (eval_formula ctx benv) fs)
  | Or fs -> B3.or_list (List.map (eval_formula ctx benv) fs)
  | Not f -> B3.not_ (eval_formula ctx benv f)
  | Exists scope -> eval_scope_bool ctx benv scope

and eval_scope_bool ctx benv scope : B3.t =
  let scope, rows = enum_scope ctx benv scope ~heads:[] in
  match scope.grouping with
  | None ->
      B3.of_bool
        (List.exists
           (fun (row : benv) ->
             eval_formula ctx (row @ benv) scope.body = B3.True)
           rows)
  | Some keys ->
      let scope_vars = List.map (fun b -> b.var) scope.bindings in
      let pre, post =
        List.partition
          (fun f -> not (formula_has_agg f))
          (conjuncts scope.body)
      in
      let groups = group_rows ctx benv keys pre rows in
      B3.of_bool
        (List.exists
           (fun (rep, group) ->
             List.for_all
               (fun f ->
                 eval_gformula ctx ~rep ~group ~scope_vars f = B3.True)
               post)
           groups)

(* Filters rows by the pre-aggregation conditions and partitions them by
   the grouping keys. Each group carries a representative environment
   (the outer environment when the γ∅ group is empty). Rows in groups are
   full environments (row @ benv). *)
and group_rows ctx benv keys pre rows : (benv * benv list) list =
  Gov.tick ctx.gov;
  let sp = Obs.enter ctx.tracer "group" in
  let groups = group_rows_raw ctx benv keys pre rows in
  if Obs.enabled ctx.tracer then begin
    Obs.set sp "rows_in" (Obs.Int (List.length rows));
    Obs.set sp "keys" (Obs.Int (List.length keys));
    Obs.set sp "buckets" (Obs.Int (List.length groups))
  end;
  Obs.leave ctx.tracer sp;
  groups

and group_rows_raw ctx benv keys pre rows : (benv * benv list) list =
  let rows =
    List.filter
      (fun (row : benv) ->
        List.for_all (fun f -> eval_formula ctx (row @ benv) f = B3.True) pre)
      rows
  in
  if keys = [] then
    let full = List.map (fun r -> r @ benv) rows in
    [ ((match full with [] -> benv | r :: _ -> r), full) ]
  else begin
    let tbl = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun row ->
        let kv =
          List.map (fun (v, a) -> eval_term ctx (row @ benv) (Attr (v, a))) keys
        in
        let k = String.concat "" (List.map V.canonical kv) in
        match Hashtbl.find_opt tbl k with
        | Some rs -> Hashtbl.replace tbl k (rs @ [ row @ benv ])
        | None ->
            order := k :: !order;
            Hashtbl.replace tbl k [ row @ benv ])
      rows;
    List.rev_map
      (fun k ->
        let group = Hashtbl.find tbl k in
        (List.hd group, group))
      !order
  end

and eval_gformula ctx ~rep ~group ~scope_vars f : B3.t =
  match f with
  | True -> B3.True
  | Pred p ->
      eval_pred_values ctx p
        (List.map (eval_gterm ctx ~rep ~group ~scope_vars) (pred_terms p))
  | And fs ->
      B3.and_list (List.map (eval_gformula ctx ~rep ~group ~scope_vars) fs)
  | Or fs ->
      B3.or_list (List.map (eval_gformula ctx ~rep ~group ~scope_vars) fs)
  | Not f -> B3.not_ (eval_gformula ctx ~rep ~group ~scope_vars f)
  | Exists scope -> eval_scope_bool ctx rep scope

(* ------------------------------------------------------------------ *)
(* Collection evaluation                                               *)
(* ------------------------------------------------------------------ *)

and eval_collection ctx benv (c : collection) : Relation.t =
  let name = c.head.head_name in
  Gov.tick ctx.gov;
  if not (Gov.enter_collection ctx.gov) then
    (* depth budget tripped under [`Truncate]: this nesting level
       contributes nothing *)
    Relation.empty ~name c.head.head_attrs
  else
    let sp = Obs.enter ctx.tracer ("collection:" ^ name) in
    match eval_collection_raw ctx benv c with
    | r ->
        if Obs.enabled ctx.tracer then
          Obs.set sp "rows_emitted" (Obs.Int (Relation.cardinality r));
        Obs.leave ctx.tracer sp;
        Gov.leave_collection ctx.gov;
        r
    | exception Eval_error e ->
        Obs.leave ctx.tracer sp;
        Gov.leave_collection ctx.gov;
        (* attribute the failure to the collection being evaluated; nested
           failures accumulate a chain of contexts *)
        raise (Eval_error (Err.in_collection name e))
    | exception Err.Guard_error e ->
        Obs.leave ctx.tracer sp;
        Gov.leave_collection ctx.gov;
        raise (Eval_error (Err.in_collection name e))
    | exception e ->
        Obs.leave ctx.tracer sp;
        Gov.leave_collection ctx.gov;
        raise e

and eval_collection_raw ctx benv (c : collection) : Relation.t =
  let schema = Schema.make c.head.head_attrs in
  let head_name = c.head.head_name in
  let eval_disjunct d =
    let scope =
      match d with
      | Exists s -> s
      | f -> { bindings = []; grouping = None; join = None; body = f }
    in
    let scope, rows = enum_scope ctx benv scope ~heads:[ head_name ] in
    (* Extract assignment predicates for the head. They may sit at any
       positive existential depth within the disjunct (the nested
       semijoin-style formulation of Section 2.7 puts [Q.A = r.A] inside the
       inner scope); an extracted predicate is replaced by [True] so the
       residual formula can be evaluated as a condition. A second assignment
       to the same attribute becomes the constraint [t0 = t]. *)
    let assignments = Hashtbl.create 8 in
    let rec extract f =
      match f with
      | Pred p -> (
          match Analysis.assignment_of ~heads:[ head_name ] p with
          | Some ((_, a), t) when List.mem a c.head.head_attrs -> (
              match Hashtbl.find_opt assignments a with
              | None ->
                  Hashtbl.add assignments a t;
                  True
              | Some t0 when not (equal_term t0 t) -> Pred (Cmp (Eq, t0, t))
              | Some _ -> True)
          | _ -> f)
      | And fs -> And (List.map extract fs)
      | Exists s -> Exists { s with body = extract s.body }
      | True | Or _ | Not _ -> f
    in
    let residual = Arc_core.Canon.simplify_formula (extract scope.body) in
    let conditions = conjuncts residual in
    let assignment_of_attr a =
      match Hashtbl.find_opt assignments a with
      | Some t -> t
      | None ->
          raise_kind (Err.Head_unassigned { head = head_name; attr = a })
    in
    match scope.grouping with
    | None ->
        List.filter_map
          (fun (row : benv) ->
            let full = row @ benv in
            if
              List.for_all
                (fun f -> eval_formula ctx full f = B3.True)
                conditions
            then
              Some
                (Tuple.make schema
                   (Array.of_list
                      (List.map
                         (fun a -> eval_term ctx full (assignment_of_attr a))
                         c.head.head_attrs)))
            else None)
          rows
    | Some keys ->
        let scope_vars = List.map (fun b -> b.var) scope.bindings in
        let pre, post =
          List.partition (fun f -> not (formula_has_agg f)) conditions
        in
        let groups = group_rows ctx benv keys pre rows in
        List.filter_map
          (fun (rep, group) ->
            if
              List.for_all
                (fun f ->
                  eval_gformula ctx ~rep ~group ~scope_vars f = B3.True)
                post
            then
              Some
                (Tuple.make schema
                   (Array.of_list
                      (List.map
                         (fun a ->
                           eval_gterm ctx ~rep ~group ~scope_vars
                             (assignment_of_attr a))
                         c.head.head_attrs)))
            else None)
          groups
  in
  let body = Arc_core.Canon.simplify_formula c.body in
  let tuples = List.concat_map eval_disjunct (disjuncts body) in
  let tuples =
    if not (Gov.active ctx.gov) then tuples
    else
      let n = List.length tuples in
      let allowed = Gov.charge_rows ctx.gov n in
      if allowed >= n then tuples else take allowed tuples
  in
  let r = Relation.make ~name:head_name schema tuples in
  match ctx.conv.Conventions.collection with
  | Conventions.Set -> Relation.dedup r
  | Conventions.Bag -> r

(* ------------------------------------------------------------------ *)
(* Definitions: stratified least-fixed-point computation               *)
(* ------------------------------------------------------------------ *)

let rec compute_idb ctx (defs : definition list) =
  let scc_list, adj = Arc_core.Depend.sccs defs in
  let find_def n = List.find (fun d -> d.def_name = n) defs in
  List.iter
    (fun component ->
      let recursive = Arc_core.Depend.is_recursive adj component in
      if not recursive then
        let d = find_def (List.hd component) in
        Hashtbl.replace ctx.idb d.def_name (eval_collection ctx [] d.def_body)
      else begin
        List.iter
          (fun n ->
            List.iter
              (fun (m, negative) ->
                if negative && List.mem m component then
                  raise_kind (Err.Unstratifiable { name = n; dep = m }))
              (List.assoc n adj))
          component;
        List.iter
          (fun n ->
            let d = find_def n in
            Hashtbl.replace ctx.idb n
              (Relation.empty ~name:n d.def_body.head.head_attrs))
          component;
        match ctx.strategy with
        | Naive -> naive_fixpoint ctx find_def component
        | Seminaive -> seminaive_fixpoint ctx find_def component
      end)
    scc_list

and naive_fixpoint ctx find_def component =
  let sp = Obs.enter ctx.tracer "fixpoint:naive" in
  if Obs.enabled ctx.tracer then
    Obs.set sp "stratum" (Obs.Str (String.concat "," component));
  let changed = ref true in
  let iterations = ref 0 in
  while !changed do
    incr iterations;
    Gov.tick ctx.gov;
    changed := false;
    (* a tripped budget in [`Truncate] mode leaves the partial fixpoint *)
    if Gov.iteration_allowed ctx.gov !iterations && not (Gov.stopped ctx.gov)
    then begin
      let isp = Obs.enter ctx.tracer "iteration" in
      List.iter
        (fun n ->
          let d = find_def n in
          let before =
            if Obs.enabled ctx.tracer then
              Relation.cardinality (Hashtbl.find ctx.idb n)
            else 0
          in
          let next =
            Relation.dedup
              (Relation.union (Hashtbl.find ctx.idb n)
                 (eval_collection ctx [] d.def_body))
          in
          if Obs.enabled ctx.tracer then
            Obs.set isp ("delta:" ^ n)
              (Obs.Int (Relation.cardinality next - before));
          if not (Relation.equal_set next (Hashtbl.find ctx.idb n)) then begin
            Hashtbl.replace ctx.idb n next;
            changed := true
          end)
        component;
      Obs.leave ctx.tracer isp
    end
  done;
  Obs.set sp "iterations" (Obs.Int !iterations);
  Obs.leave ctx.tracer sp

(* Semi-naive evaluation: each round re-derives only through tuples that are
   new since the previous round. For every occurrence of a binding to a
   relation of the same SCC, a body variant is evaluated in which exactly
   that occurrence ranges over the delta; the union of the variants, minus
   the tuples already known, is the next delta. *)
and seminaive_fixpoint ctx find_def component =
  let delta_name n = "__delta__" ^ n in
  (* count/substitute occurrences of component bindings, preorder *)
  let count_occurrences body =
    let k = ref 0 in
    let rec walk_f = function
      | True | Pred _ -> ()
      | And fs | Or fs -> List.iter walk_f fs
      | Not f -> walk_f f
      | Exists sc ->
          List.iter
            (fun b ->
              match b.source with
              | Base m -> if List.mem m component then incr k
              | Nested c -> walk_f c.body)
            sc.bindings;
          walk_f sc.body
    in
    walk_f body;
    !k
  in
  let substitute body i =
    let k = ref (-1) in
    let rec walk_f f =
      match f with
      | True | Pred _ -> f
      | And fs -> And (List.map walk_f fs)
      | Or fs -> Or (List.map walk_f fs)
      | Not f -> Not (walk_f f)
      | Exists sc ->
          let bindings =
            List.map
              (fun b ->
                match b.source with
                | Base m when List.mem m component ->
                    incr k;
                    if !k = i then { b with source = Base (delta_name m) }
                    else b
                | Base _ -> b
                | Nested c ->
                    { b with source = Nested { c with body = walk_f c.body } })
              sc.bindings
          in
          Exists { sc with bindings; body = walk_f sc.body }
    in
    walk_f body
  in
  let sp = Obs.enter ctx.tracer "fixpoint:seminaive" in
  if Obs.enabled ctx.tracer then
    Obs.set sp "stratum" (Obs.Str (String.concat "," component));
  (* round 0: recursive refs are empty, the plain evaluation seeds delta *)
  let ssp = Obs.enter ctx.tracer "seed" in
  List.iter
    (fun n ->
      let d = find_def n in
      let seed = Relation.dedup (eval_collection ctx [] d.def_body) in
      Hashtbl.replace ctx.idb n seed;
      Hashtbl.replace ctx.idb (delta_name n) seed;
      if Obs.enabled ctx.tracer then
        Obs.set ssp ("delta:" ^ n) (Obs.Int (Relation.cardinality seed)))
    component;
  Obs.leave ctx.tracer ssp;
  let iterations = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    incr iterations;
    Gov.tick ctx.gov;
    if
      (not (Gov.iteration_allowed ctx.gov !iterations))
      || Gov.stopped ctx.gov
    then continue_ := false
    else begin
    let isp = Obs.enter ctx.tracer "iteration" in
    let new_deltas =
      List.map
        (fun n ->
          let d = find_def n in
          let occurrences = count_occurrences d.def_body.body in
          let derived =
            List.init occurrences (fun i ->
                eval_collection ctx []
                  { d.def_body with body = substitute d.def_body.body i })
          in
          let full = Hashtbl.find ctx.idb n in
          let fresh =
            List.fold_left
              (fun acc r ->
                Relation.union acc
                  (Relation.minus (Relation.dedup r) full))
              (Relation.empty ~name:n d.def_body.head.head_attrs)
              derived
          in
          (n, Relation.dedup fresh))
        component
    in
    (* commit all deltas simultaneously *)
    List.iter
      (fun (n, fresh) ->
        Hashtbl.replace ctx.idb n
          (Relation.dedup (Relation.union (Hashtbl.find ctx.idb n) fresh)))
      new_deltas;
    List.iter
      (fun (n, fresh) -> Hashtbl.replace ctx.idb (delta_name n) fresh)
      new_deltas;
    if Obs.enabled ctx.tracer then
      List.iter
        (fun (n, fresh) ->
          Obs.set isp ("delta:" ^ n) (Obs.Int (Relation.cardinality fresh)))
        new_deltas;
    Obs.leave ctx.tracer isp;
    if List.for_all (fun (_, fresh) -> Relation.is_empty fresh) new_deltas
    then continue_ := false
    end
  done;
  Obs.set sp "iterations" (Obs.Int !iterations);
  Obs.leave ctx.tracer sp;
  List.iter (fun n -> Hashtbl.remove ctx.idb (delta_name n)) component

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(* Builds a context with abstracts registered and the IDB still empty; the
   caller decides how the safe definitions are materialized (the reference
   fixpoint below, or the plan executor via [Internal]). *)
let prepare ?(conv = Conventions.sql_set) ?(externals = Externals.standard)
    ?(strategy = Seminaive) ?(tracer = Obs.null) ?guard ~db (prog : program) =
  let gov = match guard with Some g -> g | None -> Gov.default () in
  let aenv =
    Analysis.env
      ~schemas:
        (List.map
           (fun n -> (n, Schema.attrs (Relation.schema (Database.find db n))))
           (Database.names db))
      ~externals:(Externals.decls externals) ()
  in
  let safeties = Analysis.program_safety ~env:aenv prog in
  let safe, unsafe =
    List.partition
      (fun (d : definition) ->
        match List.assoc_opt d.def_name safeties with
        | Some Analysis.Safe -> true
        | _ -> false)
      prog.defs
  in
  let ctx =
    {
      conv;
      strategy;
      db;
      idb = Hashtbl.create 16;
      abstracts = List.map (fun d -> (d.def_name, d.def_body)) unsafe;
      externals;
      params = [];
      lits = [];
      tracer;
      gov;
    }
  in
  (ctx, safe)

let make_ctx ?conv ?externals ?strategy ?tracer ?guard ~db (prog : program) =
  let ctx, safe = prepare ?conv ?externals ?strategy ?tracer ?guard ~db prog in
  let tracer = ctx.tracer in
  if safe <> [] then begin
    let sp = Obs.enter tracer "definitions" in
    (* budget trips between collection evaluations (fixpoint bookkeeping)
       surface as Guard_error; convert them like eval_collection does *)
    (try compute_idb ctx safe
     with Err.Guard_error e ->
       Obs.leave tracer sp;
       raise (Eval_error e));
    Obs.leave tracer sp
  end;
  ctx

let run ?conv ?externals ?strategy ?tracer ?guard ~db (prog : program) =
  try
    let ctx = make_ctx ?conv ?externals ?strategy ?tracer ?guard ~db prog in
    match prog.main with
    | Coll c -> Rows (eval_collection ctx [] c)
    | Sentence f -> Truth (eval_formula ctx [] f)
  with
  | Err.Guard_error e -> raise (Eval_error e)
  | V.Type_error m ->
      (* ill-typed data meets an operator: a typed failure, not a crash *)
      raise (Eval_error { Err.kind = Err.Msg ("type error: " ^ m); context = [] })

let run_rows ?conv ?externals ?strategy ?tracer ?guard ~db prog =
  match run ?conv ?externals ?strategy ?tracer ?guard ~db prog with
  | Rows r -> r
  | Truth _ -> fail "expected a collection result, got a sentence"

let run_truth ?conv ?externals ?strategy ?tracer ?guard ~db prog =
  match run ?conv ?externals ?strategy ?tracer ?guard ~db prog with
  | Truth t -> t
  | Rows _ -> fail "expected a sentence result, got a collection"

let eval_collection_standalone ?conv ?externals ?tracer ?guard ~db c =
  run_rows ?conv ?externals ?tracer ?guard ~db { defs = []; main = Coll c }

(* ------------------------------------------------------------------ *)
(* Internal surface for the plan executor (Arc_engine.Exec)            *)
(* ------------------------------------------------------------------ *)

module Internal = struct
  type nonrec ctx = ctx
  type nonrec benv = benv

  let prepare = prepare
  let conv ctx = ctx.conv
  let strategy ctx = ctx.strategy
  let tracer ctx = ctx.tracer
  let gov ctx = ctx.gov
  let db ctx = ctx.db
  let idb_set ctx name r = Hashtbl.replace ctx.idb name r
  let idb_get ctx name = Hashtbl.find_opt ctx.idb name
  let idb_remove ctx name = Hashtbl.remove ctx.idb name
  let eval_term = eval_term
  let eval_gterm = eval_gterm
  let eval_pred = eval_pred
  let eval_pred_values = eval_pred_values
  let eval_formula = eval_formula
  let eval_gformula = eval_gformula
  let eval_collection = eval_collection
  let source_rows = source_rows
  let resolve_deferred = resolve_deferred
  let take = take
end
