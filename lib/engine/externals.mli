(** Executable external relations (paper, Section 2.13.1).

    An implementation pairs an {!Arc_core.External.decl} with a completion
    function realizing its access patterns: given values for a subset of the
    attributes, it either produces the full tuples consistent with them (a
    multi-valued function, per [35]) or reports that no supported access
    pattern matches the bound subset. *)

module Value = Arc_value.Value

type impl = {
  decl : Arc_core.External.decl;
  complete : (string * Value.t) list -> (string * Value.t) list list option;
      (** [complete bound] returns [Some rows] — each row a full
          attribute assignment extending [bound] — or [None] when no access
          pattern accepts exactly the attributes bound so far. An empty list
          means the pattern applied but no tuple matches (e.g. [5 > 7]). *)
}

exception External_error of { relation : string; cause : string }
(** Transient failure of one completion attempt (a flaky or slow backing
    service). The engine converts an uncaught [External_error] into a typed
    [External_failure] evaluation error; {!with_retry} absorbs transient
    ones. *)

val name : impl -> string

val with_retry :
  ?attempts:int -> ?backoff_ns:int -> ?sleep:(int -> unit) -> impl -> impl
(** [with_retry impl] retries [complete] on {!External_error} up to
    [attempts] times total (default 3), sleeping
    [backoff_ns * 2{^ k}] between attempts (exponential backoff, default
    base 1ms). [sleep] is injectable and defaults to a no-op, so retries
    are deterministic and instant in tests. When all attempts fail it
    raises {!Arc_guard.Error.Guard_error} with
    [External_failure {relation; attempts; cause}]. *)

val arithmetic : string -> (Value.t -> Value.t -> Value.t) ->
  inverse_left:(Value.t -> Value.t -> Value.t) ->
  inverse_right:(Value.t -> Value.t -> Value.t) -> impl
(** [arithmetic name f ~inverse_left ~inverse_right] builds the ternary
    relation [name(left, right, out)] with [out = f left right];
    [inverse_left out right = left] and [inverse_right out left = right]
    provide the remaining access patterns. *)

val product_style : string -> (Value.t -> Value.t -> Value.t) -> impl
(** Fig 20 naming: [name($1, $2, out)], forward mode and all-bound check
    only (multiplication is not inverted over integers). *)

val comparison : string -> (Value.t -> Value.t -> bool) -> impl
(** Binary check-only relation [name(left, right)]. *)

val standard : impl list
(** Implementations matching {!Arc_core.External.standard}: "Minus", "Add",
    "-", "+", "*", "Bigger", ">". *)

val find : impl list -> string -> impl option
val decls : impl list -> Arc_core.External.decl list
