open Arc_core.Ast
module V = Arc_value.Value
module B3 = Arc_value.Bool3
module Conventions = Arc_value.Conventions
module Aggregate = Arc_value.Aggregate
module Relation = Arc_relation.Relation
module Tuple = Arc_relation.Tuple
module Schema = Arc_relation.Schema
module Obs = Arc_obs.Obs
module Gov = Arc_guard.Gov
module Err = Arc_guard.Error
module Depend = Arc_core.Depend
module Ir = Arc_plan.Ir
module Lower = Arc_plan.Lower
module Opt = Arc_plan.Opt
module I = Eval.Internal

(* The physical engine: executes the Arc_plan IR with hash-based join,
   semi/anti-join, aggregation and deduplication operators. All per-row
   semantics — term, predicate and formula evaluation, deferred resolution,
   and the collection fallback — are delegated to Eval.Internal, so the two
   engines share one notion of what a row means and can only differ in what
   they enumerate. *)

exception Eval_error = Eval.Eval_error

let raise_kind kind = raise (Eval_error (Err.make kind))

(* ------------------------------------------------------------------ *)
(* Fixpoint index caches                                               *)
(* ------------------------------------------------------------------ *)

(* Persistent per-delta-rule state for the indexed seminaive fixpoint.
   [fc_stable] marks the maximal subtrees of the rule's plan that scan
   neither the recursive component nor its __delta__ relations: their
   result cannot change between rounds, so [fc_rows] memoizes it on first
   execution. [fc_joins] marks hash joins with such a stable subtree on
   one side; [fc_tables] keeps the hash table built from that side alive
   across rounds, so each round only probes it with the current delta.
   Cached tables are always keyed through the buffer-serialized term path:
   the whole-tuple fast key is negotiated per call from the probe rows of
   one particular round and must not leak into state that outlives it. *)
type fix_cache = {
  fc_stable : (int, unit) Hashtbl.t;
  fc_rows : (int, I.benv array) Hashtbl.t;
  fc_joins : (int, [ `Left | `Right ]) Hashtbl.t;
  fc_tables : (int, (string, I.benv) Hashtbl.t * int) Hashtbl.t;
}

(* A subtree is stable when no scan under it resolves a [banned] relation
   (the component and its deltas). Correlated or context-dependent nodes
   (laterals, subqueries, deferred resolution) are conservatively treated
   as unstable — they may evaluate under a different outer row each time.
   Residual formulas and filters cannot reference the component at all
   here: [Ir.seminaive_eligible] rejects opaque component references
   before a stratum ever reaches the seminaive path. *)
let rec stable_subtree banned (t : Ir.t) =
  match t with
  | Ir.One -> true
  | Ir.Scan { rel; _ } -> not (List.mem rel banned)
  | Ir.Product { left; right } | Ir.Hash_join { left; right; _ } ->
      stable_subtree banned left && stable_subtree banned right
  | Ir.Filter { input; _ } | Ir.Residual { input; _ } | Ir.Prune { input; _ }
    ->
      stable_subtree banned input
  | Ir.Semi { input; sub; _ } ->
      stable_subtree banned input && stable_subtree banned sub
  | Ir.Append ts -> List.for_all (stable_subtree banned) ts
  | Ir.Lateral _ | Ir.Subquery _ | Ir.Resolve _ -> false

(* Mark the maximal stable subtrees (and the hash joins that should keep a
   persistent build table) of one delta rule, using the same positional id
   arithmetic the executor walks with. Inner plans of laterals and
   subqueries are never marked: their nodes execute under per-row outer
   environments, where memoized results would be wrong. *)
let rec mark_fix fc banned id (t : Ir.t) =
  if stable_subtree banned t then (
    match t with Ir.One -> () | _ -> Hashtbl.replace fc.fc_stable id ())
  else
    match t with
    | Ir.One | Ir.Scan _ | Ir.Subquery _ -> ()
    | Ir.Product { left; right } ->
        mark_fix fc banned (id + 1) left;
        mark_fix fc banned (id + 1 + Ir.size left) right
    | Ir.Hash_join { left; right; _ } ->
        let lid = id + 1 and rid = id + 1 + Ir.size left in
        if stable_subtree banned right then begin
          Hashtbl.replace fc.fc_joins id `Right;
          mark_fix fc banned lid left
        end
        else if stable_subtree banned left then begin
          Hashtbl.replace fc.fc_joins id `Left;
          mark_fix fc banned rid right
        end
        else begin
          mark_fix fc banned lid left;
          mark_fix fc banned rid right
        end
    | Ir.Filter { input; _ }
    | Ir.Residual { input; _ }
    | Ir.Prune { input; _ }
    | Ir.Resolve { input; _ }
    | Ir.Lateral { input; _ } ->
        mark_fix fc banned (id + 1) input
    | Ir.Semi { input; sub; _ } ->
        mark_fix fc banned (id + 1) input;
        mark_fix fc banned (id + 1 + Ir.size input) sub
    | Ir.Append ts -> List.iter2 (mark_fix fc banned) (Ir.child_ids id t) ts

let make_fix_cache banned did (d : Ir.disjunct_plan) =
  let fc =
    {
      fc_stable = Hashtbl.create 16;
      fc_rows = Hashtbl.create 16;
      fc_joins = Hashtbl.create 8;
      fc_tables = Hashtbl.create 8;
    }
  in
  (match d with
  | Ir.Project { input; _ } | Ir.Aggregate { input; _ } ->
      mark_fix fc banned (did + 1) input);
  fc

(* [stats] is the EXPLAIN ANALYZE sink: when present, every operator
   records per-node actuals keyed by the stable ids of [Ir.program_ids].
   When absent the executor takes a branch per node and nothing else.
   [batched] selects the block-at-a-time pipeline (arrays of rows,
   amortized governor probes, buffer-reused hash keys); the tuple-at-a-time
   path is kept verbatim as the ablation baseline and for the incremental
   maintenance hooks. Both paths produce rows in the same order.
   [fix] is only set while executing a delta rule inside the indexed
   seminaive fixpoint. *)
type env = {
  ctx : I.ctx;
  outer : I.benv;
  stats : Ir.stats option;
  batched : bool;
  fix : fix_cache option;
}

let tracer env = I.tracer env.ctx
let gov env = I.gov env.ctx

let clock = Arc_obs.Metrics.now_ns

let with_actual env id f =
  match env.stats with None -> () | Some st -> f (Ir.touch st id)

let pred_true env full p = I.eval_pred env.ctx full p = B3.True
let formula_true env full f = I.eval_formula env.ctx full f = B3.True

(* Composite hash key for a list of terms evaluated under [row @ outer].
   Under three-valued logic a NULL key component can never satisfy an
   equality, so the row is excluded from matching ([None]); under two-valued
   logic NULL is an ordinary value. Value.canonical equates values that
   compare equal (Int 1 vs Float 1.0) and cannot collide otherwise. *)
let key_of env (row : I.benv) terms =
  let full = row @ env.outer in
  let vals = List.map (I.eval_term env.ctx full) terms in
  match (I.conv env.ctx).Conventions.null_logic with
  | Conventions.Three_valued when List.exists V.is_null vals -> None
  | _ -> Some (String.concat "" (List.map V.canonical vals))

let group_key env (full : I.benv) keys =
  let kv = List.map (fun (v, a) -> I.eval_term env.ctx full (Attr (v, a))) keys in
  String.concat "" (List.map V.canonical kv)

(* ------------------------------------------------------------------ *)
(* Batched-path helpers                                                *)
(* ------------------------------------------------------------------ *)

(* Rows per governor probe on the batched path: cheap enough that a
   cancel/deadline is still noticed promptly, large enough that the probe
   vanishes from per-row cost. *)
let block_rows = 256

(* [row @ env.outer] without the append when there is no outer context —
   the common case for top-level pipelines, where the tuple path pays a
   per-row allocation for nothing. *)
let full_of env (row : I.benv) =
  match env.outer with [] -> row | o -> row @ o

(* Same composite key as [key_of], built into a caller-owned reusable
   buffer instead of [String.concat]. The encodings agree, but each join
   only ever compares keys produced by one of the two. *)
let key_of_buf env buf (row : I.benv) terms =
  let full = full_of env row in
  Buffer.clear buf;
  let ok =
    match (I.conv env.ctx).Conventions.null_logic with
    | Conventions.Three_valued ->
        List.for_all
          (fun t ->
            let v = I.eval_term env.ctx full t in
            if V.is_null v then false
            else begin
              Buffer.add_string buf (V.canonical v);
              true
            end)
          terms
    | _ ->
        List.iter
          (fun t ->
            Buffer.add_string buf
              (V.canonical (I.eval_term env.ctx full t)))
          terms;
        true
  in
  if ok then Some (Buffer.contents buf) else None

(* Whole-tuple join keys: when a side's key terms are attribute references
   on one variable, [whole_var_attrs] returns that variable and the sorted
   attribute set. If the set covers the row's entire schema on BOTH sides
   of a join, the memoized [Tuple.key] is an equivalent composite key
   (injective up to [Tuple.equal] over canonical cells), so the per-row
   term evaluation disappears. Both sides must switch together — the two
   encodings differ. *)
let whole_var_attrs terms =
  match terms with
  | Attr (v, _) :: _ ->
      let rec attrs_of = function
        | [] -> Some []
        | Attr (v', a) :: tl when String.equal v' v ->
            Option.map (fun r -> a :: r) (attrs_of tl)
        | _ -> None
      in
      Option.map
        (fun attrs -> (v, List.sort_uniq compare attrs))
        (attrs_of terms)
  | _ -> None

let all_whole v attrs (rows : I.benv array) =
  Array.for_all
    (fun (row : I.benv) ->
      match row with
      | [ (v', tp) ] ->
          String.equal v' v
          && Schema.sorted_attrs (Tuple.schema tp) = attrs
      | _ -> false)
    rows

(* Filter an array of rows, probing the governor once per block. *)
let filter_block env pass (rows : I.benv array) : I.benv array =
  let g = gov env in
  let n = Array.length rows in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    Gov.tick g;
    let stop = min n (!i + block_rows) in
    while !i < stop do
      let row = rows.(!i) in
      if pass row then out := row :: !out;
      incr i
    done
  done;
  Array.of_list (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Pipeline execution: benv-level operators                            *)
(* ------------------------------------------------------------------ *)

(* Every operator is a wrapper around an [_inner] worker: with stats on,
   the wrapper brackets the worker with two clock reads and accumulates
   invocations / rows / inclusive time on the node's id; with stats off it
   is a single branch. Child ids use the same arithmetic as
   [Ir.child_ids] / [Explain]. *)
let rec exec_rows env id (t : Ir.t) : I.benv list =
  match env.stats with
  | None -> exec_rows_inner env id t
  | Some st ->
      let t0 = clock () in
      let rows = exec_rows_inner env id t in
      let t1 = clock () in
      let a = Ir.touch st id in
      a.Ir.a_invocations <- a.Ir.a_invocations + 1;
      a.Ir.a_rows <- a.Ir.a_rows + List.length rows;
      a.Ir.a_incl_ns <- Int64.add a.Ir.a_incl_ns (Int64.sub t1 t0);
      rows

and exec_rows_inner env id (t : Ir.t) : I.benv list =
  match t with
  | One -> [ [] ]
  | Scan { var; rel; filters; _ } ->
      let sp = Obs.enter (tracer env) "scan" in
      let tuples = I.source_rows env.ctx env.outer (Base rel) in
      let rows = List.map (fun tp -> [ (var, tp) ]) tuples in
      let kept =
        if filters = [] then rows
        else
          List.filter
            (fun (row : I.benv) ->
              List.for_all (pred_true env (row @ env.outer)) filters)
            rows
      in
      if Obs.enabled (tracer env) then begin
        Obs.set sp "relation" (Obs.Str rel);
        Obs.set sp "candidates" (Obs.Int (List.length rows));
        Obs.set sp "survivors" (Obs.Int (List.length kept))
      end;
      Obs.leave (tracer env) sp;
      kept
  | Subquery { var; plan } ->
      let r = exec_coll env (id + 1) plan in
      List.map (fun tp -> [ (var, tp) ]) (Relation.tuples r)
  | Lateral { input; var; plan } ->
      let rows = exec_rows env (id + 1) input in
      let plan_id = id + 1 + Ir.size input in
      let sp = Obs.enter (tracer env) "lateral" in
      let out =
        List.concat_map
          (fun (row : I.benv) ->
            let r =
              exec_coll { env with outer = row @ env.outer } plan_id plan
            in
            List.map (fun tp -> (var, tp) :: row) (Relation.tuples r))
          rows
      in
      if Obs.enabled (tracer env) then begin
        Obs.set sp "rows_in" (Obs.Int (List.length rows));
        Obs.set sp "rows_out" (Obs.Int (List.length out))
      end;
      Obs.leave (tracer env) sp;
      out
  | Product { left; right } ->
      let l = exec_rows env (id + 1) left in
      let r = exec_rows env (id + 1 + Ir.size left) right in
      List.concat_map (fun lr -> List.map (fun rr -> rr @ lr) r) l
  | Hash_join { left; right; keys } ->
      Gov.tick (gov env);
      let sp = Obs.enter (tracer env) "hash_join" in
      let build = exec_rows env (id + 1 + Ir.size left) right in
      let inner_terms = List.map (fun k -> k.Ir.inner) keys in
      let outer_terms = List.map (fun k -> k.Ir.outer) keys in
      let tbl = Hashtbl.create (max 16 (List.length build)) in
      List.iter
        (fun rrow ->
          match key_of env rrow inner_terms with
          | Some k -> Hashtbl.add tbl k rrow
          | None -> ())
        build;
      let probe = exec_rows env (id + 1) left in
      let out =
        List.concat_map
          (fun lrow ->
            match key_of env lrow outer_terms with
            | Some k ->
                List.map (fun rrow -> rrow @ lrow) (Hashtbl.find_all tbl k)
            | None -> [])
          probe
      in
      with_actual env id (fun a ->
          a.Ir.a_build <- a.Ir.a_build + List.length build;
          a.Ir.a_probe <- a.Ir.a_probe + List.length probe;
          a.Ir.a_matches <- a.Ir.a_matches + List.length out);
      if Obs.enabled (tracer env) then begin
        Obs.set sp "build" (Obs.Int (List.length build));
        Obs.set sp "probe" (Obs.Int (List.length probe));
        Obs.set sp "rows_out" (Obs.Int (List.length out))
      end;
      Obs.leave (tracer env) sp;
      out
  | Filter { input; preds } ->
      let rows = exec_rows env (id + 1) input in
      let sp = Obs.enter (tracer env) "filter" in
      let kept =
        List.filter
          (fun (row : I.benv) ->
            List.for_all (pred_true env (row @ env.outer)) preds)
          rows
      in
      if Obs.enabled (tracer env) then begin
        Obs.set sp "candidates" (Obs.Int (List.length rows));
        Obs.set sp "survivors" (Obs.Int (List.length kept))
      end;
      Obs.leave (tracer env) sp;
      kept
  | Residual { input; conjs } ->
      let rows = exec_rows env (id + 1) input in
      let sp = Obs.enter (tracer env) "residual" in
      let kept =
        List.filter
          (fun (row : I.benv) ->
            List.for_all (formula_true env (row @ env.outer)) conjs)
          rows
      in
      if Obs.enabled (tracer env) then begin
        Obs.set sp "candidates" (Obs.Int (List.length rows));
        Obs.set sp "survivors" (Obs.Int (List.length kept))
      end;
      Obs.leave (tracer env) sp;
      kept
  | Semi { anti; input; sub; keys; residual; _ } ->
      Gov.tick (gov env);
      let sp =
        Obs.enter (tracer env) (if anti then "anti_join" else "semi_join")
      in
      let sub_rows = exec_rows env (id + 1 + Ir.size input) sub in
      let witness row candidates =
        List.exists
          (fun (srow : I.benv) ->
            List.for_all
              (pred_true env (srow @ row @ env.outer))
              residual)
          candidates
      in
      let rows = exec_rows env (id + 1) input in
      let kept =
        match keys with
        | [] -> List.filter (fun row -> witness row sub_rows <> anti) rows
        | _ ->
            let inner_terms = List.map (fun k -> k.Ir.inner) keys in
            let outer_terms = List.map (fun k -> k.Ir.outer) keys in
            let tbl = Hashtbl.create (max 16 (List.length sub_rows)) in
            List.iter
              (fun srow ->
                match key_of env srow inner_terms with
                | Some k -> Hashtbl.add tbl k srow
                | None -> ())
              sub_rows;
            List.filter
              (fun row ->
                let found =
                  match key_of env row outer_terms with
                  | Some k -> witness row (Hashtbl.find_all tbl k)
                  | None -> false
                in
                found <> anti)
              rows
      in
      with_actual env id (fun a ->
          a.Ir.a_build <- a.Ir.a_build + List.length sub_rows;
          a.Ir.a_probe <- a.Ir.a_probe + List.length rows;
          a.Ir.a_matches <- a.Ir.a_matches + List.length kept);
      if Obs.enabled (tracer env) then begin
        Obs.set sp "sub_rows" (Obs.Int (List.length sub_rows));
        Obs.set sp "candidates" (Obs.Int (List.length rows));
        Obs.set sp "survivors" (Obs.Int (List.length kept))
      end;
      Obs.leave (tracer env) sp;
      kept
  | Resolve { input; binding; scope } ->
      Gov.tick (gov env);
      let rows = exec_rows env (id + 1) input in
      I.resolve_deferred env.ctx env.outer scope rows [ binding ]
  | Prune { input; keep } ->
      List.map
        (fun (row : I.benv) ->
          List.filter (fun (v, _) -> List.mem v keep) row)
        (exec_rows env (id + 1) input)
  | Append ts ->
      List.concat
        (List.map2 (fun cid b -> exec_rows env cid b) (Ir.child_ids id t) ts)

(* ------------------------------------------------------------------ *)
(* Batched pipeline: the same operators over row arrays                *)
(* ------------------------------------------------------------------ *)

(* Mirrors [exec_rows]/[exec_rows_inner] block-at-a-time. Row order is
   identical to the tuple path (the differential oracle and BENCH gates
   check bag-equality; keeping order avoids even spurious diffs), so the
   two paths differ only in cost: governor probes and tracer updates are
   amortized per block, hash keys go through a reused buffer or the
   memoized whole-tuple [Tuple.key], and grouping appends are O(1). *)
and exec_block env id (t : Ir.t) : I.benv array =
  match env.stats with
  | None -> exec_block_inner env id t
  | Some st ->
      let t0 = clock () in
      let rows = exec_block_inner env id t in
      let t1 = clock () in
      let a = Ir.touch st id in
      a.Ir.a_invocations <- a.Ir.a_invocations + 1;
      a.Ir.a_rows <- a.Ir.a_rows + Array.length rows;
      a.Ir.a_incl_ns <- Int64.add a.Ir.a_incl_ns (Int64.sub t1 t0);
      rows

and exec_block_inner env id (t : Ir.t) : I.benv array =
  (* Inside an indexed fixpoint rule, maximal component-free subtrees are
     memoized: round 1 computes them, every later round reuses the rows. *)
  match env.fix with
  | Some fc when Hashtbl.mem fc.fc_stable id -> (
      match Hashtbl.find_opt fc.fc_rows id with
      | Some rows -> rows
      | None ->
          let rows = exec_block_node env id t in
          Hashtbl.replace fc.fc_rows id rows;
          rows)
  | _ -> exec_block_node env id t

and exec_block_node env id (t : Ir.t) : I.benv array =
  match t with
  | One -> [| [] |]
  | Scan { var; rel; filters; _ } ->
      let sp = Obs.enter (tracer env) "scan" in
      let tuples = I.source_rows env.ctx env.outer (Base rel) in
      let rows =
        Array.of_list (List.map (fun tp -> [ (var, tp) ]) tuples)
      in
      let kept =
        if filters = [] then rows
        else
          filter_block env
            (fun row ->
              List.for_all (pred_true env (full_of env row)) filters)
            rows
      in
      if Obs.enabled (tracer env) then begin
        Obs.set sp "relation" (Obs.Str rel);
        Obs.set sp "candidates" (Obs.Int (Array.length rows));
        Obs.set sp "survivors" (Obs.Int (Array.length kept))
      end;
      Obs.leave (tracer env) sp;
      kept
  | Subquery { var; plan } ->
      let r = exec_coll env (id + 1) plan in
      Array.of_list
        (List.map (fun tp -> [ (var, tp) ]) (Relation.tuples r))
  | Lateral { input; var; plan } ->
      let rows = exec_block env (id + 1) input in
      let plan_id = id + 1 + Ir.size input in
      let sp = Obs.enter (tracer env) "lateral" in
      let out = ref [] in
      Array.iter
        (fun (row : I.benv) ->
          let r =
            exec_coll { env with outer = row @ env.outer } plan_id plan
          in
          List.iter
            (fun tp -> out := ((var, tp) :: row) :: !out)
            (Relation.tuples r))
        rows;
      let out = Array.of_list (List.rev !out) in
      if Obs.enabled (tracer env) then begin
        Obs.set sp "rows_in" (Obs.Int (Array.length rows));
        Obs.set sp "rows_out" (Obs.Int (Array.length out))
      end;
      Obs.leave (tracer env) sp;
      out
  | Product { left; right } ->
      let l = exec_block env (id + 1) left in
      let r = exec_block env (id + 1 + Ir.size left) right in
      let nl = Array.length l and nr = Array.length r in
      if nl = 0 || nr = 0 then [||]
      else begin
        let out = Array.make (nl * nr) [] in
        for i = 0 to nl - 1 do
          let lr = l.(i) in
          for j = 0 to nr - 1 do
            out.((i * nr) + j) <- r.(j) @ lr
          done
        done;
        out
      end
  | Hash_join { left; right; keys }
    when (match env.fix with
         | Some fc -> Hashtbl.mem fc.fc_joins id
         | None -> false) -> (
      match env.fix with
      | Some fc ->
          exec_indexed_join env fc id left right keys
            (Hashtbl.find fc.fc_joins id)
      | None -> assert false)
  | Hash_join { left; right; keys } ->
      Gov.tick (gov env);
      let sp = Obs.enter (tracer env) "hash_join" in
      let build = exec_block env (id + 1 + Ir.size left) right in
      let probe = exec_block env (id + 1) left in
      let inner_terms = List.map (fun k -> k.Ir.inner) keys in
      let outer_terms = List.map (fun k -> k.Ir.outer) keys in
      let fast =
        match (whole_var_attrs inner_terms, whole_var_attrs outer_terms) with
        | Some (iv, ia), Some (ov, oa)
          when ia = oa && all_whole iv ia build && all_whole ov oa probe ->
            true
        | _ -> false
      in
      let three_valued =
        match (I.conv env.ctx).Conventions.null_logic with
        | Conventions.Three_valued -> true
        | _ -> false
      in
      let fast_key (row : I.benv) =
        match row with
        | [ (_, tp) ] ->
            if three_valued && List.exists V.is_null (Tuple.values tp) then
              None
            else Some (Tuple.key tp)
        | _ -> None
      in
      let buf = Buffer.create 64 in
      let key_build rrow =
        if fast then fast_key rrow else key_of_buf env buf rrow inner_terms
      in
      let key_probe lrow =
        if fast then fast_key lrow else key_of_buf env buf lrow outer_terms
      in
      let tbl = Hashtbl.create (max 16 (Array.length build)) in
      Array.iter
        (fun rrow ->
          match key_build rrow with
          | Some k -> Hashtbl.add tbl k rrow
          | None -> ())
        build;
      let g = gov env in
      let n = Array.length probe in
      let out = ref [] in
      let matches = ref 0 in
      let i = ref 0 in
      while !i < n do
        Gov.tick g;
        let stop = min n (!i + block_rows) in
        while !i < stop do
          let lrow = probe.(!i) in
          (match key_probe lrow with
          | Some k ->
              List.iter
                (fun rrow ->
                  incr matches;
                  out := (rrow @ lrow) :: !out)
                (Hashtbl.find_all tbl k)
          | None -> ());
          incr i
        done
      done;
      let out = Array.of_list (List.rev !out) in
      with_actual env id (fun a ->
          a.Ir.a_build <- a.Ir.a_build + Array.length build;
          a.Ir.a_probe <- a.Ir.a_probe + Array.length probe;
          a.Ir.a_matches <- a.Ir.a_matches + !matches);
      if Obs.enabled (tracer env) then begin
        Obs.set sp "build" (Obs.Int (Array.length build));
        Obs.set sp "probe" (Obs.Int (Array.length probe));
        Obs.set sp "rows_out" (Obs.Int (Array.length out))
      end;
      Obs.leave (tracer env) sp;
      out
  | Filter { input; preds } ->
      let rows = exec_block env (id + 1) input in
      let sp = Obs.enter (tracer env) "filter" in
      let kept =
        filter_block env
          (fun row -> List.for_all (pred_true env (full_of env row)) preds)
          rows
      in
      if Obs.enabled (tracer env) then begin
        Obs.set sp "candidates" (Obs.Int (Array.length rows));
        Obs.set sp "survivors" (Obs.Int (Array.length kept))
      end;
      Obs.leave (tracer env) sp;
      kept
  | Residual { input; conjs } ->
      let rows = exec_block env (id + 1) input in
      let sp = Obs.enter (tracer env) "residual" in
      let kept =
        filter_block env
          (fun row ->
            List.for_all (formula_true env (full_of env row)) conjs)
          rows
      in
      if Obs.enabled (tracer env) then begin
        Obs.set sp "candidates" (Obs.Int (Array.length rows));
        Obs.set sp "survivors" (Obs.Int (Array.length kept))
      end;
      Obs.leave (tracer env) sp;
      kept
  | Semi { anti; input; sub; keys; residual; _ } ->
      Gov.tick (gov env);
      let sp =
        Obs.enter (tracer env) (if anti then "anti_join" else "semi_join")
      in
      let sub_rows = exec_block env (id + 1 + Ir.size input) sub in
      let witness row candidates =
        List.exists
          (fun (srow : I.benv) ->
            List.for_all (pred_true env (srow @ row @ env.outer)) residual)
          candidates
      in
      let rows = exec_block env (id + 1) input in
      let kept =
        match keys with
        | [] ->
            let cands = Array.to_list sub_rows in
            filter_block env (fun row -> witness row cands <> anti) rows
        | _ ->
            let inner_terms = List.map (fun k -> k.Ir.inner) keys in
            let outer_terms = List.map (fun k -> k.Ir.outer) keys in
            let buf = Buffer.create 64 in
            let tbl = Hashtbl.create (max 16 (Array.length sub_rows)) in
            Array.iter
              (fun srow ->
                match key_of_buf env buf srow inner_terms with
                | Some k -> Hashtbl.add tbl k srow
                | None -> ())
              sub_rows;
            filter_block env
              (fun row ->
                let found =
                  match key_of_buf env buf row outer_terms with
                  | Some k -> witness row (Hashtbl.find_all tbl k)
                  | None -> false
                in
                found <> anti)
              rows
      in
      with_actual env id (fun a ->
          a.Ir.a_build <- a.Ir.a_build + Array.length sub_rows;
          a.Ir.a_probe <- a.Ir.a_probe + Array.length rows;
          a.Ir.a_matches <- a.Ir.a_matches + Array.length kept);
      if Obs.enabled (tracer env) then begin
        Obs.set sp "sub_rows" (Obs.Int (Array.length sub_rows));
        Obs.set sp "candidates" (Obs.Int (Array.length rows));
        Obs.set sp "survivors" (Obs.Int (Array.length kept))
      end;
      Obs.leave (tracer env) sp;
      kept
  | Resolve { input; binding; scope } ->
      Gov.tick (gov env);
      let rows = exec_block env (id + 1) input in
      Array.of_list
        (I.resolve_deferred env.ctx env.outer scope (Array.to_list rows)
           [ binding ])
  | Prune { input; keep } ->
      Array.map
        (fun (row : I.benv) ->
          List.filter (fun (v, _) -> List.mem v keep) row)
        (exec_block env (id + 1) input)
  | Append ts ->
      Array.concat
        (List.map2 (fun cid b -> exec_block env cid b) (Ir.child_ids id t) ts)

(* A hash join inside an indexed fixpoint rule with a stable [side]: that
   side's hash table is built once, kept in the rule's cache, and probed
   by each round with the side that reaches the __delta__ scan. When the
   stable side is the left one the roles swap, but output rows still
   concatenate right-rows before left-rows, so downstream attribute
   lookups see the usual layout; only row order can differ, which the
   set-level fixpoint ignores. *)
and exec_indexed_join env fc id left right keys side : I.benv array =
  Gov.tick (gov env);
  let sp = Obs.enter (tracer env) "hash_join" in
  let inner_terms = List.map (fun k -> k.Ir.inner) keys in
  let outer_terms = List.map (fun k -> k.Ir.outer) keys in
  let lid = id + 1 and rid = id + 1 + Ir.size left in
  let build_id, build_plan, build_terms, probe_id, probe_plan, probe_terms =
    match side with
    | `Right -> (rid, right, inner_terms, lid, left, outer_terms)
    | `Left -> (lid, left, outer_terms, rid, right, inner_terms)
  in
  let buf = Buffer.create 64 in
  let tbl, build_n =
    match Hashtbl.find_opt fc.fc_tables id with
    | Some entry -> entry
    | None ->
        let rows = exec_block env build_id build_plan in
        let tbl = Hashtbl.create (max 16 (Array.length rows)) in
        Array.iter
          (fun row ->
            match key_of_buf env buf row build_terms with
            | Some k -> Hashtbl.add tbl k row
            | None -> ())
          rows;
        let entry = (tbl, Array.length rows) in
        Hashtbl.replace fc.fc_tables id entry;
        with_actual env id (fun a ->
            a.Ir.a_build <- a.Ir.a_build + Array.length rows);
        entry
  in
  let probe = exec_block env probe_id probe_plan in
  let g = gov env in
  let n = Array.length probe in
  let out = ref [] in
  let matches = ref 0 in
  let i = ref 0 in
  while !i < n do
    Gov.tick g;
    let stop = min n (!i + block_rows) in
    while !i < stop do
      let prow = probe.(!i) in
      (match key_of_buf env buf prow probe_terms with
      | Some k ->
          List.iter
            (fun brow ->
              incr matches;
              out :=
                (match side with
                | `Right -> brow @ prow
                | `Left -> prow @ brow)
                :: !out)
            (Hashtbl.find_all tbl k)
      | None -> ());
      incr i
    done
  done;
  let out = Array.of_list (List.rev !out) in
  with_actual env id (fun a ->
      a.Ir.a_probe <- a.Ir.a_probe + n;
      a.Ir.a_matches <- a.Ir.a_matches + !matches);
  if Obs.enabled (tracer env) then begin
    Obs.set sp "build" (Obs.Int build_n);
    Obs.set sp "probe" (Obs.Int n);
    Obs.set sp "indexed" (Obs.Bool true);
    Obs.set sp "rows_out" (Obs.Int (Array.length out))
  end;
  Obs.leave (tracer env) sp;
  out

(* ------------------------------------------------------------------ *)
(* Disjuncts and collections                                           *)
(* ------------------------------------------------------------------ *)

and exec_disjunct env id (head : head) (d : Ir.disjunct_plan) : Tuple.t list
    =
  match env.stats with
  | None -> exec_disjunct_inner env id head d
  | Some st ->
      let t0 = clock () in
      let tuples = exec_disjunct_inner env id head d in
      let t1 = clock () in
      let a = Ir.touch st id in
      a.Ir.a_invocations <- a.Ir.a_invocations + 1;
      a.Ir.a_rows <- a.Ir.a_rows + List.length tuples;
      a.Ir.a_incl_ns <- Int64.add a.Ir.a_incl_ns (Int64.sub t1 t0);
      tuples

and exec_disjunct_inner env id (head : head) (d : Ir.disjunct_plan) :
    Tuple.t list =
  let schema = Schema.make head.head_attrs in
  let assign_term assigns a =
    match List.assoc_opt a assigns with
    | Some t -> t
    | None ->
        raise_kind (Err.Head_unassigned { head = head.head_name; attr = a })
  in
  let emit_group scope_vars post assigns (rep, group) =
    if
      List.for_all
        (fun f -> I.eval_gformula env.ctx ~rep ~group ~scope_vars f = B3.True)
        post
    then
      Some
        (Tuple.make schema
           (Array.of_list
              (List.map
                 (fun a ->
                   I.eval_gterm env.ctx ~rep ~group ~scope_vars
                     (assign_term assigns a))
                 head.head_attrs)))
    else None
  in
  match d with
  | Project { input; assigns } when env.batched ->
      let rows = exec_block env (id + 1) input in
      Array.to_list
        (Array.map
           (fun (row : I.benv) ->
             let full = full_of env row in
             Tuple.make schema
               (Array.of_list
                  (List.map
                     (fun a ->
                       I.eval_term env.ctx full (assign_term assigns a))
                     head.head_attrs)))
           rows)
  | Project { input; assigns } ->
      let rows = exec_rows env (id + 1) input in
      List.map
        (fun (row : I.benv) ->
          let full = row @ env.outer in
          Tuple.make schema
            (Array.of_list
               (List.map
                  (fun a -> I.eval_term env.ctx full (assign_term assigns a))
                  head.head_attrs)))
        rows
  | Aggregate { input; keys; scope_vars; post; assigns } when env.batched ->
      let rows = exec_block env (id + 1) input in
      Gov.tick (gov env);
      let sp = Obs.enter (tracer env) "hash_aggregate" in
      let groups =
        if keys = [] then
          let full =
            Array.to_list (Array.map (fun r -> full_of env r) rows)
          in
          [ ((match full with [] -> env.outer | r :: _ -> r), full) ]
        else begin
          (* groups accumulate in reversed ref cells: O(1) append instead
             of the tuple path's quadratic [rs @ [full]] *)
          let tbl = Hashtbl.create (max 16 (Array.length rows / 4)) in
          let order = ref [] in
          Array.iter
            (fun (row : I.benv) ->
              let full = full_of env row in
              let k = group_key env full keys in
              match Hashtbl.find_opt tbl k with
              | Some cell -> cell := full :: !cell
              | None ->
                  let cell = ref [ full ] in
                  order := cell :: !order;
                  Hashtbl.replace tbl k cell)
            rows;
          List.rev_map
            (fun cell ->
              let group = List.rev !cell in
              (List.hd group, group))
            !order
        end
      in
      if Obs.enabled (tracer env) then begin
        Obs.set sp "rows_in" (Obs.Int (Array.length rows));
        Obs.set sp "keys" (Obs.Int (List.length keys));
        Obs.set sp "buckets" (Obs.Int (List.length groups))
      end;
      Obs.leave (tracer env) sp;
      List.filter_map (emit_group scope_vars post assigns) groups
  | Aggregate { input; keys; scope_vars; post; assigns } ->
      let rows = exec_rows env (id + 1) input in
      Gov.tick (gov env);
      let sp = Obs.enter (tracer env) "hash_aggregate" in
      let groups =
        if keys = [] then
          let full = List.map (fun r -> r @ env.outer) rows in
          [ ((match full with [] -> env.outer | r :: _ -> r), full) ]
        else begin
          let tbl = Hashtbl.create 16 in
          let order = ref [] in
          List.iter
            (fun (row : I.benv) ->
              let full = row @ env.outer in
              let k = group_key env full keys in
              match Hashtbl.find_opt tbl k with
              | Some rs -> Hashtbl.replace tbl k (rs @ [ full ])
              | None ->
                  order := k :: !order;
                  Hashtbl.replace tbl k [ full ])
            rows;
          List.rev_map
            (fun k ->
              let group = Hashtbl.find tbl k in
              (List.hd group, group))
            !order
        end
      in
      if Obs.enabled (tracer env) then begin
        Obs.set sp "rows_in" (Obs.Int (List.length rows));
        Obs.set sp "keys" (Obs.Int (List.length keys));
        Obs.set sp "buckets" (Obs.Int (List.length groups))
      end;
      Obs.leave (tracer env) sp;
      List.filter_map (emit_group scope_vars post assigns) groups

and exec_coll env id (p : Ir.coll_plan) : Relation.t =
  match env.stats with
  | None -> exec_coll_inner env id p
  | Some st ->
      let t0 = clock () in
      let r = exec_coll_inner env id p in
      let t1 = clock () in
      let a = Ir.touch st id in
      a.Ir.a_invocations <- a.Ir.a_invocations + 1;
      a.Ir.a_rows <- a.Ir.a_rows + Relation.cardinality r;
      a.Ir.a_incl_ns <- Int64.add a.Ir.a_incl_ns (Int64.sub t1 t0);
      r

and exec_coll_inner env id (p : Ir.coll_plan) : Relation.t =
  match p with
  | Fallback { coll; _ } -> I.eval_collection env.ctx env.outer coll
  | Union { head; disjuncts } -> (
      let name = head.head_name in
      Gov.tick (gov env);
      if not (Gov.enter_collection (gov env)) then
        Relation.empty ~name head.head_attrs
      else
        let sp = Obs.enter (tracer env) ("collection:" ^ name) in
        let compute () =
          let tuples =
            List.concat
              (List.map2
                 (fun did d -> exec_disjunct env did head d)
                 (Ir.coll_child_ids id p) disjuncts)
          in
          let tuples =
            if not (Gov.active (gov env)) then tuples
            else
              let n = List.length tuples in
              let allowed = Gov.charge_rows (gov env) n in
              if allowed >= n then tuples else I.take allowed tuples
          in
          let r =
            Relation.make ~name (Schema.make head.head_attrs) tuples
          in
          match (I.conv env.ctx).Conventions.collection with
          | Conventions.Set -> Relation.dedup r
          | Conventions.Bag -> r
        in
        match compute () with
        | r ->
            if Obs.enabled (tracer env) then
              Obs.set sp "rows_emitted" (Obs.Int (Relation.cardinality r));
            Obs.leave (tracer env) sp;
            Gov.leave_collection (gov env);
            r
        | exception Eval_error e ->
            Obs.leave (tracer env) sp;
            Gov.leave_collection (gov env);
            raise (Eval_error (Err.in_collection name e))
        | exception Err.Guard_error e ->
            Obs.leave (tracer env) sp;
            Gov.leave_collection (gov env);
            raise (Eval_error (Err.in_collection name e))
        | exception e ->
            Obs.leave (tracer env) sp;
            Gov.leave_collection (gov env);
            raise e)

(* ------------------------------------------------------------------ *)
(* Recursive strata: hash-based fixpoints over plans                   *)
(* ------------------------------------------------------------------ *)

(* The delta-substitution helpers ([delta_name], [count_scans_coll],
   [subst_scan], [opaque_refs_coll], [seminaive_eligible]) live in
   [Arc_plan.Ir] so the incremental maintenance layer (Arc_ivm) shares
   them with the fixpoints below. *)
let delta_name = Ir.delta_name

let naive_fixpoint env (dps : (Ir.def_plan * int) list) =
  let ctx = env.ctx in
  let sp = Obs.enter (tracer env) "fixpoint:naive" in
  if Obs.enabled (tracer env) then
    Obs.set sp "stratum"
      (Obs.Str (String.concat "," (List.map (fun (d, _) -> d.Ir.dname) dps)));
  let changed = ref true in
  let iterations = ref 0 in
  while !changed do
    incr iterations;
    Gov.tick (gov env);
    changed := false;
    if Gov.iteration_allowed (gov env) !iterations && not (Gov.stopped (gov env))
    then begin
      let isp = Obs.enter (tracer env) "iteration" in
      List.iter
        (fun (dp, id) ->
          let n = dp.Ir.dname in
          let current = Option.get (I.idb_get ctx n) in
          let next =
            Relation.dedup
              (Relation.union current (exec_coll env id dp.Ir.dplan))
          in
          let delta =
            Relation.cardinality next - Relation.cardinality current
          in
          with_actual env id (fun a -> a.Ir.a_deltas <- delta :: a.Ir.a_deltas);
          if Obs.enabled (tracer env) then
            Obs.set isp ("delta:" ^ n) (Obs.Int delta);
          if not (Relation.equal_set next current) then begin
            I.idb_set ctx n next;
            changed := true
          end)
        dps;
      Obs.leave (tracer env) isp
    end
  done;
  List.iter
    (fun (_, id) -> with_actual env id (fun a -> a.Ir.a_iterations <- !iterations))
    dps;
  Obs.set sp "iterations" (Obs.Int !iterations);
  Obs.leave (tracer env) sp

let seminaive_fixpoint env component (dps : (Ir.def_plan * int) list) =
  let ctx = env.ctx in
  let sp = Obs.enter (tracer env) "fixpoint:seminaive" in
  if Obs.enabled (tracer env) then
    Obs.set sp "stratum" (Obs.Str (String.concat "," component));
  let ssp = Obs.enter (tracer env) "seed" in
  List.iter
    (fun (dp, id) ->
      let n = dp.Ir.dname in
      let seed = Relation.dedup (exec_coll env id dp.Ir.dplan) in
      I.idb_set ctx n seed;
      I.idb_set ctx (delta_name n) seed;
      with_actual env id (fun a ->
          a.Ir.a_deltas <- Relation.cardinality seed :: a.Ir.a_deltas);
      if Obs.enabled (tracer env) then
        Obs.set ssp ("delta:" ^ n) (Obs.Int (Relation.cardinality seed)))
    dps;
  Obs.leave (tracer env) ssp;
  let iterations = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    incr iterations;
    Gov.tick (gov env);
    if
      (not (Gov.iteration_allowed (gov env) !iterations))
      || Gov.stopped (gov env)
    then continue_ := false
    else begin
      let isp = Obs.enter (tracer env) "iteration" in
      let new_deltas =
        List.map
          (fun (dp, id) ->
            let n = dp.Ir.dname in
            let occurrences = Ir.count_scans_coll component dp.Ir.dplan in
            let derived =
              List.init occurrences (fun i ->
                  (* the substituted plan is shape-identical, so node ids
                     carry over to the delta rewrite *)
                  exec_coll env id (Ir.subst_scan component i dp.Ir.dplan))
            in
            let full = Option.get (I.idb_get ctx n) in
            let attrs =
              match dp.Ir.dplan with
              | Ir.Union { head; _ } | Ir.Fallback { head; _ } ->
                  head.head_attrs
            in
            let fresh =
              List.fold_left
                (fun acc r ->
                  Relation.union acc (Relation.minus (Relation.dedup r) full))
                (Relation.empty ~name:n attrs)
                derived
            in
            let fresh = Relation.dedup fresh in
            with_actual env id (fun a ->
                a.Ir.a_deltas <- Relation.cardinality fresh :: a.Ir.a_deltas);
            (n, fresh))
          dps
      in
      List.iter
        (fun (n, fresh) ->
          I.idb_set ctx n
            (Relation.dedup (Relation.union (Option.get (I.idb_get ctx n)) fresh)))
        new_deltas;
      List.iter
        (fun (n, fresh) -> I.idb_set ctx (delta_name n) fresh)
        new_deltas;
      if Obs.enabled (tracer env) then
        List.iter
          (fun (n, fresh) ->
            Obs.set isp ("delta:" ^ n) (Obs.Int (Relation.cardinality fresh)))
          new_deltas;
      Obs.leave (tracer env) isp;
      if List.for_all (fun (_, fresh) -> Relation.is_empty fresh) new_deltas
      then continue_ := false
    end
  done;
  List.iter
    (fun (_, id) -> with_actual env id (fun a -> a.Ir.a_iterations <- !iterations))
    dps;
  Obs.set sp "iterations" (Obs.Int !iterations);
  Obs.leave (tracer env) sp;
  List.iter (fun n -> I.idb_remove ctx (delta_name n)) component

(* The indexed seminaive fixpoint: the same round structure as
   [seminaive_fixpoint], made incremental in three ways. One delta rule
   per component-scan occurrence, restricted to the single disjunct that
   contains the occurrence — the other disjuncts are independent of that
   delta and are skipped instead of re-run every round. Per-rule caches
   ([fix_cache]) memoize every component-free subtree and keep hash-join
   build tables alive across rounds, so the stable side of a delta join
   is built once and only probed thereafter. And a per-definition seen-set
   of canonical tuple keys replaces the per-round dedup/minus against the
   accumulated relation, so per-round cost tracks the delta, not the
   closure. Rules run on the batched block pipeline; budgets charge at the
   same points as the tuple path (a tick plus a row charge per rule run,
   iteration checks once per round). *)
let indexed_seminaive_fixpoint env component (dps : (Ir.def_plan * int) list)
    =
  let ctx = env.ctx in
  let env = { env with batched = true } in
  let banned = component @ List.map delta_name component in
  let sp = Obs.enter (tracer env) "fixpoint:seminaive" in
  if Obs.enabled (tracer env) then begin
    Obs.set sp "stratum" (Obs.Str (String.concat "," component));
    Obs.set sp "mode" (Obs.Str "indexed")
  end;
  let ssp = Obs.enter (tracer env) "seed" in
  let defs =
    List.map
      (fun (dp, id) ->
        let n = dp.Ir.dname in
        let head, disjuncts =
          match dp.Ir.dplan with
          | Ir.Union { head; disjuncts } -> (head, disjuncts)
          (* Fallback plans never pass [Ir.seminaive_eligible] *)
          | Ir.Fallback { head; _ } -> (head, [])
        in
        let seed = Relation.dedup (exec_coll env id dp.Ir.dplan) in
        I.idb_set ctx n seed;
        I.idb_set ctx (delta_name n) seed;
        with_actual env id (fun a ->
            a.Ir.a_deltas <- Relation.cardinality seed :: a.Ir.a_deltas);
        if Obs.enabled (tracer env) then
          Obs.set ssp ("delta:" ^ n) (Obs.Int (Relation.cardinality seed));
        let seen = Hashtbl.create (max 64 (4 * Relation.cardinality seed)) in
        List.iter
          (fun tp -> Hashtbl.replace seen (Tuple.key tp) ())
          (Relation.tuples seed);
        let dids = Ir.coll_child_ids id dp.Ir.dplan in
        let occurrences = Ir.count_scans_coll component dp.Ir.dplan in
        let rules =
          List.init occurrences (fun i ->
              match Ir.subst_scan component i dp.Ir.dplan with
              | Ir.Union { disjuncts = subst; _ } ->
                  (* exactly one disjunct was rewritten: the one holding
                     occurrence [i] *)
                  let rec pick ds ss ids =
                    match (ds, ss, ids) with
                    | d :: _, s :: _, did :: _ when d <> s -> (s, did)
                    | _ :: ds, _ :: ss, _ :: ids -> pick ds ss ids
                    | _ -> assert false
                  in
                  let sd, did = pick disjuncts subst dids in
                  (sd, did, make_fix_cache banned did sd)
              | Ir.Fallback _ -> assert false)
        in
        (n, id, head, Schema.make head.head_attrs, rules, seen))
      dps
  in
  Obs.leave (tracer env) ssp;
  let iterations = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    incr iterations;
    Gov.tick (gov env);
    if
      (not (Gov.iteration_allowed (gov env) !iterations))
      || Gov.stopped (gov env)
    then continue_ := false
    else begin
      let isp = Obs.enter (tracer env) "iteration" in
      let new_deltas =
        List.map
          (fun (n, id, head, schema, rules, seen) ->
            let fresh = ref [] in
            List.iter
              (fun (sd, did, fc) ->
                Gov.tick (gov env);
                if Gov.enter_collection (gov env) then begin
                  let tuples =
                    match
                      exec_disjunct { env with fix = Some fc } did head sd
                    with
                    | tuples -> tuples
                    | exception Eval_error e ->
                        Gov.leave_collection (gov env);
                        raise (Eval_error (Err.in_collection n e))
                    | exception Err.Guard_error e ->
                        Gov.leave_collection (gov env);
                        raise (Eval_error (Err.in_collection n e))
                    | exception e ->
                        Gov.leave_collection (gov env);
                        raise e
                  in
                  let tuples =
                    if not (Gov.active (gov env)) then tuples
                    else
                      let c = List.length tuples in
                      let allowed = Gov.charge_rows (gov env) c in
                      if allowed >= c then tuples else I.take allowed tuples
                  in
                  Gov.leave_collection (gov env);
                  List.iter
                    (fun tp ->
                      let k = Tuple.key tp in
                      if not (Hashtbl.mem seen k) then begin
                        Hashtbl.add seen k ();
                        fresh := tp :: !fresh
                      end)
                    tuples
                end)
              rules;
            (n, id, Relation.make ~name:n schema (List.rev !fresh)))
          defs
      in
      List.iter
        (fun (n, id, fresh) ->
          let card = Relation.cardinality fresh in
          with_actual env id (fun a -> a.Ir.a_deltas <- card :: a.Ir.a_deltas);
          if Obs.enabled (tracer env) then
            Obs.set isp ("delta:" ^ n) (Obs.Int card);
          (* [fresh] is disjoint from the accumulated relation by the
             seen-set, so a plain bag union keeps it a set *)
          I.idb_set ctx n
            (Relation.union (Option.get (I.idb_get ctx n)) fresh);
          I.idb_set ctx (delta_name n) fresh)
        new_deltas;
      Obs.leave (tracer env) isp;
      if List.for_all (fun (_, _, f) -> Relation.is_empty f) new_deltas then
        continue_ := false
    end
  done;
  List.iter
    (fun (_, id, _, _, _, _) ->
      with_actual env id (fun a -> a.Ir.a_iterations <- !iterations))
    defs;
  Obs.set sp "iterations" (Obs.Int !iterations);
  Obs.leave (tracer env) sp;
  List.iter (fun n -> I.idb_remove ctx (delta_name n)) component

(* [base] is the id of the stratum's first definition; consecutive
   definitions follow at offsets of [Ir.size_coll], mirroring
   [Ir.program_ids]. *)
let exec_stratum ?(fixpoint = `Indexed) env base (s : Ir.stratum) =
  let ctx = env.ctx in
  match s with
  | Ir.Nonrecursive dp -> I.idb_set ctx dp.dname (exec_coll env base dp.dplan)
  | Ir.Recursive dps ->
      let component = List.map (fun d -> d.Ir.dname) dps in
      let dps_ids =
        List.rev
          (fst
             (List.fold_left
                (fun (acc, next) dp ->
                  ((dp, next) :: acc, next + Ir.size_coll dp.Ir.dplan))
                ([], base) dps))
      in
      (* stratification check, as in the reference *)
      List.iter
        (fun dp ->
          List.iter
            (fun (m, negative) ->
              if negative && List.mem m component then
                raise_kind
                  (Err.Unstratifiable { name = dp.Ir.dname; dep = m }))
            (Depend.collection_deps dp.Ir.dcoll))
        dps;
      List.iter
        (fun dp ->
          let attrs =
            match dp.Ir.dplan with
            | Ir.Union { head; _ } | Ir.Fallback { head; _ } -> head.head_attrs
          in
          I.idb_set ctx dp.Ir.dname (Relation.empty ~name:dp.Ir.dname attrs))
        dps;
      let strategy =
        match I.strategy ctx with
        | Eval.Seminaive when Ir.seminaive_eligible component dps -> `Seminaive
        | _ -> `Naive
      in
      (match (strategy, fixpoint) with
      | `Naive, _ -> naive_fixpoint env dps_ids
      | `Seminaive, `Indexed -> indexed_seminaive_fixpoint env component dps_ids
      | `Seminaive, `Tuple -> seminaive_fixpoint env component dps_ids)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(* Lower and optimize a program against a database: returns the context
   (with abstracts registered, IDB empty), the raw and optimized plans, and
   the per-pass change report. *)
let compile ?conv ?externals ?strategy ?tracer ?guard ~db (prog : program) =
  (* goal-directed recursion: restrict recursive definitions to the
     constants the main query demands (AST-level, before validation, so
     the magic relation is prepared and stratified like any other def) *)
  let prog, magic_changed = Opt.magic_sets prog in
  let ctx, safe = I.prepare ?conv ?externals ?strategy ?tracer ?guard ~db prog in
  let lenv =
    Lower.env_of_db ~db ~defs:(List.map (fun d -> d.def_name) safe)
  in
  let raw = Lower.lower_program lenv ~safe prog in
  let optimized, report = Opt.optimize lenv raw in
  (ctx, raw, optimized, ("magic-sets", magic_changed) :: report)

let exec_program ?stats ?(batched = true) ?(fixpoint = `Indexed) ctx
    (pp : Ir.program_plan) : Eval.outcome =
  let env = { ctx; outer = []; stats; batched; fix = None } in
  let tracer = I.tracer ctx in
  let counter = ref 0 in
  let stratum_base s =
    let v = !counter in
    let sz =
      match s with
      | Ir.Nonrecursive dp -> Ir.size_coll dp.Ir.dplan
      | Ir.Recursive dps ->
          List.fold_left (fun acc dp -> acc + Ir.size_coll dp.Ir.dplan) 0 dps
    in
    counter := !counter + sz;
    v
  in
  if pp.strata <> [] then begin
    let sp = Obs.enter tracer "definitions" in
    (try
       List.iter (fun s -> exec_stratum ~fixpoint env (stratum_base s) s)
         pp.strata
     with
    | Err.Guard_error e ->
        Obs.leave tracer sp;
        raise (Eval_error e)
    | e ->
        Obs.leave tracer sp;
        raise e);
    Obs.leave tracer sp
  end;
  try
    match pp.main with
    | Ir.Main_coll p -> Eval.Rows (exec_coll env !counter p)
    | Ir.Main_sentence f -> Eval.Truth (I.eval_formula ctx [] f)
  with
  | Err.Guard_error e -> raise (Eval_error e)
  | V.Type_error m -> raise (Eval_error { Err.kind = Err.Msg ("type error: " ^ m); context = [] })

let run ?conv ?externals ?strategy ?tracer ?guard ?batched ?fixpoint ~db
    (prog : program) =
  try
    let ctx, _, optimized, _ =
      compile ?conv ?externals ?strategy ?tracer ?guard ~db prog
    in
    exec_program ?batched ?fixpoint ctx optimized
  with V.Type_error m -> raise (Eval_error { Err.kind = Err.Msg ("type error: " ^ m); context = [] })

let run_rows ?conv ?externals ?strategy ?tracer ?guard ?batched ?fixpoint ~db
    prog =
  match
    run ?conv ?externals ?strategy ?tracer ?guard ?batched ?fixpoint ~db prog
  with
  | Eval.Rows r -> r
  | Eval.Truth _ ->
      raise_kind (Err.Msg "expected a collection result, got a sentence")

let run_truth ?conv ?externals ?strategy ?tracer ?guard ?batched ?fixpoint ~db
    prog =
  match
    run ?conv ?externals ?strategy ?tracer ?guard ?batched ?fixpoint ~db prog
  with
  | Eval.Truth t -> t
  | Eval.Rows _ ->
      raise_kind (Err.Msg "expected a sentence result, got a collection")

(* ------------------------------------------------------------------ *)
(* Incremental-maintenance hooks (Arc_ivm)                             *)
(* ------------------------------------------------------------------ *)

(* The maintenance layer differentiates pipelines and recomputes fallback
   strata itself; it needs the raw operators on an explicit context, with
   stats off (node ids are irrelevant without a stats table). *)

let exec_pipeline ctx ?(outer = []) (t : Ir.t) : I.benv list =
  exec_rows { ctx; outer; stats = None; batched = false; fix = None } 0 t

let exec_collection ctx (p : Ir.coll_plan) : Relation.t =
  exec_coll { ctx; outer = []; stats = None; batched = false; fix = None } 0 p

let exec_stratum_plan ctx (s : Ir.stratum) : unit =
  exec_stratum
    { ctx; outer = []; stats = None; batched = false; fix = None }
    0 s

(* ------------------------------------------------------------------ *)
(* Metrics export                                                      *)
(* ------------------------------------------------------------------ *)

module Metrics = Arc_obs.Metrics
module Explain = Arc_plan.Explain

(* Aggregates a run's per-node actuals into operator-level series: totals
   as counters, per-node distributions as histograms. This is what
   [arc eval --profile] prints and what [--metrics-out] exports. *)
let export_stats (m : Metrics.t) (pp : Ir.program_plan) (stats : Ir.stats) =
  List.iter
    (fun ni ->
      match ni.Explain.ni_actual with
      | None -> ()
      | Some a ->
          let labels = [ ("op", ni.Explain.ni_op) ] in
          Metrics.inc m ~labels ~by:a.Ir.a_invocations
            "arc_node_invocations_total";
          Metrics.inc m ~labels ~by:a.Ir.a_rows "arc_node_rows_total";
          Metrics.observe m ~labels "arc_node_excl_ns"
            (Int64.to_float ni.Explain.ni_excl_ns);
          Metrics.observe m ~labels "arc_node_rows"
            (Float.of_int a.Ir.a_rows);
          (match ni.Explain.ni_q with
          | Some q -> Metrics.observe m ~labels "arc_node_q_error" q
          | None -> ()))
    (Explain.analyze_info pp ~stats)
