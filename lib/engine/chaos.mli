(** Fault injection for external relations (the chaos harness).

    Wraps an {!Externals.impl} so its completion function misbehaves in
    controlled, reproducible ways. Together with
    {!Externals.with_retry} this drives the robustness property tests and
    the [arc chaos] smoke subcommand: a fail-once external must become
    transparent under retry, a fail-always external must surface as a typed
    [External_failure], and injected latency must trip wall-clock budgets —
    never an untyped exception. *)

type fault =
  | Fail_every of int
      (** every [n]th completion call raises {!Externals.External_error}
          ([Fail_every 1] = always fail) *)
  | Fail_once  (** the first call fails, all later calls succeed *)
  | Fail_prob of float  (** each call fails with this probability (seeded) *)
  | Latency of int  (** invoke [sleep] with this many ns before answering *)

type stats = { mutable calls : int; mutable failures : int }

val stats : unit -> stats

val wrap :
  ?seed:int ->
  ?sleep:(int -> unit) ->
  ?stats:stats ->
  fault ->
  Externals.impl ->
  Externals.impl
(** [seed] (default 42) makes [Fail_prob] deterministic; [sleep] (default
    no-op) is the injectable latency hook; [stats] observes call/failure
    counts. Wrap order matters: [with_retry (wrap fault impl)] retries
    through the fault, [wrap fault (with_retry impl)] injects faults the
    retry layer never sees. *)

val wrap_all :
  ?seed:int ->
  ?sleep:(int -> unit) ->
  ?stats:stats ->
  fault ->
  Externals.impl list ->
  Externals.impl list
