open Ast
module V = Arc_value.Value

module CA = Arc_core.Ast

exception Parse_error of string

type token =
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | COLON
  | DOT
  | BANG
  | TURNSTILE  (* :- *)
  | IDENT of string
  | WILD
  | NUMBER of V.t
  | STRING of string
  | OP of string
  | EOF

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let tokenize input =
  let n = String.length input in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let pos = ref 0 in
  let peek i = if !pos + i < n then Some input.[!pos + i] else None in
  while !pos < n do
    let c = input.[!pos] in
    match c with
    | ' ' | '\t' | '\n' | '\r' -> incr pos
    | '/' when peek 1 = Some '/' ->
        while !pos < n && input.[!pos] <> '\n' do
          incr pos
        done
    | '(' -> emit LPAREN; incr pos
    | ')' -> emit RPAREN; incr pos
    | '{' -> emit LBRACE; incr pos
    | '}' -> emit RBRACE; incr pos
    | ',' -> emit COMMA; incr pos
    | '.' -> emit DOT; incr pos
    | '!' -> emit BANG; incr pos
    | ':' ->
        if peek 1 = Some '-' then (emit TURNSTILE; pos := !pos + 2)
        else (emit COLON; incr pos)
    | '=' -> emit (OP "="); incr pos
    | '<' ->
        if peek 1 = Some '=' then (emit (OP "<="); pos := !pos + 2)
        else if peek 1 = Some '>' then (emit (OP "<>"); pos := !pos + 2)
        else (emit (OP "<"); incr pos)
    | '>' ->
        if peek 1 = Some '=' then (emit (OP ">="); pos := !pos + 2)
        else (emit (OP ">"); incr pos)
    | '+' | '-' | '*' | '/' -> emit (OP (String.make 1 c)); incr pos
    | '"' ->
        let start = !pos + 1 in
        let e = ref start in
        while !e < n && input.[!e] <> '"' do incr e done;
        if !e >= n then fail "unterminated string";
        emit (STRING (String.sub input start (!e - start)));
        pos := !e + 1
    | '0' .. '9' ->
        let start = !pos in
        while !pos < n && (match input.[!pos] with '0' .. '9' -> true | _ -> false) do
          incr pos
        done;
        let lit = String.sub input start (!pos - start) in
        (match int_of_string_opt lit with
        | Some i -> emit (NUMBER (V.Int i))
        | None -> fail "integer literal %S out of range (at offset %d)" lit start)
    | '_' when (match peek 1 with
                | Some ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_') -> false
                | _ -> true) ->
        emit WILD;
        incr pos
    | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
        let start = !pos in
        while
          !pos < n
          && (match input.[!pos] with
             | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
             | _ -> false)
        do
          incr pos
        done;
        emit (IDENT (String.sub input start (!pos - start)))
    | c -> fail "unexpected character %C" c
  done;
  List.rev (EOF :: !toks)

type state = { toks : token array }

let tok st i = if i < Array.length st.toks then st.toks.(i) else EOF

let expect st i t name =
  if tok st i = t then i + 1 else fail "expected %s" name

let parse_dterm st i =
  match tok st i with
  | IDENT v -> (D_var v, i + 1)
  | WILD -> (D_wild, i + 1)
  | NUMBER v -> (D_const v, i + 1)
  | STRING s -> (D_const (V.Str s), i + 1)
  | OP "-" -> (
      match tok st (i + 1) with
      | NUMBER (V.Int n) -> (D_const (V.Int (-n)), i + 2)
      | _ -> fail "expected number after '-'")
  | _ -> fail "expected term"

let rec parse_dexpr st i =
  let l, i = parse_dmul st i in
  let rec loop acc i =
    match tok st i with
    | OP "+" ->
        let r, i = parse_dmul st (i + 1) in
        loop (X_binop (CA.Add, acc, r)) i
    | OP "-" ->
        let r, i = parse_dmul st (i + 1) in
        loop (X_binop (CA.Sub, acc, r)) i
    | _ -> (acc, i)
  in
  loop l i

and parse_dmul st i =
  let l, i = parse_datom st i in
  let rec loop acc i =
    match tok st i with
    | OP "*" ->
        let r, i = parse_datom st (i + 1) in
        loop (X_binop (CA.Mul, acc, r)) i
    | OP "/" ->
        let r, i = parse_datom st (i + 1) in
        loop (X_binop (CA.Div, acc, r)) i
    | _ -> (acc, i)
  in
  loop l i

and parse_datom st i =
  match tok st i with
  | LPAREN ->
      let e, i = parse_dexpr st (i + 1) in
      let i = expect st i RPAREN ")" in
      (e, i)
  | _ ->
      let t, i = parse_dterm st i in
      (X_term t, i)

let parse_atom st i =
  match tok st i with
  | IDENT p ->
      let i = expect st (i + 1) LPAREN "(" in
      let rec args i acc =
        match tok st i with
        | RPAREN -> (i + 1, acc)
        | _ -> (
            let t, i = parse_dterm st i in
            match tok st i with
            | COMMA -> args (i + 1) (acc @ [ t ])
            | RPAREN -> (i + 1, acc @ [ t ])
            | _ -> fail "expected ',' or ')' in atom")
      in
      let i, args = args i [] in
      ({ pred = p; args }, i)
  | _ -> fail "expected atom"

let cmp_of_op = function
  | "=" -> CA.Eq
  | "<>" -> CA.Neq
  | "<" -> CA.Lt
  | "<=" -> CA.Leq
  | ">" -> CA.Gt
  | ">=" -> CA.Geq
  | op -> fail "unknown comparison %s" op

let rec parse_literal st i =
  match tok st i with
  | BANG ->
      let a, i = parse_atom st (i + 1) in
      (L_neg a, i)
  | IDENT v when tok st (i + 1) = OP "=" && is_agg st (i + 2) ->
      (* v = sum <expr> : { body } *)
      let kind =
        match tok st (i + 2) with
        | IDENT k -> Option.get (Arc_value.Aggregate.kind_of_string k)
        | _ -> assert false
      in
      let target, i = parse_dexpr st (i + 3) in
      let i = expect st i COLON ":" in
      let i = expect st i LBRACE "{" in
      let rec body i acc =
        let l, i = parse_literal st i in
        match tok st i with
        | COMMA -> body (i + 1) (acc @ [ l ])
        | RBRACE -> (i + 1, acc @ [ l ])
        | _ -> fail "expected ',' or '}' in aggregate body"
      in
      let i, body_lits = body i [] in
      (L_agg (v, kind, target, body_lits), i)
  | IDENT _ when tok st (i + 1) = LPAREN ->
      let a, i = parse_atom st i in
      (L_pos a, i)
  | _ -> (
      let l, i = parse_dexpr st i in
      match tok st i with
      | OP op ->
          let r, i = parse_dexpr st (i + 1) in
          (L_cmp (cmp_of_op op, l, r), i)
      | _ -> fail "expected comparison operator")

and is_agg st i =
  match tok st i with
  | IDENT k -> Arc_value.Aggregate.kind_of_string k <> None
  | _ -> false

let parse_rule st i =
  let head, i = parse_atom st i in
  match tok st i with
  | DOT -> ({ head; body = [] }, i + 1)
  | TURNSTILE ->
      let rec body i acc =
        let l, i = parse_literal st i in
        match tok st i with
        | COMMA -> body (i + 1) (acc @ [ l ])
        | DOT -> (i + 1, acc @ [ l ])
        | _ -> fail "expected ',' or '.' after literal"
      in
      let i, lits = body (i + 1) [] in
      ({ head; body = lits }, i)
  | _ -> fail "expected ':-' or '.' after head"

let run f input =
  let st = { toks = Array.of_list (tokenize input) } in
  let v, i = f st 0 in
  if tok st i <> EOF then fail "trailing input" else v

let program_of_string s =
  run
    (fun st i ->
      let rec rules i acc =
        if tok st i = EOF then (acc, i)
        else
          let r, i = parse_rule st i in
          rules i (acc @ [ r ])
      in
      rules i [])
    s

let rule_of_string s = run parse_rule s
