open Ast
module V = Arc_value.Value
module Aggregate = Arc_value.Aggregate
module Conventions = Arc_value.Conventions
module Relation = Arc_relation.Relation
module Tuple = Arc_relation.Tuple
module Schema = Arc_relation.Schema
module Database = Arc_relation.Database
module CA = Arc_core.Ast

exception Datalog_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Datalog_error s)) fmt

type env = (string * V.t) list

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec expr_vars = function
  | X_term (D_var v) -> [ v ]
  | X_term _ -> []
  | X_binop (_, l, r) -> expr_vars l @ expr_vars r

let rec eval_expr (env : env) = function
  | X_term (D_var v) -> (
      match List.assoc_opt v env with
      | Some value -> value
      | None -> fail "unbound variable %S" v)
  | X_term (D_const c) -> c
  | X_term D_wild -> fail "wildcard in expression"
  | X_binop (op, l, r) -> (
      let vl = eval_expr env l and vr = eval_expr env r in
      match op with
      | CA.Add -> V.add vl vr
      | CA.Sub -> V.sub vl vr
      | CA.Mul -> V.mul vl vr
      | CA.Div -> V.div vl vr
      | CA.Mod -> V.modulo vl vr
      | CA.Neg -> fail "unary negation as binop")

let test_cmp op vl vr =
  let c = V.compare vl vr in
  match op with
  | CA.Eq -> c = 0
  | CA.Neq -> c <> 0
  | CA.Lt -> c < 0
  | CA.Leq -> c <= 0
  | CA.Gt -> c > 0
  | CA.Geq -> c >= 0

(* ------------------------------------------------------------------ *)
(* Literal scheduling                                                  *)
(* ------------------------------------------------------------------ *)

let bound env v = List.mem_assoc v env

let lit_ready env = function
  | L_pos _ -> true
  | L_neg a ->
      List.for_all
        (function D_var v -> bound env v | _ -> true)
        a.args
  | L_cmp (CA.Eq, X_term (D_var v), r) when not (bound env v) ->
      List.for_all (bound env) (expr_vars r)
  | L_cmp (CA.Eq, l, X_term (D_var v)) when not (bound env v) ->
      List.for_all (bound env) (expr_vars l)
  | L_cmp (_, l, r) ->
      List.for_all (bound env) (expr_vars l @ expr_vars r)
  | L_agg (_, _, _, body) ->
      (* outer groundings come from env; body-local variables are fine *)
      ignore body;
      true

(* unify atom args against a tuple's values *)
let unify_atom env (a : atom) (values : V.t list) : env option =
  if List.length a.args <> List.length values then
    fail "arity mismatch for %s" a.pred;
  List.fold_left2
    (fun acc arg v ->
      match acc with
      | None -> None
      | Some env -> (
          match arg with
          | D_wild -> Some env
          | D_const c -> if V.equal c v then Some env else None
          | D_var var -> (
              match List.assoc_opt var env with
              | Some v' -> if V.equal v' v then Some env else None
              | None -> Some ((var, v) :: env))))
    (Some env) a.args values

let relation_of rels db name =
  match List.assoc_opt name !rels with
  | Some r -> r
  | None -> (
      match Database.find_opt db name with
      | Some r -> r
      | None -> fail "unknown relation %S" name)

(* evaluate a body: all solutions extending [env] *)
let rec eval_body rels db (env : env) (lits : literal list) : env list =
  match lits with
  | [] -> [ env ]
  | _ -> (
      match List.partition (lit_ready env) lits with
      | [], _ -> fail "unsafe rule body: no literal is ready"
      | ready :: rest_ready, waiting ->
          let remaining = rest_ready @ waiting in
          let envs =
            match ready with
            | L_pos a ->
                let r = relation_of rels db a.pred in
                List.filter_map
                  (fun tp -> unify_atom env a (Tuple.values tp))
                  (Relation.tuples r)
            | L_neg a ->
                let r = relation_of rels db a.pred in
                if
                  List.exists
                    (fun tp -> unify_atom env a (Tuple.values tp) <> None)
                    (Relation.tuples r)
                then []
                else [ env ]
            | L_cmp (CA.Eq, X_term (D_var v), e) when not (bound env v) ->
                [ (v, eval_expr env e) :: env ]
            | L_cmp (CA.Eq, e, X_term (D_var v)) when not (bound env v) ->
                [ (v, eval_expr env e) :: env ]
            | L_cmp (op, l, r) ->
                if test_cmp op (eval_expr env l) (eval_expr env r) then [ env ]
                else []
            | L_agg (v, kind, target, body) ->
                (* FOI: body solutions do not escape; distinct solutions
                   contribute once (set semantics) *)
                let sols = eval_body rels db env body in
                let seen = Hashtbl.create 16 in
                let values =
                  List.filter_map
                    (fun env' ->
                      let key =
                        String.concat "|"
                          (List.map
                             (fun (k, x) -> k ^ "=" ^ V.to_string x)
                             (List.sort compare env'))
                      in
                      if Hashtbl.mem seen key then None
                      else (
                        Hashtbl.add seen key ();
                        Some (eval_expr env' target)))
                    sols
                in
                let result =
                  Aggregate.apply Conventions.Agg_zero kind values
                in
                if bound env v then
                  if V.equal (List.assoc v env) result then [ env ] else []
                else [ (v, result) :: env ]
          in
          List.concat_map (fun env' -> eval_body rels db env' remaining) envs)

(* ------------------------------------------------------------------ *)
(* Stratification                                                      *)
(* ------------------------------------------------------------------ *)

let rec literal_deps = function
  | L_pos a -> [ (a.pred, false) ]
  | L_neg a -> [ (a.pred, true) ]
  | L_cmp _ -> []
  | L_agg (_, _, _, body) ->
      List.map (fun (p, _) -> (p, true)) (List.concat_map literal_deps body)

let stratify (prog : program) : string list list =
  let idb = head_preds prog in
  let deps p =
    List.concat_map
      (fun r ->
        if r.head.pred = p then
          List.filter (fun (q, _) -> List.mem q idb) (List.concat_map literal_deps r.body)
        else [])
      prog
  in
  (* compute stratum numbers by fixpoint on the usual constraints *)
  let stratum = Hashtbl.create 8 in
  List.iter (fun p -> Hashtbl.replace stratum p 0) idb;
  let changed = ref true in
  let iters = ref 0 in
  while !changed do
    incr iters;
    if !iters > 1000 then
      fail "program is not stratifiable (negation/aggregation cycle)";
    changed := false;
    List.iter
      (fun p ->
        List.iter
          (fun (q, negative) ->
            let sq = Hashtbl.find stratum q in
            let sp = Hashtbl.find stratum p in
            let required = if negative then sq + 1 else sq in
            if sp < required then (
              Hashtbl.replace stratum p required;
              changed := true))
          (deps p))
      idb
  done;
  let max_stratum = List.fold_left (fun m p -> max m (Hashtbl.find stratum p)) 0 idb in
  List.init (max_stratum + 1) (fun i ->
      List.filter (fun p -> Hashtbl.find stratum p = i) idb)
  |> List.filter (fun l -> l <> [])

(* ------------------------------------------------------------------ *)
(* Fixpoint                                                            *)
(* ------------------------------------------------------------------ *)

let head_schema (prog : program) p =
  let arity =
    match List.find_opt (fun r -> r.head.pred = p) prog with
    | Some r -> List.length r.head.args
    | None -> fail "no rule for %S" p
  in
  Schema.make (List.init arity (fun i -> Printf.sprintf "a%d" (i + 1)))

let eval_rule rels db (r : rule) : Tuple.t list =
  let schema = head_schema [ r ] r.head.pred in
  let envs = eval_body rels db [] r.body in
  List.map
    (fun env ->
      Tuple.make schema
        (Array.of_list
           (List.map
              (function
                | D_var v -> (
                    match List.assoc_opt v env with
                    | Some value -> value
                    | None -> fail "head variable %S not bound by the body" v)
                | D_const c -> c
                | D_wild -> fail "wildcard in rule head")
              r.head.args)))
    envs

let run ~db (prog : program) =
  let strata = stratify prog in
  let rels = ref [] in
  List.iter
    (fun stratum ->
      (* initialize *)
      List.iter
        (fun p ->
          if not (List.mem_assoc p !rels) then
            rels := (p, Relation.make ~name:p (head_schema prog p) []) :: !rels)
        stratum;
      let changed = ref true in
      let iters = ref 0 in
      while !changed do
        incr iters;
        if !iters > 100_000 then fail "fixpoint diverged";
        changed := false;
        List.iter
          (fun (r : rule) ->
            if List.mem r.head.pred stratum then begin
              let fresh = eval_rule rels db r in
              let current = List.assoc r.head.pred !rels in
              let next =
                Relation.dedup
                  (Relation.union current
                     (Relation.make (Relation.schema current) fresh))
              in
              if not (Relation.equal_set next current) then begin
                rels :=
                  (r.head.pred, next) :: List.remove_assoc r.head.pred !rels;
                changed := true
              end
            end)
          prog
      done)
    strata;
  List.rev !rels

let query ~db prog p =
  match List.assoc_opt p (run ~db prog) with
  | Some r -> r
  | None -> fail "no IDB relation %S" p
