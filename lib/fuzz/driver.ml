(** Fuzz-campaign driver: generate → check → shrink → save repro.

    One campaign is fully determined by [(seed, count)]: each iteration
    derives its own [Random.State] substream from [(seed, i)], so cases are
    independent of each other and replayable in isolation. Every iteration
    checks one ARC case; every 3rd additionally a TRC case and every 4th a
    Datalog case (frontend round-trips, see {!Oracle}).

    Progress is observable through [tracer] counters [fuzz.generated],
    [fuzz.skipped], and [fuzz.diverged]. Divergent ARC cases are greedily
    shrunk (preserving the divergence kind) and written as replayable repro
    directories under [out]. *)

module Obs = Arc_obs.Obs

type stats = {
  mutable generated : int;
  mutable skipped : int;  (** generator output rejected by validation *)
  mutable diverged : int;
}

type finding = {
  f_name : string;
  f_repro : string option;  (** repro directory, when one was saved *)
  f_divergences : Oracle.divergence list;
}

let sanitize s =
  String.map
    (fun c ->
      match Char.lowercase_ascii c with
      | ('a' .. 'z' | '0' .. '9' | '-') as c -> c
      | _ -> '-')
    s

let same_kind kind divs =
  List.exists (fun d -> d.Oracle.d_kind = kind) divs

let run ?(tracer = Obs.null) ?(shrink = true) ?(ivm = false) ?out ~seed
    ~count () =
  let stats = { generated = 0; skipped = 0; diverged = 0 } in
  let span = Obs.enter tracer "fuzz" in
  let findings = ref [] in
  let record ?(recheck = Oracle.check) label case divs =
    stats.diverged <- stats.diverged + 1;
    Obs.count tracer "fuzz.diverged" 1;
    let repro =
      match (case, out) with
      | Some c, Some dir ->
          let d0 = List.hd divs in
          let c, _steps =
            if shrink then
              Shrink.shrink
                ~fails:(fun v -> same_kind d0.Oracle.d_kind (recheck v))
                c
            else (c, 0)
          in
          (* the shrunk case's own divergence gives the sharpest detail *)
          let d =
            match
              List.find_opt
                (fun d -> d.Oracle.d_kind = d0.Oracle.d_kind)
                (recheck c)
            with
            | Some d -> d
            | None -> d0
          in
          Some
            (Repro.save ~dir ~name:label c
               ~meta:
                 [
                   ("kind", d.d_kind);
                   ("conv", d.d_conv);
                   ("detail", d.d_detail);
                   ("seed", string_of_int seed);
                 ])
      | _ -> None
    in
    findings := { f_name = label; f_repro = repro; f_divergences = divs } :: !findings
  in
  for i = 0 to count - 1 do
    let st = Random.State.make [| seed; i |] in
    let case = Gen.gen_case st in
    stats.generated <- stats.generated + 1;
    Obs.count tracer "fuzz.generated" 1;
    (match Case.validate case with
    | Error _ ->
        stats.skipped <- stats.skipped + 1;
        Obs.count tracer "fuzz.skipped" 1
    | Ok () when ivm -> (
        (* IVM mode: replay random batches through incremental
           maintenance; the batch stream is a pure function of (seed, i),
           so shrinking re-derives the same batches on every probe. *)
        let ivm_rng () = Random.State.make [| seed; i; 977 |] in
        match Oracle.check_ivm ~rng:(ivm_rng ()) case with
        | [] -> ()
        | divs ->
            let kind = (List.hd divs).Oracle.d_kind in
            record
              ~recheck:(fun v -> Oracle.check_ivm ~rng:(ivm_rng ()) v)
              (Printf.sprintf "s%d-c%d-%s" seed i (sanitize kind))
              (Some case) divs)
    | Ok () -> (
        match Oracle.check case with
        | [] -> ()
        | divs ->
            let kind = (List.hd divs).Oracle.d_kind in
            record
              (Printf.sprintf "s%d-c%d-%s" seed i (sanitize kind))
              (Some case) divs));
    (if (not ivm) && i mod 3 = 0 then
       let tc = Gen.gen_trc st in
       stats.generated <- stats.generated + 1;
       Obs.count tracer "fuzz.generated" 1;
       match Oracle.check_trc tc with
       | [] -> ()
       | divs -> record (Printf.sprintf "s%d-c%d-trc" seed i) None divs);
    if (not ivm) && i mod 4 = 0 then
      let dc = Gen.gen_datalog st in
      stats.generated <- stats.generated + 1;
      Obs.count tracer "fuzz.generated" 1;
      match Oracle.check_datalog dc with
      | [] -> ()
      | divs -> record (Printf.sprintf "s%d-c%d-datalog" seed i) None divs
  done;
  Obs.leave tracer span;
  (stats, List.rev !findings)
