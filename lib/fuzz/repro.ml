(** Replayable repro directories.

    A repro is a directory holding one shrunk failing case:

    {v
    test/repros/<name>/
      query.arc     ASCII concrete syntax (Printer/Parser round-trip)
      <Rel>.csv     one typed CSV per base relation (Csv round-trip)
      meta.txt      key: value lines — kind, conv, detail, seed
    v}

    Everything is plain text so a repro diff reads like a bug report; the
    loader re-parses the query and CSVs into a {!Case.t} that the oracle
    replays verbatim (see [test/test_fuzz.ml]). *)

module Relation = Arc_relation.Relation
module Database = Arc_relation.Database
module Csv = Arc_relation.Csv

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let save ~dir ~name (case : Case.t) ~(meta : (string * string) list) =
  let root = Filename.concat dir name in
  if not (Sys.file_exists root) then Sys.mkdir root 0o755;
  write_file
    (Filename.concat root "query.arc")
    (Arc_syntax.Printer.program ~unicode:false case.Case.prog ^ "\n");
  List.iter
    (fun rel ->
      write_file
        (Filename.concat root (rel ^ ".csv"))
        (Csv.write (Database.find case.db rel)))
    (Database.names case.db);
  write_file
    (Filename.concat root "meta.txt")
    (String.concat ""
       (List.map
          (fun (k, v) ->
            Printf.sprintf "%s: %s\n" k
              (String.concat " " (String.split_on_char '\n' v)))
          meta));
  root

let load dir : Case.t * (string * string) list =
  let prog =
    Arc_syntax.Parser.program_of_string
      (read_file (Filename.concat dir "query.arc"))
  in
  let rels =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".csv")
    |> List.sort compare
    |> List.map (fun f ->
           let name = Filename.chop_suffix f ".csv" in
           (name, Csv.read ~name (read_file (Filename.concat dir f))))
  in
  let meta =
    let path = Filename.concat dir "meta.txt" in
    if Sys.file_exists path then
      String.split_on_char '\n' (read_file path)
      |> List.filter_map (fun line ->
             match String.index_opt line ':' with
             | Some i ->
                 Some
                   ( String.sub line 0 i,
                     String.trim
                       (String.sub line (i + 1) (String.length line - i - 1))
                   )
             | None -> None)
    else []
  in
  ({ Case.prog; db = Database.of_list rels }, meta)

let list_repros root =
  if not (Sys.file_exists root) then []
  else
    Sys.readdir root |> Array.to_list |> List.sort compare
    |> List.filter_map (fun d ->
           let dir = Filename.concat root d in
           if
             Sys.is_directory dir
             && Sys.file_exists (Filename.concat dir "query.arc")
           then Some dir
           else None)
