(** The differential oracle.

    A case passes when every observable agrees:

    - {b eval-vs-exec}: reference evaluator vs plan engine, under all 8
      convention combinations × both recursion strategies;
    - {b arc-roundtrip}: print (ASCII) → re-parse → structurally equal
      program;
    - {b sql-*}: where {!Arc_sql.Of_arc} supports the core, the printed SQL
      must re-parse, translate back, and evaluate bag-equal; and
      {!Arc_sql.Eval_sql} acts as a third engine on the statement;
    - {b trc-*} / {b datalog-*}: frontend-specific round-trips and
      cross-engine checks for generated TRC / Datalog cases.

    Runs are resource-governed ({!fuzz_budget}); a budget trip on either
    side of a comparison skips that comparison (recorded as a skip, never a
    divergence). Both-sides-rejected also agrees, matching the tier-1
    differential suite. *)

open Arc_core.Ast
module V = Arc_value.Value
module B3 = Arc_value.Bool3
module Conventions = Arc_value.Conventions
module Relation = Arc_relation.Relation
module Tuple = Arc_relation.Tuple
module Eval = Arc_engine.Eval
module Exec = Arc_engine.Exec
module Err = Arc_guard.Error
module Budget = Arc_guard.Budget
module Gov = Arc_guard.Gov
module Trc = Arc_trc.Trc

type outcome =
  | Bag of string list  (** sorted canonical tuple keys *)
  | Truth of B3.t
  | Failed of string  (** evaluation rejected the case (label is the kind) *)
  | Resource  (** budget exhausted — comparisons involving this are skipped *)

type divergence = {
  d_kind : string;  (** e.g. ["eval-vs-exec"], ["sql-roundtrip"] *)
  d_conv : string;  (** convention / strategy label, [""] when irrelevant *)
  d_detail : string;
}

let divergence_to_string d =
  if d.d_conv = "" then Printf.sprintf "[%s] %s" d.d_kind d.d_detail
  else Printf.sprintf "[%s @ %s] %s" d.d_kind d.d_conv d.d_detail

(* Deterministic (no wall clock) but bounded: runaway recursion and blowup
   joins trip a typed budget error instead of hanging the fuzzer. *)
let fuzz_budget =
  {
    Budget.timeout_ns = None;
    max_iterations = Some 300;
    max_rows = Some 50_000;
    max_bindings = Some 200_000;
    max_depth = Some 30;
  }

let kind_label : Err.kind -> string = function
  | Err.Unstratifiable _ -> "unstratifiable"
  | Err.Unbound_external _ -> "unbound-external"
  | Err.Unbound_abstract _ -> "unbound-abstract"
  | Err.Unknown_relation _ -> "unknown-relation"
  | Err.Head_unassigned _ -> "head-unassigned"
  | Err.Budget_exceeded _ -> "budget"
  | Err.Cancelled -> "cancelled"
  | Err.External_failure _ -> "external"
  | Err.Msg m -> "error: " ^ m

let bag_of r = Bag (List.sort compare (List.map Tuple.key (Relation.tuples r)))

let outcome_of f =
  match f () with
  | Eval.Rows r -> bag_of r
  | Eval.Truth t -> Truth t
  | exception Eval.Eval_error e -> (
      match e.Err.kind with
      | Err.Budget_exceeded _ | Err.Cancelled -> Resource
      | k -> Failed (kind_label k))

let outcome_to_string = function
  | Bag keys ->
      Printf.sprintf "bag of %d rows [%s]" (List.length keys)
        (String.concat "; " keys)
  | Truth t -> "truth " ^ B3.to_string t
  | Failed m -> "rejected (" ^ m ^ ")"
  | Resource -> "budget exhausted"

(* Resource on either side skips the comparison; both-rejected agrees. *)
let agree a b =
  match (a, b) with
  | Resource, _ | _, Resource -> true
  | Failed _, Failed _ -> true
  | x, y -> x = y

let guard () = Gov.make ~on_limit:`Fail fuzz_budget

let run_eval ?(conv = Conventions.sql_set) ?(strategy = Eval.Seminaive) ~db
    prog =
  outcome_of (fun () ->
      Eval.run ~conv ~strategy ~guard:(guard ()) ~db prog)

let run_exec ?(conv = Conventions.sql_set) ?(strategy = Eval.Seminaive) ~db
    prog =
  outcome_of (fun () ->
      Exec.run ~conv ~strategy ~guard:(guard ()) ~db prog)

(* every convention combination: 2 collection × 2 null-logic × 2 agg-empty *)
let all_conventions : (string * Conventions.t) list =
  List.concat_map
    (fun (cs, cn) ->
      List.concat_map
        (fun (nl, nn) ->
          List.map
            (fun (ae, an) ->
              ( Printf.sprintf "%s/%s/%s" cn nn an,
                Conventions.
                  { collection = cs; null_logic = nl; agg_empty = ae } ))
            [
              (Conventions.Agg_null, "agg_null");
              (Conventions.Agg_zero, "agg_zero");
            ])
        [ (Conventions.Two_valued, "2vl"); (Conventions.Three_valued, "3vl") ])
    [ (Conventions.Set, "set"); (Conventions.Bag, "bag") ]

let strategies = [ ("naive", Eval.Naive); ("seminaive", Eval.Seminaive) ]

(* ------------------------------------------------------------------ *)
(* Check 1: reference evaluator vs plan engine                         *)
(* ------------------------------------------------------------------ *)

let check_engines (case : Case.t) =
  List.concat_map
    (fun (cname, conv) ->
      List.filter_map
        (fun (sname, strategy) ->
          let reference = run_eval ~conv ~strategy ~db:case.Case.db case.prog in
          let plan = run_exec ~conv ~strategy ~db:case.db case.prog in
          if agree reference plan then None
          else
            Some
              {
                d_kind = "eval-vs-exec";
                d_conv = cname ^ "," ^ sname;
                d_detail =
                  Printf.sprintf "reference %s, plan %s"
                    (outcome_to_string reference)
                    (outcome_to_string plan);
              })
        strategies)
    all_conventions

(* ------------------------------------------------------------------ *)
(* Check 1b: execution modes must be result-invisible                  *)
(* ------------------------------------------------------------------ *)

(* Statistics only steer plan choice, batching only changes the physical
   iteration, and the fixpoint implementation only changes how recursive
   strata are driven, so all three must be bag-invisible: the plan engine
   run against an ANALYZEd database, the tuple-at-a-time path, and the
   legacy tuple fixpoint must each agree with the default run under every
   convention combo. *)
let check_modes (case : Case.t) =
  let analyzed = Arc_relation.Database.analyze case.Case.db in
  List.concat_map
    (fun (cname, conv) ->
      let base = run_exec ~conv ~db:case.Case.db case.prog in
      let with_stats =
        outcome_of (fun () ->
            Exec.run ~conv ~guard:(guard ()) ~db:analyzed case.prog)
      in
      let tuple =
        outcome_of (fun () ->
            Exec.run ~conv ~guard:(guard ()) ~batched:false ~db:case.db
              case.prog)
      in
      let tuple_fixpoint =
        outcome_of (fun () ->
            Exec.run ~conv ~guard:(guard ()) ~fixpoint:`Tuple ~db:case.db
              case.prog)
      in
      (if agree base with_stats then []
       else
         [
           {
             d_kind = "stats-vs-plain";
             d_conv = cname;
             d_detail =
               Printf.sprintf "without stats %s, with stats %s"
                 (outcome_to_string base)
                 (outcome_to_string with_stats);
           };
         ])
      @ (if agree base tuple then []
         else
           [
             {
               d_kind = "batched-vs-tuple";
               d_conv = cname;
               d_detail =
                 Printf.sprintf "batched %s, tuple-at-a-time %s"
                   (outcome_to_string base)
                   (outcome_to_string tuple);
             };
           ])
      @
      if agree base tuple_fixpoint then []
      else
        [
          {
            d_kind = "fixpoint-indexed-vs-tuple";
            d_conv = cname;
            d_detail =
              Printf.sprintf "indexed fixpoint %s, tuple fixpoint %s"
                (outcome_to_string base)
                (outcome_to_string tuple_fixpoint);
          };
        ])
    all_conventions

(* ------------------------------------------------------------------ *)
(* Check 2: ARC concrete-syntax round-trip                             *)
(* ------------------------------------------------------------------ *)

let check_arc_roundtrip (case : Case.t) =
  let printed = Arc_syntax.Printer.program ~unicode:false case.Case.prog in
  match Arc_syntax.Parser.program_of_string printed with
  | exception Arc_syntax.Parser.Parse_error m ->
      [
        {
          d_kind = "arc-reparse";
          d_conv = "";
          d_detail = Printf.sprintf "%s in %S" m printed;
        };
      ]
  | reparsed ->
      if equal_program case.prog reparsed then []
      else
        [
          {
            d_kind = "arc-roundtrip";
            d_conv = "";
            d_detail =
              Printf.sprintf "re-parse not structurally equal: %S" printed;
          };
        ]

(* ------------------------------------------------------------------ *)
(* Check 3: SQL round-trip and the SQL engine as a third oracle        *)
(* ------------------------------------------------------------------ *)

let check_sql (case : Case.t) =
  let schemas = Case.schemas case in
  List.concat_map
    (fun (cname, conv) ->
      match Arc_sql.Of_arc.statement ~conv ~schemas case.Case.prog with
      | exception Arc_sql.Of_arc.Unsupported _ -> []
      | stmt -> (
          let text = Arc_sql.Print.statement stmt in
          let reference = run_eval ~conv ~db:case.db case.prog in
          let round =
            match Arc_sql.Parse.statement_of_string text with
            | exception Arc_sql.Parse.Parse_error m ->
                [
                  {
                    d_kind = "sql-reparse";
                    d_conv = cname;
                    d_detail = Printf.sprintf "%s in %S" m text;
                  };
                ]
            | stmt' -> (
                match Arc_sql.To_arc.statement ~schemas stmt' with
                | exception Arc_sql.To_arc.Unsupported m ->
                    [
                      {
                        d_kind = "sql-to-arc";
                        d_conv = cname;
                        d_detail = Printf.sprintf "%s in %S" m text;
                      };
                    ]
                | prog' ->
                    let back = run_eval ~conv ~db:case.db prog' in
                    if agree reference back then []
                    else
                      [
                        {
                          d_kind = "sql-roundtrip";
                          d_conv = cname;
                          d_detail =
                            Printf.sprintf "direct %s, round-tripped %s via %S"
                              (outcome_to_string reference)
                              (outcome_to_string back) text;
                        };
                      ])
          in
          let sql_engine =
            match Arc_sql.Eval_sql.run ~db:case.db stmt with
            | r -> bag_of r
            | exception Arc_sql.Eval_sql.Sql_error m -> Failed ("sql: " ^ m)
            | exception V.Type_error m -> Failed ("type: " ^ m)
          in
          round
          @
          if agree reference sql_engine then []
          else
            [
              {
                d_kind = "sql-eval";
                d_conv = cname;
                d_detail =
                  Printf.sprintf "arc %s, sql engine %s on %S"
                    (outcome_to_string reference)
                    (outcome_to_string sql_engine)
                    text;
              };
            ]))
    [ ("sql", Conventions.sql); ("sql_set", Conventions.sql_set) ]

let check (case : Case.t) =
  check_engines case @ check_modes case @ check_arc_roundtrip case
  @ check_sql case

(* ------------------------------------------------------------------ *)
(* TRC cases: print/parse round-trip, then both engines                *)
(* ------------------------------------------------------------------ *)

let check_trc (tc : Gen.trc_case) =
  let normalize q =
    match Trc.normalize ~head_name:"Q" q with
    | c -> Ok { defs = []; main = Coll c }
    | exception Trc.Normalize_error m -> Error m
  in
  let printed = Trc.to_string tc.Gen.tq in
  let roundtrip =
    match Trc.parse printed with
    | exception Trc.Parse_error m ->
        [
          {
            d_kind = "trc-reparse";
            d_conv = "";
            d_detail = Printf.sprintf "%s in %S" m printed;
          };
        ]
    | q' -> (
        match (normalize tc.tq, normalize q') with
        | Error m, _ ->
            [
              {
                d_kind = "trc-normalize";
                d_conv = "";
                d_detail = Printf.sprintf "%s in %S" m printed;
              };
            ]
        | Ok _, Error m ->
            [
              {
                d_kind = "trc-roundtrip";
                d_conv = "";
                d_detail =
                  Printf.sprintf "re-parse no longer normalizes (%s): %S" m
                    printed;
              };
            ]
        | Ok p, Ok p' ->
            if equal_program p p' then []
            else
              [
                {
                  d_kind = "trc-roundtrip";
                  d_conv = "";
                  d_detail =
                    Printf.sprintf "re-parse normalizes differently: %S" printed;
                };
              ])
  in
  let engines =
    match normalize tc.tq with
    | Error _ -> []
    | Ok p ->
        List.filter_map
          (fun (cname, conv) ->
            let reference = run_eval ~conv ~db:tc.tdb p in
            let plan = run_exec ~conv ~db:tc.tdb p in
            if agree reference plan then None
            else
              Some
                {
                  d_kind = "trc-eval";
                  d_conv = cname;
                  d_detail =
                    Printf.sprintf "reference %s, plan %s on %S"
                      (outcome_to_string reference)
                      (outcome_to_string plan) printed;
                })
          [
            ("classical", Conventions.classical); ("sql_set", Conventions.sql_set);
          ]
  in
  roundtrip @ engines

(* ------------------------------------------------------------------ *)
(* Datalog cases: print/parse round-trip, direct engine vs embedding   *)
(* ------------------------------------------------------------------ *)

let check_datalog (dc : Gen.datalog_case) =
  let printed = Arc_datalog.Ast.program_to_string dc.Gen.dprog in
  let roundtrip =
    match Arc_datalog.Parse.program_of_string printed with
    | exception Arc_datalog.Parse.Parse_error m ->
        [
          {
            d_kind = "datalog-reparse";
            d_conv = "";
            d_detail = Printf.sprintf "%s in %S" m printed;
          };
        ]
    | p' ->
        if Arc_datalog.Ast.equal_program dc.dprog p' then []
        else
          [
            {
              d_kind = "datalog-roundtrip";
              d_conv = "";
              d_detail = Printf.sprintf "re-parse not equal: %S" printed;
            };
          ]
  in
  let direct =
    match Arc_datalog.Eval.query ~db:dc.ddb dc.dprog dc.dquery with
    | r -> bag_of r
    | exception Arc_datalog.Eval.Datalog_error m -> Failed ("datalog: " ^ m)
    | exception V.Type_error m -> Failed ("type: " ^ m)
  in
  let schemas =
    List.map
      (fun name ->
        ( name,
          Arc_relation.Schema.attrs
            (Relation.schema (Arc_relation.Database.find dc.ddb name)) ))
      (Arc_relation.Database.names dc.ddb)
  in
  let embed =
    match Arc_datalog.Embed.program ~schemas dc.dprog ~query:dc.dquery with
    | p -> Some p
    | exception Arc_datalog.Embed.Embed_error _ -> None
  in
  let cross =
    match embed with
    | None -> []
    | Some p ->
        List.filter_map
          (fun (ename, run) ->
            let via_arc = run ~conv:Conventions.souffle ~db:dc.ddb p in
            if agree direct via_arc then None
            else
              Some
                {
                  d_kind = "datalog-embed";
                  d_conv = ename;
                  d_detail =
                    Printf.sprintf "direct %s, embedded %s on %S"
                      (outcome_to_string direct)
                      (outcome_to_string via_arc)
                      printed;
                })
          [
            ("eval", fun ~conv ~db p -> run_eval ~conv ~db p);
            ("exec", fun ~conv ~db p -> run_exec ~conv ~db p);
          ]
  in
  roundtrip @ cross

(* ------------------------------------------------------------------ *)
(* IVM: maintained views vs from-scratch re-evaluation                 *)
(* ------------------------------------------------------------------ *)

module Ivm = Arc_ivm.Ivm

(* A random signed batch against the engine's current database: deletions
   pick live rows (so a single entry never underflows), insertions re-add
   or duplicate rows from the case's original data. An accidentally
   invalid batch (e.g. the same lone row deleted twice) is rejected
   atomically by [Ivm.apply] and simply skipped. *)
let gen_ivm_batch rng (orig : Arc_relation.Database.t)
    (db : Arc_relation.Database.t) : Ivm.batch =
  let names = Arc_relation.Database.names db in
  if names = [] then []
  else
    List.filter_map
      (fun _ ->
        let r = List.nth names (Random.State.int rng (List.length names)) in
        let cur_rows = Relation.tuples (Arc_relation.Database.find db r) in
        let orig_rows = Relation.tuples (Arc_relation.Database.find orig r) in
        if Random.State.bool rng && cur_rows <> [] then
          Some
            ( r,
              [
                ( List.nth cur_rows (Random.State.int rng (List.length cur_rows)),
                  -1 );
              ] )
        else if orig_rows <> [] then
          Some
            ( r,
              [
                ( List.nth orig_rows
                    (Random.State.int rng (List.length orig_rows)),
                  1 + Random.State.int rng 2 );
              ] )
        else None)
      (List.init (1 + Random.State.int rng 3) Fun.id)

(* Register the case as a view under every convention combo, push random
   batches through incremental maintenance, and demand bag-equality with
   from-scratch evaluation after each one. Budget trips skip the combo,
   as in the engine oracle. *)
let check_ivm ?(batches = 3) ~rng (case : Case.t) =
  match case.Case.prog.main with
  | Sentence _ -> []
  | Coll _ ->
      List.concat_map
        (fun (cname, conv) ->
          try
            let ivm = Ivm.create ~conv ~db:case.Case.db () in
            Ivm.register ivm ~name:"main" case.Case.prog;
            let divs = ref [] in
            for _ = 1 to batches do
              if !divs = [] then begin
                let batch = gen_ivm_batch rng case.Case.db (Ivm.db ivm) in
                match
                  if batch = [] then None
                  else Some (Ivm.apply ~guard:(guard ()) ivm batch)
                with
                | exception Ivm.Ivm_error _ -> ()  (* invalid batch: skipped *)
                | None -> ()
                | Some _ -> (
                    match Ivm.check ivm with
                    | [] -> ()
                    | (_, maintained, fresh) :: _ ->
                        divs :=
                          [
                            {
                              d_kind = "ivm-vs-scratch";
                              d_conv = cname;
                              d_detail =
                                Printf.sprintf
                                  "after a %d-row batch: maintained %s, \
                                   scratch %s"
                                  (Ivm.batch_rows batch)
                                  (outcome_to_string (bag_of maintained))
                                  (outcome_to_string (bag_of fresh));
                            };
                          ])
              end
            done;
            !divs
          with
          | Eval.Eval_error _ | Err.Guard_error _ -> []  (* budget: skip *)
          | Ivm.Ivm_error m ->
              [ { d_kind = "ivm-error"; d_conv = cname; d_detail = m } ])
        all_conventions
