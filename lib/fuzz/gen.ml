(** Seeded generation of random safe ARC cores and NULL-bearing databases.

    Programs are correct-by-construction against the grammar below, then
    gated through {!Arc_core.Analysis.validate} as a safety net (rejects are
    counted as skips by the driver, never silently dropped):

    {v
    program  ::= def? { Q(h0..hk) | disjunct (or disjunct)? }
    def      ::= transitive-closure-style recursive definition over the
                 guaranteed int-int prefix of R0
    disjunct ::= exists bindings [grouping?] [join-annotation?]
                 (head-assignments ∧ comparisons ∧ null-tests ∧ likes
                  ∧ nested (not)? exists ...)
    v}

    Databases give every column a fixed type (so well-typed programs stay
    well-typed on every row) but salt ~15% of cells with NULL, and draw
    strings from a pool of delimiter/quote/marker-hostile values. *)

open Arc_core.Ast
module V = Arc_value.Value
module B = Arc_core.Build
module Agg = Arc_value.Aggregate
module Relation = Arc_relation.Relation
module Database = Arc_relation.Database

type ty = T_int | T_str | T_float | T_bool

type column = { col : string; cty : ty }
type table = { rel : string; cols : column list }

let pick st xs = List.nth xs (Random.State.int st (List.length xs))
let chance st p = Random.State.float st 1.0 < p

let str_pool =
  [ "a"; "b"; "it's"; "a,b"; "\""; ""; "null"; "x\ny"; "100% _sure_" ]

let float_pool = [ 0.5; 1.0; 2.25; 1e-7; 3.5 ]
let like_pool = [ "a%"; "%"; "_%"; "%'%"; "b_"; "a" ]

(* ------------------------------------------------------------------ *)
(* Schemas and databases                                               *)
(* ------------------------------------------------------------------ *)

let gen_schema st =
  let ntab = 2 + Random.State.int st 2 in
  List.init ntab (fun i ->
      let rel = Printf.sprintf "R%d" i in
      (* R0 always leads with two int columns, so joins and the recursive
         definition always have material to work with *)
      let arity =
        if i = 0 then 2 + Random.State.int st 2 else 1 + Random.State.int st 3
      in
      let cols =
        List.init arity (fun j ->
            let cty =
              if i = 0 && j < 2 then T_int
              else
                match Random.State.int st 10 with
                | 0 | 1 -> T_str
                | 2 -> T_float
                | 3 -> T_bool
                | _ -> T_int
            in
            { col = Printf.sprintf "c%d" j; cty })
      in
      { rel; cols })

let gen_value st ?(nulls = true) cty =
  if nulls && chance st 0.15 then V.Null
  else
    match cty with
    | T_int -> V.Int (Random.State.int st 5)
    | T_str -> V.Str (pick st str_pool)
    | T_float -> V.Float (pick st float_pool)
    | T_bool -> V.Bool (Random.State.bool st)

let gen_db st ?nulls tables =
  Database.of_list
    (List.map
       (fun t ->
         let nrows = Random.State.int st 8 in
         ( t.rel,
           Relation.of_rows ~name:t.rel
             (List.map (fun c -> c.col) t.cols)
             (List.init nrows (fun _ ->
                  List.map (fun c -> gen_value st ?nulls c.cty) t.cols)) ))
       tables)

(* ------------------------------------------------------------------ *)
(* Cores                                                               *)
(* ------------------------------------------------------------------ *)

(* attrs of a given type visible in an environment of bound variables *)
let attrs_of_ty env ty =
  List.concat_map
    (fun (v, t) ->
      List.filter_map
        (fun c -> if c.cty = ty then Some (v, c.col) else None)
        t.cols)
    env

let const_of st ty =
  B.const (gen_value st ~nulls:false ty)

(* an int-valued term over the environment: attr, constant, or arithmetic
   (division and modulo included deliberately — by-zero must yield NULL) *)
let rec int_term st env depth =
  let ints = attrs_of_ty env T_int in
  if depth > 0 && chance st 0.3 then
    let op = pick st [ B.add; B.sub; B.mul; B.div; B.mod_ ] in
    op (int_term st env (depth - 1)) (int_term st env (depth - 1))
  else if ints <> [] && chance st 0.8 then
    let v, a = pick st ints in
    B.attr v a
  else const_of st T_int

let term_of_ty st env ty =
  match ty with
  | T_int -> int_term st env (if chance st 0.5 then 1 else 0)
  | _ -> (
      let avail = attrs_of_ty env ty in
      if avail <> [] && chance st 0.8 then
        let v, a = pick st avail in
        B.attr v a
      else const_of st ty)

let cmp_ops_for = function
  | T_bool -> [ B.eq; B.neq ]
  | _ -> [ B.eq; B.neq; B.lt; B.leq; B.gt; B.geq ]

(* one comparison/null-test/LIKE conjunct over [env] (and [outer]) *)
let gen_comparison st env outer =
  let full = env @ outer in
  let tys =
    List.filter (fun ty -> attrs_of_ty full ty <> []) [ T_int; T_str; T_float; T_bool ]
  in
  if tys = [] then B.eq (B.cint 0) (B.cint 0)
  else
    let ty = pick st tys in
    let strs = attrs_of_ty full T_str in
    if ty = T_str && strs <> [] && chance st 0.25 then
      let v, a = pick st strs in
      B.like (B.attr v a) (pick st like_pool)
    else if chance st 0.15 then
      let avail = attrs_of_ty full ty in
      let v, a = pick st avail in
      if chance st 0.5 then B.is_null (B.attr v a) else B.not_null (B.attr v a)
    else
      let lhs = term_of_ty st full ty in
      let rhs =
        (* cross-scope link when an outer environment exists *)
        if outer <> [] && attrs_of_ty outer ty <> [] && chance st 0.6 then
          let v, a = pick st (attrs_of_ty outer ty) in
          B.attr v a
        else term_of_ty st full ty
      in
      (pick st (cmp_ops_for ty)) lhs rhs

(* aggregate term over the scope's own int/float attrs *)
let gen_aggregate st env =
  let nums = attrs_of_ty env T_int @ attrs_of_ty env T_float in
  match nums with
  | [] -> B.count (B.cint 1)
  | _ ->
      let v, a = pick st nums in
      let k = pick st [ B.sum; B.count; B.min_; B.max_; B.avg ] in
      k (B.attr v a)

(* A quantifier scope. [head]: Some (attrs × types) when this scope is a
   disjunct of the main/def collection and must assign every head attr;
   None for nested (possibly negated) subscopes. *)
let rec gen_scope st ~srcs ~counter ~depth ~outer ~head ~head_name =
  let nbind = 1 + Random.State.int st (if depth = 0 then 3 else 2) in
  let bound =
    List.init nbind (fun _ ->
        let t = pick st srcs in
        incr counter;
        (Printf.sprintf "v%d" !counter, t))
  in
  let bindings = List.map (fun (v, t) -> B.bind v t.rel) bound in
  let env = bound in
  let grouping =
    match head with
    | Some _ when chance st 0.3 ->
        let keys =
          List.concat_map
            (fun (v, t) ->
              List.filter_map
                (fun c -> if chance st 0.3 then Some (v, c.col) else None)
                t.cols)
            env
        in
        Some keys (* [] is γ∅ *)
    | _ -> None
  in
  let key_attrs ty =
    match grouping with
    | None -> attrs_of_ty env ty
    | Some keys ->
        List.filter
          (fun (v, a) ->
            List.exists
              (fun (v', t) ->
                v' = v && List.exists (fun c -> c.col = a && c.cty = ty) t.cols)
              env)
          keys
  in
  let assignments =
    match head with
    | None -> []
    | Some head_tys ->
        List.map
          (fun (h, ty) ->
            let target = B.attr head_name h in
            match grouping with
            | Some _ ->
                (* grouped: only keys, aggregates, or constants are legal *)
                let keyed = key_attrs ty in
                if (ty = T_int || ty = T_float) && chance st 0.5 then
                  B.eq target (gen_aggregate st env)
                else if keyed <> [] && chance st 0.8 then
                  let v, a = pick st keyed in
                  B.eq target (B.attr v a)
                else B.eq target (const_of st ty)
            | None -> B.eq target (term_of_ty st env ty))
          head_tys
  in
  let comparisons =
    List.init (Random.State.int st 3) (fun _ -> gen_comparison st env outer)
  in
  let agg_preds =
    match grouping with
    | Some _ when chance st 0.5 ->
        [ (pick st [ B.gt; B.leq; B.eq ]) (gen_aggregate st env) (B.cint 3) ]
    | _ -> []
  in
  let nested =
    if depth >= 2 then []
    else
      List.init
        (if chance st 0.35 then 1 else 0)
        (fun _ ->
          let inner =
            gen_scope st ~srcs ~counter ~depth:(depth + 1)
              ~outer:(env @ outer) ~head:None ~head_name
          in
          if chance st 0.7 then B.not_ inner else inner)
  in
  let join =
    (* join annotations only on plain two-binding scopes *)
    if
      head <> None && grouping = None && nested = [] && List.length bound = 2
      && chance st 0.15
    then
      let v1 = fst (List.nth bound 0) and v2 = fst (List.nth bound 1) in
      Some
        (if chance st 0.5 then J_left (J_var v1, J_var v2)
         else J_full (J_var v1, J_var v2))
    else None
  in
  let body = B.conj (assignments @ comparisons @ agg_preds @ nested) in
  match (grouping, join) with
  | Some keys, _ -> B.exists ~grouping:keys bindings body
  | None, Some j -> B.exists ~join:j bindings body
  | None, None -> B.exists bindings body

(* transitive-closure-style recursive definition over R0's int-int prefix *)
let gen_recursive_def st tables =
  let r0 = List.hd tables in
  let c0 = (List.nth r0.cols 0).col and c1 = (List.nth r0.cols 1).col in
  let guard =
    if chance st 0.5 then []
    else [ B.leq (B.attr "e" c0) (B.cint (1 + Random.State.int st 3)) ]
  in
  let base =
    B.exists
      [ B.bind "e" r0.rel ]
      (B.conj
         ([ B.eq (B.attr "T" "x") (B.attr "e" c0);
            B.eq (B.attr "T" "y") (B.attr "e" c1) ]
         @ guard))
  in
  let step =
    B.exists
      [ B.bind "t" "T"; B.bind "e" r0.rel ]
      (B.conj
         [
           B.eq (B.attr "t" "y") (B.attr "e" c0);
           B.eq (B.attr "T" "x") (B.attr "t" "x");
           B.eq (B.attr "T" "y") (B.attr "e" c1);
         ])
  in
  B.define "T" (B.collection "T" [ "x"; "y" ] (B.disj [ base; step ]))

let gen_head st =
  let k = 1 + Random.State.int st 3 in
  List.init k (fun i ->
      let ty =
        match Random.State.int st 8 with
        | 0 | 1 -> T_str
        | 2 -> T_float
        | 3 -> T_bool
        | _ -> T_int
      in
      (Printf.sprintf "h%d" i, ty))

let gen_case st : Case.t =
  let tables = gen_schema st in
  let db = gen_db st tables in
  let recursive = chance st 0.25 in
  let defs = if recursive then [ gen_recursive_def st tables ] else [] in
  let srcs =
    tables
    @
    if recursive then
      [ { rel = "T"; cols = [ { col = "x"; cty = T_int }; { col = "y"; cty = T_int } ] } ]
    else []
  in
  let head = gen_head st in
  let counter = ref 0 in
  let ndisj = if chance st 0.35 then 2 else 1 in
  let disjuncts =
    List.init ndisj (fun _ ->
        gen_scope st ~srcs ~counter ~depth:0 ~outer:[] ~head:(Some head)
          ~head_name:"Q")
  in
  let main =
    B.collection "Q" (List.map fst head) (B.disj disjuncts)
  in
  { Case.prog = { defs; main = Coll main }; db }

(* ------------------------------------------------------------------ *)
(* TRC cases                                                           *)
(* ------------------------------------------------------------------ *)

(* Random textbook-TRC queries over a fixed R(a,b) ⋈ S(b,c) schema,
   exercising the permissive forms the normalizer must clarify: range
   sugar, floating membership atoms, negation, disjunction, and both
   forall styles (range sugar and the ¬∨ implication idiom). *)
type trc_case = { tq : Arc_trc.Trc.query; tdb : Database.t }

let gen_trc st : trc_case =
  let open Arc_trc.Trc in
  let int_col () =
    List.init (Random.State.int st 6) (fun _ ->
        if chance st 0.12 then V.Null else V.Int (Random.State.int st 4))
  in
  let rows2 () =
    let xs = int_col () and ys = int_col () in
    List.map2 (fun a b -> [ a; b ]) xs
      (List.init (List.length xs) (fun i ->
           try List.nth ys i with _ -> V.Int (Random.State.int st 4)))
  in
  let tdb =
    Database.of_list
      [
        ("R", Relation.of_rows ~name:"R" [ "a"; "b" ] (rows2 ()));
        ("S", Relation.of_rows ~name:"S" [ "b"; "c" ] (rows2 ()));
      ]
  in
  let attr v a = T_attr (v, a) in
  let cint n = T_const (V.Int n) in
  let cmp op l r = T_cmp (op, l, r) in
  let rand_cmp ~vars =
    let v, a = pick st vars in
    let op = pick st [ Eq; Neq; Lt; Leq; Gt; Geq ] in
    if chance st 0.5 then cmp op (attr v a) (cint (Random.State.int st 4))
    else
      let v', a' = pick st vars in
      cmp op (attr v a) (attr v' a')
  in
  let link = cmp Eq (attr "r" "b") (attr "s" "b") in
  let inner extra =
    T_and ([ T_member ("s", "S"); link ] @ extra)
  in
  let quantified =
    match Random.State.int st 6 with
    | 0 -> []
    | 1 -> [ T_exists ([ "s" ], inner []) ]
    | 2 ->
        [ T_exists ([ "s" ], inner [ rand_cmp ~vars:[ ("s", "b"); ("s", "c") ] ]) ]
    | 3 -> [ T_not (T_exists ([ "s" ], inner [])) ]
    | 4 ->
        (* forall with range sugar: ∀s∈S[φ] *)
        [
          T_forall
            ( [ "s" ],
              T_and
                [ T_member ("s", "S"); rand_cmp ~vars:[ ("s", "b"); ("r", "a") ] ]
            );
        ]
    | _ ->
        (* the textbook implication idiom: ∀s[¬(s∈S) ∨ φ] *)
        [
          T_forall
            ( [ "s" ],
              T_or
                [
                  T_not (T_member ("s", "S"));
                  rand_cmp ~vars:[ ("s", "c"); ("r", "b") ];
                ] );
        ]
  in
  let guards =
    List.init (Random.State.int st 2) (fun _ ->
        rand_cmp ~vars:[ ("r", "a"); ("r", "b") ])
  in
  let disjunctive g =
    if g <> [] && chance st 0.3 then
      [ T_or (g @ [ rand_cmp ~vars:[ ("r", "a") ] ]) ]
    else g
  in
  let head =
    ("r", "a") :: (if chance st 0.4 then [ ("r", "b") ] else [])
  in
  let body = T_and ([ T_member ("r", "R") ] @ disjunctive guards @ quantified) in
  { tq = { head; body }; tdb }

(* ------------------------------------------------------------------ *)
(* Datalog cases                                                       *)
(* ------------------------------------------------------------------ *)

(* Template-based Datalog programs over a fixed int EDB, exercising
   projection, join, comparison, stratified negation, recursion, and a
   Soufflé aggregate; evaluated both directly and through the ARC
   embedding by the oracle. *)
type datalog_case = {
  dprog : Arc_datalog.Ast.program;
  ddb : Database.t;
  dquery : string;
}

let gen_datalog st : datalog_case =
  let open Arc_datalog.Ast in
  let rel name arity size =
    ( name,
      Relation.of_rows ~name
        (List.init arity (fun i -> Printf.sprintf "a%d" (i + 1)))
        (List.init size (fun _ ->
             List.init arity (fun _ -> V.Int (Random.State.int st 5)))) )
  in
  let ddb =
    Database.of_list
      [
        rel "E" 2 (Random.State.int st 7);
        rel "F" 1 (Random.State.int st 5);
      ]
  in
  let atom pred args = { pred; args = List.map (fun v -> D_var v) args } in
  let var v = X_term (D_var v) in
  let const c = X_term (D_const (V.Int c)) in
  let proj = { head = atom "P" [ "x" ]; body = [ L_pos { pred = "E"; args = [ D_var "x"; D_wild ] } ] } in
  let join_rule =
    {
      head = atom "J" [ "x"; "z" ];
      body =
        [
          L_pos (atom "E" [ "x"; "y" ]);
          L_pos (atom "E" [ "y"; "z" ]);
        ]
        @
        if chance st 0.5 then
          [ L_cmp (Lt, var "x", const (1 + Random.State.int st 4)) ]
        else [];
    }
  in
  let tc =
    [
      { head = atom "T" [ "x"; "y" ]; body = [ L_pos (atom "E" [ "x"; "y" ]) ] };
      {
        head = atom "T" [ "x"; "z" ];
        body = [ L_pos (atom "T" [ "x"; "y" ]); L_pos (atom "E" [ "y"; "z" ]) ];
      };
    ]
  in
  let neg =
    {
      head = atom "N" [ "x" ];
      body = [ L_pos (atom "F" [ "x" ]); L_neg (atom "P" [ "x" ]) ];
    }
  in
  let agg =
    {
      head = atom "A" [ "s" ];
      body =
        [
          L_agg
            ( "s",
              pick st [ Agg.Sum; Agg.Count; Agg.Min; Agg.Max ],
              var "y",
              [ L_pos (atom "E" [ "x"; "y" ]) ] );
        ];
    }
  in
  let choice = Random.State.int st 5 in
  let dprog, dquery =
    match choice with
    | 0 -> ([ proj ], "P")
    | 1 -> ([ join_rule ], "J")
    | 2 -> (tc, "T")
    | 3 -> ([ proj; neg ], "N")
    | _ -> ([ agg ], "A")
  in
  { dprog; ddb; dquery }
