(** Greedy structural shrinking of failing cases.

    [shrink ~fails case] repeatedly replaces the case with the first
    one-step-smaller variant that (a) still validates and (b) still fails
    the caller's predicate, until no variant does. Every accepted variant
    strictly decreases {!Case.size}, so shrinking terminates; an attempt
    cap additionally bounds the number of oracle invocations on stubborn
    cases.

    Variant moves: halve/deplete relations row-wise; drop definitions,
    disjuncts, conjuncts, bindings, grouping keys, and join annotations;
    replace subformulas with [True]; strip a negation. *)

open Arc_core.Ast
module Relation = Arc_relation.Relation
module Schema = Arc_relation.Schema
module Tuple = Arc_relation.Tuple
module Database = Arc_relation.Database

let drop_one xs = List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) xs) xs
let take n xs = List.filteri (fun i _ -> i < n) xs
let drop n xs = List.filteri (fun i _ -> i >= n) xs

let set_nth xs i x = List.mapi (fun j y -> if i = j then x else y) xs

let rec formula_variants (f : formula) : formula list =
  match f with
  | True -> []
  | Pred _ -> [ True ]
  | And fs ->
      (* never produce the empty connective — True is its printable form *)
      List.map
        (function [] -> True | fs' -> And fs')
        (drop_one fs)
      @ List.concat
          (List.mapi
             (fun i fi ->
               List.map
                 (fun fi' -> And (set_nth fs i fi'))
                 (formula_variants fi))
             fs)
  | Or fs ->
      (if List.length fs > 1 then List.map (fun fs' -> Or fs') (drop_one fs)
       else [])
      @ List.concat
          (List.mapi
             (fun i fi ->
               List.map (fun fi' -> Or (set_nth fs i fi')) (formula_variants fi))
             fs)
  | Not g -> (g :: List.map (fun g' -> Not g') (formula_variants g)) @ [ True ]
  | Exists s -> List.map (fun s' -> Exists s') (scope_variants s) @ [ True ]

and scope_variants (s : scope) : scope list =
  let drop_bindings =
    if List.length s.bindings > 1 then
      List.map (fun bs -> { s with bindings = bs }) (drop_one s.bindings)
    else []
  in
  let grouping_moves =
    match s.grouping with
    | None -> []
    | Some ks ->
        { s with grouping = None }
        :: List.map (fun ks' -> { s with grouping = Some ks' }) (drop_one ks)
  in
  let join_moves =
    match s.join with Some _ -> [ { s with join = None } ] | None -> []
  in
  let bodies =
    List.map (fun b -> { s with body = b }) (formula_variants s.body)
  in
  drop_bindings @ grouping_moves @ join_moves @ bodies

let collection_variants (c : collection) =
  List.map (fun b -> { c with body = b }) (formula_variants c.body)

let program_variants (p : program) : program list =
  let drop_defs = List.map (fun ds -> { p with defs = ds }) (drop_one p.defs) in
  let def_bodies =
    List.concat
      (List.mapi
         (fun i d ->
           List.map
             (fun c -> { p with defs = set_nth p.defs i { d with def_body = c } })
             (collection_variants d.def_body))
         p.defs)
  in
  let mains =
    match p.main with
    | Coll c ->
        List.map (fun c' -> { p with main = Coll c' }) (collection_variants c)
    | Sentence f ->
        List.map (fun f' -> { p with main = Sentence f' }) (formula_variants f)
  in
  drop_defs @ mains @ def_bodies

let db_variants db : Database.t list =
  let names = Database.names db in
  let rebuild name rows' =
    Database.of_list
      (List.map
         (fun nm ->
           if nm = name then
             let attrs =
               Schema.attrs (Relation.schema (Database.find db nm))
             in
             (nm, Relation.of_rows ~name:nm attrs rows')
           else (nm, Database.find db nm))
         names)
  in
  List.concat_map
    (fun name ->
      let rows =
        List.map Tuple.values (Relation.tuples (Database.find db name))
      in
      let n = List.length rows in
      if n = 0 then []
      else
        let halves = if n >= 2 then [ take (n / 2) rows; drop (n / 2) rows ] else [] in
        List.map (rebuild name) (halves @ drop_one rows))
    names

let case_variants (c : Case.t) : Case.t list =
  List.map (fun db -> { c with Case.db }) (db_variants c.Case.db)
  @ List.map (fun prog -> { c with Case.prog }) (program_variants c.prog)

let valid c = match Case.validate c with Ok () -> true | Error _ -> false

let shrink ?(max_attempts = 500) ~fails (c0 : Case.t) : Case.t * int =
  let attempts = ref 0 in
  let steps = ref 0 in
  let rec go c =
    let sz = Case.size c in
    let accepted =
      List.find_opt
        (fun v ->
          !attempts < max_attempts
          &&
          (incr attempts;
           Case.size v < sz && valid v && fails v))
        (case_variants c)
    in
    match accepted with
    | Some v ->
        incr steps;
        go v
    | None -> c
  in
  let c = go c0 in
  (c, !steps)
