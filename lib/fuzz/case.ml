(** One differential-testing case: an ARC program plus the database it runs
    against. Conventions and strategies are not part of the case — the
    oracle sweeps all of them. *)

type t = {
  prog : Arc_core.Ast.program;
  db : Arc_relation.Database.t;
}

let schemas t =
  List.map
    (fun name ->
      ( name,
        Arc_relation.Schema.attrs
          (Arc_relation.Relation.schema (Arc_relation.Database.find t.db name))
      ))
    (Arc_relation.Database.names t.db)

let validate t =
  Arc_core.Analysis.validate
    ~env:(Arc_core.Analysis.env ~schemas:(schemas t) ())
    t.prog

(* AST-node + database-row count: the measure the shrinker must strictly
   decrease, guaranteeing termination. *)
let size t =
  let open Arc_core.Ast in
  let rec tsize = function
    | Const _ | Attr _ -> 1
    | Scalar (_, ts) -> 1 + List.fold_left (fun a t -> a + tsize t) 0 ts
    | Agg (_, t) -> 1 + tsize t
  in
  let psize p = 1 + List.fold_left (fun a t -> a + tsize t) 0 (pred_terms p) in
  let rec fsize = function
    | True -> 1
    | Pred p -> psize p
    | And fs | Or fs -> 1 + List.fold_left (fun a f -> a + fsize f) 0 fs
    | Not f -> 1 + fsize f
    | Exists s ->
        1
        + List.length s.bindings
        + (match s.grouping with Some ks -> 1 + List.length ks | None -> 0)
        + (match s.join with Some _ -> 1 | None -> 0)
        + List.fold_left
            (fun a b ->
              a
              + match b.source with Base _ -> 0 | Nested c -> csize c)
            0 s.bindings
        + fsize s.body
  and csize c = 1 + List.length c.head.head_attrs + fsize c.body in
  let qsize = function Coll c -> csize c | Sentence f -> fsize f in
  let prog_size =
    qsize t.prog.main
    + List.fold_left (fun a d -> a + csize d.def_body) 0 t.prog.defs
  in
  let db_size =
    List.fold_left
      (fun a name ->
        a + 1
        + Arc_relation.Relation.cardinality (Arc_relation.Database.find t.db name))
      0
      (Arc_relation.Database.names t.db)
  in
  prog_size + db_size
