(** Ergonomic constructors for ARC ASTs.

    The catalog of paper queries, the tests, and the SQL→ARC translator all
    build trees through this module, so the raw constructors in {!Ast} stay
    free of convenience defaults. *)

open Ast

(** {1 Terms} *)

val attr : var -> attr -> term
val const : Arc_value.Value.t -> term
val cint : int -> term
val cstr : string -> term
val cnull : term
val add : term -> term -> term
val sub : term -> term -> term
val mul : term -> term -> term
val div : term -> term -> term
val mod_ : term -> term -> term
val agg : string -> term -> term
(** [agg "sum" t]; raises [Invalid_argument] on unknown aggregate names. *)

val sum : term -> term
val count : term -> term
val avg : term -> term
val min_ : term -> term
val max_ : term -> term

(** {1 Predicates (as formulas)} *)

val eq : term -> term -> formula
val neq : term -> term -> formula
val lt : term -> term -> formula
val leq : term -> term -> formula
val gt : term -> term -> formula
val geq : term -> term -> formula
val is_null : term -> formula
val not_null : term -> formula
val like : term -> string -> formula

(** {1 Formulas} *)

val conj : formula list -> formula
val disj : formula list -> formula
val not_ : formula -> formula

val exists :
  ?grouping:grouping -> ?join:join_tree -> binding list -> formula -> formula
(** [exists bindings body]: a quantifier scope. Pass [~grouping:[]] for γ∅. *)

val group_all : grouping
(** γ∅ — aggregate over the entire scope ("group by true"). *)

(** {1 Bindings} *)

val bind : var -> rel_name -> binding
(** [bind "r" "R"] is [r ∈ R]. *)

val bind_in : var -> collection -> binding
(** Correlated nested comprehension binding. *)

(** {1 Collections, queries, programs} *)

val collection : rel_name -> attr list -> formula -> collection
(** [collection "Q" ["A"; "B"] body] is [{Q(A,B) | body}]. *)

val coll : rel_name -> attr list -> formula -> query
val sentence : formula -> query
val define : rel_name -> collection -> definition
