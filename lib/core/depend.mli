(** Relation-dependency analysis of definition environments (Section 2.9).

    Shared by the reference evaluator and the plan compiler so that both
    stratify a program identically: the strongly connected components of
    the definition dependency graph, dependencies-first, with each edge
    flagged when it crosses a nonmonotone position (negation, or a grouping
    scope that actually aggregates). *)

open Ast

val formula_deps :
  neg:bool -> grouped:bool -> (rel_name * bool) list -> formula ->
  (rel_name * bool) list
(** Accumulates [(relation, nonmonotone)] dependencies of a formula. *)

val collection_deps : collection -> (rel_name * bool) list
val def_deps : definition -> (rel_name * bool) list

val sccs :
  definition list ->
  rel_name list list * (rel_name * (rel_name * bool) list) list
(** [(components, adjacency)] — components in dependencies-first order;
    the adjacency keeps only edges between the given definitions. *)

val is_recursive :
  (rel_name * (rel_name * bool) list) list -> rel_name list -> bool
(** A component is recursive when it has >1 member or a self-edge. *)
