open Ast

(* Relation dependencies of a formula: every [Base] binding reachable from
   it, flagged [true] when the reference sits under a negation or an
   aggregating grouping scope (the nonmonotone positions that stratification
   must order strictly). Pure deduplication — grouping without aggregation
   predicates (Section 2.7) — is monotone and safe inside recursion. *)
let rec formula_deps ~neg ~grouped acc = function
  | True | Pred _ -> acc
  | And fs | Or fs -> List.fold_left (formula_deps ~neg ~grouped) acc fs
  | Not f -> formula_deps ~neg:true ~grouped acc f
  | Exists s ->
      let grouped' =
        grouped || (s.grouping <> None && formula_has_agg s.body)
      in
      let acc =
        List.fold_left
          (fun acc b ->
            match b.source with
            | Base n -> (n, neg || grouped') :: acc
            | Nested c -> formula_deps ~neg ~grouped:grouped' acc c.body)
          acc s.bindings
      in
      formula_deps ~neg ~grouped:grouped' acc s.body

let collection_deps (c : collection) =
  formula_deps ~neg:false ~grouped:false [] c.body

let def_deps (d : definition) = collection_deps d.def_body

(* Tarjan's SCC algorithm; emits components dependencies-first. *)
let sccs (defs : definition list) =
  let names = List.map (fun d -> d.def_name) defs in
  let adj =
    List.map
      (fun d ->
        (d.def_name, List.filter (fun (n, _) -> List.mem n names) (def_deps d)))
      defs
  in
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let result = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun (w, _) ->
        if not (Hashtbl.mem index w) then (
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w)))
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (try List.assoc v adj with Not_found -> []);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            Hashtbl.replace on_stack w false;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      result := pop [] :: !result
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) names;
  (List.rev !result, adj)

let is_recursive adj component =
  match component with
  | [ n ] -> (
      match List.assoc_opt n adj with
      | Some deps -> List.exists (fun (m, _) -> m = n) deps
      | None -> false)
  | _ -> true
