open Ast
module Value = Arc_value.Value
module Aggregate = Arc_value.Aggregate

let scalar_op_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Neg -> "-"

let rec term = function
  | Const v -> Value.to_string v
  | Attr (v, a) -> v ^ "." ^ a
  | Scalar (Neg, [ t ]) -> "-" ^ atom t
  | Scalar (op, [ l; r ]) ->
      Printf.sprintf "%s %s %s" (atom l) (scalar_op_symbol op) (atom r)
  | Scalar (op, ts) ->
      (* non-binary applications print prefix-style *)
      Printf.sprintf "%s(%s)" (scalar_op_symbol op)
        (String.concat ", " (List.map term ts))
  | Agg (k, t) -> Printf.sprintf "%s(%s)" (Aggregate.kind_to_string k) (term t)

and atom t =
  match t with
  | Scalar ((Add | Sub | Mul | Div | Mod), [ _; _ ]) -> "(" ^ term t ^ ")"
  | _ -> term t

let pred = function
  | Cmp (op, l, r) ->
      Printf.sprintf "%s %s %s" (term l) (cmp_op_to_string op) (term r)
  | Is_null t -> term t ^ " is null"
  | Not_null t -> term t ^ " is not null"
  | Like (t, p) -> Printf.sprintf "%s like %s" (term t) (Value.to_string (Value.Str p))

let rec join_tree = function
  | J_var v -> v
  | J_lit c -> Value.to_string c
  | J_inner l -> "inner(" ^ String.concat ", " (List.map join_tree l) ^ ")"
  | J_left (a, b) -> "left(" ^ join_tree a ^ ", " ^ join_tree b ^ ")"
  | J_full (a, b) -> "full(" ^ join_tree a ^ ", " ^ join_tree b ^ ")"

let grouping = function
  | [] -> "\xce\xb3_\xe2\x88\x85" (* γ_∅ *)
  | keys ->
      "\xce\xb3_{"
      ^ String.concat "," (List.map (fun (v, a) -> v ^ "." ^ a) keys)
      ^ "}"

let head h = h.head_name ^ "(" ^ String.concat ", " h.head_attrs ^ ")"
