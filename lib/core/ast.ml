type var = string
type attr = string
type rel_name = string

type cmp_op = Eq | Neq | Lt | Leq | Gt | Geq

type scalar_op = Add | Sub | Mul | Div | Mod | Neg

type term =
  | Const of Arc_value.Value.t
  | Attr of var * attr
  | Scalar of scalar_op * term list
  | Agg of Arc_value.Aggregate.kind * term

type pred =
  | Cmp of cmp_op * term * term
  | Is_null of term
  | Not_null of term
  | Like of term * string

type join_tree =
  | J_var of var
  | J_lit of Arc_value.Value.t
  | J_inner of join_tree list
  | J_left of join_tree * join_tree
  | J_full of join_tree * join_tree

type grouping = (var * attr) list

type source = Base of rel_name | Nested of collection

and binding = { var : var; source : source }

and scope = {
  bindings : binding list;
  grouping : grouping option;
  join : join_tree option;
  body : formula;
}

and formula =
  | True
  | Pred of pred
  | And of formula list
  | Or of formula list
  | Not of formula
  | Exists of scope

and head = { head_name : rel_name; head_attrs : attr list }

and collection = { head : head; body : formula }

type query = Coll of collection | Sentence of formula

type definition = { def_name : rel_name; def_body : collection }

type program = { defs : definition list; main : query }

let program ?(defs = []) main = { defs; main }

let rec equal_term a b =
  match (a, b) with
  | Const x, Const y -> Arc_value.Value.equal x y
  | Attr (v1, a1), Attr (v2, a2) -> v1 = v2 && a1 = a2
  | Scalar (o1, ts1), Scalar (o2, ts2) ->
      o1 = o2
      && List.length ts1 = List.length ts2
      && List.for_all2 equal_term ts1 ts2
  | Agg (k1, t1), Agg (k2, t2) -> k1 = k2 && equal_term t1 t2
  | _ -> false

let equal_pred a b =
  match (a, b) with
  | Cmp (o1, l1, r1), Cmp (o2, l2, r2) ->
      o1 = o2 && equal_term l1 l2 && equal_term r1 r2
  | Is_null t1, Is_null t2 | Not_null t1, Not_null t2 -> equal_term t1 t2
  | Like (t1, p1), Like (t2, p2) -> equal_term t1 t2 && p1 = p2
  | _ -> false

let rec equal_join_tree a b =
  match (a, b) with
  | J_var v1, J_var v2 -> v1 = v2
  | J_lit c1, J_lit c2 -> Arc_value.Value.equal c1 c2
  | J_inner l1, J_inner l2 ->
      List.length l1 = List.length l2 && List.for_all2 equal_join_tree l1 l2
  | J_left (a1, b1), J_left (a2, b2) | J_full (a1, b1), J_full (a2, b2) ->
      equal_join_tree a1 a2 && equal_join_tree b1 b2
  | _ -> false

let rec equal_formula a b =
  match (a, b) with
  | True, True -> true
  | Pred p1, Pred p2 -> equal_pred p1 p2
  | And l1, And l2 | Or l1, Or l2 ->
      List.length l1 = List.length l2 && List.for_all2 equal_formula l1 l2
  | Not f1, Not f2 -> equal_formula f1 f2
  | Exists s1, Exists s2 -> equal_scope s1 s2
  | _ -> false

and equal_scope s1 s2 =
  List.length s1.bindings = List.length s2.bindings
  && List.for_all2 equal_binding s1.bindings s2.bindings
  && s1.grouping = s2.grouping
  && (match (s1.join, s2.join) with
     | None, None -> true
     | Some j1, Some j2 -> equal_join_tree j1 j2
     | _ -> false)
  && equal_formula s1.body s2.body

and equal_binding b1 b2 = b1.var = b2.var && equal_source b1.source b2.source

and equal_source s1 s2 =
  match (s1, s2) with
  | Base n1, Base n2 -> n1 = n2
  | Nested c1, Nested c2 -> equal_collection c1 c2
  | _ -> false

and equal_collection c1 c2 =
  c1.head = c2.head && equal_formula c1.body c2.body

let equal_query q1 q2 =
  match (q1, q2) with
  | Coll c1, Coll c2 -> equal_collection c1 c2
  | Sentence f1, Sentence f2 -> equal_formula f1 f2
  | _ -> false

let equal_program p1 p2 =
  List.length p1.defs = List.length p2.defs
  && List.for_all2
       (fun d1 d2 ->
         d1.def_name = d2.def_name && equal_collection d1.def_body d2.def_body)
       p1.defs p2.defs
  && equal_query p1.main p2.main

let rec term_vars = function
  | Const _ -> []
  | Attr (v, a) -> [ (v, a) ]
  | Scalar (_, ts) -> List.concat_map term_vars ts
  | Agg (_, t) -> term_vars t

let pred_terms = function
  | Cmp (_, l, r) -> [ l; r ]
  | Is_null t | Not_null t | Like (t, _) -> [ t ]

let rec term_has_agg = function
  | Const _ | Attr _ -> false
  | Scalar (_, ts) -> List.exists term_has_agg ts
  | Agg _ -> true

let pred_has_agg p = List.exists term_has_agg (pred_terms p)

(* aggregate at the current scope level (not inside a deeper quantifier)? *)
let rec formula_has_agg = function
  | True -> false
  | Pred p -> pred_has_agg p
  | And fs | Or fs -> List.exists formula_has_agg fs
  | Not f -> formula_has_agg f
  | Exists _ -> false

let rec conjuncts = function
  | True -> []
  | And fs -> List.concat_map conjuncts fs
  | f -> [ f ]

let rec disjuncts = function
  | Or fs -> List.concat_map disjuncts fs
  | f -> [ f ]

let rec join_tree_vars = function
  | J_var v -> [ v ]
  | J_lit _ -> []
  | J_inner l -> List.concat_map join_tree_vars l
  | J_left (a, b) | J_full (a, b) -> join_tree_vars a @ join_tree_vars b

let cmp_op_to_string = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Leq -> "<="
  | Gt -> ">"
  | Geq -> ">="

let cmp_op_flip = function
  | Eq -> Eq
  | Neq -> Neq
  | Lt -> Gt
  | Leq -> Geq
  | Gt -> Lt
  | Geq -> Leq
