open Ast

type env = {
  base_schemas : (rel_name * attr list) list;
  externals : External.decl list;
}

let env ?(schemas = []) ?(externals = External.standard) () =
  { base_schemas = schemas; externals }

let default_env = env ()

(* ------------------------------------------------------------------ *)
(* Predicate roles                                                     *)
(* ------------------------------------------------------------------ *)

type role = { is_assignment : bool; is_aggregation : bool }

let head_side heads = function
  | Attr (v, a) when List.mem v heads -> Some (v, a)
  | _ -> None

let assignment_of ~heads p =
  match p with
  | Cmp (Eq, l, r) -> (
      match (head_side heads l, head_side heads r) with
      | Some ha, None -> Some (ha, r)
      | None, Some ha -> Some (ha, l)
      | Some ha, Some _ ->
          (* both sides are head attrs: treat left as the target *)
          Some (ha, r)
      | None, None -> None)
  | _ -> None

let classify ~heads p =
  {
    is_assignment = assignment_of ~heads p <> None;
    is_aggregation = pred_has_agg p;
  }

(* ------------------------------------------------------------------ *)
(* Join annotations (Fig 12)                                           *)
(* ------------------------------------------------------------------ *)

(* The reference evaluator and the plan lowering must agree, predicate by
   predicate, on how an annotated scope decomposes: which literal leaf
   consumes which body comparison, which conjuncts are ON conditions and
   which stay WHERE, and which annotation node each ON condition attaches
   to. These three functions are that shared decomposition; both engines
   call them (Eval.enum_scope and Lower's RANF translation), so a
   divergence is a type error rather than a silent semantic drift. *)

(* Literal leaves become fresh singleton bindings with single attribute
   "val"; one body comparison against the literal's constant is redirected
   to that attribute so it acts as a join condition at the annotation node
   rather than as a filter on the other operand. Returns the rewritten
   scope (literal bindings appended) plus the [(var, constant)] pairs the
   caller must supply as singleton relations of schema ["val"]. *)
let prepare_join_literals (scope : scope) :
    scope * (var * Arc_value.Value.t) list =
  match scope.join with
  | None -> (scope, [])
  | Some jt ->
      let counter = ref 0 in
      let lit_binds = ref [] in
      let rec rewrite = function
        | J_var v -> J_var v
        | J_lit c ->
            incr counter;
            let v = Printf.sprintf "_lit%d" !counter in
            lit_binds := (v, c) :: !lit_binds;
            J_var v
        | J_inner l -> J_inner (List.map rewrite l)
        | J_left (a, b) -> J_left (rewrite a, rewrite b)
        | J_full (a, b) -> J_full (rewrite a, rewrite b)
      in
      let jt' = rewrite jt in
      let lits = List.rev !lit_binds in
      if lits = [] then (scope, [])
      else
        let tree_vars = join_tree_vars jt in
        let in_tree t =
          let vs = List.map fst (term_vars t) in
          vs <> [] && List.for_all (fun v -> List.mem v tree_vars) vs
        in
        let remaining = ref lits in
        let redirect c mk =
          match
            List.find_opt (fun (_, c') -> Arc_value.Value.equal c c') !remaining
          with
          | Some (v, _) ->
              remaining := List.filter (fun (v', _) -> v' <> v) !remaining;
              Some (mk (Attr (v, "val")))
          | None -> None
        in
        let rec rewrite_formula f =
          match f with
          | Pred (Cmp (op, l, Const c)) when (not (term_has_agg l)) && in_tree l
            -> (
              match redirect c (fun t -> Pred (Cmp (op, l, t))) with
              | Some f' -> f'
              | None -> f)
          | Pred (Cmp (op, Const c, r)) when (not (term_has_agg r)) && in_tree r
            -> (
              match redirect c (fun t -> Pred (Cmp (op, t, r))) with
              | Some f' -> f'
              | None -> f)
          | And fs -> And (List.map rewrite_formula fs)
          | f -> f
        in
        let body' = rewrite_formula scope.body in
        let lit_bindings =
          List.map (fun (v, _) -> { var = v; source = Base v }) lits
        in
        ( { scope with join = Some jt'; body = body';
            bindings = scope.bindings @ lit_bindings },
          lits )

(* Splits the scope body conjuncts into join conditions (attached to the
   smallest annotation node covering their scope variables, where they act
   like SQL ON conditions) and the residual formula (evaluated after the
   join, like SQL WHERE — so it also filters NULL-padded rows). *)
let split_join_conditions ~heads (scope : scope) =
  let tree = Option.get scope.join in
  let tree_vars = join_tree_vars tree in
  let scope_var v = List.exists (fun b -> b.var = v) scope.bindings in
  let conjs = conjuncts scope.body in
  let is_attachable f =
    match f with
    | Pred p ->
        (not (pred_has_agg p))
        && (not (classify ~heads p).is_assignment)
        &&
        let vs =
          List.concat_map (fun t -> List.map fst (term_vars t)) (pred_terms p)
        in
        let scope_vs = List.filter scope_var vs in
        scope_vs <> [] && List.for_all (fun v -> List.mem v tree_vars) scope_vs
    | _ -> false
  in
  List.partition is_attachable conjs

(* The smallest annotation node whose variables cover [vars]; identity is
   physical ([==] against the tree handed in), so callers must resolve
   covers against the very same tree value they enumerate. *)
let smallest_cover tree vars =
  let covers node =
    let nv = join_tree_vars node in
    List.for_all (fun v -> List.mem v nv) vars
  in
  let rec descend node =
    match node with
    | J_var _ | J_lit _ -> node
    | J_inner l -> (
        match List.find_opt covers l with
        | Some child -> descend child
        | None -> node)
    | J_left (a, b) | J_full (a, b) ->
        if covers a then descend a
        else if covers b then descend b
        else node
  in
  if covers tree then Some (descend tree) else None

(* The ON conditions attached to one annotation node: those attachable
   conjuncts whose scope variables' smallest cover is that node. *)
let node_join_preds tree (scope : scope) ~attached node =
  let scope_var v = List.exists (fun b -> b.var = v) scope.bindings in
  List.filter_map
    (fun f ->
      match f with
      | Pred p ->
          let vs =
            List.concat_map
              (fun t -> List.map fst (term_vars t))
              (pred_terms p)
            |> List.filter scope_var
          in
          (match smallest_cover tree vs with
          | Some n when n == node -> Some p
          | _ -> None)
      | _ -> None)
    attached

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

type error =
  | Duplicate_binding of var
  | Duplicate_head_attr of rel_name * attr
  | Unbound_variable of var
  | Unknown_attribute of var * attr
  | Unknown_relation of rel_name
  | Aggregate_outside_grouping of string
  | Nested_aggregate of string
  | Join_var_not_bound of var
  | Join_var_duplicated of var
  | Grouping_var_not_bound of var
  | Head_in_nested_collection of rel_name
  | Ungrouped_head_dependency of rel_name * attr
  | Reserved_relation_name of rel_name

(* Names the engine mangles into the shared relation namespace: the
   fixpoints register "__delta__<def>" entries (Exec/Eval seminaive) and
   the maintenance layer registers "__ivm__…" working relations. A user
   relation in either namespace would silently collide with them. *)
let reserved_prefixes = [ "__delta__"; "__ivm__" ]

let is_reserved_name n =
  List.exists (fun p -> String.starts_with ~prefix:p n) reserved_prefixes

let error_to_string = function
  | Duplicate_binding v -> Printf.sprintf "duplicate binding for variable %S" v
  | Duplicate_head_attr (h, a) ->
      Printf.sprintf "head %s declares attribute %S twice" h a
  | Unbound_variable v -> Printf.sprintf "unbound range variable %S" v
  | Unknown_attribute (v, a) ->
      Printf.sprintf "variable %S has no attribute %S" v a
  | Unknown_relation r -> Printf.sprintf "unknown relation %S" r
  | Aggregate_outside_grouping p ->
      Printf.sprintf
        "aggregation predicate %S appears in a scope without a grouping \
         operator"
        p
  | Nested_aggregate t -> Printf.sprintf "nested aggregate in term %S" t
  | Join_var_not_bound v ->
      Printf.sprintf "join annotation mentions unbound variable %S" v
  | Join_var_duplicated v ->
      Printf.sprintf "join annotation mentions variable %S twice" v
  | Grouping_var_not_bound v ->
      Printf.sprintf "grouping key refers to variable %S not bound in this scope" v
  | Head_in_nested_collection h ->
      Printf.sprintf
        "head %S of an enclosing collection referenced inside a nested \
         collection"
        h
  | Ungrouped_head_dependency (h, a) ->
      Printf.sprintf
        "head attribute %s.%s is assigned a non-aggregate term that is not a \
         grouping key"
        h a
  | Reserved_relation_name r ->
      Printf.sprintf
        "relation name %S begins with a reserved engine prefix (%s)" r
        (String.concat ", "
           (List.map (Printf.sprintf "%S") reserved_prefixes))

type vctx = {
  venv : env;
  defs : (rel_name * attr list) list;
  heads : (rel_name * attr list) list;  (* visible enclosing heads *)
  shadow_heads : rel_name list;         (* heads hidden by nested collections *)
  vars : (var * attr list option) list; (* visible range variables *)
  scope_vars : var list;                (* vars of the nearest scope *)
  grouping_keys : grouping option;      (* of the nearest scope *)
  errors : error list ref;
}

let err ctx e = ctx.errors := e :: !(ctx.errors)

let source_attrs ctx name : attr list option =
  match List.assoc_opt name ctx.defs with
  | Some attrs -> Some attrs
  | None -> (
      match List.assoc_opt name ctx.venv.base_schemas with
      | Some attrs -> Some attrs
      | None -> (
          match External.find ctx.venv.externals name with
          | Some d -> Some d.External.ext_attrs
          | None ->
              if ctx.venv.base_schemas <> [] then
                (* schema checking enabled: unknown name is an error *)
                None
              else None))

let known_relation ctx name =
  List.mem_assoc name ctx.defs
  || List.mem_assoc name ctx.venv.base_schemas
  || External.find ctx.venv.externals name <> None

let rec check_term ctx ~in_agg t =
  match t with
  | Const _ -> ()
  | Attr (v, a) -> (
      match List.assoc_opt v ctx.vars with
      | Some (Some attrs) ->
          if not (List.mem a attrs) then err ctx (Unknown_attribute (v, a))
      | Some None -> ()
      | None -> (
          match List.assoc_opt v ctx.heads with
          | Some attrs ->
              if not (List.mem a attrs) then err ctx (Unknown_attribute (v, a))
          | None ->
              if List.mem v ctx.shadow_heads then
                err ctx (Head_in_nested_collection v)
              else err ctx (Unbound_variable v)))
  | Scalar (_, ts) -> List.iter (check_term ctx ~in_agg) ts
  | Agg (_, inner) ->
      if in_agg then err ctx (Nested_aggregate (Pp.term t))
      else (
        if ctx.grouping_keys = None then
          err ctx (Aggregate_outside_grouping (Pp.term t));
        check_term ctx ~in_agg:true inner)

let check_pred ctx p =
  List.iter (check_term ctx ~in_agg:false) (pred_terms p);
  (* grouping-scope head-dependency rule *)
  match ctx.grouping_keys with
  | Some keys -> (
      match assignment_of ~heads:(List.map fst ctx.heads) p with
      | Some ((h, a), t) when not (term_has_agg t) ->
          let ok (v, at) =
            List.mem (v, at) keys || not (List.mem v ctx.scope_vars)
          in
          if not (List.for_all ok (term_vars t)) then
            err ctx (Ungrouped_head_dependency (h, a))
      | _ -> ())
  | None -> ()

let rec check_formula ctx = function
  | True -> ()
  | Pred p -> check_pred ctx p
  | And fs | Or fs -> List.iter (check_formula ctx) fs
  | Not f -> check_formula ctx f
  | Exists scope -> check_scope ctx scope

and check_scope ctx scope =
  (* bindings, left to right; later bindings may reference earlier ones *)
  let ctx' =
    List.fold_left
      (fun acc b ->
        if List.mem_assoc b.var acc.vars || List.mem_assoc b.var acc.heads then
          err acc (Duplicate_binding b.var);
        let attrs =
          match b.source with
          | Base name ->
              if is_reserved_name name then
                err acc (Reserved_relation_name name);
              if not (known_relation acc name) && acc.venv.base_schemas <> []
              then err acc (Unknown_relation name);
              source_attrs acc name
          | Nested c ->
              check_nested_collection acc c;
              Some c.head.head_attrs
        in
        { acc with vars = (b.var, attrs) :: acc.vars })
      ctx scope.bindings
  in
  let bound = List.map (fun b -> b.var) scope.bindings in
  (* grouping keys *)
  (match scope.grouping with
  | Some keys ->
      List.iter
        (fun (v, _) ->
          if not (List.mem v bound) then err ctx (Grouping_var_not_bound v))
        keys
  | None -> ());
  (* join annotation *)
  (match scope.join with
  | Some jt ->
      let seen = Hashtbl.create 8 in
      List.iter
        (fun v ->
          if Hashtbl.mem seen v then err ctx (Join_var_duplicated v)
          else Hashtbl.add seen v ();
          if not (List.mem v bound) then err ctx (Join_var_not_bound v))
        (join_tree_vars jt)
  | None -> ());
  let ctx'' =
    {
      ctx' with
      scope_vars = bound;
      grouping_keys = scope.grouping;
    }
  in
  check_formula ctx'' scope.body

and check_nested_collection ctx c =
  (* Nested collections see enclosing range variables (lateral correlation)
     but not enclosing heads. *)
  let ctx' =
    {
      ctx with
      heads = [];
      shadow_heads = List.map fst ctx.heads @ ctx.shadow_heads;
    }
  in
  check_collection ctx' c

and check_collection ctx c =
  if is_reserved_name c.head.head_name then
    err ctx (Reserved_relation_name c.head.head_name);
  let seen = Hashtbl.create 8 in
  List.iter
    (fun a ->
      if Hashtbl.mem seen a then
        err ctx (Duplicate_head_attr (c.head.head_name, a))
      else Hashtbl.add seen a ())
    c.head.head_attrs;
  let ctx' =
    { ctx with heads = (c.head.head_name, c.head.head_attrs) :: ctx.heads }
  in
  check_formula ctx' c.body

let initial_ctx env defs =
  {
    venv = env;
    defs;
    heads = [];
    shadow_heads = [];
    vars = [];
    scope_vars = [];
    grouping_keys = None;
    errors = ref [];
  }

let def_schemas defs =
  List.map (fun d -> (d.def_name, d.def_body.head.head_attrs)) defs

let validate ?(env = default_env) (prog : program) =
  let defs = def_schemas prog.defs in
  let ctx = initial_ctx env defs in
  List.iter
    (fun (n, _) ->
      if is_reserved_name n then err ctx (Reserved_relation_name n))
    env.base_schemas;
  List.iter (fun d -> check_collection ctx d.def_body) prog.defs;
  (match prog.main with
  | Coll c -> check_collection ctx c
  | Sentence f -> check_formula ctx f);
  match List.rev !(ctx.errors) with [] -> Ok () | es -> Error es

let validate_query ?env q = validate ?env { defs = []; main = q }

(* ------------------------------------------------------------------ *)
(* Safety (range restriction)                                          *)
(* ------------------------------------------------------------------ *)

type safety = Safe | Unsafe of string

module SS = Set.Make (struct
  type t = var * attr

  let compare = compare
end)

type finiteness = Finite | Needs_resolution of External.mode list

(* Determine, for one disjunct of a collection body, whether every head
   attribute is range-restricted and every external/abstract binding is
   resolvable through one of its access patterns. [outer_restricted] treats
   correlated references to enclosing scopes as already restricted (safety
   "in context"). *)
let rec disjunct_safety ~senv ~defs_safety ~outer_vars ~heads head_attrs f =
  match f with
  | Exists scope ->
      scope_safety ~senv ~defs_safety ~outer_vars ~heads head_attrs scope
  | And _ | Or _ | Not _ | Pred _ | True ->
      (* A disjunct without a top-level quantifier cannot range-restrict
         head attributes (e.g. the raw Minus definition of Section 2.13). *)
      if head_attrs = [] then Safe
      else
        Unsafe
          "body has no quantifier scope; head attributes are not \
           range-restricted"

and scope_safety ~senv ~defs_safety ~outer_vars ~heads head_attrs scope =
  let base_schemas, externals = senv in
  (* classify each binding *)
  let all_bound attrs = [ { External.m_inputs = attrs; m_outputs = [] } ] in
  let binding_kind acc b =
    match b.source with
    | Nested c -> (
        (* nested collections may correlate with anything visible *)
        match
          collection_safety_inner ~senv ~defs_safety
            ~outer_vars:(b.var :: (outer_vars @ acc)) c
        with
        | Safe -> Finite
        | Unsafe _ -> Needs_resolution (all_bound c.head.head_attrs))
    | Base name -> (
        match List.assoc_opt name defs_safety with
        | Some (Safe, _) -> Finite
        | Some (Unsafe _, attrs) -> Needs_resolution (all_bound attrs)
        | None -> (
            match External.find externals name with
            | Some d -> Needs_resolution d.External.ext_modes
            | None ->
                if List.mem_assoc name base_schemas then Finite
                else Finite (* unknown names treated as finite bases *)))
  and all_bound attrs = [ { External.m_inputs = attrs; m_outputs = [] } ]
  and all_bound_mode attrs _reason =
    [ { External.m_inputs = attrs; m_outputs = [] } ]
  in
  let kinds =
    List.fold_left
      (fun acc b -> acc @ [ (b, binding_kind (List.map (fun (x, _) -> x.var) acc) b) ])
      [] scope.bindings
  in
  let finite_vars =
    List.filter_map (fun (b, k) -> if k = Finite then Some b.var else None) kinds
  in
  (* fixpoint over restricted attributes of non-finite bindings *)
  let conjs = conjuncts scope.body in
  let eqs =
    List.filter_map (function Pred (Cmp (Eq, l, r)) -> Some (l, r) | _ -> None) conjs
  in
  let restricted = ref SS.empty in
  let var_finite v =
    List.mem v finite_vars || List.mem v outer_vars
  in
  let rec term_restricted t =
    match t with
    | Const _ -> true
    | Attr (v, a) -> var_finite v || SS.mem (v, a) !restricted
    | Scalar (_, ts) -> List.for_all term_restricted ts
    | Agg (_, inner) -> term_restricted inner
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (l, r) ->
        let promote side other =
          match side with
          | Attr (v, a)
            when (not (var_finite v))
                 && (not (List.mem v heads))
                 && (not (SS.mem (v, a) !restricted))
                 && term_restricted other ->
              restricted := SS.add (v, a) !restricted;
              changed := true
          | _ -> ()
        in
        promote l r;
        promote r l)
      eqs
  done;
  (* every non-finite binding must be resolvable by some mode *)
  let unresolved =
    List.filter_map
      (fun (b, k) ->
        match k with
        | Finite -> None
        | Needs_resolution modes ->
            let ok =
              List.exists
                (fun m ->
                  List.for_all
                    (fun a -> SS.mem (b.var, a) !restricted)
                    m.External.m_inputs)
                modes
            in
            if ok then (
              (* outputs of the satisfied mode become restricted *)
              List.iter
                (fun m ->
                  if
                    List.for_all
                      (fun a -> SS.mem (b.var, a) !restricted)
                      m.External.m_inputs
                  then
                    List.iter
                      (fun a -> restricted := SS.add (b.var, a) !restricted)
                      m.External.m_outputs)
                modes;
              None)
            else Some b.var)
      kinds
  in
  match unresolved with
  | v :: _ ->
      Unsafe
        (Printf.sprintf
           "binding %S to an external/abstract relation cannot be resolved \
            through any access pattern"
           v)
  | [] -> (
      (* one more restriction pass now that external outputs are known *)
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun (l, r) ->
            let promote side other =
              match side with
              | Attr (v, a)
                when (not (var_finite v))
                     && (not (SS.mem (v, a) !restricted))
                     && term_restricted other ->
                  restricted := SS.add (v, a) !restricted;
                  changed := true
              | _ -> ()
            in
            promote l r;
            promote r l)
          eqs
      done;
      (* each head attribute must be assigned a restricted term *)
      let head_name = List.hd heads in
      let assigned a =
        List.exists
          (fun f ->
            match f with
            | Pred p -> (
                match assignment_of ~heads p with
                | Some ((h, a'), t) ->
                    h = head_name && a' = a && term_restricted t
                | None -> false)
            | _ -> false)
          conjs
      in
      match List.find_opt (fun a -> not (assigned a)) head_attrs with
      | Some a ->
          Unsafe
            (Printf.sprintf
               "head attribute %s.%s is not assigned a range-restricted term"
               head_name a)
      | None -> Safe)

and collection_safety_inner ~senv ~defs_safety ~outer_vars c =
  let heads = [ c.head.head_name ] in
  let check_disjunct d =
    disjunct_safety ~senv ~defs_safety ~outer_vars ~heads c.head.head_attrs d
  in
  let rec first_unsafe = function
    | [] -> Safe
    | d :: rest -> (
        match check_disjunct d with Safe -> first_unsafe rest | u -> u)
  in
  first_unsafe (disjuncts c.body)

let compute_defs_safety ~senv defs =
  List.fold_left
    (fun acc d ->
      (* a recursive reference to the definition itself (or to an earlier,
         safe definition) is treated as finite: the least fixed point of a
         safe body is finite *)
      let defs_safety =
        (d.def_name, (Safe, d.def_body.head.head_attrs)) :: acc
      in
      let s =
        collection_safety_inner ~senv ~defs_safety ~outer_vars:[] d.def_body
      in
      (d.def_name, (s, d.def_body.head.head_attrs)) :: acc)
    [] defs

let collection_safety ?(env = default_env) ~defs c =
  let senv = (env.base_schemas, env.externals) in
  let defs_safety = compute_defs_safety ~senv defs in
  collection_safety_inner ~senv ~defs_safety ~outer_vars:[] c

let program_safety ?(env = default_env) (prog : program) =
  let senv = (env.base_schemas, env.externals) in
  let defs_safety = compute_defs_safety ~senv prog.defs in
  List.rev_map (fun (n, (s, _)) -> (n, s)) defs_safety |> List.rev
  |> List.filter (fun (n, _) -> List.exists (fun d -> d.def_name = n) prog.defs)

(* ------------------------------------------------------------------ *)
(* Misc                                                                *)
(* ------------------------------------------------------------------ *)

let collection_heads c =
  let acc = ref [] in
  let rec walk_coll c =
    acc := c.head.head_name :: !acc;
    walk_formula c.body
  and walk_formula = function
    | True | Pred _ -> ()
    | And fs | Or fs -> List.iter walk_formula fs
    | Not f -> walk_formula f
    | Exists s ->
        List.iter
          (fun b -> match b.source with Nested c -> walk_coll c | Base _ -> ())
          s.bindings;
        walk_formula s.body
  in
  walk_coll c;
  List.rev !acc

let free_vars_query q =
  let free = ref [] in
  let add v bound = if not (List.mem v bound) && not (List.mem v !free) then free := v :: !free in
  let rec walk_formula bound = function
    | True -> ()
    | Pred p ->
        List.iter
          (fun t -> List.iter (fun (v, _) -> add v bound) (term_vars t))
          (pred_terms p)
    | And fs | Or fs -> List.iter (walk_formula bound) fs
    | Not f -> walk_formula bound f
    | Exists s ->
        let bound' =
          List.fold_left
            (fun acc b ->
              (match b.source with
              | Nested c -> walk_coll acc c
              | Base _ -> ());
              b.var :: acc)
            bound s.bindings
        in
        walk_formula bound' s.body
  and walk_coll bound c = walk_formula (c.head.head_name :: bound) c.body in
  (match q with
  | Coll c -> walk_coll [] c
  | Sentence f -> walk_formula [] f);
  List.rev !free
