(** Static analysis of ARC programs: scope validation, predicate-role
    classification, and safety (range-restriction) analysis.

    These checks realize the paper's "structurally constrained representation
    [that] can be validated (well-scoped variables, grouping legality,
    correlation shape)" (Section 4, NL2SQL answer). *)

open Ast

(** {1 Environment} *)

type env = {
  base_schemas : (rel_name * attr list) list;
      (** Known base-relation schemas. Bindings to names absent from every
          namespace are reported as {!Unknown_relation}. *)
  externals : External.decl list;
}

val env :
  ?schemas:(rel_name * attr list) list ->
  ?externals:External.decl list ->
  unit ->
  env
(** Defaults: no base schemas (attribute checks on base bindings are then
    skipped), {!External.standard} externals. *)

(** {1 Predicate roles (Section 2.1, 2.5)} *)

type role = {
  is_assignment : bool;
      (** One side is [H.a] for an enclosing collection head [H]: the
          predicate gives a head attribute its value. *)
  is_aggregation : bool;  (** The predicate contains an aggregate term. *)
}
(** The paper's taxonomy: an {e assignment predicate} ([Q.A = r.A]), a
    {e comparison predicate} ([r.B = s.B], [x.sm > 100]), and an
    {e aggregation predicate} (contains an aggregate), which can act as
    either — the distinction at the center of the count-bug diagnosis. *)

val classify : heads:rel_name list -> pred -> role

val assignment_of : heads:rel_name list -> pred -> ((var * attr) * term) option
(** [Some ((h, a), t)] when the predicate assigns term [t] to head attribute
    [h.a] (returns the head side normalized to the left). *)

(** {1 Join annotations (Fig 12)}

    The shared decomposition of a join-annotated scope, used by both the
    reference evaluator and the plan lowering so the two engines agree
    predicate-by-predicate on outer-join semantics. *)

val prepare_join_literals : scope -> scope * (var * Arc_value.Value.t) list
(** Rewrites literal leaves ([J_lit c]) into fresh ["_litN"] variables bound
    as singleton relations of schema [["val"]], redirecting one body
    comparison against each literal constant to that attribute. Returns the
    rewritten scope and the [(var, constant)] pairs. Identity when the scope
    has no annotation or no literal leaves. *)

val split_join_conditions :
  heads:rel_name list -> scope -> formula list * formula list
(** Partitions the body conjuncts of an annotated scope into (attachable ON
    conditions, residual WHERE conjuncts). Must be called on the
    post-[prepare_join_literals] scope. *)

val smallest_cover : join_tree -> var list -> join_tree option
(** The smallest annotation node covering all [vars]; [None] when even the
    root does not. Node identity is physical equality against the handed-in
    tree. *)

val node_join_preds :
  join_tree -> scope -> attached:formula list -> join_tree -> pred list
(** Of the [attached] conditions, those whose smallest cover is the given
    node (physical identity within [tree]). *)

(** {1 Validation} *)

type error =
  | Duplicate_binding of var
  | Duplicate_head_attr of rel_name * attr
  | Unbound_variable of var
  | Unknown_attribute of var * attr
  | Unknown_relation of rel_name
  | Aggregate_outside_grouping of string
      (** An aggregation predicate whose nearest enclosing scope has no
          grouping operator (Section 2.5: "the appearance of any aggregation
          predicate turns an existential scope into a grouping scope and
          requires a grouping operator"). *)
  | Nested_aggregate of string
  | Join_var_not_bound of var
  | Join_var_duplicated of var
  | Grouping_var_not_bound of var
  | Head_in_nested_collection of rel_name
  | Ungrouped_head_dependency of rel_name * attr
      (** In a grouping scope, a head attribute was assigned a non-aggregate
          term that is not a grouping key (SQL: "column must appear in the
          GROUP BY clause"). *)
  | Reserved_relation_name of rel_name
      (** A definition head, base binding, or supplied base schema uses a
          name in the engine's reserved namespace ([__delta__…] fixpoint
          deltas, [__ivm__…] maintenance state); such a relation would
          collide with engine-registered IDB entries. *)

val error_to_string : error -> string

val is_reserved_name : rel_name -> bool
(** True for names the engine reserves ([__delta__]/[__ivm__] prefixes). *)

val validate : ?env:env -> program -> (unit, error list) result
val validate_query : ?env:env -> query -> (unit, error list) result

(** {1 Safety (Section 2.13)} *)

type safety = Safe | Unsafe of string
(** [Safe]: the collection is range-restricted and denotes a finite relation
    over every finite instance (an {e intensional} relation, Fig 14).
    [Unsafe reason]: domain-dependent — an {e abstract} relation, usable
    only inside a safe surrounding query (Section 2.13.2). *)

val collection_safety : ?env:env -> defs:definition list -> collection -> safety

val program_safety : ?env:env -> program -> (rel_name * safety) list
(** Safety of each definition, in order. *)

(** {1 Misc} *)

val collection_heads : collection -> rel_name list
(** The head names visible somewhere in the collection (own head plus nested
    collection heads), for diagnostics. *)

val free_vars_query : query -> var list
(** Range variables referenced but not bound anywhere — nonempty indicates a
    correlation leak; always empty for valid top-level queries. *)
