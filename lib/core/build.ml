open Ast
module Value = Arc_value.Value
module Aggregate = Arc_value.Aggregate

let attr v a = Attr (v, a)
let const c = Const c
let cint n = Const (Value.Int n)
let cstr s = Const (Value.Str s)
let cnull = Const Value.Null
let add a b = Scalar (Add, [ a; b ])
let sub a b = Scalar (Sub, [ a; b ])
let mul a b = Scalar (Mul, [ a; b ])
let div a b = Scalar (Div, [ a; b ])
let mod_ a b = Scalar (Mod, [ a; b ])

let agg name t =
  match Aggregate.kind_of_string name with
  | Some k -> Agg (k, t)
  | None -> invalid_arg ("Build.agg: unknown aggregate " ^ name)

let sum t = Agg (Aggregate.Sum, t)
let count t = Agg (Aggregate.Count, t)
let avg t = Agg (Aggregate.Avg, t)
let min_ t = Agg (Aggregate.Min, t)
let max_ t = Agg (Aggregate.Max, t)

let eq a b = Pred (Cmp (Eq, a, b))
let neq a b = Pred (Cmp (Neq, a, b))
let lt a b = Pred (Cmp (Lt, a, b))
let leq a b = Pred (Cmp (Leq, a, b))
let gt a b = Pred (Cmp (Gt, a, b))
let geq a b = Pred (Cmp (Geq, a, b))
let is_null t = Pred (Is_null t)
let not_null t = Pred (Not_null t)
let like t p = Pred (Like (t, p))

let conj = function [] -> True | [ f ] -> f | fs -> And fs
let disj = function [ f ] -> f | fs -> Or fs
let not_ f = Not f

let exists ?grouping ?join bindings body =
  Exists { bindings; grouping; join; body }

let group_all : grouping = []

let bind var rel = { var; source = Base rel }
let bind_in var c = { var; source = Nested c }

let collection head_name head_attrs body =
  { head = { head_name; head_attrs }; body }

let coll head_name head_attrs body = Coll (collection head_name head_attrs body)
let sentence f = Sentence f
let define def_name def_body = { def_name; def_body }
