(** Abstract syntax of Abstract Relational Calculus (ARC).

    ARC (paper, Section 2) is a strict generalization of Tuple Relational
    Calculus in a collection framework. A query is a {!collection}
    [{ Q(A,…) | body }] whose body is a {!formula}; range variables are
    introduced only by quantifier {!scope}s ("strict scoping", Section 2.1);
    head attributes receive values only through {e assignment predicates}
    ([Q.A = r.A]); aggregation requires a grouping operator γ on the scope
    (Section 2.5); outer joins are expressed by join annotations on the
    binding list (Section 2.11); recursion is expressed through definition
    environments with least-fixed-point semantics (Section 2.9).

    This module defines only the tree; classification of predicates
    (assignment vs comparison vs aggregation) is {e derived} by
    {!Analysis}, not declared, mirroring the paper's position that these
    roles are properties of the relational pattern. *)

type var = string
(** Range-variable name ([r] in [∃r ∈ R]), or a collection-head name. *)

type attr = string
type rel_name = string

type cmp_op = Eq | Neq | Lt | Leq | Gt | Geq

type scalar_op = Add | Sub | Mul | Div | Mod | Neg

type term =
  | Const of Arc_value.Value.t
  | Attr of var * attr  (** [r.A]; [var] may also be a head name ([Q.A]). *)
  | Scalar of scalar_op * term list
  | Agg of Arc_value.Aggregate.kind * term
      (** Aggregate over the grouping scope in which the containing
          predicate appears, e.g. [sum(r.B)] or [sum(a.val * b.val)]. *)

type pred =
  | Cmp of cmp_op * term * term
  | Is_null of term
  | Not_null of term
  | Like of term * string

(** Join-annotation trees (Section 2.11). [J_inner] is k-ary; [J_left] and
    [J_full] are binary; [J_lit c] is the singleton literal leaf of Fig 12
    ([inner(11, s)] is a cross join with the virtual unary table {c}). *)
type join_tree =
  | J_var of var
  | J_lit of Arc_value.Value.t
  | J_inner of join_tree list
  | J_left of join_tree * join_tree
  | J_full of join_tree * join_tree

type grouping = (var * attr) list
(** Grouping keys; [[]] is γ∅ ("group by true"). *)

type source =
  | Base of rel_name
      (** Base relation, defined relation (intensional/abstract), or
          external relation — resolved by name at evaluation time,
          uniformly, per Section 2.13. *)
  | Nested of collection  (** Correlated (lateral) nested comprehension. *)

and binding = { var : var; source : source }

and scope = {
  bindings : binding list;
  grouping : grouping option;
      (** [Some keys] turns the existential scope into a grouping scope. *)
  join : join_tree option;
      (** [None] ≡ [inner(all bindings)] (Section 2.11). *)
  body : formula;
}

and formula =
  | True
  | Pred of pred
  | And of formula list
  | Or of formula list
  | Not of formula
  | Exists of scope

and head = { head_name : rel_name; head_attrs : attr list }

and collection = { head : head; body : formula }

type query =
  | Coll of collection
  | Sentence of formula
      (** Boolean queries / integrity constraints (Section 2.5, Fig 9). *)

type definition = { def_name : rel_name; def_body : collection }
(** A defined relation (Fig 14): intensional if safe, abstract otherwise
    (the distinction is computed by {!Analysis.safety}). *)

type program = { defs : definition list; main : query }

val program : ?defs:definition list -> query -> program

(** {1 Structural equality} (used by tests and canonical-form comparison) *)

val equal_term : term -> term -> bool
val equal_pred : pred -> pred -> bool
val equal_formula : formula -> formula -> bool
val equal_collection : collection -> collection -> bool
val equal_query : query -> query -> bool
val equal_program : program -> program -> bool

(** {1 Traversal helpers} *)

val term_vars : term -> (var * attr) list
(** All attribute references in a term, in occurrence order. *)

val pred_terms : pred -> term list

val term_has_agg : term -> bool
val pred_has_agg : pred -> bool

val formula_has_agg : formula -> bool
(** An aggregation predicate at the current scope level — aggregates inside
    a deeper quantifier belong to that scope ([Exists _] is [false]). *)

val conjuncts : formula -> formula list
(** Flattens nested [And]s; [True] yields []. *)

val disjuncts : formula -> formula list
(** Flattens nested [Or]s. *)

val join_tree_vars : join_tree -> var list

val cmp_op_to_string : cmp_op -> string
val cmp_op_flip : cmp_op -> cmp_op
(** [a op b] ≡ [b (flip op) a]. *)
