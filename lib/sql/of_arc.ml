module A = Arc_core.Ast
module Analysis = Arc_core.Analysis
module V = Arc_value.Value
module Conventions = Arc_value.Conventions
open Ast

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

(* ------------------------------------------------------------------ *)
(* Terms                                                               *)
(* ------------------------------------------------------------------ *)

let rec tr_term (t : A.term) : expr =
  match t with
  | A.Const v -> E_const v
  | A.Attr (v, a) -> E_col (Some v, a)
  | A.Scalar (op, [ l; r ]) ->
      let op' =
        match op with
        | A.Add -> B_add
        | A.Sub -> B_sub
        | A.Mul -> B_mul
        | A.Div -> B_div
        | A.Mod -> B_mod
        | A.Neg -> unsupported "binary negation"
      in
      E_binop (op', tr_term l, tr_term r)
  | A.Scalar (A.Neg, [ x ]) -> E_neg (tr_term x)
  | A.Scalar _ -> unsupported "malformed scalar term"
  | A.Agg (k, A.Const (V.Int 1)) when k = Arc_value.Aggregate.Count ->
      E_count_star
  | A.Agg (k, t) -> E_agg (k, tr_term t)

let tr_cmp = function
  | A.Eq -> Ceq
  | A.Neq -> Cneq
  | A.Lt -> Clt
  | A.Leq -> Cleq
  | A.Gt -> Cgt
  | A.Geq -> Cgeq

(* ------------------------------------------------------------------ *)
(* Formulas in boolean position                                        *)
(* ------------------------------------------------------------------ *)

let rec tr_bool_formula ~conv ~schemas (f : A.formula) : cond =
  match f with
  | A.True -> C_true
  | A.Pred p -> tr_pred p
  | A.And fs -> C_and (List.map (tr_bool_formula ~conv ~schemas) fs)
  | A.Or fs -> C_or (List.map (tr_bool_formula ~conv ~schemas) fs)
  | A.Not f -> C_not (tr_bool_formula ~conv ~schemas f)
  | A.Exists scope -> C_exists (tr_boolean_scope ~conv ~schemas scope)

and tr_pred (p : A.pred) : cond =
  match p with
  | A.Cmp (op, l, r) -> C_cmp (tr_cmp op, tr_term l, tr_term r)
  | A.Is_null t -> C_is_null (tr_term t)
  | A.Not_null t -> C_is_not_null (tr_term t)
  | A.Like (t, pat) -> C_like (tr_term t, pat)

(* a quantifier scope used as a condition: SELECT 1 FROM … WHERE … with
   aggregate comparisons going to HAVING *)
and tr_boolean_scope ~conv ~schemas (scope : A.scope) : set_query =
  let from, on_assigned = tr_bindings_and_join ~conv ~schemas ~heads:[] scope in
  let conjs = A.conjuncts scope.A.body in
  let conjs =
    List.filter (fun f -> not (List.memq f on_assigned)) conjs
  in
  let post, pre =
    match scope.A.grouping with
    | None -> ([], conjs)
    | Some _ -> List.partition formula_has_agg conjs
  in
  let where =
    match pre with
    | [] -> None
    | fs -> Some (C_and (List.map (tr_bool_formula ~conv ~schemas) fs))
  in
  let having =
    match post with
    | [] -> None
    | fs -> Some (C_and (List.map (tr_bool_formula ~conv ~schemas) fs))
  in
  let group_by =
    match scope.A.grouping with
    | None | Some [] -> []
    | Some keys -> List.map (fun (v, a) -> (Some v, a)) keys
  in
  Q_select
    {
      distinct = false;
      items = [ { item_expr = E_const (V.Int 1); item_alias = Some "one" } ];
      from;
      where;
      group_by;
      having;
      order_by = [];
      limit = None;
    }

and formula_has_agg (f : A.formula) =
  match f with
  | A.Pred p -> A.pred_has_agg p
  | A.And fs | A.Or fs -> List.exists formula_has_agg fs
  | A.Not f -> formula_has_agg f
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Bindings, join annotations                                          *)
(* ------------------------------------------------------------------ *)

(* Is a nested collection correlated (does it reference variables bound
   outside itself)? *)
and correlated (c : A.collection) : bool =
  let hit = ref false in
  let rec walk_f bound f =
    match f with
    | A.True -> ()
    | A.Pred p ->
        List.iter
          (fun t ->
            List.iter
              (fun (v, _) -> if not (List.mem v bound) then hit := true)
              (A.term_vars t))
          (A.pred_terms p)
    | A.And fs | A.Or fs -> List.iter (walk_f bound) fs
    | A.Not f -> walk_f bound f
    | A.Exists s ->
        let bound' =
          List.fold_left
            (fun b (bd : A.binding) ->
              (match bd.A.source with
              | A.Nested c' -> walk_f (c'.A.head.head_name :: b) c'.A.body
              | A.Base _ -> ());
              bd.A.var :: b)
            bound s.A.bindings
        in
        walk_f bound' s.A.body
  in
  walk_f [ c.A.head.head_name ] c.A.body;
  !hit

(* returns the FROM list and the list of conjuncts consumed as ON
   conditions (physical equality against the scope body conjuncts) *)
and tr_bindings_and_join ~conv ~schemas ~heads (scope : A.scope) :
    table_ref list * A.formula list =
  (* Under Set conventions base relations are semantically sets, and a
     grouping scope makes input multiplicity observable through its
     aggregates, so base sources must be deduplicated. SQL keeps bag
     inputs; expand to SELECT DISTINCT derived tables (needs the schema
     to name the columns — no faithful translation without it). *)
  let dedup_inputs =
    conv.Conventions.collection = Conventions.Set && scope.A.grouping <> None
  in
  let source_ref (b : A.binding) : table_ref =
    match b.A.source with
    | A.Base n when dedup_inputs -> (
        match List.assoc_opt n schemas with
        | Some cols ->
            T_sub
              ( Q_select
                  {
                    distinct = true;
                    items =
                      List.map
                        (fun a ->
                          { item_expr = E_col (None, a); item_alias = Some a })
                        cols;
                    from = [ T_rel (n, None) ];
                    where = None;
                    group_by = [];
                    having = None;
                    order_by = [];
                    limit = None;
                  },
                b.A.var )
        | None ->
            unsupported
              "aggregation over base relation %s under Set conventions needs \
               its schema to deduplicate"
              n)
    | A.Base n -> T_rel (n, Some b.A.var)
    | A.Nested c ->
        if correlated c then T_lateral (tr_collection ~conv ~schemas c, b.A.var)
        else T_sub (tr_collection ~conv ~schemas c, b.A.var)
  in
  match scope.A.join with
  | None ->
      (* comma list; nested correlated sources become LATERAL joins chained
         onto the preceding item *)
      let from =
        List.fold_left
          (fun acc b ->
            match source_ref b with
            | T_lateral (q, a) -> (
                match acc with
                | [] -> [ T_sub (q, a) ] (* uncorrelatable in SQL; best effort *)
                | last :: rest ->
                    T_join (J_inner, last, T_lateral (q, a), None) :: rest)
            | tr -> tr :: acc)
          [] scope.A.bindings
        |> List.rev
      in
      (from, [])
  | Some jt ->
      let binding_of v =
        match List.find_opt (fun (b : A.binding) -> b.A.var = v) scope.A.bindings with
        | Some b -> b
        | None -> unsupported "join annotation var %S unbound" v
      in
      let conjs = A.conjuncts scope.A.body in
      let consumed = ref [] in
      (* predicates attachable as ON conditions *)
      let scope_vars = List.map (fun (b : A.binding) -> b.A.var) scope.A.bindings in
      let tree_vars = A.join_tree_vars jt in
      let pred_vars f =
        match f with
        | A.Pred p ->
            Some
              (List.concat_map
                 (fun t -> List.map fst (A.term_vars t))
                 (A.pred_terms p)
              |> List.filter (fun v -> List.mem v scope_vars))
        | _ -> None
      in
      let attachable f =
        match (f, pred_vars f) with
        | A.Pred p, Some vs ->
            (not (A.pred_has_agg p))
            && (not (Analysis.classify ~heads p).Analysis.is_assignment)
            && vs <> []
            && List.for_all (fun v -> List.mem v tree_vars) vs
        | _ -> false
      in
      let covers node vs =
        let nv = A.join_tree_vars node in
        List.for_all (fun v -> List.mem v nv) vs
      in
      (* Mirror the engine: each attachable conjunct acts at the *smallest*
         join-tree node covering its variables. One-sided predicates filter
         their operand before the join (a WHERE inside the operand's derived
         table); only genuinely spanning conjuncts become outer-join ON
         conditions. Hoisting a one-sided predicate into ON would change
         which rows get null-padded. Inside inner-only regions the placement
         is observationally equivalent to WHERE, so predicates are left
         unconsumed there unless an enclosing outer join makes the
         distinction matter. *)
      let rec smallest node vs =
        match node with
        | A.J_var _ | A.J_lit _ -> node
        | A.J_inner l -> (
            match List.find_opt (fun c -> covers c vs) l with
            | Some c -> smallest c vs
            | None -> node)
        | A.J_left (a, b) | A.J_full (a, b) ->
            if covers a vs then smallest a vs
            else if covers b vs then smallest b vs
            else node
      in
      let assigned node =
        List.filter_map
          (fun f ->
            if (not (List.memq f !consumed)) && attachable f then
              let vs = Option.get (pred_vars f) in
              if covers jt vs && smallest jt vs == node then (
                consumed := f :: !consumed;
                Some f)
              else None
            else None)
          conjs
      in
      let on_cond = function
        | [] -> None
        | fs -> Some (C_and (List.map (tr_bool_formula ~conv ~schemas) fs))
      in
      (* literal leaves: inner(11, s) folds back into plain SQL — drop the
         literal from the tree; its predicate stays in WHERE *)
      let rec build ~under_outer node : table_ref =
        match node with
        | A.J_var v -> (
            let preds = if under_outer then assigned node else [] in
            let b = binding_of v in
            match preds with
            | [] -> (
                match source_ref b with
                | T_lateral (q, a) -> T_sub (q, a)
                | tr -> tr)
            | preds ->
                let cols =
                  match b.A.source with
                  | A.Base n -> (
                      match List.assoc_opt n schemas with
                      | Some cols -> cols
                      | None ->
                          unsupported
                            "outer-join operand %s carries a one-sided \
                             predicate and needs its schema to pre-filter"
                            n)
                  | A.Nested c -> c.A.head.head_attrs
                in
                let inner =
                  match b.A.source with
                  | A.Base n -> T_rel (n, Some v)
                  | A.Nested c -> T_sub (tr_collection ~conv ~schemas c, v)
                in
                T_sub
                  ( Q_select
                      {
                        distinct = dedup_inputs;
                        items =
                          List.map
                            (fun a ->
                              {
                                item_expr = E_col (Some v, a);
                                item_alias = Some a;
                              })
                            cols;
                        from = [ inner ];
                        where = on_cond preds;
                        group_by = [];
                        having = None;
                        order_by = [];
                        limit = None;
                      },
                    v ))
        | A.J_lit _ -> unsupported "literal leaf outside inner()"
        | A.J_inner children -> (
            let mine = if under_outer then assigned node else [] in
            let children =
              List.filter (function A.J_lit _ -> false | _ -> true) children
            in
            match children with
            | [] -> unsupported "empty inner()"
            | [ only ] ->
                if mine <> [] then
                  unsupported "predicate spans a single-operand inner()"
                else build ~under_outer only
            | first :: rest ->
                let last = List.length rest - 1 in
                let tref, _ =
                  List.fold_left
                    (fun (acc, i) child ->
                      ( T_join
                          ( J_inner,
                            acc,
                            build ~under_outer child,
                            if i = last then on_cond mine else None ),
                        i + 1 ))
                    (build ~under_outer first, 0)
                    rest
                in
                tref)
        | A.J_left (a, b) ->
            let conds = on_cond (assigned node) in
            T_join
              (J_left, build ~under_outer:true a, build ~under_outer:true b, conds)
        | A.J_full (a, b) ->
            let conds = on_cond (assigned node) in
            T_join
              (J_full, build ~under_outer:true a, build ~under_outer:true b, conds)
      in
      let tree_ref = build ~under_outer:false jt in
      (* bindings not in the tree join as comma items *)
      let rest =
        List.filter
          (fun (b : A.binding) -> not (List.mem b.A.var tree_vars))
          scope.A.bindings
      in
      (tree_ref :: List.map source_ref rest, !consumed)

(* ------------------------------------------------------------------ *)
(* Collections                                                         *)
(* ------------------------------------------------------------------ *)

and tr_collection ?(conv = Conventions.sql_set) ?(schemas = [])
    (c : A.collection) : set_query =
  let distinct =
    match conv.Conventions.collection with
    | Conventions.Set -> true
    | Conventions.Bag -> false
  in
  let head_name = c.A.head.head_name in
  let tr_disjunct (d : A.formula) : set_query =
    let scope =
      match d with
      | A.Exists s -> s
      | f -> { A.bindings = []; grouping = None; join = None; body = f }
    in
    let from, on_assigned =
      tr_bindings_and_join ~conv ~schemas ~heads:[ head_name ] scope
    in
    let conjs = A.conjuncts scope.A.body in
    let conjs = List.filter (fun f -> not (List.memq f on_assigned)) conjs in
    (* split assignments from conditions *)
    let assignments = ref [] in
    let conditions =
      List.filter
        (fun f ->
          match f with
          | A.Pred p -> (
              match Analysis.assignment_of ~heads:[ head_name ] p with
              | Some ((_, a), t) when List.mem a c.A.head.head_attrs ->
                  if List.mem_assoc a !assignments then true
                  else (
                    assignments := !assignments @ [ (a, t) ];
                    false)
              | _ -> true)
          | _ -> true)
        conjs
    in
    let items =
      List.map
        (fun a ->
          match List.assoc_opt a !assignments with
          | Some t -> { item_expr = tr_term t; item_alias = Some a }
          | None ->
              unsupported
                "head attribute %s.%s lacks a top-level assignment predicate"
                head_name a)
        c.A.head.head_attrs
    in
    let post, pre =
      match scope.A.grouping with
      | None -> ([], conditions)
      | Some _ -> List.partition formula_has_agg conditions
    in
    let where =
      match pre with
      | [] -> None
      | fs -> Some (C_and (List.map (tr_bool_formula ~conv ~schemas) fs))
    in
    let having =
      match post with
      | [] -> None
      | fs -> Some (C_and (List.map (tr_bool_formula ~conv ~schemas) fs))
    in
    let group_by =
      match scope.A.grouping with
      | None -> []
      | Some [] ->
          (* γ∅: aggregate over the whole scope — SQL has no GROUP BY *)
          if
            List.exists (fun (_, t) -> A.term_has_agg t) !assignments
            || having <> None
          then []
          else unsupported "\xce\xb3\xe2\x88\x85 without aggregates"
      | Some keys -> List.map (fun (v, a) -> (Some v, a)) keys
    in
    Q_select
      {
        distinct;
        items;
        from;
        where;
        group_by;
        having;
        order_by = [];
        limit = None;
      }
  in
  let disjuncts = A.disjuncts (Arc_core.Canon.simplify_formula c.A.body) in
  match List.map tr_disjunct disjuncts with
  | [] -> unsupported "empty collection body"
  | q :: rest ->
      List.fold_left (fun acc q' -> Q_union (not distinct, acc, q')) q rest

(* ------------------------------------------------------------------ *)
(* Programs                                                            *)
(* ------------------------------------------------------------------ *)

let rec def_is_recursive (d : A.definition) =
  let rec walk_f (f : A.formula) =
    match f with
    | A.True | A.Pred _ -> false
    | A.And fs | A.Or fs -> List.exists walk_f fs
    | A.Not f -> walk_f f
    | A.Exists s ->
        List.exists
          (fun (b : A.binding) ->
            match b.A.source with
            | A.Base n -> n = d.A.def_name
            | A.Nested c -> walk_f c.A.body)
          s.A.bindings
        || walk_f s.A.body
  in
  walk_f d.A.def_body.A.body

let statement ?(conv = Conventions.sql_set) ?(schemas = []) (p : A.program) :
    statement =
  (* definitions contribute their head attributes, so grouping scopes over
     defined collections can deduplicate under Set conventions too *)
  let schemas =
    schemas
    @ List.map
        (fun (d : A.definition) ->
          (d.A.def_name, d.A.def_body.A.head.head_attrs))
        p.A.defs
  in
  let ctes =
    List.map
      (fun (d : A.definition) ->
        {
          cte_name = d.A.def_name;
          cte_cols = d.A.def_body.A.head.head_attrs;
          cte_body = tr_collection ~conv ~schemas d.A.def_body;
        })
      p.A.defs
  in
  let recursive = List.exists def_is_recursive p.A.defs in
  let body =
    match p.A.main with
    | A.Coll c -> tr_collection ~conv ~schemas c
    | A.Sentence f ->
        (* Fig 9: SQL can only return a unary relation for a sentence *)
        Q_select
          {
            distinct = true;
            items = [ { item_expr = E_const (V.Int 1); item_alias = Some "holds" } ];
            from = [];
            where = Some (tr_bool_formula ~conv ~schemas f);
            group_by = [];
            having = None;
            order_by = [];
            limit = None;
          }
  in
  { with_recursive = recursive; ctes; body }

let collection ?(conv = Conventions.sql_set) ?(schemas = []) c =
  tr_collection ~conv ~schemas c
