open Ast
module V = Arc_value.Value
module Aggregate = Arc_value.Aggregate

(* must cover every word the lexer treats as a keyword, so an identifier
   that collides with one round-trips through quoting *)
let keywords =
  [
    "select"; "distinct"; "from"; "where"; "group"; "by"; "having"; "as";
    "on"; "join"; "left"; "right"; "full"; "cross"; "inner"; "outer";
    "lateral"; "exists"; "in"; "is"; "not"; "null"; "like"; "and"; "or";
    "union"; "all"; "except"; "intersect"; "with"; "recursive"; "true";
    "false"; "into"; "order"; "asc"; "desc"; "limit";
  ]

let is_plain_ident s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | '$' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> true | _ -> false)
       s
  && not (List.mem (String.lowercase_ascii s) keywords)

let ident s =
  if is_plain_ident s then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let binop_str = function
  | B_add -> "+"
  | B_sub -> "-"
  | B_mul -> "*"
  | B_div -> "/"
  | B_mod -> "%"

let agg_name = function
  | Aggregate.Sum -> "sum"
  | Aggregate.Count -> "count"
  | Aggregate.Avg -> "avg"
  | Aggregate.Min -> "min"
  | Aggregate.Max -> "max"
  | Aggregate.Count_distinct -> "count(distinct"
  | Aggregate.Sum_distinct -> "sum(distinct"
  | Aggregate.Avg_distinct -> "avg(distinct"

let rec expr = function
  | E_const v -> V.to_string v
  | E_col (None, c) -> ident c
  | E_col (Some t, c) -> ident t ^ "." ^ ident c
  | E_binop (op, l, r) ->
      Printf.sprintf "%s %s %s" (eatom l) (binop_str op) (eatom r)
  | E_neg e -> "-" ^ eatom e
  | E_agg (k, e) -> (
      match k with
      | Aggregate.Count_distinct | Aggregate.Sum_distinct
      | Aggregate.Avg_distinct ->
          Printf.sprintf "%s %s)" (agg_name k) (expr e)
      | _ -> Printf.sprintf "%s(%s)" (agg_name k) (expr e))
  | E_count_star -> "count(*)"
  | E_scalar_subquery q -> "(" ^ set_query q ^ ")"

and eatom e =
  match e with
  | E_binop _ -> "(" ^ expr e ^ ")"
  | _ -> expr e

and cond = function
  | C_true -> "true"
  | C_cmp (op, l, r) ->
      Printf.sprintf "%s %s %s" (expr l) (cmp_to_string op) (expr r)
  | C_and cs -> String.concat " and " (List.map catom cs)
  | C_or cs -> String.concat " or " (List.map corom cs)
  | C_not (C_exists q) -> "not exists (" ^ set_query q ^ ")"
  | C_not (C_in (e, q)) -> expr e ^ " not in (" ^ set_query q ^ ")"
  | C_not c -> "not (" ^ cond c ^ ")"
  | C_exists q -> "exists (" ^ set_query q ^ ")"
  | C_in (e, q) -> expr e ^ " in (" ^ set_query q ^ ")"
  | C_is_null e -> expr e ^ " is null"
  | C_is_not_null e -> expr e ^ " is not null"
  | C_like (e, p) -> expr e ^ " like " ^ V.to_string (V.Str p)

and catom c =
  match c with C_or _ | C_and _ -> "(" ^ cond c ^ ")" | _ -> cond c

and corom c = match c with C_or _ -> "(" ^ cond c ^ ")" | _ -> cond c

and table_ref = function
  | T_rel (n, None) -> ident n
  | T_rel (n, Some a) -> ident n ^ " as " ^ ident a
  | T_sub (q, a) -> "(" ^ set_query q ^ ") as " ^ ident a
  | T_join (k, l, r, on) ->
      let kw =
        match k with
        | J_inner -> "join"
        | J_left -> "left join"
        | J_full -> "full join"
        | J_cross -> "cross join"
      in
      let on_str =
        match on with
        | Some c -> " on " ^ cond c
        | None -> (match k with J_cross -> "" | _ -> " on true")
      in
      let rhs =
        match r with
        | T_lateral (q, a) -> "lateral (" ^ set_query q ^ ") as " ^ ident a
        | _ -> join_operand r
      in
      table_ref l ^ " " ^ kw ^ " " ^ rhs ^ on_str
  | T_lateral (q, a) -> "join lateral (" ^ set_query q ^ ") as " ^ ident a ^ " on true"

and join_operand r =
  match r with
  | T_join _ -> "(" ^ table_ref r ^ ")"
  | _ -> table_ref r

and select_str s =
  let items =
    String.concat ", "
      (List.map
         (fun it ->
           expr it.item_expr
           ^ match it.item_alias with Some a -> " as " ^ ident a | None -> "")
         s.items)
  in
  let parts =
    [ "select " ^ (if s.distinct then "distinct " else "") ^ items ]
    @ (if s.from = [] then []
       else
         [
           "from "
           ^ String.concat ", "
               (List.map
                  (fun tr ->
                    match tr with
                    | T_lateral _ ->
                        (* a lateral item never starts a FROM list *)
                        table_ref tr
                    | _ -> table_ref tr)
                  s.from);
         ])
    @ (match s.where with Some c -> [ "where " ^ cond c ] | None -> [])
    @ (if s.group_by = [] then []
       else
         [
           "group by "
           ^ String.concat ", "
               (List.map
                  (fun (t, c) ->
                    match t with Some t -> ident t ^ "." ^ ident c | None -> ident c)
                  s.group_by);
         ])
    @ (match s.having with Some c -> [ "having " ^ cond c ] | None -> [])
    @ (if s.order_by = [] then []
       else
         [
           "order by "
           ^ String.concat ", "
               (List.map
                  (fun (e, desc) -> expr e ^ if desc then " desc" else "")
                  s.order_by);
         ])
    @ match s.limit with Some n -> [ "limit " ^ string_of_int n ] | None -> []
  in
  String.concat " " parts

and set_query ?indent q =
  ignore indent;
  match q with
  | Q_select s -> select_str s
  | Q_union (all, a, b) ->
      set_atom a ^ " union " ^ (if all then "all " else "") ^ set_atom b
  | Q_except (all, a, b) ->
      set_atom a ^ " except " ^ (if all then "all " else "") ^ set_atom b
  | Q_intersect (all, a, b) ->
      set_atom a ^ " intersect " ^ (if all then "all " else "") ^ set_atom b

and set_atom q =
  match q with Q_select _ -> set_query q | _ -> "(" ^ set_query q ^ ")"

let statement st =
  let ctes =
    if st.ctes = [] then ""
    else
      "with "
      ^ (if st.with_recursive then "recursive " else "")
      ^ String.concat ", "
          (List.map
             (fun c ->
               ident c.cte_name
               ^ (if c.cte_cols = [] then ""
                  else "(" ^ String.concat ", " (List.map ident c.cte_cols) ^ ")")
               ^ " as (" ^ set_query c.cte_body ^ ")")
             st.ctes)
      ^ " "
  in
  ctes ^ set_query st.body
