open Ast
module V = Arc_value.Value
module Aggregate = Arc_value.Aggregate
open Lex

exception Parse_error of string

exception Fail of string

let fail fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt

type state = { toks : token array }

let tok st i = if i < Array.length st.toks then st.toks.(i) else EOF

let expect st i t =
  if tok st i = t then i + 1
  else
    fail "expected %s, found %s" (token_to_string t)
      (token_to_string (tok st i))

let expect_kw st i k =
  match tok st i with
  | KW k' when k' = k -> i + 1
  | t -> fail "expected %s, found %s" k (token_to_string t)

let try_parse f st i = try Some (f st i) with Fail _ -> None

let agg_of_name = function
  | "sum" -> Some Aggregate.Sum
  | "count" -> Some Aggregate.Count
  | "avg" -> Some Aggregate.Avg
  | "min" -> Some Aggregate.Min
  | "max" -> Some Aggregate.Max
  | _ -> None

let distinct_agg = function
  | Aggregate.Sum -> Aggregate.Sum_distinct
  | Aggregate.Count -> Aggregate.Count_distinct
  | Aggregate.Avg -> Aggregate.Avg_distinct
  | k -> k

(* ---------------- expressions ---------------- *)

let rec parse_expr st i = parse_add st i

and parse_add st i =
  let l, i = parse_mul st i in
  let rec loop acc i =
    match tok st i with
    | OP "+" ->
        let r, i = parse_mul st (i + 1) in
        loop (E_binop (B_add, acc, r)) i
    | OP "-" ->
        let r, i = parse_mul st (i + 1) in
        loop (E_binop (B_sub, acc, r)) i
    | _ -> (acc, i)
  in
  loop l i

and parse_mul st i =
  let l, i = parse_eatom st i in
  let rec loop acc i =
    match tok st i with
    | STAR ->
        let r, i = parse_eatom st (i + 1) in
        loop (E_binop (B_mul, acc, r)) i
    | OP "/" ->
        let r, i = parse_eatom st (i + 1) in
        loop (E_binop (B_div, acc, r)) i
    | OP "%" ->
        let r, i = parse_eatom st (i + 1) in
        loop (E_binop (B_mod, acc, r)) i
    | _ -> (acc, i)
  in
  loop l i

and parse_eatom st i =
  match tok st i with
  | NUMBER v -> (E_const v, i + 1)
  | STRING s -> (E_const (V.Str s), i + 1)
  | KW "null" -> (E_const V.Null, i + 1)
  | KW "true" -> (E_const (V.Bool true), i + 1)
  | KW "false" -> (E_const (V.Bool false), i + 1)
  | OP "-" ->
      let e, i = parse_eatom st (i + 1) in
      (E_neg e, i)
  | LPAREN -> (
      match tok st (i + 1) with
      | KW ("select" | "with") ->
          let q, i = parse_set_query st (i + 1) in
          let i = expect st i RPAREN in
          (E_scalar_subquery q, i)
      | _ ->
          let e, i = parse_expr st (i + 1) in
          let i = expect st i RPAREN in
          (e, i))
  | IDENT name -> (
      match (agg_of_name (String.lowercase_ascii name), tok st (i + 1)) with
      | Some k, LPAREN -> (
          match (k, tok st (i + 2)) with
          | Aggregate.Count, STAR ->
              let i = expect st (i + 3) RPAREN in
              (E_count_star, i)
          | _, KW "distinct" ->
              let e, i = parse_expr st (i + 3) in
              let i = expect st i RPAREN in
              (E_agg (distinct_agg k, e), i)
          | _ ->
              let e, i = parse_expr st (i + 2) in
              let i = expect st i RPAREN in
              (E_agg (k, e), i))
      | _ -> (
          match (tok st (i + 1), tok st (i + 2)) with
          | DOT, IDENT c -> (E_col (Some name, c), i + 3)
          | DOT, KW c -> (E_col (Some name, c), i + 3)
          | _ -> (E_col (None, name), i + 1)))
  | t -> fail "expected expression, found %s" (token_to_string t)

(* ---------------- conditions ---------------- *)

and parse_cond st i =
  let l, i = parse_cond_and st i in
  let rec loop acc i =
    match tok st i with
    | KW "or" ->
        let r, i = parse_cond_and st (i + 1) in
        loop (acc @ [ r ]) i
    | _ -> (acc, i)
  in
  let parts, i = loop [ l ] i in
  ((match parts with [ c ] -> c | cs -> C_or cs), i)

and parse_cond_and st i =
  let l, i = parse_cond_unary st i in
  let rec loop acc i =
    match tok st i with
    | KW "and" ->
        let r, i = parse_cond_unary st (i + 1) in
        loop (acc @ [ r ]) i
    | _ -> (acc, i)
  in
  let parts, i = loop [ l ] i in
  ((match parts with [ c ] -> c | cs -> C_and cs), i)

and parse_cond_unary st i =
  match tok st i with
  | KW "not" -> (
      match tok st (i + 1) with
      | KW "exists" ->
          let q, i = parse_subquery st (i + 2) in
          (C_not (C_exists q), i)
      | _ ->
          let c, i = parse_cond_unary st (i + 1) in
          (C_not c, i))
  | KW "exists" ->
      let q, i = parse_subquery st (i + 1) in
      (C_exists q, i)
  | KW "true" when not (is_expr_context st i) -> (C_true, i + 1)
  | LPAREN -> (
      match try_parse parse_predicate st i with
      | Some r -> r
      | None ->
          let c, i = parse_cond st (i + 1) in
          let i = expect st i RPAREN in
          (c, i))
  | _ -> parse_predicate st i

and is_expr_context st i =
  (* 'true' followed by a comparison is the boolean constant in a
     predicate; bare 'true' is the trivial condition *)
  match tok st (i + 1) with OP _ -> true | _ -> false

and parse_predicate st i =
  let l, i = parse_expr st i in
  match tok st i with
  | OP ("=" | "<>" | "<" | "<=" | ">" | ">=") ->
      let op =
        match tok st i with
        | OP "=" -> Ceq
        | OP "<>" -> Cneq
        | OP "<" -> Clt
        | OP "<=" -> Cleq
        | OP ">" -> Cgt
        | OP ">=" -> Cgeq
        | _ -> assert false
      in
      let r, i = parse_expr st (i + 1) in
      (C_cmp (op, l, r), i)
  | KW "is" -> (
      match (tok st (i + 1), tok st (i + 2)) with
      | KW "null", _ -> (C_is_null l, i + 2)
      | KW "not", KW "null" -> (C_is_not_null l, i + 3)
      | _ -> fail "expected [not] null after is")
  | KW "like" -> (
      match tok st (i + 1) with
      | STRING p -> (C_like (l, p), i + 2)
      | t -> fail "expected pattern after like, found %s" (token_to_string t))
  | KW "in" ->
      let q, i = parse_subquery st (i + 1) in
      (C_in (l, q), i)
  | KW "not" when tok st (i + 1) = KW "in" ->
      let q, i = parse_subquery st (i + 2) in
      (C_not (C_in (l, q)), i)
  | t -> fail "expected predicate operator, found %s" (token_to_string t)

and parse_subquery st i =
  let i = expect st i LPAREN in
  let q, i = parse_set_query st i in
  let i = expect st i RPAREN in
  (q, i)

(* ---------------- FROM ---------------- *)

and parse_table_ref st i =
  let base, i = parse_table_base st i in
  parse_joins st i base

and parse_table_base st i =
  match tok st i with
  | IDENT name -> (
      match tok st (i + 1) with
      | KW "as" -> (
          match tok st (i + 2) with
          | IDENT a -> (T_rel (name, Some a), i + 3)
          | t -> fail "expected alias, found %s" (token_to_string t))
      | IDENT a -> (T_rel (name, Some a), i + 2)
      | _ -> (T_rel (name, None), i + 1))
  | LPAREN -> (
      match tok st (i + 1) with
      | KW ("select" | "with") -> (
          let q, i = parse_set_query st (i + 1) in
          let i = expect st i RPAREN in
          match tok st i with
          | KW "as" -> (
              match tok st (i + 1) with
              | IDENT a -> (T_sub (q, a), i + 2)
              | t -> fail "expected alias, found %s" (token_to_string t))
          | IDENT a -> (T_sub (q, a), i + 1)
          | t -> fail "subquery in FROM needs an alias, found %s" (token_to_string t))
      | _ ->
          (* parenthesized join tree *)
          let tr, i = parse_table_ref st (i + 1) in
          let i = expect st i RPAREN in
          (tr, i))
  | t -> fail "expected table reference, found %s" (token_to_string t)

and parse_joins st i left =
  let kind_opt =
    match tok st i with
    | KW "join" -> Some (J_inner, i + 1)
    | KW "inner" when tok st (i + 1) = KW "join" -> Some (J_inner, i + 2)
    | KW "left" when tok st (i + 1) = KW "join" -> Some (J_left, i + 2)
    | KW "left" when tok st (i + 1) = KW "outer" && tok st (i + 2) = KW "join"
      ->
        Some (J_left, i + 3)
    | KW "full" when tok st (i + 1) = KW "join" -> Some (J_full, i + 2)
    | KW "full" when tok st (i + 1) = KW "outer" && tok st (i + 2) = KW "join"
      ->
        Some (J_full, i + 3)
    | KW "cross" when tok st (i + 1) = KW "join" -> Some (J_cross, i + 2)
    | _ -> None
  in
  match kind_opt with
  | None -> (left, i)
  | Some (kind, i) -> (
      match tok st i with
      | KW "lateral" -> (
          let q, i = parse_subquery st (i + 1) in
          let alias, i =
            match tok st i with
            | KW "as" -> (
                match tok st (i + 1) with
                | IDENT a -> (a, i + 2)
                | t -> fail "expected alias, found %s" (token_to_string t))
            | IDENT a -> (a, i + 1)
            | t -> fail "lateral subquery needs an alias, found %s" (token_to_string t)
          in
          match tok st i with
          | KW "on" ->
              (* LATERAL … ON <cond>: only "on true" is used by the paper's
                 figures; other conditions are parsed and folded in *)
              let c, i = parse_cond st (i + 1) in
              let on = match c with C_true -> None | c -> Some c in
              parse_joins st i (T_join (kind, left, T_lateral (q, alias), on))
          | _ ->
              parse_joins st i (T_join (kind, left, T_lateral (q, alias), None)))
      | _ -> (
          let right, i = parse_table_base st i in
          match tok st i with
          | KW "on" ->
              let c, i = parse_cond st (i + 1) in
              parse_joins st i (T_join (kind, left, right, Some c))
          | _ -> parse_joins st i (T_join (kind, left, right, None))))

and parse_set_query st i =
  let l, i = parse_set_atom st i in
  let rec loop acc i =
    match tok st i with
    | KW "union" ->
        let all, i =
          if tok st (i + 1) = KW "all" then (true, i + 2) else (false, i + 1)
        in
        let r, i = parse_set_atom st i in
        loop (Q_union (all, acc, r)) i
    | KW "except" ->
        let all, i =
          if tok st (i + 1) = KW "all" then (true, i + 2) else (false, i + 1)
        in
        let r, i = parse_set_atom st i in
        loop (Q_except (all, acc, r)) i
    | KW "intersect" ->
        let all, i =
          if tok st (i + 1) = KW "all" then (true, i + 2) else (false, i + 1)
        in
        let r, i = parse_set_atom st i in
        loop (Q_intersect (all, acc, r)) i
    | _ -> (acc, i)
  in
  loop l i

and parse_set_atom st i =
  match tok st i with
  | KW "select" ->
      let s, i = parse_select st (i + 1) in
      (Q_select s, i)
  | LPAREN ->
      let q, i = parse_set_query st (i + 1) in
      let i = expect st i RPAREN in
      (q, i)
  | t -> fail "expected select, found %s" (token_to_string t)

and parse_select st i =
  let distinct, i =
    if tok st i = KW "distinct" then (true, i + 1) else (false, i)
  in
  let rec items i acc =
    let e, i = parse_expr st i in
    let alias, i =
      match tok st i with
      | KW "as" -> (
          match tok st (i + 1) with
          | IDENT a -> (Some a, i + 2)
          | KW a -> (Some a, i + 2)
          | t -> fail "expected alias after as, found %s" (token_to_string t))
      | IDENT a -> (Some a, i + 1)
      | _ -> (None, i)
    in
    let acc = acc @ [ { item_expr = e; item_alias = alias } ] in
    match tok st i with COMMA -> items (i + 1) acc | _ -> (acc, i)
  in
  let items_list, i = items i [] in
  (* optional SELECT ... INTO Name (Fig 18): recognized and skipped; the
     caller keeps the target name through the surrounding tooling *)
  let i = match tok st i with
    | KW "into" -> (
        match tok st (i + 1) with
        | IDENT _ -> i + 2
        | t -> fail "expected name after into, found %s" (token_to_string t))
    | _ -> i
  in
  let from, i =
    if tok st i = KW "from" then begin
      let rec froms i acc =
        let tr, i = parse_table_ref st i in
        match tok st i with
        | COMMA -> froms (i + 1) (acc @ [ tr ])
        | _ -> (acc @ [ tr ], i)
      in
      froms (i + 1) []
    end
    else ([], i)
  in
  let where, i =
    if tok st i = KW "where" then
      let c, i = parse_cond st (i + 1) in
      (Some c, i)
    else (None, i)
  in
  let group_by, i =
    if tok st i = KW "group" then begin
      let i = expect_kw st (i + 1) "by" in
      let rec cols i acc =
        match (tok st i, tok st (i + 1), tok st (i + 2)) with
        | IDENT t, DOT, IDENT c -> next (i + 3) (acc @ [ (Some t, c) ])
        | IDENT t, DOT, KW c -> next (i + 3) (acc @ [ (Some t, c) ])
        | IDENT c, _, _ -> next (i + 1) (acc @ [ (None, c) ])
        | t, _, _ -> fail "expected group-by column, found %s" (token_to_string t)
      and next i acc =
        match tok st i with COMMA -> cols (i + 1) acc | _ -> (acc, i)
      in
      cols i []
    end
    else ([], i)
  in
  let having, i =
    if tok st i = KW "having" then
      let c, i = parse_cond st (i + 1) in
      (Some c, i)
    else (None, i)
  in
  let order_by, i =
    if tok st i = KW "order" then begin
      let i = expect_kw st (i + 1) "by" in
      let rec keys i acc =
        let e, i = parse_expr st i in
        let desc, i =
          match tok st i with
          | KW "desc" -> (true, i + 1)
          | KW "asc" -> (false, i + 1)
          | _ -> (false, i)
        in
        match tok st i with
        | COMMA -> keys (i + 1) (acc @ [ (e, desc) ])
        | _ -> (acc @ [ (e, desc) ], i)
      in
      keys i []
    end
    else ([], i)
  in
  let limit, i =
    if tok st i = KW "limit" then
      match tok st (i + 1) with
      | NUMBER (V.Int n) -> (Some n, i + 2)
      | t -> fail "expected row count after limit, found %s" (token_to_string t)
    else (None, i)
  in
  ( { distinct; items = items_list; from; where; group_by; having; order_by;
      limit },
    i )

and parse_statement st i =
  if tok st i = KW "with" then begin
    let recursive, i =
      if tok st (i + 1) = KW "recursive" then (true, i + 2) else (false, i + 1)
    in
    let rec ctes i acc =
      let name, i =
        match tok st i with
        | IDENT n -> (n, i + 1)
        | t -> fail "expected CTE name, found %s" (token_to_string t)
      in
      let cols, i =
        if tok st i = LPAREN then begin
          let rec cs i acc =
            match tok st i with
            | IDENT c -> (
                match tok st (i + 1) with
                | COMMA -> cs (i + 2) (acc @ [ c ])
                | RPAREN -> (acc @ [ c ], i + 2)
                | t -> fail "expected , or ) in CTE columns, found %s" (token_to_string t))
            | t -> fail "expected CTE column, found %s" (token_to_string t)
          in
          cs (i + 1) []
        end
        else ([], i)
      in
      let i = expect_kw st i "as" in
      let body, i = parse_subquery st i in
      let acc = acc @ [ { cte_name = name; cte_cols = cols; cte_body = body } ] in
      match tok st i with COMMA -> ctes (i + 1) acc | _ -> (acc, i)
    in
    let cte_list, i = ctes i [] in
    let body, i = parse_set_query st i in
    ({ with_recursive = recursive; ctes = cte_list; body }, i)
  end
  else
    let body, i = parse_set_query st i in
    ({ with_recursive = false; ctes = []; body }, i)

let run_parser : 'a. (state -> int -> 'a * int) -> string -> 'a =
  fun f input ->
  let toks =
    try Lex.tokenize input
    with Lex_error (msg, off) ->
      raise
        (Parse_error (Printf.sprintf "lexical error at offset %d: %s" off msg))
  in
  let st = { toks = Array.of_list toks } in
  try
    let v, i = f st 0 in
    if tok st i <> EOF then
      raise
        (Parse_error
           (Printf.sprintf "trailing input at token %d: %s" i
              (token_to_string (tok st i))))
    else v
  with Fail msg -> raise (Parse_error msg)

let statement_of_string s = run_parser parse_statement s
let set_query_of_string s = run_parser parse_set_query s
let cond_of_string s = run_parser parse_cond s
let expr_of_string s = run_parser parse_expr s
