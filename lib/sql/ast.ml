type expr =
  | E_const of Arc_value.Value.t
  | E_col of string option * string
  | E_binop of binop * expr * expr
  | E_neg of expr
  | E_agg of Arc_value.Aggregate.kind * expr
  | E_count_star
  | E_scalar_subquery of set_query

and binop = B_add | B_sub | B_mul | B_div | B_mod

and cond =
  | C_true
  | C_cmp of cmp * expr * expr
  | C_and of cond list
  | C_or of cond list
  | C_not of cond
  | C_exists of set_query
  | C_in of expr * set_query
  | C_is_null of expr
  | C_is_not_null of expr
  | C_like of expr * string

and cmp = Ceq | Cneq | Clt | Cleq | Cgt | Cgeq

and table_ref =
  | T_rel of string * string option
  | T_sub of set_query * string
  | T_join of join_kind * table_ref * table_ref * cond option
  | T_lateral of set_query * string

and join_kind = J_inner | J_left | J_full | J_cross

and select_item = { item_expr : expr; item_alias : string option }

and select = {
  distinct : bool;
  items : select_item list;
  from : table_ref list;
  where : cond option;
  group_by : (string option * string) list;
  having : cond option;
  order_by : (expr * bool) list;  (* true = descending *)
  limit : int option;
}

and set_query =
  | Q_select of select
  | Q_union of bool * set_query * set_query
  | Q_except of bool * set_query * set_query
  | Q_intersect of bool * set_query * set_query

type cte = { cte_name : string; cte_cols : string list; cte_body : set_query }

type statement = {
  with_recursive : bool;
  ctes : cte list;
  body : set_query;
}

let statement ?(recursive = false) ?(ctes = []) body =
  { with_recursive = recursive; ctes; body }

let select ?(distinct = false) ?where ?(group_by = []) ?having
    ?(order_by = []) ?limit ~items ~from () =
  { distinct; items; from; where; group_by; having; order_by; limit }

let item ?alias item_expr = { item_expr; item_alias = alias }
let col ?table name = E_col (table, name)

let equal_statement (a : statement) (b : statement) = a = b
let equal_set_query (a : set_query) (b : set_query) = a = b

let item_name i it =
  match it.item_alias with
  | Some a -> a
  | None -> (
      match it.item_expr with
      | E_col (_, c) -> c
      | _ -> Printf.sprintf "col%d" (i + 1))

let cmp_to_string = function
  | Ceq -> "="
  | Cneq -> "<>"
  | Clt -> "<"
  | Cleq -> "<="
  | Cgt -> ">"
  | Cgeq -> ">="
