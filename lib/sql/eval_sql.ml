open Ast
module V = Arc_value.Value
module B3 = Arc_value.Bool3
module Aggregate = Arc_value.Aggregate
module Conventions = Arc_value.Conventions
module Relation = Arc_relation.Relation
module Tuple = Arc_relation.Tuple
module Schema = Arc_relation.Schema
module Database = Arc_relation.Database

exception Sql_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Sql_error s)) fmt

type env = { db : Database.t; ctes : (string * Relation.t) list }

(* a row environment binds table aliases to tuples, innermost first *)
type row = (string * Tuple.t) list

let find_relation env name =
  match List.assoc_opt name env.ctes with
  | Some r -> r
  | None -> (
      match Database.find_opt env.db name with
      | Some r -> r
      | None -> fail "unknown relation %S" name)

let resolve_col (row : row) table col =
  match table with
  | Some t -> (
      match List.assoc_opt t row with
      | Some tp -> (
          try Tuple.get tp col
          with Schema.Unknown_attribute _ ->
            fail "table %S has no column %S" t col)
      | None -> fail "unknown table alias %S" t)
  | None -> (
      let candidates =
        List.filter (fun (_, tp) -> Schema.mem (Tuple.schema tp) col) row
      in
      (* innermost scope first; ambiguity only within the same tuple set is
         not tracked — first match wins across scopes, duplicates within the
         innermost scope are ambiguous *)
      match candidates with
      | [] -> fail "unknown column %S" col
      | [ (_, tp) ] -> Tuple.get tp col
      | (a1, tp) :: (a2, _) :: _ ->
          if a1 = a2 then Tuple.get tp col
          else
            (* allow shadowing across correlation levels: alias lists keep
               inner scopes first, so the first hit is the innermost *)
            Tuple.get tp col)

let binop_apply op l r =
  match op with
  | B_add -> V.add l r
  | B_sub -> V.sub l r
  | B_mul -> V.mul l r
  | B_div -> V.div l r
  | B_mod -> V.modulo l r

let test_cmp op c =
  match op with
  | Ceq -> c = 0
  | Cneq -> c <> 0
  | Clt -> c < 0
  | Cleq -> c <= 0
  | Cgt -> c > 0
  | Cgeq -> c >= 0

(* ------------------------------------------------------------------ *)
(* Expressions & conditions (correlated: need the set-query evaluator) *)
(* ------------------------------------------------------------------ *)

let rec eval_expr env (row : row) e : V.t =
  match e with
  | E_const v -> v
  | E_col (t, c) -> resolve_col row t c
  | E_binop (op, l, r) -> binop_apply op (eval_expr env row l) (eval_expr env row r)
  | E_neg e -> V.neg (eval_expr env row e)
  | E_agg _ | E_count_star -> fail "aggregate outside grouping context"
  | E_scalar_subquery q -> (
      let r = eval_set_query env row q in
      match Relation.tuples r with
      | [] -> V.Null
      | [ tp ] -> (
          match Tuple.values tp with
          | [ v ] -> v
          | _ -> fail "scalar subquery returned %d columns" (Schema.arity (Relation.schema r)))
      | _ -> fail "scalar subquery returned more than one row")

and eval_cond env (row : row) c : B3.t =
  match c with
  | C_true -> B3.True
  | C_cmp (op, l, r) -> (
      let vl = eval_expr env row l and vr = eval_expr env row r in
      match V.cmp3 vl vr with
      | None -> B3.Unknown
      | Some c -> B3.of_bool (test_cmp op c))
  | C_and cs -> B3.and_list (List.map (eval_cond env row) cs)
  | C_or cs -> B3.or_list (List.map (eval_cond env row) cs)
  | C_not c -> B3.not_ (eval_cond env row c)
  | C_exists q -> B3.of_bool (not (Relation.is_empty (eval_set_query env row q)))
  | C_in (e, q) -> (
      let v = eval_expr env row e in
      let r = eval_set_query env row q in
      let vals =
        List.map
          (fun tp ->
            match Tuple.values tp with
            | [ x ] -> x
            | _ -> fail "IN subquery must return one column")
          (Relation.tuples r)
      in
      if vals = [] then B3.False
      else if V.is_null v then B3.Unknown
      else if List.exists (fun x -> (not (V.is_null x)) && V.equal x v) vals
      then B3.True
      else if List.exists V.is_null vals then B3.Unknown
      else B3.False)
  | C_is_null e -> B3.of_bool (V.is_null (eval_expr env row e))
  | C_is_not_null e -> B3.of_bool (not (V.is_null (eval_expr env row e)))
  | C_like (e, p) -> (
      match V.like (eval_expr env row e) p with
      | Some b -> B3.of_bool b
      | None -> B3.Unknown)

(* group-aware expression evaluation *)
and eval_gexpr env ~rep ~group e : V.t =
  match e with
  | E_agg (k, inner) ->
      let values = List.map (fun r -> eval_expr env r inner) group in
      Aggregate.apply Conventions.Agg_null k values
  | E_count_star -> V.Int (List.length group)
  | E_binop (op, l, r) ->
      binop_apply op (eval_gexpr env ~rep ~group l) (eval_gexpr env ~rep ~group r)
  | E_neg e -> V.neg (eval_gexpr env ~rep ~group e)
  (* constants survive an empty global group: SELECT 'x', sum(a) FROM t
     with t empty yields ('x', NULL), not (NULL, NULL) *)
  | E_const v -> v
  | _ -> ( match rep with Some r -> eval_expr env r e | None -> V.Null)

and eval_gcond env ~rep ~group c : B3.t =
  match c with
  | C_true -> B3.True
  | C_cmp (op, l, r) -> (
      let vl = eval_gexpr env ~rep ~group l
      and vr = eval_gexpr env ~rep ~group r in
      match V.cmp3 vl vr with
      | None -> B3.Unknown
      | Some c -> B3.of_bool (test_cmp op c))
  | C_and cs -> B3.and_list (List.map (eval_gcond env ~rep ~group) cs)
  | C_or cs -> B3.or_list (List.map (eval_gcond env ~rep ~group) cs)
  | C_not c -> B3.not_ (eval_gcond env ~rep ~group c)
  | c -> (
      match rep with Some r -> eval_cond env r c | None -> B3.Unknown)

(* ------------------------------------------------------------------ *)
(* FROM clause                                                         *)
(* ------------------------------------------------------------------ *)

(* Evaluating a table_ref yields the aliases it introduces (with schemas,
   needed for NULL padding) and the rows, each a list of (alias, tuple). *)
and eval_table_ref env (outer : row) tr : (string * Schema.t) list * row list =
  match tr with
  | T_rel (name, alias) ->
      let r = find_relation env name in
      let a = Option.value alias ~default:name in
      ( [ (a, Relation.schema r) ],
        List.map (fun tp -> [ (a, tp) ]) (Relation.tuples r) )
  | T_sub (q, a) ->
      let r = eval_set_query env outer q in
      ( [ (a, Relation.schema r) ],
        List.map (fun tp -> [ (a, tp) ]) (Relation.tuples r) )
  | T_lateral (q, a) ->
      (* caller must pass the current partial row in [outer] *)
      let r = eval_set_query env outer q in
      ( [ (a, Relation.schema r) ],
        List.map (fun tp -> [ (a, tp) ]) (Relation.tuples r) )
  | T_join (kind, l, r, on) -> (
      let schemas_l, rows_l = eval_table_ref env outer l in
      match kind with
      | J_cross | J_inner when not (is_lateral r) ->
          let schemas_r, rows_r = eval_table_ref env outer r in
          let joined =
            List.concat_map
              (fun x ->
                List.filter_map
                  (fun y ->
                    let row = y @ x in
                    match on with
                    | None -> Some row
                    | Some c ->
                        if eval_cond env (row @ outer) c = B3.True then Some row
                        else None)
                  rows_r)
              rows_l
          in
          (schemas_l @ schemas_r, joined)
      | J_cross | J_inner ->
          (* lateral: right side re-evaluated per left row *)
          let schemas_r = lateral_schemas env outer r in
          let joined =
            List.concat_map
              (fun x ->
                let _, rows_r = eval_table_ref env (x @ outer) r in
                List.filter_map
                  (fun y ->
                    let row = y @ x in
                    match on with
                    | None -> Some row
                    | Some c ->
                        if eval_cond env (row @ outer) c = B3.True then Some row
                        else None)
                  rows_r)
              rows_l
          in
          (schemas_l @ schemas_r, joined)
      | J_left ->
          let schemas_r = lateral_schemas env outer r in
          let joined =
            List.concat_map
              (fun x ->
                let _, rows_r = eval_table_ref env (x @ outer) r in
                let matches =
                  List.filter_map
                    (fun y ->
                      let row = y @ x in
                      match on with
                      | None -> Some row
                      | Some c ->
                          if eval_cond env (row @ outer) c = B3.True then
                            Some row
                          else None)
                    rows_r
                in
                if matches = [] then [ null_row schemas_r @ x ] else matches)
              rows_l
          in
          (schemas_l @ schemas_r, joined)
      | J_full ->
          let schemas_r, rows_r = eval_table_ref env outer r in
          let matched_r = Hashtbl.create 16 in
          let left_part =
            List.concat_map
              (fun x ->
                let matches =
                  List.concat
                    (List.mapi
                       (fun i y ->
                         let row = y @ x in
                         let ok =
                           match on with
                           | None -> true
                           | Some c -> eval_cond env (row @ outer) c = B3.True
                         in
                         if ok then (
                           Hashtbl.replace matched_r i ();
                           [ row ])
                         else [])
                       rows_r)
                in
                if matches = [] then [ null_row schemas_r @ x ] else matches)
              rows_l
          in
          let right_part =
            List.concat
              (List.mapi
                 (fun i y ->
                   if Hashtbl.mem matched_r i then []
                   else [ y @ null_row schemas_l ])
                 rows_r)
          in
          (schemas_l @ schemas_r, left_part @ right_part))

and is_lateral = function
  | T_lateral _ -> true
  | T_join (_, l, r, _) -> is_lateral l || is_lateral r
  | _ -> false

and lateral_schemas env outer tr =
  (* schemas of the right side of a (possibly lateral) join: evaluate with
     an empty/partial env just for schema discovery *)
  match tr with
  | T_rel (name, alias) ->
      let r = find_relation env name in
      [ (Option.value alias ~default:name, Relation.schema r) ]
  | T_sub (q, a) | T_lateral (q, a) -> (
      (* schema discovery may fail on correlation; fall back to evaluating
         with NULL-extended rows is overkill — correlated columns do not
         affect the schema, so evaluate and catch *)
      try [ (a, Relation.schema (eval_set_query env outer q)) ]
      with Sql_error _ -> [ (a, schema_of_set_query q) ]
      )
  | T_join (_, l, r, _) -> lateral_schemas env outer l @ lateral_schemas env outer r

and schema_of_set_query q =
  match q with
  | Q_select s ->
      Schema.make (List.mapi item_name s.items)
  | Q_union (_, a, _) | Q_except (_, a, _) | Q_intersect (_, a, _) ->
      schema_of_set_query a

and null_row (schemas : (string * Schema.t) list) : row =
  List.map
    (fun (a, sch) ->
      (a, Tuple.make sch (Array.make (Schema.arity sch) V.Null)))
    schemas

(* ------------------------------------------------------------------ *)
(* SELECT                                                              *)
(* ------------------------------------------------------------------ *)

and has_aggregates s =
  let rec expr_has = function
    | E_agg _ | E_count_star -> true
    | E_binop (_, l, r) -> expr_has l || expr_has r
    | E_neg e -> expr_has e
    | _ -> false
  in
  List.exists (fun it -> expr_has it.item_expr) s.items
  || s.group_by <> [] || s.having <> None

and eval_select env (outer : row) s : Relation.t =
  (* FROM: comma list is lateral-aware left-to-right *)
  let rows =
    List.fold_left
      (fun acc tr ->
        List.concat_map
          (fun (partial : row) ->
            let _, rs = eval_table_ref env (partial @ outer) tr in
            List.map (fun r -> r @ partial) rs)
          acc)
      [ ([] : row) ]
      s.from
  in
  (* WHERE *)
  let rows =
    match s.where with
    | None -> rows
    | Some c ->
        List.filter (fun r -> eval_cond env (r @ outer) c = B3.True) rows
  in
  let schema = Schema.make (List.mapi item_name s.items) in
  (* ORDER BY keys are evaluated per result row, against the output columns
     first (aliases) and the source row as a fallback *)
  let order_keys = ref [] in
  let record_keys tp ctx =
    if s.order_by <> [] then
      let keys =
        List.map
          (fun (e, desc) ->
            let v =
              match e with
              | E_col (None, c) when Schema.mem schema c -> Tuple.get tp c
              | _ -> (
                  match ctx with
                  | `Row r -> eval_expr env r e
                  | `Group (rep, group) -> eval_gexpr env ~rep ~group e
                  | `None -> (
                      match e with
                      | E_col (_, c) when Schema.mem schema c -> Tuple.get tp c
                      | _ -> fail "ORDER BY expression not available after DISTINCT"))
            in
            (v, desc))
          s.order_by
      in
      order_keys := (Tuple.key tp, keys) :: !order_keys
  in
  let tuples =
    if has_aggregates s then begin
      let groups =
        if s.group_by = [] then
          [ ((match rows with [] -> None | r :: _ -> Some (r @ outer)),
             List.map (fun r -> r @ outer) rows) ]
        else begin
          let tbl = Hashtbl.create 16 in
          let order = ref [] in
          List.iter
            (fun r ->
              let kv =
                List.map
                  (fun (t, c) -> resolve_col (r @ outer) t c)
                  s.group_by
              in
              let k = String.concat "" (List.map V.canonical kv) in
              match Hashtbl.find_opt tbl k with
              | Some rs -> Hashtbl.replace tbl k (rs @ [ r @ outer ])
              | None ->
                  order := k :: !order;
                  Hashtbl.replace tbl k [ r @ outer ])
            rows;
          List.rev_map
            (fun k ->
              let g = Hashtbl.find tbl k in
              (Some (List.hd g), g))
            !order
        end
      in
      List.filter_map
        (fun (rep, group) ->
          let keep =
            match s.having with
            | None -> true
            | Some c -> eval_gcond env ~rep ~group c = B3.True
          in
          if keep then begin
            let tp =
              Tuple.make schema
                (Array.of_list
                   (List.map
                      (fun it -> eval_gexpr env ~rep ~group it.item_expr)
                      s.items))
            in
            record_keys tp (`Group (rep, group));
            Some tp
          end
          else None)
        groups
    end
    else
      List.map
        (fun r ->
          let tp =
            Tuple.make schema
              (Array.of_list
                 (List.map
                    (fun it -> eval_expr env (r @ outer) it.item_expr)
                    s.items))
          in
          record_keys tp (`Row (r @ outer));
          tp)
        rows
  in
  let rel = Relation.make schema tuples in
  let rel = if s.distinct then Relation.dedup rel else rel in
  let rel =
    if s.order_by = [] then rel
    else begin
      let key_of tp =
        match List.assoc_opt (Tuple.key tp) !order_keys with
        | Some ks -> ks
        | None -> List.map (fun (_, d) -> (V.Null, d)) s.order_by
      in
      let cmp t1 t2 =
        let rec go k1 k2 =
          match (k1, k2) with
          | [], [] -> 0
          | (v1, desc) :: r1, (v2, _) :: r2 ->
              let c = V.compare v1 v2 in
              let c = if desc then -c else c in
              if c <> 0 then c else go r1 r2
          | _ -> 0
        in
        go (key_of t1) (key_of t2)
      in
      Relation.make schema (List.stable_sort cmp (Relation.tuples rel))
    end
  in
  match s.limit with
  | None -> rel
  | Some n ->
      Relation.make schema
        (List.filteri (fun i _ -> i < n) (Relation.tuples rel))

and eval_set_query env (outer : row) q : Relation.t =
  match q with
  | Q_select s -> eval_select env outer s
  | Q_union (all, a, b) ->
      let ra = eval_set_query env outer a and rb = eval_set_query env outer b in
      let rb = align_schema ra rb in
      let u = Relation.union ra rb in
      if all then u else Relation.dedup u
  | Q_except (all, a, b) ->
      let ra = eval_set_query env outer a and rb = eval_set_query env outer b in
      let rb = align_schema ra rb in
      if all then Relation.minus ra rb
      else Relation.minus (Relation.dedup ra) (Relation.dedup rb)
  | Q_intersect (all, a, b) ->
      let ra = eval_set_query env outer a and rb = eval_set_query env outer b in
      let rb = align_schema ra rb in
      if all then Relation.intersect ra rb
      else Relation.dedup (Relation.intersect ra rb)

and align_schema ra rb =
  (* set operations align columns positionally, as SQL does *)
  let sa = Relation.schema ra and sb = Relation.schema rb in
  if Schema.equal sa sb then rb
  else if Schema.arity sa = Schema.arity sb then
    Relation.make sa
      (List.map (fun tp -> Tuple.rename_schema tp sa) (Relation.tuples rb))
  else fail "set operation arity mismatch"

(* ------------------------------------------------------------------ *)
(* Statements: CTEs, incl. WITH RECURSIVE                              *)
(* ------------------------------------------------------------------ *)

let apply_cte_cols cte rel =
  if cte.cte_cols = [] then rel
  else begin
    let sch = Relation.schema rel in
    if Schema.arity sch <> List.length cte.cte_cols then
      fail "CTE %S column list arity mismatch" cte.cte_name;
    let sch' = Schema.make cte.cte_cols in
    Relation.make sch'
      (List.map (fun tp -> Tuple.rename_schema tp sch') (Relation.tuples rel))
  end

let is_recursive_cte cte env =
  let rec q_refs q =
    match q with
    | Q_select s ->
        List.exists tr_refs s.from
        || Option.fold ~none:false ~some:cond_refs s.where
        || Option.fold ~none:false ~some:cond_refs s.having
        || List.exists (fun it -> expr_refs it.item_expr) s.items
    | Q_union (_, a, b) | Q_except (_, a, b) | Q_intersect (_, a, b) ->
        q_refs a || q_refs b
  and tr_refs = function
    | T_rel (n, _) -> n = cte.cte_name
    | T_sub (q, _) | T_lateral (q, _) -> q_refs q
    | T_join (_, l, r, on) ->
        tr_refs l || tr_refs r || Option.fold ~none:false ~some:cond_refs on
  and cond_refs = function
    | C_true -> false
    | C_cmp (_, l, r) -> expr_refs l || expr_refs r
    | C_and cs | C_or cs -> List.exists cond_refs cs
    | C_not c -> cond_refs c
    | C_exists q | C_in (_, q) -> q_refs q
    | C_is_null e | C_is_not_null e -> expr_refs e
    | C_like (e, _) -> expr_refs e
  and expr_refs = function
    | E_scalar_subquery q -> q_refs q
    | E_binop (_, l, r) -> expr_refs l || expr_refs r
    | E_neg e | E_agg (_, e) -> expr_refs e
    | _ -> false
  in
  ignore env;
  q_refs cte.cte_body

let eval_recursive_cte env cte =
  (* least fixed point: start from ∅, re-evaluate the whole body (the
     standard base-case/recursive-case UNION) until no change *)
  let schema_guess =
    apply_cte_cols cte (Relation.make (schema_of_set_query cte.cte_body) [])
  in
  let current = ref (Relation.dedup schema_guess) in
  let changed = ref true in
  let iters = ref 0 in
  while !changed do
    incr iters;
    if !iters > 100_000 then fail "recursive CTE did not converge";
    let env' = { env with ctes = (cte.cte_name, !current) :: env.ctes } in
    let next =
      Relation.dedup (apply_cte_cols cte (eval_set_query env' [] cte.cte_body))
    in
    if Relation.equal_set next !current then changed := false
    else current := next
  done;
  !current

let run ~db (st : statement) =
  let env =
    List.fold_left
      (fun env cte ->
        let rel =
          if st.with_recursive && is_recursive_cte cte env then
            eval_recursive_cte env cte
          else apply_cte_cols cte (eval_set_query env [] cte.cte_body)
        in
        { env with ctes = (cte.cte_name, rel) :: env.ctes })
      { db; ctes = [] } st.ctes
  in
  eval_set_query env [] st.body

let run_string ~db s = run ~db (Parse.statement_of_string s)
