open Ast
module A = Arc_core.Ast
module V = Arc_value.Value
module Aggregate = Arc_value.Aggregate

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

type ctx = {
  mutable schemas : (string * string list) list;  (* base relations + CTEs *)
  mutable fresh : int;
}

let fresh ctx prefix =
  ctx.fresh <- ctx.fresh + 1;
  Printf.sprintf "%s%d" prefix ctx.fresh

(* visible aliases with their attributes, innermost first *)
type scope = (string * string list) list

let alias_attrs (scope : scope) alias = List.assoc_opt alias scope

let resolve_unqual (scope : scope) col =
  match
    List.find_opt (fun (_, attrs) -> List.mem col attrs) scope
  with
  | Some (alias, _) -> alias
  | None -> unsupported "cannot resolve unqualified column %S" col

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(* [extras] accumulates lateral bindings introduced by scalar subqueries
   (Section 2.12: every single-valued head aggregate becomes a lateral
   nested collection). *)
let rec tr_expr ctx (scope : scope) extras e : A.term =
  match e with
  | E_const v -> A.Const v
  | E_col (Some t, c) -> A.Attr (t, c)
  | E_col (None, c) -> A.Attr (resolve_unqual scope c, c)
  | E_binop (op, l, r) ->
      let op' =
        match op with
        | B_add -> A.Add
        | B_sub -> A.Sub
        | B_mul -> A.Mul
        | B_div -> A.Div
        | B_mod -> A.Mod
      in
      A.Scalar (op', [ tr_expr ctx scope extras l; tr_expr ctx scope extras r ])
  | E_neg e -> A.Scalar (A.Neg, [ tr_expr ctx scope extras e ])
  | E_agg (k, e) -> A.Agg (k, tr_expr ctx scope extras e)
  | E_count_star -> A.Agg (Aggregate.Count, A.Const (V.Int 1))
  | E_scalar_subquery q -> tr_scalar_subquery ctx scope extras q

and tr_scalar_subquery ctx scope extras q =
  match q with
  | Q_select s when s.group_by = [] && s.having = None -> (
      match s.items with
      | [ it ] when select_item_has_agg it ->
          (* single-valued aggregate: lateral nested collection with γ∅ *)
          let head = fresh ctx "X" in
          let attr = item_name 0 it in
          let inner_extras = ref [] in
          let bindings, jtree, conds, inner_scope =
            tr_from ctx scope s.from
          in
          let where =
            match s.where with
            | None -> []
            | Some c -> [ tr_cond ctx inner_scope ~extras:inner_extras c ]
          in
          let agg_term = tr_expr ctx inner_scope inner_extras it.item_expr in
          let body =
            A.And (conds @ where @ [ A.Pred (A.Cmp (A.Eq, A.Attr (head, attr), agg_term)) ])
          in
          let inner : A.collection =
            {
              head = { head_name = head; head_attrs = [ attr ] };
              body =
                A.Exists
                  {
                    bindings = bindings @ !inner_extras;
                    grouping = Some [];
                    join = jtree;
                    body;
                  };
            }
          in
          let var = fresh ctx "x" in
          extras := !extras @ [ { A.var; source = A.Nested inner } ];
          A.Attr (var, attr)
      | _ ->
          unsupported
            "scalar subqueries without a single aggregate item cannot be \
             translated faithfully (empty input would need NULL)")
  | _ -> unsupported "scalar subquery with set operations or grouping"

and select_item_has_agg it =
  let rec go = function
    | E_agg _ | E_count_star -> true
    | E_binop (_, l, r) -> go l || go r
    | E_neg e -> go e
    | _ -> false
  in
  go it.item_expr

(* ------------------------------------------------------------------ *)
(* FROM                                                                *)
(* ------------------------------------------------------------------ *)

(* Translates a FROM list into bindings, an optional join annotation (only
   when outer joins occur), the ON conditions (as body conjuncts; the engine
   re-attaches them to the annotation nodes), and the extended scope. *)
and tr_from ctx (scope : scope) (from : table_ref list) :
    A.binding list * A.join_tree option * A.formula list * scope =
  let has_outer tr =
    let rec go = function
      | T_join ((J_left | J_full), _, _, _) -> true
      | T_join (_, l, r, _) -> go l || go r
      | _ -> false
    in
    go tr
  in
  let any_outer = List.exists has_outer from in
  let bindings = ref [] in
  let conds = ref [] in
  let scope_ref = ref scope in
  let rec item tr : A.join_tree =
    match tr with
    | T_rel (name, alias) ->
        let a = Option.value alias ~default:name in
        let attrs =
          match List.assoc_opt name ctx.schemas with
          | Some attrs -> attrs
          | None -> []
        in
        bindings := !bindings @ [ { A.var = a; source = A.Base name } ];
        scope_ref := (a, attrs) :: !scope_ref;
        A.J_var a
    | T_sub (q, a) | T_lateral (q, a) ->
        let c = tr_set_query_inner ctx !scope_ref q in
        bindings := !bindings @ [ { A.var = a; source = A.Nested c } ];
        scope_ref := (a, c.A.head.head_attrs) :: !scope_ref;
        A.J_var a
    | T_join (kind, l, r, on) ->
        let jl = item l in
        let jr = item r in
        let on_conjs =
          match on with
          | Some c -> A.conjuncts (tr_cond ctx !scope_ref c)
          | None -> []
        in
        conds := !conds @ on_conjs;
        let flatten = function A.J_inner l -> l | j -> [ j ] in
        (match kind with
        | J_inner | J_cross -> A.J_inner (flatten jl @ flatten jr)
        | J_left | J_full ->
            (* An ON conjunct referencing only the preserved side would be
               re-attached by the engine as a filter on that operand, which
               changes the semantics. The paper's Fig 12 solution: when the
               conjunct compares against a constant, put a literal leaf on
               the opposite side so the predicate spans the join. *)
            let lv = A.join_tree_vars jl and rv = A.join_tree_vars jr in
            let conj_vars f =
              match f with
              | A.Pred p ->
                  List.concat_map
                    (fun t -> List.map fst (A.term_vars t))
                    (A.pred_terms p)
                  |> List.filter (fun v -> List.mem v lv || List.mem v rv)
              | _ -> []
            in
            let const_of = function
              | A.Pred (A.Cmp (_, _, A.Const c)) | A.Pred (A.Cmp (_, A.Const c, _))
                -> Some c
              | _ -> None
            in
            let lits_right = ref [] and lits_left = ref [] in
            List.iter
              (fun f ->
                let vs = conj_vars f in
                let only side = vs <> [] && List.for_all (fun v -> List.mem v side) vs in
                let preserved_only =
                  match kind with
                  | J_left -> only lv
                  | J_full -> only lv || only rv
                  | _ -> false
                in
                if preserved_only then
                  match const_of f with
                  | Some c ->
                      if only lv then lits_right := !lits_right @ [ A.J_lit c ]
                      else lits_left := !lits_left @ [ A.J_lit c ]
                  | None ->
                      unsupported
                        "outer-join ON condition on the preserved side \
                         without a constant comparand")
              on_conjs;
            let wrap lits j =
              if lits = [] then j else A.J_inner (lits @ flatten j)
            in
            let jl = wrap !lits_left jl and jr = wrap !lits_right jr in
            if kind = J_left then A.J_left (jl, jr) else A.J_full (jl, jr))
  in
  let trees = List.map item from in
  let jtree =
    if not any_outer then None
    else
      match trees with
      | [ t ] -> Some t
      | ts -> Some (A.J_inner (List.concat_map (function A.J_inner l -> l | j -> [ j ]) ts))
  in
  (!bindings, jtree, !conds, !scope_ref)

(* ------------------------------------------------------------------ *)
(* Conditions                                                          *)
(* ------------------------------------------------------------------ *)

and tr_cond ctx (scope : scope) ?(extras = ref []) c : A.formula =
  match c with
  | C_true -> A.True
  | C_cmp (op, l, r) ->
      let op' =
        match op with
        | Ceq -> A.Eq
        | Cneq -> A.Neq
        | Clt -> A.Lt
        | Cleq -> A.Leq
        | Cgt -> A.Gt
        | Cgeq -> A.Geq
      in
      A.Pred
        (A.Cmp (op', tr_expr ctx scope extras l, tr_expr ctx scope extras r))
  | C_and cs -> A.And (List.map (tr_cond ctx scope ~extras) cs)
  | C_or cs -> A.Or (List.map (tr_cond ctx scope ~extras) cs)
  | C_not (C_in (e, q)) ->
      (* Section 2.10 / Eq 17: NOT IN becomes NOT EXISTS with explicit
         NULL checks, replicating SQL's three-valued behavior *)
      let e' = tr_expr ctx scope extras e in
      A.Not (tr_membership ctx scope e' q ~null_checks:true)
  | C_not c -> A.Not (tr_cond ctx scope ~extras c)
  | C_exists q -> tr_exists ctx scope q
  | C_in (e, q) ->
      let e' = tr_expr ctx scope extras e in
      tr_membership ctx scope e' q ~null_checks:false
  | C_is_null e -> A.Pred (A.Is_null (tr_expr ctx scope extras e))
  | C_is_not_null e -> A.Pred (A.Not_null (tr_expr ctx scope extras e))
  | C_like (e, p) -> A.Pred (A.Like (tr_expr ctx scope extras e, p))

and tr_exists ctx scope q : A.formula =
  match q with
  | Q_select s
    when s.group_by = [] && s.having = None && not (select_has_aggs s) ->
      (* inline the subquery as a quantifier scope; the SELECT list of an
         EXISTS subquery is irrelevant *)
      let extras = ref [] in
      let bindings, jtree, conds, inner_scope = tr_from ctx scope s.from in
      let where =
        match s.where with
        | None -> []
        | Some c -> [ tr_cond ctx inner_scope ~extras c ]
      in
      A.Exists
        {
          bindings = bindings @ !extras;
          grouping = None;
          join = jtree;
          body = A.And (conds @ where);
        }
  | _ ->
      let c = tr_set_query_inner ctx scope q in
      let var = fresh ctx "x" in
      A.Exists
        {
          bindings = [ { A.var; source = A.Nested c } ];
          grouping = None;
          join = None;
          body = A.True;
        }

and tr_membership ctx scope e' q ~null_checks : A.formula =
  let mk_eq item_term =
    if null_checks then
      A.Or
        [
          A.Pred (A.Cmp (A.Eq, item_term, e'));
          A.Pred (A.Is_null item_term);
          A.Pred (A.Is_null e');
        ]
    else A.Pred (A.Cmp (A.Eq, item_term, e'))
  in
  match q with
  | Q_select s
    when s.group_by = [] && s.having = None
         && (not (select_has_aggs s))
         && List.length s.items = 1 ->
      let extras = ref [] in
      let bindings, jtree, conds, inner_scope = tr_from ctx scope s.from in
      let where =
        match s.where with
        | None -> []
        | Some c -> [ tr_cond ctx inner_scope ~extras c ]
      in
      let item_term =
        tr_expr ctx inner_scope extras (List.hd s.items).item_expr
      in
      A.Exists
        {
          bindings = bindings @ !extras;
          grouping = None;
          join = jtree;
          body = A.And (conds @ where @ [ mk_eq item_term ]);
        }
  | _ ->
      let c = tr_set_query_inner ctx scope q in
      (match c.A.head.head_attrs with
      | [ attr ] ->
          let var = fresh ctx "x" in
          A.Exists
            {
              bindings = [ { A.var; source = A.Nested c } ];
              grouping = None;
              join = None;
              body = mk_eq (A.Attr (var, attr));
            }
      | _ -> unsupported "IN subquery must have one output column")

and select_has_aggs s =
  List.exists select_item_has_agg s.items

(* ------------------------------------------------------------------ *)
(* SELECT                                                              *)
(* ------------------------------------------------------------------ *)

and dedup_wrap ctx (c : A.collection) : A.collection =
  (* Section 2.7: DISTINCT = grouping on all projected attributes *)
  let var = fresh ctx "x" in
  let attrs = c.A.head.head_attrs in
  let head = c.A.head.head_name ^ "d" in
  {
    head = { head_name = head; head_attrs = attrs };
    body =
      A.Exists
        {
          bindings = [ { A.var; source = A.Nested c } ];
          grouping = Some (List.map (fun a -> (var, a)) attrs);
          join = None;
          body =
            A.And
              (List.map
                 (fun a -> A.Pred (A.Cmp (A.Eq, A.Attr (head, a), A.Attr (var, a))))
                 attrs);
        };
  }

and tr_select ctx (scope : scope) ~head_name s : A.collection =
  if s.order_by <> [] || s.limit <> None then
    unsupported
      "ORDER BY / LIMIT: ordered output is outside ARC's relational core \
       (an open extension, paper Section 5)";
  let extras = ref [] in
  let bindings, jtree, conds, inner_scope = tr_from ctx scope s.from in
  let where =
    match s.where with
    | None -> []
    | Some c -> [ tr_cond ctx inner_scope ~extras c ]
  in
  let head_attrs = List.mapi item_name s.items in
  let grouped = has_group_semantics s in
  let grouping =
    if not grouped then None
    else
      Some
        (List.map
           (fun (t, c) ->
             let alias =
               match t with Some t -> t | None -> resolve_unqual inner_scope c
             in
             (alias, c))
           s.group_by)
  in
  let assignments =
    List.mapi
      (fun i it ->
        A.Pred
          (A.Cmp
             ( A.Eq,
               A.Attr (head_name, item_name i it),
               tr_expr ctx inner_scope extras it.item_expr )))
      s.items
  in
  let having =
    match s.having with
    | None -> []
    | Some c -> [ tr_cond ctx inner_scope ~extras c ]
  in
  let body = A.And (conds @ where @ assignments @ having) in
  let c : A.collection =
    {
      head = { head_name; head_attrs };
      body =
        A.Exists
          { bindings = bindings @ !extras; grouping; join = jtree; body };
    }
  in
  if s.distinct then dedup_wrap ctx c else c

and has_group_semantics s =
  s.group_by <> [] || s.having <> None || select_has_aggs s

(* rename a collection's head (and all references to it) *)
and rename_head (c : A.collection) new_name new_attrs : A.collection =
  let old = c.A.head.head_name in
  let amap = List.combine c.A.head.head_attrs new_attrs in
  let rec rterm = function
    | A.Attr (v, a) when v = old ->
        A.Attr (new_name, Option.value (List.assoc_opt a amap) ~default:a)
    | A.Scalar (op, ts) -> A.Scalar (op, List.map rterm ts)
    | A.Agg (k, t) -> A.Agg (k, rterm t)
    | t -> t
  in
  let rpred = function
    | A.Cmp (op, l, r) -> A.Cmp (op, rterm l, rterm r)
    | A.Is_null t -> A.Is_null (rterm t)
    | A.Not_null t -> A.Not_null (rterm t)
    | A.Like (t, p) -> A.Like (rterm t, p)
  in
  let rec rformula = function
    | A.True -> A.True
    | A.Pred p -> A.Pred (rpred p)
    | A.And fs -> A.And (List.map rformula fs)
    | A.Or fs -> A.Or (List.map rformula fs)
    | A.Not f -> A.Not (rformula f)
    | A.Exists sc -> A.Exists { sc with body = rformula sc.body }
    (* nested collections never reference outer heads *)
  in
  {
    head = { head_name = new_name; head_attrs = new_attrs };
    body = rformula c.A.body;
  }

and tr_set_query_inner ?(dedup = true) ctx scope q : A.collection =
  match q with
  | Q_select s -> tr_select ctx scope ~head_name:(fresh ctx "X") s
  | Q_union (all, a, b) ->
      let ca = tr_set_query_inner ctx scope a in
      let cb = tr_set_query_inner ctx scope b in
      let cb =
        rename_head cb ca.A.head.head_name ca.A.head.head_attrs
      in
      let merged : A.collection =
        {
          head = ca.A.head;
          body = A.Or (A.disjuncts ca.A.body @ A.disjuncts cb.A.body);
        }
      in
      if all || not dedup then merged else dedup_wrap ctx merged
  | Q_except (false, a, b) ->
      let ca = tr_set_query_inner ctx scope a in
      let cb = tr_set_query_inner ctx scope b in
      let attrs = ca.A.head.head_attrs in
      let battrs = cb.A.head.head_attrs in
      if List.length attrs <> List.length battrs then
        unsupported "EXCEPT arity mismatch";
      let head = fresh ctx "X" in
      let x = fresh ctx "x" and y = fresh ctx "y" in
      let null_eq (ya, xa) =
        A.Or
          [
            A.Pred (A.Cmp (A.Eq, A.Attr (y, ya), A.Attr (x, xa)));
            A.And
              [
                A.Pred (A.Is_null (A.Attr (y, ya)));
                A.Pred (A.Is_null (A.Attr (x, xa)));
              ];
          ]
      in
      dedup_wrap ctx
        {
          head = { head_name = head; head_attrs = attrs };
          body =
            A.Exists
              {
                bindings = [ { A.var = x; source = A.Nested ca } ];
                grouping = None;
                join = None;
                body =
                  A.And
                    (List.map
                       (fun a ->
                         A.Pred (A.Cmp (A.Eq, A.Attr (head, a), A.Attr (x, a))))
                       attrs
                    @ [
                        A.Not
                          (A.Exists
                             {
                               bindings = [ { A.var = y; source = A.Nested cb } ];
                               grouping = None;
                               join = None;
                               body =
                                 A.And
                                   (List.map null_eq (List.combine battrs attrs));
                             });
                      ]);
              };
        }
  | Q_intersect (false, a, b) ->
      let ca = tr_set_query_inner ctx scope a in
      let cb = tr_set_query_inner ctx scope b in
      let attrs = ca.A.head.head_attrs in
      let battrs = cb.A.head.head_attrs in
      if List.length attrs <> List.length battrs then
        unsupported "INTERSECT arity mismatch";
      let head = fresh ctx "X" in
      let x = fresh ctx "x" and y = fresh ctx "y" in
      let null_eq (ya, xa) =
        A.Or
          [
            A.Pred (A.Cmp (A.Eq, A.Attr (y, ya), A.Attr (x, xa)));
            A.And
              [
                A.Pred (A.Is_null (A.Attr (y, ya)));
                A.Pred (A.Is_null (A.Attr (x, xa)));
              ];
          ]
      in
      dedup_wrap ctx
        {
          head = { head_name = head; head_attrs = attrs };
          body =
            A.Exists
              {
                bindings = [ { A.var = x; source = A.Nested ca } ];
                grouping = None;
                join = None;
                body =
                  A.And
                    (List.map
                       (fun a ->
                         A.Pred (A.Cmp (A.Eq, A.Attr (head, a), A.Attr (x, a))))
                       attrs
                    @ [
                        A.Exists
                          {
                            bindings = [ { A.var = y; source = A.Nested cb } ];
                            grouping = None;
                            join = None;
                            body =
                              A.And (List.map null_eq (List.combine battrs attrs));
                          };
                      ]);
              };
        }
  | Q_except (true, _, _) | Q_intersect (true, _, _) ->
      unsupported "EXCEPT ALL / INTERSECT ALL"

(* Alpha-rename every binding variable called [bad] (SQL aliases default to
   the table name, which may collide with the head name a CTE or the main
   query is about to receive). *)
let avoid_var ctx bad (c : A.collection) : A.collection =
  let subst map v = Option.value (List.assoc_opt v map) ~default:v in
  let rec r_term map = function
    | A.Const c -> A.Const c
    | A.Attr (v, a) -> A.Attr (subst map v, a)
    | A.Scalar (op, ts) -> A.Scalar (op, List.map (r_term map) ts)
    | A.Agg (k, t) -> A.Agg (k, r_term map t)
  in
  let r_pred map = function
    | A.Cmp (op, l, r) -> A.Cmp (op, r_term map l, r_term map r)
    | A.Is_null t -> A.Is_null (r_term map t)
    | A.Not_null t -> A.Not_null (r_term map t)
    | A.Like (t, p) -> A.Like (r_term map t, p)
  in
  let rec r_join map = function
    | A.J_var v -> A.J_var (subst map v)
    | A.J_lit c -> A.J_lit c
    | A.J_inner l -> A.J_inner (List.map (r_join map) l)
    | A.J_left (a, b) -> A.J_left (r_join map a, r_join map b)
    | A.J_full (a, b) -> A.J_full (r_join map a, r_join map b)
  in
  let rec r_formula map = function
    | A.True -> A.True
    | A.Pred p -> A.Pred (r_pred map p)
    | A.And fs -> A.And (List.map (r_formula map) fs)
    | A.Or fs -> A.Or (List.map (r_formula map) fs)
    | A.Not f -> A.Not (r_formula map f)
    | A.Exists s ->
        let map', bindings =
          List.fold_left
            (fun (m, bs) (b : A.binding) ->
              let source =
                match b.A.source with
                | A.Base n -> A.Base n
                | A.Nested c -> A.Nested (r_coll m c)
              in
              if b.A.var = bad then
                let v' = fresh ctx (bad ^ "_") in
                ((bad, v') :: m, bs @ [ { A.var = v'; source } ])
              else (m, bs @ [ { b with A.source = source } ]))
            (map, []) s.A.bindings
        in
        A.Exists
          {
            bindings;
            grouping =
              Option.map (List.map (fun (v, a) -> (subst map' v, a)))
                s.A.grouping;
            join = Option.map (r_join map') s.A.join;
            body = r_formula map' s.A.body;
          }
  and r_coll map c = { c with A.body = r_formula map c.A.body } in
  r_coll [] c

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let set_query ?(schemas = []) q =
  let ctx = { schemas; fresh = 0 } in
  let c = tr_set_query_inner ctx [] q in
  rename_head (avoid_var ctx "Q" c) "Q" c.A.head.head_attrs

let statement ?(schemas = []) (st : statement) : A.program =
  let ctx = { schemas; fresh = 0 } in
  let defs =
    List.map
      (fun cte ->
        (* recursion computes a least fixed point under set semantics, so
           the UNION-dedup wrapper is redundant (and would make the
           dependency look nonmonotone) *)
        let c = tr_set_query_inner ~dedup:false ctx [] cte.cte_body in
        let attrs =
          if cte.cte_cols = [] then c.A.head.head_attrs else cte.cte_cols
        in
        let c = rename_head (avoid_var ctx cte.cte_name c) cte.cte_name attrs in
        ctx.schemas <- (cte.cte_name, attrs) :: ctx.schemas;
        { A.def_name = cte.cte_name; def_body = c })
      st.ctes
  in
  let main = tr_set_query_inner ctx [] st.body in
  let main = rename_head (avoid_var ctx "Q" main) "Q" main.A.head.head_attrs in
  { A.defs; main = A.Coll main }
