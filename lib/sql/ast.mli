(** Abstract syntax for the SQL subset used throughout the paper's figures:
    SELECT [DISTINCT] with arithmetic and aggregates, FROM with comma lists,
    INNER/LEFT/FULL/CROSS and LATERAL joins, WHERE with (NOT) EXISTS,
    (NOT) IN, IS [NOT] NULL and LIKE, GROUP BY / HAVING, scalar subqueries,
    UNION [ALL] / EXCEPT / INTERSECT, and WITH [RECURSIVE] CTEs.

    This is deliberately a {e syntax} tree — e.g. joins live inside FROM
    items, mirroring SQL's concrete structure — so that the contrast with the
    semantics-first ALT (paper, Section 2.2, the SQLGlot discussion) can be
    demonstrated on real objects. *)

type expr =
  | E_const of Arc_value.Value.t
  | E_col of string option * string  (** [[table.]column] *)
  | E_binop of binop * expr * expr
  | E_neg of expr
  | E_agg of Arc_value.Aggregate.kind * expr
  | E_count_star
  | E_scalar_subquery of set_query

and binop = B_add | B_sub | B_mul | B_div | B_mod

and cond =
  | C_true
  | C_cmp of cmp * expr * expr
  | C_and of cond list
  | C_or of cond list
  | C_not of cond
  | C_exists of set_query
  | C_in of expr * set_query
  | C_is_null of expr
  | C_is_not_null of expr
  | C_like of expr * string

and cmp = Ceq | Cneq | Clt | Cleq | Cgt | Cgeq

and table_ref =
  | T_rel of string * string option  (** [R [AS] r] *)
  | T_sub of set_query * string  (** [(SELECT …) AS x] *)
  | T_join of join_kind * table_ref * table_ref * cond option  (** ON *)
  | T_lateral of set_query * string  (** [JOIN LATERAL (…) AS x ON true] *)

and join_kind = J_inner | J_left | J_full | J_cross

and select_item = { item_expr : expr; item_alias : string option }

and select = {
  distinct : bool;
  items : select_item list;
  from : table_ref list;  (** comma-separated FROM list; [] = no FROM *)
  where : cond option;
  group_by : (string option * string) list;
  having : cond option;
  order_by : (expr * bool) list;
      (** sort keys, [true] = descending. The paper leaves ordered output to
          future work for ARC itself (Section 5); the SQL substrate supports
          it, and SQL→ARC reports it as unsupported. *)
  limit : int option;
}

and set_query =
  | Q_select of select
  | Q_union of bool * set_query * set_query  (** [true] = UNION ALL *)
  | Q_except of bool * set_query * set_query
  | Q_intersect of bool * set_query * set_query

type cte = { cte_name : string; cte_cols : string list; cte_body : set_query }

type statement = {
  with_recursive : bool;
  ctes : cte list;
  body : set_query;
}

val statement : ?recursive:bool -> ?ctes:cte list -> set_query -> statement

val select :
  ?distinct:bool ->
  ?where:cond ->
  ?group_by:(string option * string) list ->
  ?having:cond ->
  ?order_by:(expr * bool) list ->
  ?limit:int ->
  items:select_item list ->
  from:table_ref list ->
  unit ->
  select

val item : ?alias:string -> expr -> select_item
val col : ?table:string -> string -> expr

val equal_statement : statement -> statement -> bool
val equal_set_query : set_query -> set_query -> bool

val item_name : int -> select_item -> string
(** Output column name of the [i]-th item: its alias, else its column name,
    else [col<i>]. *)

val cmp_to_string : cmp -> string
