module V = Arc_value.Value

type token =
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | STAR
  | IDENT of string
  | KW of string
  | NUMBER of V.t
  | STRING of string
  | OP of string
  | EOF

exception Lex_error of string * int

let keywords =
  [
    "select"; "distinct"; "from"; "where"; "group"; "by"; "having"; "as";
    "on"; "join"; "left"; "right"; "full"; "cross"; "inner"; "outer";
    "lateral"; "exists"; "in"; "is"; "not"; "null"; "like"; "and"; "or";
    "union"; "all"; "except"; "intersect"; "with"; "recursive"; "true";
    "false"; "into"; "order"; "asc"; "desc"; "limit";
  ]

let tokenize input =
  let n = String.length input in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let pos = ref 0 in
  let peek i = if !pos + i < n then Some input.[!pos + i] else None in
  while !pos < n do
    let c = input.[!pos] in
    match c with
    | ' ' | '\t' | '\n' | '\r' -> incr pos
    | '-' when peek 1 = Some '-' ->
        (* line comment *)
        while !pos < n && input.[!pos] <> '\n' do
          incr pos
        done
    | '(' ->
        emit LPAREN;
        incr pos
    | ')' ->
        emit RPAREN;
        incr pos
    | ',' ->
        emit COMMA;
        incr pos
    | '.' ->
        emit DOT;
        incr pos
    | '*' ->
        emit STAR;
        incr pos
    | '=' ->
        emit (OP "=");
        incr pos
    | '<' ->
        if peek 1 = Some '=' then (
          emit (OP "<=");
          pos := !pos + 2)
        else if peek 1 = Some '>' then (
          emit (OP "<>");
          pos := !pos + 2)
        else (
          emit (OP "<");
          incr pos)
    | '>' ->
        if peek 1 = Some '=' then (
          emit (OP ">=");
          pos := !pos + 2)
        else (
          emit (OP ">");
          incr pos)
    | '!' when peek 1 = Some '=' ->
        emit (OP "<>");
        pos := !pos + 2
    | '+' | '-' | '/' | '%' ->
        emit (OP (String.make 1 c));
        incr pos
    | '\'' ->
        (* embedded quotes double, SQL-style: 'it''s' *)
        let buf = Buffer.create 16 in
        let i = ref (!pos + 1) in
        let fin = ref false in
        while not !fin do
          if !i >= n then raise (Lex_error ("unterminated string", !pos))
          else if input.[!i] <> '\'' then (
            Buffer.add_char buf input.[!i];
            incr i)
          else if !i + 1 < n && input.[!i + 1] = '\'' then (
            Buffer.add_char buf '\'';
            i := !i + 2)
          else (
            fin := true;
            incr i)
        done;
        emit (STRING (Buffer.contents buf));
        pos := !i
    | '"' ->
        (* embedded double quotes double: "a""b" *)
        let buf = Buffer.create 16 in
        let i = ref (!pos + 1) in
        let fin = ref false in
        while not !fin do
          if !i >= n then
            raise (Lex_error ("unterminated quoted identifier", !pos))
          else if input.[!i] <> '"' then (
            Buffer.add_char buf input.[!i];
            incr i)
          else if !i + 1 < n && input.[!i + 1] = '"' then (
            Buffer.add_char buf '"';
            i := !i + 2)
          else (
            fin := true;
            incr i)
        done;
        emit (IDENT (Buffer.contents buf));
        pos := !i
    | '0' .. '9' ->
        let start = !pos in
        let scan_digits () =
          while
            !pos < n && match input.[!pos] with '0' .. '9' -> true | _ -> false
          do
            incr pos
          done
        in
        scan_digits ();
        let is_float = ref false in
        if
          !pos + 1 < n
          && input.[!pos] = '.'
          && match input.[!pos + 1] with '0' .. '9' -> true | _ -> false
        then begin
          is_float := true;
          incr pos;
          scan_digits ()
        end;
        (* exponent: e/E, optional sign, mandatory digits *)
        (match (peek 0, peek 1, peek 2) with
        | Some ('e' | 'E'), Some '0' .. '9', _ ->
            is_float := true;
            incr pos;
            scan_digits ()
        | Some ('e' | 'E'), Some ('+' | '-'), Some ('0' .. '9') ->
            is_float := true;
            pos := !pos + 2;
            scan_digits ()
        | _ -> ());
        if !is_float then begin
          let lit = String.sub input start (!pos - start) in
          match float_of_string_opt lit with
          | Some f -> emit (NUMBER (V.Float f))
          | None ->
              raise
                (Lex_error
                   (Printf.sprintf "invalid numeric literal %S" lit, start))
        end
        else
          let lit = String.sub input start (!pos - start) in
          (match int_of_string_opt lit with
          | Some i -> emit (NUMBER (V.Int i))
          | None ->
              raise
                (Lex_error
                   ( Printf.sprintf "integer literal %S out of range" lit,
                     start )))
    | 'a' .. 'z' | 'A' .. 'Z' | '_' | '$' ->
        let start = !pos in
        while
          !pos < n
          && (match input.[!pos] with
             | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> true
             | _ -> false)
        do
          incr pos
        done;
        let word = String.sub input start (!pos - start) in
        let lower = String.lowercase_ascii word in
        if List.mem lower keywords then emit (KW lower) else emit (IDENT word)
    | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, !pos))
  done;
  List.rev (EOF :: !toks)

let token_to_string = function
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | DOT -> "."
  | STAR -> "*"
  | IDENT s -> "ident " ^ s
  | KW s -> s
  | NUMBER v -> "number " ^ V.to_string v
  | STRING s -> "string '" ^ s ^ "'"
  | OP s -> s
  | EOF -> "<eof>"
