(** ARC → SQL rendering (the paper's Section 5 "SQL↔ARC translator",
    reverse direction).

    Scopes become SELECT blocks; base bindings become FROM items; nested
    collections become derived tables or LATERAL joins (correlation decides);
    join annotations become JOIN syntax with ON conditions re-attached at
    their annotation node (literal leaves fold back into ON constants,
    Fig 12); grouping operators become GROUP BY with aggregate comparisons in
    HAVING; negated scopes become NOT EXISTS; disjunction becomes UNION;
    definitions become CTEs (WITH RECURSIVE when self-referential); Boolean
    sentences become the paper's unary-relation workaround ([SELECT 1 WHERE
    …], Fig 9).

    The collection convention decides deduplication: under [Set] every
    SELECT is DISTINCT and unions deduplicate; under [Bag] they do not.

    Raises {!Unsupported} for queries outside the renderable fragment
    (assignment predicates below the top conjunct level, abstract
    definitions, γ∅ without aggregates). *)

exception Unsupported of string

val statement :
  ?conv:Arc_value.Conventions.t ->
  ?schemas:(string * string list) list ->
  Arc_core.Ast.program ->
  Ast.statement
(** [schemas] maps base-relation names to their attribute lists. It is
    only consulted under [Set] collection conventions when a grouping
    scope ranges over a base relation: there the inputs are semantically
    sets, aggregates observe multiplicity, and the source must be
    rendered as a [SELECT DISTINCT …] derived table — impossible without
    knowing the columns. Such queries raise {!Unsupported} when the
    schema is absent. Definitions contribute their head attributes
    automatically. *)

val collection :
  ?conv:Arc_value.Conventions.t ->
  ?schemas:(string * string list) list ->
  Arc_core.Ast.collection ->
  Ast.set_query
