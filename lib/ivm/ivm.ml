open Arc_core.Ast
module V = Arc_value.Value
module B3 = Arc_value.Bool3
module Conventions = Arc_value.Conventions
module Relation = Arc_relation.Relation
module Tuple = Arc_relation.Tuple
module Schema = Arc_relation.Schema
module Database = Arc_relation.Database
module Depend = Arc_core.Depend
module Ir = Arc_plan.Ir
module Eval = Arc_engine.Eval
module Exec = Arc_engine.Exec
module I = Eval.Internal
module Gov = Arc_guard.Gov
module Metrics = Arc_obs.Metrics

exception Ivm_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Ivm_error m)) fmt

(* ------------------------------------------------------------------ *)
(* Reserved working relations                                          *)
(* ------------------------------------------------------------------ *)

(* Registered in the per-batch context's IDB under the reserved "__ivm__"
   namespace (Analysis rejects user relations there). Counting strata
   read old/new/pos/neg versions of changed relations; DRed strata use a
   disjoint set so set-level and bag-level views never collide. *)
let nm_old r = "__ivm__old__" ^ r
let nm_new r = "__ivm__new__" ^ r
let nm_pos r = "__ivm__pos__" ^ r
let nm_neg r = "__ivm__neg__" ^ r
let nm_orig r = "__ivm__orig__" ^ r
let nm_mid r = "__ivm__mid__" ^ r
let nm_cur r = "__ivm__cur__" ^ r
let nm_front r = "__ivm__front__" ^ r
let nm_rnew r = "__ivm__rnew__" ^ r
let nm_rpos r = "__ivm__rpos__" ^ r

(* ------------------------------------------------------------------ *)
(* Eligibility: the multilinear pipeline core                          *)
(* ------------------------------------------------------------------ *)

let no_rel_deps f = Depend.formula_deps ~neg:false ~grouped:false [] f = []

(* [None] when the pipeline is safe to differentiate by scan
   substitution; [Some reason] names the first offending node class (the
   fallback matrix in docs/ivm.md). Semi/anti joins and laterals are not
   multilinear in their inputs; subqueries/resolve hide references the
   substitution cannot reach. *)
let rec pipeline_blocker (t : Ir.t) : string option =
  match t with
  | Ir.One -> None
  | Ir.Scan { filters; _ } ->
      if List.for_all (fun p -> no_rel_deps (Pred p)) filters then None
      else Some "scan filter references a relation"
  | Ir.Product { left; right } | Ir.Hash_join { left; right; _ } -> (
      match pipeline_blocker left with
      | Some _ as b -> b
      | None -> pipeline_blocker right)
  | Ir.Filter { input; _ } | Ir.Prune { input; _ } -> pipeline_blocker input
  | Ir.Residual { input; conjs } ->
      if List.for_all no_rel_deps conjs then pipeline_blocker input
      else Some "residual references a relation"
  | Ir.Semi { anti; _ } -> Some (if anti then "anti_join" else "semi_join")
  | Ir.Lateral _ -> Some "lateral"
  | Ir.Subquery _ -> Some "subquery"
  | Ir.Resolve _ -> Some "resolve"
  (* A branch union is affine, not linear, in each branch's occurrences
     (zeroing one branch leaves the others' output), so per-occurrence
     scan substitution would over-count. *)
  | Ir.Append _ -> Some "append"

let disjunct_blocker = function
  | Ir.Project { input; _ } -> pipeline_blocker input
  | Ir.Aggregate { input; post; _ } -> (
      match pipeline_blocker input with
      | Some _ as b -> b
      | None ->
          if List.for_all no_rel_deps post then None
          else Some "aggregate post-condition references a relation")

(* ------------------------------------------------------------------ *)
(* Maintenance state                                                   *)
(* ------------------------------------------------------------------ *)

type disj_state =
  | DProj of { assigns : (attr * term) list; input : Ir.t }
  | DAgg of {
      input : Ir.t;
      keys : grouping;
      scope_vars : var list;
      post : formula list;
      assigns : (attr * term) list;
      groups : (string, I.benv list) Hashtbl.t;  (* gkey -> support rows *)
      outs : (string, Tuple.t list) Hashtbl.t;  (* gkey -> emitted tuples *)
    }

type coll_state =
  | CCounting of {
      head : head;
      plan : Ir.coll_plan;  (* kept for state-rebuild recovery *)
      disjs : disj_state list;
      counts : Delta.t;  (* derivation counts, across disjuncts *)
    }
  | CFallback of { plan : Ir.coll_plan; reason : string }

type stratum_state =
  | SNonrec of { sname : rel_name; sdeps : rel_name list; cs : coll_state }
  | SRecursive of {
      component : rel_name list;
      dps : Ir.def_plan list;
      sdeps : rel_name list;  (* non-component inputs *)
      dred : bool;
      dred_reason : string;  (* why not, when [dred] is false *)
    }

type view = {
  v_name : string;
  v_prog : program;
  v_strata : stratum_state list;
  v_main : coll_state;
  v_main_deps : rel_name list;
  mutable v_defs : (rel_name * Relation.t) list;  (* maintained, in order *)
  mutable v_result : Relation.t;
  v_deps : rel_name list;  (* base relations the view reads *)
  mutable v_fallbacks : int;
}

(* Per-base-relation incremental cache: bag multiplicities by canonical
   key plus the visible (convention-level) relation. Batches update both
   in O(|batch|), so applying a batch never re-deduplicates or re-diffs
   a whole base relation. *)
type base_cache = {
  bc_counts : (string, int) Hashtbl.t;
  mutable bc_vis : Relation.t;
}

type t = {
  conv : Conventions.t;
  strategy : Eval.recursion_strategy option;
  metrics : Metrics.t option;
  mutable tdb : Database.t;
  mutable tviews : view list;  (* registration order *)
  tbase : (rel_name, base_cache) Hashtbl.t;
}

type batch = (rel_name * (Tuple.t * int) list) list

type view_report = {
  vr_view : string;
  vr_mode : string;
  vr_out_delta : int;
  vr_ns : int64;
  vr_fallbacks : int;
}

(* A changed relation during one maintenance pass: visible (convention-
   level) before/after values plus their signed difference. *)
type change = {
  ch_old : Relation.t;
  ch_new : Relation.t;
  ch_eff : (Tuple.t * int) list;
}

let create ?(conv = Conventions.sql_set) ?strategy ?metrics ~db () =
  { conv; strategy; metrics; tdb = db; tviews = []; tbase = Hashtbl.create 16 }

let conv t = t.conv
let db t = t.tdb
let views t = List.map (fun v -> v.v_name) t.tviews

let find_view t name =
  match List.find_opt (fun v -> v.v_name = name) t.tviews with
  | Some v -> v
  | None -> fail "no view named %S is registered" name

(* v_result is patched in place by deltas (order: survivors then
   appended inserts); sort here to keep the documented contract. *)
let result t name = Relation.sort (find_view t name).v_result

let batch_rows (b : batch) =
  List.fold_left
    (fun acc (_, es) ->
      List.fold_left (fun acc (_, n) -> acc + abs n) acc es)
    0 b

let inverse (b : batch) =
  List.map (fun (r, es) -> (r, List.map (fun (tp, n) -> (tp, -n)) es)) b

let metric_inc t ?labels name =
  match t.metrics with None -> () | Some m -> Metrics.inc m ?labels name

let metric_observe t name v =
  match t.metrics with None -> () | Some m -> Metrics.observe m name v

let metric_gauge t name v =
  match t.metrics with None -> () | Some m -> Metrics.set_gauge m name v

(* ------------------------------------------------------------------ *)
(* Small helpers shared with the executor's semantics                  *)
(* ------------------------------------------------------------------ *)

let visible conv (r : Relation.t) =
  match conv.Conventions.collection with
  | Conventions.Set -> Relation.dedup r
  | Conventions.Bag -> r

(* Cache lookup with lazy seeding from [rel] (the relation's value
   {e before} the current batch, when called from [apply]). Seeding is
   the only whole-relation pass; [register] triggers it for every base
   dependency so later batches stay O(|batch|). *)
let base_cache_for t r (rel : Relation.t) =
  match Hashtbl.find_opt t.tbase r with
  | Some bc -> bc
  | None ->
      let counts = Hashtbl.create (1 + Relation.cardinality rel) in
      List.iter
        (fun tp ->
          let k = Tuple.key tp in
          Hashtbl.replace counts k
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
        (Relation.tuples rel);
      let bc = { bc_counts = counts; bc_vis = visible t.conv rel } in
      Hashtbl.add t.tbase r bc;
      bc

let rel_of_rows ~name (like : Relation.t) rows =
  Relation.make ~name (Relation.schema like) rows

let project_tuple ctx schema (head : head) assigns (row : I.benv) =
  Tuple.make schema
    (Array.of_list
       (List.map
          (fun a ->
            match List.assoc_opt a assigns with
            | Some tm -> I.eval_term ctx row tm
            | None ->
                fail "head attribute %s.%s is unassigned" head.head_name a)
          head.head_attrs))

let group_key ctx (full : I.benv) keys =
  String.concat ""
    (List.map
       (fun (v, a) -> V.canonical (I.eval_term ctx full (Attr (v, a))))
       keys)

(* Canonical serialization of a binding row, for exact-match deletion
   from group support tables. *)
let benv_key (row : I.benv) =
  String.concat "\x01"
    (List.map
       (fun (v, tp) -> v ^ "\x00" ^ Tuple.key tp)
       (List.sort (fun (a, _) (b, _) -> String.compare a b) row))

let remove_benv rows row =
  let k = benv_key row in
  let rec go = function
    | [] -> fail "maintenance state underflow: support row not found"
    | r :: rest -> if benv_key r = k then rest else r :: go rest
  in
  go rows

(* ------------------------------------------------------------------ *)
(* Scan-substitution runs                                              *)
(* ------------------------------------------------------------------ *)

(* The relations (in traversal order) scanned by occurrences of [rels]. *)
let occurrence_rels_t rels (t : Ir.t) : rel_name list =
  let acc = ref [] in
  ignore
    (Ir.subst_scans_with_t rels
       (fun k rel ->
         acc := (k, rel) :: !acc;
         None)
       t);
  List.map snd (List.sort compare !acc)

let occurrence_rels_coll rels (p : Ir.coll_plan) : rel_name list =
  let acc = ref [] in
  ignore
    (Ir.subst_scans_with rels
       (fun k rel ->
         acc := (k, rel) :: !acc;
         None)
       p);
  List.map snd (List.sort compare !acc)

(* Signed derivation delta of a multilinear pipeline:
   Δf = Σ_j f(new_1…new_{j-1}, Δ_j, old_{j+1}…), each Δ_j split into its
   insertion (+1) and deletion (−1) sides. Changed relations are renamed
   per occurrence, so no scan resolves a changed name directly. *)
let signed_rows ctx (changed : (rel_name, change) Hashtbl.t) (t : Ir.t) :
    (I.benv * int) list =
  let rels = Hashtbl.fold (fun r _ acc -> r :: acc) changed [] in
  let occs = occurrence_rels_t rels t in
  let side sign rj =
    let ch = Hashtbl.find changed rj in
    let nonempty =
      List.exists (fun (_, n) -> if sign > 0 then n > 0 else n < 0) ch.ch_eff
    in
    not nonempty
  in
  List.concat
    (List.mapi
       (fun j rj ->
         let run sign name_j =
           let plan =
             Ir.subst_scans_with_t rels
               (fun k rel ->
                 if k < j then Some (nm_new rel)
                 else if k = j then Some name_j
                 else Some (nm_old rel))
               t
           in
           List.map (fun row -> (row, sign)) (Exec.exec_pipeline ctx plan)
         in
         (if side 1 rj then [] else run 1 (nm_pos rj))
         @ (if side (-1) rj then [] else run (-1) (nm_neg rj)))
       occs)

(* ------------------------------------------------------------------ *)
(* Counting collections                                                *)
(* ------------------------------------------------------------------ *)

let visible_of_counts conv (head : head) counts =
  let schema = Schema.make head.head_attrs in
  let rows =
    List.concat_map
      (fun (tp, n) ->
        if n < 0 then fail "maintenance state underflow: negative count"
        else
          match conv.Conventions.collection with
          | Conventions.Set -> [ tp ]
          | Conventions.Bag -> List.init n (fun _ -> tp))
      (Delta.to_list counts)
  in
  Relation.make ~name:head.head_name schema rows

(* Fold one signed derivation into the count table, accumulating the
   visible-level output delta of the transition into [out] — so the
   materialized result can be patched instead of rebuilt from counts. *)
let fold_count conv counts out tp s =
  let c = Delta.count counts tp in
  let c' = c + s in
  if c' < 0 then fail "maintenance state underflow: negative count";
  Delta.add counts tp s;
  match conv.Conventions.collection with
  | Conventions.Bag -> if s <> 0 then Delta.add out tp s
  | Conventions.Set ->
      if c = 0 && c' > 0 then Delta.add out tp 1
      else if c > 0 && c' = 0 then Delta.add out tp (-1)

let agg_outputs ctx conv out (head : head) keys scope_vars post assigns groups
    outs gk counts =
  let group = Option.value ~default:[] (Hashtbl.find_opt groups gk) in
  let old_outs = Option.value ~default:[] (Hashtbl.find_opt outs gk) in
  let new_outs =
    if keys <> [] && group = [] then []
    else
      let rep = match group with [] -> [] | r :: _ -> r in
      if
        List.for_all
          (fun f -> I.eval_gformula ctx ~rep ~group ~scope_vars f = B3.True)
          post
      then
        let schema = Schema.make head.head_attrs in
        [
          Tuple.make schema
            (Array.of_list
               (List.map
                  (fun a ->
                    match List.assoc_opt a assigns with
                    | Some tm ->
                        I.eval_gterm ctx ~rep ~group ~scope_vars tm
                    | None ->
                        fail "head attribute %s.%s is unassigned"
                          head.head_name a)
                  head.head_attrs));
        ]
      else []
  in
  List.iter (fun tp -> fold_count conv counts out tp (-1)) old_outs;
  List.iter (fun tp -> fold_count conv counts out tp 1) new_outs;
  if keys <> [] && group = [] then begin
    Hashtbl.remove groups gk;
    Hashtbl.remove outs gk
  end
  else Hashtbl.replace outs gk new_outs

(* Initial materialization: full pipeline runs establish derivation
   counts (which collection-level dedup would destroy) and group
   support. *)
let seed_counting ctx conv head disjs counts =
  let scratch = Delta.create () in
  List.iter
    (function
      | DProj { assigns; input } ->
          let schema = Schema.make head.head_attrs in
          List.iter
            (fun row ->
              Delta.add counts (project_tuple ctx schema head assigns row) 1)
            (Exec.exec_pipeline ctx input)
      | DAgg { input; keys; scope_vars; post; assigns; groups; outs } ->
          let rows = Exec.exec_pipeline ctx input in
          let dirty = Hashtbl.create 16 in
          if keys = [] then begin
            Hashtbl.replace groups "" rows;
            Hashtbl.replace dirty "" ()
          end
          else
            List.iter
              (fun row ->
                let gk = group_key ctx row keys in
                Hashtbl.replace groups gk
                  (Option.value ~default:[] (Hashtbl.find_opt groups gk)
                  @ [ row ]);
                Hashtbl.replace dirty gk ())
              rows;
          Hashtbl.iter
            (fun gk () ->
              agg_outputs ctx conv scratch head keys scope_vars post assigns
                groups outs gk counts)
            dirty)
    disjs;
  Relation.sort (visible_of_counts conv head counts)

(* Returns the new visible value plus the signed output delta that got
   there: the materialized result is patched with [Relation.apply_delta],
   never rebuilt from the count table, so batch cost scales with the
   delta (plus, for deletions, one cached-key filter pass). *)
let maintain_counting ctx conv head disjs counts changed old_r =
  let out = Delta.create () in
  List.iter
    (function
      | DProj { assigns; input } ->
          let schema = Schema.make head.head_attrs in
          List.iter
            (fun (row, s) ->
              fold_count conv counts out
                (project_tuple ctx schema head assigns row)
                s)
            (signed_rows ctx changed input)
      | DAgg { input; keys; scope_vars; post; assigns; groups; outs } ->
          let runs = signed_rows ctx changed input in
          let dirty = Hashtbl.create 16 in
          List.iter
            (fun (row, s) ->
              let gk = if keys = [] then "" else group_key ctx row keys in
              let cur =
                Option.value ~default:[] (Hashtbl.find_opt groups gk)
              in
              Hashtbl.replace groups gk
                (if s > 0 then cur @ [ row ] else remove_benv cur row);
              Hashtbl.replace dirty gk ())
            runs;
          Hashtbl.iter
            (fun gk () ->
              agg_outputs ctx conv out head keys scope_vars post assigns
                groups outs gk counts)
            dirty)
    disjs;
  let eff =
    List.sort
      (fun (a, _) (b, _) -> Tuple.compare a b)
      (Delta.to_list out)
  in
  let new_r = if eff = [] then old_r else Relation.apply_delta old_r eff in
  (new_r, eff)

(* ------------------------------------------------------------------ *)
(* DRed for recursive strata                                           *)
(* ------------------------------------------------------------------ *)

(* Fixpoint relations are sets regardless of the collection convention
   (both engines dedup each round), so DRed works at the set level:
   input changes are projected to distinct-tuple transitions first. *)
let maintain_dred ctx defs component (dps : Ir.def_plan list)
    (stratum_changes : (rel_name * change) list) =
  let gov = I.gov ctx in
  let set_rel = I.idb_set ctx in
  let input_rels = List.map fst stratum_changes in
  let all = component @ input_rels in
  let orig = List.map (fun n -> (n, List.assoc n defs)) component in
  let set_changes =
    List.map
      (fun (r, ch) ->
        let o = Relation.dedup ch.ch_old and n = Relation.dedup ch.ch_new in
        (r, o, n, Relation.diff_signed o n))
      stratum_changes
  in
  List.iter (fun (n, rel) -> set_rel (nm_orig n) rel) orig;
  List.iter (fun (r, o, n, _) ->
      set_rel (nm_orig r) o;
      set_rel (nm_rnew r) n)
    set_changes;
  let exec_subst dp rename =
    Relation.dedup
      (Exec.exec_collection ctx (Ir.subst_scans_with all rename dp.Ir.dplan))
  in
  let remaining = Hashtbl.create 8 in
  let deleted = Hashtbl.create 8 in
  List.iter
    (fun (n, rel) ->
      Hashtbl.replace remaining n rel;
      Hashtbl.replace deleted n (rel_of_rows ~name:n rel []))
    orig;
  let rounds = ref 0 in
  let round_ok () =
    incr rounds;
    Gov.tick gov;
    Gov.iteration_allowed gov !rounds && not (Gov.stopped gov)
  in
  let has_del =
    List.exists
      (fun (_, _, _, eff) -> List.exists (fun (_, n) -> n < 0) eff)
      set_changes
  in
  let has_ins =
    List.exists
      (fun (_, _, _, eff) -> List.exists (fun (_, n) -> n > 0) eff)
      set_changes
  in
  (* --- Phase A: over-delete. One-step consequences of deleted tuples,
     all other positions at their original values, intersected with what
     is still present; iterate until no new deletions. --- *)
  if has_del then begin
    let frontier =
      ref
        (List.filter_map
           (fun (r, o, _, eff) ->
             let rows =
               List.concat_map
                 (fun (tp, n) -> List.init (max 0 (-n)) (fun _ -> tp))
                 eff
             in
             if rows = [] then None else Some (r, rel_of_rows ~name:r o rows))
           set_changes)
    in
    while !frontier <> [] && round_ok () do
      List.iter (fun (r, rel) -> set_rel (nm_front r) rel) !frontier;
      let front_rels = List.map fst !frontier in
      let newdels =
        List.filter_map
          (fun dp ->
            let n = dp.Ir.dname in
            let occs = occurrence_rels_coll all dp.Ir.dplan in
            let candidates =
              List.concat
                (List.mapi
                   (fun j rj ->
                     if not (List.mem rj front_rels) then []
                     else
                       Relation.tuples
                         (exec_subst dp (fun k rel ->
                              if k = j then Some (nm_front rel)
                              else Some (nm_orig rel))))
                   occs)
            in
            let rem = Hashtbl.find remaining n in
            let cand = Relation.dedup (rel_of_rows ~name:n rem candidates) in
            let newdel = Relation.intersect cand rem in
            if Relation.is_empty newdel then None
            else begin
              Hashtbl.replace remaining n (Relation.minus rem newdel);
              Hashtbl.replace deleted n
                (Relation.union (Hashtbl.find deleted n) newdel);
              Some (n, newdel)
            end)
          dps
      in
      frontier := newdels
    done
  end;
  (* --- Phase B: re-derive. Inputs at their deletion-applied value; one
     full rule application re-derives over-deleted tuples that survive,
     then seminaive rounds propagate re-additions. --- *)
  List.iter
    (fun (r, o, _, eff) ->
      let negs =
        List.concat_map
          (fun (tp, n) -> List.init (max 0 (-n)) (fun _ -> tp))
          eff
      in
      set_rel (nm_mid r) (Relation.minus o (rel_of_rows ~name:r o negs)))
    set_changes;
  let set_cur () =
    List.iter (fun (n, _) -> set_rel (nm_cur n) (Hashtbl.find remaining n)) orig
  in
  set_cur ();
  if has_del && List.exists (fun (n, _) -> not (Relation.is_empty (Hashtbl.find deleted n))) orig
  then begin
    let readd_of dp derived =
      let n = dp.Ir.dname in
      let dead = Hashtbl.find deleted n in
      let readd = Relation.intersect derived dead in
      if Relation.is_empty readd then None
      else begin
        Hashtbl.replace remaining n
          (Relation.dedup (Relation.union (Hashtbl.find remaining n) readd));
        Hashtbl.replace deleted n (Relation.minus dead readd);
        Some (n, readd)
      end
    in
    let first =
      List.filter_map
        (fun dp ->
          readd_of dp
            (exec_subst dp (fun _ rel ->
                 if List.mem rel component then Some (nm_cur rel)
                 else Some (nm_mid rel))))
        dps
    in
    set_cur ();
    let frontier = ref first in
    while !frontier <> [] && round_ok () do
      List.iter (fun (r, rel) -> set_rel (nm_front r) rel) !frontier;
      let front_rels = List.map fst !frontier in
      let readds =
        List.filter_map
          (fun dp ->
            let occs = occurrence_rels_coll all dp.Ir.dplan in
            let derived =
              List.concat
                (List.mapi
                   (fun j rj ->
                     if not (List.mem rj front_rels) then []
                     else
                       Relation.tuples
                         (exec_subst dp (fun k rel ->
                              if k = j then Some (nm_front rel)
                              else if List.mem rel component then
                                Some (nm_cur rel)
                              else Some (nm_mid rel))))
                   occs)
            in
            let rem = Hashtbl.find remaining dp.Ir.dname in
            readd_of dp
              (Relation.dedup (rel_of_rows ~name:dp.Ir.dname rem derived)))
          dps
      in
      set_cur ();
      frontier := readds
    done
  end;
  (* --- Phase C: insertions. Differentiate input insertions (inputs mix
     new-before/mid-after, component at current), then run the seminaive
     continuation over component deltas with inputs at new values. --- *)
  if has_ins then begin
    List.iter
      (fun (r, _, _, eff) ->
        let pos =
          List.concat_map
            (fun (tp, n) -> List.init (max 0 n) (fun _ -> tp))
            eff
        in
        set_rel (nm_rpos r)
          (rel_of_rows ~name:r (Hashtbl.find_opt remaining r |> function
            | Some x -> x
            | None ->
                (let (_, o, _, _) =
                   List.find (fun (r', _, _, _) -> r' = r) set_changes
                 in
                 o))
            pos))
      set_changes;
    let fresh_of dp derived =
      let n = dp.Ir.dname in
      let cur = Hashtbl.find remaining n in
      let fresh = Relation.minus derived cur in
      if Relation.is_empty fresh then None
      else begin
        Hashtbl.replace remaining n (Relation.dedup (Relation.union cur fresh));
        Some (n, fresh)
      end
    in
    let seeds =
      List.filter_map
        (fun dp ->
          let occs = occurrence_rels_coll all dp.Ir.dplan in
          let derived =
            List.concat
              (List.mapi
                 (fun j rj ->
                   let is_input = List.mem rj input_rels in
                   let has_pos =
                     is_input
                     && List.exists
                          (fun (r, _, _, eff) ->
                            r = rj && List.exists (fun (_, n) -> n > 0) eff)
                          set_changes
                   in
                   if not has_pos then []
                   else
                     Relation.tuples
                       (exec_subst dp (fun k rel ->
                            if List.mem rel component then Some (nm_cur rel)
                            else if k = j then Some (nm_rpos rel)
                            else if k < j then Some (nm_rnew rel)
                            else Some (nm_mid rel))))
                 occs)
          in
          let rem = Hashtbl.find remaining dp.Ir.dname in
          fresh_of dp
            (Relation.dedup (rel_of_rows ~name:dp.Ir.dname rem derived)))
        dps
    in
    set_cur ();
    let frontier = ref seeds in
    while !frontier <> [] && round_ok () do
      List.iter (fun (r, rel) -> set_rel (nm_front r) rel) !frontier;
      let front_rels = List.map fst !frontier in
      let freshes =
        List.filter_map
          (fun dp ->
            let occs = occurrence_rels_coll all dp.Ir.dplan in
            let derived =
              List.concat
                (List.mapi
                   (fun j rj ->
                     if not (List.mem rj front_rels) then []
                     else
                       Relation.tuples
                         (exec_subst dp (fun k rel ->
                              if k = j then Some (nm_front rel)
                              else if List.mem rel component then
                                Some (nm_cur rel)
                              else Some (nm_rnew rel))))
                   occs)
            in
            let rem = Hashtbl.find remaining dp.Ir.dname in
            fresh_of dp
              (Relation.dedup (rel_of_rows ~name:dp.Ir.dname rem derived)))
          dps
      in
      set_cur ();
      frontier := freshes
    done
  end;
  (* Per-definition results and effective deltas. *)
  List.map
    (fun (n, before) ->
      let after = Relation.sort (Hashtbl.find remaining n) in
      (n, before, after, Relation.diff_signed before after))
    orig

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

let classify_coll (plan : Ir.coll_plan) : coll_state =
  match plan with
  | Ir.Fallback { reason; _ } ->
      CFallback { plan; reason = "lowering_fallback:" ^ reason }
  | Ir.Union { head; disjuncts } -> (
      let rec build acc = function
        | [] -> Ok (List.rev acc)
        | d :: rest -> (
            match disjunct_blocker d with
            | Some why -> Error why
            | None ->
                let st =
                  match d with
                  | Ir.Project { input; assigns } -> DProj { assigns; input }
                  | Ir.Aggregate { input; keys; scope_vars; post; assigns }
                    ->
                      DAgg
                        {
                          input;
                          keys;
                          scope_vars;
                          post;
                          assigns;
                          groups = Hashtbl.create 64;
                          outs = Hashtbl.create 64;
                        }
                in
                build (st :: acc) rest)
      in
      match build [] disjuncts with
      | Ok disjs ->
          CCounting { head; plan; disjs; counts = Delta.create () }
      | Error why -> CFallback { plan; reason = why })

let coll_plan_blocker = function
  | Ir.Fallback { reason; _ } -> Some ("lowering_fallback:" ^ reason)
  | Ir.Union { disjuncts; _ } ->
      List.fold_left
        (fun acc d ->
          match acc with
          | Some _ -> acc
          | None -> (
              match d with
              | Ir.Project { input; _ } -> pipeline_blocker input
              | Ir.Aggregate _ -> Some "aggregate_in_recursion"))
        None disjuncts

let deps_of_coll (c : collection) =
  List.sort_uniq compare (List.map fst (Depend.collection_deps c))

let classify_stratum (s : Ir.stratum) : stratum_state =
  match s with
  | Ir.Nonrecursive dp ->
      SNonrec
        {
          sname = dp.Ir.dname;
          sdeps = deps_of_coll dp.Ir.dcoll;
          cs = classify_coll dp.Ir.dplan;
        }
  | Ir.Recursive dps ->
      let component = List.map (fun dp -> dp.Ir.dname) dps in
      let sdeps =
        List.filter
          (fun n -> not (List.mem n component))
          (List.sort_uniq compare
             (List.concat_map (fun dp -> deps_of_coll dp.Ir.dcoll) dps))
      in
      let blocker =
        if not (Ir.seminaive_eligible component dps) then
          Some "opaque_recursive_reference"
        else
          List.fold_left
            (fun acc dp ->
              match acc with
              | Some _ -> acc
              | None -> coll_plan_blocker dp.Ir.dplan)
            None dps
      in
      SRecursive
        {
          component;
          dps;
          sdeps;
          dred = blocker = None;
          dred_reason = Option.value ~default:"" blocker;
        }

(* ------------------------------------------------------------------ *)
(* Registration                                                        *)
(* ------------------------------------------------------------------ *)

let note_fallback t v reason =
  v.v_fallbacks <- v.v_fallbacks + 1;
  metric_inc t
    ~labels:[ ("view", v.v_name); ("reason", reason) ]
    "arc_ivm_fallbacks_total"

let eval_coll_state ctx conv (cs : coll_state) : Relation.t =
  match cs with
  | CCounting { head; disjs; counts; _ } ->
      seed_counting ctx conv head disjs counts
  | CFallback { plan; _ } -> Relation.sort (Exec.exec_collection ctx plan)

let register t ~name (prog : program) =
  if Arc_core.Analysis.is_reserved_name name then
    fail
      "view name %S is in the engine's reserved namespace (__delta__…, \
       __ivm__…)"
      name;
  if List.exists (fun v -> v.v_name = name) t.tviews then
    fail "a view named %S is already registered" name;
  (match prog.main with
  | Sentence _ -> fail "sentence queries cannot be maintained as views"
  | Coll _ -> ());
  let ctx, _raw, plan, _report =
    Exec.compile ~conv:t.conv ?strategy:t.strategy ~db:t.tdb prog
  in
  let strata = List.map classify_stratum plan.Ir.strata in
  let main_cs, main_deps =
    match (plan.Ir.main, prog.main) with
    | Ir.Main_coll p, Coll c -> (classify_coll p, deps_of_coll c)
    | _ -> fail "sentence queries cannot be maintained as views"
  in
  (* Materialize strata in order, building the initial maintenance
     state; counting collections are seeded from full pipeline runs so
     derivation counts survive collection-level dedup. *)
  let defs = ref [] in
  List.iter
    (fun ss ->
      match ss with
      | SNonrec { sname; cs; _ } ->
          let r = eval_coll_state ctx t.conv cs in
          I.idb_set ctx sname r;
          defs := !defs @ [ (sname, r) ]
      | SRecursive { component; dps; _ } ->
          Exec.exec_stratum_plan ctx (Ir.Recursive dps);
          List.iter
            (fun n ->
              match I.idb_get ctx n with
              | Some r ->
                  let r = Relation.sort r in
                  I.idb_set ctx n r;
                  defs := !defs @ [ (n, r) ]
              | None -> fail "fixpoint left %S unmaterialized" n)
            component)
    strata;
  let result = eval_coll_state ctx t.conv main_cs in
  let def_names = List.map fst !defs in
  let base_deps =
    List.filter
      (fun n -> not (List.mem n def_names))
      (List.sort_uniq compare
         (main_deps
         @ List.concat_map
             (function
               | SNonrec { sdeps; _ } | SRecursive { sdeps; _ } -> sdeps)
             strata))
  in
  List.iter
    (fun r ->
      match Database.find_opt t.tdb r with
      | Some rel -> ignore (base_cache_for t r rel)
      | None -> ())
    base_deps;
  let v =
    {
      v_name = name;
      v_prog = prog;

      v_strata = strata;
      v_main = main_cs;
      v_main_deps = main_deps;
      v_defs = !defs;
      v_result = result;
      v_deps = base_deps;
      v_fallbacks = 0;
    }
  in
  t.tviews <- t.tviews @ [ v ]

(* ------------------------------------------------------------------ *)
(* Batch application                                                   *)
(* ------------------------------------------------------------------ *)

let register_change ctx (name : rel_name) (ch : change) =
  let set = I.idb_set ctx in
  set (nm_old name) ch.ch_old;
  set (nm_new name) ch.ch_new;
  let mk rows = rel_of_rows ~name ch.ch_new rows in
  set (nm_pos name)
    (mk (Delta.expand (List.filter (fun (_, n) -> n > 0) ch.ch_eff)));
  set (nm_neg name)
    (mk
       (Delta.expand
          (List.filter_map
             (fun (tp, n) -> if n < 0 then Some (tp, -n) else None)
             ch.ch_eff)))

let changed_dep changed deps =
  List.exists (fun d -> Hashtbl.mem changed d) deps

(* Maintain one collection-valued definition (or the main collection);
   returns its new visible value plus, on the counting path, the exact
   signed output delta ([None] means the caller must diff). Counting-state
   violations (e.g. a support row that cannot be found after an
   out-of-band change) trigger a counted state rebuild rather than an
   error. *)
let maintain_coll t v ctx (cs : coll_state) changed old_r :
    Relation.t * (Tuple.t * int) list option =
  match cs with
  | CCounting { head; disjs; counts; _ } -> (
      try
        let new_r, eff =
          maintain_counting ctx t.conv head disjs counts changed old_r
        in
        (new_r, Some eff)
      with Ivm_error _ ->
        note_fallback t v "state_rebuild";
        Delta.to_list counts
        |> List.iter (fun (tp, n) -> Delta.add counts tp (-n));
        List.iter
          (function
            | DProj _ -> ()
            | DAgg { groups; outs; _ } ->
                Hashtbl.reset groups;
                Hashtbl.reset outs)
          disjs;
        (seed_counting ctx t.conv head disjs counts, None))
  | CFallback { plan; reason } ->
      note_fallback t v reason;
      (Relation.sort (Exec.exec_collection ctx plan), None)

let maintain_view t v guard changed_base =
  let t0 = Metrics.now_ns () in
  let fb0 = v.v_fallbacks in
  if not (changed_dep changed_base v.v_deps) then
    {
      vr_view = v.v_name;
      vr_mode = "unchanged";
      vr_out_delta = 0;
      vr_ns = Int64.sub (Metrics.now_ns ()) t0;
      vr_fallbacks = 0;
    }
  else begin
    let ctx, _ =
      I.prepare ~conv:t.conv ?strategy:t.strategy ?guard ~db:t.tdb v.v_prog
    in
    (* Old derived values under their natural names; as strata are
       maintained these are flipped to the new values, so downstream
       fallback recomputation always reads a consistent new database. *)
    List.iter (fun (n, r) -> I.idb_set ctx n r) v.v_defs;
    let changed = Hashtbl.copy changed_base in
    Hashtbl.iter (fun n ch -> register_change ctx n ch) changed;
    let incremental = ref 0 in
    let record_change ?eff n old_r new_r =
      v.v_defs <-
        List.map (fun (n', r) -> if n' = n then (n', new_r) else (n', r))
          v.v_defs;
      I.idb_set ctx n new_r;
      let eff =
        match eff with
        | Some e -> e
        | None -> Relation.diff_signed old_r new_r
      in
      if eff <> [] then begin
        let ch = { ch_old = old_r; ch_new = new_r; ch_eff = eff } in
        Hashtbl.replace changed n ch;
        register_change ctx n ch
      end
    in
    List.iter
      (fun ss ->
        match ss with
        | SNonrec { sname; sdeps; cs } ->
            if changed_dep changed sdeps then begin
              let old_r = List.assoc sname v.v_defs in
              (match cs with CCounting _ -> incr incremental | _ -> ());
              let new_r, eff = maintain_coll t v ctx cs changed old_r in
              record_change ?eff sname old_r new_r
            end
        | SRecursive { component; dps; sdeps; dred; dred_reason } ->
            if changed_dep changed sdeps then
              if dred then begin
                incr incremental;
                let stratum_changes =
                  List.filter_map
                    (fun d ->
                      Option.map (fun ch -> (d, ch))
                        (Hashtbl.find_opt changed d))
                    sdeps
                in
                let results =
                  maintain_dred ctx v.v_defs component dps stratum_changes
                in
                List.iter
                  (fun (n, before, after, _) ->
                    record_change n before after)
                  results
              end
              else begin
                note_fallback t v
                  (if dred_reason = "" then "recursive_fallback"
                   else dred_reason);
                let olds =
                  List.map (fun n -> (n, List.assoc n v.v_defs)) component
                in
                Exec.exec_stratum_plan ctx (Ir.Recursive dps);
                List.iter
                  (fun (n, old_r) ->
                    match I.idb_get ctx n with
                    | Some r -> record_change n old_r (Relation.sort r)
                    | None -> fail "fixpoint left %S unmaterialized" n)
                  olds
              end)
      v.v_strata;
    let out_delta =
      if changed_dep changed v.v_main_deps then begin
        (match v.v_main with CCounting _ -> incr incremental | _ -> ());
        let old_r = v.v_result in
        let new_r, eff = maintain_coll t v ctx v.v_main changed old_r in
        v.v_result <- new_r;
        let eff =
          match eff with
          | Some e -> e
          | None -> Relation.diff_signed old_r new_r
        in
        List.fold_left (fun acc (_, n) -> acc + abs n) 0 eff
      end
      else 0
    in
    let fb = v.v_fallbacks - fb0 in
    let mode =
      if fb = 0 then "incremental"
      else if !incremental = 0 then "fallback"
      else "mixed"
    in
    let ns = Int64.sub (Metrics.now_ns ()) t0 in
    metric_observe t "arc_ivm_view_delta_rows" (float_of_int out_delta);
    metric_observe t "arc_ivm_propagate_ns" (Int64.to_float ns);
    {
      vr_view = v.v_name;
      vr_mode = mode;
      vr_out_delta = out_delta;
      vr_ns = ns;
      vr_fallbacks = fb;
    }
  end

let state_rows t =
  List.fold_left
    (fun acc v ->
      let coll_rows = function
        | CCounting { counts; disjs; _ } ->
            Delta.cardinality counts
            + List.fold_left
                (fun a -> function
                  | DProj _ -> a
                  | DAgg { groups; _ } ->
                      Hashtbl.fold
                        (fun _ rows a -> a + List.length rows)
                        groups a)
                0 disjs
        | CFallback _ -> 0
      in
      let strata_rows =
        List.fold_left
          (fun a -> function
            | SNonrec { cs; _ } -> a + coll_rows cs
            | SRecursive _ -> a)
          0 v.v_strata
      in
      acc + strata_rows + coll_rows v.v_main
      + List.fold_left
          (fun a (_, r) -> a + Relation.cardinality r)
          0 v.v_defs
      + Relation.cardinality v.v_result)
    0 t.tviews

let apply ?guard t (batch : batch) =
  (* Merge per-relation entries, then validate the whole batch against
     the current database before mutating anything (the mli promises
     atomicity on error). *)
  let order = ref [] in
  let merged = Hashtbl.create 8 in
  List.iter
    (fun (r, entries) ->
      match Hashtbl.find_opt merged r with
      | Some d -> List.iter (fun (tp, n) -> Delta.add d tp n) entries
      | None ->
          order := r :: !order;
          Hashtbl.add merged r (Delta.of_list entries))
    batch;
  let updates =
    List.rev_map
      (fun r ->
        let d = Hashtbl.find merged r in
        match Database.find_opt t.tdb r with
        | None -> fail "unknown base relation %S" r
        | Some rel -> (
            try (r, rel, Relation.apply_delta rel (Delta.to_list d))
            with Invalid_argument msg -> raise (Ivm_error msg)))
      !order
  in
  (* Commit, then fold each relation's net delta into its cache to get
     the visible-level change without any whole-relation pass. [add]
     drops the replaced relation's planner statistics; re-attach them
     with the row count patched and finer column detail marked stale, so
     subsequent compiles keep a fresh base cardinality without paying a
     full re-ANALYZE per batch. *)
  t.tdb <-
    List.fold_left
      (fun db (r, _, nr) ->
        let prior = Database.stats db r in
        let db = Database.add db r nr in
        match prior with
        | None -> db
        | Some s ->
            Database.set_stats db r
              (Arc_relation.Stats.patch_rows s (Relation.cardinality nr)))
      t.tdb updates;
  let changed_base : (rel_name, change) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (r, old_rel, new_rel) ->
      let bc = base_cache_for t r old_rel in
      let schema = Relation.schema old_rel in
      let veff =
        List.filter_map
          (fun (tp, n) ->
            let tp = Relation.align_to schema tp in
            let k = Tuple.key tp in
            let old_c =
              Option.value ~default:0 (Hashtbl.find_opt bc.bc_counts k)
            in
            let new_c = old_c + n in
            if new_c <= 0 then Hashtbl.remove bc.bc_counts k
            else Hashtbl.replace bc.bc_counts k new_c;
            match t.conv.Conventions.collection with
            | Conventions.Bag -> if n = 0 then None else Some (tp, n)
            | Conventions.Set ->
                if old_c = 0 && new_c > 0 then Some (tp, 1)
                else if old_c > 0 && new_c <= 0 then Some (tp, -1)
                else None)
          (Delta.to_list (Hashtbl.find merged r))
      in
      let ch_old = bc.bc_vis in
      let ch_new =
        match t.conv.Conventions.collection with
        | Conventions.Bag -> new_rel
        | Conventions.Set ->
            if veff = [] then ch_old else Relation.apply_delta ch_old veff
      in
      bc.bc_vis <- ch_new;
      if veff <> [] then
        let ch_eff =
          List.sort (fun (a, _) (b, _) -> Tuple.compare a b) veff
        in
        Hashtbl.replace changed_base r { ch_old; ch_new; ch_eff })
    updates;
  metric_inc t "arc_ivm_batches_total";
  metric_observe t "arc_ivm_batch_delta_rows" (float_of_int (batch_rows batch));
  let reports =
    List.map (fun v -> maintain_view t v guard changed_base) t.tviews
  in
  metric_gauge t "arc_ivm_state_rows" (float_of_int (state_rows t));
  reports

(* ------------------------------------------------------------------ *)
(* Differential oracle                                                 *)
(* ------------------------------------------------------------------ *)

let check t =
  List.filter_map
    (fun v ->
      let ctx, _, plan, _ =
        Exec.compile ~conv:t.conv ?strategy:t.strategy ~db:t.tdb v.v_prog
      in
      match Exec.exec_program ctx plan with
      | Eval.Truth _ -> fail "sentence queries cannot be maintained as views"
      | Eval.Rows fresh ->
          let fresh = Relation.sort fresh in
          if Relation.equal_bag v.v_result fresh then None
          else Some (v.v_name, v.v_result, fresh))
    t.tviews

let fallback_total t =
  List.fold_left (fun acc v -> acc + v.v_fallbacks) 0 t.tviews
