(** Signed multisets of tuples — the change objects incremental view
    maintenance propagates.

    A delta maps each distinct tuple (by {!Arc_relation.Tuple.key}, the
    canonical serialization grouping/dedup use, so [Null] matches [Null]
    under both 2VL and 3VL and [Int 1] matches [Float 1.0]) to a signed
    multiplicity: positive = insertions, negative = deletions. Entries
    with multiplicity zero are dropped eagerly, so [is_empty] means "no
    net change". *)

type t

val create : unit -> t

val add : t -> Arc_relation.Tuple.t -> int -> unit
(** Accumulate [n] (possibly negative) occurrences of a tuple. *)

val of_list : (Arc_relation.Tuple.t * int) list -> t

val to_list : t -> (Arc_relation.Tuple.t * int) list
(** Non-zero entries, sorted by tuple for determinism. *)

val is_empty : t -> bool

val cardinality : t -> int
(** Sum of absolute multiplicities (total change volume). *)

val negate : t -> t
(** The inverse batch: applying [d] then [negate d] is a no-op. *)

val count : t -> Arc_relation.Tuple.t -> int

val positive : t -> (Arc_relation.Tuple.t * int) list
val negative : t -> (Arc_relation.Tuple.t * int) list
(** Insertion / deletion sides; [negative] multiplicities are reported
    as positive magnitudes. *)

val expand : (Arc_relation.Tuple.t * int) list -> Arc_relation.Tuple.t list
(** Multiset expansion: each tuple repeated [max 0 n] times. *)
