(** Incremental view maintenance: registered ARC views kept up to date
    under insert/delete batches instead of re-evaluated.

    A view is compiled once ({!Arc_engine.Exec.compile}); each stratum of
    its plan is classified at registration:

    - {b counting} — non-recursive collections whose disjunct pipelines
      use only multilinear operators (scan, product, hash join, filter,
      prune, relation-free residuals). Projections maintain a signed
      derivation-count table; grouped aggregates persist group tables
      (binding rows with support) and re-aggregate only dirty groups.
      Deltas are propagated by executing scan-substituted plans — the
      same rewrite the seminaive fixpoint uses ({!Arc_plan.Ir.subst_scan}).
    - {b DRed} — recursive strata eligible for seminaive substitution:
      deletions run an over-delete/re-derive pass, insertions a seminaive
      continuation.
    - {b fallback} — anything else (semi/anti joins, laterals,
      subqueries, deferred resolution, lowering fallbacks, aggregates in
      recursion) is recomputed from scratch and diffed. Fallbacks are
      counted in metrics, never silent.

    Every maintained result is bag-equal to full re-evaluation on the
    updated database — {!check} verifies exactly that. *)

open Arc_core.Ast

exception Ivm_error of string
(** Usage errors (unknown relation, deletion of an absent tuple, sentence
    views) and internal maintenance-state violations. Budget trips raise
    {!Arc_engine.Eval.Eval_error} as elsewhere. *)

type t

val create :
  ?conv:Arc_value.Conventions.t ->
  ?strategy:Arc_engine.Eval.recursion_strategy ->
  ?metrics:Arc_obs.Metrics.t ->
  db:Arc_relation.Database.t ->
  unit ->
  t
(** An engine instance owns the evolving database and its views. All
    views share one convention combo; use one instance per combo. *)

val conv : t -> Arc_value.Conventions.t
val db : t -> Arc_relation.Database.t
val views : t -> string list

val register : t -> name:string -> program -> unit
(** Compile, classify, and materialize a view. Raises {!Ivm_error} for
    sentence queries, duplicate names, or view names in the engine's
    reserved namespace ([__delta__…]/[__ivm__…] — they would collide
    with maintenance working relations), {!Arc_engine.Eval.Eval_error}
    for invalid programs. *)

val result : t -> string -> Arc_relation.Relation.t
(** Current maintained result (sorted). Raises {!Ivm_error} if
    unregistered. *)

(** {1 Batches} *)

type batch = (rel_name * (Arc_relation.Tuple.t * int) list) list
(** Signed updates per base relation: positive multiplicities insert,
    negative delete (see {!Arc_relation.Relation.apply_delta}). *)

val batch_rows : batch -> int
(** Total change volume (sum of absolute multiplicities). *)

val inverse : batch -> batch

type view_report = {
  vr_view : string;
  vr_mode : string;
      (** ["incremental"], ["fallback"], ["mixed"], or ["unchanged"]. *)
  vr_out_delta : int;  (** |signed delta| of the view's visible result. *)
  vr_ns : int64;  (** wall-clock spent maintaining this view. *)
  vr_fallbacks : int;  (** fallback recomputations during this batch. *)
}

val apply : ?guard:Arc_guard.Gov.t -> t -> batch -> view_report list
(** Update the database and maintain every view. The optional [guard]
    budgets the whole batch (prepared per view, as {!Arc_engine.Eval}
    does). Raises {!Ivm_error} on unknown relations, schema mismatches,
    or deletions exceeding multiplicity — in that case neither the
    database nor any view has been modified. *)

(** {1 Oracle} *)

val check :
  t ->
  (string * Arc_relation.Relation.t * Arc_relation.Relation.t) list
(** Differential recompute: every view is re-evaluated from scratch on
    the current database; returns [(view, maintained, recomputed)] for
    each view whose maintained result is {e not} bag-equal. Empty list =
    all views verified. *)

val fallback_total : t -> int
(** Fallback recomputations since creation, across all views. *)

val state_rows : t -> int
(** Rows held in maintenance state (count tables, group tables,
    materialized defs and results), for the [arc_ivm_state_rows] gauge. *)
