module Tuple = Arc_relation.Tuple

type t = (string, Tuple.t * int) Hashtbl.t

let create () : t = Hashtbl.create 16

let add (d : t) tp n =
  if n <> 0 then
    let k = Tuple.key tp in
    match Hashtbl.find_opt d k with
    | Some (rep, m) ->
        if m + n = 0 then Hashtbl.remove d k
        else Hashtbl.replace d k (rep, m + n)
    | None -> Hashtbl.add d k (tp, n)

let of_list entries =
  let d = create () in
  List.iter (fun (tp, n) -> add d tp n) entries;
  d

let to_list (d : t) =
  Hashtbl.fold (fun _ e acc -> e :: acc) d []
  |> List.sort (fun (a, _) (b, _) -> Tuple.compare a b)

let is_empty (d : t) = Hashtbl.length d = 0

let cardinality (d : t) =
  Hashtbl.fold (fun _ (_, n) acc -> acc + abs n) d 0

let negate (d : t) =
  let d' = create () in
  Hashtbl.iter (fun k (tp, n) -> Hashtbl.add d' k (tp, -n)) d;
  d'

let count (d : t) tp =
  match Hashtbl.find_opt d (Tuple.key tp) with
  | Some (_, n) -> n
  | None -> 0

let positive d =
  List.filter_map (fun (tp, n) -> if n > 0 then Some (tp, n) else None)
    (to_list d)

let negative d =
  List.filter_map (fun (tp, n) -> if n < 0 then Some (tp, -n) else None)
    (to_list d)

let expand entries =
  List.concat_map (fun (tp, n) -> List.init (max 0 n) (fun _ -> tp)) entries
