module A = Arc_core.Ast
module V = Arc_value.Value

type texpr = T_attr of string * string | T_const of V.t

type tformula =
  | T_member of string * string
  | T_cmp of A.cmp_op * texpr * texpr
  | T_and of tformula list
  | T_or of tformula list
  | T_not of tformula
  | T_exists of string list * tformula
  | T_forall of string list * tformula

type query = { head : (string * string) list; body : tformula }

exception Parse_error of string
exception Normalize_error of string

let pfail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt
let nfail fmt = Printf.ksprintf (fun s -> raise (Normalize_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | LPAREN
  | RPAREN
  | PIPE
  | COMMA
  | DOT
  | IDENT of string
  | NUMBER of V.t
  | STRING of string
  | KW of string  (* in and or not exists forall *)
  | OP of string
  | EOF

let unicode_tokens =
  [
    ("\xe2\x88\x83", KW "exists");
    ("\xe2\x88\x80", KW "forall");
    ("\xe2\x88\x88", KW "in");
    ("\xe2\x88\xa7", KW "and");
    ("\xe2\x88\xa8", KW "or");
    ("\xc2\xac", KW "not");
    ("\xe2\x89\xa4", OP "<=");
    ("\xe2\x89\xa5", OP ">=");
    ("\xe2\x89\xa0", OP "<>");
  ]

let keywords = [ "in"; "and"; "or"; "not"; "exists"; "forall" ]

let tokenize input =
  let n = String.length input in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let pos = ref 0 in
  let peek i = if !pos + i < n then Some input.[!pos + i] else None in
  let starts_with s =
    let l = String.length s in
    !pos + l <= n && String.sub input !pos l = s
  in
  while !pos < n do
    match input.[!pos] with
    | ' ' | '\t' | '\n' | '\r' -> incr pos
    | '{' -> emit LBRACE; incr pos
    | '}' -> emit RBRACE; incr pos
    | '[' -> emit LBRACKET; incr pos
    | ']' -> emit RBRACKET; incr pos
    | '(' -> emit LPAREN; incr pos
    | ')' -> emit RPAREN; incr pos
    | '|' -> emit PIPE; incr pos
    | ',' -> emit COMMA; incr pos
    | '.' -> emit DOT; incr pos
    | '=' -> emit (OP "="); incr pos
    | '<' ->
        if peek 1 = Some '=' then (emit (OP "<="); pos := !pos + 2)
        else if peek 1 = Some '>' then (emit (OP "<>"); pos := !pos + 2)
        else (emit (OP "<"); incr pos)
    | '>' ->
        if peek 1 = Some '=' then (emit (OP ">="); pos := !pos + 2)
        else (emit (OP ">"); incr pos)
    | '\'' ->
        let start = !pos + 1 in
        let e = ref start in
        while !e < n && input.[!e] <> '\'' do incr e done;
        if !e >= n then pfail "unterminated string";
        emit (STRING (String.sub input start (!e - start)));
        pos := !e + 1
    | '0' .. '9' ->
        let start = !pos in
        while !pos < n && (match input.[!pos] with '0' .. '9' -> true | _ -> false) do
          incr pos
        done;
        let lit = String.sub input start (!pos - start) in
        (match int_of_string_opt lit with
        | Some i -> emit (NUMBER (V.Int i))
        | None -> pfail "integer literal %S out of range (at offset %d)" lit start)
    | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
        let start = !pos in
        while
          !pos < n
          && (match input.[!pos] with
             | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
             | _ -> false)
        do
          incr pos
        done;
        let w = String.sub input start (!pos - start) in
        if List.mem w keywords then emit (KW w) else emit (IDENT w)
    | c -> (
        match List.find_opt (fun (s, _) -> starts_with s) unicode_tokens with
        | Some (s, t) ->
            emit t;
            pos := !pos + String.length s
        | None -> pfail "unexpected character %C" c)
  done;
  List.rev (EOF :: !toks)

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type state = { toks : token array }

let tok st i = if i < Array.length st.toks then st.toks.(i) else EOF

let cmp_of = function
  | "=" -> A.Eq
  | "<>" -> A.Neq
  | "<" -> A.Lt
  | "<=" -> A.Leq
  | ">" -> A.Gt
  | ">=" -> A.Geq
  | op -> pfail "unknown operator %s" op

let parse_texpr st i =
  match (tok st i, tok st (i + 1), tok st (i + 2)) with
  | IDENT v, DOT, IDENT a -> (T_attr (v, a), i + 3)
  | NUMBER c, _, _ -> (T_const c, i + 1)
  | STRING s, _, _ -> (T_const (V.Str s), i + 1)
  | _ -> pfail "expected r.A, number, or string"

let rec parse_formula st i =
  let l, i = parse_conj st i in
  let rec loop acc i =
    match tok st i with
    | KW "or" ->
        let r, i = parse_conj st (i + 1) in
        loop (acc @ [ r ]) i
    | _ -> (acc, i)
  in
  let parts, i = loop [ l ] i in
  ((match parts with [ f ] -> f | fs -> T_or fs), i)

and parse_conj st i =
  let l, i = parse_unary st i in
  let rec loop acc i =
    match tok st i with
    | KW "and" ->
        let r, i = parse_unary st (i + 1) in
        loop (acc @ [ r ]) i
    | _ -> (acc, i)
  in
  let parts, i = loop [ l ] i in
  ((match parts with [ f ] -> f | fs -> T_and fs), i)

and parse_unary st i =
  match tok st i with
  | KW "not" ->
      let f, i = parse_unary st (i + 1) in
      (T_not f, i)
  | KW (("exists" | "forall") as q) ->
      (* exists v1, v2 [...]  or the sugared  exists v in R [...] *)
      let rec vars i acc pre =
        match tok st i with
        | IDENT v -> (
            match tok st (i + 1) with
            | KW "in" -> (
                match tok st (i + 2) with
                | IDENT rel -> (
                    let pre = pre @ [ T_member (v, rel) ] in
                    match tok st (i + 3) with
                    | COMMA -> vars (i + 4) (acc @ [ v ]) pre
                    | LBRACKET -> (i + 4, acc @ [ v ], pre)
                    | _ -> pfail "expected ',' or '[' after range")
                | _ -> pfail "expected relation after 'in'")
            | COMMA -> vars (i + 2) (acc @ [ v ]) pre
            | LBRACKET -> (i + 2, acc @ [ v ], pre)
            | _ -> pfail "expected ',' or '[' after quantified variable")
        | _ -> pfail "expected variable after quantifier"
      in
      let i, vs, pre = vars (i + 1) [] [] in
      let body, i = parse_formula st i in
      let i =
        match tok st i with
        | RBRACKET -> i + 1
        | _ -> pfail "expected ']'"
      in
      let body = if pre = [] then body else T_and (pre @ [ body ]) in
      ((if q = "exists" then T_exists (vs, body) else T_forall (vs, body)), i)
  | LPAREN ->
      let f, i = parse_formula st (i + 1) in
      let i =
        match tok st i with RPAREN -> i + 1 | _ -> pfail "expected ')'"
      in
      (f, i)
  | IDENT v when tok st (i + 1) = KW "in" -> (
      match tok st (i + 2) with
      | IDENT rel -> (T_member (v, rel), i + 3)
      | _ -> pfail "expected relation after 'in'")
  | _ -> (
      let l, i = parse_texpr st i in
      match tok st i with
      | OP op ->
          let r, i = parse_texpr st (i + 1) in
          (T_cmp (cmp_of op, l, r), i)
      | _ -> pfail "expected comparison operator")

let parse input =
  let st = { toks = Array.of_list (tokenize input) } in
  let i =
    match tok st 0 with LBRACE -> 1 | _ -> pfail "expected '{'"
  in
  let rec head i acc =
    match (tok st i, tok st (i + 1), tok st (i + 2)) with
    | IDENT v, DOT, IDENT a -> (
        match tok st (i + 3) with
        | COMMA -> head (i + 4) (acc @ [ (v, a) ])
        | PIPE -> (i + 4, acc @ [ (v, a) ])
        | _ -> pfail "expected ',' or '|' in head")
    | _ -> pfail "expected projection r.A in head"
  in
  let i, head_list = head i [] in
  let body, i = parse_formula st i in
  (match (tok st i, tok st (i + 1)) with
  | RBRACE, EOF -> ()
  | RBRACE, t -> pfail "trailing input after '}'%s" (ignore t; "")
  | _ -> pfail "expected '}'");
  { head = head_list; body }

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let texpr_to_string = function
  | T_attr (v, a) -> v ^ "." ^ a
  | T_const c -> V.to_string c

let rec tformula_to_string f =
  match f with
  | T_member (v, r) -> v ^ " \xe2\x88\x88 " ^ r
  | T_cmp (op, l, r) ->
      Printf.sprintf "%s %s %s" (texpr_to_string l) (A.cmp_op_to_string op)
        (texpr_to_string r)
  | T_and fs -> String.concat " \xe2\x88\xa7 " (List.map atom fs)
  | T_or fs -> String.concat " \xe2\x88\xa8 " (List.map atom fs)
  | T_not f -> "\xc2\xac" ^ atom f
  | T_exists (vs, f) ->
      "\xe2\x88\x83" ^ String.concat ", " vs ^ "[" ^ tformula_to_string f ^ "]"
  | T_forall (vs, f) ->
      "\xe2\x88\x80" ^ String.concat ", " vs ^ "[" ^ tformula_to_string f ^ "]"

and atom f =
  match f with
  | T_and _ | T_or _ -> "(" ^ tformula_to_string f ^ ")"
  | _ -> tformula_to_string f

let to_string q =
  "{"
  ^ String.concat ", " (List.map (fun (v, a) -> v ^ "." ^ a) q.head)
  ^ " | " ^ tformula_to_string q.body ^ "}"

(* ------------------------------------------------------------------ *)
(* Normalization (Section 2.1)                                         *)
(* ------------------------------------------------------------------ *)

(* step 0: ∀x[φ] → ¬∃x[¬φ], keeping each variable's range atom positive on
   the conjunctive spine of the ∃ so scope clarification can find it.
   Both ∀v∈R[φ] (range sugar, parsed as v∈R ∧ φ) and the textbook
   implication ∀v[¬(v∈R) ∨ φ] mean ¬∃v∈R[¬φ]; the blind ¬∃v[¬(v∈R ∧ φ)]
   buries the range under negation, where {!extract_membership} cannot
   reach it. Variables with no recognizable range keep the blind shape and
   fail later with the usual range error. *)
let rec eliminate_forall f =
  match f with
  | T_member _ | T_cmp _ -> f
  | T_and fs -> T_and (List.map eliminate_forall fs)
  | T_or fs -> T_or (List.map eliminate_forall fs)
  | T_not f -> T_not (eliminate_forall f)
  | T_exists (vs, f) -> T_exists (vs, eliminate_forall f)
  | T_forall (vs, f) ->
      let f = eliminate_forall f in
      let ranges, rest = forall_ranges vs f in
      T_not (T_exists (vs, T_and (ranges @ [ T_not rest ])))

(* split off one positive range atom per quantified variable: from the
   conjunctive spine (range sugar), or negated on a disjunctive spine (the
   implication form) *)
and forall_ranges vs f =
  match f with
  | T_member (v, _) when List.mem v vs -> ([ f ], T_and [])
  | T_and fs ->
      let ranges, rest =
        List.partition
          (function T_member (v, _) -> List.mem v vs | _ -> false)
          fs
      in
      (ranges, match rest with [ g ] -> g | gs -> T_and gs)
  | T_or fs ->
      let ranges, rest =
        List.partition
          (function T_not (T_member (v, _)) -> List.mem v vs | _ -> false)
          fs
      in
      ( List.map (function T_not m -> m | g -> g) ranges,
        match rest with [ g ] -> g | gs -> T_or gs )
  | _ -> ([], f)

(* step 1: clarify scopes — pull each quantified variable's membership atom
   out of the conjunctive spine of its scope *)
let extract_membership var f =
  let found = ref None in
  let rec strip f =
    match f with
    | T_member (v, r) when v = var && !found = None ->
        found := Some r;
        T_and []
    | T_and fs -> T_and (List.map strip fs)
    | f -> f
  in
  let f' = strip f in
  (!found, f')

let rec simplify = function
  | T_and fs -> (
      let fs =
        List.concat_map
          (fun f ->
            match simplify f with T_and gs -> gs | g -> [ g ])
          fs
      in
      match fs with [ f ] -> f | fs -> T_and fs)
  | T_or fs -> (
      match List.map simplify fs with [ f ] -> f | fs -> T_or fs)
  | T_not f -> T_not (simplify f)
  | T_exists (vs, f) -> T_exists (vs, simplify f)
  | T_forall (vs, f) -> T_forall (vs, simplify f)
  | f -> f

let texpr_to_term = function
  | T_attr (v, a) -> A.Attr (v, a)
  | T_const c -> A.Const c

(* step 2: translate, with strict heads *)
let rec tr_formula f : A.formula =
  match f with
  | T_member (v, _) ->
      nfail "membership atom for %S outside any quantifier scope" v
  | T_cmp (op, l, r) -> A.Pred (A.Cmp (op, texpr_to_term l, texpr_to_term r))
  | T_and fs -> A.And (List.map tr_formula fs)
  | T_or fs -> A.Or (List.map tr_formula fs)
  | T_not f -> A.Not (tr_formula f)
  | T_exists (vs, body) ->
      let bindings, body =
        List.fold_left
          (fun (bs, body) v ->
            match extract_membership v body with
            | Some rel, body' ->
                (bs @ [ { A.var = v; source = A.Base rel } ], body')
            | None, _ ->
                nfail
                  "quantified variable %S has no membership atom in its scope"
                  v)
          ([], body) vs
      in
      A.Exists
        {
          bindings;
          grouping = None;
          join = None;
          body = tr_formula (simplify body);
        }
  | T_forall _ -> assert false (* eliminated *)

let normalize ?(head_name = "Q") (q : query) : A.collection =
  let body = eliminate_forall q.body in
  (* the head's range variables: free variables projected in the head whose
     membership atoms sit on the outermost conjunctive spine *)
  let head_vars = List.sort_uniq compare (List.map fst q.head) in
  let bindings, body =
    List.fold_left
      (fun (bs, body) v ->
        match extract_membership v body with
        | Some rel, body' -> (bs @ [ { A.var = v; source = A.Base rel } ], body')
        | None, _ ->
            nfail "head range variable %S has no membership atom" v)
      ([], body) head_vars
  in
  (* head attribute names, deduplicated *)
  let used = Hashtbl.create 8 in
  let head_attrs =
    List.map
      (fun (_, a) ->
        let n = 1 + Option.value ~default:0 (Hashtbl.find_opt used a) in
        Hashtbl.replace used a n;
        if n = 1 then a else Printf.sprintf "%s%d" a n)
      q.head
  in
  let assignments =
    List.map2
      (fun (v, a) attr ->
        A.Pred (A.Cmp (A.Eq, A.Attr (head_name, attr), A.Attr (v, a))))
      q.head head_attrs
  in
  {
    A.head = { head_name; head_attrs };
    body =
      A.Exists
        {
          bindings;
          grouping = None;
          join = None;
          body =
            Arc_core.Canon.simplify_formula
              (A.And (assignments @ [ tr_formula (simplify body) ]));
        };
  }

let to_arc ?head_name input = normalize ?head_name (parse input)
