(** Resource budgets for query evaluation.

    A budget bounds the five resources the engine can otherwise consume
    without limit: wall-clock time, fixpoint iterations, rows materialized,
    scope bindings enumerated, and collection nesting depth. Every field is
    optional; {!unlimited} bounds nothing, {!default} reproduces the seed
    engine's single hard-coded guard (100k fixpoint iterations). Budgets are
    plain data — enforcement lives in {!Gov}. *)

type resource =
  | Wall_clock  (** elapsed evaluation time (the deadline) *)
  | Fixpoint_iterations  (** rounds of one least-fixpoint stratum *)
  | Rows  (** tuples materialized by collection heads, cumulative *)
  | Bindings  (** scope binding environments enumerated, cumulative *)
  | Depth  (** nesting depth of collection evaluations *)

val resource_to_string : resource -> string

type t = {
  timeout_ns : int64 option;  (** wall-clock budget, nanoseconds *)
  max_iterations : int option;  (** per-stratum fixpoint rounds *)
  max_rows : int option;  (** cumulative rows materialized *)
  max_bindings : int option;  (** cumulative scope bindings enumerated *)
  max_depth : int option;  (** nesting depth of collection evaluation *)
}

val unlimited : t
(** No limits at all (not even the fixpoint cap: a divergent recursive
    program will actually diverge). *)

val default : t
(** Seed-equivalent behavior: [max_iterations = Some 100_000], everything
    else unlimited. *)

val with_timeout_ms : int -> t -> t
(** [with_timeout_ms ms t] sets the wall-clock budget to [ms] milliseconds. *)

val limit : t -> resource -> int option
(** The configured limit for a resource ([Wall_clock] in milliseconds). *)

val is_unlimited : t -> bool
