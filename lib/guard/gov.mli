(** The resource governor: runtime enforcement of a {!Budget.t}.

    One governor is threaded through one evaluation. The engine probes it at
    the same operator boundaries the tracer instruments — collection entry,
    scope/join enumeration, grouping, fixpoint iterations — so a budget is
    honored within one operator step. Probes on a governor with no active
    limits are a single field test; the default governor (seed-equivalent
    100k fixpoint cap) activates nothing else.

    Enforcement policy is [on_limit]:
    - [`Fail] (default): crossing a limit raises
      {!Error.Guard_error} with [Budget_exceeded]; the engine converts it to
      a typed [Eval_error] carrying the collection context.
    - [`Truncate]: graceful degradation. Charging calls clip their row
      allowance, fixpoint loops stop early, deeper collections evaluate to
      empty — evaluation completes with a partial result (a subset of the
      full result for monotone programs) and {!report} says what tripped.

    Cancellation (via a {!Cancel.t}) always raises [Cancelled], regardless
    of [on_limit]. *)

type t

type event = { resource : Budget.resource; limit : int; used : int }

type report = {
  truncated : bool;
  events : event list;  (** one per tripped resource, first trip first *)
  rows : int;  (** rows materialized (counted only while limited) *)
  bindings : int;  (** bindings enumerated (counted only while limited) *)
  elapsed_ns : int64;
}

val make :
  ?clock:(unit -> int64) ->
  ?cancel:Cancel.t ->
  ?on_limit:[ `Fail | `Truncate ] ->
  Budget.t ->
  t
(** [clock] defaults to the process monotonic clock (nanoseconds); inject a
    fake clock for deterministic deadline tests. The deadline starts
    counting at [make]. *)

val default : unit -> t
(** Seed-equivalent: {!Budget.default}, [`Fail]. *)

val unlimited : unit -> t

val budget : t -> Budget.t
val on_limit : t -> [ `Fail | `Truncate ]

val active : t -> bool
(** [true] when any per-probe limit is configured (deadline, rows,
    bindings, depth, or a cancel token). Guard any work done only to feed a
    probe (e.g. [List.length] on a hot path) with this, exactly like
    [Obs.enabled]. The fixpoint cap alone does not make a governor
    active. *)

val tick : t -> unit
(** Deadline and cancellation probe. Raises on a crossed deadline in
    [`Fail] mode and on a cancelled token always; trips the wall-clock
    event in [`Truncate] mode. *)

val stopped : t -> bool
(** [true] once any limit tripped in [`Truncate] mode — enumerators use it
    to short-circuit residual work. Always [false] in [`Fail] mode. *)

val charge_rows : t -> int -> int
(** [charge_rows g n] accounts for [n] rows about to be materialized and
    returns how many of them may be kept (always [n] unless [max_rows] is
    set and crossed). *)

val charge_bindings : t -> int -> int
(** Same accounting for enumerated scope bindings ([max_bindings]). *)

val iteration_allowed : t -> int -> bool
(** [iteration_allowed g i] gates fixpoint round [i] (1-based, counted per
    stratum). [`Fail]: raises once [i] exceeds the budget. [`Truncate]:
    returns [false], leaving the partial fixpoint in place. *)

val enter_collection : t -> bool
(** Depth guard around a collection evaluation; [false] means "do not
    evaluate, substitute the empty relation" ([`Truncate] mode only).
    Balance every [true] return with {!leave_collection}. *)

val leave_collection : t -> unit

val report : t -> report
