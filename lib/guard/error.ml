type budget_exceeded = {
  resource : Budget.resource;
  limit : int;
  used : int;
}

type external_failure = {
  relation : string;
  attempts : int;
  cause : string;
}

type kind =
  | Unstratifiable of { name : string; dep : string }
  | Unbound_external of { relation : string; bound : string list }
  | Unbound_abstract of { relation : string; bound : string list }
  | Unknown_relation of string
  | Head_unassigned of { head : string; attr : string }
  | Budget_exceeded of budget_exceeded
  | Cancelled
  | External_failure of external_failure
  | Msg of string

type t = { kind : kind; context : string list }

exception Guard_error of t

let make ?(context = []) kind = { kind; context }
let in_collection name e = { e with context = name :: e.context }

let kind_to_string = function
  | Unstratifiable { name; dep } ->
      Printf.sprintf
        "unstratifiable recursion: %S depends on %S through negation or \
         aggregation"
        name dep
  | Unbound_external { relation; bound } ->
      Printf.sprintf
        "no access pattern of external relation %S accepts bound attributes \
         {%s}"
        relation
        (String.concat ", " bound)
  | Unbound_abstract { relation; bound } ->
      Printf.sprintf
        "abstract relation %S used without binding all of its attributes \
         (bound: {%s})"
        relation
        (String.concat ", " bound)
  | Unknown_relation name -> Printf.sprintf "unknown relation %S" name
  | Head_unassigned { head; attr } ->
      Printf.sprintf "head attribute %s.%s has no assignment predicate" head
        attr
  | Budget_exceeded { resource = Budget.Fixpoint_iterations; limit; used } ->
      (* keeps the seed's "fixpoint iteration diverged" greppable *)
      Printf.sprintf
        "fixpoint iteration diverged: iteration budget exceeded (limit %d, \
         used %d)"
        limit used
  | Budget_exceeded { resource; limit; used } ->
      let unit_ = match resource with Budget.Wall_clock -> "ms" | _ -> "" in
      Printf.sprintf "budget exceeded: %s (limit %d%s, used %d%s)"
        (Budget.resource_to_string resource)
        limit unit_ used unit_
  | Cancelled -> "evaluation cancelled"
  | External_failure { relation; attempts; cause } ->
      Printf.sprintf "external relation %S failed after %d attempt%s: %s"
        relation attempts
        (if attempts = 1 then "" else "s")
        cause
  | Msg s -> s

let to_string e =
  List.fold_right
    (fun name acc -> Printf.sprintf "in collection %S: %s" name acc)
    e.context (kind_to_string e.kind)
