type resource =
  | Wall_clock
  | Fixpoint_iterations
  | Rows
  | Bindings
  | Depth

let resource_to_string = function
  | Wall_clock -> "wall-clock deadline"
  | Fixpoint_iterations -> "fixpoint iterations"
  | Rows -> "rows materialized"
  | Bindings -> "scope bindings"
  | Depth -> "nesting depth"

type t = {
  timeout_ns : int64 option;
  max_iterations : int option;
  max_rows : int option;
  max_bindings : int option;
  max_depth : int option;
}

let unlimited =
  {
    timeout_ns = None;
    max_iterations = None;
    max_rows = None;
    max_bindings = None;
    max_depth = None;
  }

let default = { unlimited with max_iterations = Some 100_000 }

let with_timeout_ms ms t =
  { t with timeout_ns = Some (Int64.mul (Int64.of_int ms) 1_000_000L) }

let limit t = function
  | Wall_clock ->
      Option.map
        (fun ns -> Int64.to_int (Int64.div ns 1_000_000L))
        t.timeout_ns
  | Fixpoint_iterations -> t.max_iterations
  | Rows -> t.max_rows
  | Bindings -> t.max_bindings
  | Depth -> t.max_depth

let is_unlimited t = t = unlimited
