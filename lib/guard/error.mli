(** Typed evaluation errors.

    Replaces the engine's stringly [Eval_error of string]: every failure
    mode the engine can hit is a constructor, and the ["in collection %S"]
    attribution chain that used to be baked into the message string is a
    real [string list] (outermost collection first). {!to_string} renders
    exactly the messages the seed engine produced, so existing
    error-message expectations keep holding. *)

type budget_exceeded = {
  resource : Budget.resource;
  limit : int;  (** the configured limit ([Wall_clock]: milliseconds) *)
  used : int;  (** consumption at the moment the limit tripped *)
}

type external_failure = {
  relation : string;
  attempts : int;  (** completion attempts made, including retries *)
  cause : string;  (** message of the last underlying failure *)
}

type kind =
  | Unstratifiable of { name : string; dep : string }
      (** recursion through negation or aggregation *)
  | Unbound_external of { relation : string; bound : string list }
      (** no access pattern accepts the bound attribute set *)
  | Unbound_abstract of { relation : string; bound : string list }
      (** abstract relation used without all attributes bound *)
  | Unknown_relation of string
  | Head_unassigned of { head : string; attr : string }
  | Budget_exceeded of budget_exceeded
  | Cancelled
  | External_failure of external_failure
  | Msg of string
      (** residual failures (malformed terms, unbound variables, ...) *)

type t = {
  kind : kind;
  context : string list;
      (** enclosing collections, outermost first; rendered as the
          [in collection "N": ...] chain *)
}

exception Guard_error of t
(** Raised by {!Gov} and by retry-exhausted externals; the engine converts
    it into its own [Eval_error], adding collection context on the way
    out. *)

val make : ?context:string list -> kind -> t
val in_collection : string -> t -> t
(** Pushes a collection name onto the front of the context chain. *)

val kind_to_string : kind -> string
val to_string : t -> string
(** The full rendered message, identical to the seed engine's strings:
    each context entry contributes an [in collection "N": ] prefix. *)
