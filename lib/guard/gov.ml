type event = { resource : Budget.resource; limit : int; used : int }

type report = {
  truncated : bool;
  events : event list;
  rows : int;
  bindings : int;
  elapsed_ns : int64;
}

type t = {
  budget : Budget.t;
  on_limit : [ `Fail | `Truncate ];
  cancel : Cancel.t option;
  clock : unit -> int64;
  start_ns : int64;
  deadline_ns : int64 option;  (* absolute *)
  (* [active] gates every per-row/per-tick probe: false when only the
     fixpoint cap (checked once per iteration anyway) is configured, so the
     default governor costs the seed path nothing on hot loops. *)
  active : bool;
  mutable rows : int;
  mutable bindings : int;
  mutable depth : int;
  mutable tripped : event list;  (* latest first *)
}

let make ?clock ?cancel ?(on_limit = `Fail) (budget : Budget.t) =
  let clock =
    match clock with Some c -> c | None -> Monotonic_clock.now
  in
  let start_ns = clock () in
  {
    budget;
    on_limit;
    cancel;
    clock;
    start_ns;
    deadline_ns =
      Option.map (fun ns -> Int64.add start_ns ns) budget.Budget.timeout_ns;
    active =
      budget.Budget.timeout_ns <> None
      || budget.Budget.max_rows <> None
      || budget.Budget.max_bindings <> None
      || budget.Budget.max_depth <> None
      || cancel <> None;
    rows = 0;
    bindings = 0;
    depth = 0;
    tripped = [];
  }

let default () = make Budget.default
let unlimited () = make Budget.unlimited
let budget t = t.budget
let on_limit t = t.on_limit
let active t = t.active

let exceeded t resource ~limit ~used =
  match t.on_limit with
  | `Fail ->
      raise
        (Error.Guard_error
           (Error.make (Error.Budget_exceeded { resource; limit; used })))
  | `Truncate ->
      if not (List.exists (fun e -> e.resource = resource) t.tripped) then
        t.tripped <- { resource; limit; used } :: t.tripped

let stopped t = t.tripped <> []

let elapsed_ms t =
  Int64.to_int (Int64.div (Int64.sub (t.clock ()) t.start_ns) 1_000_000L)

let tick t =
  if t.active then begin
    (match t.cancel with
    | Some c when Cancel.cancelled c ->
        raise (Error.Guard_error (Error.make Error.Cancelled))
    | _ -> ());
    match t.deadline_ns with
    | Some d when t.clock () > d ->
        let limit =
          match Budget.limit t.budget Budget.Wall_clock with
          | Some ms -> ms
          | None -> 0
        in
        exceeded t Budget.Wall_clock ~limit ~used:(elapsed_ms t)
    | _ -> ()
  end

let charge t resource ~limit_opt ~counter n =
  if not t.active then n
  else begin
    let used0 = counter () in
    match limit_opt with
    | None -> n
    | Some limit ->
        let used = used0 + n in
        if used <= limit then n
        else begin
          exceeded t resource ~limit ~used;
          (* truncate mode: keep only what fits *)
          max 0 (limit - used0)
        end
  end

let charge_rows t n =
  let kept =
    charge t Budget.Rows ~limit_opt:t.budget.Budget.max_rows
      ~counter:(fun () -> t.rows)
      n
  in
  if t.active then t.rows <- t.rows + kept;
  kept

let charge_bindings t n =
  let kept =
    charge t Budget.Bindings ~limit_opt:t.budget.Budget.max_bindings
      ~counter:(fun () -> t.bindings)
      n
  in
  if t.active then t.bindings <- t.bindings + kept;
  kept

let iteration_allowed t i =
  match t.budget.Budget.max_iterations with
  | None -> true
  | Some limit ->
      if i <= limit then true
      else begin
        exceeded t Budget.Fixpoint_iterations ~limit ~used:i;
        false
      end

let enter_collection t =
  if not t.active then true
  else
    match t.budget.Budget.max_depth with
    | None ->
        t.depth <- t.depth + 1;
        true
    | Some limit ->
        if t.depth + 1 <= limit then begin
          t.depth <- t.depth + 1;
          true
        end
        else begin
          exceeded t Budget.Depth ~limit ~used:(t.depth + 1);
          false
        end

let leave_collection t = if t.active then t.depth <- max 0 (t.depth - 1)

let report t =
  {
    truncated = t.tripped <> [];
    events = List.rev t.tripped;
    rows = t.rows;
    bindings = t.bindings;
    elapsed_ns = Int64.sub (t.clock ()) t.start_ns;
  }
