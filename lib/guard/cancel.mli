(** Cooperative cancellation tokens.

    A token is shared between the caller (who may {!cancel} it, e.g. from a
    signal handler or another thread of control) and the evaluation engine,
    which polls it at operator boundaries and aborts with a typed
    [Cancelled] error within one operator step. *)

type t

val create : unit -> t
val cancel : t -> unit
(** Idempotent; once set the token never resets. *)

val cancelled : t -> bool
