(** Observability for the ARC engine: hierarchical trace spans with
    monotonic-clock timings and typed attributes.

    The engine threads a tracer through evaluation ({!Arc_engine.Eval});
    every instrumented operator opens a span, attaches counters (tuples
    scanned/emitted, join candidates vs. survivors, fixpoint deltas, ...)
    and closes it. A {!null} tracer makes every operation a constant-time
    no-op, so uninstrumented runs pay (essentially) nothing; a
    {!collector} builds an in-memory forest of spans that sinks
    ({!Sink.pretty}, {!Sink.jsonl}, {!Sink.chrome}) render afterwards. *)

(** Typed attribute values carried by spans. *)
type value = Int of int | Float of float | Str of string | Bool of bool

(** A finished (or in-flight) span. [duration_ns] is 0 while open;
    [children] are in execution order once the span is closed. *)
type span = {
  id : int;
  parent : int option;
  name : string;
  start_ns : int64;
  mutable duration_ns : int64;
  mutable attrs : (string * value) list;
  mutable children : span list;
}

(** Handle returned by {!enter}: [Dummy] under the null tracer. *)
type handle = Dummy | Live of span

type t

val null : t
(** The no-op tracer: every call below is a constant-time no-op. *)

val collector : ?clock:(unit -> int64) -> unit -> t
(** A collecting tracer. [clock] defaults to the process monotonic clock
    (nanoseconds); inject a fake clock for deterministic tests. *)

val enabled : t -> bool
(** [false] for {!null}. Guard any work done only to produce trace
    attributes (e.g. [List.length] on a hot path) with this. *)

val enter : ?attrs:(string * value) list -> t -> string -> handle
(** Opens a span as a child of the innermost open span. *)

val leave : t -> handle -> unit
(** Closes a span, recording its duration and attaching it to its parent
    (or to the root forest). Closing a span closes any still-open
    descendants first, so exceptional exits stay balanced. *)

val with_span :
  ?attrs:(string * value) list -> t -> string -> (handle -> 'a) -> 'a
(** [enter] / [leave] around a callback, exception-safe. *)

val set : handle -> string -> value -> unit
(** Sets (or replaces) an attribute on an open span. *)

val add : handle -> string -> int -> unit
(** Increments an integer attribute (missing or non-integer counts as 0). *)

val count : t -> string -> int -> unit
(** Increments an integer attribute on the innermost open span; no-op when
    no span is open or the tracer is {!null}. *)

val spans : t -> span list
(** The finished root spans, in execution order. *)

val attr_int : span -> string -> int option
val attr_str : span -> string -> string option

val find_spans : span list -> string -> span list
(** All spans (recursively) with the given name, preorder. *)

val counter_total : span list -> string -> int
(** Sum of an integer attribute over a whole forest. *)

(** Aggregated per-operator totals, for profile summaries. *)
type agg = {
  agg_name : string;
  calls : int;
  total_ns : int64;
  counters : (string * int) list;  (** summed integer attributes *)
}

val summary : span list -> agg list
(** One row per span name, in order of first appearance. [total_ns] sums
    every span of that name (nested same-name spans double-count). *)

val value_to_string : value -> string
