let duration_to_string ns =
  let f = Int64.to_float ns in
  if f >= 1e9 then Printf.sprintf "%.2f s" (f /. 1e9)
  else if f >= 1e6 then Printf.sprintf "%.2f ms" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.2f µs" (f /. 1e3)
  else Printf.sprintf "%Ld ns" ns

let attrs_to_string attrs =
  match attrs with
  | [] -> ""
  | _ ->
      "  {"
      ^ String.concat ", "
          (List.map
             (fun (k, v) -> k ^ "=" ^ Obs.value_to_string v)
             attrs)
      ^ "}"

let pretty roots =
  let buf = Buffer.create 1024 in
  let rec walk prefix is_last (s : Obs.span) =
    let connector =
      if prefix = "" && is_last = None then ""
      else if is_last = Some true then "└─ "
      else "├─ "
    in
    Buffer.add_string buf
      (Printf.sprintf "%s%s%s  [%s]%s\n" prefix connector s.Obs.name
         (duration_to_string s.Obs.duration_ns)
         (attrs_to_string s.Obs.attrs));
    let child_prefix =
      if prefix = "" && is_last = None then ""
      else prefix ^ if is_last = Some true then "   " else "│  "
    in
    let rec children = function
      | [] -> ()
      | [ c ] -> walk child_prefix (Some true) c
      | c :: rest ->
          walk child_prefix (Some false) c;
          children rest
    in
    children s.Obs.children
  in
  List.iter (fun s -> walk "" None s) roots;
  Buffer.contents buf

let value_to_json = function
  | Obs.Int i -> Json.Int i
  | Obs.Float f -> Json.Float f
  | Obs.Str s -> Json.Str s
  | Obs.Bool b -> Json.Bool b

let span_to_json (s : Obs.span) =
  Json.Obj
    [
      ("id", Json.Int s.Obs.id);
      ( "parent",
        match s.Obs.parent with None -> Json.Null | Some p -> Json.Int p );
      ("name", Json.Str s.Obs.name);
      ("start_ns", Json.Int (Int64.to_int s.Obs.start_ns));
      ("dur_ns", Json.Int (Int64.to_int s.Obs.duration_ns));
      ( "attrs",
        Json.Obj (List.map (fun (k, v) -> (k, value_to_json v)) s.Obs.attrs) );
    ]

let jsonl roots =
  let buf = Buffer.create 1024 in
  let rec walk (s : Obs.span) =
    Buffer.add_string buf (Json.to_string (span_to_json s));
    Buffer.add_char buf '\n';
    List.iter walk s.Obs.children
  in
  List.iter walk roots;
  Buffer.contents buf

let chrome roots =
  let base =
    List.fold_left
      (fun acc (s : Obs.span) -> min acc s.Obs.start_ns)
      Int64.max_int roots
  in
  let base = if base = Int64.max_int then 0L else base in
  let us ns = Int64.to_float ns /. 1e3 in
  let events = ref [] in
  let rec walk (s : Obs.span) =
    events :=
      Json.Obj
        [
          ("name", Json.Str s.Obs.name);
          ("ph", Json.Str "X");
          ("ts", Json.Float (us (Int64.sub s.Obs.start_ns base)));
          ("dur", Json.Float (us s.Obs.duration_ns));
          ("pid", Json.Int 1);
          ("tid", Json.Int 1);
          ( "args",
            Json.Obj (List.map (fun (k, v) -> (k, value_to_json v)) s.Obs.attrs)
          );
        ]
      :: !events;
    List.iter walk s.Obs.children
  in
  List.iter walk roots;
  Json.to_string (Json.List (List.rev !events))
