(** A minimal JSON value type with a printer and a strict parser.

    Kept deliberately tiny — enough for the trace sinks, the bench
    harness's [BENCH_*.json] output, and round-trip validation in tests
    and CI — so the repo needs no external JSON dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering, with full string escaping. *)

val pretty : t -> string
(** 2-space indented rendering. *)

val parse : string -> (t, string) result
(** Strict parse of a complete JSON document (trailing whitespace ok). *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] otherwise. *)

val to_int : t -> int option
(** [Int] payload (not [Float]). *)
