(** Render a finished span forest ({!Obs.spans}).

    Three sinks, per the EXPLAIN ANALYZE use case:
    - {!pretty}: human-readable span tree with durations and attributes;
    - {!jsonl}: one flat JSON object per span per line (machine-readable,
      streaming-friendly; spans reference their parent by id);
    - {!chrome}: Chrome trace-event format (load in [chrome://tracing] or
      Perfetto).

    The fourth "sink" — the no-op — is {!Obs.null}: with it no spans exist
    to render, and tracing costs nothing. *)

val pretty : Obs.span list -> string

val jsonl : Obs.span list -> string
(** Each line is an object
    [{"id", "parent", "name", "start_ns", "dur_ns", "attrs"}], emitted in
    preorder (parents before children). [parent] is [null] for roots. *)

val chrome : Obs.span list -> string
(** A complete JSON array of ["ph": "X"] duration events; timestamps are
    microseconds relative to the earliest span. *)

val duration_to_string : int64 -> string
(** Human units: ns, µs, ms or s. *)
