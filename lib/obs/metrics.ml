let now_ns = Monotonic_clock.now

type labels = (string * string) list

(* log2 buckets: upper bounds 2^0 .. 2^40, then +Inf. 2^40 ns ≈ 18 min,
   2^40 rows is far beyond anything the engine materializes. *)
let bounds = Array.init 41 (fun i -> Float.of_int (1 lsl i))

type hist = {
  counts : int array;  (* length bounds + 1; last is the +Inf bucket *)
  mutable sum : float;
  mutable total : int;
}

type cell = Counter of int ref | Gauge of float ref | Hist of hist

type kind = K_counter | K_gauge | K_histogram

type family = {
  kind : kind;
  samples : (labels, cell) Hashtbl.t;
  mutable order : labels list;  (* insertion order, reversed *)
}

type t = {
  families : (string, family) Hashtbl.t;
  mutable names : string list;  (* insertion order, reversed *)
}

let create () = { families = Hashtbl.create 16; names = [] }

let kind_to_string = function
  | K_counter -> "counter"
  | K_gauge -> "gauge"
  | K_histogram -> "histogram"

let canon labels = List.sort compare labels

let family t kind name =
  match Hashtbl.find_opt t.families name with
  | Some f ->
      if f.kind <> kind then
        invalid_arg
          (Printf.sprintf "Metrics: %s is a %s, not a %s" name
             (kind_to_string f.kind) (kind_to_string kind));
      f
  | None ->
      let f = { kind; samples = Hashtbl.create 4; order = [] } in
      Hashtbl.replace t.families name f;
      t.names <- name :: t.names;
      f

let cell t kind name labels =
  let f = family t kind name in
  let labels = canon labels in
  match Hashtbl.find_opt f.samples labels with
  | Some c -> c
  | None ->
      let c =
        match kind with
        | K_counter -> Counter (ref 0)
        | K_gauge -> Gauge (ref 0.0)
        | K_histogram ->
            Hist
              {
                counts = Array.make (Array.length bounds + 1) 0;
                sum = 0.0;
                total = 0;
              }
      in
      Hashtbl.replace f.samples labels c;
      f.order <- labels :: f.order;
      c

let inc t ?(labels = []) ?(by = 1) name =
  if by < 0 then invalid_arg "Metrics.inc: counters only go up";
  match cell t K_counter name labels with
  | Counter r -> r := !r + by
  | _ -> assert false

let set_gauge t ?(labels = []) name v =
  match cell t K_gauge name labels with
  | Gauge r -> r := v
  | _ -> assert false

let bucket_index v =
  let n = Array.length bounds in
  let rec go i = if i >= n then n else if v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe t ?(labels = []) name v =
  match cell t K_histogram name labels with
  | Hist h ->
      h.counts.(bucket_index v) <- h.counts.(bucket_index v) + 1;
      h.sum <- h.sum +. v;
      h.total <- h.total + 1
  | _ -> assert false

(* --- readback ------------------------------------------------------- *)

let find t name labels =
  match Hashtbl.find_opt t.families name with
  | None -> None
  | Some f -> Hashtbl.find_opt f.samples (canon labels)

let counter_value t ?(labels = []) name =
  match find t name labels with Some (Counter r) -> !r | _ -> 0

let gauge_value t ?(labels = []) name =
  match find t name labels with Some (Gauge r) -> Some !r | _ -> None

let histogram_count t ?(labels = []) name =
  match find t name labels with Some (Hist h) -> h.total | _ -> 0

let histogram_sum t ?(labels = []) name =
  match find t name labels with Some (Hist h) -> h.sum | _ -> 0.0

let quantile t ?(labels = []) name q =
  match find t name labels with
  | Some (Hist h) when h.total > 0 ->
      let target = q *. Float.of_int h.total in
      let cum = ref 0 and res = ref infinity and found = ref false in
      Array.iteri
        (fun i c ->
          cum := !cum + c;
          if (not !found) && Float.of_int !cum >= target then begin
            found := true;
            res := (if i < Array.length bounds then bounds.(i) else infinity)
          end)
        h.counts;
      Some !res
  | _ -> None

(* --- expositions ---------------------------------------------------- *)

let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let labels_to_string = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v))
             labels)
      ^ "}"

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let le_string b = if b = infinity then "+Inf" else float_repr b

(* iterate families and series in insertion order *)
let iter_families t f = List.iter (fun n -> f n (Hashtbl.find t.families n)) (List.rev t.names)
let iter_series fam f =
  List.iter (fun ls -> f ls (Hashtbl.find fam.samples ls)) (List.rev fam.order)

let to_prometheus t =
  let buf = Buffer.create 1024 in
  iter_families t (fun name fam ->
      Buffer.add_string buf
        (Printf.sprintf "# TYPE %s %s\n" name (kind_to_string fam.kind));
      iter_series fam (fun labels c ->
          match c with
          | Counter r ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s %d\n" name (labels_to_string labels) !r)
          | Gauge r ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s %s\n" name (labels_to_string labels)
                   (float_repr !r))
          | Hist h ->
              let cum = ref 0 in
              Array.iteri
                (fun i c ->
                  cum := !cum + c;
                  let le =
                    if i < Array.length bounds then bounds.(i) else infinity
                  in
                  (* only emit buckets that carry information: nonempty, or
                     the terminal +Inf bucket *)
                  if c > 0 || le = infinity then
                    Buffer.add_string buf
                      (Printf.sprintf "%s_bucket%s %d\n" name
                         (labels_to_string (labels @ [ ("le", le_string le) ]))
                         !cum))
                h.counts;
              Buffer.add_string buf
                (Printf.sprintf "%s_sum%s %s\n" name (labels_to_string labels)
                   (float_repr h.sum));
              Buffer.add_string buf
                (Printf.sprintf "%s_count%s %d\n" name
                   (labels_to_string labels) h.total)));
  Buffer.contents buf

let to_json t =
  let fams = ref [] in
  iter_families t (fun name fam ->
      let samples = ref [] in
      iter_series fam (fun labels c ->
          let labels_json =
            Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)
          in
          let payload =
            match c with
            | Counter r -> [ ("value", Json.Int !r) ]
            | Gauge r -> [ ("value", Json.Float !r) ]
            | Hist h ->
                let cum = ref 0 in
                let buckets =
                  List.filteri
                    (fun _ b -> b <> Json.Null)
                    (Array.to_list
                       (Array.mapi
                          (fun i c ->
                            cum := !cum + c;
                            let le =
                              if i < Array.length bounds then bounds.(i)
                              else infinity
                            in
                            if c > 0 || le = infinity then
                              Json.Obj
                                [
                                  ("le", Json.Str (le_string le));
                                  ("count", Json.Int !cum);
                                ]
                            else Json.Null)
                          h.counts))
                in
                [
                  ("count", Json.Int h.total);
                  ("sum", Json.Float h.sum);
                  ("buckets", Json.List buckets);
                ]
          in
          samples :=
            Json.Obj (("labels", labels_json) :: payload) :: !samples);
      fams :=
        ( name,
          Json.Obj
            [
              ("type", Json.Str (kind_to_string fam.kind));
              ("samples", Json.List (List.rev !samples));
            ] )
        :: !fams);
  Json.Obj (List.rev !fams)

(* --- human summary -------------------------------------------------- *)

let ns_to_string f =
  if f >= 1e9 then Printf.sprintf "%.2fs" (f /. 1e9)
  else if f >= 1e6 then Printf.sprintf "%.2fms" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.2fµs" (f /. 1e3)
  else Printf.sprintf "%.0fns" f

let contains_ns name =
  let needle = "_ns" in
  let nl = String.length needle and hl = String.length name in
  let rec at k = k + nl <= hl && (String.sub name k nl = needle || at (k + 1)) in
  at 0

let render_value name f =
  if contains_ns name then ns_to_string f else float_repr f

let summary t =
  let buf = Buffer.create 1024 in
  iter_families t (fun name fam ->
      iter_series fam (fun labels c ->
          let series = name ^ labels_to_string labels in
          match c with
          | Counter r ->
              Buffer.add_string buf (Printf.sprintf "%-64s %s\n" series
                   (render_value name (Float.of_int !r)))
          | Gauge r ->
              Buffer.add_string buf
                (Printf.sprintf "%-64s %s\n" series (render_value name !r))
          | Hist h ->
              let q p =
                match quantile t ~labels name p with
                | Some b -> render_value name b
                | None -> "n/a"
              in
              Buffer.add_string buf
                (Printf.sprintf
                   "%-64s count=%d sum=%s p50<=%s p90<=%s max<=%s\n" series
                   h.total
                   (render_value name h.sum)
                   (q 0.5) (q 0.9) (q 1.0))));
  Buffer.contents buf
