type value = Int of int | Float of float | Str of string | Bool of bool

type span = {
  id : int;
  parent : int option;
  name : string;
  start_ns : int64;
  mutable duration_ns : int64;
  mutable attrs : (string * value) list;
  mutable children : span list;
}

type handle = Dummy | Live of span

type state = {
  clock : unit -> int64;
  mutable next_id : int;
  mutable stack : span list;  (* open spans, innermost first *)
  mutable finished : span list;  (* closed roots, reversed *)
}

type t = Null | Active of state

let null = Null

let collector ?(clock = Monotonic_clock.now) () =
  Active { clock; next_id = 0; stack = []; finished = [] }

let enabled = function Null -> false | Active _ -> true

let enter ?(attrs = []) t name =
  match t with
  | Null -> Dummy
  | Active st ->
      let parent = match st.stack with [] -> None | s :: _ -> Some s.id in
      let s =
        {
          id = st.next_id;
          parent;
          name;
          start_ns = st.clock ();
          duration_ns = 0L;
          attrs;
          children = [];
        }
      in
      st.next_id <- st.next_id + 1;
      st.stack <- s :: st.stack;
      Live s

let close_one st s =
  if s.duration_ns = 0L then
    s.duration_ns <- Int64.sub (st.clock ()) s.start_ns;
  s.children <- List.rev s.children;
  match st.stack with
  | parent :: _ -> parent.children <- s :: parent.children
  | [] -> st.finished <- s :: st.finished

let leave t h =
  match (t, h) with
  | Null, _ | _, Dummy -> ()
  | Active st, Live s ->
      if List.memq s st.stack then begin
        (* close still-open descendants first, so exceptional exits from
           inner spans leave the stack balanced *)
        let rec pop () =
          match st.stack with
          | [] -> ()
          | top :: rest ->
              st.stack <- rest;
              close_one st top;
              if top != s then pop ()
        in
        pop ()
      end

let with_span ?attrs t name f =
  match t with
  | Null -> f Dummy
  | Active _ ->
      let h = enter ?attrs t name in
      Fun.protect ~finally:(fun () -> leave t h) (fun () -> f h)

let set h k v =
  match h with
  | Dummy -> ()
  | Live s ->
      if List.mem_assoc k s.attrs then
        s.attrs <-
          List.map (fun (k', v') -> if k' = k then (k, v) else (k', v')) s.attrs
      else s.attrs <- s.attrs @ [ (k, v) ]

let add h k n =
  match h with
  | Dummy -> ()
  | Live s ->
      let cur =
        match List.assoc_opt k s.attrs with Some (Int i) -> i | _ -> 0
      in
      set h k (Int (cur + n))

let count t k n =
  match t with
  | Null -> ()
  | Active st -> (
      match st.stack with [] -> () | s :: _ -> add (Live s) k n)

let spans = function Null -> [] | Active st -> List.rev st.finished

let attr_int s k =
  match List.assoc_opt k s.attrs with Some (Int i) -> Some i | _ -> None

let attr_str s k =
  match List.assoc_opt k s.attrs with Some (Str v) -> Some v | _ -> None

let rec fold_spans f acc roots =
  List.fold_left (fun acc s -> fold_spans f (f acc s) s.children) acc roots

let find_spans roots name =
  List.rev
    (fold_spans (fun acc s -> if s.name = name then s :: acc else acc) [] roots)

let counter_total roots k =
  fold_spans
    (fun acc s -> match attr_int s k with Some i -> acc + i | None -> acc)
    0 roots

type agg = {
  agg_name : string;
  calls : int;
  total_ns : int64;
  counters : (string * int) list;
}

let summary roots =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  fold_spans
    (fun () s ->
      let row =
        match Hashtbl.find_opt tbl s.name with
        | Some row -> row
        | None ->
            order := s.name :: !order;
            let row =
              { agg_name = s.name; calls = 0; total_ns = 0L; counters = [] }
            in
            Hashtbl.replace tbl s.name row;
            row
      in
      let counters =
        List.fold_left
          (fun cs (k, v) ->
            match v with
            | Int i -> (
                match List.assoc_opt k cs with
                | Some j ->
                    List.map
                      (fun (k', v') -> if k' = k then (k, i + j) else (k', v'))
                      cs
                | None -> cs @ [ (k, i) ])
            | _ -> cs)
          row.counters s.attrs
      in
      Hashtbl.replace tbl s.name
        {
          row with
          calls = row.calls + 1;
          total_ns = Int64.add row.total_ns s.duration_ns;
          counters;
        })
    () roots;
  List.rev_map (fun n -> Hashtbl.find tbl n) !order

let value_to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s
  | Bool b -> string_of_bool b
