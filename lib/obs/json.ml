type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ------------------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 || Char.code c = 0x7F ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c ->
          (* bytes >= 0x80 are passed through untouched: strings are
             treated as UTF-8 and multi-byte sequences must survive
             verbatim for [parse (to_string j) = Ok j] to hold *)
          Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write buf indent level v =
  let pad n = String.make (2 * n) ' ' in
  let nl sep = if indent then sep ^ "\n" else sep in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf (nl "[");
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf (nl ",");
          if indent then Buffer.add_string buf (pad (level + 1));
          write buf indent (level + 1) item)
        items;
      Buffer.add_string buf (nl "");
      if indent then Buffer.add_string buf (pad level);
      Buffer.add_string buf "]"
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf (nl "{");
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf (nl ",");
          if indent then Buffer.add_string buf (pad (level + 1));
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf (if indent then "\": " else "\":");
          write buf indent (level + 1) item)
        fields;
      Buffer.add_string buf (nl "");
      if indent then Buffer.add_string buf (pad level);
      Buffer.add_string buf "}"

let render ~indent v =
  let buf = Buffer.create 256 in
  write buf indent 0 v;
  Buffer.contents buf

let to_string v = render ~indent:false v
let pretty v = render ~indent:true v

(* --- parsing -------------------------------------------------------- *)

exception Parse_fail of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail_at msg = raise (Parse_fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail_at (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail_at (Printf.sprintf "expected %S" word)
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail_at "bad \\u escape"
  in
  let read_hex4 () =
    if !pos + 4 > n then fail_at "truncated \\u escape"
    else begin
      let code =
        (hex_digit s.[!pos] lsl 12)
        lor (hex_digit s.[!pos + 1] lsl 8)
        lor (hex_digit s.[!pos + 2] lsl 4)
        lor hex_digit s.[!pos + 3]
      in
      pos := !pos + 4;
      code
    end
  in
  let add_utf8 buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail_at "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
            if !pos >= n then fail_at "unterminated escape"
            else
              let e = s.[!pos] in
              advance ();
              match e with
              | '"' | '\\' | '/' ->
                  Buffer.add_char buf e;
                  loop ()
              | 'n' ->
                  Buffer.add_char buf '\n';
                  loop ()
              | 't' ->
                  Buffer.add_char buf '\t';
                  loop ()
              | 'r' ->
                  Buffer.add_char buf '\r';
                  loop ()
              | 'b' ->
                  Buffer.add_char buf '\b';
                  loop ()
              | 'f' ->
                  Buffer.add_char buf '\012';
                  loop ()
              | 'u' ->
                  let code = read_hex4 () in
                  let code =
                    (* surrogate pair: a high surrogate must be followed
                       by an escaped low surrogate, together encoding one
                       astral code point *)
                    if code >= 0xD800 && code <= 0xDBFF then begin
                      if
                        !pos + 1 < n
                        && s.[!pos] = '\\'
                        && s.[!pos + 1] = 'u'
                      then begin
                        pos := !pos + 2;
                        let low = read_hex4 () in
                        if low >= 0xDC00 && low <= 0xDFFF then
                          0x10000
                          + ((code - 0xD800) lsl 10)
                          + (low - 0xDC00)
                        else fail_at "unpaired high surrogate"
                      end
                      else fail_at "unpaired high surrogate"
                    end
                    else if code >= 0xDC00 && code <= 0xDFFF then
                      fail_at "unpaired low surrogate"
                    else code
                  in
                  add_utf8 buf code;
                  loop ()
              | _ -> fail_at "bad escape")
        | c ->
            Buffer.add_char buf c;
            loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail_at (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail_at "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail_at "expected ',' or ']'"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let f = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (f :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev (f :: acc))
            | _ -> fail_at "expected ',' or '}'"
          in
          fields []
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail_at "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_fail msg -> Error msg

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_int = function Int i -> Some i | _ -> None
