(** A process-local metrics registry: named counters, gauges, and
    log-scaled histograms, each keyed by a (sorted) label set, with a
    Prometheus-style text exposition and a JSON exposition built on
    {!Json}.

    The registry complements the span tracer ({!Obs}): spans answer
    "where did this one run spend its time", the registry accumulates
    "how much, how many, how distributed" across runs — per-operator
    totals for [arc eval --profile], per-plan-node actuals for
    [arc analyze], and campaign counters for [arc fuzz] / [arc chaos]
    ([--metrics-out]).

    Families are registered implicitly on first use; using one name with
    two different instrument kinds raises [Invalid_argument]. Label
    lists are canonicalized by sorting, so label order never
    distinguishes two series. *)

type t

val create : unit -> t

val now_ns : unit -> int64
(** The monotonic clock behind span timings, exposed so instrumentation
    outside [lib/obs] (the plan executor, the bench harness) measures
    with the same clock. *)

(** {1 Instruments} *)

val inc : t -> ?labels:(string * string) list -> ?by:int -> string -> unit
(** Increments a counter ([by] defaults to 1; negative increments raise
    [Invalid_argument] — counters only go up). *)

val set_gauge : t -> ?labels:(string * string) list -> string -> float -> unit
(** Sets a gauge to an arbitrary value. *)

val observe : t -> ?labels:(string * string) list -> string -> float -> unit
(** Records one observation into a histogram with log2-scaled buckets
    (upper bounds 1, 2, 4, … 2^40, +Inf) — suitable for latencies in
    nanoseconds and row counts alike. *)

(** {1 Readback (tests and reports)} *)

val counter_value : t -> ?labels:(string * string) list -> string -> int
(** 0 when the series does not exist. *)

val gauge_value : t -> ?labels:(string * string) list -> string -> float option

val histogram_count : t -> ?labels:(string * string) list -> string -> int
val histogram_sum : t -> ?labels:(string * string) list -> string -> float

val quantile :
  t -> ?labels:(string * string) list -> string -> float -> float option
(** [quantile t name q] is an upper bound for the [q]-quantile (0 ≤ q ≤ 1)
    of a histogram series: the smallest bucket bound whose cumulative
    count reaches [q]·total. [None] for an empty or unknown series;
    [infinity] when the quantile falls in the +Inf bucket. *)

(** {1 Expositions} *)

val to_prometheus : t -> string
(** Prometheus text format: [# TYPE] headers, one
    [name{label="value"} v] line per series, histogram series expanded
    into cumulative [_bucket{le=…}] lines plus [_sum] / [_count]. *)

val to_json : t -> Json.t
(** JSON exposition: an object mapping family name to
    [{"type": …, "samples": [{"labels": …, …payload…}]}]. Histogram
    buckets are cumulative, mirroring the Prometheus exposition. *)

val summary : t -> string
(** Human-readable rendering: counters and gauges as single lines,
    histograms as [count / sum / p50 / p90 / max] digests. Values of
    families whose name mentions [_ns] are printed as durations. *)
