open Arc_core.Ast

(* Each pass is a pure, named [coll_plan -> coll_plan] function so that
   `arc explain` can report which rewrites fired. Passes only restructure
   the enumeration; the per-row semantics (term/predicate evaluation,
   resolution, aggregation) are untouched, which is what the differential
   and property tests check. *)
type pass = { name : string; transform : env -> Ir.coll_plan -> Ir.coll_plan }

and env = Lower.env

(* ------------------------------------------------------------------ *)
(* Shared traversal: apply [f] to every pipeline rooted in a plan,      *)
(* including sub-plans of nested collections and semi-join subtrees.    *)
(* ------------------------------------------------------------------ *)

let rec map_pipelines (f : Ir.t -> Ir.t) (p : Ir.coll_plan) : Ir.coll_plan =
  match p with
  | Fallback _ -> p
  | Union u ->
      Union
        {
          u with
          disjuncts =
            List.map
              (fun d ->
                match d with
                | Ir.Project pr ->
                    Ir.Project { pr with input = f (map_nested f pr.input) }
                | Ir.Aggregate ag ->
                    Ir.Aggregate { ag with input = f (map_nested f ag.input) })
              u.disjuncts;
        }

and map_nested f (t : Ir.t) : Ir.t =
  match t with
  | One | Scan _ -> t
  | Subquery s -> Subquery { s with plan = map_pipelines f s.plan }
  | Lateral l ->
      Lateral
        { l with input = map_nested f l.input; plan = map_pipelines f l.plan }
  | Product p ->
      Product { left = map_nested f p.left; right = map_nested f p.right }
  | Hash_join j ->
      Hash_join
        { j with left = map_nested f j.left; right = map_nested f j.right }
  | Filter fl -> Filter { fl with input = map_nested f fl.input }
  | Residual r -> Residual { r with input = map_nested f r.input }
  | Semi s ->
      Semi
        { s with input = map_nested f s.input; sub = f (map_nested f s.sub) }
  | Resolve r -> Resolve { r with input = map_nested f r.input }
  | Prune p -> Prune { p with input = map_nested f p.input }
  (* each append branch is an independent pipeline region *)
  | Append ts -> Append (List.map (fun t -> f (map_nested f t)) ts)

let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

(* ------------------------------------------------------------------ *)
(* Pass 1: predicate pushdown                                          *)
(* ------------------------------------------------------------------ *)

(* Sink a predicate as deep as its variable set allows: into a scan's
   filter list when it touches a single scope variable, below resolves and
   semi-joins it does not depend on, down the covering side of a product.
   [rv] is the predicate's variable set restricted to the variables bound
   within the tree it is being pushed into. *)
let filter_above t pd =
  match t with
  | Ir.Filter f -> Ir.Filter { f with preds = f.preds @ [ pd ] }
  | _ -> Ir.Filter { input = t; preds = [ pd ] }

let rec sink rv pd (t : Ir.t) : Ir.t =
  match t with
  | Scan s when subset rv [ s.var ] ->
      Scan { s with filters = s.filters @ [ pd ] }
  | Product { left; right } ->
      if subset rv (Ir.bound_vars left) then
        Product { left = sink rv pd left; right }
      else if subset rv (Ir.bound_vars right) then
        Product { left; right = sink rv pd right }
      else filter_above t pd
  | Hash_join j ->
      if subset rv (Ir.bound_vars j.left) then
        Hash_join { j with left = sink rv pd j.left }
      else if subset rv (Ir.bound_vars j.right) then
        Hash_join { j with right = sink rv pd j.right }
      else filter_above t pd
  | Filter f -> Filter { f with input = sink rv pd f.input }
  | Semi s -> Semi { s with input = sink rv pd s.input }
  | Resolve r when not (List.mem r.binding.var rv) ->
      Resolve { r with input = sink rv pd r.input }
  | Lateral l when not (List.mem l.var rv) ->
      Lateral { l with input = sink rv pd l.input }
  (* a filter distributes over a bag union: push into every branch *)
  | Append ts -> Append (List.map (sink rv pd) ts)
  | _ -> filter_above t pd

let pushdown_pipeline (t : Ir.t) : Ir.t =
  let rec go t =
    match t with
    | Ir.Residual { input; conjs } ->
        let input = go input in
        let pushable, rest =
          List.partition
            (fun f ->
              match f with
              | Pred p -> not (pred_has_agg p)
              | _ -> false)
            conjs
        in
        let scope_vars = Ir.bound_vars input in
        let input =
          List.fold_left
            (fun acc f ->
              match f with
              | Pred p ->
                  let rv =
                    List.filter
                      (fun v -> List.mem v scope_vars)
                      (Ir.pred_ref_vars p)
                  in
                  sink rv p acc
              | _ -> acc)
            input pushable
        in
        if rest = [] then input else Residual { input; conjs = rest }
    | Ir.Filter { input; preds } ->
        let input = go input in
        let scope_vars = Ir.bound_vars input in
        List.fold_left
          (fun acc p ->
            let rv =
              List.filter (fun v -> List.mem v scope_vars) (Ir.pred_ref_vars p)
            in
            sink rv p acc)
          input preds
    | Ir.Resolve r -> Resolve { r with input = go r.input }
    | Ir.Semi s -> Semi { s with input = go s.input }
    | t -> t
  in
  go t

(* With statistics, order each scan's filter list by ascending estimated
   selectivity: the most selective predicate runs first, so later (more
   expensive) predicates see fewer rows. Predicate evaluation is pure and
   conjunction is commutative under both null logics, so only cost
   changes. Without statistics the order is untouched. *)
let order_scan_filters (env : env) (t : Ir.t) : Ir.t =
  if env.Lower.stats = [] then t
  else
    let sort_filters var rel filters =
      let smap = [ (var, rel) ] in
      let keyed =
        List.mapi
          (fun i p ->
            let sel =
              match Card.pred_sel env.Lower.stats smap p with
              | Some (f, _) -> f
              | None -> 0.5
            in
            ((sel, i), p))
          filters
      in
      List.map snd (List.stable_sort (fun (a, _) (b, _) -> compare a b) keyed)
    in
    let rec go t =
      match t with
      | Ir.One -> t
      | Ir.Scan s when List.length s.filters > 1 ->
          Ir.Scan { s with filters = sort_filters s.var s.rel s.filters }
      | Ir.Scan _ -> t
      | Ir.Subquery s -> Ir.Subquery { s with plan = map_pipelines go s.plan }
      | Ir.Lateral l ->
          Ir.Lateral
            { l with input = go l.input; plan = map_pipelines go l.plan }
      | Ir.Product p -> Ir.Product { left = go p.left; right = go p.right }
      | Ir.Hash_join j ->
          Ir.Hash_join { j with left = go j.left; right = go j.right }
      | Ir.Filter f -> Ir.Filter { f with input = go f.input }
      | Ir.Residual r -> Ir.Residual { r with input = go r.input }
      | Ir.Semi s -> Ir.Semi { s with input = go s.input; sub = go s.sub }
      | Ir.Resolve r -> Ir.Resolve { r with input = go r.input }
      | Ir.Prune p -> Ir.Prune { p with input = go p.input }
      | Ir.Append ts -> Ir.Append (List.map go ts)
    in
    go t

let pass_pushdown =
  {
    name = "predicate-pushdown";
    transform =
      (fun env p ->
        map_pipelines
          (fun t -> order_scan_filters env (pushdown_pipeline t))
          p);
  }

(* ------------------------------------------------------------------ *)
(* Pass 2: decorrelate EXISTS / NOT EXISTS into hash semi/anti-joins    *)
(* ------------------------------------------------------------------ *)

(* A sub-scope is convertible when it is a plain conjunctive scope over
   finite base relations: no grouping, no join annotation, every conjunct a
   non-aggregating predicate. Its conjuncts split into sub-local filters
   (pushed into the sub-scans), equality correlation keys, and residual
   predicates checked per (outer row, sub row) pair. *)
let convertible env (s : scope) =
  s.grouping = None && s.join = None && s.bindings <> []
  && List.for_all
       (fun b ->
         match b.source with
         | Base n -> Lower.source_finite env (Base n)
         | Nested _ -> false)
       s.bindings
  && List.for_all
       (fun f ->
         match f with Pred p -> not (pred_has_agg p) | _ -> false)
       (conjuncts s.body)

let build_semi env ~anti input (s : scope) : Ir.t =
  let sub_vars = List.map (fun b -> b.var) s.bindings in
  let sub_chain =
    List.fold_left
      (fun acc b ->
        match b.source with
        | Base n ->
            Lower.product acc
              (Ir.Scan
                 { var = b.var; rel = n; filters = []; card = Lower.card env n })
        | Nested _ -> assert false)
      Ir.One s.bindings
  in
  let sub_filters = ref [] in
  let keys = ref [] in
  let residual = ref [] in
  List.iter
    (fun f ->
      match f with
      | Pred p -> (
          let vs = Ir.pred_ref_vars p in
          let subrefs = List.filter (fun v -> List.mem v sub_vars) vs in
          let outrefs = List.filter (fun v -> not (List.mem v sub_vars)) vs in
          if subrefs <> [] && outrefs = [] then
            sub_filters := !sub_filters @ [ p ]
          else
            match p with
            | Cmp (Eq, l, r)
              when (not (term_has_agg l)) && not (term_has_agg r) ->
                let lv = Ir.term_ref_vars l and rv = Ir.term_ref_vars r in
                let sub_side t = subset t sub_vars in
                let outer_side t =
                  List.for_all (fun v -> not (List.mem v sub_vars)) t
                in
                if sub_side lv && lv <> [] && outer_side rv then
                  keys := !keys @ [ { Ir.outer = r; inner = l } ]
                else if sub_side rv && rv <> [] && outer_side lv then
                  keys := !keys @ [ { Ir.outer = l; inner = r } ]
                else residual := !residual @ [ p ]
            | _ -> residual := !residual @ [ p ])
      | _ -> assert false)
    (conjuncts s.body);
  let sub =
    List.fold_left
      (fun acc p ->
        let rv =
          List.filter (fun v -> List.mem v sub_vars) (Ir.pred_ref_vars p)
        in
        sink rv p acc)
      sub_chain !sub_filters
  in
  Semi { anti; input; sub; sub_vars; keys = !keys; residual = !residual }

let decorrelate_pipeline env (t : Ir.t) : Ir.t =
  let rec go t =
    match t with
    | Ir.Residual { input; conjs } ->
        let input = go input in
        let input, rest =
          List.fold_left
            (fun (input, rest) f ->
              match f with
              | Exists s when convertible env s ->
                  (build_semi env ~anti:false input s, rest)
              | Not (Exists s) when convertible env s ->
                  (build_semi env ~anti:true input s, rest)
              | f -> (input, rest @ [ f ]))
            (input, []) conjs
        in
        if rest = [] then input else Residual { input; conjs = rest }
    | Ir.Filter f -> Filter { f with input = go f.input }
    | Ir.Resolve r -> Resolve { r with input = go r.input }
    | Ir.Semi s -> Semi { s with input = go s.input }
    | t -> t
  in
  go t

let pass_decorrelate =
  {
    name = "decorrelate-exists";
    transform = (fun env p -> map_pipelines (decorrelate_pipeline env) p);
  }

(* ------------------------------------------------------------------ *)
(* Pass 3: hash-join formation and greedy input ordering               *)
(* ------------------------------------------------------------------ *)

(* Flatten a Product/Filter region into independent units plus predicates,
   then rebuild a left-deep tree greedily: start from the smallest estimated
   unit; repeatedly join the smallest unit reachable through an equality
   (hash join), falling back to the smallest remaining unit (product).
   Predicates become hash keys when one side evaluates on the bound prefix
   and the other on the new unit alone; they are applied as filters at the
   first point all their variables are bound.

   Estimates come from [Card]: with statistics they reflect selectivity
   math, without they reconcile to the legacy heuristic, so plan shapes
   only move once the database has been ANALYZEd. Each unit's estimate is
   computed once and memoized (the previous code re-ran the recursive
   estimator inside every sort comparison). *)
let reorder_region (env : env) (t : Ir.t) : Ir.t =
  let rec flatten t =
    match t with
    | Ir.Product { left; right } ->
        let ul, pl = flatten left and ur, pr = flatten right in
        (ul @ ur, pl @ pr)
    | Ir.Filter { input; preds } ->
        let u, p = flatten input in
        (u, p @ preds)
    | Ir.One -> ([], [])
    | t -> ([ t ], [])
  in
  let units, preds = flatten t in
  match units with
  | [] | [ _ ] ->
      (* nothing to reorder; reattach filters *)
      let base = match units with [] -> Ir.One | u :: _ -> u in
      List.fold_left filter_above base preds
  | _ ->
      let region_vars = List.concat_map Ir.bound_vars units in
      let rv_of p =
        List.filter (fun v -> List.mem v region_vars) (Ir.pred_ref_vars p)
      in
      let key_for bound unit_vars p =
        match p with
        | Cmp (Eq, l, r) when (not (term_has_agg l)) && not (term_has_agg r)
          ->
            let lv = List.filter (fun v -> List.mem v region_vars)
                (Ir.term_ref_vars l)
            and rv = List.filter (fun v -> List.mem v region_vars)
                (Ir.term_ref_vars r)
            in
            if subset lv bound && subset rv unit_vars && rv <> [] then
              Some { Ir.outer = l; inner = r }
            else if subset rv bound && subset lv unit_vars && lv <> [] then
              Some { Ir.outer = r; inner = l }
            else None
        | _ -> None
      in
      let stats = env.Lower.stats in
      let unit_est =
        List.map (fun u -> (u, Card.rows (Card.estimate stats u))) units
      in
      let est u = List.assq u unit_est in
      let by_est us =
        List.map snd
          (List.stable_sort
             (fun (a, _) (b, _) -> compare a b)
             (List.map (fun u -> (est u, u)) us))
      in
      let first = List.hd (by_est units) in
      let remaining = ref (List.filter (fun u -> u != first) units) in
      let pending = ref preds in
      let acc = ref first in
      let bound = ref (Ir.bound_vars first) in
      let apply_bound_preds () =
        let applicable, rest =
          List.partition (fun p -> subset (rv_of p) !bound) !pending
        in
        pending := rest;
        List.iter (fun p -> acc := filter_above !acc p) applicable
      in
      apply_bound_preds ();
      while !remaining <> [] do
        let candidates =
          List.filter_map
            (fun u ->
              let uv = Ir.bound_vars u in
              let keys = List.filter_map (key_for !bound uv) !pending in
              if keys = [] then None else Some (u, keys))
            !remaining
        in
        let next, keys =
          match candidates with
          | [] -> (List.hd (by_est !remaining), [])
          | _ when stats = [] ->
              (* heuristic mode: smallest joinable unit, memoized *)
              List.hd
                (List.stable_sort
                   (fun (a, _) (b, _) -> compare (est a) (est b))
                   candidates)
          | _ ->
              (* statistics mode: rank each candidate by the estimated
                 output of the join it would form, computed once per
                 candidate rather than once per comparison *)
              let scored =
                List.map
                  (fun (u, keys) ->
                    ( Card.rows
                        (Card.estimate stats
                           (Ir.Hash_join { left = !acc; right = u; keys })),
                      (u, keys) ))
                  candidates
              in
              snd
                (List.hd
                   (List.stable_sort (fun (a, _) (b, _) -> compare a b) scored))
        in
        remaining := List.filter (fun u -> u != next) !remaining;
        let key_preds =
          List.filter
            (fun p ->
              List.exists
                (fun k ->
                  match p with
                  | Cmp (Eq, l, r) ->
                      (equal_term l k.Ir.outer && equal_term r k.Ir.inner)
                      || (equal_term r k.Ir.outer && equal_term l k.Ir.inner)
                  | _ -> false)
                keys)
            !pending
        in
        pending := List.filter (fun p -> not (List.memq p key_preds)) !pending;
        acc :=
          (if keys = [] then Ir.Product { left = !acc; right = next }
           else Ir.Hash_join { left = !acc; right = next; keys });
        bound := Ir.bound_vars next @ !bound;
        apply_bound_preds ()
      done;
      List.iter (fun p -> acc := filter_above !acc p) !pending;
      !acc

(* Semi/anti placement: a semi-join whose outer references all live on one
   side of the join below it commutes with that join (each joined row
   passes iff its one-sided prefix does), so it can run before the join
   and shrink the probe input. Only attempted in statistics mode, and only
   kept when the estimated cost does not grow. *)
let reorder_pipeline (env : env) (t : Ir.t) : Ir.t =
  let cost t = Card.rows (Card.estimate env.Lower.stats t) in
  let rec sink_semi t =
    match t with
    | Ir.Semi s -> (
        let refs =
          List.filter
            (fun v -> not (List.mem v s.sub_vars))
            (List.concat_map (fun k -> Ir.term_ref_vars k.Ir.outer) s.keys
            @ List.concat_map Ir.pred_ref_vars s.residual)
        in
        match s.input with
        | Ir.Hash_join j when subset refs (Ir.bound_vars j.left) ->
            let sunk =
              Ir.Hash_join
                { j with left = sink_semi (Ir.Semi { s with input = j.left }) }
            in
            if cost sunk <= cost t then sunk else t
        | Ir.Hash_join j when subset refs (Ir.bound_vars j.right) ->
            let sunk =
              Ir.Hash_join
                { j with right = sink_semi (Ir.Semi { s with input = j.right })
                }
            in
            if cost sunk <= cost t then sunk else t
        | Ir.Product p when subset refs (Ir.bound_vars p.left) ->
            let sunk =
              Ir.Product
                { p with left = sink_semi (Ir.Semi { s with input = p.left }) }
            in
            if cost sunk <= cost t then sunk else t
        | Ir.Product p when subset refs (Ir.bound_vars p.right) ->
            let sunk =
              Ir.Product
                { p with right = sink_semi (Ir.Semi { s with input = p.right })
                }
            in
            if cost sunk <= cost t then sunk else t
        | _ -> t)
    | t -> t
  in
  let rec go t =
    match t with
    | Ir.Product _ | Ir.Filter _ ->
        (* recurse into units first, then rebuild this region *)
        let t =
          match t with
          | Ir.Product { left; right } ->
              Ir.Product { left = go left; right = go right }
          | Ir.Filter f -> Ir.Filter { f with input = go f.input }
          | t -> t
        in
        reorder_region env t
    | Ir.Residual r -> Residual { r with input = go r.input }
    | Ir.Semi s ->
        let t = Ir.Semi { s with input = go s.input } in
        if env.Lower.stats = [] then t else sink_semi t
    | Ir.Resolve r -> Resolve { r with input = go r.input }
    | Ir.Lateral l -> Lateral { l with input = go l.input }
    | t -> t
  in
  go t

let pass_reorder =
  {
    name = "hash-join-order";
    transform = (fun env p -> map_pipelines (reorder_pipeline env) p);
  }

(* ------------------------------------------------------------------ *)
(* Pass 4: dead-column pruning                                         *)
(* ------------------------------------------------------------------ *)

let union_vars a b = a @ List.filter (fun v -> not (List.mem v a)) b

let wrap needed t =
  let bv = Ir.bound_vars t in
  let keep = List.filter (fun v -> List.mem v needed) bv in
  if List.length keep < List.length bv then Ir.Prune { input = t; keep }
  else t

let rec prune_t needed (t : Ir.t) : Ir.t =
  match t with
  | One | Scan _ | Subquery _ -> t
  | Prune { input; _ } -> prune_t needed input
  | Product { left; right } ->
      let nl = union_vars needed (Ir.plan_ref_vars right) in
      Product
        {
          left = wrap nl (prune_t nl left);
          right = wrap needed (prune_t needed right);
        }
  | Hash_join { left; right; keys } ->
      let nl =
        union_vars needed
          (List.concat_map (fun k -> Ir.term_ref_vars k.Ir.outer) keys)
      in
      let nr =
        union_vars needed
          (List.concat_map (fun k -> Ir.term_ref_vars k.Ir.inner) keys)
      in
      Hash_join
        { left = wrap nl (prune_t nl left); right = wrap nr (prune_t nr right);
          keys }
  | Filter { input; preds } ->
      let n = union_vars needed (List.concat_map Ir.pred_ref_vars preds) in
      Filter { input = prune_t n input; preds }
  | Residual { input; conjs } ->
      let n = union_vars needed (List.concat_map Ir.formula_ref_vars conjs) in
      Residual { input = prune_t n input; conjs }
  | Semi s ->
      let n =
        union_vars needed
          (List.concat_map (fun k -> Ir.term_ref_vars k.Ir.outer) s.keys
          @ List.concat_map Ir.pred_ref_vars s.residual)
      in
      let sub_needed =
        List.concat_map (fun k -> Ir.term_ref_vars k.Ir.inner) s.keys
        @ List.concat_map Ir.pred_ref_vars s.residual
      in
      Semi
        {
          s with
          input = prune_t n s.input;
          sub = wrap sub_needed (prune_t sub_needed s.sub);
        }
  | Resolve r ->
      let n = union_vars needed (Ir.formula_ref_vars r.scope.body) in
      Resolve { r with input = prune_t n r.input }
  | Lateral l ->
      let n = union_vars needed (Ir.coll_plan_ref_vars l.plan) in
      Lateral { l with input = prune_t n l.input }
  (* branches bind the same variable set; prune each with the same needs *)
  | Append ts -> Append (List.map (prune_t needed) ts)

let prune_coll (p : Ir.coll_plan) : Ir.coll_plan =
  match p with
  | Fallback _ -> p
  | Union u ->
      Union
        {
          u with
          disjuncts =
            List.map
              (fun d ->
                match d with
                | Ir.Project pr ->
                    let n =
                      List.concat_map
                        (fun (_, t) -> Ir.term_ref_vars t)
                        pr.assigns
                    in
                    Ir.Project { pr with input = wrap n (prune_t n pr.input) }
                | Ir.Aggregate ag ->
                    let n =
                      List.map fst ag.keys
                      @ List.concat_map Ir.formula_ref_vars ag.post
                      @ List.concat_map
                          (fun (_, t) -> Ir.term_ref_vars t)
                          ag.assigns
                    in
                    Ir.Aggregate { ag with input = wrap n (prune_t n ag.input) })
              u.disjuncts;
        }

let rec deep_prune (p : Ir.coll_plan) : Ir.coll_plan =
  (* prune this level, then recurse into nested collection plans *)
  match prune_coll p with
  | Fallback _ as p -> p
  | Union u ->
      Union
        {
          u with
          disjuncts =
            List.map
              (fun d ->
                match d with
                | Ir.Project pr ->
                    Ir.Project { pr with input = prune_nested pr.input }
                | Ir.Aggregate ag ->
                    Ir.Aggregate { ag with input = prune_nested ag.input })
              u.disjuncts;
        }

and prune_nested (t : Ir.t) : Ir.t =
  match t with
  | One | Scan _ -> t
  | Subquery s -> Subquery { s with plan = deep_prune s.plan }
  | Lateral l ->
      Lateral { l with input = prune_nested l.input; plan = deep_prune l.plan }
  | Product p ->
      Product { left = prune_nested p.left; right = prune_nested p.right }
  | Hash_join j ->
      Hash_join
        { j with left = prune_nested j.left; right = prune_nested j.right }
  | Filter f -> Filter { f with input = prune_nested f.input }
  | Residual r -> Residual { r with input = prune_nested r.input }
  | Semi s ->
      Semi { s with input = prune_nested s.input; sub = prune_nested s.sub }
  | Resolve r -> Resolve { r with input = prune_nested r.input }
  | Prune p -> Prune { p with input = prune_nested p.input }
  | Append ts -> Append (List.map prune_nested ts)

let pass_prune =
  { name = "prune-columns"; transform = (fun _env p -> deep_prune p) }

(* ------------------------------------------------------------------ *)
(* Pipeline                                                            *)
(* ------------------------------------------------------------------ *)

let pipeline = [ pass_pushdown; pass_decorrelate; pass_reorder; pass_prune ]

let optimize_coll ?(passes = pipeline) env (p : Ir.coll_plan) =
  List.fold_left
    (fun (p, report) pass ->
      let p' = pass.transform env p in
      (p', report @ [ (pass.name, p' <> p) ]))
    (p, []) passes

(* ------------------------------------------------------------------ *)
(* AST-level pass: demand / magic sets                                 *)
(* ------------------------------------------------------------------ *)

(* Goal-directed recursion: when a recursive definition D is only ever
   consumed through constant selections on one head attribute (the query
   asks for T(c, _), not all of T), the full fixpoint derives facts the
   query immediately throws away. The rewrite materializes the demanded
   constants as a one-column magic relation __magic__D and guards every
   disjunct of D with a join against it, so the fixpoint only derives
   facts whose bound attribute is demanded.

   The restriction is sound only when the bound attribute passes through
   the recursion unchanged — every recursive occurrence t of D inside
   its own body must carry a top-level equality D.a = t.a. Then the
   guarded fixpoint computes exactly σ_{a ∈ seeds}(D) (induction on
   derivation depth: a base fact with a ∈ seeds passes the guard; a
   derived fact inherits a from a recursive fact that, by hypothesis,
   was already derived), and every use site re-applies its own constant,
   so query results are unchanged. Linear recursions whose bound side
   shifts through the recursion (e.g. left-linear TC bound on src) would
   need derived magic rules and are left alone. *)

let magic_prefix = "__magic__"

(* every base relation name referenced by a formula, through nested
   scopes and nested collection sources *)
let rec formula_base_refs f =
  match f with
  | True | Pred _ -> []
  | And fs | Or fs -> List.concat_map formula_base_refs fs
  | Not f -> formula_base_refs f
  | Exists s -> scope_base_refs s

and scope_base_refs s =
  List.concat_map
    (fun b ->
      match b.source with
      | Base n -> [ n ]
      | Nested c -> formula_base_refs c.body)
    s.bindings
  @ formula_base_refs s.body

let query_base_refs = function
  | Coll c -> formula_base_refs c.body
  | Sentence f -> formula_base_refs f

(* For every binding of [rel] in the query, the (attr, const) selections
   its enclosing scope applies as top-level conjuncts. A use site with no
   selection contributes []. *)
let rec formula_uses rel acc f =
  match f with
  | True | Pred _ -> acc
  | And fs | Or fs -> List.fold_left (formula_uses rel) acc fs
  | Not f -> formula_uses rel acc f
  | Exists s -> scope_uses rel acc s

and scope_uses rel acc s =
  let cs = conjuncts s.body in
  let acc =
    List.fold_left
      (fun acc b ->
        match b.source with
        | Base n when n = rel ->
            List.filter_map
              (fun f ->
                match f with
                | Pred (Cmp (Eq, Attr (v, a), Const c))
                | Pred (Cmp (Eq, Const c, Attr (v, a)))
                  when v = b.var ->
                    Some (a, c)
                | _ -> None)
              cs
            :: acc
        | Base _ -> acc
        | Nested c -> formula_uses rel acc c.body)
      acc s.bindings
  in
  formula_uses rel acc s.body

let query_uses rel = function
  | Coll c -> formula_uses rel [] c.body
  | Sentence f -> formula_uses rel [] f

(* The rewrite fires for a definition D when: D is self-recursive; no
   other definition uses it; every use site in the main query selects a
   constant on the same head attribute a; and every disjunct of D's body
   is a plain scope (no grouping or join annotation) whose recursive
   bindings pass a through unchanged and which does not mention D any
   deeper. Returns the bound attribute, the magic relation name, and the
   distinct demanded constants. *)
let magic_candidate (prog : program) (d : definition) =
  let h = d.def_body.head.head_attrs in
  let hname = d.def_body.head.head_name in
  let mname = magic_prefix ^ d.def_name in
  let others = List.filter (fun d' -> d'.def_name <> d.def_name) prog.defs in
  let self_rec = List.mem d.def_name (formula_base_refs d.def_body.body) in
  let main_only =
    not
      (List.exists
         (fun d' -> List.mem d.def_name (formula_base_refs d'.def_body.body))
         others)
  in
  let no_collision =
    (not (List.exists (fun d' -> d'.def_name = mname) prog.defs))
    && not
         (List.mem mname
            (List.concat_map
               (fun d' -> formula_base_refs d'.def_body.body)
               prog.defs
            @ query_base_refs prog.main))
  in
  if not (self_rec && main_only && no_collision) then None
  else
    let uses = query_uses d.def_name prog.main in
    if uses = [] then None
    else
      let bound_attr =
        List.find_opt
          (fun a ->
            List.for_all
              (fun sels -> List.exists (fun (a', _) -> a' = a) sels)
              uses)
          h
      in
      match bound_attr with
      | None -> None
      | Some a ->
          let ok_disjunct f =
            match f with
            | Exists s ->
                s.grouping = None && s.join = None
                && (not (List.mem d.def_name (formula_base_refs s.body)))
                && List.for_all
                     (fun b ->
                       match b.source with
                       | Base n when n = d.def_name ->
                           List.exists
                             (fun f ->
                               match f with
                               | Pred (Cmp (Eq, Attr (x, ax), Attr (y, ay)))
                                 ->
                                   ax = a && ay = a
                                   && ((x = hname && y = b.var)
                                      || (x = b.var && y = hname))
                               | _ -> false)
                             (conjuncts s.body)
                       | Base _ -> true
                       | Nested c ->
                           not
                             (List.mem d.def_name (formula_base_refs c.body)))
                     s.bindings
            | _ -> false
          in
          if not (List.for_all ok_disjunct (disjuncts d.def_body.body)) then
            None
          else
            let seeds =
              List.fold_left
                (fun acc sels ->
                  List.fold_left
                    (fun acc (a', c) ->
                      if a' = a && not (List.exists (Arc_value.Value.equal c) acc)
                      then acc @ [ c ]
                      else acc)
                    acc sels)
                [] uses
            in
            if seeds = [] then None else Some (a, mname, seeds)

(* One seed disjunct per demanded constant. Each seed is wrapped in an
   empty quantifier scope: a bare predicate disjunct would be rejected as
   unsafe (no scope to range-restrict the head), while an empty scope
   restricts the head attribute through the constant equality itself. *)
let magic_def mname a seeds =
  {
    def_name = mname;
    def_body =
      {
        head = { head_name = mname; head_attrs = [ a ] };
        body =
          Or
            (List.map
               (fun c ->
                 Exists
                   {
                     bindings = [];
                     grouping = None;
                     join = None;
                     body = Pred (Cmp (Eq, Attr (mname, a), Const c));
                   })
               seeds);
      };
  }

(* guard every disjunct of D with a join against the magic relation *)
let magic_guard_def (d : definition) a mname =
  let hname = d.def_body.head.head_name in
  let guard f =
    match f with
    | Exists s ->
        let used = List.map (fun b -> b.var) s.bindings in
        let rec fresh v = if List.mem v used then fresh (v ^ "_") else v in
        let mv = fresh "__m" in
        Exists
          {
            s with
            bindings = s.bindings @ [ { var = mv; source = Base mname } ];
            body =
              And
                (conjuncts s.body
                @ [ Pred (Cmp (Eq, Attr (hname, a), Attr (mv, a))) ]);
          }
    | f -> f
  in
  {
    d with
    def_body =
      {
        d.def_body with
        body = Or (List.map guard (disjuncts d.def_body.body));
      };
  }

let magic_sets (prog : program) : program * bool =
  let defs, changed =
    List.fold_left
      (fun (defs, changed) d ->
        match magic_candidate prog d with
        | Some (a, mname, seeds) ->
            (defs @ [ magic_def mname a seeds; magic_guard_def d a mname ], true)
        | None -> (defs @ [ d ], changed))
      ([], false) prog.defs
  in
  ({ prog with defs }, changed)

let optimize ?(passes = pipeline) env (pp : Ir.program_plan) =
  let changed = Hashtbl.create 8 in
  let note report =
    List.iter
      (fun (n, c) ->
        Hashtbl.replace changed n
          (c || Option.value ~default:false (Hashtbl.find_opt changed n)))
      report
  in
  let opt_coll p =
    let p', report = optimize_coll ~passes env p in
    note report;
    p'
  in
  let opt_def dp = { dp with Ir.dplan = opt_coll dp.Ir.dplan } in
  let strata =
    List.map
      (fun s ->
        match s with
        | Ir.Nonrecursive dp -> Ir.Nonrecursive (opt_def dp)
        | Ir.Recursive dps -> Ir.Recursive (List.map opt_def dps))
      pp.Ir.strata
  in
  let main =
    match pp.Ir.main with
    | Ir.Main_coll p -> Ir.Main_coll (opt_coll p)
    | Ir.Main_sentence f -> Ir.Main_sentence f
  in
  let report =
    List.map
      (fun pass ->
        ( pass.name,
          Option.value ~default:false (Hashtbl.find_opt changed pass.name) ))
      passes
  in
  ({ Ir.strata; main }, report)
