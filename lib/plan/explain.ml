open Arc_core.Ast
module Pp = Arc_core.Pp

(* Compact one-line rendering of formulas for plan labels; full bodies are
   available through the normal pretty-printers, the plan only needs enough
   to identify the condition. *)
let rec formula_to_string = function
  | True -> "true"
  | Pred p -> Pp.pred p
  | And fs -> String.concat " \xe2\x88\xa7 " (List.map formula_to_string fs)
  | Or fs ->
      "(" ^ String.concat " \xe2\x88\xa8 " (List.map formula_to_string fs) ^ ")"
  | Not f -> "\xc2\xac(" ^ formula_to_string f ^ ")"
  | Exists s ->
      let vars =
        String.concat ", "
          (List.map
             (fun b ->
               b.var ^ " \xe2\x88\x88 "
               ^ (match b.source with
                 | Base n -> n
                 | Nested c -> c.head.head_name))
             s.bindings)
      in
      "\xe2\x88\x83" ^ vars ^ "[\xe2\x80\xa6]"

let key_to_string (k : Ir.key) = Pp.term k.outer ^ " = " ^ Pp.term k.inner
let keys_to_string ks = String.concat " \xe2\x88\xa7 " (List.map key_to_string ks)
let preds_to_string ps = String.concat " \xe2\x88\xa7 " (List.map Pp.pred ps)

let assigns_to_string assigns =
  String.concat ", "
    (List.map (fun (a, t) -> a ^ " := " ^ Pp.term t) assigns)

(* A node is rendered as a label plus a list of children; the tree is drawn
   with box characters. *)
type node = { label : string; children : node list }

let est_suffix t = Printf.sprintf "  (\xe2\x89\x88%d rows)" (Ir.estimate t)

let rec node_of (t : Ir.t) : node =
  match t with
  | One -> { label = "unit"; children = [] }
  | Scan { var; rel; filters; _ } ->
      let f =
        if filters = [] then "" else " [" ^ preds_to_string filters ^ "]"
      in
      {
        label = Printf.sprintf "scan %s as %s%s%s" rel var f (est_suffix t);
        children = [];
      }
  | Subquery { var; plan } ->
      {
        label = "subquery " ^ var ^ " :=";
        children = [ node_of_coll plan ];
      }
  | Lateral { input; var; plan } ->
      {
        label = "lateral " ^ var ^ " := (per input row)";
        children = [ node_of input; node_of_coll plan ];
      }
  | Product { left; right } ->
      {
        label = "product" ^ est_suffix t;
        children = [ node_of left; node_of right ];
      }
  | Hash_join { left; right; keys } ->
      {
        label = "hash join on " ^ keys_to_string keys ^ est_suffix t;
        children = [ node_of left; node_of right ];
      }
  | Filter { input; preds } ->
      { label = "filter " ^ preds_to_string preds; children = [ node_of input ] }
  | Residual { input; conjs } ->
      {
        label =
          "residual filter "
          ^ String.concat " \xe2\x88\xa7 " (List.map formula_to_string conjs);
        children = [ node_of input ];
      }
  | Semi { anti; input; sub; keys; residual; _ } ->
      let kind = if anti then "hash anti join" else "hash semi join" in
      let on = if keys = [] then "" else " on " ^ keys_to_string keys in
      let res =
        if residual = [] then ""
        else " where " ^ preds_to_string residual
      in
      { label = kind ^ on ^ res; children = [ node_of input; node_of sub ] }
  | Resolve { input; binding; _ } ->
      let name =
        match binding.source with Base n -> n | Nested _ -> "<nested>"
      in
      {
        label =
          Printf.sprintf "resolve %s \xe2\x88\x88 %s (external/abstract)"
            binding.var name;
        children = [ node_of input ];
      }
  | Prune { input; keep } ->
      {
        label = "prune to {" ^ String.concat ", " keep ^ "}";
        children = [ node_of input ];
      }

and node_of_disjunct (d : Ir.disjunct_plan) : node =
  match d with
  | Project { input; assigns } ->
      {
        label = "project [" ^ assigns_to_string assigns ^ "]";
        children = [ node_of input ];
      }
  | Aggregate { input; keys; post; assigns; _ } ->
      let post_s =
        if post = [] then ""
        else
          " having "
          ^ String.concat " \xe2\x88\xa7 " (List.map formula_to_string post)
      in
      {
        label =
          "hash aggregate " ^ Pp.grouping keys ^ " [" ^ assigns_to_string assigns
          ^ "]" ^ post_s;
        children = [ node_of input ];
      }

and node_of_coll (p : Ir.coll_plan) : node =
  match p with
  | Union { head; disjuncts } ->
      {
        label =
          Printf.sprintf "%s \xe2\x86\x90 union (%d disjunct%s)" (Pp.head head)
            (List.length disjuncts)
            (if List.length disjuncts = 1 then "" else "s");
        children = List.map node_of_disjunct disjuncts;
      }
  | Fallback { head; reason; _ } ->
      {
        label =
          Printf.sprintf "%s \xe2\x86\x90 reference evaluator (%s)"
            (Pp.head head) reason;
        children = [];
      }

let render (n : node) : string =
  let buf = Buffer.create 256 in
  let rec go prefix is_last n =
    Buffer.add_string buf prefix;
    if prefix <> "" || is_last <> `Root then
      Buffer.add_string buf (match is_last with `Last -> "\xe2\x94\x94\xe2\x94\x80 " | `Mid -> "\xe2\x94\x9c\xe2\x94\x80 " | `Root -> "");
    Buffer.add_string buf n.label;
    Buffer.add_char buf '\n';
    let child_prefix =
      match is_last with
      | `Root -> prefix
      | `Last -> prefix ^ "   "
      | `Mid -> prefix ^ "\xe2\x94\x82  "
    in
    let rec children = function
      | [] -> ()
      | [ c ] -> go child_prefix `Last c
      | c :: rest ->
          go child_prefix `Mid c;
          children rest
    in
    children n.children
  in
  go "" `Root n;
  Buffer.contents buf

let coll_plan_to_string p = render (node_of_coll p)

let program_plan_to_string (pp : Ir.program_plan) : string =
  let buf = Buffer.create 512 in
  List.iter
    (fun s ->
      match s with
      | Ir.Nonrecursive dp ->
          Buffer.add_string buf
            (Printf.sprintf "definition %s:\n%s" dp.dname
               (coll_plan_to_string dp.dplan))
      | Ir.Recursive dps ->
          Buffer.add_string buf
            (Printf.sprintf "recursive stratum {%s} (least fixpoint):\n"
               (String.concat ", " (List.map (fun d -> d.Ir.dname) dps)));
          List.iter
            (fun dp ->
              Buffer.add_string buf (coll_plan_to_string dp.Ir.dplan))
            dps)
    pp.strata;
  (match pp.main with
  | Ir.Main_coll p ->
      Buffer.add_string buf "main:\n";
      Buffer.add_string buf (coll_plan_to_string p)
  | Ir.Main_sentence f ->
      Buffer.add_string buf
        ("main (sentence): " ^ formula_to_string f ^ "\n"));
  Buffer.contents buf

let report_to_string (report : (string * bool) list) : string =
  "rewrites: "
  ^ String.concat ", "
      (List.map
         (fun (n, changed) -> n ^ if changed then " \xe2\x9c\x93" else " \xc2\xb7")
         report)
