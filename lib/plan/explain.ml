open Arc_core.Ast
module Pp = Arc_core.Pp

(* Compact one-line rendering of formulas for plan labels; full bodies are
   available through the normal pretty-printers, the plan only needs enough
   to identify the condition. *)
let rec formula_to_string = function
  | True -> "true"
  | Pred p -> Pp.pred p
  | And fs -> String.concat " \xe2\x88\xa7 " (List.map formula_to_string fs)
  | Or fs ->
      "(" ^ String.concat " \xe2\x88\xa8 " (List.map formula_to_string fs) ^ ")"
  | Not f -> "\xc2\xac(" ^ formula_to_string f ^ ")"
  | Exists s ->
      let vars =
        String.concat ", "
          (List.map
             (fun b ->
               b.var ^ " \xe2\x88\x88 "
               ^ (match b.source with
                 | Base n -> n
                 | Nested c -> c.head.head_name))
             s.bindings)
      in
      "\xe2\x88\x83" ^ vars ^ "[\xe2\x80\xa6]"

let key_to_string (k : Ir.key) = Pp.term k.outer ^ " = " ^ Pp.term k.inner
let keys_to_string ks = String.concat " \xe2\x88\xa7 " (List.map key_to_string ks)
let preds_to_string ps = String.concat " \xe2\x88\xa7 " (List.map Pp.pred ps)

let assigns_to_string assigns =
  String.concat ", "
    (List.map (fun (a, t) -> a ^ " := " ^ Pp.term t) assigns)

(* A node is rendered as a label plus a list of children; the tree is drawn
   with box characters. *)
type node = { label : string; children : node list }

(* Estimates come from [Card] when a statistics environment is supplied
   (so the annotation can say which estimator produced the number) and
   fall back to the legacy heuristic otherwise — by [Card]'s reconcile
   invariant the two agree when no statistics exist. *)
let est_of cenv estimator heur node =
  match cenv with
  | None -> (heur node, None)
  | Some env ->
      let e = estimator env node in
      (Card.rows e, Some (Card.src_name e.Card.src))

let est_t cenv t = est_of cenv Card.estimate Ir.estimate t
let est_d cenv d = est_of cenv Card.estimate_disjunct Ir.estimate_disjunct d
let est_c cenv c = est_of cenv Card.estimate_coll Ir.estimate_coll c

let est_suffix cenv t =
  let est, src = est_t cenv t in
  match src with
  | None -> Printf.sprintf "  (\xe2\x89\x88%d rows)" est
  | Some s -> Printf.sprintf "  (\xe2\x89\x88%d rows, %s)" est s

(* Core (suffix-free) labels, shared by the plain explain rendering and the
   analyze rendering. *)
let t_label (t : Ir.t) : string =
  match t with
  | One -> "unit"
  | Scan { var; rel; filters; _ } ->
      let f =
        if filters = [] then "" else " [" ^ preds_to_string filters ^ "]"
      in
      Printf.sprintf "scan %s as %s%s" rel var f
  | Subquery { var; _ } -> "subquery " ^ var ^ " :="
  | Lateral { var; _ } -> "lateral " ^ var ^ " := (per input row)"
  | Product _ -> "product"
  | Hash_join { keys; _ } -> "hash join on " ^ keys_to_string keys
  | Filter { preds; _ } -> "filter " ^ preds_to_string preds
  | Residual { conjs; _ } ->
      "residual filter "
      ^ String.concat " \xe2\x88\xa7 " (List.map formula_to_string conjs)
  | Semi { anti; keys; residual; _ } ->
      let kind = if anti then "hash anti join" else "hash semi join" in
      let on = if keys = [] then "" else " on " ^ keys_to_string keys in
      let res =
        if residual = [] then "" else " where " ^ preds_to_string residual
      in
      kind ^ on ^ res
  | Resolve { binding; _ } ->
      let name =
        match binding.source with Base n -> n | Nested _ -> "<nested>"
      in
      Printf.sprintf "resolve %s \xe2\x88\x88 %s (external/abstract)"
        binding.var name
  | Prune { keep; _ } -> "prune to {" ^ String.concat ", " keep ^ "}"
  | Append ts ->
      Printf.sprintf "append (%d branch%s)" (List.length ts)
        (if List.length ts = 1 then "" else "es")

let disjunct_label (d : Ir.disjunct_plan) : string =
  match d with
  | Project { assigns; _ } -> "project [" ^ assigns_to_string assigns ^ "]"
  | Aggregate { keys; post; assigns; _ } ->
      let post_s =
        if post = [] then ""
        else
          " having "
          ^ String.concat " \xe2\x88\xa7 " (List.map formula_to_string post)
      in
      "hash aggregate " ^ Pp.grouping keys ^ " [" ^ assigns_to_string assigns
      ^ "]" ^ post_s

let coll_label (p : Ir.coll_plan) : string =
  match p with
  | Union { head; disjuncts } ->
      Printf.sprintf "%s \xe2\x86\x90 union (%d disjunct%s)" (Pp.head head)
        (List.length disjuncts)
        (if List.length disjuncts = 1 then "" else "s")
  | Fallback { head; reason; _ } ->
      Printf.sprintf "%s \xe2\x86\x90 reference evaluator (%s)" (Pp.head head)
        reason

(* One annotated traversal serves both renderings: the annotation callback
   receives each node's stable id (see [Ir.program_ids]) and produces the
   label suffix. *)
type ann = {
  on_t : int -> Ir.t -> string;
  on_d : int -> Ir.disjunct_plan -> string;
  on_c : int -> Ir.coll_plan -> string;
}

let explain_ann cenv =
  {
    on_t =
      (fun _ t ->
        match t with
        | Ir.Scan _ | Ir.Product _ | Ir.Hash_join _ -> est_suffix cenv t
        | _ -> "");
    on_d = (fun _ _ -> "");
    on_c = (fun _ _ -> "");
  }

let rec node_of ann id (t : Ir.t) : node =
  let children =
    match t with
    | Ir.One | Ir.Scan _ -> []
    | Ir.Subquery { plan; _ } -> [ node_of_coll ann (id + 1) plan ]
    | Ir.Lateral { input; plan; _ } ->
        [
          node_of ann (id + 1) input;
          node_of_coll ann (id + 1 + Ir.size input) plan;
        ]
    | Ir.Product { left; right } | Ir.Hash_join { left; right; _ } ->
        [ node_of ann (id + 1) left; node_of ann (id + 1 + Ir.size left) right ]
    | Ir.Filter { input; _ }
    | Ir.Residual { input; _ }
    | Ir.Resolve { input; _ }
    | Ir.Prune { input; _ } ->
        [ node_of ann (id + 1) input ]
    | Ir.Semi { input; sub; _ } ->
        [ node_of ann (id + 1) input; node_of ann (id + 1 + Ir.size input) sub ]
    | Ir.Append ts -> List.map2 (node_of ann) (Ir.child_ids id t) ts
  in
  { label = t_label t ^ ann.on_t id t; children }

and node_of_disjunct ann id (d : Ir.disjunct_plan) : node =
  let children =
    match d with
    | Ir.Project { input; _ } | Ir.Aggregate { input; _ } ->
        [ node_of ann (id + 1) input ]
  in
  { label = disjunct_label d ^ ann.on_d id d; children }

and node_of_coll ann id (p : Ir.coll_plan) : node =
  let children =
    match p with
    | Ir.Union { disjuncts; _ } ->
        List.map2
          (fun did d -> node_of_disjunct ann did d)
          (Ir.coll_child_ids id p) disjuncts
    | Ir.Fallback _ -> []
  in
  { label = coll_label p ^ ann.on_c id p; children }

let render (n : node) : string =
  let buf = Buffer.create 256 in
  let rec go prefix is_last n =
    Buffer.add_string buf prefix;
    if prefix <> "" || is_last <> `Root then
      Buffer.add_string buf (match is_last with `Last -> "\xe2\x94\x94\xe2\x94\x80 " | `Mid -> "\xe2\x94\x9c\xe2\x94\x80 " | `Root -> "");
    Buffer.add_string buf n.label;
    Buffer.add_char buf '\n';
    let child_prefix =
      match is_last with
      | `Root -> prefix
      | `Last -> prefix ^ "   "
      | `Mid -> prefix ^ "\xe2\x94\x82  "
    in
    let rec children = function
      | [] -> ()
      | [ c ] -> go child_prefix `Last c
      | c :: rest ->
          go child_prefix `Mid c;
          children rest
    in
    children n.children
  in
  go "" `Root n;
  Buffer.contents buf

let coll_plan_to_string ?cenv p = render (node_of_coll (explain_ann cenv) 0 p)

(* Renders a whole program, threading base ids with the same counter walk
   as [Ir.program_ids] so annotations line up with executor-recorded
   stats. *)
let program_render ann (pp : Ir.program_plan) : string =
  let buf = Buffer.create 512 in
  let counter = ref 0 in
  let render_def dp =
    let id = !counter in
    counter := !counter + Ir.size_coll dp.Ir.dplan;
    render (node_of_coll ann id dp.Ir.dplan)
  in
  List.iter
    (fun s ->
      match s with
      | Ir.Nonrecursive dp ->
          Buffer.add_string buf
            (Printf.sprintf "definition %s:\n%s" dp.dname (render_def dp))
      | Ir.Recursive dps ->
          Buffer.add_string buf
            (Printf.sprintf "recursive stratum {%s} (least fixpoint):\n"
               (String.concat ", " (List.map (fun d -> d.Ir.dname) dps)));
          List.iter
            (fun dp -> Buffer.add_string buf (render_def dp))
            dps)
    pp.strata;
  (match pp.main with
  | Ir.Main_coll p ->
      let id = !counter in
      counter := !counter + Ir.size_coll p;
      Buffer.add_string buf "main:\n";
      Buffer.add_string buf (render (node_of_coll ann id p))
  | Ir.Main_sentence f ->
      Buffer.add_string buf
        ("main (sentence): " ^ formula_to_string f ^ "\n"));
  Buffer.contents buf

let program_plan_to_string ?cenv (pp : Ir.program_plan) : string =
  program_render (explain_ann cenv) pp

(* ------------------------------------------------------------------ *)
(* EXPLAIN ANALYZE                                                     *)
(* ------------------------------------------------------------------ *)

(* Local duration formatter; [lib/plan] sits below [lib/obs] in the
   dependency order, so it cannot reuse the one there. *)
let ns_to_string ns =
  let f = Int64.to_float ns in
  if f >= 1e9 then Printf.sprintf "%.2fs" (f /. 1e9)
  else if f >= 1e6 then Printf.sprintf "%.2fms" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.2f\xc2\xb5s" (f /. 1e3)
  else Printf.sprintf "%.0fns" f

let incl_ns (stats : Ir.stats) id =
  match Ir.actual_of stats id with Some a -> a.Ir.a_incl_ns | None -> 0L

(* Exclusive time = this node's inclusive time minus its direct
   children's; children only ever run inside their parent's timed
   region, so the difference is the parent's own work (clamped at 0
   against clock jitter). *)
let excl_ns (stats : Ir.stats) id children =
  let kids =
    List.fold_left (fun acc c -> Int64.add acc (incl_ns stats c)) 0L children
  in
  let e = Int64.sub (incl_ns stats id) kids in
  if Int64.compare e 0L < 0 then 0L else e

let node_suffix ~warn_q_error (stats : Ir.stats) id ~est ~src ~children
    ~extras_of =
  let src_s = match src with None -> "" | Some s -> " src=" ^ s in
  match Ir.actual_of stats id with
  | None -> Printf.sprintf "  [est=%d%s act=\xe2\x80\x93]" est src_s
  | Some a ->
      let q = Ir.q_error est a.Ir.a_rows in
      let inv =
        if a.Ir.a_invocations > 1 then
          Printf.sprintf " inv=%d" a.Ir.a_invocations
        else ""
      in
      let warn =
        if q >= warn_q_error then "  \xe2\x9a\xa0 misestimate" else ""
      in
      Printf.sprintf "  [est=%d%s act=%d q=%.1f excl=%s%s%s]%s" est src_s
        a.Ir.a_rows q
        (ns_to_string (excl_ns stats id children))
        inv (extras_of a) warn

let analyze_ann ~warn_q_error ?cenv (stats : Ir.stats) =
  {
    on_t =
      (fun id t ->
        let est, src = est_t cenv t in
        node_suffix ~warn_q_error stats id ~est ~src
          ~children:(Ir.child_ids id t) ~extras_of:(fun a ->
            match t with
            | Ir.Hash_join _ | Ir.Semi _ ->
                Printf.sprintf " build=%d probe=%d matches=%d" a.Ir.a_build
                  a.Ir.a_probe a.Ir.a_matches
            | _ -> ""));
    on_d =
      (fun id d ->
        let est, src = est_d cenv d in
        node_suffix ~warn_q_error stats id ~est ~src
          ~children:(Ir.disjunct_child_ids id d)
          ~extras_of:(fun _ -> ""));
    on_c =
      (fun id c ->
        let est, src = est_c cenv c in
        node_suffix ~warn_q_error stats id ~est ~src
          ~children:(Ir.coll_child_ids id c) ~extras_of:(fun a ->
            match c with
            | Ir.Union _ when a.Ir.a_iterations > 0 ->
                Printf.sprintf " iters=%d deltas=[%s]" a.Ir.a_iterations
                  (String.concat ";"
                     (List.map string_of_int (List.rev a.Ir.a_deltas)))
            | _ -> ""));
  }

let analyze_to_string ?(warn_q_error = 4.0) ?cenv ~(stats : Ir.stats)
    (pp : Ir.program_plan) : string =
  program_render (analyze_ann ~warn_q_error ?cenv stats) pp

(* Flat per-node record for machine consumers (the CLI's JSON output and
   the bench harness). Preorder over the whole program. *)
type node_info = {
  ni_id : int;
  ni_def : string;  (* definition name, or "main" *)
  ni_op : string;
  ni_label : string;
  ni_est : int;
  ni_src : string;  (* which estimator produced ni_est *)
  ni_actual : Ir.actual option;
  ni_excl_ns : int64;
  ni_q : float option;
}

let analyze_info ?cenv (pp : Ir.program_plan) ~(stats : Ir.stats) :
    node_info list =
  let acc = ref [] in
  let add section id op label (est, src) children =
    let actual = Ir.actual_of stats id in
    let q = Option.map (fun a -> Ir.q_error est a.Ir.a_rows) actual in
    acc :=
      {
        ni_id = id;
        ni_def = section;
        ni_op = op;
        ni_label = label;
        ni_est = est;
        ni_src = Option.value ~default:"heuristic" src;
        ni_actual = actual;
        ni_excl_ns = excl_ns stats id children;
        ni_q = q;
      }
      :: !acc
  in
  let rec go_t section id t =
    add section id (Ir.op_name t) (t_label t) (est_t cenv t)
      (Ir.child_ids id t);
    match t with
    | Ir.One | Ir.Scan _ -> ()
    | Ir.Subquery { plan; _ } -> go_c section (id + 1) plan
    | Ir.Lateral { input; plan; _ } ->
        go_t section (id + 1) input;
        go_c section (id + 1 + Ir.size input) plan
    | Ir.Product { left; right } | Ir.Hash_join { left; right; _ } ->
        go_t section (id + 1) left;
        go_t section (id + 1 + Ir.size left) right
    | Ir.Filter { input; _ }
    | Ir.Residual { input; _ }
    | Ir.Resolve { input; _ }
    | Ir.Prune { input; _ } ->
        go_t section (id + 1) input
    | Ir.Semi { input; sub; _ } ->
        go_t section (id + 1) input;
        go_t section (id + 1 + Ir.size input) sub
    | Ir.Append ts -> List.iter2 (go_t section) (Ir.child_ids id t) ts
  and go_d section id d =
    add section id (Ir.disjunct_op_name d) (disjunct_label d) (est_d cenv d)
      (Ir.disjunct_child_ids id d);
    match d with
    | Ir.Project { input; _ } | Ir.Aggregate { input; _ } ->
        go_t section (id + 1) input
  and go_c section id c =
    add section id (Ir.coll_op_name c) (coll_label c) (est_c cenv c)
      (Ir.coll_child_ids id c);
    match c with
    | Ir.Union { disjuncts; _ } ->
        List.iter2
          (fun did d -> go_d section did d)
          (Ir.coll_child_ids id c) disjuncts
    | Ir.Fallback _ -> ()
  in
  let counter = ref 0 in
  let walk_def dp =
    let id = !counter in
    counter := !counter + Ir.size_coll dp.Ir.dplan;
    go_c dp.Ir.dname id dp.Ir.dplan
  in
  List.iter
    (function
      | Ir.Nonrecursive dp -> walk_def dp
      | Ir.Recursive dps -> List.iter walk_def dps)
    pp.strata;
  (match pp.main with
  | Ir.Main_coll p ->
      let id = !counter in
      counter := !counter + Ir.size_coll p;
      go_c "main" id p
  | Ir.Main_sentence _ -> ());
  List.rev !acc

let report_to_string (report : (string * bool) list) : string =
  "rewrites: "
  ^ String.concat ", "
      (List.map
         (fun (n, changed) -> n ^ if changed then " \xe2\x9c\x93" else " \xc2\xb7")
         report)
