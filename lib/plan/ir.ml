open Arc_core.Ast

(* An equi-join key: [outer] is evaluated on the probe side (rows of the
   plan built so far, plus the enclosing environment), [inner] on the build
   side (the joined unit / the sub-scope of a semi-join). *)
type key = { outer : term; inner : term }

type t =
  | One  (** The unit input: a single empty environment. *)
  | Scan of { var : var; rel : rel_name; filters : pred list; card : int }
  | Subquery of { var : var; plan : coll_plan }
      (** Uncorrelated nested collection: materialized once per scope. *)
  | Lateral of { input : t; var : var; plan : coll_plan }
      (** Correlated nested collection: re-evaluated per input row. *)
  | Product of { left : t; right : t }
  | Hash_join of { left : t; right : t; keys : key list }
  | Filter of { input : t; preds : pred list }
  | Residual of { input : t; conjs : formula list }
      (** Conditions with no specialized operator (disjunctions, complex
          quantified subformulas); evaluated by the reference formula
          evaluator per row. *)
  | Semi of {
      anti : bool;
      input : t;
      sub : t;
      sub_vars : var list;
      keys : key list;
      residual : pred list;
    }  (** Decorrelated [Exists] / [Not (Exists …)] condition. *)
  | Resolve of { input : t; binding : binding; scope : scope }
      (** Deferred external/abstract binding, resolved from seed equations
          in the (pre-extraction) scope body. *)
  | Prune of { input : t; keep : var list }

and disjunct_plan =
  | Project of { input : t; assigns : (attr * term) list }
  | Aggregate of {
      input : t;
      keys : grouping;
      scope_vars : var list;
      post : formula list;
      assigns : (attr * term) list;
    }

and coll_plan =
  | Union of { head : head; disjuncts : disjunct_plan list }
  | Fallback of { head : head; coll : collection; reason : string }

type def_plan = { dname : rel_name; dcoll : collection; dplan : coll_plan }

type stratum = Nonrecursive of def_plan | Recursive of def_plan list

type main_plan = Main_coll of coll_plan | Main_sentence of formula

type program_plan = { strata : stratum list; main : main_plan }

(* ------------------------------------------------------------------ *)
(* Structural helpers                                                  *)
(* ------------------------------------------------------------------ *)

let rec bound_vars = function
  | One -> []
  | Scan { var; _ } | Subquery { var; _ } -> [ var ]
  | Lateral { input; var; _ } -> var :: bound_vars input
  | Product { left; right } | Hash_join { left; right; _ } ->
      bound_vars right @ bound_vars left
  | Filter { input; _ } | Residual { input; _ } | Semi { input; _ } ->
      bound_vars input
  | Resolve { input; binding; _ } -> binding.var :: bound_vars input
  | Prune { keep; _ } -> keep

let sat_mul a b =
  let cap = 1_000_000_000 in
  if a <= 0 || b <= 0 then 1 else if a > cap / b then cap else a * b

let rec estimate = function
  | One -> 1
  | Scan { card; filters; _ } ->
      max 1 (card lsr min 4 (List.length filters))
  | Subquery _ -> 32
  | Lateral { input; _ } -> sat_mul (estimate input) 8
  | Product { left; right } -> sat_mul (estimate left) (estimate right)
  | Hash_join { left; right; keys } ->
      max 1 (sat_mul (estimate left) (estimate right) / (1 lsl min 12 (4 * List.length keys)))
  | Filter { input; preds } -> max 1 (estimate input lsr min 4 (List.length preds))
  | Residual { input; _ } | Semi { input; _ } -> max 1 (estimate input lsr 1)
  | Resolve { input; _ } | Prune { input; _ } -> estimate input

(* all range variables syntactically referenced anywhere in a fragment —
   a safe over-approximation of the inputs it needs *)
let term_ref_vars t = List.map fst (term_vars t)
let pred_ref_vars p = List.concat_map term_ref_vars (pred_terms p)

let rec formula_ref_vars = function
  | True -> []
  | Pred p -> pred_ref_vars p
  | And fs | Or fs -> List.concat_map formula_ref_vars fs
  | Not f -> formula_ref_vars f
  | Exists s ->
      List.concat_map
        (fun b ->
          match b.source with
          | Base _ -> []
          | Nested c -> formula_ref_vars c.body)
        s.bindings
      @ formula_ref_vars s.body

let rec plan_ref_vars = function
  | One -> []
  | Scan { filters; _ } -> List.concat_map pred_ref_vars filters
  | Subquery { plan; _ } -> coll_plan_ref_vars plan
  | Lateral { input; plan; _ } ->
      plan_ref_vars input @ coll_plan_ref_vars plan
  | Product { left; right } -> plan_ref_vars left @ plan_ref_vars right
  | Hash_join { left; right; keys } ->
      plan_ref_vars left @ plan_ref_vars right
      @ List.concat_map
          (fun k -> term_ref_vars k.outer @ term_ref_vars k.inner)
          keys
  | Filter { input; preds } ->
      plan_ref_vars input @ List.concat_map pred_ref_vars preds
  | Residual { input; conjs } ->
      plan_ref_vars input @ List.concat_map formula_ref_vars conjs
  | Semi { input; sub; keys; residual; _ } ->
      plan_ref_vars input @ plan_ref_vars sub
      @ List.concat_map
          (fun k -> term_ref_vars k.outer @ term_ref_vars k.inner)
          keys
      @ List.concat_map pred_ref_vars residual
  | Resolve { input; scope; _ } ->
      plan_ref_vars input @ formula_ref_vars scope.body
  | Prune { input; _ } -> plan_ref_vars input

and disjunct_ref_vars = function
  | Project { input; assigns } ->
      plan_ref_vars input @ List.concat_map (fun (_, t) -> term_ref_vars t) assigns
  | Aggregate { input; keys; post; assigns; _ } ->
      plan_ref_vars input
      @ List.map fst keys
      @ List.concat_map formula_ref_vars post
      @ List.concat_map (fun (_, t) -> term_ref_vars t) assigns

and coll_plan_ref_vars = function
  | Union { disjuncts; _ } -> List.concat_map disjunct_ref_vars disjuncts
  | Fallback { coll; _ } -> formula_ref_vars coll.body
