open Arc_core.Ast

(* An equi-join key: [outer] is evaluated on the probe side (rows of the
   plan built so far, plus the enclosing environment), [inner] on the build
   side (the joined unit / the sub-scope of a semi-join). *)
type key = { outer : term; inner : term }

type t =
  | One  (** The unit input: a single empty environment. *)
  | Scan of { var : var; rel : rel_name; filters : pred list; card : int }
  | Subquery of { var : var; plan : coll_plan }
      (** Uncorrelated nested collection: materialized once per scope. *)
  | Lateral of { input : t; var : var; plan : coll_plan }
      (** Correlated nested collection: re-evaluated per input row. *)
  | Product of { left : t; right : t }
  | Hash_join of { left : t; right : t; keys : key list }
  | Filter of { input : t; preds : pred list }
  | Residual of { input : t; conjs : formula list }
      (** Conditions with no specialized operator (disjunctions, complex
          quantified subformulas); evaluated by the reference formula
          evaluator per row. *)
  | Semi of {
      anti : bool;
      input : t;
      sub : t;
      sub_vars : var list;
      keys : key list;
      residual : pred list;
    }  (** Decorrelated [Exists] / [Not (Exists …)] condition. *)
  | Resolve of { input : t; binding : binding; scope : scope }
      (** Deferred external/abstract binding, resolved from seed equations
          in the (pre-extraction) scope body. *)
  | Prune of { input : t; keep : var list }
  | Append of t list
      (** Bag union of pipelines binding the same variable set; the RANF
          translation of outer-join annotations (matched branch plus
          NULL-padded unmatched branches), concatenated before any
          downstream aggregation so groups span all branches. *)

and disjunct_plan =
  | Project of { input : t; assigns : (attr * term) list }
  | Aggregate of {
      input : t;
      keys : grouping;
      scope_vars : var list;
      post : formula list;
      assigns : (attr * term) list;
    }

and coll_plan =
  | Union of { head : head; disjuncts : disjunct_plan list }
  | Fallback of {
      head : head;
      coll : collection;
      reason : string;
      fcard : int;
          (** Cardinality estimate derived from the referenced relations at
              lowering time (saturating product); an honest heuristic
              instead of the historical hardcoded 32. *)
    }

type def_plan = { dname : rel_name; dcoll : collection; dplan : coll_plan }

type stratum = Nonrecursive of def_plan | Recursive of def_plan list

type main_plan = Main_coll of coll_plan | Main_sentence of formula

type program_plan = { strata : stratum list; main : main_plan }

(* ------------------------------------------------------------------ *)
(* Structural helpers                                                  *)
(* ------------------------------------------------------------------ *)

let rec bound_vars = function
  | One -> []
  | Scan { var; _ } | Subquery { var; _ } -> [ var ]
  | Lateral { input; var; _ } -> var :: bound_vars input
  | Product { left; right } | Hash_join { left; right; _ } ->
      bound_vars right @ bound_vars left
  | Filter { input; _ } | Residual { input; _ } | Semi { input; _ } ->
      bound_vars input
  | Resolve { input; binding; _ } -> binding.var :: bound_vars input
  | Prune { keep; _ } -> keep
  | Append ts -> ( match ts with [] -> [] | t :: _ -> bound_vars t)

let sat_mul a b =
  let cap = 1_000_000_000 in
  if a <= 0 || b <= 0 then 1 else if a > cap / b then cap else a * b

let sat_add a b =
  let cap = 1_000_000_000 in
  if a > cap - b then cap else a + b

let rec estimate = function
  | One -> 1
  | Scan { card; filters; _ } ->
      max 1 (card lsr min 4 (List.length filters))
  | Subquery _ -> 32
  | Lateral { input; _ } -> sat_mul (estimate input) 8
  | Product { left; right } -> sat_mul (estimate left) (estimate right)
  | Hash_join { left; right; keys } ->
      max 1 (sat_mul (estimate left) (estimate right) / (1 lsl min 12 (4 * List.length keys)))
  | Filter { input; preds } -> max 1 (estimate input lsr min 4 (List.length preds))
  | Residual { input; _ } | Semi { input; _ } -> max 1 (estimate input lsr 1)
  | Resolve { input; _ } | Prune { input; _ } -> estimate input
  | Append ts -> max 1 (List.fold_left (fun acc t -> sat_add acc (estimate t)) 0 ts)

let estimate_disjunct = function
  | Project { input; _ } -> estimate input
  | Aggregate { input; keys; _ } ->
      if keys = [] then 1 else max 1 (estimate input / 4)

let estimate_coll = function
  | Union { disjuncts; _ } ->
      List.fold_left (fun acc d -> acc + estimate_disjunct d) 0 disjuncts
  | Fallback { fcard; _ } -> max 1 fcard

(* ------------------------------------------------------------------ *)
(* Stable node ids                                                     *)
(* ------------------------------------------------------------------ *)

(* Every node of a program plan — pipeline nodes, disjuncts, and collection
   heads, including nested sub-plans — carries a stable id: its preorder
   position in a canonical traversal. Ids are *derived*, not stored: a
   node's children occupy the id range right after it, offset by the sizes
   of their elder siblings. The executor and the explain/analyze renderers
   walk plans with the same arithmetic, so actuals recorded at execution
   time line up with the rendered tree — and with the estimates the
   optimizer made for the very same ids. Structural rewrites that preserve
   shape (notably the fixpoint's delta-scan substitution) preserve ids. *)

let rec size = function
  | One | Scan _ -> 1
  | Subquery { plan; _ } -> 1 + size_coll plan
  | Lateral { input; plan; _ } -> 1 + size input + size_coll plan
  | Product { left; right } | Hash_join { left; right; _ } ->
      1 + size left + size right
  | Filter { input; _ } | Residual { input; _ } | Resolve { input; _ }
  | Prune { input; _ } ->
      1 + size input
  | Semi { input; sub; _ } -> 1 + size input + size sub
  | Append ts -> 1 + List.fold_left (fun acc t -> acc + size t) 0 ts

and size_disjunct = function
  | Project { input; _ } | Aggregate { input; _ } -> 1 + size input

and size_coll = function
  | Union { disjuncts; _ } ->
      1 + List.fold_left (fun acc d -> acc + size_disjunct d) 0 disjuncts
  | Fallback _ -> 1

(* Direct-children ids, in canonical (preorder) order. Children of
   [Subquery]/[Lateral] include the nested collection plan. *)
let child_ids id = function
  | One | Scan _ -> []
  | Subquery _ -> [ id + 1 ]
  | Lateral { input; _ } -> [ id + 1; id + 1 + size input ]
  | Product { left; _ } | Hash_join { left; _ } -> [ id + 1; id + 1 + size left ]
  | Filter _ | Residual _ | Resolve _ | Prune _ -> [ id + 1 ]
  | Semi { input; _ } -> [ id + 1; id + 1 + size input ]
  | Append ts ->
      List.rev
        (fst
           (List.fold_left
              (fun (acc, next) t -> (next :: acc, next + size t))
              ([], id + 1) ts))

let disjunct_child_ids id = function Project _ | Aggregate _ -> [ id + 1 ]

let coll_child_ids id = function
  | Union { disjuncts; _ } ->
      List.rev
        (fst
           (List.fold_left
              (fun (acc, next) d -> (next :: acc, next + size_disjunct d))
              ([], id + 1) disjuncts))
  | Fallback _ -> []

(* Base ids for a whole program: strata in order (each definition's
   collection plan), then the main plan. *)
let program_ids (pp : program_plan) : (rel_name * int) list * int option =
  let counter = ref 0 in
  let take n =
    let v = !counter in
    counter := !counter + n;
    v
  in
  let defs =
    List.concat_map
      (function
        | Nonrecursive dp -> [ (dp.dname, take (size_coll dp.dplan)) ]
        | Recursive dps ->
            List.map (fun dp -> (dp.dname, take (size_coll dp.dplan))) dps)
      pp.strata
  in
  let main =
    match pp.main with
    | Main_coll p -> Some (take (size_coll p))
    | Main_sentence _ -> None
  in
  (defs, main)

let op_name = function
  | One -> "unit"
  | Scan _ -> "scan"
  | Subquery _ -> "subquery"
  | Lateral _ -> "lateral"
  | Product _ -> "product"
  | Hash_join _ -> "hash_join"
  | Filter _ -> "filter"
  | Residual _ -> "residual"
  | Semi { anti; _ } -> if anti then "anti_join" else "semi_join"
  | Resolve _ -> "resolve"
  | Prune _ -> "prune"
  | Append _ -> "append"

let disjunct_op_name = function
  | Project _ -> "project"
  | Aggregate _ -> "hash_aggregate"

let coll_op_name = function Union _ -> "union" | Fallback _ -> "fallback"

(* ------------------------------------------------------------------ *)
(* Per-node runtime actuals (EXPLAIN ANALYZE)                          *)
(* ------------------------------------------------------------------ *)

(* Filled in by the executor when it runs with a stats table; accumulated
   across invocations (fixpoint iterations, per-row laterals), so [a_rows]
   is the total number of rows the node emitted over the whole run. *)
type actual = {
  mutable a_invocations : int;
  mutable a_rows : int;
  mutable a_incl_ns : int64;  (* inclusive wall-clock, children included *)
  mutable a_build : int;  (* hash-table build-side rows *)
  mutable a_probe : int;  (* probe-side rows *)
  mutable a_matches : int;  (* probe hits that produced output *)
  mutable a_iterations : int;  (* fixpoint rounds (collection heads) *)
  mutable a_deltas : int list;  (* per-iteration delta sizes, reversed *)
}

type stats = (int, actual) Hashtbl.t

let fresh_stats () : stats = Hashtbl.create 64

let touch (st : stats) id =
  match Hashtbl.find_opt st id with
  | Some a -> a
  | None ->
      let a =
        {
          a_invocations = 0;
          a_rows = 0;
          a_incl_ns = 0L;
          a_build = 0;
          a_probe = 0;
          a_matches = 0;
          a_iterations = 0;
          a_deltas = [];
        }
      in
      Hashtbl.replace st id a;
      a

let actual_of (st : stats) id = Hashtbl.find_opt st id

(* Q-error of an estimate against an actual: max/min of the two, both
   clamped to >= 1 so empty results stay finite. 1.0 is a perfect guess. *)
let q_error est act =
  let est = max 1 est and act = max 1 act in
  Float.of_int (max est act) /. Float.of_int (min est act)

(* all range variables syntactically referenced anywhere in a fragment —
   a safe over-approximation of the inputs it needs *)
let term_ref_vars t = List.map fst (term_vars t)
let pred_ref_vars p = List.concat_map term_ref_vars (pred_terms p)

let rec formula_ref_vars = function
  | True -> []
  | Pred p -> pred_ref_vars p
  | And fs | Or fs -> List.concat_map formula_ref_vars fs
  | Not f -> formula_ref_vars f
  | Exists s ->
      List.concat_map
        (fun b ->
          match b.source with
          | Base _ -> []
          | Nested c -> formula_ref_vars c.body)
        s.bindings
      @ formula_ref_vars s.body

let rec plan_ref_vars = function
  | One -> []
  | Scan { filters; _ } -> List.concat_map pred_ref_vars filters
  | Subquery { plan; _ } -> coll_plan_ref_vars plan
  | Lateral { input; plan; _ } ->
      plan_ref_vars input @ coll_plan_ref_vars plan
  | Product { left; right } -> plan_ref_vars left @ plan_ref_vars right
  | Hash_join { left; right; keys } ->
      plan_ref_vars left @ plan_ref_vars right
      @ List.concat_map
          (fun k -> term_ref_vars k.outer @ term_ref_vars k.inner)
          keys
  | Filter { input; preds } ->
      plan_ref_vars input @ List.concat_map pred_ref_vars preds
  | Residual { input; conjs } ->
      plan_ref_vars input @ List.concat_map formula_ref_vars conjs
  | Semi { input; sub; keys; residual; _ } ->
      plan_ref_vars input @ plan_ref_vars sub
      @ List.concat_map
          (fun k -> term_ref_vars k.outer @ term_ref_vars k.inner)
          keys
      @ List.concat_map pred_ref_vars residual
  | Resolve { input; scope; _ } ->
      plan_ref_vars input @ formula_ref_vars scope.body
  | Prune { input; _ } -> plan_ref_vars input
  | Append ts -> List.concat_map plan_ref_vars ts

and disjunct_ref_vars = function
  | Project { input; assigns } ->
      plan_ref_vars input @ List.concat_map (fun (_, t) -> term_ref_vars t) assigns
  | Aggregate { input; keys; post; assigns; _ } ->
      plan_ref_vars input
      @ List.map fst keys
      @ List.concat_map formula_ref_vars post
      @ List.concat_map (fun (_, t) -> term_ref_vars t) assigns

and coll_plan_ref_vars = function
  | Union { disjuncts; _ } -> List.concat_map disjunct_ref_vars disjuncts
  | Fallback { coll; _ } -> formula_ref_vars coll.body

(* ------------------------------------------------------------------ *)
(* Delta substitution                                                  *)
(* ------------------------------------------------------------------ *)

(* Shared by the executor's seminaive fixpoint and the incremental view
   maintenance layer (Arc_ivm): count scan occurrences of a set of
   relations and rewrite a single occurrence to read a different relation.
   The traversal order only needs to be self-consistent between
   [count_scans] and [subst_scan_with]; both use the same preorder,
   descending into nested sub-plans and semi-join subtrees. *)

let delta_name n = "__delta__" ^ n

let rec count_scans component (t : t) : int =
  match t with
  | One -> 0
  | Scan { rel; _ } -> if List.mem rel component then 1 else 0
  | Subquery { plan; _ } -> count_scans_coll component plan
  | Lateral { input; plan; _ } ->
      count_scans component input + count_scans_coll component plan
  | Product { left; right } | Hash_join { left; right; _ } ->
      count_scans component left + count_scans component right
  | Filter { input; _ } | Residual { input; _ } | Resolve { input; _ }
  | Prune { input; _ } ->
      count_scans component input
  | Semi { input; sub; _ } ->
      count_scans component input + count_scans component sub
  | Append ts ->
      List.fold_left (fun acc t -> acc + count_scans component t) 0 ts

and count_scans_disjunct component = function
  | Project { input; _ } | Aggregate { input; _ } -> count_scans component input

and count_scans_coll component = function
  | Union { disjuncts; _ } ->
      List.fold_left
        (fun acc d -> acc + count_scans_disjunct component d)
        0 disjuncts
  | Fallback _ -> 0

(* Occurrence [j] (preorder index among scans of [component] relations) is
   renamed with [rename j rel]; [None] leaves the scan untouched. The
   rewrite is shape-preserving, so stable node ids carry over. *)
let subst_scans_with component (rename : int -> rel_name -> rel_name option)
    (p : coll_plan) : coll_plan =
  let k = ref (-1) in
  let rec go_t (t : t) : t =
    match t with
    | One -> t
    | Scan s when List.mem s.rel component -> (
        incr k;
        match rename !k s.rel with
        | Some rel -> Scan { s with rel }
        | None -> t)
    | Scan _ -> t
    | Subquery s -> Subquery { s with plan = go_coll s.plan }
    | Lateral l -> Lateral { l with input = go_t l.input; plan = go_coll l.plan }
    | Product { left; right } -> Product { left = go_t left; right = go_t right }
    | Hash_join j -> Hash_join { j with left = go_t j.left; right = go_t j.right }
    | Filter f -> Filter { f with input = go_t f.input }
    | Residual r -> Residual { r with input = go_t r.input }
    | Resolve r -> Resolve { r with input = go_t r.input }
    | Prune p -> Prune { p with input = go_t p.input }
    | Semi s -> Semi { s with input = go_t s.input; sub = go_t s.sub }
    | Append ts -> Append (List.map go_t ts)
  and go_disjunct = function
    | Project pr -> Project { pr with input = go_t pr.input }
    | Aggregate ag -> Aggregate { ag with input = go_t ag.input }
  and go_coll = function
    | Union u -> Union { u with disjuncts = List.map go_disjunct u.disjuncts }
    | Fallback _ as f -> f
  in
  go_coll p

let subst_scan component i (p : coll_plan) : coll_plan =
  subst_scans_with component
    (fun j rel -> if j = i then Some (delta_name rel) else None)
    p

(* Same traversal over a bare pipeline, for callers that differentiate one
   disjunct's input rather than a whole collection plan. *)
let subst_scans_with_t component (rename : int -> rel_name -> rel_name option)
    (t0 : t) : t =
  match
    subst_scans_with component rename
      (Union
         {
           head = { head_name = "__subst__"; head_attrs = [] };
           disjuncts = [ Project { input = t0; assigns = [] } ];
         })
  with
  | Union { disjuncts = [ Project { input; _ } ]; _ } -> input
  | _ -> assert false

(* Plan-level delta substitution is sound only when every reference to a
   component relation is a plan [Scan]; references hidden inside fragments
   the reference evaluator executes as callbacks (residual formulas,
   resolve scopes, fallbacks, aggregate post-conditions) cannot be
   substituted, so such components run the naive iteration instead. *)
let mentions_component component deps =
  List.exists (fun (n, _) -> List.mem n component) deps

let rec opaque_refs component (t : t) : bool =
  let formula_refs f =
    mentions_component component
      (Arc_core.Depend.formula_deps ~neg:false ~grouped:false [] f)
  in
  match t with
  | One -> false
  | Scan { filters; _ } -> List.exists (fun p -> formula_refs (Pred p)) filters
  | Subquery { plan; _ } -> opaque_refs_coll component plan
  | Lateral { input; plan; _ } ->
      opaque_refs component input || opaque_refs_coll component plan
  | Product { left; right } | Hash_join { left; right; _ } ->
      opaque_refs component left || opaque_refs component right
  | Filter { input; _ } | Prune { input; _ } -> opaque_refs component input
  | Residual { input; conjs } ->
      List.exists formula_refs conjs || opaque_refs component input
  | Resolve { input; scope; _ } ->
      formula_refs (Exists scope) || opaque_refs component input
  | Semi { input; sub; _ } ->
      opaque_refs component input || opaque_refs component sub
  | Append ts -> List.exists (opaque_refs component) ts

and opaque_refs_coll component = function
  | Union { disjuncts; _ } ->
      List.exists
        (fun d ->
          match d with
          | Project { input; _ } -> opaque_refs component input
          | Aggregate { input; post; _ } ->
              opaque_refs component input
              || List.exists
                   (fun f ->
                     mentions_component component
                       (Arc_core.Depend.formula_deps ~neg:false ~grouped:false
                          [] f))
                   post)
        disjuncts
  | Fallback { coll; _ } ->
      mentions_component component (Arc_core.Depend.collection_deps coll)

let seminaive_eligible component (dps : def_plan list) =
  List.for_all
    (fun dp ->
      (not (opaque_refs_coll component dp.dplan))
      &&
      (* every AST-level reference must correspond to a plan scan *)
      let ast_refs =
        List.length
          (List.filter
             (fun (n, _) -> List.mem n component)
             (Arc_core.Depend.collection_deps dp.dcoll))
      in
      count_scans_coll component dp.dplan = ast_refs)
    dps
