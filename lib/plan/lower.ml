open Arc_core.Ast
module Analysis = Arc_core.Analysis
module Canon = Arc_core.Canon
module Relation = Arc_relation.Relation
module Database = Arc_relation.Database

(* What the lowering needs to know about the world: which relation names are
   finite (base relations with a cardinality estimate, safe definitions),
   everything else being deferred to external/abstract resolution. [stats]
   carries whatever per-relation column statistics the database has
   collected (ANALYZE); the cost model ([Card]) degrades gracefully when it
   is empty. *)
type env = {
  cards : (rel_name * int) list;
  defs : rel_name list;
  stats : (rel_name * Arc_relation.Stats.t) list;
}

let env ?(cards = []) ?(defs = []) ?(stats = []) () = { cards; defs; stats }

let env_of_db ~db ~defs =
  {
    cards =
      List.map
        (fun n -> (n, Relation.cardinality (Database.find db n)))
        (Database.names db);
    defs;
    stats = Database.stats_bindings db;
  }

let default_card = 64

let source_finite env = function
  | Nested _ -> true
  | Base n -> List.mem_assoc n env.cards || List.mem n env.defs

let card env n =
  match List.assoc_opt n env.cards with Some c -> c | None -> default_card

(* ------------------------------------------------------------------ *)
(* Collection lowering                                                 *)
(* ------------------------------------------------------------------ *)

(* Mirrors the reference evaluator's head-assignment extraction
   (eval.ml): assignments may sit at any positive existential depth; an
   extracted predicate is replaced by [True]; a second assignment to the
   same attribute becomes the constraint [t0 = t]. *)
let extract_assignments ~head scope_body =
  let assignments = Hashtbl.create 8 in
  let rec extract f =
    match f with
    | Pred p -> (
        match Analysis.assignment_of ~heads:[ head.head_name ] p with
        | Some ((_, a), t) when List.mem a head.head_attrs -> (
            match Hashtbl.find_opt assignments a with
            | None ->
                Hashtbl.add assignments a t;
                True
            | Some t0 when not (equal_term t0 t) -> Pred (Cmp (Eq, t0, t))
            | Some _ -> True)
        | _ -> f)
    | And fs -> And (List.map extract fs)
    | Exists s -> Exists { s with body = extract s.body }
    | True | Or _ | Not _ -> f
  in
  let residual = Canon.simplify_formula (extract scope_body) in
  let assigns =
    List.filter_map
      (fun a ->
        match Hashtbl.find_opt assignments a with
        | Some t -> Some (a, t)
        | None -> None)
      head.head_attrs
  in
  (assigns, residual)

let free_vars_collection c = Analysis.free_vars_query (Coll c)

let product left right =
  match left with Ir.One -> right | _ -> Ir.Product { left; right }

let rec lower_collection env (c : collection) : Ir.coll_plan =
  let body = Canon.simplify_formula c.body in
  let ds = disjuncts body in
  let annotated =
    List.exists
      (fun d -> match d with Exists s -> s.join <> None | _ -> false)
      ds
  in
  if annotated then
    Fallback
      { head = c.head; coll = c; reason = "join-annotated scope" }
  else
    Union
      { head = c.head; disjuncts = List.map (lower_disjunct env c.head) ds }

and lower_disjunct env head d : Ir.disjunct_plan =
  let scope =
    match d with
    | Exists s -> s
    | f -> { bindings = []; grouping = None; join = None; body = f }
  in
  let assigns, residual = extract_assignments ~head scope.body in
  let conditions = conjuncts residual in
  let finite, deferred =
    List.partition (fun b -> source_finite env b.source) scope.bindings
  in
  (* enumeration chain, in binding order (later bindings see earlier ones) *)
  let chain =
    List.fold_left
      (fun acc b ->
        match b.source with
        | Base n ->
            product acc
              (Ir.Scan { var = b.var; rel = n; filters = []; card = card env n })
        | Nested nc ->
            let sub = lower_collection env nc in
            let earlier = Ir.bound_vars acc in
            let correlated =
              List.exists
                (fun v -> List.mem v earlier)
                (free_vars_collection nc)
            in
            if correlated then Ir.Lateral { input = acc; var = b.var; plan = sub }
            else product acc (Ir.Subquery { var = b.var; plan = sub }))
      Ir.One finite
  in
  (* deferred bindings resolve in binding order against the PRE-extraction
     scope body (seed equations are detected there, as in the reference) *)
  let chain =
    List.fold_left
      (fun acc b -> Ir.Resolve { input = acc; binding = b; scope })
      chain deferred
  in
  match scope.grouping with
  | None ->
      let input =
        if conditions = [] then chain
        else Ir.Residual { input = chain; conjs = conditions }
      in
      Project { input; assigns }
  | Some keys ->
      let pre, post =
        List.partition (fun f -> not (formula_has_agg f)) conditions
      in
      let input =
        if pre = [] then chain else Ir.Residual { input = chain; conjs = pre }
      in
      Aggregate
        {
          input;
          keys;
          scope_vars = List.map (fun b -> b.var) scope.bindings;
          post;
          assigns;
        }

(* ------------------------------------------------------------------ *)
(* Program lowering                                                    *)
(* ------------------------------------------------------------------ *)

let lower_program env ~safe (prog : program) : Ir.program_plan =
  let scc_list, adj = Arc_core.Depend.sccs safe in
  let find n = List.find (fun d -> d.def_name = n) safe in
  let def_plan d =
    {
      Ir.dname = d.def_name;
      dcoll = d.def_body;
      dplan = lower_collection env d.def_body;
    }
  in
  let strata =
    List.map
      (fun component ->
        if Arc_core.Depend.is_recursive adj component then
          Ir.Recursive (List.map (fun n -> def_plan (find n)) component)
        else Ir.Nonrecursive (def_plan (find (List.hd component))))
      scc_list
  in
  let main =
    match prog.main with
    | Coll c -> Ir.Main_coll (lower_collection env c)
    | Sentence f -> Ir.Main_sentence f
  in
  { Ir.strata; main }
