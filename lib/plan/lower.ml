open Arc_core.Ast
module Analysis = Arc_core.Analysis
module Canon = Arc_core.Canon
module Relation = Arc_relation.Relation
module Database = Arc_relation.Database
module Schema = Arc_relation.Schema
module V = Arc_value.Value

(* What the lowering needs to know about the world: which relation names are
   finite (base relations with a cardinality estimate, safe definitions),
   everything else being deferred to external/abstract resolution. [schemas]
   carries the statically known attribute lists (base relations and, inside
   [lower_program], definition heads) — the RANF translation needs them to
   build NULL pads for outer joins. [stats] carries whatever per-relation
   column statistics the database has collected (ANALYZE); the cost model
   ([Card]) degrades gracefully when it is empty. *)
type env = {
  cards : (rel_name * int) list;
  defs : rel_name list;
  schemas : (rel_name * attr list) list;
  stats : (rel_name * Arc_relation.Stats.t) list;
}

let env ?(cards = []) ?(defs = []) ?(schemas = []) ?(stats = []) () =
  { cards; defs; schemas; stats }

let env_of_db ~db ~defs =
  {
    cards =
      List.map
        (fun n -> (n, Relation.cardinality (Database.find db n)))
        (Database.names db);
    defs;
    schemas =
      List.map
        (fun n -> (n, Schema.attrs (Relation.schema (Database.find db n))))
        (Database.names db);
    stats = Database.stats_bindings db;
  }

let default_card = 64

let source_finite env = function
  | Nested _ -> true
  | Base n -> List.mem_assoc n env.cards || List.mem n env.defs

let card env n =
  match List.assoc_opt n env.cards with Some c -> c | None -> default_card

(* The guarded assertion path: a scope shape the translation cannot handle
   statically. The whole collection then runs on the reference evaluator;
   its cardinality guess is the saturating product of the referenced
   relations' cardinalities — honest about being a heuristic, instead of
   the historical hardcoded 32. *)
exception Bail of string

let fallback_card env (c : collection) =
  let deps =
    List.sort_uniq compare
      (List.map fst (Arc_core.Depend.collection_deps c))
  in
  List.fold_left (fun acc n -> Ir.sat_mul acc (max 1 (card env n))) 1 deps

(* ------------------------------------------------------------------ *)
(* Collection lowering                                                 *)
(* ------------------------------------------------------------------ *)

(* Mirrors the reference evaluator's head-assignment extraction
   (eval.ml): assignments may sit at any positive existential depth; an
   extracted predicate is replaced by [True]; a second assignment to the
   same attribute becomes the constraint [t0 = t]. *)
let extract_assignments ~head scope_body =
  let assignments = Hashtbl.create 8 in
  let rec extract f =
    match f with
    | Pred p -> (
        match Analysis.assignment_of ~heads:[ head.head_name ] p with
        | Some ((_, a), t) when List.mem a head.head_attrs -> (
            match Hashtbl.find_opt assignments a with
            | None ->
                Hashtbl.add assignments a t;
                True
            | Some t0 when not (equal_term t0 t) -> Pred (Cmp (Eq, t0, t))
            | Some _ -> True)
        | _ -> f)
    | And fs -> And (List.map extract fs)
    | Exists s -> Exists { s with body = extract s.body }
    | True | Or _ | Not _ -> f
  in
  let residual = Canon.simplify_formula (extract scope_body) in
  let assigns =
    List.filter_map
      (fun a ->
        match Hashtbl.find_opt assignments a with
        | Some t -> Some (a, t)
        | None -> None)
      head.head_attrs
  in
  (assigns, residual)

let free_vars_collection c = Analysis.free_vars_query (Coll c)

let product left right =
  match left with Ir.One -> right | _ -> Ir.Product { left; right }

let rec lower_collection env (c : collection) : Ir.coll_plan =
  let body = Canon.simplify_formula c.body in
  let ds = disjuncts body in
  match
    Ir.Union
      { head = c.head; disjuncts = List.map (lower_disjunct env c.head) ds }
  with
  | plan -> plan
  | exception Bail reason ->
      Fallback { head = c.head; coll = c; reason; fcard = fallback_card env c }

and lower_disjunct env head d : Ir.disjunct_plan =
  let scope =
    match d with
    | Exists s -> s
    | f -> { bindings = []; grouping = None; join = None; body = f }
  in
  match scope.join with
  | Some _ -> lower_annotated env head scope
  | None ->
      let assigns, residual = extract_assignments ~head scope.body in
      let conditions = conjuncts residual in
      let finite, deferred =
        List.partition (fun b -> source_finite env b.source) scope.bindings
      in
      (* enumeration chain, in binding order (later bindings see earlier
         ones) *)
      let chain =
        List.fold_left (fun acc b -> extend_chain env acc b) Ir.One finite
      in
      (* deferred bindings resolve in binding order against the
         PRE-extraction scope body (seed equations are detected there, as in
         the reference) *)
      let chain =
        List.fold_left
          (fun acc b -> Ir.Resolve { input = acc; binding = b; scope })
          chain deferred
      in
      finish_disjunct scope ~assigns ~conditions ~chain

(* One finite binding appended to an enumeration chain: base relations scan,
   nested collections become laterals when correlated with earlier
   bindings. *)
and extend_chain env acc (b : binding) : Ir.t =
  match b.source with
  | Base n ->
      product acc
        (Ir.Scan { var = b.var; rel = n; filters = []; card = card env n })
  | Nested nc ->
      let sub = lower_collection env nc in
      let earlier = Ir.bound_vars acc in
      let correlated =
        List.exists (fun v -> List.mem v earlier) (free_vars_collection nc)
      in
      if correlated then Ir.Lateral { input = acc; var = b.var; plan = sub }
      else product acc (Ir.Subquery { var = b.var; plan = sub })

(* The shared disjunct tail: residual conditions, then projection or
   grouping, identical for plain and join-annotated scopes. *)
and finish_disjunct (scope : scope) ~assigns ~conditions ~chain :
    Ir.disjunct_plan =
  match scope.grouping with
  | None ->
      let input =
        if conditions = [] then chain
        else Ir.Residual { input = chain; conjs = conditions }
      in
      Project { input; assigns }
  | Some keys ->
      let pre, post =
        List.partition (fun f -> not (formula_has_agg f)) conditions
      in
      let input =
        if pre = [] then chain else Ir.Residual { input = chain; conjs = pre }
      in
      Aggregate
        {
          input;
          keys;
          scope_vars = List.map (fun b -> b.var) scope.bindings;
          post;
          assigns;
        }

(* RANF-style translation of a join-annotated scope (Fig 12), mirroring the
   reference evaluator's [enum_join_tree] step by step — the decomposition
   (literal expansion, ON/WHERE split, condition-to-node attachment) is
   shared through [Analysis], so both engines see the same predicates at
   the same nodes:

   - [J_inner] nodes become products filtered by their ON conditions;
   - [J_left (a, b)] becomes an [Append] of the matched branch
     (product + ON filter) and the NULL-padded anti-join branch (rows of
     [a] with no ON partner in [b], padded with all-NULL tuples for [b]'s
     variables);
   - [J_full] adds the symmetric right branch.

   Equality ON conditions whose sides split cleanly across the join become
   anti-join hash keys; the rest stay residual probe predicates (3VL: a
   NULL key never matches, exactly as [Eq] never evaluates to [True] on
   NULL). Bindings outside the tree chain on afterwards, exactly as in the
   plain path. Bails to the guarded [Fallback] only when a NULL pad's
   schema is unknown or a tree variable is not finite. *)
and lower_annotated env head (scope0 : scope) : Ir.disjunct_plan =
  let heads = [ head.head_name ] in
  let scope, lits = Analysis.prepare_join_literals scope0 in
  let attached, residual_conjs =
    Analysis.split_join_conditions ~heads scope
  in
  let tree = Option.get scope.join in
  let tree_vars = join_tree_vars tree in
  let node_preds node = Analysis.node_join_preds tree scope ~attached node in
  let binding_of v =
    match List.find_opt (fun b -> b.var = v) scope.bindings with
    | Some b -> b
    | None ->
        raise
          (Bail
             (Printf.sprintf "join annotation references unbound variable %S"
                v))
  in
  let is_lit v = List.mem_assoc v lits in
  let finite b = is_lit b.var || source_finite env b.source in
  let schema_of v =
    if is_lit v then [ "val" ]
    else
      match (binding_of v).source with
      | Nested nc -> nc.head.head_attrs
      | Base n -> (
          match List.assoc_opt n env.schemas with
          | Some attrs -> attrs
          | None ->
              raise
                (Bail
                   (Printf.sprintf "unknown schema for %S (NULL padding)" n)))
  in
  (* A one-row constant collection bound to [v]: a literal leaf's singleton
     {val: c}, or an all-NULL pad over the given attributes. *)
  let constant_row v attrs values : Ir.t =
    Ir.Subquery
      {
        var = v;
        plan =
          Ir.Union
            {
              head = { head_name = v; head_attrs = attrs };
              disjuncts =
                [
                  Ir.Project
                    {
                      input = Ir.One;
                      assigns = List.map2 (fun a c -> (a, Const c)) attrs values;
                    };
                ];
            };
      }
  in
  let null_pad v (t : Ir.t) : Ir.t =
    let attrs = schema_of v in
    Ir.Product
      {
        left = t;
        right = constant_row v attrs (List.map (fun _ -> V.Null) attrs);
      }
  in
  let filtered preds t =
    if preds = [] then t else Ir.Filter { input = t; preds }
  in
  let leaf v : Ir.t =
    if is_lit v then constant_row v [ "val" ] [ List.assoc v lits ]
    else
      match (binding_of v).source with
      | Nested nc -> Ir.Subquery { var = v; plan = lower_collection env nc }
      | Base n when source_finite env (Base n) ->
          Ir.Scan { var = v; rel = n; filters = []; card = card env n }
      | Base n ->
          raise
            (Bail (Printf.sprintf "join-tree variable %S is not finite" n))
  in
  let scope_var v = List.exists (fun b -> b.var = v) scope.bindings in
  (* ON-condition → equi-key split at an outer-join node: [Cmp (Eq, l, r)]
     with [l]'s scope variables entirely on one side and [r]'s entirely on
     the other becomes an anti-join hash key; everything else stays a
     residual probe predicate. *)
  let split_keys lvars rvars preds =
    List.fold_left
      (fun (keys, residual) p ->
        match p with
        | Cmp (Eq, l, r) -> (
            let side t =
              let vs = List.filter scope_var (List.map fst (term_vars t)) in
              if vs = [] then `None
              else if List.for_all (fun v -> List.mem v lvars) vs then `L
              else if List.for_all (fun v -> List.mem v rvars) vs then `R
              else `Mixed
            in
            match (side l, side r) with
            | `L, `R -> (keys @ [ { Ir.outer = l; inner = r } ], residual)
            | `R, `L -> (keys @ [ { Ir.outer = r; inner = l } ], residual)
            | _ -> (keys, residual @ [ p ]))
        | _ -> (keys, residual @ [ p ]))
      ([], []) preds
  in
  let rec translate node : Ir.t =
    let mine = node_preds node in
    match node with
    | J_lit _ -> raise (Bail "unexpanded literal leaf")
    | J_var v -> filtered mine (leaf v)
    | J_inner l ->
        filtered mine
          (List.fold_left
             (fun acc child -> product acc (translate child))
             Ir.One l)
    | J_left (a, b) ->
        let pa = translate a and pb = translate b in
        let bvars = join_tree_vars b in
        let keys, residual = split_keys (join_tree_vars a) bvars mine in
        let matched = filtered mine (Ir.Product { left = pa; right = pb }) in
        let unmatched =
          List.fold_left
            (fun acc v -> null_pad v acc)
            (Ir.Semi
               {
                 anti = true;
                 input = pa;
                 sub = pb;
                 sub_vars = bvars;
                 keys;
                 residual;
               })
            bvars
        in
        Ir.Append [ matched; unmatched ]
    | J_full (a, b) ->
        let pa = translate a and pb = translate b in
        let avars = join_tree_vars a and bvars = join_tree_vars b in
        let keys, residual = split_keys avars bvars mine in
        let matched = filtered mine (Ir.Product { left = pa; right = pb }) in
        let left_unmatched =
          List.fold_left
            (fun acc v -> null_pad v acc)
            (Ir.Semi
               {
                 anti = true;
                 input = pa;
                 sub = pb;
                 sub_vars = bvars;
                 keys;
                 residual;
               })
            bvars
        in
        let swapped =
          List.map (fun k -> { Ir.outer = k.Ir.inner; inner = k.Ir.outer }) keys
        in
        let right_unmatched =
          List.fold_left
            (fun acc v -> null_pad v acc)
            (Ir.Semi
               {
                 anti = true;
                 input = pb;
                 sub = pa;
                 sub_vars = avars;
                 keys = swapped;
                 residual;
               })
            avars
        in
        Ir.Append [ matched; left_unmatched; right_unmatched ]
  in
  let tree_plan = translate tree in
  (* bindings not mentioned in the tree are implicit inner factors,
     chained after the tree exactly as in the plain path *)
  let missing =
    List.filter
      (fun b -> finite b && not (List.mem b.var tree_vars))
      scope.bindings
  in
  let chain =
    List.fold_left (fun acc b -> extend_chain env acc b) tree_plan missing
  in
  let deferred = List.filter (fun b -> not (finite b)) scope.bindings in
  let chain =
    List.fold_left
      (fun acc b -> Ir.Resolve { input = acc; binding = b; scope })
      chain deferred
  in
  (* head assignments are extracted from the residual (WHERE) conjuncts;
     the attached ON conditions already live inside the tree *)
  let assigns, residual = extract_assignments ~head (And residual_conjs) in
  finish_disjunct scope ~assigns ~conditions:(conjuncts residual) ~chain

(* ------------------------------------------------------------------ *)
(* Program lowering                                                    *)
(* ------------------------------------------------------------------ *)

let lower_program env ~safe (prog : program) : Ir.program_plan =
  (* definition heads are IDB relations whose schemas are statically known;
     register them so NULL pads over definition-bound variables lower *)
  let env =
    {
      env with
      schemas =
        List.map (fun d -> (d.def_name, d.def_body.head.head_attrs)) safe
        @ env.schemas;
    }
  in
  let scc_list, adj = Arc_core.Depend.sccs safe in
  let find n = List.find (fun d -> d.def_name = n) safe in
  let def_plan d =
    {
      Ir.dname = d.def_name;
      dcoll = d.def_body;
      dplan = lower_collection env d.def_body;
    }
  in
  let strata =
    List.map
      (fun component ->
        if Arc_core.Depend.is_recursive adj component then
          Ir.Recursive (List.map (fun n -> def_plan (find n)) component)
        else Ir.Nonrecursive (def_plan (find (List.hd component))))
      scc_list
  in
  let main =
    match prog.main with
    | Coll c -> Ir.Main_coll (lower_collection env c)
    | Sentence f -> Ir.Main_sentence f
  in
  { Ir.strata; main }
