open Arc_core.Ast
module Stats = Arc_relation.Stats
module V = Arc_value.Value

(* The statistics-driven cardinality model. Replaces [Ir.estimate]'s magic
   shifts with selectivity arithmetic over per-relation column statistics:
   equality through MCVs and distinct counts, ranges through equi-depth
   histograms, join cardinality through distinct-count overlap
   (|L|·|R| / max(d_l, d_r), zero when key ranges are disjoint), and
   independence across conjuncts.

   Every estimate carries a provenance tag so misestimates are
   attributable: [Exact] (true base cardinalities, no guessing involved),
   [Stats] (every selectivity decision backed by statistics), [Heuristic]
   (no statistics contributed anywhere below), [Mixed] (some of each).

   Compatibility invariant, tested in [test_stats.ml]: a [Heuristic] node
   reports {e exactly} [Ir.estimate]'s number — with no statistics in the
   environment this model degrades to the historical estimator, so plans
   and explain output only change once [ANALYZE] has run. *)

type env = (rel_name * Stats.t) list

type src = Exact | Stats | Stale | Heuristic | Mixed

type est = { rows : float; src : src }

let src_name = function
  | Exact -> "exact"
  | Stats -> "stats"
  | Stale -> "stale"
  | Heuristic -> "heuristic"
  | Mixed -> "mixed"

(* [Exact] is the identity: it never degrades a neighbour. [Stale] is
   sticky: any estimate that leaned on post-ANALYZE-drift statistics stays
   flagged, so [arc analyze] can attribute misestimates to stale details.
   Anything else mixing statistics with guesswork is [Mixed]. *)
let meet a b =
  match (a, b) with
  | Exact, x | x, Exact -> x
  | Stale, _ | _, Stale -> Stale
  | Heuristic, Heuristic -> Heuristic
  | Stats, Stats -> Stats
  | _ -> Mixed

let cap = 1e9

let rows { rows; _ } =
  if Float.is_nan rows then 1
  else max 1 (int_of_float (Float.min cap rows))

(* ------------------------------------------------------------------ *)
(* Column resolution                                                   *)
(* ------------------------------------------------------------------ *)

(* A scan map assigns plan variables to the base relations that bind them;
   [Attr (v, a)] then resolves to column statistics. Stale statistics keep
   their row count trustworthy but not their column details. *)
let rec scan_map (t : Ir.t) : (var * rel_name) list =
  match t with
  | One -> []
  | Scan { var; rel; _ } -> [ (var, rel) ]
  | Subquery _ -> []
  | Lateral { input; _ } -> scan_map input
  | Product { left; right } | Hash_join { left; right; _ } ->
      scan_map left @ scan_map right
  | Filter { input; _ }
  | Residual { input; _ }
  | Semi { input; _ }
  | Prune { input; _ } ->
      scan_map input
  | Append ts -> List.concat_map scan_map ts
  | Resolve { input; binding; _ } -> (
      match binding.source with
      | Base n -> (binding.var, n) :: scan_map input
      | Nested _ -> scan_map input)

let resolve_col env smap = function
  | Attr (v, a) -> (
      match List.assoc_opt v smap with
      | None -> None
      | Some rel -> (
          match List.assoc_opt rel env with
          | Some s -> (
              match Stats.col s a with
              | Some c -> Some (s, c)
              | None -> None)
          | None -> None))
  | _ -> None

(* Stale column details are not discarded — they are discounted: the
   grounded selectivity is blended toward [default] (the heuristic for the
   context) by the relative row-count drift since ANALYZE. Fresh statistics
   have zero drift, so the blend is the identity. Returns the blended
   selectivity and whether any contributing statistics were stale. *)
let blend ss ~default sel =
  let w = List.fold_left (fun acc s -> Float.max acc (Stats.drift s)) 0.0 ss in
  let stale = List.exists (fun s -> s.Stats.s_stale) ss in
  (((1.0 -. w) *. sel) +. (w *. default), stale)

(* ------------------------------------------------------------------ *)
(* Predicate selectivity                                               *)
(* ------------------------------------------------------------------ *)

let clamp01 f = Float.max 0.0 (Float.min 1.0 f)

(* Selectivity of one predicate under a scan map: [Some (f, stale)] when
   statistics could ground it (with stale details discounted toward the
   historical factor-2 default), [None] for the heuristic fallback. *)
let pred_sel env smap (p : pred) : (float * bool) option =
  let col = resolve_col env smap in
  let one s sel = Some (blend [ s ] ~default:0.5 sel) in
  match p with
  | Cmp (op, l, r) -> (
      let ranged s c op v =
        Option.map (fun f -> blend [ s ] ~default:0.5 (clamp01 f))
          (Stats.cmp_fraction s c op v)
      in
      match (op, col l, r, col r, l) with
      (* column vs constant *)
      | Eq, Some (s, c), Const v, _, _ | Eq, _, _, Some (s, c), Const v ->
          one s (clamp01 (Stats.eq_fraction s c v))
      | Neq, Some (s, c), Const v, _, _ | Neq, _, _, Some (s, c), Const v ->
          one s (clamp01 (1.0 -. Stats.eq_fraction s c v))
      | Lt, Some (s, c), Const v, _, _ -> ranged s c `Lt v
      | Leq, Some (s, c), Const v, _, _ -> ranged s c `Le v
      | Gt, Some (s, c), Const v, _, _ -> ranged s c `Gt v
      | Geq, Some (s, c), Const v, _, _ -> ranged s c `Ge v
      (* constant vs column: flip the comparison *)
      | Lt, _, _, Some (s, c), Const v -> ranged s c `Gt v
      | Leq, _, _, Some (s, c), Const v -> ranged s c `Ge v
      | Gt, _, _, Some (s, c), Const v -> ranged s c `Lt v
      | Geq, _, _, Some (s, c), Const v -> ranged s c `Le v
      (* column vs column within one region: equality via distinct overlap *)
      | Eq, Some (s1, c1), _, Some (s2, c2), _ ->
          let disjoint =
            match (c1.Stats.c_min, c1.Stats.c_max, c2.Stats.c_min, c2.Stats.c_max)
            with
            | Some lo1, Some hi1, Some lo2, Some hi2 ->
                V.compare hi1 lo2 < 0 || V.compare hi2 lo1 < 0
            | _ -> false
          in
          let sel =
            if disjoint then 0.0
            else
              let d = max c1.Stats.c_distinct c2.Stats.c_distinct in
              if d = 0 then 0.0 else clamp01 (1.0 /. float_of_int d)
          in
          Some (blend [ s1; s2 ] ~default:0.5 sel)
      (* column vs arbitrary expression: uniform over distinct values *)
      | Eq, Some (s, c), _, _, _ | Eq, _, _, Some (s, c), _ ->
          one s (clamp01 (Stats.eq_unknown_fraction s c))
      | _ -> None)
  | Is_null t -> (
      match col t with
      | Some (s, c) -> one s (Stats.null_fraction s c)
      | None -> None)
  | Not_null t -> (
      match col t with
      | Some (s, c) -> one s (clamp01 (1.0 -. Stats.null_fraction s c))
      | None -> None)
  | Like _ -> None

(* Fold predicate selectivities under independence; heuristic conjuncts
   cost the historical factor-2 each (capped at 4 total, matching
   [Ir.estimate]'s [lsr min 4 n]). *)
let preds_sel env smap preds =
  let heur = ref 0 and sel = ref 1.0 and used = ref false and stale = ref false in
  List.iter
    (fun p ->
      match pred_sel env smap p with
      | Some (f, st) ->
          used := true;
          if st then stale := true;
          sel := !sel *. f
      | None -> incr heur)
    preds;
  let heur_sel = 1.0 /. float_of_int (1 lsl min 4 !heur) in
  let src =
    if preds = [] then Exact
    else if !stale then Stale
    else if !heur = 0 then Stats
    else if !used then Mixed
    else Heuristic
  in
  (!sel *. heur_sel, src)

(* ------------------------------------------------------------------ *)
(* Join-key selectivity                                                *)
(* ------------------------------------------------------------------ *)

(* One equi-join key: with distinct counts on both sides, the classic
   containment bound 1/max(d_l, d_r), sharpened to 0 when the key ranges
   cannot overlap; with one side, 1/d; with neither, the historical
   16-fold guess per key. Returns the selectivity (stale details discounted
   toward the per-key 1/16 default) and whether statistics grounded it,
   with the stale flag. *)
let key_sel env lmap rmap (k : Ir.key) =
  let outer = resolve_col env lmap k.Ir.outer in
  let inner = resolve_col env rmap k.Ir.inner in
  let finish ss sel =
    let f, stale = blend ss ~default:(1.0 /. 16.0) sel in
    `Grounded (f, stale)
  in
  match (outer, inner) with
  | Some (s1, c1), Some (s2, c2) ->
      let disjoint =
        match (c1.Stats.c_min, c1.Stats.c_max, c2.Stats.c_min, c2.Stats.c_max)
        with
        | Some lo1, Some hi1, Some lo2, Some hi2 ->
            V.compare hi1 lo2 < 0 || V.compare hi2 lo1 < 0
        | _ -> false
      in
      if disjoint then finish [ s1; s2 ] 0.0
      else
        let d = max c1.Stats.c_distinct c2.Stats.c_distinct in
        finish [ s1; s2 ] (if d = 0 then 0.0 else 1.0 /. float_of_int d)
  | Some (s, c), None | None, Some (s, c) ->
      finish [ s ]
        (if c.Stats.c_distinct = 0 then 0.0
         else 1.0 /. float_of_int c.Stats.c_distinct)
  | None, None -> `Heur

let keys_sel env lmap rmap keys =
  let grounded = ref 0 and sel = ref 1.0 and stale = ref false in
  List.iter
    (fun k ->
      match key_sel env lmap rmap k with
      | `Grounded (f, st) ->
          incr grounded;
          if st then stale := true;
          sel := !sel *. f
      | `Heur -> ())
    keys;
  let heur = List.length keys - !grounded in
  (* ungrounded keys contribute the historical 4-bit shift, capped at 12
     bits across the node like [Ir.estimate] *)
  let heur_sel = 1.0 /. float_of_int (1 lsl min 12 (4 * heur)) in
  let src =
    if keys = [] then Exact
    else if !stale then Stale
    else if heur = 0 then Stats
    else if !grounded > 0 then Mixed
    else Heuristic
  in
  (!sel *. heur_sel, src)

(* ------------------------------------------------------------------ *)
(* Plan estimation                                                     *)
(* ------------------------------------------------------------------ *)

(* A [Heuristic] subtree reports exactly [Ir.estimate]'s number: with an
   empty environment this function {e is} the historical estimator. *)
let reconcile heur_of node e =
  if e.src = Heuristic then { e with rows = float_of_int (heur_of node) }
  else e

let rec estimate env (t : Ir.t) : est =
  reconcile Ir.estimate t
    (match t with
    | One -> { rows = 1.0; src = Exact }
    | Scan { rel; card; filters; var } ->
        let base, base_src =
          match List.assoc_opt rel env with
          | Some s -> (float_of_int s.Stats.s_rows, Exact)
          | None -> (float_of_int card, Exact)
        in
        let sel, sel_src = preds_sel env [ (var, rel) ] filters in
        { rows = base *. sel; src = meet base_src sel_src }
    | Subquery { plan; _ } -> estimate_coll env plan
    | Lateral { input; plan; _ } ->
        let i = estimate env input in
        let p = estimate_coll env plan in
        { rows = i.rows *. p.rows; src = meet i.src p.src }
    | Product { left; right } ->
        let l = estimate env left and r = estimate env right in
        { rows = l.rows *. r.rows; src = meet l.src r.src }
    | Hash_join { left; right; keys } ->
        let l = estimate env left and r = estimate env right in
        let sel, ksrc = keys_sel env (scan_map left) (scan_map right) keys in
        {
          rows = l.rows *. r.rows *. sel;
          src = meet (meet l.src r.src) ksrc;
        }
    | Filter { input; preds } ->
        let i = estimate env input in
        let sel, src = preds_sel env (scan_map input) preds in
        { rows = i.rows *. sel; src = meet i.src src }
    | Residual { input; conjs } ->
        let i = estimate env input in
        let smap = scan_map input in
        (* statistics only ground plain predicate conjuncts; anything else
           keeps the historical halving for the whole node *)
        let sels =
          List.map
            (fun f ->
              match f with Pred p -> pred_sel env smap p | _ -> None)
            conjs
        in
        if List.for_all Option.is_some sels then
          let stale = List.exists (fun s -> snd (Option.get s)) sels in
          {
            rows =
              List.fold_left
                (fun acc s -> acc *. fst (Option.get s))
                i.rows sels;
            src =
              meet i.src
                (if conjs = [] then Exact else if stale then Stale else Stats);
          }
        else { rows = i.rows /. 2.0; src = meet i.src Heuristic }
    | Append ts ->
        List.fold_left
          (fun acc t ->
            let e = estimate env t in
            { rows = acc.rows +. e.rows; src = meet acc.src e.src })
          { rows = 0.0; src = Exact }
          ts
    | Semi { anti; input; sub; keys; _ } ->
        let i = estimate env input in
        let s = estimate env sub in
        let match_sel =
          match keys with
          | [] -> None
          | _ -> (
              let lmap = scan_map input and rmap = scan_map sub in
              let grounded =
                List.map
                  (fun k ->
                    let outer = resolve_col env lmap k.Ir.outer in
                    let inner = resolve_col env rmap k.Ir.inner in
                    match (outer, inner) with
                    | Some (s1, c1), Some (s2, c2) ->
                        let disjoint =
                          match
                            ( c1.Stats.c_min,
                              c1.Stats.c_max,
                              c2.Stats.c_min,
                              c2.Stats.c_max )
                          with
                          | Some lo1, Some hi1, Some lo2, Some hi2 ->
                              V.compare hi1 lo2 < 0 || V.compare hi2 lo1 < 0
                          | _ -> false
                        in
                        let f =
                          if disjoint then 0.0
                          else if c1.Stats.c_distinct = 0 then 0.0
                          else
                            (* fraction of probe-side key values with a build
                               partner, under containment *)
                            clamp01
                              (float_of_int c2.Stats.c_distinct
                              /. float_of_int c1.Stats.c_distinct)
                        in
                        Some (f, [ s1; s2 ])
                    | _ -> None)
                  keys
              in
              if List.for_all Option.is_some grounded then
                let sel =
                  List.fold_left
                    (fun acc s -> Float.min acc (fst (Option.get s)))
                    1.0 grounded
                in
                let ss = List.concat_map (fun s -> snd (Option.get s)) grounded in
                Some (blend ss ~default:0.5 sel)
              else None)
        in
        (match match_sel with
        | Some (sel, stale) ->
            let sel = if anti then 1.0 -. sel else sel in
            {
              rows = i.rows *. clamp01 sel;
              src = meet (meet i.src s.src) (if stale then Stale else Stats);
            }
        | None -> { rows = i.rows /. 2.0; src = meet (meet i.src s.src) Heuristic })
    | Resolve { input; _ } -> estimate env input
    | Prune { input; _ } -> estimate env input)

and estimate_disjunct env (d : Ir.disjunct_plan) : est =
  reconcile Ir.estimate_disjunct d
    (match d with
    | Project { input; _ } -> estimate env input
    | Aggregate { input; keys; _ } ->
        let i = estimate env input in
        if keys = [] then { rows = 1.0; src = i.src }
        else
          let smap = scan_map input in
          let ds =
            List.map
              (fun (v, a) -> resolve_col env smap (Attr (v, a)))
              keys
          in
          if List.for_all Option.is_some ds then
            let groups =
              List.fold_left
                (fun acc c ->
                  acc
                  *. float_of_int (max 1 (snd (Option.get c)).Stats.c_distinct))
                1.0 ds
            in
            let ss = List.map (fun c -> fst (Option.get c)) ds in
            (* stale distinct counts widen toward the historical rows/4 *)
            let groups, stale = blend ss ~default:(i.rows /. 4.0) groups in
            {
              rows = Float.min i.rows groups;
              src = meet i.src (if stale then Stale else Stats);
            }
          else { rows = i.rows /. 4.0; src = meet i.src Heuristic })

and estimate_coll env (c : Ir.coll_plan) : est =
  reconcile Ir.estimate_coll c
    (match c with
    | Union { disjuncts; _ } ->
        List.fold_left
          (fun acc d ->
            let e = estimate_disjunct env d in
            { rows = acc.rows +. e.rows; src = meet acc.src e.src })
          { rows = 0.0; src = Exact }
          disjuncts
    | Fallback { fcard; _ } ->
        (* the lowering estimated [fcard] from the scope's referenced
           relations; still a guess, so tagged honestly *)
        { rows = float_of_int (max 1 fcard); src = Heuristic })
