(* The benchmark harness: regenerates every table/figure behavior the paper
   reports (Part 1), times each experiment and the library's main code paths
   with Bechamel (Parts 2-3), reports modality-size metrics as a proxy for
   the paper's cited user studies (Part 4), collects per-operator counters
   from traced workloads (Part 5), and writes everything as machine-readable
   JSON to BENCH_1.json (override with the BENCH_OUT env var).

   Run with:  dune exec bench/main.exe *)

open Bechamel
open Toolkit
module Catalog = Arc_catalog.Catalog
module Data = Arc_catalog.Data
module V = Arc_value.Value
module Relation = Arc_relation.Relation
module Database = Arc_relation.Database
module Eval = Arc_engine.Eval
module Exec = Arc_engine.Exec
module Tuple = Arc_relation.Tuple
module Obs = Arc_obs.Obs
module Json = Arc_obs.Json
module Metrics = Arc_obs.Metrics
module Ir = Arc_plan.Ir
module Explain = Arc_plan.Explain

let rule () = print_endline (String.make 78 '=')

let section title =
  rule ();
  print_endline title;
  rule ()

(* ------------------------------------------------------------------ *)
(* Part 1: reproduction of every figure/table behavior                 *)
(* ------------------------------------------------------------------ *)

let reproduce () =
  section "PART 1 — Paper reproduction: every figure and equation";
  let total = ref 0 and failed = ref 0 in
  List.iter
    (fun (e : Catalog.entry) ->
      Printf.printf "\n%-18s %s\n%-18s (%s)\n" e.Catalog.id e.Catalog.title ""
        e.Catalog.paper_ref;
      List.iter
        (fun o ->
          incr total;
          if not o.Catalog.ok then incr failed;
          Printf.printf "    %s\n" (Catalog.outcome_to_string o))
        (e.Catalog.run ()))
    Catalog.all;
  Printf.printf "\n>>> %d checks, %d failures across %d experiments\n" !total
    !failed
    (List.length Catalog.all);
  (!total, !failed)

(* ------------------------------------------------------------------ *)
(* Bechamel plumbing                                                   *)
(* ------------------------------------------------------------------ *)

(* Runs a Bechamel group, prints the table, and returns
   [(name, est_ns_per_run)] rows for the JSON report. *)
let run_bench ~name tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.2) ~kde:(Some 500) ()
  in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name tests)
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Printf.printf "\n%-58s %14s\n" "benchmark" "time/run";
  print_endline (String.make 74 '-');
  List.map
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> e
        | _ -> nan
      in
      let human =
        if Float.is_nan est then "n/a"
        else if est > 1e9 then Printf.sprintf "%8.2f s " (est /. 1e9)
        else if est > 1e6 then Printf.sprintf "%8.2f ms" (est /. 1e6)
        else if est > 1e3 then Printf.sprintf "%8.2f µs" (est /. 1e3)
        else Printf.sprintf "%8.0f ns" est
      in
      Printf.printf "%-58s %14s\n" name human;
      (name, est))
    rows

(* Bechamel prefixes grouped test names ("guard/…", "engine/…"), so report
   rows are matched by suffix. *)
let find_suffix rows needle =
  match
    List.find_opt
      (fun (n, _) ->
        String.length n >= String.length needle
        && String.sub n (String.length n - String.length needle)
             (String.length needle)
           = needle)
      rows
  with
  | Some (_, est) when not (Float.is_nan est) -> Some est
  | _ -> None

(* Simple warmup/repeat/median timer for ablations where the two arms must
   run the exact same code path (Bechamel's staging would not let the
   per-run setup — a fresh stats table — stay out of the measurement
   cleanly). The arms are sampled interleaved: heap growth and GC drift
   move both arms together, so back-to-back blocks would misread drift as
   overhead. Each pair reports its minimum — the least-interfered run —
   because by this point in the bench the major heap is large and any
   individual sample can eat a collection. *)
let min_pair_ns ?(warmup = 3) ?(repeats = 21) f g =
  Gc.compact ();
  for _ = 1 to warmup do
    f ();
    g ()
  done;
  let sample h =
    let t0 = Metrics.now_ns () in
    h ();
    let t1 = Metrics.now_ns () in
    Int64.to_float (Int64.sub t1 t0)
  in
  let fs = ref [] and gs = ref [] in
  for _ = 1 to repeats do
    fs := sample f :: !fs;
    gs := sample g :: !gs
  done;
  let best l = List.fold_left Float.min Float.infinity l in
  (best !fs, best !gs)

(* ------------------------------------------------------------------ *)
(* Shared workload data                                                *)
(* ------------------------------------------------------------------ *)

(* chain database P(s,t): 0→1→…→n, the recursion workload of Parts 3, 5,
   6, 7 and 8 *)
let chain n =
  Database.of_list
    [
      ( "P",
        Relation.of_rows [ "s"; "t" ]
          (List.init n (fun i -> [ V.Int i; V.Int (i + 1) ])) );
    ]

let eq16 =
  {
    Arc_core.Ast.defs = Data.eq16_defs;
    main = Arc_core.Ast.Coll Data.eq16_main;
  }

(* orders/customers rollup, the join+aggregate workload of Parts 7-9 *)
let analytics_db n =
  Database.of_list
    [
      ( "Orders",
        Relation.of_rows [ "oid"; "cust"; "amount" ]
          (List.init n (fun i ->
               [ V.Int i; V.Int (i mod 29); V.Int ((i * 13 mod 50) + 1) ])) );
      ( "Customers",
        Relation.of_rows [ "cust"; "region" ]
          (List.init 29 (fun i -> [ V.Int i; V.Int (i mod 5) ])) );
    ]

let analytics_q =
  let open Arc_core.Build in
  Arc_core.Ast.program
    (Arc_core.Ast.Coll
       (collection "Q" [ "region"; "total" ]
          (exists
             ~grouping:[ ("c", "region") ]
             [ bind "o" "Orders"; bind "c" "Customers" ]
             (conj
                [
                  eq (attr "o" "cust") (attr "c" "cust");
                  eq (attr "Q" "region") (attr "c" "region");
                  eq (attr "Q" "total") (sum (attr "o" "amount"));
                ]))))

(* ------------------------------------------------------------------ *)
(* Run metadata: stamped into every BENCH_*.json so the bench           *)
(* trajectory across commits stays comparable                           *)
(* ------------------------------------------------------------------ *)

(* Resolve HEAD by hand (no git subprocess): .git/HEAD either holds the
   sha directly (detached) or a ref, looked up loose then packed. *)
let git_sha () =
  let read f =
    try Some (String.trim (In_channel.with_open_text f In_channel.input_all))
    with _ -> None
  in
  let packed_lookup r =
    match read ".git/packed-refs" with
    | None -> None
    | Some txt ->
        List.find_map
          (fun line ->
            match String.index_opt line ' ' with
            | Some i
              when String.sub line (i + 1) (String.length line - i - 1) = r ->
                Some (String.sub line 0 i)
            | _ -> None)
          (String.split_on_char '\n' txt)
  in
  match read ".git/HEAD" with
  | None -> "unknown"
  | Some head -> (
      match
        if String.length head > 5 && String.sub head 0 5 = "ref: " then
          let r = String.sub head 5 (String.length head - 5) in
          match read (Filename.concat ".git" r) with
          | Some sha -> Some sha
          | None -> packed_lookup r
        else Some head
      with
      | Some sha -> sha
      | None -> "unknown")

let run_meta ~iterations =
  Json.Obj
    [
      ("git_sha", Json.Str (git_sha ()));
      ("ocaml_version", Json.Str Sys.ocaml_version);
      ("iterations", Json.Obj iterations);
    ]

(* the Bechamel config every run_bench group uses (see run_bench) *)
let bechamel_meta =
  run_meta
    ~iterations:
      [
        ("bechamel_limit", Json.Int 1000);
        ("bechamel_quota_s", Json.Float 0.2);
        ("bechamel_kde", Json.Int 500);
      ]

(* ------------------------------------------------------------------ *)
(* Part 2: one timed benchmark per experiment                          *)
(* ------------------------------------------------------------------ *)

let experiment_benches () =
  section "PART 2 — Timing: one benchmark per paper experiment";
  let tests =
    List.map
      (fun (e : Catalog.entry) ->
        Test.make ~name:e.Catalog.id
          (Staged.stage (fun () -> ignore (e.Catalog.run ()))))
      Catalog.all
  in
  run_bench ~name:"experiments" tests

(* ------------------------------------------------------------------ *)
(* Part 3: ablations on the design choices DESIGN.md calls out         *)
(* ------------------------------------------------------------------ *)

let grouped_db n =
  Database.of_list
    [
      ( "R",
        Relation.of_rows [ "A"; "B" ]
          (List.init n (fun i -> [ V.Int (i mod 10); V.Int i ])) );
    ]

let ablation_benches () =
  section
    "PART 3 — Ablations: FIO vs FOI cost, translation, parsing, recursion";
  let db40 = grouped_db 40 and db160 = grouped_db 160 in
  let fio db () = ignore (Eval.run_rows ~db (Arc_core.Ast.program (Arc_core.Ast.Coll Data.eq3)))
  and foi db () = ignore (Eval.run_rows ~db (Arc_core.Ast.program (Arc_core.Ast.Coll Data.eq7))) in
  let sql_text = Data.sql_fig6a in
  let sql_schemas = [ ("R", [ "empl"; "dept" ]); ("S", [ "empl"; "sal" ]) ] in
  let arc_prog =
    Arc_sql.To_arc.statement ~schemas:sql_schemas
      (Arc_sql.Parse.statement_of_string sql_text)
  in
  let comp_text = Arc_syntax.Printer.query (Arc_core.Ast.Coll Data.eq22) in
  let tests =
    [
      Test.make ~name:"eval: FIO grouped aggregate, |R|=40"
        (Staged.stage (fio db40));
      Test.make ~name:"eval: FOI per-tuple aggregate, |R|=40"
        (Staged.stage (foi db40));
      Test.make ~name:"eval: FIO grouped aggregate, |R|=160"
        (Staged.stage (fio db160));
      Test.make ~name:"eval: FOI per-tuple aggregate, |R|=160"
        (Staged.stage (foi db160));
      Test.make ~name:"eval: recursion naive, chain 24"
        (Staged.stage (fun () ->
             ignore
               (Eval.run_rows ~strategy:Eval.Naive ~db:(chain 24) eq16)));
      Test.make ~name:"eval: recursion semi-naive, chain 24"
        (Staged.stage (fun () ->
             ignore
               (Eval.run_rows ~strategy:Eval.Seminaive ~db:(chain 24) eq16)));
      Test.make ~name:"eval: unique-set (4 nested negations), 5 drinkers"
        (Staged.stage (fun () ->
             ignore
               (Eval.run_rows ~db:Data.db_beers
                  (Arc_core.Ast.program (Arc_core.Ast.Coll Data.eq22)))));
      (* tracer overhead: the explicit null tracer must cost the same as the
         default (no tracer argument) path above; the collecting tracer shows
         the price of a full trace *)
      Test.make ~name:"obs: unique-set, explicit null tracer"
        (Staged.stage (fun () ->
             ignore
               (Eval.run_rows ~tracer:Obs.null ~db:Data.db_beers
                  (Arc_core.Ast.program (Arc_core.Ast.Coll Data.eq22)))));
      Test.make ~name:"obs: unique-set, collecting tracer"
        (Staged.stage (fun () ->
             ignore
               (Eval.run_rows ~tracer:(Obs.collector ()) ~db:Data.db_beers
                  (Arc_core.Ast.program (Arc_core.Ast.Coll Data.eq22)))));
      Test.make ~name:"translate: SQL → ARC (Fig 6a)"
        (Staged.stage (fun () ->
             ignore
               (Arc_sql.To_arc.statement ~schemas:sql_schemas
                  (Arc_sql.Parse.statement_of_string sql_text))));
      Test.make ~name:"translate: ARC → SQL (Fig 6a)"
        (Staged.stage (fun () ->
             ignore (Arc_sql.Of_arc.statement ~schemas:sql_schemas arc_prog)));
      Test.make ~name:"parse: comprehension syntax (Eq 22)"
        (Staged.stage (fun () ->
             ignore (Arc_syntax.Parser.query_of_string comp_text)));
      Test.make ~name:"modality: build+link ALT (Eq 22)"
        (Staged.stage (fun () ->
             ignore
               (Arc_alt.Alt.link
                  (Arc_alt.Alt.of_query (Arc_core.Ast.Coll Data.eq22)))));
      Test.make ~name:"modality: build+render higraph (Eq 22)"
        (Staged.stage (fun () ->
             ignore
               (Arc_higraph.Higraph.render
                  (Arc_higraph.Higraph.of_query (Arc_core.Ast.Coll Data.eq22)))));
      Test.make ~name:"canon: canonical form (Eq 22)"
        (Staged.stage (fun () ->
             ignore (Arc_core.Canon.canonical_query (Arc_core.Ast.Coll Data.eq22))));
      Test.make ~name:"intent: similarity Eq3 vs Eq7"
        (Staged.stage (fun () ->
             ignore
               (Arc_intent.Intent.similarity (Arc_core.Ast.Coll Data.eq3)
                  (Arc_core.Ast.Coll Data.eq7))));
    ]
  in
  run_bench ~name:"ablations" tests

(* ------------------------------------------------------------------ *)
(* Part 4: modality size metrics (proxy for the cited user studies)    *)
(* ------------------------------------------------------------------ *)

let modality_metrics () =
  section
    "PART 4 — Modality sizes (proxy metrics for the paper's user-study \
     citations)";
  Printf.printf "%-22s %12s %10s %10s %10s %10s\n" "query" "sql chars"
    "comp chars" "ALT nodes" "ALT edges" "hg boxes";
  let row name c sql_text =
    let q = Arc_core.Ast.Coll c in
    let comp = Arc_syntax.Printer.query q in
    let alt = Arc_alt.Alt.link (Arc_alt.Alt.of_query q) in
    let hg = Arc_higraph.Higraph.of_query q in
    let st = Arc_higraph.Higraph.stats hg in
    Printf.printf "%-22s %12d %10d %10d %10d %10d\n" name
      (String.length sql_text) (String.length comp) (Arc_alt.Alt.size alt)
      (List.length alt.Arc_alt.Alt.edges)
      (st.Arc_higraph.Higraph.n_tables + st.Arc_higraph.Higraph.n_regions)
  in
  row "eq1 (TRC)" Data.eq1 "select r.A from R r, S s where r.B = s.B and s.C = 0";
  row "eq3 (FIO)" Data.eq3 Data.sql_fig4a;
  row "eq7 (FOI)" Data.eq7 Data.sql_fig5b;
  row "eq8 (multi-agg)" Data.eq8 Data.sql_fig6a;
  row "eq17 (not-in)" Data.eq17 Data.sql_fig11b;
  row "eq22 (unique-set)" Data.eq22 Data.sql_fig17;
  row "eq26 (matmul)" Data.eq26 "n/a";
  row "eq27 (count bug)" Data.eq27 Data.sql_fig21a;
  print_endline
    "\nThe paper's claim (Section 4) is about reading speed and accuracy of\n\
     the diagrammatic modality; these sizes quantify the representations'\n\
     footprints, not human performance.";
  Printf.printf
    "\nFIO vs FOI comparative shape (paper: FOI needs two logical copies of R):\n";
  let p3 = Arc_core.Pattern.of_collection Data.eq3 in
  let p7 = Arc_core.Pattern.of_collection Data.eq7 in
  Printf.printf "  eq3: %s\n  eq7: %s\n"
    (Arc_core.Pattern.to_string p3)
    (Arc_core.Pattern.to_string p7)

(* ------------------------------------------------------------------ *)
(* Part 5: per-operator counters from traced workloads                 *)
(* ------------------------------------------------------------------ *)

let traced_workloads () =
  section "PART 5 — Operator counters (traced workloads)";
  let workloads =
    [
      ( "recursion chain24, naive",
        fun tracer ->
          ignore
            (Eval.run_rows ~strategy:Eval.Naive ~tracer ~db:(chain 24) eq16) );
      ( "recursion chain24, seminaive",
        fun tracer ->
          ignore
            (Eval.run_rows ~strategy:Eval.Seminaive ~tracer ~db:(chain 24) eq16)
      );
      ( "FIO grouped aggregate, |R|=40",
        fun tracer ->
          ignore
            (Eval.run_rows ~tracer ~db:(grouped_db 40)
               (Arc_core.Ast.program (Arc_core.Ast.Coll Data.eq3))) );
      ( "unique-set (4 nested negations), 5 drinkers",
        fun tracer ->
          ignore
            (Eval.run_rows ~tracer ~db:Data.db_beers
               (Arc_core.Ast.program (Arc_core.Ast.Coll Data.eq22))) );
    ]
  in
  List.map
    (fun (name, run) ->
      let tracer = Obs.collector () in
      run tracer;
      let summary = Obs.summary (Obs.spans tracer) in
      Printf.printf "\n%s\n" name;
      List.iter
        (fun (a : Obs.agg) ->
          Printf.printf "    %-24s calls=%-6d %s\n" a.Obs.agg_name a.Obs.calls
            (String.concat ", "
               (List.map
                  (fun (k, v) -> Printf.sprintf "%s=%d" k v)
                  a.Obs.counters)))
        summary;
      (name, summary))
    workloads

(* ------------------------------------------------------------------ *)
(* Part 6: guard ablation (governed vs ungoverned evaluation)          *)
(* ------------------------------------------------------------------ *)

module Gov = Arc_guard.Gov
module Budget = Arc_guard.Budget

(* Three governor configurations per workload: the default guard
   (seed-equivalent 100k fixpoint cap, probes inactive), a fully unlimited
   governor (probes inactive, not even the fixpoint cap), and an active
   governor with generous limits nothing ever trips — the last one prices
   the per-probe bookkeeping itself. Governors are single-use (the deadline
   starts at [Gov.make]), so each run builds a fresh one. *)
let guard_benches () =
  section "PART 6 — Guard ablation: governed vs ungoverned evaluation";
  let db_chain = chain 24 in
  let active_guard () =
    Gov.make ~on_limit:`Fail
      (Budget.with_timeout_ms 600_000
         {
           Budget.default with
           Budget.max_rows = Some 100_000_000;
           max_bindings = Some 100_000_000;
           max_depth = Some 10_000;
         })
  in
  let variants =
    [
      ("default", fun () -> None);
      ("unlimited", fun () -> Some (Gov.unlimited ()));
      ("active", fun () -> Some (active_guard ()));
    ]
  in
  let workloads =
    [
      ( "unique-set eq22",
        fun guard ->
          ignore
            (Eval.run_rows ?guard ~db:Data.db_beers
               (Arc_core.Ast.program (Arc_core.Ast.Coll Data.eq22))) );
      ( "recursion chain24 seminaive",
        fun guard -> ignore (Eval.run_rows ?guard ~db:db_chain eq16) );
    ]
  in
  let tests =
    List.concat_map
      (fun (wname, run) ->
        List.map
          (fun (vname, mk) ->
            Test.make
              ~name:(Printf.sprintf "%s, %s guard" wname vname)
              (Staged.stage (fun () -> run (mk ()))))
          variants)
      workloads
  in
  let rows = run_bench ~name:"guard" tests in
  let find wname vname =
    find_suffix rows (Printf.sprintf "%s, %s guard" wname vname)
  in
  let overhead =
    List.filter_map
      (fun (wname, _) ->
        match (find wname "default", find wname "unlimited", find wname "active")
        with
        | Some base, Some unl, Some act ->
            let pct x = (x -. base) /. base *. 100.0 in
            Printf.printf
              "%s: unlimited-governor overhead %+.2f%%, active-governor \
               overhead %+.2f%%\n"
              wname (pct unl) (pct act);
            Some
              (Json.Obj
                 [
                   ("workload", Json.Str wname);
                   ("default_ns", Json.Float base);
                   ("unlimited_ns", Json.Float unl);
                   ("active_ns", Json.Float act);
                   ("unlimited_overhead_pct", Json.Float (pct unl));
                   ("active_overhead_pct", Json.Float (pct act));
                 ])
        | _ -> None)
      workloads
  in
  (rows, overhead)

(* ------------------------------------------------------------------ *)
(* Part 7: engine ablation — reference evaluator vs compiled plans     *)
(* ------------------------------------------------------------------ *)

(* n×n matrices, ~half the entries present *)
let matrices n =
  let mat seed =
    Relation.of_rows [ "row"; "col"; "val" ]
      (List.concat
         (List.init n (fun r ->
              List.filter_map
                (fun c ->
                  if (r + c + seed) mod 2 = 0 then
                    Some [ V.Int r; V.Int c; V.Int ((r * c) + seed) ]
                  else None)
                (List.init n Fun.id))))
  in
  Database.of_list [ ("A", mat 0); ("B", mat 1) ]

let matmul = Arc_core.Ast.program (Arc_core.Ast.Coll Data.eq26)

(* The three workloads of the engine ablation (Part 7), reused by the
   EXPLAIN ANALYZE report (Part 8). *)
let engine_workloads () =
  [
    ("recursion: TC chain 48 (eq16)", chain 48, eq16);
    ( "join+aggregate: analytics rollup, 400 orders",
      analytics_db 400,
      analytics_q );
    ("matrix multiplication 16x16 (eq26)", matrices 16, matmul);
  ]

(* The reference evaluator enumerates scopes as cross products and filters
   afterwards; the plan engine compiles the same cores to hash joins,
   hash semi/anti-joins and hash aggregates. Same results (asserted below,
   bag-for-bag), different asymptotics — this part measures the gap on a
   recursive workload, a join+aggregate workload, and sparse matrix
   multiplication (Eq 26 scaled up). *)
let engine_benches () =
  section "PART 7 — Engine ablation: reference evaluator vs compiled plans";
  let workloads = engine_workloads () in
  (* correctness gate first: both engines must agree bag-for-bag *)
  let bag r =
    List.sort compare (List.map Tuple.key (Relation.tuples r))
  in
  let results_match =
    List.for_all
      (fun (name, db, prog) ->
        let ok = bag (Eval.run_rows ~db prog) = bag (Exec.run_rows ~db prog) in
        if not ok then
          Printf.printf "!!! %s: plan engine diverges from reference\n" name;
        ok)
      workloads
  in
  Printf.printf "reference ≡ plan on all engine-ablation workloads: %b\n"
    results_match;
  let tests =
    List.concat_map
      (fun (wname, db, prog) ->
        [
          Test.make ~name:(wname ^ ", reference")
            (Staged.stage (fun () -> ignore (Eval.run_rows ~db prog)));
          Test.make ~name:(wname ^ ", plan")
            (Staged.stage (fun () -> ignore (Exec.run_rows ~db prog)));
        ])
      workloads
  in
  let rows = run_bench ~name:"engine" tests in
  let find wname suffix =
    find_suffix rows (Printf.sprintf "%s, %s" wname suffix)
  in
  let speedups =
    List.filter_map
      (fun (wname, _, _) ->
        match (find wname "reference", find wname "plan") with
        | Some refr, Some plan ->
            let speedup = refr /. plan in
            Printf.printf "%s: reference/plan speedup %.2fx\n" wname speedup;
            Some
              (Json.Obj
                 [
                   ("workload", Json.Str wname);
                   ("reference_ns", Json.Float refr);
                   ("plan_ns", Json.Float plan);
                   ("speedup", Json.Float speedup);
                 ])
        | _ -> None)
      workloads
  in
  (rows, speedups, results_match)

(* ------------------------------------------------------------------ *)
(* Part 8: EXPLAIN ANALYZE — per-node actuals and metrics overhead     *)
(* ------------------------------------------------------------------ *)

let node_to_json (ni : Explain.node_info) =
  let base =
    [
      ("id", Json.Int ni.Explain.ni_id);
      ("def", Json.Str ni.Explain.ni_def);
      ("op", Json.Str ni.Explain.ni_op);
      ("est_rows", Json.Int ni.Explain.ni_est);
    ]
  in
  let actual =
    match ni.Explain.ni_actual with
    | None -> [ ("executed", Json.Bool false) ]
    | Some a ->
        [
          ("executed", Json.Bool true);
          ("invocations", Json.Int a.Ir.a_invocations);
          ("act_rows", Json.Int a.Ir.a_rows);
          ("excl_ns", Json.Int (Int64.to_int ni.Explain.ni_excl_ns));
        ]
        @ (match ni.Explain.ni_q with
          | Some q -> [ ("q_error", Json.Float q) ]
          | None -> [])
        @
        if a.Ir.a_iterations > 0 then
          [ ("iterations", Json.Int a.Ir.a_iterations) ]
        else []
  in
  Json.Obj (base @ actual)

(* Per-workload EXPLAIN ANALYZE (per-node estimated vs actual rows,
   Q-error, exclusive time) plus the cost of collecting it: the same plan
   executed with and without a stats table. The off arm is the price
   everyone pays, so the on/off gap must stay within a few percent
   (mirroring the Part 3 tracer and Part 6 governor ablations). *)
let analyze_report () =
  section "PART 8 — EXPLAIN ANALYZE: per-node actuals and metrics overhead";
  List.map
    (fun (wname, db, prog) ->
      let ctx, _raw, optimized, _report = Exec.compile ~db prog in
      let stats = Ir.fresh_stats () in
      ignore (Exec.exec_program ~stats ctx optimized);
      let infos = Explain.analyze_info optimized ~stats in
      let worst_q =
        List.fold_left
          (fun acc ni ->
            match ni.Explain.ni_q with Some q -> Float.max acc q | None -> acc)
          1.0 infos
      in
      (* both arms compile fresh each run: exec_program materializes
         strata into the context's IDB, so a reused context would not
         time the same work twice *)
      let off, on =
        min_pair_ns
          (fun () ->
            let ctx, _, opt, _ = Exec.compile ~db prog in
            ignore (Exec.exec_program ctx opt))
          (fun () ->
            let ctx, _, opt, _ = Exec.compile ~db prog in
            ignore (Exec.exec_program ~stats:(Ir.fresh_stats ()) ctx opt))
      in
      let pct = (on -. off) /. off *. 100.0 in
      Printf.printf
        "%s:\n    %d plan nodes, worst q-error %.1f\n    metrics off %.2f \
         ms, on %.2f ms, overhead %+.2f%%\n"
        wname
        (List.length infos)
        worst_q (off /. 1e6) (on /. 1e6) pct;
      Json.Obj
        [
          ("workload", Json.Str wname);
          ("nodes", Json.List (List.map node_to_json infos));
          ("worst_q_error", Json.Float worst_q);
          ("metrics_off_ns", Json.Float off);
          ("metrics_on_ns", Json.Float on);
          ("overhead_pct", Json.Float pct);
        ])
    (engine_workloads ())

(* ------------------------------------------------------------------ *)
(* Part 9: IVM — incremental maintenance vs full re-evaluation         *)
(* ------------------------------------------------------------------ *)

module Ivm = Arc_ivm.Ivm

let ivm_warmup = 2
let ivm_repeats = 15

(* Fresh state per sample: [setup] (view registration = compile + first
   full evaluation, or nothing for the re-eval arm) stays outside the
   timed region; only [run] is measured. Minimum of the repeats, for the
   same reason as [min_pair_ns]. *)
let ivm_best ~setup ~run =
  Gc.compact ();
  let sample () =
    let st = setup () in
    let t0 = Metrics.now_ns () in
    ignore (run st);
    let t1 = Metrics.now_ns () in
    Int64.to_float (Int64.sub t1 t0)
  in
  for _ = 1 to ivm_warmup do
    ignore (sample ())
  done;
  let best = ref Float.infinity in
  for _ = 1 to ivm_repeats do
    best := Float.min !best (sample ())
  done;
  !best

(* The rollup (counting + dirty-group aggregate) and TC chain (DRed)
   workloads of Part 7, now maintained incrementally under single-row and
   small mixed batches and raced against full re-evaluation on the updated
   database. Every arm is gated on [Ivm.check]: the maintained result must
   be bag-equal to from-scratch recomputation before its time counts. *)
let ivm_benches () =
  section "PART 9 — IVM: incremental maintenance vs full re-evaluation";
  let order_row i =
    [ V.Int i; V.Int (i mod 29); V.Int ((i * 13 mod 50) + 1) ]
  in
  let row db rel vs =
    Tuple.make (Relation.schema (Database.find db rel)) (Array.of_list vs)
  in
  let workloads =
    [
      ( "analytics rollup, 400 orders",
        (fun () -> analytics_db 400),
        analytics_q,
        [
          ( "single-row insert",
            fun db ->
              [ ("Orders", [ (row db "Orders" (order_row 400), 1) ]) ] );
          ( "1% mixed batch (4 rows)",
            fun db ->
              [
                ( "Orders",
                  [
                    (row db "Orders" (order_row 401), 1);
                    (row db "Orders" (order_row 402), 1);
                    (row db "Orders" (order_row 0), -1);
                    (row db "Orders" (order_row 1), -1);
                  ] );
              ] );
        ] );
      ( "recursion: TC chain 48 (eq16)",
        (fun () -> chain 48),
        eq16,
        [
          ( "single-row insert",
            fun db -> [ ("P", [ (row db "P" [ V.Int 48; V.Int 49 ], 1) ]) ]
          );
          ( "mixed batch (4 rows)",
            fun db ->
              [
                ( "P",
                  [
                    (row db "P" [ V.Int 48; V.Int 49 ], 1);
                    (row db "P" [ V.Int 49; V.Int 50 ], 1);
                    (row db "P" [ V.Int 0; V.Int 1 ], -1);
                    (row db "P" [ V.Int 1; V.Int 2 ], -1);
                  ] );
              ] );
        ] );
    ]
  in
  let all_ok = ref true in
  let rows =
    List.concat_map
      (fun (wname, mk_db, prog, batches) ->
        List.map
          (fun (bname, mk_batch) ->
            let fresh () =
              let db = mk_db () in
              let t = Ivm.create ~db () in
              Ivm.register t ~name:"v" prog;
              (t, mk_batch db)
            in
            (* correctness and reporting pass, untimed *)
            let t0, batch0 = fresh () in
            let r = List.hd (Ivm.apply t0 batch0) in
            let check_ok = Ivm.check t0 = [] in
            if not check_ok then begin
              all_ok := false;
              Printf.printf "!!! %s / %s: maintained result diverges\n" wname
                bname
            end;
            let updated = Ivm.db t0 in
            let incr_ns =
              ivm_best ~setup:fresh ~run:(fun (t, batch) -> Ivm.apply t batch)
            in
            let reeval_ns =
              ivm_best
                ~setup:(fun () -> ())
                ~run:(fun () -> Exec.run_rows ~db:updated prog)
            in
            let speedup = reeval_ns /. incr_ns in
            Printf.printf
              "%s / %s:\n    mode=%s |Δout|=%d fallbacks=%d\n    incremental \
               %8.1f µs, re-eval %8.1f µs, speedup %.1fx\n"
              wname bname r.Ivm.vr_mode r.Ivm.vr_out_delta r.Ivm.vr_fallbacks
              (incr_ns /. 1e3) (reeval_ns /. 1e3) speedup;
            Json.Obj
              [
                ("workload", Json.Str wname);
                ("batch", Json.Str bname);
                ("batch_rows", Json.Int (Ivm.batch_rows batch0));
                ("mode", Json.Str r.Ivm.vr_mode);
                ("out_delta", Json.Int r.Ivm.vr_out_delta);
                ("fallbacks", Json.Int r.Ivm.vr_fallbacks);
                ("incremental_ns", Json.Float incr_ns);
                ("reeval_ns", Json.Float reeval_ns);
                ("speedup", Json.Float speedup);
                ("check_ok", Json.Bool check_ok);
              ])
          batches)
      workloads
  in
  (rows, !all_ok)

(* ------------------------------------------------------------------ *)
(* Part 10: statistics + batching ablation (BENCH_8)                   *)
(* ------------------------------------------------------------------ *)

let stats_warmup = 3
let stats_repeats = 21

(* [min_pair_ns] generalized to any number of interleaved arms: every arm
   runs once per round so drift hits them all equally; min over rounds. *)
let min_cycle_ns ?(warmup = stats_warmup) ?(repeats = stats_repeats) arms =
  Gc.compact ();
  for _ = 1 to warmup do
    List.iter (fun (_, f) -> f ()) arms
  done;
  let best = List.map (fun (name, f) -> (name, f, ref Float.infinity)) arms in
  for _ = 1 to repeats do
    List.iter
      (fun (_, f, b) ->
        let t0 = Metrics.now_ns () in
        f ();
        let t1 = Metrics.now_ns () in
        b := Float.min !b (Int64.to_float (Int64.sub t1 t0)))
      best
  done;
  List.map (fun (name, _, b) -> (name, !b)) best

(* Pooled per-node Q-errors over the catalog suite: the same plan and the
   same run actuals scored by the stats-driven cost model and by the
   heuristic estimator. *)
let q_error_medians () =
  let catalog_workloads =
    let open Arc_core.Ast in
    [
      (Data.db_rs, { defs = []; main = Coll Data.eq1 });
      (Data.db_grouping, { defs = []; main = Coll Data.eq3 });
      (Data.db_grouping, { defs = []; main = Coll Data.eq7 });
      (Data.db_payroll, { defs = []; main = Coll Data.eq8 });
      (Data.db_payroll, { defs = []; main = Coll Data.eq10 });
      (Data.db_payroll, { defs = []; main = Coll Data.eq12 });
      (Data.db_beers, { defs = []; main = Coll Data.eq22 });
      (Data.db_matrices, { defs = []; main = Coll Data.eq26 });
    ]
  in
  let q_stats = ref [] and q_heur = ref [] in
  List.iter
    (fun (db, prog) ->
      let adb = Database.analyze db in
      let ctx, _raw, optimized, _report = Exec.compile ~db:adb prog in
      let stats = Ir.fresh_stats () in
      ignore (Exec.exec_program ~stats ctx optimized);
      let take sink infos =
        List.iter
          (fun ni ->
            match ni.Explain.ni_q with
            | Some q -> sink := q :: !sink
            | None -> ())
          infos
      in
      take q_stats
        (Explain.analyze_info
           ~cenv:(Database.stats_bindings adb)
           optimized ~stats);
      take q_heur (Explain.analyze_info optimized ~stats))
    catalog_workloads;
  let median xs =
    match List.sort compare xs with
    | [] -> Float.nan
    | s -> List.nth s (List.length s / 2)
  in
  (median !q_stats, median !q_heur, List.length !q_stats)

(* The 2x2 ablation the refactor is judged by: statistics (ANALYZE before
   planning) x batched execution. The base arm — no statistics,
   tuple-at-a-time — is the engine as it was before this subsystem
   existed. The rollup and matmul workloads are the Part 7 shapes scaled
   up past the batched pipeline's constant overheads (array conversion and
   per-block bookkeeping put the crossover near a thousand rows; below it
   the two paths are within noise of each other), where the amortized
   probes and O(1) group appends show as a step-change rather than
   run-to-run jitter. The TC chain rides along unscaled and ungated: it
   is fixpoint-dominated, so batching is not expected to move it. Every
   arm is gated on bag-equality with the reference evaluator before its
   time counts. *)
let stats_workloads () =
  [
    ("recursion: TC chain 48 (eq16)", chain 48, eq16);
    ( "join+aggregate: analytics rollup, 2000 orders",
      analytics_db 2000,
      analytics_q );
    ("matrix multiplication 24x24 (eq26)", matrices 24, matmul);
  ]

let stats_benches () =
  section "PART 10 — Stats + batching ablation: 2x2 on the engine workloads";
  let arms = [ (false, false); (false, true); (true, false); (true, true) ]
  and arm_name (stats, batched) =
    Printf.sprintf "stats=%s batched=%s"
      (if stats then "on" else "off")
      (if batched then "on" else "off")
  in
  let bag r = List.sort compare (List.map Tuple.key (Relation.tuples r)) in
  let all_equal = ref true in
  let rows =
    List.map
      (fun (wname, db, prog) ->
        let adb = Database.analyze db in
        let run (stats, batched) () =
          let db = if stats then adb else db in
          let ctx, _raw, opt, _report = Exec.compile ~db prog in
          Exec.exec_program ~batched ctx opt
        in
        let reference = bag (Eval.run_rows ~db prog) in
        let bag_equal =
          List.for_all
            (fun arm ->
              match run arm () with
              | Eval.Rows r -> bag r = reference
              | Eval.Truth _ -> false)
            arms
        in
        if not bag_equal then begin
          all_equal := false;
          Printf.printf "!!! %s: ablation arm diverges from reference\n" wname
        end;
        let timed =
          min_cycle_ns
            (List.map
               (fun arm -> (arm_name arm, fun () -> ignore (run arm ())))
               arms)
        in
        let ns name = List.assoc name timed in
        let base = ns "stats=off batched=off"
        and batched_only = ns "stats=off batched=on"
        and full = ns "stats=on batched=on" in
        Printf.printf "%s: bag_equal=%b\n" wname bag_equal;
        List.iter
          (fun (name, t) ->
            Printf.printf "    %-26s %10.1f µs  (%.2fx vs base)\n" name
              (t /. 1e3) (base /. t))
          timed;
        ( wname,
          (base /. full, base /. batched_only),
          Json.Obj
            [
              ("workload", Json.Str wname);
              ("bag_equal", Json.Bool bag_equal);
              ( "arms",
                Json.List
                  (List.map
                     (fun (name, t) ->
                       Json.Obj
                         [
                           ("arm", Json.Str name);
                           ("time_ns", Json.Float t);
                           ("speedup_vs_base", Json.Float (base /. t));
                         ])
                     timed) );
              ("batched_speedup", Json.Float (base /. batched_only));
              ("full_speedup", Json.Float (base /. full));
            ] ) )
      (stats_workloads ())
  in
  let median_q_stats, median_q_heur, q_nodes = q_error_medians () in
  Printf.printf
    "catalog q-error (%d nodes): median stats %.3f, heuristic %.3f\n" q_nodes
    median_q_stats median_q_heur;
  (rows, !all_equal, median_q_stats, median_q_heur, q_nodes)

(* ------------------------------------------------------------------ *)
(* Part 11: fixpoint ablation — indexed vs tuple seminaive (BENCH_9)   *)
(* ------------------------------------------------------------------ *)

(* ancestors of one node: the recursion passes [t] through unchanged, so
   the magic-sets rewrite can restrict the fixpoint to the demanded
   constant *)
let eq16_bound c =
  let open Arc_core.Build in
  Arc_core.Ast.program ~defs:Data.eq16_defs
    (Arc_core.Ast.Coll
       (collection "Q" [ "s" ]
          (exists [ bind "a" "A" ]
             (conj
                [
                  eq (attr "a" "t") (cint c);
                  eq (attr "Q" "s") (attr "a" "s");
                ]))))

(* The two recursion refactors this part is judged by, both raced on the
   TC chain the engine ablation uses. The fixpoint arms run the same
   compiled plan and differ only in how recursive strata are driven: the
   indexed seminaive fixpoint (per-disjunct delta rules, persistent
   build-side hash tables, seen-set dedup) against the legacy
   per-occurrence whole-plan re-execution. The magic arms compare the
   full compile pipeline (which restricts the fixpoint to the demanded
   constant) against the same program lowered without the AST rewrite.
   Every arm is gated on bag-equality before its time counts. *)
let fixpoint_benches () =
  section "PART 11 — Fixpoint ablation: indexed vs tuple seminaive, magic sets";
  let db = chain 48 in
  let bag r = List.sort compare (List.map Tuple.key (Relation.tuples r)) in
  let rows_of = function
    | Eval.Rows r -> r
    | Eval.Truth _ -> Relation.empty []
  in
  let run_fix fixpoint () =
    let ctx, _, opt, _ = Exec.compile ~db eq16 in
    rows_of (Exec.exec_program ~fixpoint ctx opt)
  in
  let tc_reference = bag (Eval.run_rows ~db eq16) in
  let tc_bag_equal =
    bag (run_fix `Indexed ()) = tc_reference
    && bag (run_fix `Tuple ()) = tc_reference
  in
  if not tc_bag_equal then
    print_endline "!!! TC chain 48: fixpoint arm diverges from reference";
  let timed =
    min_cycle_ns
      [
        ("fixpoint=indexed", fun () -> ignore (run_fix `Indexed ()));
        ("fixpoint=tuple", fun () -> ignore (run_fix `Tuple ()));
      ]
  in
  let indexed_ns = List.assoc "fixpoint=indexed" timed
  and tuple_ns = List.assoc "fixpoint=tuple" timed in
  let fixpoint_speedup = tuple_ns /. indexed_ns in
  Printf.printf "recursion: TC chain 48 (eq16): bag_equal=%b\n" tc_bag_equal;
  List.iter
    (fun (name, t) -> Printf.printf "    %-26s %10.1f µs\n" name (t /. 1e3))
    timed;
  Printf.printf "    indexed/tuple fixpoint speedup %.2fx\n" fixpoint_speedup;
  (* goal-directed arm: magic sets on (the default compile) vs off (the
     same program lowered and optimized without the AST rewrite) *)
  let bound = eq16_bound 47 in
  let magic_on () = rows_of (Exec.run ~db bound) in
  let magic_off () =
    let ctx, safe = Eval.Internal.prepare ~db bound in
    let lenv =
      Arc_plan.Lower.env_of_db ~db
        ~defs:(List.map (fun d -> d.Arc_core.Ast.def_name) safe)
    in
    let raw = Arc_plan.Lower.lower_program lenv ~safe bound in
    let opt, _ = Arc_plan.Opt.optimize lenv raw in
    rows_of (Exec.exec_program ctx opt)
  in
  let goal_reference = bag (Eval.run_rows ~db bound) in
  let goal_bag_equal =
    bag (magic_on ()) = goal_reference && bag (magic_off ()) = goal_reference
  in
  if not goal_bag_equal then
    print_endline "!!! goal-directed TC: magic arm diverges from reference";
  let goal_timed =
    min_cycle_ns
      [
        ("magic=on", fun () -> ignore (magic_on ()));
        ("magic=off", fun () -> ignore (magic_off ()));
      ]
  in
  let magic_on_ns = List.assoc "magic=on" goal_timed
  and magic_off_ns = List.assoc "magic=off" goal_timed in
  let magic_speedup = magic_off_ns /. magic_on_ns in
  Printf.printf "goal-directed: ancestors of one node, chain 48: bag_equal=%b\n"
    goal_bag_equal;
  List.iter
    (fun (name, t) -> Printf.printf "    %-26s %10.1f µs\n" name (t /. 1e3))
    goal_timed;
  Printf.printf "    magic-sets speedup %.2fx\n" magic_speedup;
  let gates =
    [
      ("bag_equal_tc", tc_bag_equal);
      ("bag_equal_goal_directed", goal_bag_equal);
      ("indexed_beats_tuple_tc48", fixpoint_speedup > 1.0);
      ("indexed_speedup_5x", fixpoint_speedup >= 5.0);
      ("magic_beats_full_fixpoint", magic_speedup > 1.0);
    ]
  in
  List.iter
    (fun (name, ok) ->
      Printf.printf "gate %-28s %s\n" name (if ok then "PASS" else "FAIL"))
    gates;
  let arm_row name t =
    Json.Obj [ ("arm", Json.Str name); ("time_ns", Json.Float t) ]
  in
  let json =
    Json.Obj
      [
        ("version", Json.Int 1);
        ("harness", Json.Str "arc-bench-fixpoint");
        ( "meta",
          run_meta
            ~iterations:
              [
                ("cycle_warmup", Json.Int stats_warmup);
                ("cycle_repeats", Json.Int stats_repeats);
              ] );
        ( "workloads",
          Json.List
            [
              Json.Obj
                [
                  ("workload", Json.Str "recursion: TC chain 48 (eq16)");
                  ("bag_equal", Json.Bool tc_bag_equal);
                  ( "arms",
                    Json.List
                      (List.map (fun (n, t) -> arm_row n t) timed) );
                  ("indexed_speedup", Json.Float fixpoint_speedup);
                ];
              Json.Obj
                [
                  ( "workload",
                    Json.Str "goal-directed: ancestors of node 47, chain 48" );
                  ("bag_equal", Json.Bool goal_bag_equal);
                  ( "arms",
                    Json.List
                      (List.map (fun (n, t) -> arm_row n t) goal_timed) );
                  ("magic_speedup", Json.Float magic_speedup);
                ];
            ] );
        ("gates", Json.Obj (List.map (fun (n, ok) -> (n, Json.Bool ok)) gates));
        ("gates_ok", Json.Bool (List.for_all snd gates));
      ]
  in
  json

(* ------------------------------------------------------------------ *)
(* JSON report (BENCH_1.json)                                          *)
(* ------------------------------------------------------------------ *)

let time_rows_to_json rows =
  Json.List
    (List.map
       (fun (name, est) ->
         Json.Obj
           [
             ("name", Json.Str name);
             ("time_ns", if Float.is_nan est then Json.Null else Json.Float est);
           ])
       rows)

let workloads_to_json workloads =
  Json.List
    (List.map
       (fun (name, summary) ->
         Json.Obj
           [
             ("name", Json.Str name);
             ( "operators",
               Json.List
                 (List.map
                    (fun (a : Obs.agg) ->
                      Json.Obj
                        [
                          ("operator", Json.Str a.Obs.agg_name);
                          ("calls", Json.Int a.Obs.calls);
                          ("total_ns", Json.Int (Int64.to_int a.Obs.total_ns));
                          ( "counters",
                            Json.Obj
                              (List.map
                                 (fun (k, v) -> (k, Json.Int v))
                                 a.Obs.counters) );
                        ])
                    summary) );
           ])
       workloads)

let () =
  let checks, failures = reproduce () in
  let experiments = experiment_benches () in
  let ablations = ablation_benches () in
  modality_metrics ();
  let workloads = traced_workloads () in
  let guard_rows, guard_overhead = guard_benches () in
  let report =
    Json.Obj
      [
        ("version", Json.Int 1);
        ("harness", Json.Str "arc-bench");
        ("meta", bechamel_meta);
        ( "reproduction",
          Json.Obj
            [ ("checks", Json.Int checks); ("failures", Json.Int failures) ] );
        ("experiments", time_rows_to_json experiments);
        ("ablations", time_rows_to_json ablations);
        ("workloads", workloads_to_json workloads);
      ]
  in
  let out =
    match Sys.getenv_opt "BENCH_OUT" with Some f -> f | None -> "BENCH_1.json"
  in
  Out_channel.with_open_text out (fun oc ->
      output_string oc (Json.pretty report);
      output_char oc '\n');
  let guard_report =
    Json.Obj
      [
        ("version", Json.Int 1);
        ("harness", Json.Str "arc-bench-guard");
        ("meta", bechamel_meta);
        ("rows", time_rows_to_json guard_rows);
        ("overhead", Json.List guard_overhead);
      ]
  in
  let guard_out =
    match Sys.getenv_opt "BENCH3_OUT" with
    | Some f -> f
    | None -> "BENCH_3.json"
  in
  Out_channel.with_open_text guard_out (fun oc ->
      output_string oc (Json.pretty guard_report);
      output_char oc '\n');
  let engine_rows, engine_speedups, engine_match = engine_benches () in
  let engine_report =
    Json.Obj
      [
        ("version", Json.Int 1);
        ("harness", Json.Str "arc-bench-engine");
        ("meta", bechamel_meta);
        ("results_match", Json.Bool engine_match);
        ("rows", time_rows_to_json engine_rows);
        ("speedups", Json.List engine_speedups);
      ]
  in
  let engine_out =
    match Sys.getenv_opt "BENCH4_OUT" with
    | Some f -> f
    | None -> "BENCH_4.json"
  in
  Out_channel.with_open_text engine_out (fun oc ->
      output_string oc (Json.pretty engine_report);
      output_char oc '\n');
  let analyze_rows = analyze_report () in
  let analyze_json =
    Json.Obj
      [
        ("version", Json.Int 1);
        ("harness", Json.Str "arc-bench-analyze");
        ( "meta",
          run_meta
            ~iterations:
              [
                ("min_pair_warmup", Json.Int 3);
                ("min_pair_repeats", Json.Int 21);
              ] );
        ("workloads", Json.List analyze_rows);
      ]
  in
  let analyze_out =
    match Sys.getenv_opt "BENCH6_OUT" with
    | Some f -> f
    | None -> "BENCH_6.json"
  in
  Out_channel.with_open_text analyze_out (fun oc ->
      output_string oc (Json.pretty analyze_json);
      output_char oc '\n');
  let ivm_rows, ivm_ok = ivm_benches () in
  let ivm_json =
    Json.Obj
      [
        ("version", Json.Int 1);
        ("harness", Json.Str "arc-bench-ivm");
        ( "meta",
          run_meta
            ~iterations:
              [
                ("ivm_warmup", Json.Int ivm_warmup);
                ("ivm_repeats", Json.Int ivm_repeats);
              ] );
        ("checks_ok", Json.Bool ivm_ok);
        ("results", Json.List ivm_rows);
      ]
  in
  let ivm_out =
    match Sys.getenv_opt "BENCH7_OUT" with
    | Some f -> f
    | None -> "BENCH_7.json"
  in
  Out_channel.with_open_text ivm_out (fun oc ->
      output_string oc (Json.pretty ivm_json);
      output_char oc '\n');
  let stats_rows, stats_bag_equal, median_q_stats, median_q_heur, q_nodes =
    stats_benches ()
  in
  let contains ~needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec at k =
      k + nl <= hl && (String.sub hay k nl = needle || at (k + 1))
    in
    nl = 0 || at 0
  in
  let speedups needle =
    match
      List.find_opt (fun (wname, _, _) -> contains ~needle wname) stats_rows
    with
    | Some (_, s, _) -> s
    | None -> (Float.nan, Float.nan)
  in
  let rollup_full, rollup_batched = speedups "rollup"
  and matmul_full, _ = speedups "matrix" in
  let gates =
    [
      ("bag_equal", stats_bag_equal);
      ("full_beats_base_rollup", rollup_full > 1.0);
      ("full_beats_base_matmul", matmul_full > 1.0);
      ("batched_beats_tuple_rollup", rollup_batched > 1.0);
      ("q_error_improved", median_q_stats < median_q_heur);
    ]
  in
  List.iter
    (fun (name, ok) -> Printf.printf "gate %-28s %s\n" name
        (if ok then "PASS" else "FAIL"))
    gates;
  let stats_json =
    Json.Obj
      [
        ("version", Json.Int 1);
        ("harness", Json.Str "arc-bench-stats");
        ( "meta",
          run_meta
            ~iterations:
              [
                ("stats_warmup", Json.Int stats_warmup);
                ("stats_repeats", Json.Int stats_repeats);
              ] );
        ("workloads", Json.List (List.map (fun (_, _, j) -> j) stats_rows));
        ( "q_error",
          Json.Obj
            [
              ("nodes", Json.Int q_nodes);
              ("median_q_stats", Json.Float median_q_stats);
              ("median_q_heuristic", Json.Float median_q_heur);
            ] );
        ( "gates",
          Json.Obj (List.map (fun (n, ok) -> (n, Json.Bool ok)) gates) );
        ("gates_ok", Json.Bool (List.for_all snd gates));
      ]
  in
  let stats_out =
    match Sys.getenv_opt "BENCH8_OUT" with
    | Some f -> f
    | None -> "BENCH_8.json"
  in
  Out_channel.with_open_text stats_out (fun oc ->
      output_string oc (Json.pretty stats_json);
      output_char oc '\n');
  let fixpoint_json = fixpoint_benches () in
  let fixpoint_out =
    match Sys.getenv_opt "BENCH9_OUT" with
    | Some f -> f
    | None -> "BENCH_9.json"
  in
  Out_channel.with_open_text fixpoint_out (fun oc ->
      output_string oc (Json.pretty fixpoint_json);
      output_char oc '\n');
  rule ();
  Printf.printf
    "bench complete; JSON reports written to %s, %s, %s, %s, %s, %s and %s\n"
    out guard_out engine_out analyze_out ivm_out stats_out fixpoint_out
